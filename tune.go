package fitingtree

import (
	"fmt"

	"fitingtree/internal/btree"
	"fitingtree/internal/costmodel"
)

// TuneRequest asks the Section 6 cost model to pick an error threshold for
// a dataset. Exactly one of MaxLatencyNs or MaxIndexBytes must be set.
type TuneRequest struct {
	// MaxLatencyNs is a lookup latency SLA (e.g. 1000); the pick is the
	// smallest predicted index satisfying it.
	MaxLatencyNs float64
	// MaxIndexBytes is a storage budget (e.g. 100 << 20); the pick is the
	// fastest predicted threshold fitting it.
	MaxIndexBytes int64
	// Candidates are the error thresholds to consider; defaults to powers
	// of 10 from 10 to 1e6.
	Candidates []int
	// CacheMissNs is the modeled random access cost; 0 uses a pointer-chase
	// measurement of the running host (the paper's methodology), taken once
	// per process and memoized.
	CacheMissNs float64
}

// TuneResult reports the pick and the model's predictions for it.
type TuneResult struct {
	Error              int
	PredictedLatencyNs float64
	PredictedSizeBytes int64
	CacheMissNs        float64
}

// Tune samples the dataset's segment counts, builds the cost model, and
// returns the error threshold satisfying the request.
func Tune[K Key](keys []K, req TuneRequest) (TuneResult, error) {
	var res TuneResult
	if (req.MaxLatencyNs > 0) == (req.MaxIndexBytes > 0) {
		return res, fmt.Errorf("fitingtree: set exactly one of MaxLatencyNs and MaxIndexBytes")
	}
	cands := req.Candidates
	if len(cands) == 0 {
		cands = []int{10, 100, 1_000, 10_000, 100_000, 1_000_000}
	}
	c := req.CacheMissNs
	if c <= 0 {
		c = costmodel.CacheMissNs()
	}
	m, err := costmodel.Learn(keys, cands, c, btree.DefaultOrder, 0.5, 0.5)
	if err != nil {
		return res, err
	}
	var e int
	var ok bool
	if req.MaxLatencyNs > 0 {
		e, ok = m.PickForLatency(req.MaxLatencyNs, cands)
		if !ok {
			return res, fmt.Errorf("fitingtree: no candidate satisfies %.0fns lookup latency", req.MaxLatencyNs)
		}
	} else {
		e, ok = m.PickForSpace(req.MaxIndexBytes, cands)
		if !ok {
			return res, fmt.Errorf("fitingtree: no candidate fits %d bytes", req.MaxIndexBytes)
		}
	}
	return TuneResult{
		Error:              e,
		PredictedLatencyNs: m.Latency(e),
		PredictedSizeBytes: m.Size(e),
		CacheMissNs:        c,
	}, nil
}
