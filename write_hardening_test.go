package fitingtree_test

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"fitingtree"
)

// TestOptimisticNaNGuards pins the write-path NaN guards: Insert has
// panicked on NaN keys since the facade landed, and Delete must apply the
// same guard — a NaN reaching the sorted delta's binary searches would
// corrupt its invariant silently.
func TestOptimisticNaNGuards(t *testing.T) {
	tr, err := fitingtree.BulkLoad([]float64{1, 2, 3}, []int{1, 2, 3}, fitingtree.Options{Error: 16})
	if err != nil {
		t.Fatal(err)
	}
	o := fitingtree.NewOptimistic(tr)
	expectPanic(t, "Optimistic.Insert", func() { o.Insert(math.NaN(), 9) })
	expectPanic(t, "Optimistic.Delete", func() { o.Delete(math.NaN()) })
	// The guarded facade is still intact afterwards.
	if v, ok := o.Lookup(2); !ok || v != 2 {
		t.Fatalf("Lookup(2) = %d, %v after NaN panics", v, ok)
	}
	if !o.Delete(2) || o.Contains(2) {
		t.Fatal("Delete(2) after NaN panics misbehaved")
	}
}

// TestSetFlushEveryConcurrent drives SetFlushEvery from one goroutine
// while a writer and readers run — the threshold is an atomic now, so this
// must be race-clean (run with -race) and every chosen threshold must
// still be honored eventually.
func TestSetFlushEveryConcurrent(t *testing.T) {
	o := buildOpt(t, seqKeys(1000, 2), 0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				o.SetFlushEvery(1 + i%128)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			o.Lookup(uint64(i % 3000))
			o.Each(uint64(i%3000), func(uint64) bool { return true })
		}
	}()
	for i := 0; i < 5000; i++ {
		k := uint64(i*2 + 1)
		o.Insert(k, k)
		if i%7 == 0 {
			o.Delete(k)
		}
	}
	close(stop)
	wg.Wait()
	want := 1000 + 5000 - (5000+6)/7
	if o.Len() != want {
		t.Fatalf("Len = %d, want %d", o.Len(), want)
	}
	// Thresholds set after the churn still apply to subsequent writes: the
	// insert below trips a flush (freeze, with the default async pipeline)
	// and a drain leaves nothing buffered.
	o.SetFlushEvery(1)
	o.Insert(1, 1)
	o.SyncFlush()
	if st := o.Stats(); st.Buffered != 0 {
		t.Fatalf("flush at 1 left %d buffered delta inserts", st.Buffered)
	}
}

// TestLookupBatchMixedDelta pins the batch read path against every delta
// shape at once: keys with pending adds, keys with tombstones (partial and
// total), keys with both, absent keys, and untouched keys — and checks the
// batch agrees element-wise with single Lookups on the same snapshot.
func TestLookupBatchMixedDelta(t *testing.T) {
	// Base: keys 0,4,8,...,4092; key 2000 appears 5 times total.
	var base []uint64
	for i := 0; i < 1024; i++ {
		base = append(base, uint64(i*4))
	}
	base = append(base, 2000, 2000, 2000, 2000)
	sortU64(base)
	o := buildOpt(t, base, 1<<20) // never flush: the delta holds everything

	o.Insert(3, 3)       // pending add on an absent key
	o.Insert(8, 8)       // pending add on a present key
	o.Delete(16)         // tombstone wiping the only match
	o.Delete(2000)       // partial tombstone on a duplicate run (4 remain)
	o.Insert(2000, 2000) // ...plus a pending add on the same key
	o.Delete(24)         // tombstone + pending add: net one live match
	o.Insert(24, 24)
	for i := 0; i < 5; i++ { // total tombstone via repeated deletes
		if !o.Delete(2000) {
			t.Fatalf("Delete(2000) #%d missed", i)
		}
	}

	probes := []uint64{
		3,    // delta-only add -> found
		8,    // base + pending add -> found
		16,   // fully tombstoned -> absent
		24,   // tombstoned base but pending add -> found
		2000, // add consumed, then all 4 base matches tombstoned -> absent
		40,   // untouched base key -> found
		41,   // never existed -> absent
	}
	// Batch in random, sorted, and reversed orders — all must agree with
	// point lookups.
	orders := [][]uint64{probes, nil, nil}
	orders[1] = append([]uint64(nil), probes...)
	sortU64(orders[1])
	orders[2] = append([]uint64(nil), orders[1]...)
	for i, j := 0, len(orders[2])-1; i < j; i, j = i+1, j-1 {
		orders[2][i], orders[2][j] = orders[2][j], orders[2][i]
	}
	for oi, batch := range orders {
		vals, found := o.LookupBatch(batch)
		for i, k := range batch {
			wv, wok := o.Lookup(k)
			if found[i] != wok || (wok && vals[i] != wv) {
				t.Fatalf("order %d: LookupBatch(%d) = (%d,%v), Lookup = (%d,%v)",
					oi, k, vals[i], found[i], wv, wok)
			}
		}
	}
	// Spot-check the absolute expectations, not just batch/point agreement.
	vals, found := o.LookupBatch(probes)
	wantFound := []bool{true, true, false, true, false, true, false}
	for i := range probes {
		if found[i] != wantFound[i] {
			t.Fatalf("probe %d (%d): found %v, want %v", i, probes[i], found[i], wantFound[i])
		}
		if found[i] && vals[i] != probes[i] {
			t.Fatalf("probe %d (%d): val %d", i, probes[i], vals[i])
		}
	}

	// Survivor selection: with distinct values, a partial tombstone must
	// surface a surviving duplicate (not the dead first match) on the
	// batch path too.
	tr, err := fitingtree.BulkLoad([]uint64{5, 7, 7, 7, 9}, []string{"a", "first", "second", "third", "b"},
		fitingtree.Options{Error: 16})
	if err != nil {
		t.Fatal(err)
	}
	od := fitingtree.NewOptimistic(tr)
	od.Delete(7)
	vs, fs := od.LookupBatch([]uint64{5, 7, 9})
	if !fs[0] || !fs[1] || !fs[2] {
		t.Fatalf("found = %v, want all true", fs)
	}
	if vs[1] != "second" {
		t.Fatalf("survivor = %q, want %q (first match in scan order is tombstoned)", vs[1], "second")
	}
}

// optModel is a reference implementation of the Optimistic facade's
// documented write semantics — pending inserts per key in insertion order,
// tombstones counting the first N matches in scan order, deletes consuming
// the newest pending insert first, and a flush (triggered at the same
// pending-write threshold) that folds survivors-then-adds into the base in
// exactly that order. Distinct values make any deviation in duplicate
// ordering or tombstone accounting visible.
type optModel struct {
	flushAt  int
	base     map[uint64][]uint64
	pendAdds map[uint64][]uint64
	pendDels map[uint64]int
	pending  int
}

func newOptModel(keys, vals []uint64, flushAt int) *optModel {
	m := &optModel{
		flushAt:  flushAt,
		base:     map[uint64][]uint64{},
		pendAdds: map[uint64][]uint64{},
		pendDels: map[uint64]int{},
	}
	for i, k := range keys {
		m.base[k] = append(m.base[k], vals[i])
	}
	return m
}

func (m *optModel) insert(k, v uint64) {
	m.pendAdds[k] = append(m.pendAdds[k], v)
	m.pending++
	m.maybeFlush()
}

func (m *optModel) delete(k uint64) bool {
	if adds := m.pendAdds[k]; len(adds) > 0 {
		m.pendAdds[k] = adds[:len(adds)-1]
		m.pending--
		m.maybeFlush()
		return true
	}
	if len(m.base[k])-m.pendDels[k] <= 0 {
		return false
	}
	m.pendDels[k]++
	m.pending++
	m.maybeFlush()
	return true
}

func (m *optModel) maybeFlush() {
	if m.pending < m.flushAt {
		return
	}
	for k, d := range m.pendDels {
		m.base[k] = append([]uint64(nil), m.base[k][d:]...)
	}
	for k, adds := range m.pendAdds {
		m.base[k] = append(m.base[k], adds...)
	}
	m.pendAdds = map[uint64][]uint64{}
	m.pendDels = map[uint64]int{}
	m.pending = 0
}

// each returns the live values of k in scan order: surviving base matches,
// then pending inserts.
func (m *optModel) each(k uint64) []uint64 {
	var out []uint64
	if b := m.base[k]; len(b) > m.pendDels[k] {
		out = append(out, b[m.pendDels[k]:]...)
	}
	return append(out, m.pendAdds[k]...)
}

func (m *optModel) len() int {
	n := 0
	for k := range m.base {
		n += len(m.each(k))
	}
	for k := range m.pendAdds {
		if _, inBase := m.base[k]; !inBase {
			n += len(m.pendAdds[k])
		}
	}
	return n
}

func (m *optModel) liveKeys() []uint64 {
	seen := map[uint64]bool{}
	var keys []uint64
	add := func(k uint64) {
		if !seen[k] && len(m.each(k)) > 0 {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for k := range m.base {
		add(k)
	}
	for k := range m.pendAdds {
		add(k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// TestOptimisticModelRandomized drives interleaved Insert/Delete with
// distinct value ids through Optimistic facades at several flush cadences
// and compares full value sequences against the reference model after
// every phase — pinning the "first N matches in scan order" tombstone
// semantics exactly across MergeCOW flush boundaries, where a wrong
// duplicate victim or a reordered fold would change the observed values.
// It runs in inline-flush mode: exact victim selection among
// distinct-valued duplicates depends on flush points (a pending insert is
// consumed by Delete only until a freeze or fold moves it into the base
// layer), so only deterministic flush timing admits exact-sequence
// checks. TestOptimisticModelRandomizedAsync covers the async pipeline
// with the flush-timing-invariant subset of these assertions.
func TestOptimisticModelRandomized(t *testing.T) {
	for _, flushAt := range []int{1, 2, 13, 64, 1 << 20} {
		rng := rand.New(rand.NewSource(int64(flushAt) * 31))
		nextVal := uint64(1 << 32) // distinct value ids, disjoint from keys
		base := make([]uint64, 1500)
		baseVals := make([]uint64, 1500)
		for i := range base {
			base[i] = uint64(rng.Intn(300) * 6) // heavy duplication
		}
		sortU64(base)
		for i := range baseVals {
			baseVals[i] = nextVal
			nextVal++
		}
		tr, err := fitingtree.BulkLoad(base, baseVals, fitingtree.Options{Error: 32, BufferSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		o := fitingtree.NewOptimistic(tr)
		o.SetAsyncFlush(false) // exact-sequence checks need deterministic flush points
		o.SetFlushEvery(flushAt)
		m := newOptModel(base, baseVals, flushAt)

		check := func(phase int) {
			t.Helper()
			if o.Len() != m.len() {
				t.Fatalf("flushAt=%d phase %d: Len %d, model %d", flushAt, phase, o.Len(), m.len())
			}
			// Full scan: (key, value) sequence must match the model's
			// per-key scan order stitched over sorted live keys.
			var wantK, wantV []uint64
			for _, k := range m.liveKeys() {
				for _, v := range m.each(k) {
					wantK = append(wantK, k)
					wantV = append(wantV, v)
				}
			}
			i := 0
			o.AscendRange(0, 1<<62, func(k, v uint64) bool {
				if i >= len(wantK) || k != wantK[i] || v != wantV[i] {
					t.Fatalf("flushAt=%d phase %d: scan[%d] = (%d,%d), model (%d,%d)",
						flushAt, phase, i, k, v, wantK[i], wantV[i])
				}
				i++
				return true
			})
			if i != len(wantK) {
				t.Fatalf("flushAt=%d phase %d: scan visited %d, model %d", flushAt, phase, i, len(wantK))
			}
			// Point paths: Each sequences and batch lookups on sampled keys.
			probe := make([]uint64, 0, 128)
			for j := 0; j < 128; j++ {
				probe = append(probe, uint64(rng.Intn(2000)))
			}
			bv, bf := o.LookupBatch(probe)
			for pi, k := range probe {
				want := m.each(k)
				var got []uint64
				o.Each(k, func(v uint64) bool { got = append(got, v); return true })
				if len(got) != len(want) {
					t.Fatalf("flushAt=%d phase %d: Each(%d) = %v, model %v", flushAt, phase, k, got, want)
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("flushAt=%d phase %d: Each(%d) = %v, model %v", flushAt, phase, k, got, want)
					}
				}
				if bf[pi] != (len(want) > 0) {
					t.Fatalf("flushAt=%d phase %d: batch found[%d]=%v, model has %d matches",
						flushAt, phase, k, bf[pi], len(want))
				}
				if bf[pi] {
					// The batch path surfaces some live match; with the
					// delta folded by flushes at arbitrary points the
					// exact pick is pinned to a member of the live set.
					ok := false
					for _, v := range want {
						if bv[pi] == v {
							ok = true
							break
						}
					}
					if !ok {
						t.Fatalf("flushAt=%d phase %d: batch val for %d = %d not in live set %v",
							flushAt, phase, k, bv[pi], want)
					}
				}
			}
		}

		check(-1)
		for phase := 0; phase < 4; phase++ {
			for i := 0; i < 500; i++ {
				k := uint64(rng.Intn(2000))
				if rng.Intn(3) == 0 {
					if got, want := o.Delete(k), m.delete(k); got != want {
						t.Fatalf("flushAt=%d: Delete(%d) = %v, model %v", flushAt, k, got, want)
					}
				} else {
					v := nextVal
					nextVal++
					o.Insert(k, v)
					m.insert(k, v)
				}
			}
			check(phase)
		}
	}
}

// TestOptimisticModelRandomizedAsync extends the randomized model test to
// the asynchronous flush pipeline: the single writer races the background
// flusher (run under -race), so reads constantly cross freeze and publish
// boundaries. Exact victim selection among distinct-valued duplicates is
// flush-timing-dependent (see TestOptimisticModelRandomized), so this
// variant checks the flush-timing-invariant contract instead: Delete
// outcomes, total and per-key live counts, globally ordered scans, batch
// found flags, and that every surviving value was genuinely inserted (or
// bulk-loaded) under its key.
func TestOptimisticModelRandomizedAsync(t *testing.T) {
	// The model must hold under both router kinds: the persistent B+ tree
	// router (publication clones it, sharing untouched nodes) and the
	// implicit router (publication copies its flat arrays).
	for _, router := range []fitingtree.RouterKind{fitingtree.RouterBTree, fitingtree.RouterImplicit} {
		t.Run(map[fitingtree.RouterKind]string{
			fitingtree.RouterBTree:    "btree",
			fitingtree.RouterImplicit: "implicit",
		}[router], func(t *testing.T) { testOptimisticModelRandomizedAsync(t, router) })
	}
}

func testOptimisticModelRandomizedAsync(t *testing.T, router fitingtree.RouterKind) {
	for _, flushAt := range []int{1, 2, 13, 64} {
		rng := rand.New(rand.NewSource(int64(flushAt) * 101))
		nextVal := uint64(1 << 32)
		base := make([]uint64, 1500)
		baseVals := make([]uint64, 1500)
		for i := range base {
			base[i] = uint64(rng.Intn(300) * 6) // heavy duplication
		}
		sortU64(base)
		everVals := map[uint64]map[uint64]bool{} // key -> all values ever stored
		for i := range baseVals {
			baseVals[i] = nextVal
			nextVal++
			if everVals[base[i]] == nil {
				everVals[base[i]] = map[uint64]bool{}
			}
			everVals[base[i]][baseVals[i]] = true
		}
		tr, err := fitingtree.BulkLoad(base, baseVals, fitingtree.Options{Error: 32, BufferSize: 8, Router: router})
		if err != nil {
			t.Fatal(err)
		}
		o := fitingtree.NewOptimistic(tr)
		o.SetAsyncFlush(true) // the pipeline under test, whatever GOMAXPROCS says
		o.SetFlushEvery(flushAt)
		m := newOptModel(base, baseVals, flushAt)

		check := func(phase int) {
			t.Helper()
			if o.Len() != m.len() {
				t.Fatalf("flushAt=%d phase %d: Len %d, model %d", flushAt, phase, o.Len(), m.len())
			}
			// Global scan: key sequence must match the model exactly (key
			// order is flush-invariant), and every value must have been
			// stored under its key at some point.
			var wantK []uint64
			for _, k := range m.liveKeys() {
				for range m.each(k) {
					wantK = append(wantK, k)
				}
			}
			i := 0
			o.AscendRange(0, 1<<62, func(k, v uint64) bool {
				if i >= len(wantK) || k != wantK[i] {
					t.Fatalf("flushAt=%d phase %d: scan[%d] key = %d, model %d",
						flushAt, phase, i, k, wantK[i])
				}
				if !everVals[k][v] {
					t.Fatalf("flushAt=%d phase %d: scan[%d] = (%d,%d): value never stored under key",
						flushAt, phase, i, k, v)
				}
				i++
				return true
			})
			if i != len(wantK) {
				t.Fatalf("flushAt=%d phase %d: scan visited %d, model %d", flushAt, phase, i, len(wantK))
			}
			// Point paths: per-key counts and batch found flags.
			probe := make([]uint64, 0, 128)
			for j := 0; j < 128; j++ {
				probe = append(probe, uint64(rng.Intn(2000)))
			}
			bv, bf := o.LookupBatch(probe)
			for pi, k := range probe {
				want := m.each(k)
				got := 0
				o.Each(k, func(v uint64) bool {
					if !everVals[k][v] {
						t.Fatalf("flushAt=%d phase %d: Each(%d) yielded alien value %d", flushAt, phase, k, v)
					}
					got++
					return true
				})
				if got != len(want) {
					t.Fatalf("flushAt=%d phase %d: Each(%d) count %d, model %d", flushAt, phase, k, got, len(want))
				}
				if bf[pi] != (len(want) > 0) {
					t.Fatalf("flushAt=%d phase %d: batch found[%d]=%v, model has %d matches",
						flushAt, phase, k, bf[pi], len(want))
				}
				if bf[pi] && !everVals[k][bv[pi]] {
					t.Fatalf("flushAt=%d phase %d: batch val for %d = %d never stored", flushAt, phase, k, bv[pi])
				}
			}
		}

		check(-1)
		for phase := 0; phase < 4; phase++ {
			for i := 0; i < 500; i++ {
				k := uint64(rng.Intn(2000))
				if rng.Intn(3) == 0 {
					if got, want := o.Delete(k), m.delete(k); got != want {
						t.Fatalf("flushAt=%d: Delete(%d) = %v, model %v", flushAt, k, got, want)
					}
				} else {
					v := nextVal
					nextVal++
					if everVals[k] == nil {
						everVals[k] = map[uint64]bool{}
					}
					everVals[k][v] = true
					o.Insert(k, v)
					m.insert(k, v)
				}
			}
			check(phase)
		}
		// Drain the pipeline and re-verify: the fold must not change any
		// flush-invariant observation.
		o.Close()
		check(4)
	}
}
