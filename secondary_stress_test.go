package fitingtree_test

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"fitingtree"
)

// TestSecondaryUnderConcurrentWrites stress-tests a Secondary maintained
// by parallel writers over each concurrent backend: every posting
// mutation (Insert or exact-victim Delete) is paired with the same
// mutation on a striped reference map, goroutines interleave on
// different keys, and concurrent readers scan while writes are in
// flight. After quiescing, the index's posting lists must equal the
// reference exactly — DeleteValue's named-victim semantics are what make
// that equality hold regardless of background flush timing. Run with
// -race in CI.
func TestSecondaryUnderConcurrentWrites(t *testing.T) {
	backends := []struct {
		name  string
		build func(t *testing.T) fitingtree.Index[uint64, int]
	}{
		{"optimistic", func(t *testing.T) fitingtree.Index[uint64, int] {
			empty, err := fitingtree.BulkLoad[uint64, int](nil, nil, fitingtree.Options{Error: 16, BufferSize: 8})
			if err != nil {
				t.Fatal(err)
			}
			o := fitingtree.NewOptimistic(empty)
			o.SetFlushEvery(32)
			t.Cleanup(o.Close)
			return o
		}},
		{"sharded", func(t *testing.T) fitingtree.Index[uint64, int] {
			empty, err := fitingtree.BulkLoad[uint64, int](nil, nil, fitingtree.Options{Error: 16, BufferSize: 8})
			if err != nil {
				t.Fatal(err)
			}
			s, err := fitingtree.NewSharded(empty, 4)
			if err != nil {
				t.Fatal(err)
			}
			s.SetFlushEvery(32)
			t.Cleanup(s.Close)
			return s
		}},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) { testSecondaryStress(t, b.build(t)) })
	}
}

func testSecondaryStress(t *testing.T, backend fitingtree.Index[uint64, int]) {
	const (
		workers  = 4
		opsEach  = 2_000
		keySpace = 64 // small: heavy duplication, many per-key postings
		stripes  = 16
	)
	idx := fitingtree.NewSecondary[uint64, int](backend)

	// Striped reference: stripe k's lock makes the backend mutation and
	// the reference mutation one transaction, while different keys
	// proceed in parallel — the discipline a heap table would use.
	var locks [stripes]sync.Mutex
	refs := make([]map[uint64]map[int]bool, stripes)
	for i := range refs {
		refs[i] = make(map[uint64]map[int]bool)
	}
	var rowSeq sync.Mutex
	nextRow := 0

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for op := 0; op < opsEach; op++ {
				k := uint64(rng.Intn(keySpace))
				s := int(k % stripes)
				if rng.Intn(3) > 0 { // 2/3 inserts
					rowSeq.Lock()
					row := nextRow
					nextRow++
					rowSeq.Unlock()
					locks[s].Lock()
					idx.Insert(k, row)
					if refs[s][k] == nil {
						refs[s][k] = make(map[int]bool)
					}
					refs[s][k][row] = true
					locks[s].Unlock()
				} else {
					locks[s].Lock()
					var victim, found = 0, false
					for r := range refs[s][k] {
						victim, found = r, true
						break
					}
					if found {
						if !idx.Delete(k, victim) {
							locks[s].Unlock()
							t.Errorf("Delete(%d, %d) missed a posting the reference holds", k, victim)
							return
						}
						delete(refs[s][k], victim)
					} else if idx.Delete(k, -1) {
						locks[s].Unlock()
						t.Errorf("Delete(%d, -1) removed a posting that never existed", k)
						return
					}
					locks[s].Unlock()
				}
			}
		}(w)
	}

	// Concurrent readers: scans must never crash, return a key outside
	// the requested range, or yield a row id that was never issued.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(2000 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo := uint64(rng.Intn(keySpace))
				hi := lo + uint64(rng.Intn(8))
				idx.RangeRows(lo, hi, func(k uint64, row int) bool {
					if k < lo || k > hi {
						t.Errorf("scan [%d,%d] returned key %d", lo, hi, k)
						return false
					}
					if row < 0 {
						t.Errorf("scan returned impossible row %d", row)
						return false
					}
					return true
				})
				idx.Rows(uint64(rng.Intn(keySpace)))
			}
		}(r)
	}

	wg.Wait()
	close(stop)
	readers.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: posting lists must equal the reference exactly.
	want := 0
	for k := uint64(0); k < keySpace; k++ {
		ref := refs[k%stripes][k]
		want += len(ref)
		got := idx.Rows(k)
		if len(got) != len(ref) {
			t.Fatalf("key %d: %d postings, want %d", k, len(got), len(ref))
		}
		sort.Ints(got)
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				t.Fatalf("key %d: duplicate posting %d", k, got[i])
			}
		}
		for _, row := range got {
			if !ref[row] {
				t.Fatalf("key %d: posting %d not in reference", k, row)
			}
		}
	}
	if idx.Len() != want {
		t.Fatalf("Len = %d, want %d", idx.Len(), want)
	}
}
