package fitingtree_test

import (
	"fmt"

	"fitingtree"
)

// ExampleBuildSecondary indexes the unsorted key column of a small heap
// table, queries postings by key and by range, and maintains the index as
// rows are appended and removed — the non-clustered scenario of the
// paper's Section 2.2.1 (Figure 3).
func ExampleBuildSecondary() {
	// An unsorted heap table; column is the indexed attribute.
	table := []string{"seattle", "tokyo", "oslo", "lima", "tokyo-2"}
	column := []uint64{47, 35, 59, 12, 35}

	idx, err := fitingtree.BuildSecondary(column, fitingtree.Options{Error: 4, BufferSize: 2})
	if err != nil {
		panic(err)
	}

	// Exact match with duplicates: both rows at latitude 35.
	for _, row := range idx.Rows(35) {
		fmt.Println("lat 35:", table[row])
	}

	// Range scan in key order; row fetches are random heap accesses.
	idx.RangeRows(40, 60, func(k uint64, row int) bool {
		fmt.Printf("lat %d: %s\n", k, table[row])
		return true
	})

	// Appending a row updates the index incrementally; deleting names the
	// exact posting, so the other latitude-35 rows are untouched.
	table = append(table, "osaka")
	idx.Insert(35, len(table)-1)
	idx.Delete(35, 1)
	fmt.Println("rows at 35:", len(idx.Rows(35)))

	// Output:
	// lat 35: tokyo
	// lat 35: tokyo-2
	// lat 47: seattle
	// lat 59: oslo
	// rows at 35: 2
}

// ExampleNewSecondary maintains a secondary index under concurrent
// writes: the backend is a Sharded tree, so posting inserts and deletes
// from many goroutines proceed in parallel while readers scan.
func ExampleNewSecondary() {
	empty, err := fitingtree.BulkLoad[uint64, int](nil, nil, fitingtree.Options{Error: 16})
	if err != nil {
		panic(err)
	}
	backend, err := fitingtree.NewSharded(empty, 4)
	if err != nil {
		panic(err)
	}
	defer backend.Close()
	idx := fitingtree.NewSecondary[uint64, int](backend)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for row := 0; row < 1000; row++ {
			idx.Insert(uint64(row%100), row)
		}
	}()
	<-done
	// Every key 0..99 now posts exactly 10 rows.
	fmt.Println("postings:", idx.Len(), "rows at key 7:", len(idx.Rows(7)))

	// Output:
	// postings: 1000 rows at key 7: 10
}
