package fitingtree

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"fitingtree/internal/pager"
	"fitingtree/internal/wal"
)

// --- scenario -------------------------------------------------------------

// dumpSharded extracts a DurableSharded's full content in the model's
// normalized form.
func dumpSharded(d *DurableSharded[int, int]) [][2]int {
	var pairs [][2]int
	d.AscendRange(-1<<62, 1<<62, func(k, v int) bool {
		pairs = append(pairs, [2]int{k, v})
		return true
	})
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	return pairs
}

// shardedCrashScript is a fixed op sequence that scatters keys across the
// whole range (so every shard of a multi-shard facade sees traffic), with
// duplicates (same value per key), deletes, interleaved checkpoints, and
// one explicit rebalance in the middle.
func shardedCrashScript() (ops []dOp, ckptAt, rebalAt map[int]bool) {
	// Stride 997 over a 4096-key space: adjacent ops land on far-apart
	// keys, exercising every shard in turn.
	for i := 0; i < 40; i++ {
		k := (i * 997) % 4096
		ops = append(ops, dOp{k: k, v: k * 10})
		if i%7 == 0 {
			ops = append(ops, dOp{k: k, v: k * 10}) // duplicate, same value
		}
	}
	for i := 0; i < 10; i++ {
		ops = append(ops, dOp{del: true, k: (i * 3 * 997) % 4096})
	}
	ckptAt = map[int]bool{11: true, 37: true}
	rebalAt = map[int]bool{24: true}
	return ops, ckptAt, rebalAt
}

// newShardedUnderTest opens a deterministic facade for the crash matrix:
// no background checkpoints, no async flush, no skew-triggered
// migrations — every fault site is reached by the script alone.
func newShardedUnderTest(t testing.TB, fsys wal.FS, dev pager.Device, shards int) *DurableSharded[int, int] {
	t.Helper()
	d, err := OpenDurableSharded[int, int](fsys, dev, Options{}, shards)
	if err != nil {
		t.Fatal(err)
	}
	quiesce(t, d)
	return d
}

// quiesce puts a facade into the crash matrix's deterministic mode.
func quiesce(t testing.TB, d *DurableSharded[int, int]) {
	t.Helper()
	d.SetAutoCheckpoint(false)
	d.SetAsyncFlush(false)
	d.SetFlushEvery(8)
	d.SetRebalanceFactor(math.Inf(1))
}

// seedSharded bulk-creates a genuinely multi-shard store (a fresh Open
// starts with one shard; the matrices need traffic on several), returning
// the facade and the matching initial model. Keys are spaced so the
// script's stride interleaves with them; values follow the script's
// k*10 convention so duplicate deletes stay value-agnostic.
func seedSharded(t testing.TB, fsys wal.FS, dev pager.Device, shards int) (*DurableSharded[int, int], *dmodel) {
	t.Helper()
	keys := make([]int, 256)
	vals := make([]int, len(keys))
	for i := range keys {
		keys[i] = i * 16
		vals[i] = keys[i] * 10
	}
	tree, err := BulkLoad(keys, vals, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := CreateDurableSharded(fsys, dev, tree, shards)
	if err != nil {
		t.Fatal(err)
	}
	quiesce(t, d)
	if n := d.Shards(); n != shards {
		t.Fatalf("seeded %d shards, want %d", n, shards)
	}
	m := &dmodel{}
	for i, k := range keys {
		m.insert(k, vals[i])
	}
	return d, m
}

// runShardedScript drives the facade through the script from the initial
// model state m, stopping at the first error (injected faults poison
// everything after it anyway). It returns the number of ops acknowledged
// and the model state after every prefix. Checkpoint and Rebalance
// failures are ignored: neither is an acknowledgment, and the WAL still
// covers the data either way.
func runShardedScript(d *DurableSharded[int, int], m *dmodel, ops []dOp, ckptAt, rebalAt map[int]bool) (acked int, states []*dmodel) {
	states = append(states, m.clone())
	for i, op := range ops {
		if ckptAt[i] {
			d.Checkpoint()
		}
		if rebalAt[i] {
			d.Rebalance()
		}
		var err error
		if op.del {
			_, err = d.Delete(op.k)
		} else {
			err = d.Insert(op.k, op.v)
		}
		if op.del {
			m.delete(op.k)
		} else {
			m.insert(op.k, op.v)
		}
		states = append(states, m.clone())
		if err != nil {
			return acked, states[:i+2]
		}
		acked = i + 1
	}
	return acked, states
}

// verifyShardedRecovery reopens the (injector-free) store and asserts the
// recovered state equals the model after some prefix of at least the
// acknowledged ops, and that the recovered tree is structurally sound.
func verifyShardedRecovery(t *testing.T, label string, fsys wal.FS, dev pager.Device, shards, acked int, states []*dmodel) {
	t.Helper()
	rec, err := OpenDurableSharded[int, int](fsys, dev, Options{}, shards)
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	rec.SetAutoCheckpoint(false)
	got := dumpSharded(rec)
	for m := len(states) - 1; m >= 0; m-- {
		if pairsEqual(got, states[m].pairs) {
			if m < acked {
				t.Fatalf("%s: recovered only %d ops but %d were acknowledged", label, m, acked)
			}
			return
		}
	}
	t.Fatalf("%s: recovered state (%d pairs) matches no op prefix (acked %d)", label, len(got), acked)
}

// --- smoke ----------------------------------------------------------------

// TestDurableShardedBasic covers the healthy round trip: writes scattered
// over several shards, a checkpoint, more writes, recovery replaying the
// tails, and read-path parity with a model.
func TestDurableShardedBasic(t *testing.T) {
	mem := wal.NewMemFS()
	dev := pager.NewDisk()
	d := newShardedUnderTest(t, mem, dev, 4)
	for i := 0; i < 500; i++ {
		if err := d.Insert((i*997)%4096, i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if n := d.WALRecords(); n != 0 {
		t.Fatalf("WAL holds %d records after checkpoint", n)
	}
	for i := 500; i < 600; i++ {
		if err := d.Insert((i*997)%4096, i); err != nil {
			t.Fatal(err)
		}
	}
	if ok, err := d.Delete((3 * 997) % 4096); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	want := dumpSharded(d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	rec := newShardedUnderTest(t, mem, dev, 4)
	if got := dumpSharded(rec); !pairsEqual(got, want) {
		t.Fatalf("recovered %d pairs, want %d", len(got), len(want))
	}
	// Close checkpointed, so the reopened logs were empty.
	for i, st := range rec.WALOpenStats() {
		if st.Records != 0 {
			t.Fatalf("shard %d log held %d records after Close", i, st.Records)
		}
	}
	vals, oks := rec.LookupBatch([]int{997 % 4096, 4095, -7})
	if !oks[0] || oks[2] {
		t.Fatalf("batch lookup: %v %v", vals, oks)
	}
}

// TestCreateDurableSharded checks bulk import: the tree is split across
// shards, the initial cut commits without WAL traffic, and recovery gets
// everything back through the multi-shard manifest.
func TestCreateDurableSharded(t *testing.T) {
	keys := make([]int, 5000)
	vals := make([]int, len(keys))
	for i := range keys {
		keys[i], vals[i] = i*3, i
	}
	tree, err := BulkLoad(keys, vals, Options{Error: 16})
	if err != nil {
		t.Fatal(err)
	}
	mem := wal.NewMemFS()
	dev := pager.NewDisk()
	d, err := CreateDurableSharded(mem, dev, tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n := d.Shards(); n != 4 {
		t.Fatalf("bulk import built %d shards, want 4", n)
	}
	if n := d.WALRecords(); n != 0 {
		t.Fatalf("bulk import appended %d WAL records", n)
	}
	sizes := d.ShardSizes()
	for i, n := range sizes {
		if n < len(keys)/8 {
			t.Fatalf("shard %d holds only %d of %d elements: %v", i, n, len(keys), sizes)
		}
	}
	if err := d.Insert(1, -1); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec := newShardedUnderTest(t, mem, dev, 4)
	if rec.Len() != len(keys)+1 {
		t.Fatalf("recovered %d elements, want %d", rec.Len(), len(keys)+1)
	}
	if v, ok := rec.Lookup(1); !ok || v != -1 {
		t.Fatalf("post-import insert lost: %v %v", v, ok)
	}
	if v, ok := rec.Lookup(keys[4321]); !ok || v != 4321 {
		t.Fatalf("bulk key lost: %v %v", v, ok)
	}
}

// TestDurableShardedRebalance checks the happy-path migration: fences
// move, the generation advances, old logs disappear, data survives a
// post-migration crash and recovery.
func TestDurableShardedRebalance(t *testing.T) {
	mem := wal.NewMemFS()
	dev := pager.NewDisk()
	d := newShardedUnderTest(t, mem, dev, 3)
	// Heavily skewed load: everything lands in the last shard's range.
	for i := 0; i < 1000; i++ {
		if err := d.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if g := d.Generation(); g != 0 {
		t.Fatalf("generation %d before any rebalance", g)
	}
	if err := d.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if g := d.Generation(); g != 1 {
		t.Fatalf("generation %d after rebalance, want 1", g)
	}
	if n := d.Shards(); n != 3 {
		t.Fatalf("%d shards after rebalance, want 3", n)
	}
	sizes := d.ShardSizes()
	for i, n := range sizes {
		if n < 1000/6 {
			t.Fatalf("shard %d still skewed after rebalance: %v", i, sizes)
		}
	}
	// The old generation's logs and the intent are gone.
	for _, name := range mem.Names() {
		if strings.HasPrefix(name, "wal-0-") || name == IntentName {
			t.Fatalf("stale file %q survived the migration", name)
		}
	}
	// Post-migration writes land in generation-1 logs and survive a crash.
	for i := 1000; i < 1100; i++ {
		if err := d.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	mem.Crash()
	rec := newShardedUnderTest(t, mem, dev, 3)
	if rec.Len() != 1100 {
		t.Fatalf("recovered %d elements, want 1100", rec.Len())
	}
	if g := rec.Generation(); g != 1 {
		t.Fatalf("recovered generation %d, want 1", g)
	}
}

// TestDurableShardedAutoRebalance checks that the skew trigger fires on
// the write path and commits a durable migration without any explicit
// call.
func TestDurableShardedAutoRebalance(t *testing.T) {
	mem := wal.NewMemFS()
	dev := pager.NewDisk()
	d, err := OpenDurableSharded[int, int](mem, dev, Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	d.SetAutoCheckpoint(false)
	d.SetAsyncFlush(false)
	d.SetSyncEvery(64)
	for i := 0; i < 3000; i++ {
		if err := d.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if g := d.Generation(); g == 0 {
		t.Fatal("skewed load never triggered a migration")
	}
	if n := d.Shards(); n != 3 {
		t.Fatalf("%d shards after auto rebalance, want 3", n)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec := newShardedUnderTest(t, mem, dev, 3)
	if rec.Len() != 3000 {
		t.Fatalf("recovered %d elements, want 3000", rec.Len())
	}
}

// --- crash matrices -------------------------------------------------------

// TestShardedCrashMatrixWAL kills the whole log file system at every
// mutating operation of the sharded script — mid-append on any shard,
// mid-sync, mid-truncate, mid-intent, mid-migration — then crashes away
// unsynced bytes and asserts prefix-consistent recovery with no
// acknowledged write lost.
func TestShardedCrashMatrixWAL(t *testing.T) {
	ops, ckptAt, rebalAt := shardedCrashScript()

	probeFS := wal.NewFaultFS(wal.NewMemFS())
	d, m := seedSharded(t, probeFS, pager.NewDisk(), 3)
	probeFS.SetTrip(-1) // reset the counter: only script-time sites matter
	if acked, _ := runShardedScript(d, m, ops, ckptAt, rebalAt); acked != len(ops) {
		t.Fatalf("probe run acknowledged %d/%d ops", acked, len(ops))
	}
	sites := probeFS.Ops()
	if sites < 2*len(ops) {
		t.Fatalf("probe counted only %d WAL fault sites", sites)
	}

	for trip := 0; trip < sites; trip++ {
		trip := trip
		t.Run(fmt.Sprintf("trip=%d", trip), func(t *testing.T) {
			t.Parallel()
			mem := wal.NewMemFS()
			faulty := wal.NewFaultFS(mem)
			dev := pager.NewDisk()
			d, m := seedSharded(t, faulty, dev, 3)
			faulty.SetTrip(trip)
			acked, states := runShardedScript(d, m, ops, ckptAt, rebalAt)
			mem.Crash()
			verifyShardedRecovery(t, "wal crash", mem, dev, 3, acked, states)
		})
	}
}

// TestShardedCrashMatrixCheckpoint kills the checkpoint device at every
// page write and sync — mid-blob, mid-manifest, mid-superblock, and
// anywhere inside the rebalance's committing cut — and asserts the
// previous committed epoch plus the intact logs still recover every
// acknowledged write.
func TestShardedCrashMatrixCheckpoint(t *testing.T) {
	ops, ckptAt, rebalAt := shardedCrashScript()

	probeDev := pager.NewFaultDevice(pager.NewDisk())
	d, m := seedSharded(t, wal.NewMemFS(), probeDev, 3)
	probeDev.SetTrip(-1) // reset the counter: only script-time sites matter
	if acked, _ := runShardedScript(d, m, ops, ckptAt, rebalAt); acked != len(ops) {
		t.Fatalf("probe run acknowledged %d/%d ops", acked, len(ops))
	}
	sites := probeDev.Ops()
	if sites == 0 {
		t.Fatal("probe counted no device fault sites")
	}

	for trip := 0; trip < sites; trip++ {
		trip := trip
		t.Run(fmt.Sprintf("trip=%d", trip), func(t *testing.T) {
			t.Parallel()
			mem := wal.NewMemFS()
			inner := pager.NewDisk()
			faulty := pager.NewFaultDevice(inner)
			d, m := seedSharded(t, mem, faulty, 3)
			faulty.SetTrip(trip)
			acked, states := runShardedScript(d, m, ops, ckptAt, rebalAt)
			mem.Crash()
			verifyShardedRecovery(t, "ckpt crash", mem, inner, 3, acked, states)
		})
	}
}

// TestShardedCrashMatrixOneShard confines the fault to a single shard's
// log file (every other shard's storage stays healthy) and asserts the
// poison protocol: the first failed shard write fails, every later write
// anywhere fails fast with the same error, and recovery still sees a
// consistent prefix covering all acknowledged ops.
func TestShardedCrashMatrixOneShard(t *testing.T) {
	ops, ckptAt, _ := shardedCrashScript() // no rebalance: generation stays 0
	const shards = 3

	for victim := 0; victim < shards; victim++ {
		victimName := ShardWALName(0, victim)
		filter := func(name string) bool { return name == victimName }

		probeFS := wal.NewFaultFS(wal.NewMemFS())
		d, m := seedSharded(t, probeFS, pager.NewDisk(), shards)
		probeFS.SetNameFilter(filter)
		probeFS.SetTrip(-1)
		if acked, _ := runShardedScript(d, m, ops, ckptAt, nil); acked != len(ops) {
			t.Fatalf("probe run acknowledged %d/%d ops", acked, len(ops))
		}
		sites := probeFS.Ops()
		if sites == 0 {
			t.Fatalf("victim %d saw no traffic", victim)
		}

		for trip := 0; trip < sites; trip++ {
			victim, trip := victim, trip
			t.Run(fmt.Sprintf("victim=%d/trip=%d", victim, trip), func(t *testing.T) {
				t.Parallel()
				mem := wal.NewMemFS()
				faulty := wal.NewFaultFS(mem)
				dev := pager.NewDisk()
				d, m := seedSharded(t, faulty, dev, shards)
				faulty.SetNameFilter(filter)
				faulty.SetTrip(trip)
				acked, states := runShardedScript(d, m, ops, ckptAt, nil)

				// The op that hit the dead shard poisoned the facade:
				// every subsequent write — on ANY shard — fails fast with
				// the same sticky error.
				if acked < len(ops) {
					if err := d.Err(); !errors.Is(err, wal.ErrInjected) {
						t.Fatalf("poisoned facade Err() = %v", err)
					}
					if err := d.Insert(0, 0); !errors.Is(err, wal.ErrInjected) {
						t.Fatalf("write on healthy shard after poison = %v", err)
					}
					if _, err := d.Delete(4095); !errors.Is(err, wal.ErrInjected) {
						t.Fatalf("delete after poison = %v", err)
					}
				}
				if err := d.Close(); acked < len(ops) && !errors.Is(err, wal.ErrInjected) {
					t.Fatalf("poisoned Close() = %v", err)
				}
				mem.Crash()
				verifyShardedRecovery(t, "one-shard crash", mem, dev, shards, acked, states)
			})
		}
	}
}

// TestShardedCrashMatrixRebalance kills storage at every fault point of a
// migration — intent write, new-generation log creation, the committing
// cut's every page, the sweep — crashes, and asserts recovery resolves
// the intent wholesale: the data always equals the full pre-migration
// model (a fence move changes layout, never content), the intent file is
// gone, and the store keeps working.
func TestShardedCrashMatrixRebalance(t *testing.T) {
	const shards = 3
	const n = 600
	load := func(t *testing.T, fsys wal.FS, dev pager.Device) *DurableSharded[int, int] {
		d := newShardedUnderTest(t, fsys, dev, shards)
		for i := 0; i < n; i++ {
			if err := d.Insert(i, i); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}
	wantPairs := make([][2]int, n)
	for i := range wantPairs {
		wantPairs[i] = [2]int{i, i}
	}

	// Probe on both axes: how many FS ops and device ops one migration
	// costs after an identical load.
	probeFS := wal.NewFaultFS(wal.NewMemFS())
	probeDev := pager.NewFaultDevice(pager.NewDisk())
	d := load(t, probeFS, probeDev)
	probeFS.SetTrip(-1) // reset counters to isolate the migration's sites
	probeDev.SetTrip(-1)
	if err := d.Rebalance(); err != nil {
		t.Fatal(err)
	}
	fsSites, devSites := probeFS.Ops(), probeDev.Ops()
	if fsSites == 0 || devSites == 0 {
		t.Fatalf("probe migration counted %d FS / %d device sites", fsSites, devSites)
	}

	check := func(t *testing.T, label string, mem *wal.MemFS, dev pager.Device) {
		t.Helper()
		mem.Crash()
		rec, err := OpenDurableSharded[int, int](mem, dev, Options{}, shards)
		if err != nil {
			t.Fatalf("%s: recovery failed: %v", label, err)
		}
		rec.SetAutoCheckpoint(false)
		if got := dumpSharded(rec); !pairsEqual(got, wantPairs) {
			t.Fatalf("%s: recovered %d pairs, want %d — a migration fault changed the data", label, len(got), n)
		}
		// The intent never outlives a recovery, whichever way it resolved.
		if _, err := mem.Open(IntentName); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("%s: intent file survived recovery: %v", label, err)
		}
		// The recovered store accepts writes and a checkpoint: no
		// generation/name collision with migration leftovers.
		if err := rec.Insert(n+1, -1); err != nil {
			t.Fatalf("%s: post-recovery insert: %v", label, err)
		}
		if _, err := rec.Checkpoint(); err != nil {
			t.Fatalf("%s: post-recovery checkpoint: %v", label, err)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}

	for trip := 0; trip < fsSites; trip++ {
		trip := trip
		t.Run(fmt.Sprintf("fs/trip=%d", trip), func(t *testing.T) {
			t.Parallel()
			mem := wal.NewMemFS()
			faulty := wal.NewFaultFS(mem)
			dev := pager.NewDisk()
			d := load(t, faulty, dev)
			faulty.SetTrip(trip)
			// Trips in the post-commit sweep are absorbed (the sweep is
			// best-effort; recovery re-cleans), so rerr may be nil for
			// the last few sites. A failed migration must poison.
			rerr := d.Rebalance()
			if rerr != nil {
				if err := d.Insert(0, 0); err == nil {
					t.Fatal("write accepted on a facade with an ambiguous migration")
				}
			}
			check(t, "fs", mem, dev)
		})
	}
	for trip := 0; trip < devSites; trip++ {
		trip := trip
		t.Run(fmt.Sprintf("dev/trip=%d", trip), func(t *testing.T) {
			t.Parallel()
			mem := wal.NewMemFS()
			inner := pager.NewDisk()
			faulty := pager.NewFaultDevice(inner)
			d := load(t, mem, faulty)
			faulty.SetTrip(trip)
			d.Rebalance() // may fail; recovery must resolve either way
			check(t, "dev", mem, inner)
		})
	}
}

// --- sticky poison --------------------------------------------------------

// TestDurableShardedStickyError pins the poison protocol end to end on
// the sharded facade: a sync failure fails the triggering write, every
// subsequent write of every kind returns the same error, Err is sticky,
// Close stays safe, and recovery sees exactly the acknowledged prefix.
func TestDurableShardedStickyError(t *testing.T) {
	mem := wal.NewMemFS()
	faulty := wal.NewFaultFS(mem)
	dev := pager.NewDisk()
	d := newShardedUnderTest(t, faulty, dev, 3)
	for i := 0; i < 20; i++ {
		if err := d.Insert((i*997)%4096, i); err != nil {
			t.Fatal(err)
		}
	}
	// Trip the very next FS operation: the 21st insert's append fails.
	faulty.SetTrip(0)
	werr := d.Insert(1, 1)
	if !errors.Is(werr, wal.ErrInjected) {
		t.Fatalf("tripped insert error = %v", werr)
	}
	for i := 0; i < 5; i++ {
		if err := d.Insert((i*131)%4096, i); !errors.Is(err, werr) {
			t.Fatalf("insert %d after poison = %v, want sticky %v", i, err, werr)
		}
		if _, err := d.Delete((i * 997) % 4096); !errors.Is(err, werr) {
			t.Fatalf("delete %d after poison = %v", i, err)
		}
		if _, err := d.DeleteValue((i*997)%4096, i); !errors.Is(err, werr) {
			t.Fatalf("delete-value %d after poison = %v", i, err)
		}
	}
	if err := d.Err(); !errors.Is(err, werr) {
		t.Fatalf("Err() = %v, want sticky %v", err, werr)
	}
	// Reads keep serving the in-memory state.
	if v, ok := d.Lookup(997 % 4096); !ok || v != 1 {
		t.Fatalf("read on poisoned facade: %v %v", v, ok)
	}
	if err := d.Close(); !errors.Is(err, werr) {
		t.Fatalf("Close() = %v, want the poison", err)
	}
	mem.Crash()
	rec := newShardedUnderTest(t, mem, dev, 3)
	if rec.Len() != 20 {
		t.Fatalf("recovered %d elements, want exactly the 20 acked", rec.Len())
	}
}

// --- randomized model check ----------------------------------------------

// TestDurableShardedRandomizedModel drives a seeded random op mix —
// inserts, deletes, checkpoints, migrations, crash-and-recover cycles —
// against the in-memory model and asserts full-state equality after
// every recovery.
func TestDurableShardedRandomizedModel(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			mem := wal.NewMemFS()
			dev := pager.NewDisk()
			d := newShardedUnderTest(t, mem, dev, 3)
			model := map[int]int{}
			steps := 1500
			for i := 0; i < steps; i++ {
				switch r := rng.Intn(100); {
				case r < 70:
					k, v := rng.Intn(8192), rng.Int()
					// The model is a map, so avoid duplicate keys in the
					// store: overwrite = delete + insert.
					if _, ok := model[k]; ok {
						if _, err := d.Delete(k); err != nil {
							t.Fatal(err)
						}
					}
					if err := d.Insert(k, v); err != nil {
						t.Fatal(err)
					}
					model[k] = v
				case r < 85:
					k := rng.Intn(8192)
					_, want := model[k]
					ok, err := d.Delete(k)
					if err != nil {
						t.Fatal(err)
					}
					if ok != want {
						t.Fatalf("step %d: Delete(%d) = %v, model says %v", i, k, ok, want)
					}
					delete(model, k)
				case r < 92:
					if _, err := d.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				case r < 96:
					if err := d.Rebalance(); err != nil {
						t.Fatal(err)
					}
				default:
					// Crash and recover mid-run.
					mem.Crash()
					d = newShardedUnderTest(t, mem, dev, 3)
				}
			}
			mem.Crash()
			rec := newShardedUnderTest(t, mem, dev, 3)
			if rec.Len() != len(model) {
				t.Fatalf("recovered %d elements, model has %d", rec.Len(), len(model))
			}
			rec.AscendRange(-1, 8192, func(k, v int) bool {
				if model[k] != v {
					t.Fatalf("key %d: recovered %d, model %d", k, v, model[k])
				}
				return true
			})
		})
	}
}

// --- concurrency ----------------------------------------------------------

// TestDurableShardedConcurrentStress runs parallel writers on disjoint
// key ranges, latch-free readers, and the background checkpointer
// together (the -race target), then verifies a final recovery sees every
// write.
func TestDurableShardedConcurrentStress(t *testing.T) {
	mem := wal.NewMemFS()
	dev := pager.NewDisk()
	d, err := OpenDurableSharded[int, int](mem, dev, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	d.SetFlushEvery(256)
	d.SetSyncEvery(16)
	const writers = 4
	const perWriter = 2000
	var readers, wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				d.Lookup(perWriter / 2)
				d.AscendRange(0, writers*perWriter, func(int, int) bool { return true })
				d.Stats()
			}
		}()
	}
	var werr error
	var werrMu sync.Mutex
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := w*perWriter + i
				if err := d.Insert(k, k); err != nil {
					werrMu.Lock()
					if werr == nil {
						werr = err
					}
					werrMu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if werr != nil {
		t.Fatal(werr)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec := newShardedUnderTest(t, mem, dev, 4)
	if rec.Len() != writers*perWriter {
		t.Fatalf("recovered %d elements, want %d", rec.Len(), writers*perWriter)
	}
	for i := 0; i < writers*perWriter; i += 199 {
		if v, ok := rec.Lookup(i); !ok || v != i {
			t.Fatalf("key %d: %v %v", i, v, ok)
		}
	}
}

// --- commit-protocol regressions ------------------------------------------

// errSuperFault marks a superFaultDev injection.
var errSuperFault = errors.New("injected superblock fault")

// superFaultMode selects what a superFaultDev does to the next superblock
// write: nothing, or one of the three outcomes of a write whose
// acknowledgment never arrives — it landed anyway, it was lost entirely,
// or the crash mid-write left garbage in the slot.
type superFaultMode int

const (
	superPass superFaultMode = iota
	superFailLanded
	superFailLost
	superTear
)

// superFaultDev fails exactly one superblock write (pages 0 and 1) per
// arming, passing every blob-page write through untouched.
type superFaultDev struct {
	pager.Device
	mode superFaultMode
}

func (f *superFaultDev) Write(id pager.PageID, p []byte) error {
	if id >= 2 || f.mode == superPass {
		return f.Device.Write(id, p)
	}
	mode := f.mode
	f.mode = superPass
	switch mode {
	case superFailLanded:
		f.Device.Write(id, p)
	case superTear:
		f.Device.Write(id, make([]byte, len(p)))
	}
	return errSuperFault
}

// TestShardedCheckpointRetryParity pins the dual-superblock discipline
// around a failed commit: a checkpoint retried after a failed superblock
// write must target the slot the failure targeted, never the slot holding
// the last committed cut — that cut's WAL prefixes are already truncated,
// so a crash tearing a retry aimed at its slot would lose acknowledged
// data with no fallback.
func TestShardedCheckpointRetryParity(t *testing.T) {
	run := func(t *testing.T, firstFail superFaultMode, tearRetry bool) {
		mem := wal.NewMemFS()
		disk := pager.NewDisk()
		fdev := &superFaultDev{Device: disk}
		d := newShardedUnderTest(t, mem, fdev, 3)
		for i := 0; i < 200; i++ {
			if err := d.Insert(i*31, i); err != nil {
				t.Fatal(err)
			}
		}
		// Epoch 1 commits and truncates the covered WAL prefixes: from
		// here on, losing the superblock loses the first 200 pairs.
		if _, err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		for i := 200; i < 300; i++ {
			if err := d.Insert(i*31, i); err != nil {
				t.Fatal(err)
			}
		}
		fdev.mode = firstFail
		if _, err := d.Checkpoint(); !errors.Is(err, errSuperFault) {
			t.Fatalf("checkpoint with failing superblock write = %v, want injected fault", err)
		}
		for i := 300; i < 350; i++ {
			if err := d.Insert(i*31, i); err != nil {
				t.Fatal(err)
			}
		}
		if tearRetry {
			fdev.mode = superTear
			if _, err := d.Checkpoint(); !errors.Is(err, errSuperFault) {
				t.Fatalf("torn retry checkpoint = %v, want injected fault", err)
			}
		} else {
			if _, err := d.Checkpoint(); err != nil {
				t.Fatalf("retry checkpoint: %v", err)
			}
			super, ok, err := pager.ReadSuper(disk)
			if err != nil || !ok {
				t.Fatalf("ReadSuper after retry = (%v, %v)", ok, err)
			}
			if super.Epoch != 4 {
				t.Fatalf("retry committed epoch %d, want 4 (the failed attempt claims two)", super.Epoch)
			}
		}
		mem.Crash()
		rec := newShardedUnderTest(t, mem, disk, 3)
		defer rec.Close()
		if got := rec.Len(); got != 350 {
			t.Fatalf("recovered %d pairs, want 350", got)
		}
		for i := 0; i < 350; i++ {
			if v, ok := rec.Lookup(i * 31); !ok || v != i {
				t.Fatalf("key %d: got (%d, %v), want (%d, true)", i*31, v, ok, i)
			}
		}
	}
	t.Run("lost-then-torn-retry", func(t *testing.T) { run(t, superFailLost, true) })
	t.Run("landed-then-torn-retry", func(t *testing.T) { run(t, superFailLanded, true) })
	t.Run("lost-then-retry-commits", func(t *testing.T) { run(t, superFailLost, false) })
}

// TestShardedPoisonedCheckpointFailsFast pins the poison contract for
// checkpoints: after a rebalance fails with its intent record already
// durable, Checkpoint must refuse to commit — a fresh epoch under the old
// generation would leave the durable state stranded between the intent
// and the migration it describes — and recovery must still see every
// acknowledged write under the old generation.
func TestShardedPoisonedCheckpointFailsFast(t *testing.T) {
	mem := wal.NewMemFS()
	faulty := wal.NewFaultFS(mem)
	disk := pager.NewDisk()
	d := newShardedUnderTest(t, faulty, disk, 3)
	for i := 0; i < 400; i++ {
		if err := d.Insert(i*17, i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 400; i < 500; i++ {
		if err := d.Insert(i*17, i); err != nil {
			t.Fatal(err)
		}
	}
	committed, ok, err := pager.ReadSuper(disk)
	if err != nil || !ok {
		t.Fatalf("ReadSuper = (%v, %v)", ok, err)
	}
	// Fail the migration after its intent record is durable: the first
	// touch of any new-generation log file trips.
	faulty.SetNameFilter(func(name string) bool { return strings.HasPrefix(name, "wal-1-") })
	faulty.SetTrip(0)
	if err := d.Rebalance(); !errors.Is(err, wal.ErrInjected) {
		t.Fatalf("rebalance = %v, want injected fault", err)
	}
	if mem.Bytes(IntentName) == nil {
		t.Fatal("rebalance died after the intent write but left no intent record")
	}
	if _, err := d.Checkpoint(); !errors.Is(err, wal.ErrInjected) {
		t.Fatalf("checkpoint on a poisoned facade = %v, want the sticky fault", err)
	}
	if after, ok, err := pager.ReadSuper(disk); err != nil || !ok || after.Epoch != committed.Epoch {
		t.Fatalf("poisoned checkpoint moved the committed epoch %d -> %d (ok=%v, err=%v)",
			committed.Epoch, after.Epoch, ok, err)
	}
	mem.Crash()
	rec := newShardedUnderTest(t, mem, disk, 3)
	defer rec.Close()
	if got := rec.Len(); got != 500 {
		t.Fatalf("recovered %d pairs, want 500", got)
	}
	if g := rec.Generation(); g != 0 {
		t.Fatalf("recovered generation %d, want 0 (the migration never committed)", g)
	}
	if mem.Bytes(IntentName) != nil {
		t.Fatal("recovery left the stale intent record behind")
	}
}

// TestCreateDurableShardedSupersedeCrash pins CreateDurableSharded's
// supersede discipline: until the new store's first cut commits, a crash
// must still recover the previous store in full — checkpointed base and
// acknowledged WAL tail alike — and a committed supersede continues the
// old store's generation sequence, sweeping its log files only after the
// commit.
func TestCreateDurableShardedSupersedeCrash(t *testing.T) {
	mem := wal.NewMemFS()
	disk := pager.NewDisk()

	// Store A: a checkpointed base plus an acknowledged, never-checkpointed
	// WAL tail. No Close — the process is about to "crash".
	a := newShardedUnderTest(t, mem, disk, 3)
	for i := 0; i < 300; i++ {
		if err := a.Insert(i*13, i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 300; i < 360; i++ {
		if err := a.Insert(i*13, i); err != nil {
			t.Fatal(err)
		}
	}

	// A supersede attempt that dies before its first cut commits: the
	// device rejects (tears) the very first page write.
	tree, err := BulkLoad([]int{1, 2, 3}, []int{10, 20, 30}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fdev := pager.NewFaultDevice(disk)
	fdev.SetTrip(0)
	if _, err := CreateDurableSharded(mem, fdev, tree, 2); !errors.Is(err, pager.ErrInjected) {
		t.Fatalf("create on a dead device = %v, want injected fault", err)
	}
	mem.Crash()

	rec := newShardedUnderTest(t, mem, disk, 3)
	if got := rec.Len(); got != 360 {
		t.Fatalf("recovered %d pairs after a failed supersede, want 360", got)
	}
	for i := 0; i < 360; i++ {
		if v, ok := rec.Lookup(i * 13); !ok || v != i {
			t.Fatalf("key %d: got (%d, %v), want (%d, true)", i*13, v, ok, i)
		}
	}
	if g := rec.Generation(); g != 0 {
		t.Fatalf("recovered generation %d, want 0", g)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	// A successful supersede continues the generation sequence and sweeps
	// the old store's log files only after committing.
	tree2, err := BulkLoad([]int{1, 2, 3}, []int{10, 20, 30}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := CreateDurableSharded(mem, disk, tree2, 2)
	if err != nil {
		t.Fatal(err)
	}
	quiesce(t, d)
	if g := d.Generation(); g != 1 {
		t.Fatalf("superseding store at generation %d, want 1", g)
	}
	for _, name := range mem.Names() {
		if strings.HasPrefix(name, "wal-0-") {
			t.Fatalf("old generation's log %s survived a committed supersede", name)
		}
	}
	if err := d.Insert(4, 40); err != nil {
		t.Fatal(err)
	}
	mem.Crash()
	rec2 := newShardedUnderTest(t, mem, disk, 2)
	defer rec2.Close()
	want := map[int]int{1: 10, 2: 20, 3: 30, 4: 40}
	if got := rec2.Len(); got != len(want) {
		t.Fatalf("recovered %d pairs after a committed supersede, want %d", got, len(want))
	}
	for k, v := range want {
		if got, ok := rec2.Lookup(k); !ok || got != v {
			t.Fatalf("key %d: got (%d, %v), want (%d, true)", k, got, ok, v)
		}
	}
	if g := rec2.Generation(); g != 1 {
		t.Fatalf("recovered generation %d, want 1", g)
	}
}
