package fitingtree_test

import (
	"math/rand"
	"sort"
	"testing"

	"fitingtree"
)

// buildOpt bulk-loads a tree with val == key and wraps it in an Optimistic
// facade flushing every flushAt writes.
func buildOpt(t *testing.T, keys []uint64, flushAt int) *fitingtree.Optimistic[uint64, uint64] {
	t.Helper()
	tr, err := fitingtree.BulkLoad(keys, append([]uint64(nil), keys...), fitingtree.Options{Error: 32, BufferSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	o := fitingtree.NewOptimistic(tr)
	if flushAt > 0 {
		o.SetFlushEvery(flushAt)
	}
	return o
}

func TestOptimisticBasic(t *testing.T) {
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i * 3)
	}
	o := buildOpt(t, keys, 64)

	for _, k := range keys {
		v, ok := o.Lookup(k)
		if !ok || v != k {
			t.Fatalf("Lookup(%d) = %d, %v", k, v, ok)
		}
	}
	if o.Contains(1) {
		t.Fatal("Contains(1) on multiples of 3")
	}
	if o.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", o.Len(), len(keys))
	}

	// Insert enough to cross several flushes, interleaved with deletes.
	for i := 0; i < 500; i++ {
		o.Insert(uint64(i*3+1), uint64(i*3+1))
	}
	if o.Len() != 1500 {
		t.Fatalf("Len = %d, want 1500", o.Len())
	}
	for i := 0; i < 250; i++ {
		if !o.Delete(uint64(i * 3)) {
			t.Fatalf("Delete(%d) missed", i*3)
		}
	}
	if o.Delete(2) {
		t.Fatal("Delete(2) of absent key succeeded")
	}
	if o.Len() != 1250 {
		t.Fatalf("Len = %d, want 1250", o.Len())
	}
	for i := 0; i < 500; i++ {
		k := uint64(i*3 + 1)
		if v, ok := o.Lookup(k); !ok || v != k {
			t.Fatalf("Lookup(%d) after churn = %d, %v", k, v, ok)
		}
	}
	for i := 0; i < 250; i++ {
		if o.Contains(uint64(i * 3)) {
			t.Fatalf("deleted key %d still present", i*3)
		}
	}
	if v := o.Version(); v%2 != 0 {
		t.Fatalf("version %d odd at rest", v)
	}
	st := o.Stats()
	if st.Elements != 1250 {
		t.Fatalf("Stats.Elements = %d, want 1250", st.Elements)
	}
}

func TestOptimisticDuplicates(t *testing.T) {
	// Key 50 appears 4 times in the base data.
	keys := []uint64{10, 20, 50, 50, 50, 50, 60, 70}
	o := buildOpt(t, keys, 1000) // large threshold: stay on the delta path

	count := func(k uint64) int {
		n := 0
		o.Each(k, func(v uint64) bool {
			if v != k {
				t.Fatalf("Each(%d) yielded %d", k, v)
			}
			n++
			return true
		})
		return n
	}
	if got := count(50); got != 4 {
		t.Fatalf("count(50) = %d, want 4", got)
	}
	// Two pending inserts and one tombstone on the same key.
	o.Insert(50, 50)
	o.Insert(50, 50)
	if got := count(50); got != 6 {
		t.Fatalf("count(50) = %d after inserts, want 6", got)
	}
	// Deletes consume pending inserts first, then tombstone base matches.
	for want := 5; want >= 0; want-- {
		if !o.Delete(50) {
			t.Fatalf("Delete(50) missed at multiplicity %d", want+1)
		}
		if got := count(50); got != want {
			t.Fatalf("count(50) = %d, want %d", got, want)
		}
	}
	if o.Delete(50) {
		t.Fatal("Delete(50) on exhausted key succeeded")
	}
	if o.Len() != len(keys)-4 {
		t.Fatalf("Len = %d, want %d", o.Len(), len(keys)-4)
	}
	// Neighbors are untouched.
	for _, k := range []uint64{10, 20, 60, 70} {
		if !o.Contains(k) {
			t.Fatalf("key %d lost", k)
		}
	}
}

func TestOptimisticAscendRange(t *testing.T) {
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = uint64(i * 2) // evens 0..398
	}
	o := buildOpt(t, keys, 1000)
	// Pending inserts between and on base keys, plus tombstones.
	o.Insert(101, 101)
	o.Insert(101, 101)
	o.Insert(100, 100) // duplicate of a base key
	o.Delete(102)      // tombstone a base key entirely
	o.Delete(104)

	var got []uint64
	o.AscendRange(96, 110, func(k, v uint64) bool {
		if v != k {
			t.Fatalf("AscendRange yielded (%d, %d)", k, v)
		}
		got = append(got, k)
		return true
	})
	want := []uint64{96, 98, 100, 100, 101, 101, 106, 108, 110}
	if len(got) != len(want) {
		t.Fatalf("AscendRange keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AscendRange keys = %v, want %v", got, want)
		}
	}

	// Early stop mid-delta.
	n := 0
	o.AscendRange(96, 110, func(k, v uint64) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Fatalf("early stop visited %d, want 4", n)
	}
}

func TestOptimisticEmptyStart(t *testing.T) {
	o := buildOpt(t, nil, 8)
	if o.Len() != 0 || o.Contains(5) {
		t.Fatal("empty facade not empty")
	}
	if o.Delete(5) {
		t.Fatal("Delete on empty facade succeeded")
	}
	for i := 0; i < 100; i++ {
		o.Insert(uint64(i), uint64(i))
	}
	if o.Len() != 100 {
		t.Fatalf("Len = %d, want 100", o.Len())
	}
	for i := 0; i < 100; i++ {
		if v, ok := o.Lookup(uint64(i)); !ok || v != uint64(i) {
			t.Fatalf("Lookup(%d) = %d, %v", i, v, ok)
		}
	}
}

// TestOptimisticMatchesTree drives identical random workloads through a
// plain Tree and an Optimistic facade (with values equal to keys, so
// arbitrary duplicate-victim choices cannot diverge) and compares the full
// contents after every phase.
func TestOptimisticMatchesTree(t *testing.T) {
	for _, flushAt := range []int{1, 7, 64, 1 << 20} {
		rng := rand.New(rand.NewSource(int64(flushAt)))
		base := make([]uint64, 2000)
		for i := range base {
			base[i] = uint64(rng.Intn(500) * 4) // plenty of duplicates
		}
		sortU64(base)
		ref, err := fitingtree.BulkLoad(base, append([]uint64(nil), base...), fitingtree.Options{Error: 32, BufferSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		o := buildOpt(t, base, flushAt)

		check := func(phase string) {
			t.Helper()
			if o.Len() != ref.Len() {
				t.Fatalf("flushAt=%d %s: Len %d != ref %d", flushAt, phase, o.Len(), ref.Len())
			}
			var got, want []uint64
			o.AscendRange(0, 1<<62, func(k, v uint64) bool { got = append(got, k); return true })
			ref.AscendRange(0, 1<<62, func(k, v uint64) bool { want = append(want, k); return true })
			if len(got) != len(want) {
				t.Fatalf("flushAt=%d %s: scan lengths %d != %d", flushAt, phase, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("flushAt=%d %s: scan diverges at %d: %d != %d", flushAt, phase, i, got[i], want[i])
				}
			}
			for i := 0; i < 200; i++ {
				k := uint64(rng.Intn(2100))
				gv, gok := o.Lookup(k)
				wv, wok := ref.Lookup(k)
				if gok != wok || (gok && gv != wv) {
					t.Fatalf("flushAt=%d %s: Lookup(%d) = (%d,%v) ref (%d,%v)", flushAt, phase, k, gv, gok, wv, wok)
				}
			}
		}
		check("initial")
		for phase := 0; phase < 4; phase++ {
			for i := 0; i < 300; i++ {
				k := uint64(rng.Intn(2100))
				if rng.Intn(3) == 0 {
					if o.Delete(k) != ref.Delete(k) {
						t.Fatalf("flushAt=%d: Delete(%d) outcome diverged", flushAt, k)
					}
				} else {
					o.Insert(k, k)
					ref.Insert(k, k)
				}
			}
			check("churn")
		}
		if err := ref.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func sortU64(s []uint64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
