package fitingtree_test

// Satellite of the frozen-layer merge ladder: a depth-parametrized
// randomized model test running a live background compactor. The
// white-box pump harness (ladder_test.go) pins exact value sequences with
// a hand-driven scheduler; this black-box variant races a real worker —
// pushes, size-tiered compactions and bottom folds interleave freely with
// the writer — so it checks the flush-timing-invariant contract (as
// TestOptimisticModelRandomizedAsync does for depth-1 pipelines): Delete
// outcomes, total and per-key live counts, globally ordered scans, batch
// found flags, and that every surviving value id was genuinely stored
// under its key. Distinct value ids make any tombstone miscount or
// duplicate reordering across compactions observable.

import (
	"fmt"
	"math/rand"
	"testing"

	"fitingtree"
)

func TestLadderModelRandomizedDepths(t *testing.T) {
	for _, router := range []fitingtree.RouterKind{fitingtree.RouterBTree, fitingtree.RouterImplicit} {
		rname := map[fitingtree.RouterKind]string{
			fitingtree.RouterBTree:    "btree",
			fitingtree.RouterImplicit: "implicit",
		}[router]
		for _, depth := range []int{1, 2, 4, 8} {
			for _, async := range []bool{false, true} {
				mode := "inline"
				if async {
					mode = "async"
				}
				router, depth, async := router, depth, async
				t.Run(fmt.Sprintf("%s/depth=%d/%s", rname, depth, mode), func(t *testing.T) {
					testLadderModelDepth(t, router, depth, async)
				})
			}
		}
	}
}

func testLadderModelDepth(t *testing.T, router fitingtree.RouterKind, depth int, async bool) {
	for _, flushAt := range []int{2, 13} {
		rng := rand.New(rand.NewSource(int64(flushAt)*977 + int64(depth)))
		nextVal := uint64(1 << 32)
		base := make([]uint64, 1200)
		baseVals := make([]uint64, 1200)
		for i := range base {
			base[i] = uint64(rng.Intn(250) * 6) // heavy duplication
		}
		sortU64(base)
		everVals := map[uint64]map[uint64]bool{} // key -> all values ever stored
		for i := range baseVals {
			baseVals[i] = nextVal
			nextVal++
			if everVals[base[i]] == nil {
				everVals[base[i]] = map[uint64]bool{}
			}
			everVals[base[i]][baseVals[i]] = true
		}
		tr, err := fitingtree.BulkLoad(base, baseVals, fitingtree.Options{Error: 32, BufferSize: 8, Router: router})
		if err != nil {
			t.Fatal(err)
		}
		o := fitingtree.NewOptimistic(tr)
		o.SetAsyncFlush(async)
		o.SetMaxFrozenLayers(depth)
		o.SetFlushEvery(flushAt)
		m := newOptModel(base, baseVals, flushAt)

		check := func(phase int) {
			t.Helper()
			if o.Len() != m.len() {
				t.Fatalf("flushAt=%d phase %d: Len %d, model %d", flushAt, phase, o.Len(), m.len())
			}
			s := o.Stats()
			if s.FrozenLayers > depth || len(s.LayerPending) != s.FrozenLayers {
				t.Fatalf("flushAt=%d phase %d: Stats reports %d layers (pending %v), depth cap %d",
					flushAt, phase, s.FrozenLayers, s.LayerPending, depth)
			}
			var wantK []uint64
			for _, k := range m.liveKeys() {
				for range m.each(k) {
					wantK = append(wantK, k)
				}
			}
			i := 0
			o.AscendRange(0, 1<<62, func(k, v uint64) bool {
				if i >= len(wantK) || k != wantK[i] {
					t.Fatalf("flushAt=%d phase %d: scan[%d] key = %d, model %d", flushAt, phase, i, k, wantK[i])
				}
				if !everVals[k][v] {
					t.Fatalf("flushAt=%d phase %d: scan[%d] = (%d,%d): value never stored under key",
						flushAt, phase, i, k, v)
				}
				i++
				return true
			})
			if i != len(wantK) {
				t.Fatalf("flushAt=%d phase %d: scan visited %d, model %d", flushAt, phase, i, len(wantK))
			}
			probe := make([]uint64, 0, 96)
			for j := 0; j < 96; j++ {
				probe = append(probe, uint64(rng.Intn(1800)))
			}
			bv, bf := o.LookupBatch(probe)
			for pi, k := range probe {
				want := m.each(k)
				got := 0
				o.Each(k, func(v uint64) bool {
					if !everVals[k][v] {
						t.Fatalf("flushAt=%d phase %d: Each(%d) yielded alien value %d", flushAt, phase, k, v)
					}
					got++
					return true
				})
				if got != len(want) {
					t.Fatalf("flushAt=%d phase %d: Each(%d) count %d, model %d", flushAt, phase, k, got, len(want))
				}
				if bf[pi] != (len(want) > 0) {
					t.Fatalf("flushAt=%d phase %d: batch found[%d]=%v, model has %d matches",
						flushAt, phase, k, bf[pi], len(want))
				}
				if bf[pi] && !everVals[k][bv[pi]] {
					t.Fatalf("flushAt=%d phase %d: batch val for %d = %d never stored", flushAt, phase, k, bv[pi])
				}
			}
		}

		check(-1)
		for phase := 0; phase < 3; phase++ {
			for i := 0; i < 400; i++ {
				k := uint64(rng.Intn(1800))
				if rng.Intn(3) == 0 {
					if got, want := o.Delete(k), m.delete(k); got != want {
						t.Fatalf("flushAt=%d: Delete(%d) = %v, model %v", flushAt, k, got, want)
					}
				} else {
					v := nextVal
					nextVal++
					if everVals[k] == nil {
						everVals[k] = map[uint64]bool{}
					}
					everVals[k][v] = true
					o.Insert(k, v)
					m.insert(k, v)
				}
			}
			check(phase)
		}
		// Drain the whole ladder and re-verify: folding every layer must not
		// change any flush-invariant observation.
		o.Close()
		check(3)
		if s := o.Stats(); s.FrozenLayers != 0 {
			t.Fatalf("flushAt=%d: Close left %d frozen layers", flushAt, s.FrozenLayers)
		}
	}
}
