package fitingtree

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"reflect"
)

// This file encodes single write operations for the WAL. A record is
//
//	op byte | u64 key bits | value bytes (inserts only)
//
// Key is a ~-constrained generic, so the key's underlying kind is resolved
// once per codec with reflection and cached; integers round-trip through
// their two's-complement bits and floats through math.Float64bits (exact
// for float32 as well, since float32 -> float64 is lossless). Values of
// numeric, bool, and string kinds use the same compact paths; any other
// value type falls back to a self-describing gob stream per record —
// bulkier, but the WAL holds only the un-checkpointed tail, so compactness
// matters less than never silently failing on an exotic V.

// Op codes stored in a WAL record's first byte.
const (
	walOpInsert byte = 1
	walOpDelete byte = 2
)

// opCodec converts between (op, key, value) and WAL record payloads for
// one concrete K, V instantiation.
type opCodec[K Key, V any] struct {
	ktype reflect.Type
	kkind reflect.Kind
	vkind reflect.Kind
}

// newOpCodec resolves the kinds of K and V once.
func newOpCodec[K Key, V any]() opCodec[K, V] {
	kt := reflect.TypeOf((*K)(nil)).Elem()
	vt := reflect.TypeOf((*V)(nil)).Elem()
	return opCodec[K, V]{ktype: kt, kkind: kt.Kind(), vkind: vt.Kind()}
}

// keyBits maps a key to its 8-byte wire form.
func (c *opCodec[K, V]) keyBits(k K) uint64 {
	rv := reflect.ValueOf(k)
	switch c.kkind {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return uint64(rv.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return rv.Uint()
	default:
		return math.Float64bits(rv.Float())
	}
}

// keyFromBits inverts keyBits.
func (c *opCodec[K, V]) keyFromBits(b uint64) K {
	rv := reflect.New(c.ktype).Elem()
	switch c.kkind {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		rv.SetInt(int64(b))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		rv.SetUint(b)
	default:
		rv.SetFloat(math.Float64frombits(b))
	}
	return rv.Interface().(K)
}

// appendValue appends v's wire form to buf.
func (c *opCodec[K, V]) appendValue(buf []byte, v V) ([]byte, error) {
	rv := reflect.ValueOf(v)
	switch c.vkind {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return binary.LittleEndian.AppendUint64(buf, uint64(rv.Int())), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return binary.LittleEndian.AppendUint64(buf, rv.Uint()), nil
	case reflect.Float32, reflect.Float64:
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(rv.Float())), nil
	case reflect.Bool:
		b := byte(0)
		if rv.Bool() {
			b = 1
		}
		return append(buf, b), nil
	case reflect.String:
		return append(buf, rv.String()...), nil
	default:
		var sink bytes.Buffer
		if err := gob.NewEncoder(&sink).Encode(&v); err != nil {
			return nil, fmt.Errorf("fitingtree: wal value encode: %w", err)
		}
		return append(buf, sink.Bytes()...), nil
	}
}

// decodeValue inverts appendValue over the record's value bytes.
func (c *opCodec[K, V]) decodeValue(data []byte) (V, error) {
	var v V
	rv := reflect.ValueOf(&v).Elem()
	fixed := func(n int) error {
		if len(data) != n {
			return fmt.Errorf("fitingtree: wal value of %d bytes, want %d", len(data), n)
		}
		return nil
	}
	switch c.vkind {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if err := fixed(8); err != nil {
			return v, err
		}
		rv.SetInt(int64(binary.LittleEndian.Uint64(data)))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		if err := fixed(8); err != nil {
			return v, err
		}
		rv.SetUint(binary.LittleEndian.Uint64(data))
	case reflect.Float32, reflect.Float64:
		if err := fixed(8); err != nil {
			return v, err
		}
		rv.SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(data)))
	case reflect.Bool:
		if err := fixed(1); err != nil {
			return v, err
		}
		rv.SetBool(data[0] == 1)
	case reflect.String:
		rv.SetString(string(data))
	default:
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
			return v, fmt.Errorf("fitingtree: wal value decode: %w", err)
		}
	}
	return v, nil
}

// encodeOp builds one WAL record payload.
func (c *opCodec[K, V]) encodeOp(op byte, k K, v V) ([]byte, error) {
	buf := make([]byte, 9, 24)
	buf[0] = op
	binary.LittleEndian.PutUint64(buf[1:], c.keyBits(k))
	if op == walOpInsert {
		return c.appendValue(buf, v)
	}
	return buf, nil
}

// decodeOp parses one WAL record payload. Delete records carry no value;
// the zero V is returned for them.
func (c *opCodec[K, V]) decodeOp(payload []byte) (op byte, k K, v V, err error) {
	if len(payload) < 9 {
		return 0, k, v, fmt.Errorf("fitingtree: wal record of %d bytes is too short", len(payload))
	}
	op = payload[0]
	k = c.keyFromBits(binary.LittleEndian.Uint64(payload[1:]))
	switch op {
	case walOpInsert:
		v, err = c.decodeValue(payload[9:])
	case walOpDelete:
		if len(payload) != 9 {
			err = fmt.Errorf("fitingtree: delete record carries %d trailing bytes", len(payload)-9)
		}
	default:
		err = fmt.Errorf("fitingtree: unknown wal op %d", op)
	}
	if k != k {
		// A NaN key would corrupt the sorted-delta invariant on replay
		// exactly as it would on the write path (which panics on it).
		err = fmt.Errorf("fitingtree: wal record carries NaN key")
	}
	return op, k, v, err
}
