package fitingtree

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"reflect"
)

// This file encodes single write operations for the WAL. A record is
//
//	op byte | key bytes | value bytes (inserts and value deletes only)
//
// Key is a ~-constrained generic, so the key's underlying kind is resolved
// once per codec with reflection and cached; integers round-trip through
// their two's-complement bits as a fixed 8-byte field, floats through
// math.Float64bits (exact for float32 as well, since float32 -> float64 is
// lossless), and string kinds as a u32 length prefix plus bytes. Values of
// numeric, bool, and string kinds use the same compact paths; any other
// value type falls back to a self-describing gob stream per record —
// bulkier, but the WAL holds only the un-checkpointed tail, so compactness
// matters less than never silently failing on an exotic V.

// Op codes stored in a WAL record's first byte.
const (
	walOpInsert      byte = 1
	walOpDelete      byte = 2
	walOpDeleteValue byte = 3
)

// opCodec converts between (op, key, value) and WAL record payloads for
// one concrete K, V instantiation.
type opCodec[K Key, V any] struct {
	ktype reflect.Type
	kkind reflect.Kind
	vkind reflect.Kind
}

// newOpCodec resolves the kinds of K and V once.
func newOpCodec[K Key, V any]() opCodec[K, V] {
	kt := reflect.TypeOf((*K)(nil)).Elem()
	vt := reflect.TypeOf((*V)(nil)).Elem()
	return opCodec[K, V]{ktype: kt, kkind: kt.Kind(), vkind: vt.Kind()}
}

// appendKey appends k's wire form: a fixed 8-byte field for numeric
// kinds, a u32 length prefix plus bytes for string kinds.
func (c *opCodec[K, V]) appendKey(buf []byte, k K) []byte {
	rv := reflect.ValueOf(k)
	switch c.kkind {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return binary.LittleEndian.AppendUint64(buf, uint64(rv.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return binary.LittleEndian.AppendUint64(buf, rv.Uint())
	case reflect.String:
		s := rv.String()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		return append(buf, s...)
	default:
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(rv.Float()))
	}
}

// decodeKey inverts appendKey, returning the bytes past the key field.
func (c *opCodec[K, V]) decodeKey(data []byte) (K, []byte, error) {
	rv := reflect.New(c.ktype).Elem()
	if c.kkind == reflect.String {
		if len(data) < 4 {
			var zero K
			return zero, nil, fmt.Errorf("fitingtree: wal record of %d bytes is too short", len(data)+1)
		}
		l := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if l < 0 || len(data) < l {
			var zero K
			return zero, nil, fmt.Errorf("fitingtree: wal record key claims %d bytes, %d remain", l, len(data))
		}
		rv.SetString(string(data[:l]))
		return rv.Interface().(K), data[l:], nil
	}
	if len(data) < 8 {
		var zero K
		return zero, nil, fmt.Errorf("fitingtree: wal record of %d bytes is too short", len(data)+1)
	}
	b := binary.LittleEndian.Uint64(data)
	switch c.kkind {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		rv.SetInt(int64(b))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		rv.SetUint(b)
	default:
		rv.SetFloat(math.Float64frombits(b))
	}
	return rv.Interface().(K), data[8:], nil
}

// appendValue appends v's wire form to buf.
func (c *opCodec[K, V]) appendValue(buf []byte, v V) ([]byte, error) {
	rv := reflect.ValueOf(v)
	switch c.vkind {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return binary.LittleEndian.AppendUint64(buf, uint64(rv.Int())), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return binary.LittleEndian.AppendUint64(buf, rv.Uint()), nil
	case reflect.Float32, reflect.Float64:
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(rv.Float())), nil
	case reflect.Bool:
		b := byte(0)
		if rv.Bool() {
			b = 1
		}
		return append(buf, b), nil
	case reflect.String:
		return append(buf, rv.String()...), nil
	default:
		var sink bytes.Buffer
		if err := gob.NewEncoder(&sink).Encode(&v); err != nil {
			return nil, fmt.Errorf("fitingtree: wal value encode: %w", err)
		}
		return append(buf, sink.Bytes()...), nil
	}
}

// decodeValue inverts appendValue over the record's value bytes.
func (c *opCodec[K, V]) decodeValue(data []byte) (V, error) {
	var v V
	rv := reflect.ValueOf(&v).Elem()
	fixed := func(n int) error {
		if len(data) != n {
			return fmt.Errorf("fitingtree: wal value of %d bytes, want %d", len(data), n)
		}
		return nil
	}
	switch c.vkind {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if err := fixed(8); err != nil {
			return v, err
		}
		rv.SetInt(int64(binary.LittleEndian.Uint64(data)))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		if err := fixed(8); err != nil {
			return v, err
		}
		rv.SetUint(binary.LittleEndian.Uint64(data))
	case reflect.Float32, reflect.Float64:
		if err := fixed(8); err != nil {
			return v, err
		}
		rv.SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(data)))
	case reflect.Bool:
		if err := fixed(1); err != nil {
			return v, err
		}
		rv.SetBool(data[0] == 1)
	case reflect.String:
		rv.SetString(string(data))
	default:
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
			return v, fmt.Errorf("fitingtree: wal value decode: %w", err)
		}
	}
	return v, nil
}

// encodeOp builds one WAL record payload. Insert and value-delete records
// carry the value; anonymous deletes stop after the key.
func (c *opCodec[K, V]) encodeOp(op byte, k K, v V) ([]byte, error) {
	buf := make([]byte, 1, 24)
	buf[0] = op
	buf = c.appendKey(buf, k)
	if op == walOpInsert || op == walOpDeleteValue {
		return c.appendValue(buf, v)
	}
	return buf, nil
}

// decodeOp parses one WAL record payload. Anonymous delete records carry
// no value; the zero V is returned for them.
func (c *opCodec[K, V]) decodeOp(payload []byte) (op byte, k K, v V, err error) {
	if len(payload) < 1 {
		return 0, k, v, fmt.Errorf("fitingtree: wal record of %d bytes is too short", len(payload))
	}
	op = payload[0]
	var rest []byte
	if k, rest, err = c.decodeKey(payload[1:]); err != nil {
		return op, k, v, err
	}
	switch op {
	case walOpInsert, walOpDeleteValue:
		v, err = c.decodeValue(rest)
	case walOpDelete:
		if len(rest) != 0 {
			err = fmt.Errorf("fitingtree: delete record carries %d trailing bytes", len(rest))
		}
	default:
		err = fmt.Errorf("fitingtree: unknown wal op %d", op)
	}
	if k != k {
		// A NaN key would corrupt the sorted-delta invariant on replay
		// exactly as it would on the write path (which panics on it).
		err = fmt.Errorf("fitingtree: wal record carries NaN key")
	}
	return op, k, v, err
}
