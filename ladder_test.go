package fitingtree

// White-box tests for the depth-N frozen merge ladder: they hold the
// background worker slot to stage multi-layer states deterministically and
// drive the compaction scheduler by hand, which the black-box suite
// cannot do.

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"fitingtree/internal/workload"
)

// TestLadderPushAbsorbBackpressure pins the writer-side ladder protocol
// deterministically (worker slot held): tripping writers push layers in
// O(1) until the ladder is full, then absorb into the active delta, and
// only past FlushBackpressureFactor × flushAt does the tripping writer
// fold everything inline — counted by BackpressureFolds. Stats must
// report the ladder: Buffered summing every frozen layer's pending
// inserts (the pre-ladder code counted exactly one frozen slot) plus the
// per-layer depth fields.
func TestLadderPushAbsorbBackpressure(t *testing.T) {
	tr, err := BulkLoad[uint64, uint64](nil, nil, Options{Error: 16})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOptimistic(tr)
	o.SetAsyncFlush(true)
	o.SetMaxFrozenLayers(3)
	o.SetFlushEvery(4)
	o.flusher.Store(true) // hold the worker slot: no background draining

	next := uint64(1)
	insert := func(n int) {
		for i := 0; i < n; i++ {
			o.Insert(next, next)
			next++
		}
	}

	// Three trips push three layers; each trip leaves an empty active delta.
	for layer := 1; layer <= 3; layer++ {
		insert(4)
		st := o.state.Load()
		if len(st.frozen) != layer || st.delta != nil {
			t.Fatalf("after trip %d: %d frozen layers, delta=%v", layer, len(st.frozen), st.delta != nil)
		}
	}
	s := o.Stats()
	if s.FrozenLayers != 3 {
		t.Fatalf("Stats.FrozenLayers = %d, want 3", s.FrozenLayers)
	}
	if len(s.LayerPending) != 3 || s.LayerPending[0] != 4 || s.LayerPending[1] != 4 || s.LayerPending[2] != 4 {
		t.Fatalf("Stats.LayerPending = %v, want [4 4 4]", s.LayerPending)
	}
	if s.Buffered != 12 {
		t.Fatalf("Stats.Buffered = %d, want 12 (all frozen layers summed)", s.Buffered)
	}

	// Ladder full: the next trips absorb into the active delta instead of
	// pushing a fourth layer or folding.
	insert(15)
	st := o.state.Load()
	if len(st.frozen) != 3 || st.delta == nil || st.delta.pending() != 15 {
		t.Fatalf("absorb phase: frozen=%d delta pending=%v", len(st.frozen), st.delta)
	}
	if got := o.BackpressureFolds(); got != 0 {
		t.Fatalf("BackpressureFolds = %d during absorb, want 0", got)
	}
	// The write crossing FlushBackpressureFactor×flushAt = 16 folds inline.
	insert(1)
	st = o.state.Load()
	if len(st.frozen) != 0 || st.delta != nil {
		t.Fatalf("backpressure crossing did not fold: frozen=%d delta=%v", len(st.frozen), st.delta != nil)
	}
	if got := o.BackpressureFolds(); got != 1 {
		t.Fatalf("BackpressureFolds = %d, want 1", got)
	}
	o.flusher.Store(false)
	if o.Len() != int(next-1) {
		t.Fatalf("Len = %d, want %d", o.Len(), next-1)
	}
	for k := uint64(1); k < next; k++ {
		if v, ok := o.Lookup(k); !ok || v != k {
			t.Fatalf("key %d lost across the ladder fold: %d,%v", k, v, ok)
		}
	}
	s = o.Stats()
	if s.FrozenLayers != 0 || s.LayerPending != nil {
		t.Fatalf("clean state Stats: FrozenLayers=%d LayerPending=%v", s.FrozenLayers, s.LayerPending)
	}
}

// TestLadderLayeredSemantics stages a three-layer ladder whose layers
// interleave tombstones and duplicate adds for one key, then drives the
// compaction scheduler by hand: every read must be identical before and
// after each compaction and after the final fold — the tombstone
// relativity rule (each layer's counts are relative to everything beneath
// it) made physical. The middle compaction forces CompactOps' spill path:
// upper tombstones exhaust the base survivors and drop the lower layer's
// oldest pending add.
func TestLadderLayeredSemantics(t *testing.T) {
	tr, err := BulkLoad([]uint64{5, 7, 7, 7}, []uint64{50, 70, 71, 72}, Options{Error: 16})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOptimistic(tr)
	o.SetAsyncFlush(true)
	o.SetMaxFrozenLayers(4)
	o.SetFlushEvery(2)
	o.flusher.Store(true)

	// Layer 0: two tombstones on key 7 (victims 70, 71).
	o.Delete(7)
	o.Delete(7)
	// Layer 1: two pending adds for key 7.
	o.Insert(7, 73)
	o.Insert(7, 74)
	// Layer 2: two more tombstones — relative to tree ⊕ layers 0–1, so
	// they kill 72 (last base survivor) and 73 (layer 1's oldest add).
	o.Delete(7)
	o.Delete(7)

	if st := o.state.Load(); len(st.frozen) != 3 || st.delta != nil {
		t.Fatalf("staging: frozen=%d delta=%v", len(st.frozen), st.delta != nil)
	}

	expect := func(stage string) {
		t.Helper()
		var got []uint64
		o.Each(7, func(v uint64) bool { got = append(got, v); return true })
		if len(got) != 1 || got[0] != 74 {
			t.Fatalf("%s: Each(7) = %v, want [74]", stage, got)
		}
		if v, ok := o.Lookup(7); !ok || v != 74 {
			t.Fatalf("%s: Lookup(7) = %d,%v, want 74", stage, v, ok)
		}
		if v, ok := o.Lookup(5); !ok || v != 50 {
			t.Fatalf("%s: Lookup(5) = %d,%v", stage, v, ok)
		}
		var scanK, scanV []uint64
		o.AscendRange(0, 100, func(k, v uint64) bool {
			scanK = append(scanK, k)
			scanV = append(scanV, v)
			return true
		})
		if len(scanK) != 2 || scanK[0] != 5 || scanV[0] != 50 || scanK[1] != 7 || scanV[1] != 74 {
			t.Fatalf("%s: scan = %v/%v, want [5 7]/[50 74]", stage, scanK, scanV)
		}
		vals, found := o.LookupBatch([]uint64{5, 7, 9})
		if !found[0] || vals[0] != 50 || !found[1] || vals[1] != 74 || found[2] {
			t.Fatalf("%s: LookupBatch = %v,%v", stage, vals, found)
		}
		if o.Len() != 2 {
			t.Fatalf("%s: Len = %d, want 2", stage, o.Len())
		}
	}
	expect("staged")

	// Round 1: compact layers 0+1. The upper layer has no tombstones, so
	// the composition is a plain append.
	st := o.state.Load()
	if i := compactPick(st.frozen, o.flushAt.Load()); i != 0 {
		t.Fatalf("round 1: compactPick = %d, want 0", i)
	}
	o.compactPair(st, 0)
	st = o.state.Load()
	if len(st.frozen) != 2 || st.frozen[0].delN != 2 || st.frozen[0].addN != 2 {
		t.Fatalf("round 1: frozen=%d bottom addN=%d delN=%d, want 2/2/2",
			len(st.frozen), st.frozen[0].addN, st.frozen[0].delN)
	}
	expect("after compaction 1")

	// Round 2: compact the result with layer 2 — the spill case. Two
	// upper tombstones meet one base survivor: one composes into a third
	// base tombstone, the other drops the oldest pending add (73).
	if i := compactPick(st.frozen, o.flushAt.Load()); i != 0 {
		t.Fatalf("round 2: compactPick = %d, want 0", i)
	}
	o.compactPair(st, 0)
	st = o.state.Load()
	if len(st.frozen) != 1 || st.frozen[0].delN != 3 || st.frozen[0].addN != 1 {
		t.Fatalf("round 2: frozen=%d bottom addN=%d delN=%d, want 1/1/3",
			len(st.frozen), st.frozen[0].addN, st.frozen[0].delN)
	}
	expect("after compaction 2")

	// Round 3: a single layer folds into the base tree.
	if i := compactPick(st.frozen, o.flushAt.Load()); i != -1 {
		t.Fatalf("round 3: compactPick = %d, want -1 (fold)", i)
	}
	o.foldBottom(st)
	st = o.state.Load()
	if len(st.frozen) != 0 || st.tree.Len() != 2 {
		t.Fatalf("round 3: frozen=%d tree len=%d", len(st.frozen), st.tree.Len())
	}
	expect("after fold")
	o.flusher.Store(false)
}

// TestLadderSchedulerPick pins the size-tiered scheduling policy in
// isolation: compact the bottom-most adjacent pair while the lower layer
// is within compactTierFactor of the upper and the pair fits the
// backpressure bound; otherwise fold.
func TestLadderSchedulerPick(t *testing.T) {
	layer := func(n int) *odelta[uint64, uint64] { return &odelta[uint64, uint64]{addN: n} }
	ladder := func(ns ...int) []*odelta[uint64, uint64] {
		out := make([]*odelta[uint64, uint64], len(ns))
		for i, n := range ns {
			out[i] = layer(n)
		}
		return out
	}
	const flushAt = 4 // bound = FlushBackpressureFactor*4 = 16
	cases := []struct {
		ns   []int
		want int
	}{
		{[]int{4, 4, 4}, 0},   // comparable sizes: compact the bottom pair
		{[]int{13, 3, 4}, 1},  // bottom outgrew tiering; next pair is fine
		{[]int{16, 4}, -1},    // tiering ok but pair exceeds the bound: fold
		{[]int{1}, -1},        // single layer: nothing to compact
		{[]int{20, 1, 1}, 1},  // oversized bottom skipped, upper pair compacts
		{[]int{3, 12, 48}, 0}, // growing ladder still compacts bottom-up
	}
	for _, tc := range cases {
		if got := compactPick(ladder(tc.ns...), flushAt); got != tc.want {
			t.Fatalf("compactPick(%v) = %d, want %d", tc.ns, got, tc.want)
		}
	}
}

// TestLadderModelRandomizedPump is the randomized multi-layer harness: a
// ladder facade (worker slot held, scheduler driven by hand at random
// points) runs the same randomized op stream with distinct value ids as a
// reference facade in pure inline-flush mode. With identical flush
// thresholds the two have identical trip points, so every observation —
// full scans, per-key Each sequences, Len, Delete outcomes — must match
// exactly at all times, whatever interleaving of compactions and folds
// the pump chooses. A wrong tombstone-spill decision or a reordered
// duplicate anywhere in the N-layer accounting shows up as a value-id
// mismatch.
func TestLadderModelRandomizedPump(t *testing.T) {
	for _, rk := range []struct {
		name string
		kind RouterKind
	}{{"btree", RouterBTree}, {"implicit", RouterImplicit}} {
		for _, depth := range []int{1, 2, 4, 8} {
			rk, depth := rk, depth
			t.Run(rk.name+"/depth="+string(rune('0'+depth)), func(t *testing.T) {
				testLadderModelRandomizedPump(t, rk.kind, depth)
			})
		}
	}
}

func testLadderModelRandomizedPump(t *testing.T, kind RouterKind, depth int) {
	const flushAt = 8
	rng := rand.New(rand.NewSource(int64(depth)*1009 + 7))
	base := make([]uint64, 800)
	for i := range base {
		base[i] = uint64(rng.Intn(200) * 4)
	}
	sortU64s(base)
	vals := make([]uint64, len(base))
	nextVal := uint64(1 << 32)
	for i := range vals {
		vals[i] = nextVal
		nextVal++
	}
	build := func() *Optimistic[uint64, uint64] {
		tr, err := BulkLoad(append([]uint64(nil), base...), append([]uint64(nil), vals...),
			Options{Error: 24, BufferSize: 8, Router: kind})
		if err != nil {
			t.Fatal(err)
		}
		return NewOptimistic(tr)
	}
	lad := build()
	lad.SetAsyncFlush(true)
	lad.SetMaxFrozenLayers(depth)
	lad.SetFlushEvery(flushAt)
	lad.flusher.Store(true) // the test is the scheduler
	ref := build()
	ref.SetAsyncFlush(false)
	ref.SetFlushEvery(flushAt)

	compactions, folds := 0, 0
	pump := func() {
		st := lad.state.Load()
		if len(st.frozen) == 0 {
			return
		}
		if i := compactPick(st.frozen, flushAt); i >= 0 {
			lad.compactPair(st, i)
			compactions++
		} else {
			lad.foldBottom(st)
			folds++
		}
	}
	compare := func(step int) {
		t.Helper()
		if lad.Len() != ref.Len() {
			t.Fatalf("step %d: Len %d vs reference %d", step, lad.Len(), ref.Len())
		}
		var wantK, wantV []uint64
		ref.AscendRange(0, 1<<62, func(k, v uint64) bool {
			wantK = append(wantK, k)
			wantV = append(wantV, v)
			return true
		})
		i := 0
		lad.AscendRange(0, 1<<62, func(k, v uint64) bool {
			if i >= len(wantK) || k != wantK[i] || v != wantV[i] {
				t.Fatalf("step %d: scan[%d] = (%d,%d), reference (%d,%d)", step, i, k, v, wantK[i], wantV[i])
			}
			i++
			return true
		})
		if i != len(wantK) {
			t.Fatalf("step %d: scan visited %d, reference %d", step, i, len(wantK))
		}
		for j := 0; j < 64; j++ {
			k := uint64(rng.Intn(900))
			var want, got []uint64
			ref.Each(k, func(v uint64) bool { want = append(want, v); return true })
			lad.Each(k, func(v uint64) bool { got = append(got, v); return true })
			if len(got) != len(want) {
				t.Fatalf("step %d: Each(%d) = %v, reference %v", step, k, got, want)
			}
			for x := range want {
				if got[x] != want[x] {
					t.Fatalf("step %d: Each(%d) = %v, reference %v", step, k, got, want)
				}
			}
			v, ok := lad.Lookup(k)
			if ok != (len(want) > 0) {
				t.Fatalf("step %d: Lookup(%d) found=%v, reference has %d", step, k, ok, len(want))
			}
			if ok {
				member := false
				for _, w := range want {
					if v == w {
						member = true
						break
					}
				}
				if !member {
					t.Fatalf("step %d: Lookup(%d) = %d not in live set %v", step, k, v, want)
				}
			}
		}
	}

	for step := 0; step < 1600; step++ {
		k := uint64(rng.Intn(900))
		if rng.Intn(3) == 0 {
			if got, want := lad.Delete(k), ref.Delete(k); got != want {
				t.Fatalf("step %d: Delete(%d) = %v, reference %v", step, k, got, want)
			}
		} else {
			lad.Insert(k, nextVal)
			ref.Insert(k, nextVal)
			nextVal++
		}
		// Keep the ladder below capacity so writers never absorb past the
		// trip point (the reference folds exactly at it), plus random
		// extra scheduler rounds so checks land on every ladder shape.
		for len(lad.state.Load().frozen) >= depth {
			pump()
		}
		if rng.Intn(4) == 0 {
			pump()
		}
		if step%320 == 319 {
			compare(step)
		}
	}
	if depth >= 2 && compactions == 0 {
		t.Fatalf("depth %d run never compacted (folds=%d)", depth, folds)
	}
	lad.flusher.Store(false)
	lad.SyncFlush()
	ref.SyncFlush()
	compare(-1)
}

// sortU64s sorts a uint64 slice ascending (tiny local helper: the
// exported test utilities live in the black-box package).
func sortU64s(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestShardedLadderInheritance pins the Sharded plumbing: the configured
// ladder depth applies to every current shard and is inherited by shards
// a rebalance creates.
func TestShardedLadderInheritance(t *testing.T) {
	keys := make([]uint64, 2048)
	vals := make([]uint64, 2048)
	for i := range keys {
		keys[i] = uint64(i * 3)
		vals[i] = uint64(i)
	}
	tr, err := BulkLoad(keys, vals, Options{Error: 16})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSharded(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.SetAsyncFlush(false) // deterministic: no workers during the check
	s.SetMaxFrozenLayers(2)
	ss := s.set.Load()
	for i, sh := range ss.shards {
		if got := sh.maxFrozen.Load(); got != 2 {
			t.Fatalf("shard %d maxFrozen = %d, want 2", i, got)
		}
	}
	// Skew one end until a rebalance publishes a fresh shard set.
	s.SetRebalanceFactor(1.5)
	for i := 0; i < 8192 && s.set.Load() == ss; i++ {
		k := uint64(1 << 40)
		s.Insert(k+uint64(i), uint64(i))
	}
	ns := s.set.Load()
	if ns == ss {
		t.Fatal("skewed inserts never triggered a rebalance")
	}
	for i, sh := range ns.shards {
		if got := sh.maxFrozen.Load(); got != 2 {
			t.Fatalf("rebalanced shard %d maxFrozen = %d, want 2", i, got)
		}
	}
}

// TestLadderCompactionStress races writers against the live background
// worker at a small threshold and depth 4, so pushes, compactions, folds
// and latch-free reads constantly interleave (run with -race). The final
// drain must account for every acknowledged write.
func TestLadderCompactionStress(t *testing.T) {
	keys := workload.Weblogs(30_000, 11)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	tr, err := BulkLoad(keys, vals, Options{Error: 32, BufferSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOptimistic(tr)
	o.SetAsyncFlush(true)
	o.SetMaxFrozenLayers(4)
	o.SetFlushEvery(32)
	baseLen := o.Len()

	var inserted, deleted atomic.Int64
	var wg, readers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(60_000))
				o.Lookup(k)
				o.Each(k, func(uint64) bool { return true })
				if rng.Intn(8) == 0 {
					o.AscendRange(k, k+512, func(uint64, uint64) bool { return true })
					o.Stats()
				}
			}
		}(int64(r) * 17)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 8_000; i++ {
				if rng.Intn(4) == 0 {
					if o.Delete(uint64(rng.Intn(60_000))) {
						deleted.Add(1)
					}
				} else {
					o.Insert(uint64(rng.Intn(60_000)), uint64(i))
					inserted.Add(1)
				}
			}
		}(1000 + int64(w)*29)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	o.Close()
	want := baseLen + int(inserted.Load()) - int(deleted.Load())
	if o.Len() != want {
		t.Fatalf("Len = %d, want %d after drain", o.Len(), want)
	}
	if st := o.state.Load(); len(st.frozen) != 0 || st.delta != nil {
		t.Fatal("Close left pending layers")
	}
}
