package fitingtree_test

import (
	"bytes"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"fitingtree"
	"fitingtree/internal/workload"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	keys := workload.IoT(30_000, 1)
	vals := make([]string, len(keys))
	for i := range vals {
		vals[i] = "v"
	}
	tr, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 100})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, ok := tr.Lookup(keys[777]); !ok {
		t.Fatal("lookup missed a loaded key")
	}
	tr.Insert(keys[777], "dup")
	n := 0
	tr.Each(keys[777], func(v string) bool { n++; return true })
	if n < 2 {
		t.Fatalf("Each saw %d copies after duplicate insert", n)
	}
	st := tr.Stats()
	if st.Pages == 0 || st.IndexSize == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestZeroOptionsDefaults(t *testing.T) {
	tr, err := fitingtree.BulkLoad([]uint64{1, 2, 3}, []int{1, 2, 3}, fitingtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := tr.Options()
	if o.Error != fitingtree.DefaultError {
		t.Fatalf("default Error = %d", o.Error)
	}
	if o.BufferSize != 0 {
		t.Fatalf("zero-value BufferSize should stay 0 (unbuffered), got %d", o.BufferSize)
	}
	tr2, err := fitingtree.BulkLoad([]uint64{1, 2, 3}, []int{1, 2, 3}, fitingtree.Options{BufferSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr2.Options().BufferSize; got != fitingtree.DefaultError/2 {
		t.Fatalf("BufferSize -1 should select Error/2, got %d", got)
	}
}

func TestSecondaryPublicAPI(t *testing.T) {
	column := []float64{9.5, 1.1, 9.5, 3.3}
	s, err := fitingtree.BuildSecondary(column, fitingtree.Options{Error: 4, BufferSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := s.Rows(9.5)
	if len(rows) != 2 {
		t.Fatalf("Rows(9.5) = %v", rows)
	}
}

func TestEncodeDecode(t *testing.T) {
	keys := workload.Weblogs(20_000, 2)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i) * 3
	}
	tr, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 64, BufferSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the tree with buffered inserts before snapshotting.
	for i := 0; i < 500; i++ {
		tr.Insert(keys[i*7]+1, 999)
	}
	var buf bytes.Buffer
	if err := fitingtree.Encode(tr, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := fitingtree.Decode[uint64, uint64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("decoded Len = %d, want %d", back.Len(), tr.Len())
	}
	if back.Options().Error != 64 {
		t.Fatalf("decoded options lost: %+v", back.Options())
	}
	// Contents identical in order.
	type kv struct {
		k, v uint64
	}
	var a, b []kv
	tr.Ascend(func(k, v uint64) bool { a = append(a, kv{k, v}); return true })
	back.Ascend(func(k, v uint64) bool { b = append(b, kv{k, v}); return true })
	if len(a) != len(b) {
		t.Fatalf("element count mismatch %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].k != b[i].k {
			t.Fatalf("key mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if err := back.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := fitingtree.Decode[uint64, int](bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("decoded garbage")
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	keys := make([]uint64, 50_000)
	for i := range keys {
		keys[i] = uint64(i * 2)
	}
	vals := make([]int, len(keys))
	tr, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 100})
	if err != nil {
		t.Fatal(err)
	}
	c := fitingtree.NewConcurrent(tr)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(100_000))
				if k%2 == 0 && k < 100_000 {
					if !c.Contains(k) && k < uint64(len(keys)*2) {
						// Writers may be deleting; only even bulk keys that
						// were never deleted must be present. Tolerate.
						_ = k
					}
				}
				c.AscendRange(k, k+50, func(uint64, int) bool { return true })
			}
		}(int64(r))
	}
	for i := 0; i < 20_000; i++ {
		c.Insert(uint64(200_000+i), -i)
	}
	close(stop)
	wg.Wait()
	if c.Len() != 70_000 {
		t.Fatalf("Len = %d, want 70000", c.Len())
	}
	if _, ok := c.Lookup(200_001); !ok {
		t.Fatal("inserted key missing after concurrent phase")
	}
	if c.Delete(200_001) != true {
		t.Fatal("delete failed")
	}
	if c.Stats().Elements != 69_999 {
		t.Fatalf("stats elements = %d", c.Stats().Elements)
	}
}

func TestTuneLatencyTarget(t *testing.T) {
	keys := workload.Weblogs(100_000, 3)
	res, err := fitingtree.Tune(keys, fitingtree.TuneRequest{
		MaxLatencyNs: 5_000,
		CacheMissNs:  50,
		Candidates:   []int{10, 100, 1000, 10000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PredictedLatencyNs > 5_000 {
		t.Fatalf("pick violates SLA: %f", res.PredictedLatencyNs)
	}
	if res.Error == 0 || res.PredictedSizeBytes <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestTuneSpaceBudget(t *testing.T) {
	keys := workload.Weblogs(100_000, 3)
	res, err := fitingtree.Tune(keys, fitingtree.TuneRequest{
		MaxIndexBytes: 1 << 20,
		CacheMissNs:   50,
		Candidates:    []int{10, 100, 1000, 10000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PredictedSizeBytes > 1<<20 {
		t.Fatalf("pick violates budget: %d", res.PredictedSizeBytes)
	}
	// Build at the picked threshold and confirm the real index fits the
	// budget too (the model is pessimistic).
	vals := make([]int, len(keys))
	tr, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: res.Error})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Stats().IndexSize; got > 1<<20 {
		t.Fatalf("actual index %d exceeds budget", got)
	}
}

func TestTuneValidation(t *testing.T) {
	keys := []uint64{1, 2, 3}
	if _, err := fitingtree.Tune(keys, fitingtree.TuneRequest{}); err == nil {
		t.Fatal("accepted empty request")
	}
	if _, err := fitingtree.Tune(keys, fitingtree.TuneRequest{MaxLatencyNs: 1, MaxIndexBytes: 1}); err == nil {
		t.Fatal("accepted both constraints")
	}
	if _, err := fitingtree.Tune(keys, fitingtree.TuneRequest{MaxLatencyNs: 0.0001, CacheMissNs: 50}); err == nil {
		t.Fatal("accepted unsatisfiable SLA")
	}
}

// TestQuickEncodeDecodeRoundTrip is a property test: any random multiset
// stored in a tree survives Encode/Decode exactly, including order.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	f := func(raw []uint16, errRaw uint8) bool {
		keys := make([]uint64, len(raw))
		for i, r := range raw {
			keys[i] = uint64(r % 512)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		vals := make([]uint64, len(keys))
		for i := range vals {
			vals[i] = uint64(i)
		}
		e := 2 + int(errRaw%64)
		tr, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: e, BufferSize: e / 3})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if fitingtree.Encode(tr, &buf) != nil {
			return false
		}
		back, err := fitingtree.Decode[uint64, uint64](&buf)
		if err != nil {
			return false
		}
		if back.Len() != tr.Len() {
			return false
		}
		var a, b []uint64
		tr.Ascend(func(k, v uint64) bool { a = append(a, k); return true })
		back.Ascend(func(k, v uint64) bool { b = append(b, k); return true })
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return back.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
