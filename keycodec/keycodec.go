// Package keycodec builds order-preserving string keys from domain
// values, turning any type it covers into a key the string-keyed trees of
// this module can index.
//
// The split this package completes: a FITing-Tree key has two duties —
// exact ordering (native < on the key type, used by every comparison the
// correctness of lookups rests on) and approximate interpolation (a
// weakly monotone float projection used only to predict a position, see
// num.Approx). Encoding a domain value into ordered bytes discharges the
// first duty exactly: for every codec here, Encode(a) < Encode(b) under
// Go's string comparison (lexicographic byte order) iff a sorts before b
// in the domain's natural order. The second duty is discharged by the
// tree automatically — num.Approx of a string key reads its leading
// eight bytes as a big-endian integer, which is weakly monotone over any
// ordered-bytes encoding. Two keys agreeing on their first eight bytes
// collide in the projection; that degrades the position prediction (a
// wider final search window) but never correctness, because predicted
// positions are only ever verified by comparisons.
//
// All codecs are stateless; the Decode functions reject malformed input
// with an error rather than panicking, so untrusted bytes (a snapshot
// read back from disk, a WAL payload) cannot crash the process.
package keycodec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrShort reports an encoded key shorter than its fixed-width form.
var ErrShort = errors.New("keycodec: encoded key too short")

// Uint64 encodes an unsigned integer as 8 big-endian bytes; byte order
// equals numeric order.
func Uint64(v uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return string(b[:])
}

// DecodeUint64 reverses Uint64.
func DecodeUint64(s string) (uint64, error) {
	if len(s) < 8 {
		return 0, ErrShort
	}
	return binary.BigEndian.Uint64([]byte(s[:8])), nil
}

// Int64 encodes a signed integer in 8 bytes with the sign bit flipped,
// which maps the signed order onto the unsigned byte order: negative
// values sort below zero, which sorts below positive values.
func Int64(v int64) string {
	return Uint64(uint64(v) ^ (1 << 63))
}

// DecodeInt64 reverses Int64.
func DecodeInt64(s string) (int64, error) {
	u, err := DecodeUint64(s)
	if err != nil {
		return 0, err
	}
	return int64(u ^ (1 << 63)), nil
}

// Float64 encodes a float in 8 bytes ordered like the IEEE-754 total
// order over non-NaN values: for non-negative floats the payload bits
// already ascend with the value, so only the sign bit is flipped; for
// negative floats the whole word is inverted, reversing their descending
// bit pattern. NaN keys are rejected everywhere in this module, so the
// codec panics on NaN rather than assigning it an arbitrary slot.
// Negative zero encodes as positive zero: the two compare equal as
// native float keys, so an order-preserving codec must not separate
// them (decoding then returns +0 for either).
func Float64(v float64) string {
	if v != v {
		panic("keycodec: Float64 with NaN")
	}
	if v == 0 {
		v = 0 // collapse -0
	}
	bits := math.Float64bits(v)
	if bits>>63 == 1 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	return Uint64(bits)
}

// DecodeFloat64 reverses Float64.
func DecodeFloat64(s string) (float64, error) {
	bits, err := DecodeUint64(s)
	if err != nil {
		return 0, err
	}
	if bits>>63 == 1 {
		bits &^= 1 << 63
	} else {
		bits = ^bits
	}
	return math.Float64frombits(bits), nil
}

// Time encodes an instant as its Unix nanosecond count via Int64: byte
// order equals chronological order for instants representable in int64
// nanoseconds (years 1678–2262, time.Time's UnixNano domain).
func Time(t time.Time) string {
	return Int64(t.UnixNano())
}

// DecodeTime reverses Time, returning the instant in UTC.
func DecodeTime(s string) (time.Time, error) {
	n, err := DecodeInt64(s)
	if err != nil {
		return time.Time{}, err
	}
	return time.Unix(0, n).UTC(), nil
}

// UUID encodes a 16-byte identifier verbatim: RFC 4122 UUIDs compare
// bytewise, so the identity encoding is already order-preserving.
func UUID(id [16]byte) string {
	return string(id[:])
}

// DecodeUUID reverses UUID.
func DecodeUUID(s string) ([16]byte, error) {
	var id [16]byte
	if len(s) < 16 {
		return id, ErrShort
	}
	copy(id[:], s[:16])
	return id, nil
}

// Composite-tuple encoding. Concatenating per-field encodings preserves
// order only when no field's encoding is a proper prefix of another's at
// the same position; raw strings break that ("a","b" vs "ab","") and so
// does any variable-width field. Tuple therefore escapes each component —
// 0x00 becomes 0x00 0xFF so no interior byte sequence collides with the
// terminator — and closes it with 0x00 0x01, which sorts below every
// escaped byte. The result: tuples compare field by field, shorter
// prefixes first, exactly like a composite index key. Fixed-width
// components (the codecs above) can be passed through Tuple unchanged;
// the escape costs bytes only where a component contains 0x00.

// Tuple encodes components into one ordered string key: the
// concatenation of the escaped, terminated components compares like the
// tuple compares lexicographically component by component.
func Tuple(components ...string) string {
	n := 0
	for _, c := range components {
		n += len(c) + 2
	}
	out := make([]byte, 0, n)
	for _, c := range components {
		for i := 0; i < len(c); i++ {
			if c[i] == 0x00 {
				out = append(out, 0x00, 0xFF)
			} else {
				out = append(out, c[i])
			}
		}
		out = append(out, 0x00, 0x01)
	}
	return string(out)
}

// DecodeTuple reverses Tuple, splitting an encoded key back into its
// components. Malformed input — a dangling escape byte, an unknown
// escape, or a missing terminator — returns an error.
func DecodeTuple(s string) ([]string, error) {
	var out []string
	var cur []byte
	for i := 0; i < len(s); i++ {
		b := s[i]
		if b != 0x00 {
			cur = append(cur, b)
			continue
		}
		if i+1 >= len(s) {
			return nil, errors.New("keycodec: tuple truncated inside escape")
		}
		i++
		switch s[i] {
		case 0xFF:
			cur = append(cur, 0x00)
		case 0x01:
			out = append(out, string(cur))
			cur = cur[:0]
		default:
			return nil, fmt.Errorf("keycodec: tuple has invalid escape byte 0x%02x", s[i])
		}
	}
	if len(cur) != 0 {
		return nil, errors.New("keycodec: tuple missing terminator")
	}
	return out, nil
}
