package keycodec

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// cmp maps a comparison to -1/0/+1 so differently-typed orders can be
// checked against the encoded string order.
func cmp[T int64 | uint64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func TestScalarCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	u64s := []uint64{0, 1, 255, 256, 1 << 31, 1 << 63, math.MaxUint64}
	i64s := []int64{math.MinInt64, -1 << 31, -256, -1, 0, 1, 255, 1 << 31, math.MaxInt64}
	f64s := []float64{math.Inf(-1), -math.MaxFloat64, -1.5, -math.SmallestNonzeroFloat64,
		math.Copysign(0, -1), 0, math.SmallestNonzeroFloat64, 1.5, math.MaxFloat64, math.Inf(1)}
	for i := 0; i < 200; i++ {
		u64s = append(u64s, rng.Uint64())
		i64s = append(i64s, int64(rng.Uint64()))
		f64s = append(f64s, rng.NormFloat64()*math.Pow(10, float64(rng.Intn(60)-30)))
	}
	for _, a := range u64s {
		for _, b := range u64s {
			if cmp(Uint64(a), Uint64(b)) != cmp(a, b) {
				t.Fatalf("Uint64 order broken: %d vs %d", a, b)
			}
		}
		if got, err := DecodeUint64(Uint64(a)); err != nil || got != a {
			t.Fatalf("Uint64 round-trip: %d -> %d, %v", a, got, err)
		}
	}
	for _, a := range i64s {
		for _, b := range i64s {
			if cmp(Int64(a), Int64(b)) != cmp(a, b) {
				t.Fatalf("Int64 order broken: %d vs %d", a, b)
			}
		}
		if got, err := DecodeInt64(Int64(a)); err != nil || got != a {
			t.Fatalf("Int64 round-trip: %d -> %d, %v", a, got, err)
		}
	}
	for _, a := range f64s {
		for _, b := range f64s {
			if cmp(Float64(a), Float64(b)) != cmp(a, b) {
				t.Fatalf("Float64 order broken: %v vs %v", a, b)
			}
		}
		// Numeric equality: -0 intentionally round-trips to +0.
		got, err := DecodeFloat64(Float64(a))
		if err != nil || got != a {
			t.Fatalf("Float64 round-trip: %v -> %v, %v", a, got, err)
		}
	}
}

func TestFloat64NaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Float64(NaN) did not panic")
		}
	}()
	Float64(math.NaN())
}

func TestTimeCodec(t *testing.T) {
	times := []time.Time{
		time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(1969, 7, 20, 20, 17, 40, 0, time.UTC),
		time.Date(2026, 8, 8, 12, 0, 0, 999, time.UTC),
		time.Date(2200, 1, 1, 0, 0, 0, 0, time.UTC),
	}
	for _, a := range times {
		for _, b := range times {
			want := 0
			if a.Before(b) {
				want = -1
			} else if a.After(b) {
				want = 1
			}
			if cmp(Time(a), Time(b)) != want {
				t.Fatalf("Time order broken: %v vs %v", a, b)
			}
		}
		got, err := DecodeTime(Time(a))
		if err != nil || !got.Equal(a) {
			t.Fatalf("Time round-trip: %v -> %v, %v", a, got, err)
		}
	}
}

func TestUUIDCodec(t *testing.T) {
	a := [16]byte{0x12, 0x34}
	got, err := DecodeUUID(UUID(a))
	if err != nil || got != a {
		t.Fatalf("UUID round-trip: %v -> %v, %v", a, got, err)
	}
	if _, err := DecodeUUID("short"); err == nil {
		t.Fatal("DecodeUUID accepted a short key")
	}
}

// tupleLess is the reference order: lexicographic, component by
// component, with a shorter tuple that is a prefix sorting first.
func tupleLess(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func TestTupleCodec(t *testing.T) {
	cases := [][]string{
		{},
		{""},
		{"", ""},
		{"a"},
		{"a", ""},
		{"a", "b"},
		{"ab"},
		{"ab", ""},
		{"a\x00"},
		{"a\x00b"},
		{"a\x01"},
		{"\x00"},
		{"\x00\x00"},
		{"\x01"},
		{"\xff"},
		{Uint64(7), "suffix"},
	}
	for _, a := range cases {
		for _, b := range cases {
			if (Tuple(a...) < Tuple(b...)) != tupleLess(a, b) {
				t.Fatalf("Tuple order broken: %q vs %q", a, b)
			}
		}
		got, err := DecodeTuple(Tuple(a...))
		if err != nil || len(got) != len(a) {
			t.Fatalf("Tuple round-trip: %q -> %q, %v", a, got, err)
		}
		for i := range a {
			if got[i] != a[i] {
				t.Fatalf("Tuple round-trip: %q -> %q", a, got)
			}
		}
	}
	for _, bad := range []string{"\x00", "a", "\x00\x02", "\x00\x01x"} {
		if _, err := DecodeTuple(bad); err == nil {
			t.Fatalf("DecodeTuple(%q) accepted malformed input", bad)
		}
	}
}

// FuzzKeyCodec cross-checks every codec on fuzzer-chosen pairs: encoded
// string order must equal the domain order, and decoding must round-trip.
// The tuple case builds two-component tuples from the raw strings, which
// exercises the escape/terminator machinery on arbitrary bytes.
func FuzzKeyCodec(f *testing.F) {
	f.Add(uint64(0), uint64(1), int64(-1), int64(1), 0.5, -0.5, "a", "ab")
	f.Add(uint64(1<<63), uint64(math.MaxUint64), int64(math.MinInt64), int64(0),
		math.Inf(-1), math.MaxFloat64, "a\x00", "a\x00\x01")
	f.Fuzz(func(t *testing.T, ua, ub uint64, ia, ib int64, fa, fb float64, sa, sb string) {
		if cmp(Uint64(ua), Uint64(ub)) != cmp(ua, ub) {
			t.Fatalf("Uint64 order broken: %d vs %d", ua, ub)
		}
		if got, err := DecodeUint64(Uint64(ua)); err != nil || got != ua {
			t.Fatalf("Uint64 round-trip: %d -> %d, %v", ua, got, err)
		}
		if cmp(Int64(ia), Int64(ib)) != cmp(ia, ib) {
			t.Fatalf("Int64 order broken: %d vs %d", ia, ib)
		}
		if got, err := DecodeInt64(Int64(ia)); err != nil || got != ia {
			t.Fatalf("Int64 round-trip: %d -> %d, %v", ia, got, err)
		}
		if fa == fa && fb == fb {
			if cmp(Float64(fa), Float64(fb)) != cmp(fa, fb) {
				t.Fatalf("Float64 order broken: %v vs %v", fa, fb)
			}
			got, err := DecodeFloat64(Float64(fa))
			if err != nil || got != fa {
				t.Fatalf("Float64 round-trip: %v -> %v, %v", fa, got, err)
			}
		}
		ta, tb := []string{sa, sb}, []string{sb, sa}
		if (Tuple(ta...) < Tuple(tb...)) != tupleLess(ta, tb) {
			t.Fatalf("Tuple order broken: %q vs %q", ta, tb)
		}
		got, err := DecodeTuple(Tuple(ta...))
		if err != nil || len(got) != 2 || got[0] != sa || got[1] != sb {
			t.Fatalf("Tuple round-trip: %q -> %q, %v", ta, got, err)
		}
	})
}
