package fitingtree

// White-box tests for the asynchronous flush pipeline: they reach into
// the facade's published states to pin the freeze/publish transitions and
// to hold the worker slot artificially, which the black-box suite
// (package fitingtree_test) cannot do.

import (
	"testing"

	"fitingtree/internal/workload"
)

// asyncFixture bulk-loads a Weblogs-keyed facade with val == position.
func asyncFixture(t *testing.T, n int) *Optimistic[uint64, uint64] {
	t.Helper()
	keys := workload.Weblogs(n, 7)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	tr, err := BulkLoad(keys, vals, Options{Error: 32, BufferSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOptimistic(tr)
	// The construction-time default depends on GOMAXPROCS; these tests
	// exercise the pipeline, so enable it explicitly.
	o.SetAsyncFlush(true)
	return o
}

// TestAsyncFlushFreezePublish pins the freeze transition: the write that
// trips the threshold publishes a state whose active delta is empty and
// whose frozen slot holds the old delta (unless the background flusher
// already merged it), reads stay correct throughout, and SyncFlush leaves
// a state with no pending deltas at all.
func TestAsyncFlushFreezePublish(t *testing.T) {
	o := asyncFixture(t, 50_000)
	o.SetFlushEvery(64)
	base := o.Len()
	for i := uint64(0); i < 64; i++ {
		o.Insert(i*2+1, i)
	}
	// The 64th write froze the delta: the active delta must be empty. The
	// frozen slot is either still pending or already merged by the worker;
	// both are valid published states.
	if st := o.state.Load(); st.delta != nil {
		t.Fatalf("active delta survived the freeze: %d pending", st.delta.addN+st.delta.delN)
	}
	// Reads see every write regardless of where the pipeline is.
	for i := uint64(0); i < 64; i++ {
		if v, ok := o.Lookup(i*2 + 1); !ok || v != i {
			t.Fatalf("Lookup(%d) = %d,%v mid-pipeline", i*2+1, v, ok)
		}
	}
	if o.Len() != base+64 {
		t.Fatalf("Len = %d, want %d", o.Len(), base+64)
	}
	o.SyncFlush()
	if st := o.state.Load(); st.delta != nil || st.frozen != nil {
		t.Fatal("SyncFlush left a pending delta")
	}
	if o.Len() != base+64 {
		t.Fatalf("Len = %d after drain, want %d", o.Len(), base+64)
	}
	o.Close() // idempotent wrt the drain above
	o.Close()
}

// TestAsyncFlushBackpressure pins the backpressure fallback
// deterministically by claiming the worker slot (flusher=true with no
// worker running) so the frozen delta can never drain in the background:
// writers keep absorbing into the active delta until it reaches
// FlushBackpressureFactor times the threshold, then the tripping writer
// folds both deltas inline.
func TestAsyncFlushBackpressure(t *testing.T) {
	o := asyncFixture(t, 20_000)
	const flushAt = 16
	o.SetFlushEvery(flushAt)
	// Depth 1 pins the single-slot pipeline this test was written for:
	// with a deeper ladder the absorb phase would push more layers
	// instead of backpressuring.
	o.SetMaxFrozenLayers(1)
	base := o.Len()

	// Stage a frozen delta by hand and hold the worker slot.
	for i := uint64(0); i < flushAt-1; i++ {
		o.Insert(i*2+1, i)
	}
	st := o.state.Load()
	if st.delta == nil || st.frozen != nil {
		t.Fatalf("staging expected a pure active delta, got delta=%v frozen=%v", st.delta != nil, st.frozen != nil)
	}
	o.flusher.Store(true) // no worker is running: the frozen slot is now stuck
	o.state.Store(&ostate[uint64, uint64]{tree: st.tree, frozen: []*odelta[uint64, uint64]{st.delta}, size: st.size})

	// Writers absorb past the trip threshold without flushing...
	limit := flushAt*FlushBackpressureFactor - 1
	for i := 0; i < limit; i++ {
		o.Insert(uint64(100_000+i*2+1), uint64(i))
		cur := o.state.Load()
		if cur.frozen == nil {
			t.Fatalf("frozen slot drained with the worker slot held (insert %d)", i)
		}
		if cur.delta == nil || cur.delta.addN != i+1 {
			t.Fatalf("active delta not absorbing: insert %d", i)
		}
	}
	// ...until the write that crosses the backpressure bound folds both
	// deltas synchronously.
	o.Insert(999_999, 0)
	cur := o.state.Load()
	if cur.frozen != nil || cur.delta != nil {
		t.Fatalf("backpressure crossing did not fold: frozen=%v delta=%v", cur.frozen != nil, cur.delta != nil)
	}
	o.flusher.Store(false) // release the artificially held worker slot
	want := base + (flushAt - 1) + limit + 1
	if o.Len() != want {
		t.Fatalf("Len = %d, want %d", o.Len(), want)
	}
	// Every write from every stage survived the two-layer fold.
	for i := uint64(0); i < flushAt-1; i++ {
		if v, ok := o.Lookup(i*2 + 1); !ok || v != i {
			t.Fatalf("staged write %d lost: %d,%v", i, v, ok)
		}
	}
	for i := 0; i < limit; i++ {
		if v, ok := o.Lookup(uint64(100_000 + i*2 + 1)); !ok || v != uint64(i) {
			t.Fatalf("absorbed write %d lost: %d,%v", i, v, ok)
		}
	}
	if !o.Contains(999_999) {
		t.Fatal("backpressure-tripping write lost")
	}
	if err := cur.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncFlushInlineMode pins SetAsyncFlush(false): the tripping write
// folds inline — the published state immediately carries a merged tree
// and no deltas, the pre-pipeline behavior.
func TestAsyncFlushInlineMode(t *testing.T) {
	o := asyncFixture(t, 20_000)
	o.SetAsyncFlush(false)
	o.SetFlushEvery(8)
	before := o.state.Load().tree
	for i := uint64(0); i < 8; i++ {
		o.Insert(i*2+1, i)
	}
	st := o.state.Load()
	if st.frozen != nil || st.delta != nil {
		t.Fatal("inline mode left a pending delta after the trip")
	}
	if st.tree == before {
		t.Fatal("inline mode did not publish a merged tree")
	}
	// Re-enabling async restores the freeze path.
	o.SetAsyncFlush(true)
	for i := uint64(0); i < 8; i++ {
		o.Insert(uint64(1_000_000+i*2+1), i)
	}
	if st := o.state.Load(); st.delta != nil {
		t.Fatal("async re-enable: active delta survived the freeze")
	}
	o.Close()
}

// TestAsyncFlushDeleteThroughFrozen pins withDelete's layered accounting:
// with pending inserts stuck in a frozen delta (worker slot held), deletes
// must tombstone through the frozen layer — consuming base matches first,
// then frozen adds, in scan order — and report a miss only when the
// layered view is truly exhausted.
func TestAsyncFlushDeleteThroughFrozen(t *testing.T) {
	keys := []uint64{5, 7, 7, 9}
	vals := []uint64{50, 70, 71, 90}
	tr, err := BulkLoad(keys, vals, Options{Error: 16})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOptimistic(tr)
	o.SetAsyncFlush(true)
	// Two pending inserts for key 7, then freeze them by hand.
	o.Insert(7, 72)
	o.Insert(7, 73)
	st := o.state.Load()
	o.flusher.Store(true) // hold the worker slot: the frozen layer is pinned
	o.state.Store(&ostate[uint64, uint64]{tree: st.tree, frozen: []*odelta[uint64, uint64]{st.delta}, size: st.size})

	// Layered view of key 7: [70 71 72 73]. Deletes tombstone in exactly
	// that order — frozen adds are not consumable as pending inserts.
	want := [][]uint64{{71, 72, 73}, {72, 73}, {73}, {}}
	for round, exp := range want {
		if !o.Delete(7) {
			t.Fatalf("Delete(7) round %d missed", round)
		}
		var got []uint64
		o.Each(7, func(v uint64) bool { got = append(got, v); return true })
		if len(got) != len(exp) {
			t.Fatalf("round %d: Each(7) = %v, want %v", round, got, exp)
		}
		for i := range exp {
			if got[i] != exp[i] {
				t.Fatalf("round %d: Each(7) = %v, want %v", round, got, exp)
			}
		}
		// Point reads agree with the head of the layered view.
		v, ok := o.Lookup(7)
		if len(exp) == 0 {
			if ok {
				t.Fatalf("round %d: Lookup(7) found %d after exhaustion", round, v)
			}
		} else if !ok {
			t.Fatalf("round %d: Lookup(7) missed, want a survivor", round)
		}
	}
	if o.Delete(7) {
		t.Fatal("Delete(7) succeeded on an exhausted layered view")
	}
	if o.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (keys 5 and 9)", o.Len())
	}
	// Draining applies the identical accounting physically.
	o.flusher.Store(false)
	o.SyncFlush()
	if o.Contains(7) {
		t.Fatal("key 7 resurrected by the drain")
	}
	for _, k := range []uint64{5, 9} {
		if !o.Contains(k) {
			t.Fatalf("key %d lost", k)
		}
	}
}
