package fitingtree

import (
	"runtime"
	"sync"
	"sync/atomic"

	"fitingtree/internal/core"
)

// DefaultFlushEvery is the number of pending writes that triggers an
// Optimistic facade's delta flush (merge into a freshly built tree).
const DefaultFlushEvery = 1024

// DefaultMaxFrozenLayers is the default depth of the frozen merge ladder:
// how many tripped deltas may queue for background merging before writers
// feel backpressure. See SetMaxFrozenLayers.
const DefaultMaxFrozenLayers = 4

// FlushBackpressureFactor bounds the asynchronous flush pipeline's lag.
// While the frozen ladder is full, writers keep absorbing new writes into
// the active delta; once the active delta reaches FlushBackpressureFactor
// times the flush threshold, the tripping writer falls back to a
// synchronous inline fold of the whole ladder. The same factor bounds the
// compaction scheduler's layer growth: adjacent frozen layers are merged
// into each other only while the combined layer stays within
// FlushBackpressureFactor × the flush threshold, so a fold into the base
// tree batches about that many deltas.
const FlushBackpressureFactor = 4

// compactTierFactor is the ladder scheduler's size-tiering ratio: the
// bottom-most adjacent pair of frozen layers is compacted when the lower
// layer holds at most compactTierFactor times the upper one's pending
// ops. A lower layer that has outgrown the ratio (or the combined-size
// bound) is folded into the base tree instead.
const compactTierFactor = 4

// tuneFoldsEvery is how many base-tree folds pass between automatic
// retunes when self-tuning is enabled (SetAutoTune): each fold feeds
// fresh load samples into the page counters, so retuning on every fold
// would chase noise while retuning too rarely leaves stale ε targets in
// place across workload shifts.
const tuneFoldsEvery = 4

// Optimistic is a concurrency facade over a Tree with latch-free reads
// under a single-writer model, the regime the FB+-tree line of work calls
// optimistic lock coupling: Lookup, Contains, Each, AscendRange and
// LookupBatch take no lock and never block or retry-loop, so aggregate
// read throughput scales with reader goroutines instead of serializing on
// a lock word the way the RWMutex-based Concurrent facade does.
//
// Writers (Insert, Delete) are serialized by an internal mutex and publish
// every change as a new immutable state: the bulk-loaded base tree plus a
// small sorted delta of pending inserts and deletions. A seqlock-style
// version stamp is bumped to odd before and even after each publication;
// point reads validate it afterwards and re-read once if a publication
// raced them. Unlike a C-style seqlock, correctness never depends on that
// validation — readers can only ever observe fully published immutable
// states (Go's atomics give the needed happens-before edge), so the stamp
// buys freshness, not safety, and torn reads are impossible. Old states
// are reclaimed by the garbage collector once the last reader drops them,
// which is what makes the scheme safe without epoch bookkeeping.
//
// Once the delta reaches the flush threshold (SetFlushEvery), it is folded
// into the base tree with a page-granular copy-on-write merge
// (Tree.MergeCOW): only the pages the delta's keys fall into are rebuilt,
// and the published tree shares every untouched page with its predecessor,
// so flush cost scales with the delta size, not the tree size. Readers
// holding the old state keep a complete, consistent tree; the shared pages
// are immutable and the unshared ones are reclaimed by the garbage
// collector with the old state.
//
// With the asynchronous pipeline enabled (the default when GOMAXPROCS > 1
// at construction; see NewOptimistic and SetAsyncFlush), the merge itself
// runs off the writer's critical path: the tripping writer atomically
// pushes the delta onto a ladder of frozen immutable layers (a fresh
// empty active delta takes new writes) and a background worker drains the
// ladder — size-tiering adjacent frozen layers into each other and
// folding the bottom layer into the base tree — so writer tail latency
// tracks delta-append cost rather than merge cost even across write
// bursts that outrun a single in-flight merge. Reads consult tree ⊕
// frozen[0..n] ⊕ active through the same snapshot protocol; backpressure
// (FlushBackpressureFactor) applies only when the ladder is full
// (SetMaxFrozenLayers); SyncFlush and Close drain the pipeline;
// SetAsyncFlush(false) restores the fully inline flush.
//
// Scans and batch lookups run against one consistent snapshot: writes
// published during a scan are not observed by it.
type Optimistic[K Key, V any] struct {
	mu        sync.Mutex // serializes writers
	version   atomic.Uint64
	state     atomic.Pointer[ostate[K, V]]
	flushAt   atomic.Int64
	maxFrozen atomic.Int64

	// asyncOff disables the background flush pipeline; flushes then run
	// inline on the tripping writer. The zero value means async is on.
	asyncOff atomic.Bool
	// flusher is true while a background flush worker goroutine is live;
	// it is the spawn guard, so at most one worker runs per facade.
	flusher atomic.Bool
	// workers tracks live flush workers so Close can await their exit.
	workers sync.WaitGroup
	// bpFolds counts inline backpressure folds: writers that tripped the
	// threshold with the ladder full and the active delta past the bound,
	// and paid the merge themselves. See BackpressureFolds.
	bpFolds atomic.Uint64

	// flushHook, when set, is called after every publication that installs
	// a new base tree (see SetFlushHook).
	flushHook atomic.Pointer[func()]

	// autoTune enables the self-tuning loop (SetAutoTune): one-shot router
	// crossover calibration plus a cost-model retune every tuneFoldsEvery
	// base-tree folds. Off by default. tuneFolds counts folds.
	autoTune  atomic.Bool
	tuneFolds atomic.Uint64
}

// ostate is one immutable published state. Neither the tree nor any delta
// layer is ever mutated after publication.
type ostate[K Key, V any] struct {
	tree *Tree[K, V]
	// frozen is the ladder of deltas handed to the background worker and
	// no longer written to, bottom (oldest, next to fold into the tree)
	// first; nil or empty when no flush is in flight. Each layer's
	// tombstone counts are relative to the layered view beneath it: they
	// remove the first N matches of [surviving tree matches, then each
	// lower layer's surviving adds, bottom to top] in scan order. The
	// slice itself is immutable — ladder changes publish a fresh slice —
	// so layer pointers at stable indices identify in-flight merge
	// inputs.
	frozen []*odelta[K, V]
	// delta is the active delta taking new writes. Its tombstone counts
	// are relative to tree ⊕ frozen, the same relativity rule the frozen
	// layers follow. MergeCOW materializes exactly that order, so folding
	// lower layers never changes what an upper layer means.
	delta *odelta[K, V]
	size  int // live elements: tree minus deletions plus inserts
}

// odelta is an immutable sorted set of pending per-key write operations.
// dels[i] counts deletions applied to the layers beneath this delta's
// matches for keys[i]: the first dels[i] matches in Each order are treated
// as removed. adds[i] holds pending inserts for keys[i] in insertion
// order.
//
// An entry's tombstones use exactly one of two forms. The common counted
// form is dels[i] with tombs[i] == nil — pure anonymous deletes, the fast
// path every Delete-only workload stays on. Once a DeleteValue touches
// the entry it switches to the list form: tombs[i] holds the ordered
// core.Tomb list (anonymous deletes travel inside it as Any entries so
// recording order is preserved) and dels[i] is 0. delN counts tombstones
// across both forms.
type odelta[K Key, V any] struct {
	keys  []K
	adds  [][]V
	dels  []int
	tombs [][]core.Tomb[V]
	addN  int // total pending inserts
	delN  int // total pending deletions
}

// entryTombs returns application state for entry i's tombstones.
func (d *odelta[K, V]) entryTombs(i int) core.TombSet[V] {
	return core.NewTombSet(d.dels[i], d.tombs[i])
}

// pending returns the delta's total pending op count.
func (d *odelta[K, V]) pending() int { return d.addN + d.delN }

// NewOptimistic wraps an existing tree. The tree must not be used directly
// afterwards: the facade owns it and replaces it wholesale on flush.
// Asynchronous flushing defaults to on when GOMAXPROCS > 1 at
// construction time and off on a single-processor runtime, where a
// background merge has no spare core to run on and only steals the
// writer's timeslice; SetAsyncFlush overrides the default either way.
func NewOptimistic[K Key, V any](t *Tree[K, V]) *Optimistic[K, V] {
	o := &Optimistic[K, V]{}
	o.flushAt.Store(DefaultFlushEvery)
	o.maxFrozen.Store(DefaultMaxFrozenLayers)
	o.asyncOff.Store(runtime.GOMAXPROCS(0) <= 1)
	o.state.Store(&ostate[K, V]{tree: t, size: t.Len()})
	return o
}

// SetFlushEvery sets the number of pending writes that triggers a delta
// flush. The threshold is an atomic, so it is safe to change at any time,
// including while readers and writers are active; the new value applies
// from the next write. It panics if n < 1: a non-positive threshold has
// no meaning (every write would both trip and not satisfy it), and
// silently clamping hid caller bugs.
func (o *Optimistic[K, V]) SetFlushEvery(n int) {
	if n < 1 {
		panic("fitingtree: SetFlushEvery threshold must be >= 1")
	}
	o.flushAt.Store(int64(n))
}

// SetMaxFrozenLayers sets the frozen merge ladder's depth: how many
// tripped deltas may queue for background merging at once. Depth 1
// reproduces the single-frozen-slot pipeline (one in-flight merge;
// writers that outrun it absorb into the active delta and then hit
// backpressure), while deeper ladders let a write burst push several
// deltas in O(1) each and leave the merging entirely to the background
// compactor — backpressure applies only when all n slots are occupied.
// The default is DefaultMaxFrozenLayers. Safe to change at any time; a
// lowered depth drains naturally (existing layers still merge, new
// pushes respect the new bound). Panics if n < 1.
func (o *Optimistic[K, V]) SetMaxFrozenLayers(n int) {
	if n < 1 {
		panic("fitingtree: SetMaxFrozenLayers depth must be >= 1")
	}
	o.maxFrozen.Store(int64(n))
}

// SetAsyncFlush enables or disables the asynchronous flush pipeline
// (enabled by default on a multi-processor runtime; see NewOptimistic).
// Enabled, the writer that trips the flush threshold freezes the delta
// and a background goroutine runs the merge. Disabled,
// the tripping writer runs the merge inline (the pre-pipeline behavior,
// useful for deterministic tests and for comparison benchmarks). Safe to
// toggle at any time; disabling does not drain an in-flight flush — use
// SyncFlush or Close for that.
func (o *Optimistic[K, V]) SetAsyncFlush(enabled bool) {
	o.asyncOff.Store(!enabled)
}

// SetAutoTune enables or disables cost-model-driven self-tuning
// (disabled by default). Enabled, the first base-tree fold calibrates the
// router-maintenance crossover by measurement (Tree.CalibrateRouter) and
// every tuneFoldsEvery-th fold re-derives the per-region layout plan from
// the pages' sampled load counters (Tree.Retune) — tight error bounds
// where lookups dominate, loose bounds and small chunks where inserts
// dominate. Plans apply lazily as folds rebuild dirty regions, so
// enabling it never triggers a rebuild by itself. Safe to toggle at any
// time.
func (o *Optimistic[K, V]) SetAutoTune(enabled bool) { o.autoTune.Store(enabled) }

// Retune immediately derives and publishes a fresh per-region layout plan
// from the base tree's load counters, returning the plan's regions (nil
// when the tree is empty). The plan takes effect lazily on subsequent
// flushes; call SyncFlush first for counters that include all pending
// writes. Useful for deterministic tests and for workloads with known
// phase changes; the automatic loop (SetAutoTune) calls the same
// machinery.
func (o *Optimistic[K, V]) Retune() []RegionStat {
	return o.state.Load().tree.Retune()
}

// Calibrate measures the router-maintenance crossover on the current base
// tree and returns the ratio in effect afterwards; see
// Tree.CalibrateRouter.
func (o *Optimistic[K, V]) Calibrate() int {
	return o.state.Load().tree.CalibrateRouter()
}

// tuneBeforeFold runs the self-tuning hooks ahead of a fold into the base
// tree: one-shot router calibration, then a retune every tuneFoldsEvery
// folds so the fold itself applies fresh region targets to the pages it
// was going to rebuild anyway.
func (o *Optimistic[K, V]) tuneBeforeFold(t *Tree[K, V]) {
	if !o.autoTune.Load() {
		return
	}
	t.EnsureCalibrated()
	if o.tuneFolds.Add(1)%tuneFoldsEvery == 0 {
		t.Retune()
	}
}

// Counters returns the base tree's maintenance counters (inserts, merges,
// pages rebuilt) accumulated since the build. Pending deltas are not
// reflected until they fold; call SyncFlush first for an exact cut.
func (o *Optimistic[K, V]) Counters() Counters {
	return o.state.Load().tree.Counters()
}

// BackpressureFolds returns the number of inline backpressure folds so
// far: writes that tripped the flush threshold while the frozen ladder
// was full and the active delta had grown past the backpressure bound,
// forcing the writer to run the whole fold synchronously. A bursty
// workload that keeps this counter flat at a given ladder depth is being
// absorbed entirely by the background pipeline.
func (o *Optimistic[K, V]) BackpressureFolds() uint64 { return o.bpFolds.Load() }

// SyncFlush synchronously folds every pending write — the whole frozen
// ladder (if background merges are in flight) and the active delta — into
// the base tree and publishes the clean state. If the background worker
// completes its own merge of layers this call already folded, its stale
// publication is discarded. Afterwards the published state has no pending
// deltas; concurrent writers may of course add new ones immediately.
func (o *Optimistic[K, V]) SyncFlush() {
	o.mu.Lock()
	defer o.mu.Unlock()
	st := o.state.Load()
	if len(st.frozen) == 0 && st.delta == nil {
		return
	}
	o.tuneBeforeFold(st.tree)
	o.publish(&ostate[K, V]{tree: st.fold(), size: st.size})
}

// Close drains the flush pipeline: it disables asynchronous flushing,
// synchronously folds all pending writes, and waits for the background
// flusher (if any) to exit. The facade remains fully usable afterwards —
// subsequent writes simply flush inline on the tripping writer, and
// SetAsyncFlush(true) re-enables the pipeline. Close is idempotent; it
// must not race a concurrent SetAsyncFlush(true).
func (o *Optimistic[K, V]) Close() {
	o.asyncOff.Store(true)
	o.SyncFlush()
	o.workers.Wait()
}

// Version returns the current write stamp. It is even when no publication
// is in flight and increases by two per published write.
func (o *Optimistic[K, V]) Version() uint64 { return o.version.Load() }

// Lookup returns a value stored under k. When k has duplicates, an
// arbitrary match is returned; use Each for all of them.
func (o *Optimistic[K, V]) Lookup(k K) (V, bool) {
	v1 := o.version.Load()
	st := o.state.Load()
	// The no-delta branch stays inline: st.lookup is too large to inline
	// and the extra call costs measurable latency on the hottest path.
	var val V
	var ok bool
	if st.delta == nil && len(st.frozen) == 0 {
		val, ok = st.tree.Lookup(k)
	} else {
		val, ok = st.lookup(k)
	}
	if o.version.Load() != v1 {
		// A publication raced this read. The result above is still a
		// consistent snapshot read; re-reading once returns the freshest
		// published state instead.
		val, ok = o.state.Load().lookup(k)
	}
	return val, ok
}

// Contains reports whether k is present.
func (o *Optimistic[K, V]) Contains(k K) bool {
	_, ok := o.Lookup(k)
	return ok
}

// Each calls fn for every element with key exactly k against one
// consistent snapshot: base-tree matches first (in page order), then
// pending inserts layer by layer in insertion order. Writes published
// while the scan runs are not observed by it.
func (o *Optimistic[K, V]) Each(k K, fn func(v V) bool) {
	o.state.Load().each(k, fn)
}

// AscendRange calls fn for elements with lo <= key <= hi in ascending key
// order against one consistent snapshot.
func (o *Optimistic[K, V]) AscendRange(lo, hi K, fn func(k K, v V) bool) {
	if hi < lo {
		return
	}
	o.state.Load().ascendRange(lo, hi, fn)
}

// LookupBatch looks up every element of keys against one consistent
// snapshot, returning values and found flags parallel to keys. The probe
// set is processed in sorted order to amortize router descents (see
// Tree.LookupBatch).
func (o *Optimistic[K, V]) LookupBatch(keys []K) ([]V, []bool) {
	st := o.state.Load()
	vals, found := st.tree.LookupBatch(keys)
	if st.delta == nil && len(st.frozen) == 0 {
		return vals, found
	}
	for i, k := range keys {
		if !st.inAnyLayer(k) {
			continue // the base-tree batch result stands
		}
		vals[i], found[i] = st.lookup(k)
	}
	return vals, found
}

// inAnyLayer reports whether any delta layer has an entry for k. The
// active delta is probed first: under a write-heavy load it is the layer
// most likely to mention a recently touched key.
func (st *ostate[K, V]) inAnyLayer(k K) bool {
	if _, ok := st.delta.find(k); ok {
		return true
	}
	for _, d := range st.frozen {
		if _, ok := d.find(k); ok {
			return true
		}
	}
	return false
}

// Len returns the number of stored elements, including pending inserts.
func (o *Optimistic[K, V]) Len() int { return o.state.Load().size }

// Stats returns the base tree's statistics with Elements and Buffered
// adjusted for pending delta writes across every layer: Buffered sums the
// pending inserts of the whole frozen ladder plus the active delta,
// FrozenLayers reports the ladder's current depth, and LayerPending each
// frozen layer's pending op count, bottom to top.
func (o *Optimistic[K, V]) Stats() Stats {
	st := o.state.Load()
	s := st.tree.Stats()
	s.Elements = st.size
	s.FrozenLayers = len(st.frozen)
	if len(st.frozen) > 0 {
		s.LayerPending = make([]int, len(st.frozen))
		for i, d := range st.frozen {
			s.Buffered += d.addN
			s.LayerPending[i] = d.pending()
		}
	}
	if st.delta != nil {
		s.Buffered += st.delta.addN
	}
	return s
}

// Insert adds (k, v).
func (o *Optimistic[K, V]) Insert(k K, v V) {
	if k != k {
		panic("fitingtree: Insert with NaN key")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	st := o.state.Load()
	o.publishWrite(o.maybeFlush(&ostate[K, V]{
		tree:   st.tree,
		frozen: st.frozen,
		delta:  st.delta.withInsert(k, v),
		size:   st.size + 1,
	}))
}

// Delete removes one element with key k and reports whether one was found.
//
// Duplicate semantics: a pending (not yet frozen or flushed) insert of k
// is consumed first, newest first. Otherwise the delta records one more
// tombstone for k, and tombstones count matches in scan order — the first
// N matches that Each(k, ...) would visit (page order along the chain,
// page data before buffered inserts within a page, then each frozen
// layer's pending inserts, bottom to top) are treated as removed.
// Flushing preserves exactly this accounting, so which of several
// duplicates disappears is deterministic given the scan order and the
// flush points, unlike Tree.Delete, which removes whichever duplicate its
// page search finds first. Note that with the asynchronous flusher
// enabled (the default), *when* a pending insert stops being consumable —
// because a freeze pushed it onto the frozen ladder — depends on
// background flush timing, so among duplicates holding distinct values
// the victim can vary from run to run; workloads that need a
// deterministic victim should name it with DeleteValue, or disable async
// flushing (SetAsyncFlush(false)) / quiesce with SyncFlush before
// deleting.
func (o *Optimistic[K, V]) Delete(k K) bool {
	// Same guard as Insert: a NaN key compares false against everything,
	// so it would corrupt the sorted-delta invariant silently.
	if k != k {
		panic("fitingtree: Delete with NaN key")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	st := o.state.Load()
	nd, ok := st.withDelete(k)
	if !ok {
		return false
	}
	o.publishWrite(o.maybeFlush(&ostate[K, V]{tree: st.tree, frozen: st.frozen, delta: nd, size: st.size - 1}))
	return true
}

// DeleteValue removes one element with key k whose value equals v under
// Go equality, reporting whether one was removed. Unlike Delete, the
// victim among distinct-valued duplicates is named by the caller, so the
// outcome cannot depend on where background flush boundaries fell: a
// pending insert of (k, v) is consumed first, newest first, and otherwise
// the delta records a value tombstone that deletes the first live match
// carrying v in scan order wherever it currently resides — page data,
// frozen layer, or a flushed page later. It panics for non-comparable
// value types.
func (o *Optimistic[K, V]) DeleteValue(k K, v V) bool {
	if k != k {
		panic("fitingtree: DeleteValue with NaN key")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	st := o.state.Load()
	nd, ok := st.withDeleteValue(k, v)
	if !ok {
		return false
	}
	o.publishWrite(o.maybeFlush(&ostate[K, V]{tree: st.tree, frozen: st.frozen, delta: nd, size: st.size - 1}))
	return true
}

// SetFlushHook registers fn to run after every publication that installs
// a new base tree — an inline fold, a background fold of the ladder's
// bottom layer, a SyncFlush — on whichever goroutine performed it.
// Ladder compactions merge frozen layers into each other without touching
// the base tree, so they do not fire the hook. The durability layer uses
// it as its checkpoint trigger: a new base tree means dirty chunks exist
// to persist. fn runs with the writer mutex held, so it must not block or
// call back into this facade's write path; hand real work to another
// goroutine. SetFlushHook(nil) unregisters.
func (o *Optimistic[K, V]) SetFlushHook(fn func()) {
	if fn == nil {
		o.flushHook.Store(nil)
		return
	}
	o.flushHook.Store(&fn)
}

// publish installs next as the current state, bumping the version stamp to
// odd for the duration of the store, and fires the flush hook when the
// base tree changed. Callers hold o.mu.
func (o *Optimistic[K, V]) publish(next *ostate[K, V]) {
	prev := o.state.Load()
	o.version.Add(1)
	o.state.Store(next)
	o.version.Add(1)
	if next.tree != prev.tree {
		if h := o.flushHook.Load(); h != nil {
			(*h)()
		}
	}
}

// publishWrite publishes a writer's next state and, when it carries
// frozen layers, makes sure a background flush worker is live to drain
// them. The kick must follow the publish: a worker spawned first could
// load the pre-freeze state, find an empty ladder, and exit. Callers hold
// o.mu.
func (o *Optimistic[K, V]) publishWrite(next *ostate[K, V]) {
	o.publish(next)
	if len(next.frozen) > 0 {
		o.kick()
	}
}

// maybeFlush decides what happens once enough writes are pending. In
// asynchronous mode (the default) the active delta is pushed onto the
// frozen ladder — an O(1) slice append handing it to the background
// worker as an immutable merge input — and a fresh active delta takes new
// writes. Only when the ladder is full (SetMaxFrozenLayers) do writers
// keep absorbing writes into the active delta, and only past the
// backpressure bound does the tripping writer fall back to a synchronous
// inline fold of the whole ladder. In inline mode (SetAsyncFlush(false))
// the fold always runs on the tripping writer. Either way the fold is the
// page-granular copy-on-write merge: each delta already is a sorted op
// list (keys ascending, adds in insertion order, tombstone counts), and
// MergeCOW rebuilds only the pages those keys fall into while the new
// state shares every other page with the old one — O(delta · pages
// touched), not O(n). Callers hold o.mu.
func (o *Optimistic[K, V]) maybeFlush(st *ostate[K, V]) *ostate[K, V] {
	d := st.delta
	if d == nil {
		return st
	}
	// One atomic load serves both the trip check and the backpressure
	// check: with two loads, a concurrent SetFlushEvery could yield a
	// backpressure bound inconsistent with the threshold that tripped.
	flushAt := o.flushAt.Load()
	pending := int64(d.pending())
	if pending < flushAt {
		return st
	}
	if o.asyncOff.Load() {
		// Inline mode. Frozen layers can linger from a just-disabled
		// pipeline; fold them below the active delta, same layering as
		// reads.
		o.tuneBeforeFold(st.tree)
		return &ostate[K, V]{tree: st.fold(), size: st.size}
	}
	if len(st.frozen) < int(o.maxFrozen.Load()) {
		// Push: the active delta becomes the ladder's newest layer, new
		// writes go to a fresh active delta. The three-index append
		// always copies the spine, so published ladders never share a
		// backing array with a longer successor. publishWrite kicks the
		// worker.
		frozen := append(st.frozen[:len(st.frozen):len(st.frozen)], d)
		return &ostate[K, V]{tree: st.tree, frozen: frozen, size: st.size}
	}
	if pending < flushAt*FlushBackpressureFactor {
		return st // ladder full; keep absorbing writes
	}
	// Backpressure: the worker is lagging with every ladder slot occupied
	// and the active delta has grown past the bound. Fold everything
	// synchronously so pending state cannot grow without limit; the
	// worker's stale merge is discarded when it fails the layer-identity
	// check at publication.
	o.bpFolds.Add(1)
	o.tuneBeforeFold(st.tree)
	return &ostate[K, V]{tree: st.fold(), size: st.size}
}

// kick ensures a background flush worker is live. At most one worker runs
// per facade; the CAS is the spawn guard. Callers hold o.mu, which is
// what orders workers.Add against Close's workers.Wait.
func (o *Optimistic[K, V]) kick() {
	if o.flusher.CompareAndSwap(false, true) {
		o.workers.Add(1)
		go o.flushWorker()
	}
}

// flushWorker drains the frozen ladder. Each round it either compacts the
// bottom-most adjacent pair of frozen layers into one (size-tiered: while
// the lower layer is within compactTierFactor of the upper and the
// combined layer stays under the backpressure bound) or folds the bottom
// layer into the base tree — so tree folds batch several deltas' worth of
// writes while the ladder keeps absorbing pushes. All merging runs with
// no lock held; the worker briefly takes the writer mutex to publish, and
// layer-pointer identity checks (ladder slices are immutable, so a layer
// pointer at a stable index identifies the merge input) discard results
// whose inputs a SyncFlush or backpressure fold consumed meanwhile.
// Writer pushes only append above the layers being merged, so they never
// invalidate an in-flight round.
func (o *Optimistic[K, V]) flushWorker() {
	defer o.workers.Done()
	for {
		st := o.state.Load()
		if len(st.frozen) == 0 {
			o.flusher.Store(false)
			// A push published between the load above and the store may
			// have seen this worker as live and skipped its kick; re-check
			// and re-claim the worker slot if so.
			if len(o.state.Load().frozen) > 0 && o.flusher.CompareAndSwap(false, true) {
				continue
			}
			return
		}
		if i := compactPick(st.frozen, o.flushAt.Load()); i >= 0 {
			o.compactPair(st, i)
		} else {
			o.foldBottom(st)
		}
	}
}

// compactPick returns the index of the bottom-most adjacent frozen pair
// the scheduler would compact, or -1 when the bottom layer should fold
// into the base tree instead. Compacting keeps a layer out of the tree —
// a frozen-to-frozen merge costs O(layer) flat array work instead of a
// page-granular tree pass — so it wins while layers are of comparable
// size; once the lower layer outgrows compactTierFactor times the upper
// or the pair would exceed the backpressure bound, folding is the better
// deal.
func compactPick[K Key, V any](frozen []*odelta[K, V], flushAt int64) int {
	limit := int(flushAt) * FlushBackpressureFactor
	for i := 0; i+1 < len(frozen); i++ {
		lo, up := frozen[i].pending(), frozen[i+1].pending()
		if lo <= compactTierFactor*up && lo+up <= limit {
			return i
		}
	}
	return -1
}

// compactPair merges frozen layers i and i+1 into a single layer off-lock
// and publishes the shortened ladder. The merge inputs are identified by
// layer pointer: a concurrent SyncFlush or backpressure fold that
// consumed them fails the check and the round's work is discarded.
func (o *Optimistic[K, V]) compactPair(st *ostate[K, V], i int) {
	combined := st.compactLayers(i)
	o.mu.Lock()
	defer o.mu.Unlock()
	cur := o.state.Load()
	if cur.tree != st.tree || len(cur.frozen) <= i+1 ||
		cur.frozen[i] != st.frozen[i] || cur.frozen[i+1] != st.frozen[i+1] {
		return
	}
	frozen := make([]*odelta[K, V], 0, len(cur.frozen)-1)
	frozen = append(frozen, cur.frozen[:i]...)
	if combined.pending() > 0 {
		frozen = append(frozen, combined)
	}
	frozen = append(frozen, cur.frozen[i+2:]...)
	if len(frozen) == 0 {
		frozen = nil
	}
	o.publish(&ostate[K, V]{tree: cur.tree, frozen: frozen, delta: cur.delta, size: cur.size})
}

// compactLayers composes frozen layers i and i+1 into one delta whose
// tombstone accounting is relative to the view beneath layer i, using
// CompactOps. The beneath-view match count it needs for tombstone-spill
// decisions is computed against tree ⊕ frozen[0..i-1], the exact view
// layer i's own tombstones are relative to.
func (st *ostate[K, V]) compactLayers(i int) *odelta[K, V] {
	eachBeneath := func(k K, fn func(V) bool) {
		f := st.tree.Each
		for _, d := range st.frozen[:i] {
			f = overlayEach(f, d)
		}
		f(k, fn)
	}
	ops := core.CompactOps(st.frozen[i].ops(), st.frozen[i+1].ops(), eachBeneath)
	return deltaFromOps(ops)
}

// foldBottom merges the ladder's bottom layer into the base tree off-lock
// and publishes the result, identified by layer pointer like compactPair.
func (o *Optimistic[K, V]) foldBottom(st *ostate[K, V]) {
	o.tuneBeforeFold(st.tree)
	merged := st.tree.MergeCOW(st.frozen[0].ops())
	o.mu.Lock()
	defer o.mu.Unlock()
	cur := o.state.Load()
	if cur.tree != st.tree || len(cur.frozen) == 0 || cur.frozen[0] != st.frozen[0] {
		return
	}
	// Ladder slices are immutable, so the published remainder can share
	// the current slice's backing array.
	frozen := cur.frozen[1:]
	if len(frozen) == 0 {
		frozen = nil
	}
	o.publish(&ostate[K, V]{tree: merged, frozen: frozen, delta: cur.delta, size: cur.size})
}

// fold returns the state's base tree with every pending delta physically
// merged in, bottom frozen layer first — the same layering reads apply.
func (st *ostate[K, V]) fold() *Tree[K, V] {
	layers := make([][]core.MergeOp[K, V], 0, len(st.frozen)+1)
	for _, d := range st.frozen {
		layers = append(layers, d.ops())
	}
	if st.delta != nil {
		layers = append(layers, st.delta.ops())
	}
	return st.tree.MergeCOWN(layers...)
}

// ops converts the delta into MergeCOW's sorted op-list form.
func (d *odelta[K, V]) ops() []core.MergeOp[K, V] {
	ops := make([]core.MergeOp[K, V], len(d.keys))
	for i, k := range d.keys {
		ops[i] = core.MergeOp[K, V]{Key: k, Adds: d.adds[i], Dels: d.dels[i], Tombs: d.tombs[i]}
	}
	return ops
}

// deltaFromOps builds a delta from a sorted op list (CompactOps output).
func deltaFromOps[K Key, V any](ops []core.MergeOp[K, V]) *odelta[K, V] {
	d := &odelta[K, V]{
		keys:  make([]K, len(ops)),
		adds:  make([][]V, len(ops)),
		dels:  make([]int, len(ops)),
		tombs: make([][]core.Tomb[V], len(ops)),
	}
	for i, op := range ops {
		d.keys[i] = op.Key
		d.adds[i] = op.Adds
		d.dels[i] = op.Dels
		d.tombs[i] = op.Tombs
		d.addN += len(op.Adds)
		d.delN += op.Dels + len(op.Tombs)
	}
	return d
}

// lookup resolves a point read against this state's full layer stack.
func (st *ostate[K, V]) lookup(k K) (V, bool) {
	// Collect the per-layer entries for k, bottom (oldest frozen layer)
	// to top (active delta). Most lookups miss every layer and fall
	// through to the plain tree read.
	type layerEntry struct {
		dels  int
		adds  []V
		tombs []core.Tomb[V]
	}
	entries := make([]layerEntry, 0, 8)
	totalDels := 0
	hasList := false
	hit := false
	collect := func(d *odelta[K, V]) {
		var e layerEntry
		if i, ok := d.find(k); ok {
			e.dels, e.adds, e.tombs = d.dels[i], d.adds[i], d.tombs[i]
			hit = true
		}
		entries = append(entries, e)
		totalDels += e.dels + len(e.tombs)
		hasList = hasList || len(e.tombs) > 0
	}
	for _, d := range st.frozen {
		collect(d)
	}
	if st.delta != nil {
		collect(st.delta)
	}
	if !hit {
		return st.tree.Lookup(k)
	}
	// The newest add of the top layer survives unconditionally: no
	// tombstone sits above it.
	if top := entries[len(entries)-1]; len(top.adds) > 0 {
		return top.adds[len(top.adds)-1], true
	}
	// General path: materialize only the base matches tombstones can
	// reach — consumption across all layers is at most totalDels, so
	// totalDels+1 matches pin the first survivor — then replay each layer
	// bottom to top. A layer's tombstones consume base survivors first,
	// then the oldest surviving adds of the layers beneath (scan order);
	// its own adds stack on top, out of reach of anything below.
	limit := totalDels + 1
	if hasList {
		// A value tombstone skips past non-matching duplicates, so whether
		// it lands on a base match or on a lower layer's add can depend on
		// matches arbitrarily deep in the run; materialize them all.
		limit = int(^uint(0) >> 1)
	}
	base := make([]V, 0, min(totalDels+1, 4))
	st.tree.Each(k, func(v V) bool {
		base = append(base, v)
		return len(base) < limit
	})
	var adds []V
	for _, e := range entries {
		if len(e.tombs) > 0 {
			ts := core.NewTombSet(0, e.tombs)
			nb := make([]V, 0, len(base))
			for _, v := range base {
				if !ts.Consume(v) {
					nb = append(nb, v)
				}
			}
			base = nb
			na := make([]V, 0, len(adds))
			for _, v := range adds {
				if !ts.Consume(v) {
					na = append(na, v)
				}
			}
			adds = na
		} else {
			drop := e.dels
			if c := min(drop, len(base)); c > 0 {
				base = base[c:]
				drop -= c
			}
			if drop > 0 {
				adds = adds[min(drop, len(adds)):]
			}
		}
		if len(e.adds) > 0 {
			adds = append(adds[:len(adds):len(adds)], e.adds...)
		}
	}
	if len(adds) > 0 {
		return adds[len(adds)-1], true
	}
	if len(base) > 0 {
		return base[0], true
	}
	var zero V
	return zero, false
}

// eachFn yields every match of one key in scan order.
type eachFn[K Key, V any] func(k K, fn func(v V) bool)

// overlayEach layers one delta over a per-key match sequence: counted
// tombstones skip the head of the base sequence, value tombstones skip
// the first equal-valued match, and pending inserts append after it.
// Applying it once per layer, bottom to top, yields the facade's full
// N-layer read protocol.
func overlayEach[K Key, V any](base eachFn[K, V], d *odelta[K, V]) eachFn[K, V] {
	if d == nil {
		return base
	}
	return func(k K, fn func(v V) bool) {
		var ts core.TombSet[V]
		var adds []V
		if i, ok := d.find(k); ok {
			ts, adds = d.entryTombs(i), d.adds[i]
		}
		stopped := false
		base(k, func(v V) bool {
			if ts.Consume(v) {
				return true
			}
			if !fn(v) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
		for _, v := range adds {
			if !fn(v) {
				return
			}
		}
	}
}

// beneathActive returns the match enumerator of the layer stack below the
// active delta: surviving base-tree matches first, then each frozen
// layer's surviving adds, bottom to top. It is the view the active
// delta's tombstone counts are relative to.
func (st *ostate[K, V]) beneathActive() eachFn[K, V] {
	f := st.tree.Each
	for _, d := range st.frozen {
		f = overlayEach(f, d)
	}
	return f
}

// each visits every live element with key k: surviving base matches, then
// each frozen layer's pending inserts bottom to top, then active pending
// inserts.
func (st *ostate[K, V]) each(k K, fn func(v V) bool) {
	overlayEach(st.beneathActive(), st.delta)(k, fn)
}

// scanFn is an ordered range scan: it calls fn for every element with
// lo <= key <= hi in ascending key order.
type scanFn[K Key, V any] func(lo, hi K, fn func(k K, v V) bool)

// overlayScan layers one delta over an ordered range scan: per key, the
// entry's tombstones consume matches of the underlying run (counted ones
// its head, value ones each their first equal-valued match) and pending
// inserts are emitted after it, with delta-only keys merged in key order.
// Like overlayEach, one application per layer produces the N-layer
// protocol.
func overlayScan[K Key, V any](base scanFn[K, V], d *odelta[K, V]) scanFn[K, V] {
	if d == nil {
		return base
	}
	return func(lo, hi K, fn func(k K, v V) bool) {
		di := lowerBound(d.keys, lo)
		// emitDeltaTo flushes pending inserts for delta keys up to bound
		// (exclusive, or inclusive when incl), reporting false on early stop.
		emitDeltaTo := func(bound K, incl bool) bool {
			for di < len(d.keys) {
				dk := d.keys[di]
				if dk > hi || dk > bound || (dk == bound && !incl) {
					return true
				}
				for _, v := range d.adds[di] {
					if !fn(dk, v) {
						return false
					}
				}
				di++
			}
			return true
		}
		stopped := false
		var cur K
		haveCur := false
		var ts core.TombSet[V]
		base(lo, hi, func(k K, v V) bool {
			if !haveCur || k != cur {
				if !emitDeltaTo(k, false) {
					stopped = true
					return false
				}
				haveCur, cur, ts = true, k, core.TombSet[V]{}
				if di < len(d.keys) && d.keys[di] == k {
					ts = d.entryTombs(di)
				}
			}
			if ts.Consume(v) {
				return true
			}
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
		emitDeltaTo(hi, true)
	}
}

// ascendRange merges the base-tree scan with every pending delta in key
// order: per key, surviving base matches first, then each frozen layer's
// pending inserts bottom to top, then active pending inserts, each in
// insertion order.
func (st *ostate[K, V]) ascendRange(lo, hi K, fn func(k K, v V) bool) {
	s := st.tree.AscendRange
	for _, d := range st.frozen {
		s = overlayScan(s, d)
	}
	overlayScan(s, st.delta)(lo, hi, fn)
}

// find returns the index of k in the delta, nil-safe.
func (d *odelta[K, V]) find(k K) (int, bool) {
	if d == nil {
		return 0, false
	}
	i := lowerBound(d.keys, k)
	return i, i < len(d.keys) && d.keys[i] == k
}

// withInsert returns a copy of the delta (nil-safe) with v pending under
// k. Shared inner slices are never mutated: the touched entry is rebuilt.
func (d *odelta[K, V]) withInsert(k K, v V) *odelta[K, V] {
	i, found := d.find(k)
	nd := d.clone(i, !found)
	entry := make([]V, len(nd.adds[i])+1)
	copy(entry, nd.adds[i])
	entry[len(entry)-1] = v
	nd.keys[i] = k
	nd.adds[i] = entry
	nd.addN++
	return nd
}

// withDelete returns a copy of the state's active delta with one element
// of key k removed, or ok=false when no live element with key k exists. A
// pending insert in the active delta is consumed first; otherwise one
// more match of the layered view beneath the active delta (base tree,
// then each frozen layer's adds, bottom to top) is tombstoned.
func (st *ostate[K, V]) withDelete(k K) (*odelta[K, V], bool) {
	d := st.delta
	i, found := d.find(k)
	if found && len(d.adds[i]) > 0 {
		if len(d.adds[i]) == 1 && d.dels[i] == 0 && d.tombs[i] == nil {
			return d.without(i), true
		}
		nd := d.clone(i, false)
		nd.adds[i] = append([]V(nil), nd.adds[i][:len(nd.adds[i])-1]...)
		nd.addN--
		return nd, true
	}
	// The new tombstone needs a live match in the layered view beneath
	// the active delta: surviving base matches, then each frozen layer's
	// surviving adds, bottom to top, after this entry's existing
	// tombstones. Frozen layers are immutable (a background merge may be
	// reading them), so even when the victim is a frozen add the delete is
	// recorded as one more active tombstone — the accounting reaches down
	// through every layer.
	var ts core.TombSet[V]
	if found {
		ts = d.entryTombs(i)
	}
	alive := false
	st.beneathActive()(k, func(v V) bool {
		if ts.Consume(v) {
			return true
		}
		alive = true
		return false
	})
	if !alive {
		return nil, false
	}
	nd := d.clone(i, !found)
	nd.keys[i] = k
	if nd.tombs[i] != nil {
		// List form: anonymous deletes join the list so ordering against
		// the entry's value tombstones is preserved. The cap trim forces
		// the append to copy, never mutating the shared inner slice.
		t := nd.tombs[i]
		nd.tombs[i] = append(t[:len(t):len(t)], core.Tomb[V]{Any: true})
	} else {
		nd.dels[i]++
	}
	nd.delN++
	return nd, true
}

// withDeleteValue returns a copy of the state's active delta with one
// element of key k whose value equals v removed, or ok=false when no such
// live element exists. The newest equal-valued pending insert in the
// active delta is consumed first; otherwise a value tombstone is recorded
// after verifying an equal-valued match survives in the layered view
// beneath the active delta, switching the entry to the ordered-list
// tombstone form.
func (st *ostate[K, V]) withDeleteValue(k K, v V) (*odelta[K, V], bool) {
	d := st.delta
	i, found := d.find(k)
	if found {
		for j := len(d.adds[i]) - 1; j >= 0; j-- {
			if any(d.adds[i][j]) != any(v) {
				continue
			}
			if len(d.adds[i]) == 1 && d.dels[i] == 0 && d.tombs[i] == nil {
				return d.without(i), true
			}
			nd := d.clone(i, false)
			entry := make([]V, 0, len(nd.adds[i])-1)
			entry = append(entry, nd.adds[i][:j]...)
			entry = append(entry, nd.adds[i][j+1:]...)
			nd.adds[i] = entry
			nd.addN--
			return nd, true
		}
	}
	var ts core.TombSet[V]
	if found {
		ts = d.entryTombs(i)
	}
	alive := false
	st.beneathActive()(k, func(w V) bool {
		if ts.Consume(w) {
			return true
		}
		if any(w) == any(v) {
			alive = true
			return false
		}
		return true
	})
	if !alive {
		return nil, false
	}
	nd := d.clone(i, !found)
	nd.keys[i] = k
	list := nd.tombs[i]
	if list == nil && nd.dels[i] > 0 {
		// Switch the entry to list form: existing anonymous tombstones
		// become Any entries ahead of the new value entry, preserving
		// recording order.
		list = make([]core.Tomb[V], nd.dels[i])
		for j := range list {
			list[j].Any = true
		}
		nd.dels[i] = 0
	}
	nd.tombs[i] = append(list[:len(list):len(list)], core.Tomb[V]{Val: v})
	nd.delN++
	return nd, true
}

// clone copies the delta's spine (nil-safe). When insert is set, a zero
// entry is opened at index i; the caller fills it in.
func (d *odelta[K, V]) clone(i int, insert bool) *odelta[K, V] {
	n := 0
	if d != nil {
		n = len(d.keys)
	}
	grow := 0
	if insert {
		grow = 1
	}
	nd := &odelta[K, V]{
		keys:  make([]K, n+grow),
		adds:  make([][]V, n+grow),
		dels:  make([]int, n+grow),
		tombs: make([][]core.Tomb[V], n+grow),
	}
	if d != nil {
		nd.addN, nd.delN = d.addN, d.delN
		copy(nd.keys[:i], d.keys[:i])
		copy(nd.adds[:i], d.adds[:i])
		copy(nd.dels[:i], d.dels[:i])
		copy(nd.tombs[:i], d.tombs[:i])
		copy(nd.keys[i+grow:], d.keys[i:])
		copy(nd.adds[i+grow:], d.adds[i:])
		copy(nd.dels[i+grow:], d.dels[i:])
		copy(nd.tombs[i+grow:], d.tombs[i:])
	}
	return nd
}

// without returns a copy of the delta with entry i dropped (nil when that
// was the last entry).
func (d *odelta[K, V]) without(i int) *odelta[K, V] {
	if len(d.keys) == 1 {
		return nil
	}
	nd := &odelta[K, V]{
		keys:  make([]K, len(d.keys)-1),
		adds:  make([][]V, len(d.adds)-1),
		dels:  make([]int, len(d.dels)-1),
		tombs: make([][]core.Tomb[V], len(d.tombs)-1),
		addN:  d.addN - len(d.adds[i]),
		delN:  d.delN - d.dels[i] - len(d.tombs[i]),
	}
	copy(nd.keys, d.keys[:i])
	copy(nd.adds, d.adds[:i])
	copy(nd.dels, d.dels[:i])
	copy(nd.tombs, d.tombs[:i])
	copy(nd.keys[i:], d.keys[i+1:])
	copy(nd.adds[i:], d.adds[i+1:])
	copy(nd.dels[i:], d.dels[i+1:])
	copy(nd.tombs[i:], d.tombs[i+1:])
	return nd
}

// lowerBound returns the index of the first key >= k in a sorted slice.
func lowerBound[K Key](keys []K, k K) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
