package fitingtree

import (
	"runtime"
	"sync"
	"sync/atomic"

	"fitingtree/internal/core"
)

// DefaultFlushEvery is the number of pending writes that triggers an
// Optimistic facade's delta flush (merge into a freshly built tree).
const DefaultFlushEvery = 1024

// FlushBackpressureFactor bounds the asynchronous flush pipeline's lag.
// While a frozen delta is still being merged in the background, writers
// keep absorbing new writes into the active delta; once the active delta
// reaches FlushBackpressureFactor times the flush threshold, the tripping
// writer falls back to a synchronous inline flush of both deltas. The
// frozen slot has depth one, so this is the only way pending state could
// otherwise grow without bound.
const FlushBackpressureFactor = 4

// Optimistic is a concurrency facade over a Tree with latch-free reads
// under a single-writer model, the regime the FB+-tree line of work calls
// optimistic lock coupling: Lookup, Contains, Each, AscendRange and
// LookupBatch take no lock and never block or retry-loop, so aggregate
// read throughput scales with reader goroutines instead of serializing on
// a lock word the way the RWMutex-based Concurrent facade does.
//
// Writers (Insert, Delete) are serialized by an internal mutex and publish
// every change as a new immutable state: the bulk-loaded base tree plus a
// small sorted delta of pending inserts and deletions. A seqlock-style
// version stamp is bumped to odd before and even after each publication;
// point reads validate it afterwards and re-read once if a publication
// raced them. Unlike a C-style seqlock, correctness never depends on that
// validation — readers can only ever observe fully published immutable
// states (Go's atomics give the needed happens-before edge), so the stamp
// buys freshness, not safety, and torn reads are impossible. Old states
// are reclaimed by the garbage collector once the last reader drops them,
// which is what makes the scheme safe without epoch bookkeeping.
//
// Once the delta reaches the flush threshold (SetFlushEvery), it is folded
// into the base tree with a page-granular copy-on-write merge
// (Tree.MergeCOW): only the pages the delta's keys fall into are rebuilt,
// and the published tree shares every untouched page with its predecessor,
// so flush cost scales with the delta size, not the tree size. Readers
// holding the old state keep a complete, consistent tree; the shared pages
// are immutable and the unshared ones are reclaimed by the garbage
// collector with the old state.
//
// With the asynchronous pipeline enabled (the default when GOMAXPROCS > 1
// at construction; see NewOptimistic and SetAsyncFlush), the merge itself
// runs off the writer's critical path: the tripping writer atomically
// freezes the delta (a fresh empty active delta takes new writes) and a
// background flusher goroutine runs the merge and publishes the result,
// so writer tail latency tracks delta-append cost rather than merge cost.
// Reads consult tree + frozen delta + active delta through the same
// snapshot protocol; a backpressure threshold (FlushBackpressureFactor)
// bounds how far writers can run ahead of the flusher; SyncFlush and
// Close drain the pipeline; SetAsyncFlush(false) restores the fully
// inline flush.
//
// Scans and batch lookups run against one consistent snapshot: writes
// published during a scan are not observed by it.
type Optimistic[K Key, V any] struct {
	mu      sync.Mutex // serializes writers
	version atomic.Uint64
	state   atomic.Pointer[ostate[K, V]]
	flushAt atomic.Int64

	// asyncOff disables the background flush pipeline; flushes then run
	// inline on the tripping writer. The zero value means async is on.
	asyncOff atomic.Bool
	// flusher is true while a background flush worker goroutine is live;
	// it is the spawn guard, so at most one worker runs per facade.
	flusher atomic.Bool
	// workers tracks live flush workers so Close can await their exit.
	workers sync.WaitGroup

	// flushHook, when set, is called after every publication that installs
	// a new base tree (see SetFlushHook).
	flushHook atomic.Pointer[func()]
}

// ostate is one immutable published state. Neither the tree nor either
// delta is ever mutated after publication.
type ostate[K Key, V any] struct {
	tree *Tree[K, V]
	// frozen is a delta handed to the background flusher and no longer
	// written to (nil when no flush is in flight). Its writes are relative
	// to tree, exactly as an active delta's are.
	frozen *odelta[K, V]
	// delta is the active delta taking new writes. Its tombstone counts
	// are relative to the layered view tree ⊕ frozen: they remove the
	// first N matches of [surviving tree matches, then frozen adds] in
	// scan order. MergeCOW materializes exactly that order, so folding the
	// frozen delta into the tree never changes what the active delta means.
	delta *odelta[K, V]
	size  int // live elements: tree minus deletions plus inserts
}

// odelta is an immutable sorted set of pending per-key write operations.
// dels[i] counts deletions applied to the base tree's matches for keys[i]:
// the first dels[i] matches in Each order are treated as removed. adds[i]
// holds pending inserts for keys[i] in insertion order.
type odelta[K Key, V any] struct {
	keys []K
	adds [][]V
	dels []int
	addN int // total pending inserts
	delN int // total pending deletions
}

// NewOptimistic wraps an existing tree. The tree must not be used directly
// afterwards: the facade owns it and replaces it wholesale on flush.
// Asynchronous flushing defaults to on when GOMAXPROCS > 1 at
// construction time and off on a single-processor runtime, where a
// background merge has no spare core to run on and only steals the
// writer's timeslice; SetAsyncFlush overrides the default either way.
func NewOptimistic[K Key, V any](t *Tree[K, V]) *Optimistic[K, V] {
	o := &Optimistic[K, V]{}
	o.flushAt.Store(DefaultFlushEvery)
	o.asyncOff.Store(runtime.GOMAXPROCS(0) <= 1)
	o.state.Store(&ostate[K, V]{tree: t, size: t.Len()})
	return o
}

// SetFlushEvery sets the number of pending writes that triggers a delta
// flush. The threshold is an atomic, so it is safe to change at any time,
// including while readers and writers are active; the new value applies
// from the next write. It panics if n < 1: a non-positive threshold has
// no meaning (every write would both trip and not satisfy it), and
// silently clamping hid caller bugs.
func (o *Optimistic[K, V]) SetFlushEvery(n int) {
	if n < 1 {
		panic("fitingtree: SetFlushEvery threshold must be >= 1")
	}
	o.flushAt.Store(int64(n))
}

// SetAsyncFlush enables or disables the asynchronous flush pipeline
// (enabled by default on a multi-processor runtime; see NewOptimistic).
// Enabled, the writer that trips the flush threshold freezes the delta
// and a background goroutine runs the merge. Disabled,
// the tripping writer runs the merge inline (the pre-pipeline behavior,
// useful for deterministic tests and for comparison benchmarks). Safe to
// toggle at any time; disabling does not drain an in-flight flush — use
// SyncFlush or Close for that.
func (o *Optimistic[K, V]) SetAsyncFlush(enabled bool) {
	o.asyncOff.Store(!enabled)
}

// SyncFlush synchronously folds every pending write — the frozen delta
// (if a background flush is in flight) and the active delta — into the
// base tree and publishes the clean state. If the background flusher
// completes its own merge of a delta this call already folded, its stale
// publication is discarded. Afterwards the published state has no pending
// deltas; concurrent writers may of course add new ones immediately.
func (o *Optimistic[K, V]) SyncFlush() {
	o.mu.Lock()
	defer o.mu.Unlock()
	st := o.state.Load()
	if st.frozen == nil && st.delta == nil {
		return
	}
	o.publish(&ostate[K, V]{tree: st.fold(), size: st.size})
}

// Close drains the flush pipeline: it disables asynchronous flushing,
// synchronously folds all pending writes, and waits for the background
// flusher (if any) to exit. The facade remains fully usable afterwards —
// subsequent writes simply flush inline on the tripping writer, and
// SetAsyncFlush(true) re-enables the pipeline. Close is idempotent; it
// must not race a concurrent SetAsyncFlush(true).
func (o *Optimistic[K, V]) Close() {
	o.asyncOff.Store(true)
	o.SyncFlush()
	o.workers.Wait()
}

// Version returns the current write stamp. It is even when no publication
// is in flight and increases by two per published write.
func (o *Optimistic[K, V]) Version() uint64 { return o.version.Load() }

// Lookup returns a value stored under k. When k has duplicates, an
// arbitrary match is returned; use Each for all of them.
func (o *Optimistic[K, V]) Lookup(k K) (V, bool) {
	v1 := o.version.Load()
	st := o.state.Load()
	// The no-delta branch stays inline: st.lookup is too large to inline
	// and the extra call costs measurable latency on the hottest path.
	var val V
	var ok bool
	if st.delta == nil && st.frozen == nil {
		val, ok = st.tree.Lookup(k)
	} else {
		val, ok = st.lookup(k)
	}
	if o.version.Load() != v1 {
		// A publication raced this read. The result above is still a
		// consistent snapshot read; re-reading once returns the freshest
		// published state instead.
		val, ok = o.state.Load().lookup(k)
	}
	return val, ok
}

// Contains reports whether k is present.
func (o *Optimistic[K, V]) Contains(k K) bool {
	_, ok := o.Lookup(k)
	return ok
}

// Each calls fn for every element with key exactly k against one
// consistent snapshot: base-tree matches first (in page order), then
// pending inserts in insertion order. Writes published while the scan runs
// are not observed by it.
func (o *Optimistic[K, V]) Each(k K, fn func(v V) bool) {
	o.state.Load().each(k, fn)
}

// AscendRange calls fn for elements with lo <= key <= hi in ascending key
// order against one consistent snapshot.
func (o *Optimistic[K, V]) AscendRange(lo, hi K, fn func(k K, v V) bool) {
	if hi < lo {
		return
	}
	o.state.Load().ascendRange(lo, hi, fn)
}

// LookupBatch looks up every element of keys against one consistent
// snapshot, returning values and found flags parallel to keys. The probe
// set is processed in sorted order to amortize router descents (see
// Tree.LookupBatch).
func (o *Optimistic[K, V]) LookupBatch(keys []K) ([]V, []bool) {
	st := o.state.Load()
	vals, found := st.tree.LookupBatch(keys)
	if st.delta == nil && st.frozen == nil {
		return vals, found
	}
	for i, k := range keys {
		ai, aok := st.delta.find(k)
		fi, fok := st.frozen.find(k)
		if !aok && !fok {
			continue // the base-tree batch result stands
		}
		// Resolve from the delta indices already in hand instead of
		// re-running a full point lookup (st.lookup would redo both
		// delta searches before its page walk).
		vals[i], found[i] = st.resolve(k, fi, fok, ai, aok)
	}
	return vals, found
}

// Len returns the number of stored elements, including pending inserts.
func (o *Optimistic[K, V]) Len() int { return o.state.Load().size }

// Stats returns the base tree's statistics with Elements and Buffered
// adjusted for pending delta writes.
func (o *Optimistic[K, V]) Stats() Stats {
	st := o.state.Load()
	s := st.tree.Stats()
	s.Elements = st.size
	if st.frozen != nil {
		s.Buffered += st.frozen.addN
	}
	if st.delta != nil {
		s.Buffered += st.delta.addN
	}
	return s
}

// Insert adds (k, v).
func (o *Optimistic[K, V]) Insert(k K, v V) {
	if k != k {
		panic("fitingtree: Insert with NaN key")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	st := o.state.Load()
	o.publishWrite(o.maybeFlush(&ostate[K, V]{
		tree:   st.tree,
		frozen: st.frozen,
		delta:  st.delta.withInsert(k, v),
		size:   st.size + 1,
	}))
}

// Delete removes one element with key k and reports whether one was found.
//
// Duplicate semantics: a pending (not yet frozen or flushed) insert of k
// is consumed first, newest first. Otherwise the delta records one more
// tombstone for k, and tombstones count matches in scan order — the first
// N matches that Each(k, ...) would visit (page order along the chain,
// page data before buffered inserts within a page, then frozen pending
// inserts) are treated as removed. Flushing preserves exactly this
// accounting, so which of several duplicates disappears is deterministic
// given the scan order and the flush points, unlike Tree.Delete, which
// removes whichever duplicate its page search finds first. Note that with
// the asynchronous flusher enabled (the default), *when* a pending insert
// stops being consumable — because a freeze moved it into the frozen
// delta — depends on background flush timing, so among duplicates holding
// distinct values the victim can vary from run to run; workloads that
// need a deterministic victim should disable async flushing
// (SetAsyncFlush(false)) or quiesce with SyncFlush before deleting.
func (o *Optimistic[K, V]) Delete(k K) bool {
	// Same guard as Insert: a NaN key compares false against everything,
	// so it would corrupt the sorted-delta invariant silently.
	if k != k {
		panic("fitingtree: Delete with NaN key")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	st := o.state.Load()
	nd, ok := st.withDelete(k)
	if !ok {
		return false
	}
	o.publishWrite(o.maybeFlush(&ostate[K, V]{tree: st.tree, frozen: st.frozen, delta: nd, size: st.size - 1}))
	return true
}

// SetFlushHook registers fn to run after every publication that installs
// a new base tree — an inline fold, a background merge, a SyncFlush — on
// whichever goroutine performed it. The durability layer uses it as its
// checkpoint trigger: a new base tree means dirty chunks exist to persist.
// fn runs with the writer mutex held, so it must not block or call back
// into this facade's write path; hand real work to another goroutine.
// SetFlushHook(nil) unregisters.
func (o *Optimistic[K, V]) SetFlushHook(fn func()) {
	if fn == nil {
		o.flushHook.Store(nil)
		return
	}
	o.flushHook.Store(&fn)
}

// publish installs next as the current state, bumping the version stamp to
// odd for the duration of the store, and fires the flush hook when the
// base tree changed. Callers hold o.mu.
func (o *Optimistic[K, V]) publish(next *ostate[K, V]) {
	prev := o.state.Load()
	o.version.Add(1)
	o.state.Store(next)
	o.version.Add(1)
	if next.tree != prev.tree {
		if h := o.flushHook.Load(); h != nil {
			(*h)()
		}
	}
}

// publishWrite publishes a writer's next state and, when it carries a
// frozen delta, makes sure a background flush worker is live to merge it.
// The kick must follow the publish: a worker spawned first could load the
// pre-freeze state, find no frozen delta, and exit. Callers hold o.mu.
func (o *Optimistic[K, V]) publishWrite(next *ostate[K, V]) {
	o.publish(next)
	if next.frozen != nil {
		o.kick()
	}
}

// maybeFlush decides what happens once enough writes are pending. In
// asynchronous mode (the default) the active delta is frozen — handed to
// the background flusher as an immutable flush input — and a fresh active
// delta takes new writes, so the tripping writer pays O(1) instead of the
// merge. If a frozen delta is still in flight, writers keep absorbing
// writes until the backpressure bound, then fall back to a synchronous
// inline fold of both deltas. In inline mode (SetAsyncFlush(false)) the
// fold always runs on the tripping writer. Either way the fold is the
// page-granular copy-on-write merge: the delta already is a sorted op
// list (keys ascending, adds in insertion order, tombstone counts), and
// MergeCOW rebuilds only the pages those keys fall into while the new
// state shares every other page with the old one — O(delta · pages
// touched), not O(n). Callers hold o.mu.
func (o *Optimistic[K, V]) maybeFlush(st *ostate[K, V]) *ostate[K, V] {
	d := st.delta
	if d == nil {
		return st
	}
	// One atomic load serves both the trip check and the backpressure
	// check: with two loads, a concurrent SetFlushEvery could yield a
	// backpressure bound inconsistent with the threshold that tripped.
	flushAt := o.flushAt.Load()
	pending := int64(d.addN + d.delN)
	if pending < flushAt {
		return st
	}
	if o.asyncOff.Load() {
		// Inline mode. A frozen delta can linger from a just-disabled
		// pipeline; fold it below the active delta, same layering as reads.
		return &ostate[K, V]{tree: st.fold(), size: st.size}
	}
	if st.frozen == nil {
		// Freeze: the active delta becomes the flush input, new writes go
		// to a fresh active delta. publishWrite kicks the flusher.
		return &ostate[K, V]{tree: st.tree, frozen: d, size: st.size}
	}
	if pending < flushAt*FlushBackpressureFactor {
		return st // flusher busy; keep absorbing writes
	}
	// Backpressure: the flusher is lagging and the active delta has grown
	// past the bound. Fold both deltas synchronously so pending state
	// cannot grow without limit; the flusher's stale merge is discarded
	// when it fails the frozen-identity check at publication.
	return &ostate[K, V]{tree: st.fold(), size: st.size}
}

// kick ensures a background flush worker is live. At most one worker runs
// per facade; the CAS is the spawn guard. Callers hold o.mu, which is
// what orders workers.Add against Close's workers.Wait.
func (o *Optimistic[K, V]) kick() {
	if o.flusher.CompareAndSwap(false, true) {
		o.workers.Add(1)
		go o.flushWorker()
	}
}

// flushWorker drains the frozen-delta slot: it merges off-thread with no
// lock held, then briefly takes the writer mutex to publish. The state
// may have moved while it merged (writers appended to the active delta,
// or a SyncFlush / backpressure fold consumed the frozen delta); the
// frozen-identity check below keeps only merges that are still current —
// a same frozen pointer implies a same base tree, because every path
// that replaces the tree also clears the frozen slot.
func (o *Optimistic[K, V]) flushWorker() {
	defer o.workers.Done()
	for {
		st := o.state.Load()
		if st.frozen == nil {
			o.flusher.Store(false)
			// A freeze published between the load above and the store may
			// have seen this worker as live and skipped its kick; re-check
			// and re-claim the worker slot if so.
			if o.state.Load().frozen != nil && o.flusher.CompareAndSwap(false, true) {
				continue
			}
			return
		}
		merged := st.tree.MergeCOW(st.frozen.ops())
		o.mu.Lock()
		if cur := o.state.Load(); cur.frozen == st.frozen {
			o.publish(&ostate[K, V]{tree: merged, delta: cur.delta, size: cur.size})
		}
		o.mu.Unlock()
	}
}

// fold returns the state's base tree with both pending deltas physically
// merged in, frozen layer first — the same layering reads apply.
func (st *ostate[K, V]) fold() *Tree[K, V] {
	var frozen, active []core.MergeOp[K, V]
	if st.frozen != nil {
		frozen = st.frozen.ops()
	}
	if st.delta != nil {
		active = st.delta.ops()
	}
	return st.tree.MergeCOW2(frozen, active)
}

// ops converts the delta into MergeCOW's sorted op-list form.
func (d *odelta[K, V]) ops() []core.MergeOp[K, V] {
	ops := make([]core.MergeOp[K, V], len(d.keys))
	for i, k := range d.keys {
		ops[i] = core.MergeOp[K, V]{Key: k, Adds: d.adds[i], Dels: d.dels[i]}
	}
	return ops
}

// lookup resolves a point read against this state.
func (st *ostate[K, V]) lookup(k K) (V, bool) {
	ai, aok := st.delta.find(k)
	fi, fok := st.frozen.find(k)
	if !aok && !fok {
		return st.tree.Lookup(k)
	}
	return st.resolve(k, fi, fok, ai, aok)
}

// resolve returns a live value for k given both deltas' search results —
// the newest pending insert when one survives, else the first surviving
// match of the layered view. Callers pass the indices find returned so
// the binary searches are not repeated.
func (st *ostate[K, V]) resolve(k K, fi int, fok bool, ai int, aok bool) (V, bool) {
	skipA := 0
	if aok {
		if adds := st.delta.adds[ai]; len(adds) > 0 {
			return adds[len(adds)-1], true
		}
		skipA = st.delta.dels[ai]
	}
	skipF := 0
	var addsF []V
	if fok {
		skipF, addsF = st.frozen.dels[fi], st.frozen.adds[fi]
	}
	if skipA == 0 && len(addsF) > 0 {
		// No active tombstones, so the newest frozen add survives.
		return addsF[len(addsF)-1], true
	}
	// First survivor of the layered view: the base match past the frozen
	// tombstones and then the active ones (active tombstones consume base
	// survivors before frozen adds).
	target := skipF + skipA
	var val V
	found := false
	n := 0
	st.tree.Each(k, func(v V) bool {
		if n == target {
			val, found = v, true
			return false
		}
		n++
		return true
	})
	if found {
		return val, true
	}
	// Base matches exhausted at n (≤ target): the remaining active
	// tombstones fall on the frozen adds.
	surv := n - skipF
	if surv < 0 {
		surv = 0
	}
	if rem := skipA - surv; rem < len(addsF) {
		return addsF[len(addsF)-1], true
	}
	var zero V
	return zero, false
}

// eachFn yields every match of one key in scan order.
type eachFn[K Key, V any] func(k K, fn func(v V) bool)

// overlayEach layers one delta over a per-key match sequence: tombstones
// skip the head of the base sequence, pending inserts append after it.
// Applying it twice — frozen over the tree, active over that — yields the
// facade's full two-delta read protocol.
func overlayEach[K Key, V any](base eachFn[K, V], d *odelta[K, V]) eachFn[K, V] {
	if d == nil {
		return base
	}
	return func(k K, fn func(v V) bool) {
		skip := 0
		var adds []V
		if i, ok := d.find(k); ok {
			skip, adds = d.dels[i], d.adds[i]
		}
		stopped := false
		n := 0
		base(k, func(v V) bool {
			if n < skip {
				n++
				return true
			}
			if !fn(v) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
		for _, v := range adds {
			if !fn(v) {
				return
			}
		}
	}
}

// each visits every live element with key k: surviving base matches, then
// frozen pending inserts, then active pending inserts.
func (st *ostate[K, V]) each(k K, fn func(v V) bool) {
	overlayEach(overlayEach(st.tree.Each, st.frozen), st.delta)(k, fn)
}

// scanFn is an ordered range scan: it calls fn for every element with
// lo <= key <= hi in ascending key order.
type scanFn[K Key, V any] func(lo, hi K, fn func(k K, v V) bool)

// overlayScan layers one delta over an ordered range scan: per key,
// tombstones skip the head of the underlying match run and pending
// inserts are emitted after it, with delta-only keys merged in key order.
// Like overlayEach, two applications produce the two-delta protocol.
func overlayScan[K Key, V any](base scanFn[K, V], d *odelta[K, V]) scanFn[K, V] {
	if d == nil {
		return base
	}
	return func(lo, hi K, fn func(k K, v V) bool) {
		di := lowerBound(d.keys, lo)
		// emitDeltaTo flushes pending inserts for delta keys up to bound
		// (exclusive, or inclusive when incl), reporting false on early stop.
		emitDeltaTo := func(bound K, incl bool) bool {
			for di < len(d.keys) {
				dk := d.keys[di]
				if dk > hi || dk > bound || (dk == bound && !incl) {
					return true
				}
				for _, v := range d.adds[di] {
					if !fn(dk, v) {
						return false
					}
				}
				di++
			}
			return true
		}
		stopped := false
		var cur K
		haveCur := false
		skip, seen := 0, 0
		base(lo, hi, func(k K, v V) bool {
			if !haveCur || k != cur {
				if !emitDeltaTo(k, false) {
					stopped = true
					return false
				}
				haveCur, cur, seen, skip = true, k, 0, 0
				if di < len(d.keys) && d.keys[di] == k {
					skip = d.dels[di]
				}
			}
			if seen < skip {
				seen++
				return true
			}
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
		emitDeltaTo(hi, true)
	}
}

// ascendRange merges the base-tree scan with both pending deltas in key
// order: per key, surviving base matches first, then frozen pending
// inserts, then active pending inserts, each in insertion order.
func (st *ostate[K, V]) ascendRange(lo, hi K, fn func(k K, v V) bool) {
	overlayScan(overlayScan(st.tree.AscendRange, st.frozen), st.delta)(lo, hi, fn)
}

// find returns the index of k in the delta, nil-safe.
func (d *odelta[K, V]) find(k K) (int, bool) {
	if d == nil {
		return 0, false
	}
	i := lowerBound(d.keys, k)
	return i, i < len(d.keys) && d.keys[i] == k
}

// withInsert returns a copy of the delta (nil-safe) with v pending under
// k. Shared inner slices are never mutated: the touched entry is rebuilt.
func (d *odelta[K, V]) withInsert(k K, v V) *odelta[K, V] {
	i, found := d.find(k)
	nd := d.clone(i, !found)
	entry := make([]V, len(nd.adds[i])+1)
	copy(entry, nd.adds[i])
	entry[len(entry)-1] = v
	nd.keys[i] = k
	nd.adds[i] = entry
	nd.addN++
	return nd
}

// withDelete returns a copy of the state's active delta with one element
// of key k removed, or ok=false when no live element with key k exists. A
// pending insert in the active delta is consumed first; otherwise one
// more match of the layered view (base tree, then frozen adds) is
// tombstoned.
func (st *ostate[K, V]) withDelete(k K) (*odelta[K, V], bool) {
	d := st.delta
	i, found := d.find(k)
	if found && len(d.adds[i]) > 0 {
		if len(d.adds[i]) == 1 && d.dels[i] == 0 {
			return d.without(i), true
		}
		nd := d.clone(i, false)
		nd.adds[i] = append([]V(nil), nd.adds[i][:len(nd.adds[i])-1]...)
		nd.addN--
		return nd, true
	}
	skip := 0
	if found {
		skip = d.dels[i]
	}
	// The new tombstone needs a live match in the layered view under the
	// active delta: surviving base matches past the frozen tombstones,
	// then frozen pending adds. Frozen adds are immutable (a background
	// merge may be reading them), so even when the victim is a frozen add
	// the delete is recorded as one more active tombstone — the "first N
	// in scan order" accounting reaches through the frozen layer.
	skipF, addsF := 0, 0
	if fi, fok := st.frozen.find(k); fok {
		skipF, addsF = st.frozen.dels[fi], len(st.frozen.adds[fi])
	}
	if addsF <= skip {
		// Not enough frozen adds to cover the pending tombstones: at
		// least skipF + (skip - addsF) + 1 base matches must exist.
		need := skipF + (skip - addsF) + 1
		n := 0
		st.tree.Each(k, func(V) bool {
			n++
			return n < need
		})
		if n < need {
			return nil, false
		}
	}
	nd := d.clone(i, !found)
	nd.keys[i] = k
	nd.dels[i]++
	nd.delN++
	return nd, true
}

// clone copies the delta's spine (nil-safe). When insert is set, a zero
// entry is opened at index i; the caller fills it in.
func (d *odelta[K, V]) clone(i int, insert bool) *odelta[K, V] {
	n := 0
	if d != nil {
		n = len(d.keys)
	}
	grow := 0
	if insert {
		grow = 1
	}
	nd := &odelta[K, V]{
		keys: make([]K, n+grow),
		adds: make([][]V, n+grow),
		dels: make([]int, n+grow),
	}
	if d != nil {
		nd.addN, nd.delN = d.addN, d.delN
		copy(nd.keys[:i], d.keys[:i])
		copy(nd.adds[:i], d.adds[:i])
		copy(nd.dels[:i], d.dels[:i])
		copy(nd.keys[i+grow:], d.keys[i:])
		copy(nd.adds[i+grow:], d.adds[i:])
		copy(nd.dels[i+grow:], d.dels[i:])
	}
	return nd
}

// without returns a copy of the delta with entry i dropped (nil when that
// was the last entry).
func (d *odelta[K, V]) without(i int) *odelta[K, V] {
	if len(d.keys) == 1 {
		return nil
	}
	nd := &odelta[K, V]{
		keys: make([]K, len(d.keys)-1),
		adds: make([][]V, len(d.adds)-1),
		dels: make([]int, len(d.dels)-1),
		addN: d.addN - len(d.adds[i]),
		delN: d.delN - d.dels[i],
	}
	copy(nd.keys, d.keys[:i])
	copy(nd.adds, d.adds[:i])
	copy(nd.dels, d.dels[:i])
	copy(nd.keys[i:], d.keys[i+1:])
	copy(nd.adds[i:], d.adds[i+1:])
	copy(nd.dels[i:], d.dels[i+1:])
	return nd
}

// lowerBound returns the index of the first key >= k in a sorted slice.
func lowerBound[K Key](keys []K, k K) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
