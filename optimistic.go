package fitingtree

import (
	"sync"
	"sync/atomic"

	"fitingtree/internal/core"
)

// DefaultFlushEvery is the number of pending writes that triggers an
// Optimistic facade's delta flush (merge into a freshly built tree).
const DefaultFlushEvery = 1024

// Optimistic is a concurrency facade over a Tree with latch-free reads
// under a single-writer model, the regime the FB+-tree line of work calls
// optimistic lock coupling: Lookup, Contains, Each, AscendRange and
// LookupBatch take no lock and never block or retry-loop, so aggregate
// read throughput scales with reader goroutines instead of serializing on
// a lock word the way the RWMutex-based Concurrent facade does.
//
// Writers (Insert, Delete) are serialized by an internal mutex and publish
// every change as a new immutable state: the bulk-loaded base tree plus a
// small sorted delta of pending inserts and deletions. A seqlock-style
// version stamp is bumped to odd before and even after each publication;
// point reads validate it afterwards and re-read once if a publication
// raced them. Unlike a C-style seqlock, correctness never depends on that
// validation — readers can only ever observe fully published immutable
// states (Go's atomics give the needed happens-before edge), so the stamp
// buys freshness, not safety, and torn reads are impossible. Old states
// are reclaimed by the garbage collector once the last reader drops them,
// which is what makes the scheme safe without epoch bookkeeping.
//
// Once the delta reaches the flush threshold (SetFlushEvery), the writer
// folds it into the base tree with a page-granular copy-on-write merge
// (Tree.MergeCOW): only the pages the delta's keys fall into are rebuilt,
// and the published tree shares every untouched page with its predecessor,
// so flush cost scales with the delta size, not the tree size. Readers
// holding the old state keep a complete, consistent tree; the shared pages
// are immutable and the unshared ones are reclaimed by the garbage
// collector with the old state.
//
// Scans and batch lookups run against one consistent snapshot: writes
// published during a scan are not observed by it.
type Optimistic[K Key, V any] struct {
	mu      sync.Mutex // serializes writers
	version atomic.Uint64
	state   atomic.Pointer[ostate[K, V]]
	flushAt atomic.Int64
}

// ostate is one immutable published state. Neither the tree nor the delta
// is ever mutated after publication.
type ostate[K Key, V any] struct {
	tree  *Tree[K, V]
	delta *odelta[K, V] // nil when no writes are pending
	size  int           // live elements: tree minus deletions plus inserts
}

// odelta is an immutable sorted set of pending per-key write operations.
// dels[i] counts deletions applied to the base tree's matches for keys[i]:
// the first dels[i] matches in Each order are treated as removed. adds[i]
// holds pending inserts for keys[i] in insertion order.
type odelta[K Key, V any] struct {
	keys []K
	adds [][]V
	dels []int
	addN int // total pending inserts
	delN int // total pending deletions
}

// NewOptimistic wraps an existing tree. The tree must not be used directly
// afterwards: the facade owns it and replaces it wholesale on flush.
func NewOptimistic[K Key, V any](t *Tree[K, V]) *Optimistic[K, V] {
	o := &Optimistic[K, V]{}
	o.flushAt.Store(DefaultFlushEvery)
	o.state.Store(&ostate[K, V]{tree: t, size: t.Len()})
	return o
}

// SetFlushEvery sets the number of pending writes that triggers a delta
// flush. The threshold is an atomic, so it is safe to change at any time,
// including while readers and writers are active; the new value applies
// from the next write.
func (o *Optimistic[K, V]) SetFlushEvery(n int) {
	if n < 1 {
		n = 1
	}
	o.flushAt.Store(int64(n))
}

// Version returns the current write stamp. It is even when no publication
// is in flight and increases by two per published write.
func (o *Optimistic[K, V]) Version() uint64 { return o.version.Load() }

// Lookup returns a value stored under k. When k has duplicates, an
// arbitrary match is returned; use Each for all of them.
func (o *Optimistic[K, V]) Lookup(k K) (V, bool) {
	v1 := o.version.Load()
	st := o.state.Load()
	// The no-delta branch stays inline: st.lookup is too large to inline
	// and the extra call costs measurable latency on the hottest path.
	var val V
	var ok bool
	if st.delta == nil {
		val, ok = st.tree.Lookup(k)
	} else {
		val, ok = st.lookup(k)
	}
	if o.version.Load() != v1 {
		// A publication raced this read. The result above is still a
		// consistent snapshot read; re-reading once returns the freshest
		// published state instead.
		val, ok = o.state.Load().lookup(k)
	}
	return val, ok
}

// Contains reports whether k is present.
func (o *Optimistic[K, V]) Contains(k K) bool {
	_, ok := o.Lookup(k)
	return ok
}

// Each calls fn for every element with key exactly k against one
// consistent snapshot: base-tree matches first (in page order), then
// pending inserts in insertion order. Writes published while the scan runs
// are not observed by it.
func (o *Optimistic[K, V]) Each(k K, fn func(v V) bool) {
	o.state.Load().each(k, fn)
}

// AscendRange calls fn for elements with lo <= key <= hi in ascending key
// order against one consistent snapshot.
func (o *Optimistic[K, V]) AscendRange(lo, hi K, fn func(k K, v V) bool) {
	if hi < lo {
		return
	}
	o.state.Load().ascendRange(lo, hi, fn)
}

// LookupBatch looks up every element of keys against one consistent
// snapshot, returning values and found flags parallel to keys. The probe
// set is processed in sorted order to amortize router descents (see
// Tree.LookupBatch).
func (o *Optimistic[K, V]) LookupBatch(keys []K) ([]V, []bool) {
	st := o.state.Load()
	vals, found := st.tree.LookupBatch(keys)
	if d := st.delta; d != nil {
		for i, k := range keys {
			j, ok := d.find(k)
			if !ok {
				continue
			}
			if n := len(d.adds[j]); n > 0 {
				vals[i], found[i] = d.adds[j][n-1], true
			} else if found[i] {
				// Only deletions are pending for k: the survivors are the
				// base matches past the first dels[j] in Each order.
				// Resolve them from the delta index already in hand
				// instead of re-running a full point lookup (st.lookup
				// would redo the delta search before its page walk).
				skip := d.dels[j]
				var val V
				ok := false
				seen := 0
				st.tree.Each(k, func(v V) bool {
					if seen == skip {
						val, ok = v, true
						return false
					}
					seen++
					return true
				})
				vals[i], found[i] = val, ok
			}
		}
	}
	return vals, found
}

// Len returns the number of stored elements, including pending inserts.
func (o *Optimistic[K, V]) Len() int { return o.state.Load().size }

// Stats returns the base tree's statistics with Elements and Buffered
// adjusted for pending delta writes.
func (o *Optimistic[K, V]) Stats() Stats {
	st := o.state.Load()
	s := st.tree.Stats()
	s.Elements = st.size
	if st.delta != nil {
		s.Buffered += st.delta.addN
	}
	return s
}

// Insert adds (k, v).
func (o *Optimistic[K, V]) Insert(k K, v V) {
	if k != k {
		panic("fitingtree: Insert with NaN key")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	st := o.state.Load()
	o.publish(o.maybeFlush(&ostate[K, V]{
		tree:  st.tree,
		delta: st.delta.withInsert(k, v),
		size:  st.size + 1,
	}))
}

// Delete removes one element with key k and reports whether one was found.
//
// Duplicate semantics: a pending (not yet flushed) insert of k is consumed
// first, newest first. Otherwise the delta records one more tombstone for
// k, and tombstones count matches in scan order — the first N matches that
// Each(k, ...) would visit (page order along the chain, page data before
// buffered inserts within a page) are treated as removed. Flushing
// preserves exactly this accounting, so which of several duplicates
// disappears is deterministic given the scan order, unlike Tree.Delete,
// which removes whichever duplicate its page search finds first.
func (o *Optimistic[K, V]) Delete(k K) bool {
	// Same guard as Insert: a NaN key compares false against everything,
	// so it would corrupt the sorted-delta invariant silently.
	if k != k {
		panic("fitingtree: Delete with NaN key")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	st := o.state.Load()
	nd, ok := st.withDelete(k)
	if !ok {
		return false
	}
	o.publish(o.maybeFlush(&ostate[K, V]{tree: st.tree, delta: nd, size: st.size - 1}))
	return true
}

// publish installs next as the current state, bumping the version stamp to
// odd for the duration of the store. Callers hold o.mu.
func (o *Optimistic[K, V]) publish(next *ostate[K, V]) {
	o.version.Add(1)
	o.state.Store(next)
	o.version.Add(1)
}

// maybeFlush folds the delta into the base tree once enough writes are
// pending, using the page-granular copy-on-write merge: the delta becomes
// a sorted op list (it already is one — keys ascending, adds in insertion
// order, tombstone counts), and MergeCOW rebuilds only the pages those
// keys fall into while the new state shares every other page with the old
// one. Cost is O(delta · pages touched), not O(n). Callers hold o.mu.
func (o *Optimistic[K, V]) maybeFlush(st *ostate[K, V]) *ostate[K, V] {
	d := st.delta
	if d == nil || int64(d.addN+d.delN) < o.flushAt.Load() {
		return st
	}
	ops := make([]core.MergeOp[K, V], len(d.keys))
	for i, k := range d.keys {
		ops[i] = core.MergeOp[K, V]{Key: k, Adds: d.adds[i], Dels: d.dels[i]}
	}
	return &ostate[K, V]{tree: st.tree.MergeCOW(ops), size: st.size}
}

// lookup resolves a point read against this state.
func (st *ostate[K, V]) lookup(k K) (V, bool) {
	d := st.delta
	if d == nil {
		return st.tree.Lookup(k)
	}
	i, ok := d.find(k)
	if !ok {
		return st.tree.Lookup(k)
	}
	if n := len(d.adds[i]); n > 0 {
		return d.adds[i][n-1], true
	}
	// Only deletions are pending for k: the survivors are the base
	// matches past the first dels[i] in Each order.
	skip := d.dels[i]
	var val V
	found := false
	n := 0
	st.tree.Each(k, func(v V) bool {
		if n == skip {
			val, found = v, true
			return false
		}
		n++
		return true
	})
	return val, found
}

// each visits every live element with key k: surviving base matches, then
// pending inserts.
func (st *ostate[K, V]) each(k K, fn func(v V) bool) {
	skip := 0
	var adds []V
	if d := st.delta; d != nil {
		if i, ok := d.find(k); ok {
			skip, adds = d.dels[i], d.adds[i]
		}
	}
	stopped := false
	n := 0
	st.tree.Each(k, func(v V) bool {
		if n < skip {
			n++
			return true
		}
		if !fn(v) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for _, v := range adds {
		if !fn(v) {
			return
		}
	}
}

// ascendRange merges the base-tree scan with the pending delta in key
// order: per key, surviving base matches first, then pending inserts in
// insertion order.
func (st *ostate[K, V]) ascendRange(lo, hi K, fn func(k K, v V) bool) {
	d := st.delta
	if d == nil {
		st.tree.AscendRange(lo, hi, fn)
		return
	}
	di := lowerBound(d.keys, lo)
	// emitDeltaTo flushes pending inserts for delta keys up to bound
	// (exclusive, or inclusive when incl), reporting false on early stop.
	emitDeltaTo := func(bound K, incl bool) bool {
		for di < len(d.keys) {
			dk := d.keys[di]
			if dk > hi || dk > bound || (dk == bound && !incl) {
				return true
			}
			for _, v := range d.adds[di] {
				if !fn(dk, v) {
					return false
				}
			}
			di++
		}
		return true
	}
	stopped := false
	var cur K
	haveCur := false
	skip, seen := 0, 0
	st.tree.AscendRange(lo, hi, func(k K, v V) bool {
		if !haveCur || k != cur {
			if !emitDeltaTo(k, false) {
				stopped = true
				return false
			}
			haveCur, cur, seen, skip = true, k, 0, 0
			if di < len(d.keys) && d.keys[di] == k {
				skip = d.dels[di]
			}
		}
		if seen < skip {
			seen++
			return true
		}
		if !fn(k, v) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	emitDeltaTo(hi, true)
}

// find returns the index of k in the delta, nil-safe.
func (d *odelta[K, V]) find(k K) (int, bool) {
	if d == nil {
		return 0, false
	}
	i := lowerBound(d.keys, k)
	return i, i < len(d.keys) && d.keys[i] == k
}

// withInsert returns a copy of the delta (nil-safe) with v pending under
// k. Shared inner slices are never mutated: the touched entry is rebuilt.
func (d *odelta[K, V]) withInsert(k K, v V) *odelta[K, V] {
	i, found := d.find(k)
	nd := d.clone(i, !found)
	entry := make([]V, len(nd.adds[i])+1)
	copy(entry, nd.adds[i])
	entry[len(entry)-1] = v
	nd.keys[i] = k
	nd.adds[i] = entry
	nd.addN++
	return nd
}

// withDelete returns a copy of the state's delta with one element of key k
// removed, or ok=false when no live element with key k exists. A pending
// insert is consumed first; otherwise one more base match is tombstoned.
func (st *ostate[K, V]) withDelete(k K) (*odelta[K, V], bool) {
	d := st.delta
	i, found := d.find(k)
	if found && len(d.adds[i]) > 0 {
		if len(d.adds[i]) == 1 && d.dels[i] == 0 {
			return d.without(i), true
		}
		nd := d.clone(i, false)
		nd.adds[i] = append([]V(nil), nd.adds[i][:len(nd.adds[i])-1]...)
		nd.addN--
		return nd, true
	}
	skip := 0
	if found {
		skip = d.dels[i]
	}
	// At least skip+1 base matches must exist for a survivor to remain.
	n := 0
	st.tree.Each(k, func(V) bool {
		n++
		return n <= skip
	})
	if n <= skip {
		return nil, false
	}
	nd := d.clone(i, !found)
	nd.keys[i] = k
	nd.dels[i]++
	nd.delN++
	return nd, true
}

// clone copies the delta's spine (nil-safe). When insert is set, a zero
// entry is opened at index i; the caller fills it in.
func (d *odelta[K, V]) clone(i int, insert bool) *odelta[K, V] {
	n := 0
	if d != nil {
		n = len(d.keys)
	}
	grow := 0
	if insert {
		grow = 1
	}
	nd := &odelta[K, V]{
		keys: make([]K, n+grow),
		adds: make([][]V, n+grow),
		dels: make([]int, n+grow),
	}
	if d != nil {
		nd.addN, nd.delN = d.addN, d.delN
		copy(nd.keys[:i], d.keys[:i])
		copy(nd.adds[:i], d.adds[:i])
		copy(nd.dels[:i], d.dels[:i])
		copy(nd.keys[i+grow:], d.keys[i:])
		copy(nd.adds[i+grow:], d.adds[i:])
		copy(nd.dels[i+grow:], d.dels[i:])
	}
	return nd
}

// without returns a copy of the delta with entry i dropped (nil when that
// was the last entry).
func (d *odelta[K, V]) without(i int) *odelta[K, V] {
	if len(d.keys) == 1 {
		return nil
	}
	nd := &odelta[K, V]{
		keys: make([]K, len(d.keys)-1),
		adds: make([][]V, len(d.adds)-1),
		dels: make([]int, len(d.dels)-1),
		addN: d.addN - len(d.adds[i]),
		delN: d.delN - d.dels[i],
	}
	copy(nd.keys, d.keys[:i])
	copy(nd.adds, d.adds[:i])
	copy(nd.dels, d.dels[:i])
	copy(nd.keys[i:], d.keys[i+1:])
	copy(nd.adds[i:], d.adds[i+1:])
	copy(nd.dels[i:], d.dels[i+1:])
	return nd
}

// lowerBound returns the index of the first key >= k in a sorted slice.
func lowerBound[K Key](keys []K, k K) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
