package fitingtree

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"fitingtree/internal/pager"
	"fitingtree/internal/wal"
)

// --- model ---------------------------------------------------------------

// dmodel is the reference state: a sorted multiset of (key, value) pairs.
// The crash tests give duplicate keys identical values, so set equality is
// well-defined regardless of which duplicate a delete removes.
type dmodel struct {
	pairs [][2]int
}

func (m *dmodel) insert(k, v int) {
	m.pairs = append(m.pairs, [2]int{k, v})
	sort.Slice(m.pairs, func(a, b int) bool {
		if m.pairs[a][0] != m.pairs[b][0] {
			return m.pairs[a][0] < m.pairs[b][0]
		}
		return m.pairs[a][1] < m.pairs[b][1]
	})
}

func (m *dmodel) delete(k int) {
	for i, p := range m.pairs {
		if p[0] == k {
			m.pairs = append(m.pairs[:i:i], m.pairs[i+1:]...)
			return
		}
	}
}

func (m *dmodel) clone() *dmodel {
	return &dmodel{pairs: append([][2]int(nil), m.pairs...)}
}

// dump extracts a Durable's full content in the model's normalized form.
func dump(d *Durable[int, int]) [][2]int {
	var pairs [][2]int
	d.AscendRange(-1<<62, 1<<62, func(k, v int) bool {
		pairs = append(pairs, [2]int{k, v})
		return true
	})
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	return pairs
}

func pairsEqual(a, b [][2]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- scenario ------------------------------------------------------------

// dOp is one scripted operation of the crash scenario.
type dOp struct {
	del bool
	k   int
	v   int
}

// crashScript is a fixed op sequence with duplicates (same value per key)
// and deletes, with checkpoints interleaved at the marked indices.
func crashScript() ([]dOp, map[int]bool) {
	var ops []dOp
	for i := 0; i < 30; i++ {
		ops = append(ops, dOp{k: i * 2, v: i * 10})
		if i%5 == 0 {
			ops = append(ops, dOp{k: i * 2, v: i * 10}) // duplicate, same value
		}
	}
	for i := 0; i < 8; i++ {
		ops = append(ops, dOp{del: true, k: i * 4})
	}
	ckptAt := map[int]bool{12: true, 30: true}
	return ops, ckptAt
}

// runScript drives a Durable through the script, stopping at the first
// error (an injected fault kills everything after it anyway). It returns
// the number of ops acknowledged (nil error with sync-every-1) and the
// model state after every prefix.
func runScript(d *Durable[int, int], ops []dOp, ckptAt map[int]bool) (acked int, states []*dmodel) {
	m := &dmodel{}
	states = append(states, m.clone()) // state after 0 ops
	for i, op := range ops {
		if ckptAt[i] {
			d.Checkpoint() // failure is fine; the WAL still covers everything
		}
		var err error
		if op.del {
			_, err = d.Delete(op.k)
		} else {
			err = d.Insert(op.k, op.v)
		}
		if op.del {
			m.delete(op.k)
		} else {
			m.insert(op.k, op.v)
		}
		states = append(states, m.clone())
		if err != nil {
			return acked, states[:i+2]
		}
		acked = i + 1
	}
	return acked, states
}

// verifyRecovery reopens the (injector-free) store and asserts the
// recovered state equals the model after some prefix of at least the
// acknowledged ops.
func verifyRecovery(t *testing.T, label string, fsys wal.FS, dev pager.Device, acked int, states []*dmodel) {
	t.Helper()
	rec, err := OpenDurable[int, int](fsys, dev, Options{})
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	rec.SetAutoCheckpoint(false)
	// Structural check first: every recovered page must respect its own
	// recorded error bound (werr), so a checkpoint written under a tuned
	// per-region plan survives any fault trip with its layout intact.
	if err := rec.opt.state.Load().tree.CheckInvariants(); err != nil {
		t.Fatalf("%s: recovered invariants: %v", label, err)
	}
	got := dump(rec)
	for m := len(states) - 1; m >= 0; m-- {
		if pairsEqual(got, states[m].pairs) {
			if m < acked {
				t.Fatalf("%s: recovered only %d ops but %d were acknowledged", label, m, acked)
			}
			return
		}
	}
	t.Fatalf("%s: recovered state (%d pairs) matches no op prefix (acked %d)", label, len(got), acked)
}

// --- crash matrix --------------------------------------------------------

// TestCrashMatrixWAL kills the WAL file system at every mutating
// operation of the scripted scenario — mid-append (torn final record),
// mid-sync, mid-truncate — then crashes away unsynced bytes and asserts
// prefix-consistent recovery with no acknowledged write lost.
func TestCrashMatrixWAL(t *testing.T) {
	ops, ckptAt := crashScript()

	// Probe: count fault-site operations in a healthy run.
	probeMem := wal.NewMemFS()
	probeFS := wal.NewFaultFS(probeMem)
	d, err := OpenDurable[int, int](probeFS, pager.NewDisk(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.SetAutoCheckpoint(false)
	d.SetAsyncFlush(false)
	d.SetFlushEvery(8)
	if acked, _ := runScript(d, ops, ckptAt); acked != len(ops) {
		t.Fatalf("probe run acknowledged %d/%d ops", acked, len(ops))
	}
	sites := probeFS.Ops()
	if sites < 2*len(ops) {
		t.Fatalf("probe counted only %d WAL fault sites", sites)
	}

	for trip := 0; trip < sites; trip++ {
		trip := trip
		t.Run(fmt.Sprintf("trip=%d", trip), func(t *testing.T) {
			mem := wal.NewMemFS()
			faulty := wal.NewFaultFS(mem)
			d, err := OpenDurable[int, int](faulty, pager.NewDisk(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			d.SetAutoCheckpoint(false)
			d.SetAsyncFlush(false)
			d.SetFlushEvery(8)
			faulty.SetTrip(trip)
			acked, states := runScript(d, ops, ckptAt)
			mem.Crash() // lose every byte not covered by a sync
			// Recover against the raw stores: a second fresh device means
			// checkpoints are discarded too, so recovery must come from the
			// WAL alone only if the run never checkpointed — use the same
			// device, whose committed checkpoints survive.
			verifyRecovery(t, "wal crash", mem, devOf(d), acked, states)
		})
	}
}

// devOf unwraps the pager device a Durable was opened over.
func devOf(d *Durable[int, int]) pager.Device { return d.store.Device() }

// TestCrashMatrixCheckpoint kills the checkpoint device at every page
// write and sync — mid-blob, mid-manifest, mid-superblock — and asserts
// the previous checkpoint plus the intact WAL still recover every
// acknowledged write.
func TestCrashMatrixCheckpoint(t *testing.T) {
	ops, ckptAt := crashScript()

	probeDev := pager.NewFaultDevice(pager.NewDisk())
	d, err := OpenDurable[int, int](wal.NewMemFS(), probeDev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.SetAutoCheckpoint(false)
	d.SetAsyncFlush(false)
	d.SetFlushEvery(8)
	if acked, _ := runScript(d, ops, ckptAt); acked != len(ops) {
		t.Fatalf("probe run acknowledged %d/%d ops", acked, len(ops))
	}
	sites := probeDev.Ops()
	if sites == 0 {
		t.Fatal("probe counted no device fault sites")
	}

	for trip := 0; trip < sites; trip++ {
		trip := trip
		t.Run(fmt.Sprintf("trip=%d", trip), func(t *testing.T) {
			mem := wal.NewMemFS()
			inner := pager.NewDisk()
			faulty := pager.NewFaultDevice(inner)
			d, err := OpenDurable[int, int](mem, faulty, Options{})
			if err != nil {
				t.Fatal(err)
			}
			d.SetAutoCheckpoint(false)
			d.SetAsyncFlush(false)
			d.SetFlushEvery(8)
			faulty.SetTrip(trip)
			acked, states := runScript(d, ops, ckptAt)
			mem.Crash()
			// Recovery reads the raw device: whatever the torn checkpoint
			// left behind must be ignored in favor of the last committed
			// superblock (or a WAL-only rebuild when none committed).
			verifyRecovery(t, "ckpt crash", mem, inner, acked, states)
		})
	}
}

// TestRecoveryRejectsCorruptedBlobs flips one byte in a committed
// checkpoint blob and asserts recovery reports an error instead of
// loading garbage.
func TestRecoveryRejectsCorruptedBlobs(t *testing.T) {
	mem := wal.NewMemFS()
	dev := pager.NewDisk()
	d, err := OpenDurable[int, int](mem, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.SetAutoCheckpoint(false)
	for i := 0; i < 200; i++ {
		if err := d.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	sup, ok, err := pager.ReadSuper(dev)
	if err != nil || !ok {
		t.Fatalf("no superblock after checkpoint: %v", err)
	}
	// Corrupt one byte of the manifest chain's first page payload.
	buf := make([]byte, pager.PageSize)
	if err := dev.Read(sup.Manifest, buf); err != nil {
		t.Fatal(err)
	}
	buf[pager.PageSize/2] ^= 0xFF
	if err := dev.Write(sup.Manifest, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable[int, int](mem, dev, Options{}); err == nil {
		t.Fatal("recovery loaded a corrupted checkpoint without error")
	}
}

// TestIncrementalCheckpointIsODirty checks the headline property: a
// checkpoint after a small batch of writes re-serializes only the chunks
// that batch dirtied, not the whole tree.
func TestIncrementalCheckpointIsODirty(t *testing.T) {
	mem := wal.NewMemFS()
	dev := pager.NewDisk()
	keys := make([]int, 200_000)
	vals := make([]int, len(keys))
	seed := uint64(7)
	k := 0
	for i := range keys {
		seed = seed*6364136223846793005 + 1442695040888963407
		if i%37 == 0 {
			k += 1 + int((seed>>33)%100000)
		} else {
			k += int(seed % 3)
		}
		keys[i], vals[i] = k, i
	}
	tree, err := BulkLoad(keys, vals, Options{Error: 32})
	if err != nil {
		t.Fatal(err)
	}
	d, err := CreateDurable(mem, dev, tree)
	if err != nil {
		t.Fatal(err)
	}
	d.SetAutoCheckpoint(false)
	d.SetAsyncFlush(false)

	// A tight batch of writes dirties a handful of chunks.
	for i := 0; i < 50; i++ {
		if err := d.Insert(keys[1000]+i, -i); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := d.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	total := stats.ChunksWritten + stats.ChunksReused
	if total < 10 {
		t.Fatalf("tree too small for the test: %d chunks", total)
	}
	if stats.ChunksWritten*4 > total {
		t.Fatalf("checkpoint wrote %d of %d chunks for a 50-key batch — not incremental", stats.ChunksWritten, total)
	}
	if stats.ChunksReused == 0 {
		t.Fatal("checkpoint reused no chunks")
	}
	// And the WAL prefix is gone.
	if n := d.WALRecords(); n != 0 {
		t.Fatalf("WAL holds %d records after checkpoint", n)
	}
}

// TestDurableGroupCommit checks SetSyncEvery batching: unacked writes die
// in a crash, writes covered by the explicit Sync barrier survive.
func TestDurableGroupCommit(t *testing.T) {
	mem := wal.NewMemFS()
	dev := pager.NewDisk()
	d, err := OpenDurable[int, int](mem, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.SetAutoCheckpoint(false)
	d.SetSyncEvery(64)
	for i := 0; i < 10; i++ {
		if err := d.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		if err := d.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	mem.Crash()
	rec, err := OpenDurable[int, int](mem, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec.SetAutoCheckpoint(false)
	if rec.Len() != 10 {
		t.Fatalf("recovered %d elements, want the 10 synced ones", rec.Len())
	}
	for i := 0; i < 10; i++ {
		if _, ok := rec.Lookup(i); !ok {
			t.Fatalf("synced key %d lost", i)
		}
	}
}

// TestDurableStringValues exercises the codec's string fast path and the
// gob fallback (struct values) end to end.
func TestDurableStringValues(t *testing.T) {
	mem := wal.NewMemFS()
	dev := pager.NewDisk()
	d, err := OpenDurable[uint32, string](mem, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.SetAutoCheckpoint(false)
	for i := uint32(0); i < 100; i++ {
		if err := d.Insert(i, fmt.Sprintf("value-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := uint32(100); i < 150; i++ {
		if err := d.Insert(i, fmt.Sprintf("value-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := OpenDurable[uint32, string](mem, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec.SetAutoCheckpoint(false)
	for i := uint32(0); i < 150; i++ {
		if v, ok := rec.Lookup(i); !ok || v != fmt.Sprintf("value-%d", i) {
			t.Fatalf("key %d: %q %v", i, v, ok)
		}
	}

	type rec2 struct{ A, B int }
	mem2 := wal.NewMemFS()
	d2, err := OpenDurable[int, rec2](mem2, pager.NewDisk(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d2.SetAutoCheckpoint(false)
	if err := d2.Insert(1, rec2{A: 7, B: 9}); err != nil {
		t.Fatal(err)
	}
	mem3 := wal.NewMemFS()
	for _, name := range mem2.Names() {
		mem3.SetBytes(name, mem2.Bytes(name))
	}
	r2, err := OpenDurable[int, rec2](mem3, pager.NewDisk(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2.SetAutoCheckpoint(false)
	if v, ok := r2.Lookup(1); !ok || v != (rec2{A: 7, B: 9}) {
		t.Fatalf("gob value round trip: %+v %v", v, ok)
	}
}

// TestDurableConcurrentStress runs writers, readers, and the background
// checkpointer together (the -race target), then verifies a final
// recovery sees every write.
func TestDurableConcurrentStress(t *testing.T) {
	mem := wal.NewMemFS()
	dev := pager.NewDisk()
	d, err := OpenDurable[int, int](mem, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.SetFlushEvery(256)
	const n = 4000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				d.Lookup(n / 2)
				d.AscendRange(0, n, func(int, int) bool { return true })
			}
		}()
	}
	for i := 0; i < n; i++ {
		if err := d.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := OpenDurable[int, int](mem, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec.SetAutoCheckpoint(false)
	if rec.Len() != n {
		t.Fatalf("recovered %d elements, want %d", rec.Len(), n)
	}
	for i := 0; i < n; i += 97 {
		if v, ok := rec.Lookup(i); !ok || v != i {
			t.Fatalf("key %d: %v %v", i, v, ok)
		}
	}
	// Close ran a final checkpoint, so recovery should have replayed an
	// empty (or truncated) tail.
	if n := rec.WALRecords(); n != 0 {
		t.Fatalf("WAL holds %d records after Close", n)
	}
}

// TestCreateDurableSkipsWAL checks bulk import: CreateDurable writes a
// checkpoint directly and leaves the WAL empty.
func TestCreateDurableSkipsWAL(t *testing.T) {
	mem := wal.NewMemFS()
	dev := pager.NewDisk()
	keys := []int{1, 5, 9, 12, 40}
	vals := []int{10, 50, 90, 120, 400}
	tree, err := BulkLoad(keys, vals, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := CreateDurable(mem, dev, tree)
	if err != nil {
		t.Fatal(err)
	}
	if n := d.WALRecords(); n != 0 {
		t.Fatalf("bulk import appended %d WAL records", n)
	}
	if err := d.Insert(6, 60); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := OpenDurable[int, int](mem, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec.SetAutoCheckpoint(false)
	if rec.Len() != 6 {
		t.Fatalf("recovered %d elements, want 6", rec.Len())
	}
	if v, ok := rec.Lookup(6); !ok || v != 60 {
		t.Fatalf("post-import insert lost: %v %v", v, ok)
	}
}

// TestDurableStickyError pins the poison protocol on the single-tree
// facade: once a WAL write or sync fails, every subsequent write of every
// kind returns the same error (an acknowledged write that replay cannot
// see must never happen), Err is sticky, Close skips the checkpoint but
// stays safe, and recovery sees exactly the acknowledged prefix.
func TestDurableStickyError(t *testing.T) {
	mem := wal.NewMemFS()
	faulty := wal.NewFaultFS(mem)
	dev := pager.NewDisk()
	d, err := OpenDurable[int, int](faulty, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.SetAutoCheckpoint(false)
	d.SetAsyncFlush(false)
	for i := 0; i < 25; i++ {
		if err := d.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	// Trip the next mutating FS op: the 26th insert's append fails mid-
	// write (a torn record lands in the log).
	faulty.SetTrip(0)
	werr := d.Insert(100, 100)
	if !errors.Is(werr, wal.ErrInjected) {
		t.Fatalf("tripped insert error = %v", werr)
	}
	for i := 0; i < 5; i++ {
		if err := d.Insert(200+i, i); !errors.Is(err, werr) {
			t.Fatalf("insert %d after poison = %v, want sticky %v", i, err, werr)
		}
		if _, err := d.Delete(i); !errors.Is(err, werr) {
			t.Fatalf("delete %d after poison = %v", i, err)
		}
		if _, err := d.DeleteValue(i, i); !errors.Is(err, werr) {
			t.Fatalf("delete-value %d after poison = %v", i, err)
		}
	}
	if err := d.Err(); !errors.Is(err, werr) {
		t.Fatalf("Err() = %v, want sticky %v", err, werr)
	}
	// Reads keep serving the in-memory state.
	if v, ok := d.Lookup(10); !ok || v != 10 {
		t.Fatalf("read on poisoned facade: %v %v", v, ok)
	}
	if err := d.Close(); !errors.Is(err, werr) {
		t.Fatalf("Close() = %v, want the poison", err)
	}
	mem.Crash()
	rec, err := OpenDurable[int, int](mem, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec.SetAutoCheckpoint(false)
	if rec.Len() != 25 {
		t.Fatalf("recovered %d elements, want exactly the 25 acked", rec.Len())
	}
	for i := 0; i < 25; i++ {
		if v, ok := rec.Lookup(i); !ok || v != i {
			t.Fatalf("acked key %d lost: %v %v", i, v, ok)
		}
	}
}

// TestDurableFaultInjectionReturnsErrors sanity-checks that injected
// faults surface as errors, not panics or silent loss.
func TestDurableFaultInjectionReturnsErrors(t *testing.T) {
	mem := wal.NewMemFS()
	faulty := wal.NewFaultFS(mem)
	d, err := OpenDurable[int, int](faulty, pager.NewDisk(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.SetAutoCheckpoint(false)
	if err := d.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	faulty.SetTrip(0)
	if err := d.Insert(2, 2); !errors.Is(err, wal.ErrInjected) {
		t.Fatalf("tripped insert error = %v", err)
	}
}
