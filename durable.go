package fitingtree

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"fitingtree/internal/core"
	"fitingtree/internal/pager"
	"fitingtree/internal/wal"
)

// WALName is the write-ahead log's file name inside the durable store's
// file system.
const WALName = "wal.log"

// Durable is the crash-safe facade: an Optimistic tree whose writes are
// made durable by a write-ahead log and whose base tree is persisted by
// incremental copy-on-write checkpoints.
//
// The protocol has three moving parts:
//
//   - Every Insert/Delete first appends one checksummed record to the WAL
//     (group-committed: SetSyncEvery batches the fsync barrier), then
//     applies to the in-memory facade. A write is acknowledged — promised
//     to survive a crash — once a Sync barrier covers it.
//   - A checkpointer (background by default, triggered by the flush
//     pipeline's publications; or explicit via Checkpoint) folds the
//     current state and writes it to page storage incrementally: chunk
//     identity is preserved by the copy-on-write merges, so diffing the
//     current chunk ids against the previous checkpoint's manifest yields
//     exactly the dirty chunks, and only those are serialized — O(dirty),
//     the on-disk mirror of publication cost. The checkpoint commits with
//     one superblock write, after which the WAL is truncated up to the
//     covered LSN.
//   - OpenDurable recovers by loading the newest valid checkpoint
//     (checksummed chunk blobs, O(segments) router rebuild, no
//     re-segmentation) and replaying the WAL tail past the checkpoint's
//     replay cursor — O(checkpoint + tail), never a full bulk rebuild.
//
// Reads (Lookup, Each, AscendRange, LookupBatch) delegate to the
// Optimistic facade unchanged: latch-free, snapshot-consistent, and
// oblivious to durability. Writers are serialized by an internal mutex, as
// in Optimistic. Close checkpoints and releases the files.
type Durable[K Key, V any] struct {
	opt   *Optimistic[K, V]
	codec opCodec[K, V]
	snap  core.SnapCodec[K, V]
	opts  Options

	// mu serializes the write path: WAL append order is apply order.
	mu        sync.Mutex
	log       *wal.Log
	syncEvery int
	unsynced  int
	// failed poisons the write path: once a WAL append or sync errors, the
	// log's tail state is unknown (a torn frame may sit where the next
	// append would land, and anything written after it would be cut off by
	// recovery), so every later write fails fast with this error instead of
	// risking an acknowledged write that replay cannot see.
	failed error
	// walStats describes what recovery found in the log (satellites the
	// torn-tail/corruption diagnostics out to operators via fitcli).
	walStats wal.OpenStats

	// ckptMu serializes checkpoints and guards the fields below.
	ckptMu       sync.Mutex
	store        *pager.Store
	epoch        uint64
	heads        map[uint64]pager.PageID // chunk id -> blob head, last committed checkpoint
	manifestHead pager.PageID
	haveCkpt     bool
	ckptErr      error

	trigger chan struct{}

	loopMu   sync.Mutex
	loopStop chan struct{}
	wg       sync.WaitGroup
}

// manifest is the gob-encoded checkpoint root: the tree options plus the
// blob head of every chunk in chain order.
type manifest struct {
	Options Options
	Chunks  []pager.PageID
}

// CheckpointStats reports what one checkpoint did.
type CheckpointStats struct {
	// ReplayFrom is the first WAL LSN not covered by the checkpoint.
	ReplayFrom uint64
	// ChunksWritten is the number of dirty chunks serialized; ChunksReused
	// the number whose previous blobs were carried over untouched. Their
	// sum is the tree's chunk count.
	ChunksWritten int
	ChunksReused  int
}

// OpenDurable opens (or creates) a durable tree over fsys (WAL) and dev
// (checkpoint pages). An existing checkpoint is loaded — its recorded
// options override opts — and the WAL tail is replayed on top; a fresh
// store starts an empty tree with opts. Automatic checkpointing starts
// enabled.
func OpenDurable[K Key, V any](fsys wal.FS, dev pager.Device, opts Options) (*Durable[K, V], error) {
	store := pager.NewStore(dev)
	super, haveCkpt, err := pager.ReadSuper(dev)
	if err != nil {
		return nil, fmt.Errorf("fitingtree: read superblock: %w", err)
	}
	var tree *Tree[K, V]
	heads := make(map[uint64]pager.PageID)
	var reachable []pager.PageID
	usedOpts := opts
	var epoch uint64
	var replayFrom uint64
	snapCodec := core.NewSnapCodec[K, V]()
	if haveCkpt {
		m, err := loadManifest(store, super.Manifest)
		if err != nil {
			return nil, err
		}
		usedOpts = m.Options
		tree, reachable, err = loadCheckpointChunks(store, snapCodec, m.Chunks, usedOpts, heads, reachable)
		if err != nil {
			return nil, err
		}
		mchain, err := store.Chain(super.Manifest)
		if err != nil {
			return nil, err
		}
		reachable = append(reachable, mchain...)
		epoch = super.Epoch
		replayFrom = super.ReplayFrom
	} else {
		tree, err = core.BulkLoad[K, V](nil, nil, opts)
		if err != nil {
			return nil, err
		}
	}
	store.RebuildFree(reachable)

	log, records, walStats, err := wal.Open(fsys, WALName)
	if err != nil {
		return nil, err
	}
	log.SetNextLSN(replayFrom)
	codec := newOpCodec[K, V]()
	tree, err = replayTail(tree, codec, records, replayFrom)
	if err != nil {
		log.Close()
		return nil, err
	}
	opt := NewOptimistic(tree)

	d := &Durable[K, V]{
		opt:          opt,
		codec:        codec,
		snap:         snapCodec,
		opts:         usedOpts,
		log:          log,
		syncEvery:    1,
		walStats:     walStats,
		store:        store,
		epoch:        epoch,
		heads:        heads,
		manifestHead: super.Manifest,
		haveCkpt:     haveCkpt,
		trigger:      make(chan struct{}, 1),
	}
	opt.SetFlushHook(func() {
		select {
		case d.trigger <- struct{}{}:
		default:
		}
	})
	d.SetAutoCheckpoint(true)
	return d, nil
}

// CreateDurable initializes a durable tree from an already-built tree:
// the WAL is reset and a full checkpoint of t is written before returning,
// so the bulk-loaded data never passes through the log. Any previous
// content of fsys and dev is destroyed. The tree must not be used directly
// afterwards; the facade owns it.
func CreateDurable[K Key, V any](fsys wal.FS, dev pager.Device, t *Tree[K, V]) (*Durable[K, V], error) {
	f, err := fsys.Create(WALName)
	if err != nil {
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	store := pager.NewStore(dev)
	// Continue the epoch sequence past any previous store generation so
	// the new superblock outranks a stale one in the other slot.
	super, _, err := pager.ReadSuper(dev)
	if err != nil {
		return nil, err
	}
	store.RebuildFree(nil)
	log, _, _, err := wal.Open(fsys, WALName)
	if err != nil {
		return nil, err
	}
	opt := NewOptimistic(t)
	d := &Durable[K, V]{
		opt:       opt,
		codec:     newOpCodec[K, V](),
		snap:      core.NewSnapCodec[K, V](),
		opts:      t.Options(),
		log:       log,
		syncEvery: 1,
		store:     store,
		epoch:     super.Epoch,
		heads:     make(map[uint64]pager.PageID),
		trigger:   make(chan struct{}, 1),
	}
	opt.SetFlushHook(func() {
		select {
		case d.trigger <- struct{}{}:
		default:
		}
	})
	if _, err := d.Checkpoint(); err != nil {
		log.Close()
		return nil, err
	}
	d.SetAutoCheckpoint(true)
	return d, nil
}

// loadManifest reads and decodes the checkpoint root blob.
func loadManifest(store *pager.Store, head pager.PageID) (manifest, error) {
	var m manifest
	blob, err := store.Get(head)
	if err != nil {
		return m, fmt.Errorf("fitingtree: checkpoint manifest: %w", err)
	}
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&m); err != nil {
		return m, fmt.Errorf("fitingtree: checkpoint manifest: %w", err)
	}
	return m, nil
}

// loadCheckpointChunks decodes the chunk blobs at chunkHeads and assembles
// them into a tree, registering the fresh chunk id -> blob head pairs in
// heads and appending every chain page to reachable. It is the
// checkpoint-loading half shared by the single-tree and sharded recoveries
// (the sharded one calls it once per shard into the same heads map — chunk
// ids are process-unique, so one map serves the whole facade).
func loadCheckpointChunks[K Key, V any](store *pager.Store, snapCodec core.SnapCodec[K, V],
	chunkHeads []pager.PageID, opts Options, heads map[uint64]pager.PageID,
	reachable []pager.PageID) (*Tree[K, V], []pager.PageID, error) {
	snaps := make([]core.ChunkSnap[K, V], len(chunkHeads))
	// The blob buffer is recycled across chunks (Decode copies what it
	// keeps); the chain ids accumulate directly into reachable.
	var blob []byte
	var err error
	for i, head := range chunkHeads {
		blob, reachable, err = store.GetChain(head, blob[:0], reachable)
		if err != nil {
			return nil, nil, fmt.Errorf("fitingtree: checkpoint chunk %d: %w", i, err)
		}
		if snaps[i], err = snapCodec.Decode(blob); err != nil {
			return nil, nil, fmt.Errorf("fitingtree: checkpoint chunk %d: %w", i, err)
		}
	}
	tree, err := core.AssembleChunks(snaps, opts)
	if err != nil {
		return nil, nil, err
	}
	// Assembly creates one chunk per snapshot in order, so the fresh
	// chunk ids pair positionally with the manifest's blob heads.
	for i, id := range tree.ChunkIDs() {
		heads[id] = chunkHeads[i]
	}
	return tree, reachable, nil
}

// replayTail folds a WAL tail into tree as one batch instead of one facade
// write at a time: a long tail pushed through the ordinary insert path
// trips the flush threshold once per DefaultFlushEvery records and
// re-segments the same hot pages over and over, which dominates recovery.
// The buffer applies the write path's op semantics per key — an anonymous
// delete consumes the newest still-buffered insert for its key, else
// tombstones one more pre-existing match in scan order; a value delete
// consumes the newest still-buffered insert carrying its value, else
// records a value tombstone (every logged delete had a live victim when it
// was logged, and the WAL tail is a prefix-exact record of the ops that
// created it, so the tombstones can never exceed the checkpoint tree's
// matches) — then folds into the checkpoint tree with a single
// page-granular MergeCOW pass. Which of several distinct-valued duplicates
// an anonymous delete victimizes may differ from the original run's
// flush-timing-dependent choice; that choice was never acknowledged state
// (see Optimistic.Delete). A value delete replays exactly: its record
// names the victim. Records with LSN < replayFrom are skipped — they are
// covered by the checkpoint and survive only because the truncation after
// it didn't land (crash between superblock commit and truncate).
func replayTail[K Key, V any](tree *Tree[K, V], codec opCodec[K, V],
	records []wal.Record, replayFrom uint64) (*Tree[K, V], error) {
	adds := make(map[K][]V)
	tombs := make(map[K][]core.Tomb[V])
	replayed := 0
	for _, r := range records {
		if r.LSN < replayFrom {
			continue
		}
		op, k, v, err := codec.decodeOp(r.Payload)
		if err != nil {
			return nil, fmt.Errorf("fitingtree: wal replay lsn %d: %w", r.LSN, err)
		}
		switch op {
		case walOpInsert:
			adds[k] = append(adds[k], v)
		case walOpDelete:
			if a := adds[k]; len(a) > 0 {
				adds[k] = a[:len(a)-1]
			} else {
				tombs[k] = append(tombs[k], core.Tomb[V]{Any: true})
			}
		default: // walOpDeleteValue
			a := adds[k]
			consumed := false
			for j := len(a) - 1; j >= 0; j-- {
				if any(a[j]) == any(v) {
					adds[k] = append(a[:j:j], a[j+1:]...)
					consumed = true
					break
				}
			}
			if !consumed {
				tombs[k] = append(tombs[k], core.Tomb[V]{Val: v})
			}
		}
		replayed++
	}
	if replayed == 0 {
		return tree, nil
	}
	keys := make([]K, 0, len(adds)+len(tombs))
	for k, a := range adds {
		if len(a) > 0 || len(tombs[k]) > 0 {
			keys = append(keys, k)
		}
	}
	for k := range tombs {
		if _, ok := adds[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	ops := make([]core.MergeOp[K, V], len(keys))
	for i, k := range keys {
		ops[i] = core.MergeOp[K, V]{Key: k, Adds: adds[k]}
		// Pure-anonymous lists collapse to the counted fast path.
		anyOnly := true
		for _, t := range tombs[k] {
			if !t.Any {
				anyOnly = false
				break
			}
		}
		if anyOnly {
			ops[i].Dels = len(tombs[k])
		} else {
			ops[i].Tombs = tombs[k]
		}
	}
	return tree.MergeCOW(ops), nil
}

// foldState returns the tree equivalent to st with every pending layer
// folded in, sharing untouched chunks with st.tree. The fold reads only
// immutable published structures and costs O(pending).
func foldState[K Key, V any](st *ostate[K, V]) *Tree[K, V] {
	if len(st.frozen) > 0 || st.delta != nil {
		return st.fold()
	}
	return st.tree
}

// writeDirtyChunks serializes tree's chunks into store, skipping every
// chunk whose id already has a blob in prev (carried over by reference —
// the copy-on-write merges preserve untouched chunks' identity, so the id
// diff is exactly the dirty set). Live chunks are recorded in next, and the
// chain-ordered blob heads are returned with the written/reused counts. On
// error the caller owns the Rollback.
func writeDirtyChunks[K Key, V any](store *pager.Store, snapCodec core.SnapCodec[K, V],
	tree *Tree[K, V], prev, next map[uint64]pager.PageID) ([]pager.PageID, int, int, error) {
	ids := tree.ChunkIDs()
	chunks := make([]pager.PageID, len(ids))
	written, reused := 0, 0
	for i, id := range ids {
		if head, ok := prev[id]; ok {
			next[id], chunks[i] = head, head
			reused++
			continue
		}
		blob, err := snapCodec.Encode(tree.ChunkSnap(i))
		if err != nil {
			return nil, written, reused, fmt.Errorf("fitingtree: checkpoint chunk %d: %w", i, err)
		}
		head, err := store.Put(blob)
		if err != nil {
			return nil, written, reused, err
		}
		next[id], chunks[i] = head, head
		written++
	}
	return chunks, written, reused, nil
}

// freeDeadHeads releases the blobs of every chunk in prev that next no
// longer references — reusable only after the checkpoint commits (shadow
// paging). On error the caller owns the Rollback.
func freeDeadHeads(store *pager.Store, prev, next map[uint64]pager.PageID) error {
	for id, head := range prev {
		if _, live := next[id]; !live {
			if err := store.Free(head); err != nil {
				return err
			}
		}
	}
	return nil
}

// Insert adds (k, v), durably once the covering Sync barrier completes
// (immediately with the default SetSyncEvery(1)). A nil return with
// SetSyncEvery(1) means the write is acknowledged: it survives any crash.
// On an error the write may or may not reach the log; it is applied in
// memory only when the append succeeded.
func (d *Durable[K, V]) Insert(k K, v V) error {
	if k != k {
		panic("fitingtree: Insert with NaN key")
	}
	payload, err := d.codec.encodeOp(walOpInsert, k, v)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed != nil {
		return d.failed
	}
	if _, err := d.log.Append(payload); err != nil {
		d.failed = err
		return err
	}
	// Appended: apply unconditionally so memory tracks the log prefix even
	// when the sync below fails (the op is then applied but unacknowledged,
	// like a timed-out commit).
	d.opt.Insert(k, v)
	return d.maybeSync()
}

// Delete removes one element with key k (Optimistic's duplicate
// semantics), reporting whether one was found. Durability matches Insert.
func (d *Durable[K, V]) Delete(k K) (bool, error) {
	if k != k {
		panic("fitingtree: Delete with NaN key")
	}
	payload, err := d.codec.encodeOp(walOpDelete, k, *new(V))
	if err != nil {
		return false, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed != nil {
		return false, d.failed
	}
	// Probe first so no-op deletes are not logged; d.mu serializes all
	// writers, so the answer cannot change before the apply below.
	if !d.opt.Contains(k) {
		return false, nil
	}
	if _, err := d.log.Append(payload); err != nil {
		d.failed = err
		return false, err
	}
	d.opt.Delete(k)
	return true, d.maybeSync()
}

// DeleteValue removes one element with key k whose value equals v under
// Go equality (Optimistic.DeleteValue's flush-timing-independent victim
// semantics), reporting whether one was removed. The WAL record carries
// the concrete key and value, so replay re-derives exactly the same
// victim. Durability matches Insert. Panics on a NaN key and for
// non-comparable value types.
func (d *Durable[K, V]) DeleteValue(k K, v V) (bool, error) {
	if k != k {
		panic("fitingtree: DeleteValue with NaN key")
	}
	payload, err := d.codec.encodeOp(walOpDeleteValue, k, v)
	if err != nil {
		return false, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed != nil {
		return false, d.failed
	}
	// Probe first so no-op deletes are not logged; d.mu serializes all
	// writers, so the answer cannot change before the apply below.
	found := false
	d.opt.Each(k, func(w V) bool {
		if any(w) == any(v) {
			found = true
			return false
		}
		return true
	})
	if !found {
		return false, nil
	}
	if _, err := d.log.Append(payload); err != nil {
		d.failed = err
		return false, err
	}
	d.opt.DeleteValue(k, v)
	return true, d.maybeSync()
}

// SetSyncEvery sets the group-commit batch: the WAL is fsynced every n
// writes instead of every write, trading a bounded window of
// acknowledged-in-memory-only writes for fewer barriers. Use Sync to place
// an explicit barrier. Panics if n < 1.
func (d *Durable[K, V]) SetSyncEvery(n int) {
	if n < 1 {
		panic("fitingtree: SetSyncEvery batch must be >= 1")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncEvery = n
}

// Sync is the explicit group-commit barrier: after it returns nil, every
// write accepted so far survives a crash.
func (d *Durable[K, V]) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncLocked()
}

// maybeSync counts one write against the group-commit batch. Callers hold
// d.mu.
func (d *Durable[K, V]) maybeSync() error {
	d.unsynced++
	if d.unsynced < d.syncEvery {
		return nil
	}
	return d.syncLocked()
}

// syncLocked flushes the WAL barrier, poisoning the write path on failure:
// a failed fsync means the durability of everything appended since the
// previous barrier is unknown (the kernel may have dropped the dirty
// pages), so acknowledging anything after it could break the acked-prefix
// guarantee. Callers hold d.mu.
func (d *Durable[K, V]) syncLocked() error {
	if d.unsynced == 0 {
		return nil
	}
	if err := d.log.Sync(); err != nil {
		d.failed = err
		return err
	}
	d.unsynced = 0
	return nil
}

// Checkpoint persists the current state incrementally and truncates the
// WAL up to the covered LSN. Only chunks dirtied since the previous
// checkpoint are written; clean chunks' blobs are carried over by
// reference. Safe to call concurrently with reads and writes; concurrent
// checkpoints serialize.
func (d *Durable[K, V]) Checkpoint() (CheckpointStats, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	stats, err := d.checkpointLocked()
	d.ckptErr = err
	return stats, err
}

// checkpointLocked runs one checkpoint. Callers hold d.ckptMu.
func (d *Durable[K, V]) checkpointLocked() (CheckpointStats, error) {
	var stats CheckpointStats

	// Capture (LSN cursor, state) atomically with respect to writers:
	// under d.mu the state contains exactly the ops with LSN < nextLSN.
	d.mu.Lock()
	nextLSN := d.log.NextLSN()
	st := d.opt.state.Load()
	d.mu.Unlock()
	stats.ReplayFrom = nextLSN

	// Fold off-lock: the fold reads only immutable published structures
	// and costs O(pending), and it preserves untouched chunks' identity —
	// which is what keeps the id diff below O(dirty).
	tree := foldState(st)

	newHeads := make(map[uint64]pager.PageID, len(d.heads))
	chunks, written, reused, err := writeDirtyChunks(d.store, d.snap, tree, d.heads, newHeads)
	if err != nil {
		d.store.Rollback()
		return stats, err
	}
	stats.ChunksWritten, stats.ChunksReused = written, reused
	// Blobs of chunks no longer in the chain are released — reusable only
	// after this checkpoint commits (shadow paging).
	if err := freeDeadHeads(d.store, d.heads, newHeads); err != nil {
		d.store.Rollback()
		return stats, err
	}
	var sink bytes.Buffer
	if err := gob.NewEncoder(&sink).Encode(manifest{Options: d.opts, Chunks: chunks}); err != nil {
		d.store.Rollback()
		return stats, fmt.Errorf("fitingtree: checkpoint manifest: %w", err)
	}
	mHead, err := d.store.Put(sink.Bytes())
	if err != nil {
		d.store.Rollback()
		return stats, err
	}
	if d.haveCkpt {
		if err := d.store.Free(d.manifestHead); err != nil {
			d.store.Rollback()
			return stats, err
		}
	}
	// The commit point: one checksummed superblock write + sync. Before
	// it, a crash recovers the previous checkpoint; after it, this one.
	if err := pager.WriteSuper(d.store.Device(), pager.Super{
		Epoch:      d.epoch + 1,
		Manifest:   mHead,
		ReplayFrom: nextLSN,
	}); err != nil {
		d.store.Rollback()
		return stats, err
	}
	d.store.Commit()
	d.epoch++
	d.heads = newHeads
	d.manifestHead = mHead
	d.haveCkpt = true

	// Drop the covered WAL prefix. Failure here is benign: the records
	// stay until the next checkpoint, and replay skips them via the
	// cursor.
	if nextLSN > 0 {
		d.mu.Lock()
		err = d.log.Truncate(nextLSN - 1)
		d.mu.Unlock()
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// SetAutoCheckpoint starts or stops the background checkpointer, which
// runs a checkpoint after every flush publication (the moment dirty chunks
// appear). Disabling waits for an in-flight checkpoint to finish, so
// afterwards checkpoints happen only via explicit Checkpoint calls —
// deterministic, which is what the crash-matrix tests need.
func (d *Durable[K, V]) SetAutoCheckpoint(on bool) {
	d.loopMu.Lock()
	defer d.loopMu.Unlock()
	if on == (d.loopStop != nil) {
		return
	}
	if on {
		stop := make(chan struct{})
		d.loopStop = stop
		d.wg.Add(1)
		go d.checkpointLoop(stop)
		return
	}
	close(d.loopStop)
	d.loopStop = nil
	d.wg.Wait()
}

// checkpointLoop runs checkpoints on flush triggers until stopped. Errors
// are retained for Err; an injected or real storage fault must not take
// down the in-memory index.
func (d *Durable[K, V]) checkpointLoop(stop chan struct{}) {
	defer d.wg.Done()
	for {
		select {
		case <-stop:
			return
		case <-d.trigger:
			d.Checkpoint()
		}
	}
}

// Err returns the facade's sticky health: the write-path poison error when
// a WAL append or sync has failed (every write since has failed fast), else
// the most recent checkpoint error (nil after a successful checkpoint),
// surfacing background checkpoint failures.
func (d *Durable[K, V]) Err() error {
	d.mu.Lock()
	failed := d.failed
	d.mu.Unlock()
	if failed != nil {
		return failed
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	return d.ckptErr
}

// Close drains the flush pipeline, runs a final checkpoint, and releases
// the WAL handle. A poisoned facade skips the checkpoint — its last
// committed cut plus the synced WAL prefix already hold everything
// acknowledged — and returns the poison error; Close itself never makes
// things worse. The facade must not be used afterwards.
func (d *Durable[K, V]) Close() error {
	d.SetAutoCheckpoint(false)
	d.opt.SetFlushHook(nil)
	d.opt.Close()
	d.mu.Lock()
	cerr := d.failed
	d.mu.Unlock()
	if cerr == nil {
		_, cerr = d.Checkpoint()
	}
	d.mu.Lock()
	err := d.log.Close()
	d.mu.Unlock()
	if cerr != nil {
		return cerr
	}
	return err
}

// WALRecords returns the number of records currently in the log — the
// replay tail the next recovery would process (plus any not-yet-truncated
// checkpointed prefix).
func (d *Durable[K, V]) WALRecords() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.Len()
}

// WALOpenStats returns what recovery found when it opened the log: the
// replayed record count and, when the file was cut, whether the discarded
// tail looked like a torn append (TornBytes without CorruptFrames) or like
// corruption (CorruptFrames > 0). Zero values mean a clean shutdown.
func (d *Durable[K, V]) WALOpenStats() wal.OpenStats { return d.walStats }

// Lookup returns a value stored under k; see Optimistic.Lookup.
func (d *Durable[K, V]) Lookup(k K) (V, bool) { return d.opt.Lookup(k) }

// Contains reports whether k is present.
func (d *Durable[K, V]) Contains(k K) bool { return d.opt.Contains(k) }

// Each calls fn for every element with key exactly k; see Optimistic.Each.
func (d *Durable[K, V]) Each(k K, fn func(v V) bool) { d.opt.Each(k, fn) }

// AscendRange scans lo <= key <= hi in order; see Optimistic.AscendRange.
func (d *Durable[K, V]) AscendRange(lo, hi K, fn func(k K, v V) bool) {
	d.opt.AscendRange(lo, hi, fn)
}

// LookupBatch resolves keys against one snapshot; see
// Optimistic.LookupBatch.
func (d *Durable[K, V]) LookupBatch(keys []K) ([]V, []bool) { return d.opt.LookupBatch(keys) }

// Len returns the number of stored elements, including pending inserts.
func (d *Durable[K, V]) Len() int { return d.opt.Len() }

// Stats returns index statistics; see Optimistic.Stats.
func (d *Durable[K, V]) Stats() Stats { return d.opt.Stats() }

// SetFlushEvery forwards to the inner Optimistic facade.
func (d *Durable[K, V]) SetFlushEvery(n int) { d.opt.SetFlushEvery(n) }

// SetMaxFrozenLayers sets the frozen merge ladder depth; see
// Optimistic.SetMaxFrozenLayers. Durability is unaffected by the depth:
// the WAL covers every pending layer, and the checkpointer runs on
// base-tree publications (ladder folds), which are the pipeline's natural
// consistent cuts.
func (d *Durable[K, V]) SetMaxFrozenLayers(n int) { d.opt.SetMaxFrozenLayers(n) }

// SyncFlush folds the pending delta into the base tree and waits for the
// publication; see Optimistic.SyncFlush. Durability is unaffected (the WAL
// already holds the delta); it makes the next Checkpoint's dirty-chunk set
// exactly the flush's published one.
func (d *Durable[K, V]) SyncFlush() { d.opt.SyncFlush() }

// SetAsyncFlush forwards to the inner Optimistic facade.
func (d *Durable[K, V]) SetAsyncFlush(enabled bool) { d.opt.SetAsyncFlush(enabled) }

// SetAutoTune enables or disables cost-model-driven self-tuning (see
// Optimistic.SetAutoTune; disabled by default). Retuned layouts persist:
// checkpoints record each page's error bound, so recovery reassembles
// the tuned layout exactly.
func (d *Durable[K, V]) SetAutoTune(enabled bool) { d.opt.SetAutoTune(enabled) }
