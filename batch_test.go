package fitingtree_test

import (
	"math/rand"
	"testing"

	"fitingtree"
)

// TestLookupBatchMatchesLookup checks LookupBatch against per-key Lookup
// over duplicate-heavy data, both router kinds, and post-churn trees whose
// page chains have buffered inserts, tombstoned pages and duplicate runs.
func TestLookupBatchMatchesLookup(t *testing.T) {
	for _, router := range []fitingtree.RouterKind{fitingtree.RouterBTree, fitingtree.RouterImplicit} {
		rng := rand.New(rand.NewSource(int64(router) + 5))
		keys := make([]uint64, 5000)
		for i := range keys {
			keys[i] = uint64(rng.Intn(1500) * 3) // dense duplicates
		}
		sortU64(keys)
		tr, err := fitingtree.BulkLoad(keys, append([]uint64(nil), keys...),
			fitingtree.Options{Error: 24, BufferSize: 8, Router: router})
		if err != nil {
			t.Fatal(err)
		}

		checkBatch := func(probes []uint64) {
			t.Helper()
			vals, found := tr.LookupBatch(probes)
			if len(vals) != len(probes) || len(found) != len(probes) {
				t.Fatalf("router=%d: result lengths %d/%d for %d probes", router, len(vals), len(found), len(probes))
			}
			for i, k := range probes {
				wv, wok := tr.Lookup(k)
				if found[i] != wok || (wok && vals[i] != wv) {
					t.Fatalf("router=%d: batch[%d] key %d = (%d,%v), Lookup = (%d,%v)",
						router, i, k, vals[i], found[i], wv, wok)
				}
			}
		}

		// Mixed hits and misses, unsorted, with repeats.
		probes := make([]uint64, 700)
		for i := range probes {
			probes[i] = uint64(rng.Intn(4800))
		}
		checkBatch(probes)
		checkBatch(nil)
		checkBatch([]uint64{keys[0], keys[len(keys)-1], keys[0]})

		// Churn the tree so batches traverse buffers and rebuilt pages.
		for i := 0; i < 2000; i++ {
			k := uint64(rng.Intn(4800))
			if rng.Intn(3) == 0 {
				tr.Delete(k)
			} else {
				tr.Insert(k, k)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		checkBatch(probes)

		// Sparse probes force the chain walk to give up and re-descend.
		sparse := make([]uint64, 64)
		for i := range sparse {
			sparse[i] = uint64(i * 997)
		}
		checkBatch(sparse)
	}
}

func TestLookupBatchEmptyTree(t *testing.T) {
	tr, err := fitingtree.BulkLoad[uint64, uint64](nil, nil, fitingtree.Options{Error: 10})
	if err != nil {
		t.Fatal(err)
	}
	vals, found := tr.LookupBatch([]uint64{1, 2, 3})
	for i := range vals {
		if found[i] || vals[i] != 0 {
			t.Fatalf("empty tree batch[%d] = (%d,%v)", i, vals[i], found[i])
		}
	}
}

// TestFacadeLookupBatch checks the facades' batch entry points, including
// the optimistic facade's delta overlay (pending inserts and tombstones
// must be visible to batch reads).
func TestFacadeLookupBatch(t *testing.T) {
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i * 2)
	}
	build := func() *fitingtree.Tree[uint64, uint64] {
		tr, err := fitingtree.BulkLoad(keys, append([]uint64(nil), keys...), fitingtree.Options{Error: 32})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	probes := []uint64{0, 1, 2, 100, 101, 1998, 5000}

	c := fitingtree.NewConcurrent(build())
	vals, found := c.LookupBatch(probes)
	for i, k := range probes {
		wantOK := k < 2000 && k%2 == 0
		if found[i] != wantOK || (wantOK && vals[i] != k) {
			t.Fatalf("Concurrent batch[%d] key %d = (%d,%v)", i, k, vals[i], found[i])
		}
	}

	o := fitingtree.NewOptimistic(build())
	o.SetFlushEvery(1 << 20) // keep writes in the delta
	o.Insert(101, 101)       // pending insert
	o.Delete(100)            // pending tombstone
	vals, found = o.LookupBatch(probes)
	for i, k := range probes {
		wantOK := (k < 2000 && k%2 == 0 && k != 100) || k == 101
		if found[i] != wantOK || (wantOK && vals[i] != k) {
			t.Fatalf("Optimistic batch[%d] key %d = (%d,%v)", i, k, vals[i], found[i])
		}
	}
}
