package fitingtree_test

import (
	"bytes"
	"fmt"

	"fitingtree"
)

// ExampleOptimistic shows the latch-free facade's full write lifecycle:
// lookups against the published state, inserts into the delta, and the
// copy-on-write flush that folds the delta into the base tree.
func ExampleOptimistic() {
	keys := []uint64{10, 20, 30, 40, 50}
	vals := []string{"a", "b", "c", "d", "e"}
	tr, _ := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 16, BufferSize: 4})

	idx := fitingtree.NewOptimistic(tr)
	idx.SetFlushEvery(2) // fold the delta into the tree every 2 writes

	v, ok := idx.Lookup(30) // latch-free read of the published state
	fmt.Println(v, ok)

	idx.Insert(35, "f") // 1st write: pending in the delta, already visible
	fmt.Println(idx.Lookup(35))

	idx.Insert(45, "g") // 2nd write: trips the page-granular COW flush
	fmt.Println(idx.Lookup(45))
	fmt.Println(idx.Len())
	idx.Close() // drain: on multi-core runtimes the flush runs in the background
	// Output:
	// c true
	// f true
	// g true
	// 7
}

// ExampleOptimistic_Delete demonstrates the documented duplicate
// semantics: pending inserts are consumed first, then tombstones remove
// the first matches in scan order.
func ExampleOptimistic_Delete() {
	keys := []uint64{7, 7, 7}
	vals := []string{"first", "second", "third"}
	tr, _ := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 16})

	idx := fitingtree.NewOptimistic(tr)
	idx.Insert(7, "pending")

	idx.Delete(7) // consumes the pending insert
	idx.Delete(7) // tombstones "first", the first match in scan order
	idx.Each(7, func(v string) bool {
		fmt.Println(v)
		return true
	})
	// Output:
	// second
	// third
}

// ExampleOptimistic_SetMaxFrozenLayers shows the merge-ladder knobs for
// bursty writers: a deeper ladder absorbs write bursts as O(1) frozen
// layers (the background compactor size-tiers and folds them), so
// tripping writers fall back to an inline fold only when the ladder is
// genuinely full — counted by BackpressureFolds.
func ExampleOptimistic_SetMaxFrozenLayers() {
	keys := []uint64{10, 20, 30, 40, 50}
	vals := []uint64{1, 2, 3, 4, 5}
	tr, _ := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 16, BufferSize: 4})

	idx := fitingtree.NewOptimistic(tr)
	idx.SetAsyncFlush(true)   // ladder applies to the background pipeline
	idx.SetFlushEvery(4)      // push a frozen layer every 4 writes
	idx.SetMaxFrozenLayers(8) // hold a burst of up to 8 layers

	for i := uint64(0); i < 32; i++ { // a burst of 8 trips
		idx.Insert(i*2+1, i)
	}
	fmt.Println(idx.Len())
	s := idx.Stats()
	fmt.Println(s.FrozenLayers <= 8) // however far the compactor got
	fmt.Println(idx.BackpressureFolds())

	idx.Close() // drain every layer
	fmt.Println(idx.Stats().FrozenLayers)
	// Output:
	// 37
	// true
	// 0
	// 0
}

// ExampleNewSharded splits a tree into range shards with boundaries drawn
// from the data's distribution; writes to different shards take different
// locks, reads stay latch-free, and range scans stitch across shards in
// key order.
func ExampleNewSharded() {
	keys := make([]uint64, 1000)
	vals := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i * 10)
		vals[i] = uint64(i)
	}
	tr, _ := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 16, BufferSize: 4})

	idx, _ := fitingtree.NewSharded(tr, 4)
	fmt.Println(idx.Shards())

	idx.Insert(4995, 4995) // routes to the owning shard only
	v, ok := idx.Lookup(4995)
	fmt.Println(v, ok)

	// A range crossing shard boundaries is stitched in key order.
	n := 0
	idx.AscendRange(0, 9990, func(k, v uint64) bool { n++; return true })
	fmt.Println(n)
	// Output:
	// 4
	// 4995 true
	// 1001
}

// ExampleEncodeOptimistic snapshots a facade without blocking its writers:
// the published state is immutable, so one atomic load is a consistent
// cut, pending delta writes included.
func ExampleEncodeOptimistic() {
	tr, _ := fitingtree.BulkLoad([]uint64{1, 2, 3}, []string{"x", "y", "z"},
		fitingtree.Options{Error: 16})
	idx := fitingtree.NewOptimistic(tr)
	idx.Insert(4, "w") // stays in the delta; still part of the snapshot

	var buf bytes.Buffer
	if err := fitingtree.EncodeOptimistic(idx, &buf); err != nil {
		panic(err)
	}
	restored, err := fitingtree.DecodeOptimistic[uint64, string](&buf)
	if err != nil {
		panic(err)
	}
	fmt.Println(restored.Len())
	fmt.Println(restored.Lookup(4))
	// Output:
	// 4
	// w true
}
