package fitingtree

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"fitingtree/internal/core"
	"fitingtree/internal/pager"
	"fitingtree/internal/wal"
)

// IntentName is the rebalance intent record's file name inside a sharded
// durable store's file system.
const IntentName = "rebalance.intent"

// ShardWALName returns the log file name of shard i under fence
// generation gen. The generation is baked into the name so recovery can
// never replay one generation's records through another generation's
// fences: a migration switches every shard to fresh logs, and the old
// generation's logs are deleted only after — or discarded along with —
// the manifest flip that commits the move.
func ShardWALName(gen uint64, i int) string {
	return fmt.Sprintf("wal-%d-%d.log", gen, i)
}

// DurableSharded is the crash-safe multi-writer facade: a range-sharded
// set of Optimistic trees (Sharded's partitioning and read protocol)
// whose writes are made durable by one write-ahead log per shard and
// whose checkpoints commit one atomic cross-shard cut.
//
// The protocol extends Durable's in three ways:
//
//   - Parallel group commit. Each shard owns a private WAL; a write
//     appends to its shard's log under that shard's mutex only, so
//     writers on different shards append — and fsync — concurrently. An
//     op is acknowledged once its own shard's Sync barrier covers it.
//   - Atomic cross-shard checkpoints. A checkpoint captures every
//     shard's (chunk heads, WAL replay cursor) — each cut taken under
//     that shard's writer mutex — and writes one top-level manifest blob
//     naming all of them plus the fence keys, committed by the pager's
//     dual-superblock epoch flip. Recovery therefore always loads one
//     coherent epoch: all shards from cut N, never a mix. Per-shard
//     chunk writes stay incremental (chunk ids are process-unique, so
//     one id→blob map serves the whole facade).
//   - Crash-consistent rebalance. Moving keys between shards is a
//     multi-shard mutation; it becomes atomic by writing a fence-change
//     intent record (old fences, new fences, source epoch) before any
//     migration work, building the new generation's shards and logs on
//     the side, and committing everything with the next manifest flip.
//     A crash at any point resolves wholesale at the next open: a
//     committed manifest still carrying a generation below the intent's
//     means the flip never landed — the migration is discarded and the
//     old generation recovered; at or past it means it committed — only
//     leftover files remain to sweep. See RebalanceIntent in
//     internal/core.
//
// Any WAL or device error on the write path poisons the facade: Err
// turns sticky, every later write fails fast (an acknowledged write that
// replay cannot see must never happen), and Close skips the final
// checkpoint — the last committed cut plus the synced log prefixes
// already hold everything acknowledged. Reads stay latch-free and
// unaffected throughout.
type DurableSharded[K Key, V any] struct {
	codec opCodec[K, V]
	snap  core.SnapCodec[K, V]
	opts  Options
	fsys  wal.FS
	want  int // target shard count

	// reshape is held shared by writers and exclusively by rebalance (and
	// Close); readers never touch it. Same discipline as Sharded.
	reshape sync.RWMutex
	set     atomic.Pointer[dshardSet[K, V]]

	syncEvery    atomic.Int64  // group-commit batch, per shard
	flushAt      atomic.Int64  // forwarded to every shard, current and future
	maxFrozen    atomic.Int64  // forwarded to every shard, current and future
	asyncOff     atomic.Bool   // forwarded to every shard, current and future
	autoTuneOn   atomic.Bool   // forwarded to every shard, current and future
	factor       atomic.Uint64 // rebalance skew factor (math.Float64bits)
	writes       atomic.Uint64 // write counter gating the skew check
	rebalancedAt atomic.Int64  // total elements when fences were last computed

	// failed poisons the write path; failedMu guards it (writers on
	// different shards share no other mutex).
	failedMu sync.Mutex
	failed   error

	// ckptMu serializes checkpoints and rebalance commits and guards the
	// fields below. Rebalance acquires reshape before ckptMu; nothing
	// acquires them in the other order.
	ckptMu       sync.Mutex
	store        *pager.Store
	epoch        uint64
	generation   uint64
	heads        map[uint64]pager.PageID // chunk id -> blob head, last committed cut
	manifestHead pager.PageID
	haveCkpt     bool
	ckptErr      error

	// walStats describes what recovery found in each shard's log, in
	// shard order of the generation that was opened.
	walStats []wal.OpenStats

	trigger  chan struct{}
	loopMu   sync.Mutex
	loopStop chan struct{}
	wg       sync.WaitGroup
}

// dshardSet is one immutable published partitioning of a DurableSharded
// facade: fence keys plus the durable shards they induce. opts mirrors
// shards' facades so the read paths shared with Sharded can borrow them
// without per-call allocation.
type dshardSet[K Key, V any] struct {
	bounds []K
	shards []*dshard[K, V]
	opts   []*Optimistic[K, V]
}

// dshard is one durable shard: an Optimistic tree plus its private WAL.
// mu serializes the shard's write path (append order is apply order);
// writers on other shards never take it.
type dshard[K Key, V any] struct {
	mu       sync.Mutex
	opt      *Optimistic[K, V]
	log      *wal.Log
	unsynced int
}

// ShardedCheckpointStats reports what one cross-shard checkpoint did.
type ShardedCheckpointStats struct {
	// Epoch is the committed cut's epoch.
	Epoch uint64
	// Shards is the number of shards in the cut.
	Shards int
	// ChunksWritten sums the dirty chunks serialized across shards;
	// ChunksReused those carried over by reference.
	ChunksWritten int
	ChunksReused  int
}

// OpenDurableSharded opens (or creates) a sharded durable facade over
// fsys (per-shard WALs plus the rebalance intent) and dev (checkpoint
// pages). An existing store recovers from its newest committed epoch: an
// in-flight migration is resolved first (replayed wholesale if its
// manifest flip landed, discarded wholesale otherwise), then every
// shard's checkpoint chunks are loaded and its WAL tail replayed. The
// manifest's recorded options and fences override opts; a fresh store
// starts one empty shard with opts and grows toward the shards target as
// data arrives. Automatic checkpointing starts enabled.
func OpenDurableSharded[K Key, V any](fsys wal.FS, dev pager.Device, opts Options, shards int) (*DurableSharded[K, V], error) {
	if shards < 1 {
		return nil, fmt.Errorf("fitingtree: shard count %d, must be >= 1", shards)
	}
	store := pager.NewStore(dev)
	super, haveCkpt, err := pager.ReadSuper(dev)
	if err != nil {
		return nil, fmt.Errorf("fitingtree: read superblock: %w", err)
	}
	var m core.ShardManifest
	var mchain []pager.PageID
	if haveCkpt {
		// The manifest is loaded before the intent is settled: its
		// generation — not the superblock's epoch — is what classifies an
		// in-flight migration (see resolveIntent).
		if m, mchain, err = loadShardManifest(store, super.Manifest); err != nil {
			return nil, err
		}
	}
	if err := resolveIntent(fsys, m.Generation, haveCkpt); err != nil {
		return nil, err
	}

	d := newDurableSharded[K, V](fsys, store, opts, shards)
	var trees []*Tree[K, V]
	var bounds []K
	var replayFroms []uint64
	var reachable []pager.PageID
	if haveCkpt {
		d.opts = m.Options
		if bounds, err = decodeFences(&d.codec, m.Fences); err != nil {
			return nil, err
		}
		trees = make([]*Tree[K, V], len(m.Shards))
		replayFroms = make([]uint64, len(m.Shards))
		for i, cut := range m.Shards {
			chunkHeads := make([]pager.PageID, len(cut.Chunks))
			for j, c := range cut.Chunks {
				chunkHeads[j] = pager.PageID(c)
			}
			trees[i], reachable, err = loadCheckpointChunks(store, d.snap, chunkHeads, d.opts, d.heads, reachable)
			if err != nil {
				return nil, fmt.Errorf("fitingtree: shard %d: %w", i, err)
			}
			replayFroms[i] = cut.ReplayFrom
		}
		reachable = append(reachable, mchain...)
		d.epoch = super.Epoch
		d.generation = m.Generation
		d.manifestHead = super.Manifest
		d.haveCkpt = true
	} else {
		tr, err := core.BulkLoad[K, V](nil, nil, opts)
		if err != nil {
			return nil, err
		}
		trees = []*Tree[K, V]{tr}
		replayFroms = []uint64{0}
	}
	store.RebuildFree(reachable)

	set := &dshardSet[K, V]{
		bounds: bounds,
		shards: make([]*dshard[K, V], len(trees)),
		opts:   make([]*Optimistic[K, V], len(trees)),
	}
	d.walStats = make([]wal.OpenStats, len(trees))
	total := 0
	for i, tree := range trees {
		log, records, st, err := wal.Open(fsys, ShardWALName(d.generation, i))
		if err != nil {
			closeShardLogs(set.shards[:i])
			return nil, fmt.Errorf("fitingtree: shard %d: %w", i, err)
		}
		d.walStats[i] = st
		log.SetNextLSN(replayFroms[i])
		if tree, err = replayTail(tree, d.codec, records, replayFroms[i]); err != nil {
			log.Close()
			closeShardLogs(set.shards[:i])
			return nil, fmt.Errorf("fitingtree: shard %d: %w", i, err)
		}
		set.shards[i] = d.newShard(tree, log)
		set.opts[i] = set.shards[i].opt
		total += tree.Len()
	}
	d.set.Store(set)
	d.rebalancedAt.Store(int64(total))
	d.SetAutoCheckpoint(true)
	return d, nil
}

// CreateDurableSharded initializes a sharded durable facade from an
// already-built tree: t is split into at most shards balanced range
// partitions (Sharded's fence policy) and a full cross-shard checkpoint
// is committed before returning, so the bulk-loaded data never passes
// through the logs. Any previous content of fsys and dev is superseded —
// atomically when it is a readable sharded store: the new store's first
// cut is built under the next generation (fresh log names, old pages
// shielded), so until that cut commits a crash still recovers the old
// store in full, and only afterwards are its files swept. The tree must
// not be used directly afterwards; the facade owns it.
func CreateDurableSharded[K Key, V any](fsys wal.FS, dev pager.Device, t *Tree[K, V], shards int) (*DurableSharded[K, V], error) {
	if shards < 1 {
		return nil, fmt.Errorf("fitingtree: shard count %d, must be >= 1", shards)
	}
	keys := make([]K, 0, t.Len())
	vals := make([]V, 0, t.Len())
	t.Ascend(func(k K, v V) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return true
	})
	starts, weights := t.PageBounds()
	store := pager.NewStore(dev)
	// Continue the epoch and generation sequences past any previous store
	// on the device: the epoch so the new superblock outranks the stale
	// one in the other slot, the generation so the fresh logs below never
	// truncate the previous store's. That store — superblock, pages, WAL
	// tails, intent — stays the untouched recovery target until the first
	// cut commits; destroying any of it earlier would lose its
	// acknowledged writes on a crash inside this function even though the
	// supersede never committed.
	super, haveCkpt, err := pager.ReadSuper(dev)
	if err != nil {
		return nil, err
	}
	gen := uint64(0)
	oldShards := 0
	var reachable []pager.PageID
	if haveCkpt {
		// A previous store whose manifest no longer decodes (corrupt, or
		// a single-tree Durable's) was unrecoverable by this facade
		// anyway; it gets plain destructive supersede semantics.
		if m, mchain, merr := loadShardManifest(store, super.Manifest); merr == nil {
			gen = m.Generation + 1
			oldShards = len(m.Shards)
			reachable = mchain
		shield:
			for _, cut := range m.Shards {
				for _, c := range cut.Chunks {
					chain, cerr := store.Chain(pager.PageID(c))
					if cerr != nil {
						// A partially unreadable old store cannot be
						// recovered after a crash either way; stop
						// shielding its pages (the fresh generation's
						// log names still cost nothing).
						reachable = nil
						break shield
					}
					reachable = append(reachable, chain...)
				}
			}
		}
	}
	store.RebuildFree(reachable)

	d := newDurableSharded[K, V](fsys, store, t.Options(), shards)
	d.epoch = super.Epoch
	d.generation = gen
	bounds := balancedFences(keys, starts, weights, shards)
	logs, err := createShardLogs(fsys, gen, len(bounds)+1)
	if err != nil {
		return nil, err
	}
	set, err := d.newShardSet(keys, vals, bounds, logs)
	if err != nil {
		closeLogs(logs)
		return nil, err
	}
	d.set.Store(set)
	d.walStats = make([]wal.OpenStats, len(logs))
	d.rebalancedAt.Store(int64(len(keys)))
	d.ckptMu.Lock()
	_, err = d.checkpointLocked(set, gen)
	d.ckptMu.Unlock()
	if err != nil {
		closeShardLogs(set.shards)
		return nil, err
	}
	// Committed: the previous store and any stale rebalance intent are
	// dead. The sweep is best-effort — a leftover intent resolves
	// harmlessly at the next open (its generation is at most gen, so it
	// can never condemn this store's logs), and old-generation log files
	// are never opened again (log names embed the generation).
	for i := 0; i < oldShards; i++ {
		d.fsys.Remove(ShardWALName(gen-1, i))
	}
	d.fsys.Remove(IntentName)
	d.fsys.Remove(IntentName + ".tmp")
	d.SetAutoCheckpoint(true)
	return d, nil
}

// newDurableSharded builds the facade shell with its tuning defaults.
func newDurableSharded[K Key, V any](fsys wal.FS, store *pager.Store, opts Options, want int) *DurableSharded[K, V] {
	d := &DurableSharded[K, V]{
		codec:   newOpCodec[K, V](),
		snap:    core.NewSnapCodec[K, V](),
		opts:    opts,
		fsys:    fsys,
		want:    want,
		store:   store,
		heads:   make(map[uint64]pager.PageID),
		trigger: make(chan struct{}, 1),
	}
	d.syncEvery.Store(1)
	d.flushAt.Store(DefaultFlushEvery)
	d.maxFrozen.Store(DefaultMaxFrozenLayers)
	d.asyncOff.Store(runtime.GOMAXPROCS(0) <= 1)
	d.factor.Store(math.Float64bits(DefaultRebalanceFactor))
	return d
}

// newShard wraps a tree and its log into a durable shard with the
// facade's current tuning and flush hook applied.
func (d *DurableSharded[K, V]) newShard(tree *Tree[K, V], log *wal.Log) *dshard[K, V] {
	o := NewOptimistic(tree)
	o.SetFlushEvery(int(d.flushAt.Load()))
	o.SetMaxFrozenLayers(int(d.maxFrozen.Load()))
	o.SetAsyncFlush(!d.asyncOff.Load())
	o.SetAutoTune(d.autoTuneOn.Load())
	o.SetFlushHook(func() {
		select {
		case d.trigger <- struct{}{}:
		default:
		}
	})
	return &dshard[K, V]{opt: o, log: log}
}

// newShardSet partitions the sorted (keys, vals) run along bounds and
// bulk-loads one durable shard per range over the given logs (one per
// range, in fence order).
func (d *DurableSharded[K, V]) newShardSet(keys []K, vals []V, bounds []K, logs []*wal.Log) (*dshardSet[K, V], error) {
	set := &dshardSet[K, V]{
		bounds: bounds,
		shards: make([]*dshard[K, V], len(bounds)+1),
		opts:   make([]*Optimistic[K, V], len(bounds)+1),
	}
	lo := 0
	for i := range set.shards {
		hi := len(keys)
		if i < len(bounds) {
			hi = lowerBound(keys, bounds[i]) // keys >= fence belong right of the cut
		}
		tr, err := BulkLoad(keys[lo:hi], vals[lo:hi], d.opts)
		if err != nil {
			return nil, fmt.Errorf("fitingtree: shard %d: %w", i, err)
		}
		set.shards[i] = d.newShard(tr, logs[i])
		set.opts[i] = set.shards[i].opt
		lo = hi
	}
	return set, nil
}

// createShardLogs creates count fresh, empty, synced logs for generation
// gen. Create truncates, so a stale leftover from an earlier discarded
// migration to the same generation cannot leak records into this one.
func createShardLogs(fsys wal.FS, gen uint64, count int) ([]*wal.Log, error) {
	logs := make([]*wal.Log, count)
	for i := range logs {
		name := ShardWALName(gen, i)
		f, err := fsys.Create(name)
		if err != nil {
			closeLogs(logs[:i])
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			closeLogs(logs[:i])
			return nil, err
		}
		if err := f.Close(); err != nil {
			closeLogs(logs[:i])
			return nil, err
		}
		l, _, _, err := wal.Open(fsys, name)
		if err != nil {
			closeLogs(logs[:i])
			return nil, err
		}
		logs[i] = l
	}
	return logs, nil
}

// closeLogs closes every non-nil log (error cleanup).
func closeLogs(logs []*wal.Log) {
	for _, l := range logs {
		if l != nil {
			l.Close()
		}
	}
}

// closeShardLogs closes every built shard's log (error cleanup).
func closeShardLogs[K Key, V any](shards []*dshard[K, V]) {
	for _, sh := range shards {
		if sh != nil {
			sh.log.Close()
		}
	}
}

// loadShardManifest reads, checksum-verifies, and decodes the top-level
// manifest blob, returning its chain pages for the reachability sweep.
func loadShardManifest(store *pager.Store, head pager.PageID) (core.ShardManifest, []pager.PageID, error) {
	blob, chain, err := store.GetChain(head, nil, nil)
	if err != nil {
		return core.ShardManifest{}, nil, fmt.Errorf("fitingtree: shard manifest: %w", err)
	}
	m, err := core.DecodeShardManifest(blob)
	if err != nil {
		return core.ShardManifest{}, nil, fmt.Errorf("fitingtree: shard manifest: %w", err)
	}
	return m, chain, nil
}

// encodeFences encodes fence keys into the manifest's opaque byte-string
// form via the WAL key codec.
func encodeFences[K Key, V any](c *opCodec[K, V], bounds []K) [][]byte {
	fences := make([][]byte, len(bounds))
	for i, b := range bounds {
		fences[i] = c.appendKey(nil, b)
	}
	return fences
}

// decodeFences inverts encodeFences, validating that the fences are
// strictly increasing (the routing invariant every read and write relies
// on) so a corrupted manifest fails here instead of misrouting keys.
func decodeFences[K Key, V any](c *opCodec[K, V], fences [][]byte) ([]K, error) {
	bounds := make([]K, len(fences))
	for i, f := range fences {
		k, rest, err := c.decodeKey(f)
		if err != nil {
			return nil, fmt.Errorf("fitingtree: manifest fence %d: %w", i, err)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("fitingtree: manifest fence %d carries %d trailing bytes", i, len(rest))
		}
		if i > 0 && k <= bounds[i-1] {
			return nil, fmt.Errorf("fitingtree: manifest fences not strictly increasing at %d", i)
		}
		bounds[i] = k
	}
	return bounds, nil
}

// readFSFile returns the full content of name inside fsys.
func readFSFile(fsys wal.FS, name string) ([]byte, error) {
	r, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

// writeFileAtomic replaces name's content via the write-sibling, sync,
// rename protocol, so a crash leaves either the old or the new content.
func writeFileAtomic(fsys wal.FS, name string, data []byte) error {
	tmp := name + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, name)
}

// resolveIntent settles a rebalance intent left behind by a crash. The
// migration's commit point is the manifest flip carrying the intent's
// new Generation, so the committed manifest's generation decides
// wholesale: still below the intent's (or no checkpoint at all) means
// the flip never landed — the migration's logs are garbage and the old
// generation recovers; at or past it means it landed — only the source
// generation's logs remain to sweep. Epochs deliberately play no part
// in the comparison: they advance with every checkpoint, skip past
// failed superblock writes, and restart relative to a superseded store
// after CreateDurableSharded — any of which could make a stale intent
// look committed and condemn a live generation's logs, while the
// generation sequence moves only with committed migrations (and Create
// continues it). A torn or corrupt intent record is impossible for an
// in-flight migration (the record is written atomically and synced
// before any migration work), so it is discarded as a stale leftover.
// Always removed afterwards, along with the atomic-write sibling.
func resolveIntent(fsys wal.FS, gen uint64, haveCkpt bool) error {
	data, err := readFSFile(fsys, IntentName)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fsys.Remove(IntentName + ".tmp")
		}
		return err
	}
	if it, derr := core.DecodeRebalanceIntent(data); derr == nil {
		if !haveCkpt || gen < it.Generation {
			// Never committed: discard the migration's logs.
			for i := 0; i <= len(it.NewFences); i++ {
				if err := fsys.Remove(ShardWALName(it.Generation, i)); err != nil {
					return err
				}
			}
		} else {
			// Committed: sweep the source generation's logs (dead even
			// when later generations have committed since — log names
			// embed the generation, so the live one is never touched).
			for i := 0; i <= len(it.OldFences); i++ {
				if err := fsys.Remove(ShardWALName(it.Generation-1, i)); err != nil {
					return err
				}
			}
		}
	}
	if err := fsys.Remove(IntentName); err != nil {
		return err
	}
	return fsys.Remove(IntentName + ".tmp")
}

// poison makes err the facade's sticky write-path failure (first error
// wins).
func (d *DurableSharded[K, V]) poison(err error) {
	d.failedMu.Lock()
	if d.failed == nil {
		d.failed = err
	}
	d.failedMu.Unlock()
}

// failedErr returns the sticky write-path poison, nil when healthy.
func (d *DurableSharded[K, V]) failedErr() error {
	d.failedMu.Lock()
	defer d.failedMu.Unlock()
	return d.failed
}

// shardFor routes k to its owning shard.
func (ss *dshardSet[K, V]) shardFor(k K) *dshard[K, V] {
	return ss.shards[upperBoundKeys(ss.bounds, k)]
}

// Insert adds (k, v), durably once the owning shard's covering Sync
// barrier completes (immediately with the default SetSyncEvery(1)).
// Inserts to different shards append to — and fsync — different logs
// concurrently. Panics on a NaN key.
func (d *DurableSharded[K, V]) Insert(k K, v V) error {
	if k != k {
		panic("fitingtree: Insert with NaN key")
	}
	payload, err := d.codec.encodeOp(walOpInsert, k, v)
	if err != nil {
		return err
	}
	d.reshape.RLock()
	sh := d.set.Load().shardFor(k)
	sh.mu.Lock()
	err = d.failedErr()
	if err == nil {
		if _, err = sh.log.Append(payload); err != nil {
			d.poison(err)
		} else {
			// Appended: apply unconditionally so memory tracks the log
			// prefix even when the sync below fails.
			sh.opt.Insert(k, v)
			err = d.maybeSyncShard(sh)
		}
	}
	sh.mu.Unlock()
	d.reshape.RUnlock()
	if err == nil {
		d.maybeRebalance()
	}
	return err
}

// Delete removes one element with key k from the owning shard
// (Optimistic's duplicate semantics), reporting whether one was found.
// Durability matches Insert. Panics on a NaN key.
func (d *DurableSharded[K, V]) Delete(k K) (bool, error) {
	if k != k {
		panic("fitingtree: Delete with NaN key")
	}
	payload, err := d.codec.encodeOp(walOpDelete, k, *new(V))
	if err != nil {
		return false, err
	}
	d.reshape.RLock()
	sh := d.set.Load().shardFor(k)
	sh.mu.Lock()
	found := false
	err = d.failedErr()
	// Probe first so no-op deletes are not logged; sh.mu serializes the
	// shard's writers, so the answer cannot change before the apply.
	if err == nil && sh.opt.Contains(k) {
		if _, err = sh.log.Append(payload); err != nil {
			d.poison(err)
		} else {
			sh.opt.Delete(k)
			found = true
			err = d.maybeSyncShard(sh)
		}
	}
	sh.mu.Unlock()
	d.reshape.RUnlock()
	if found && err == nil {
		d.maybeRebalance()
	}
	return found, err
}

// DeleteValue removes one element with key k whose value equals v under
// Go equality (Optimistic.DeleteValue's flush-timing-independent victim
// semantics), reporting whether one was removed. Durability matches
// Insert. Panics on a NaN key and for non-comparable value types.
func (d *DurableSharded[K, V]) DeleteValue(k K, v V) (bool, error) {
	if k != k {
		panic("fitingtree: DeleteValue with NaN key")
	}
	payload, err := d.codec.encodeOp(walOpDeleteValue, k, v)
	if err != nil {
		return false, err
	}
	d.reshape.RLock()
	sh := d.set.Load().shardFor(k)
	sh.mu.Lock()
	found := false
	err = d.failedErr()
	if err == nil {
		present := false
		sh.opt.Each(k, func(w V) bool {
			if any(w) == any(v) {
				present = true
				return false
			}
			return true
		})
		if present {
			if _, err = sh.log.Append(payload); err != nil {
				d.poison(err)
			} else {
				sh.opt.DeleteValue(k, v)
				found = true
				err = d.maybeSyncShard(sh)
			}
		}
	}
	sh.mu.Unlock()
	d.reshape.RUnlock()
	if found && err == nil {
		d.maybeRebalance()
	}
	return found, err
}

// maybeSyncShard counts one write against the shard's group-commit
// batch. Callers hold sh.mu.
func (d *DurableSharded[K, V]) maybeSyncShard(sh *dshard[K, V]) error {
	sh.unsynced++
	if sh.unsynced < int(d.syncEvery.Load()) {
		return nil
	}
	return d.syncShardLocked(sh)
}

// syncShardLocked flushes one shard's WAL barrier, poisoning the whole
// facade on failure — a failed fsync leaves the durability of everything
// appended on this shard since the previous barrier unknown, and once
// one log is in that state no write anywhere can be honestly
// acknowledged. Callers hold sh.mu.
func (d *DurableSharded[K, V]) syncShardLocked(sh *dshard[K, V]) error {
	if sh.unsynced == 0 {
		return nil
	}
	if err := sh.log.Sync(); err != nil {
		d.poison(err)
		return err
	}
	sh.unsynced = 0
	return nil
}

// SetSyncEvery sets the per-shard group-commit batch: each shard's WAL is
// fsynced every n of that shard's writes instead of every write. Panics
// if n < 1.
func (d *DurableSharded[K, V]) SetSyncEvery(n int) {
	if n < 1 {
		panic("fitingtree: SetSyncEvery batch must be >= 1")
	}
	d.syncEvery.Store(int64(n))
}

// Sync is the explicit cross-shard group-commit barrier: after it
// returns nil, every write accepted so far — on every shard — survives a
// crash. Shards sync in parallel.
func (d *DurableSharded[K, V]) Sync() error {
	d.reshape.RLock()
	defer d.reshape.RUnlock()
	ss := d.set.Load()
	errs := make([]error, len(ss.shards))
	var wg sync.WaitGroup
	for i, sh := range ss.shards {
		wg.Add(1)
		go func(i int, sh *dshard[K, V]) {
			defer wg.Done()
			sh.mu.Lock()
			errs[i] = d.syncShardLocked(sh)
			sh.mu.Unlock()
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint persists one atomic cross-shard cut and truncates every
// shard's WAL up to its covered LSN. Per-shard chunk writes are
// incremental (only chunks dirtied since the previous cut are
// serialized); the whole cut commits with one superblock write. Safe to
// call concurrently with reads and writes; checkpoints and rebalances
// serialize. A poisoned facade fails fast without cutting, like Close:
// after a failed rebalance in particular, committing a new epoch under
// the old generation would strand the durable state between the intent
// record and the migration it describes.
func (d *DurableSharded[K, V]) Checkpoint() (ShardedCheckpointStats, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	if err := d.failedErr(); err != nil {
		return ShardedCheckpointStats{}, err
	}
	stats, err := d.checkpointLocked(d.set.Load(), d.generation)
	d.ckptErr = err
	return stats, err
}

// checkpointLocked commits one cut of set under generation. Callers hold
// d.ckptMu; set must be the published set (or, during a rebalance, the
// set about to be published while writers are excluded).
func (d *DurableSharded[K, V]) checkpointLocked(set *dshardSet[K, V], generation uint64) (ShardedCheckpointStats, error) {
	stats := ShardedCheckpointStats{Shards: len(set.shards)}

	// Capture each shard's (LSN cursor, state) under its writer mutex:
	// the state then contains exactly the ops with LSN < cut. The cuts
	// need no cross-shard synchronization — each shard's WAL tail covers
	// everything past its own cut — only their commit must be atomic,
	// which the single manifest flip below provides.
	cuts := make([]uint64, len(set.shards))
	states := make([]*ostate[K, V], len(set.shards))
	for i, sh := range set.shards {
		sh.mu.Lock()
		cuts[i] = sh.log.NextLSN()
		states[i] = sh.opt.state.Load()
		sh.mu.Unlock()
	}

	newHeads := make(map[uint64]pager.PageID, len(d.heads))
	mshards := make([]core.ShardCut, len(set.shards))
	for i, st := range states {
		tree := foldState(st)
		chunks, written, reused, err := writeDirtyChunks(d.store, d.snap, tree, d.heads, newHeads)
		if err != nil {
			d.store.Rollback()
			return stats, err
		}
		stats.ChunksWritten += written
		stats.ChunksReused += reused
		cs := make([]uint64, len(chunks))
		for j, id := range chunks {
			cs[j] = uint64(id)
		}
		mshards[i] = core.ShardCut{ReplayFrom: cuts[i], Chunks: cs}
	}
	if err := freeDeadHeads(d.store, d.heads, newHeads); err != nil {
		d.store.Rollback()
		return stats, err
	}
	blob := core.EncodeShardManifest(core.ShardManifest{
		Generation: generation,
		Options:    d.opts,
		Fences:     encodeFences(&d.codec, set.bounds),
		Shards:     mshards,
	})
	mHead, err := d.store.Put(blob)
	if err != nil {
		d.store.Rollback()
		return stats, err
	}
	if d.haveCkpt {
		if err := d.store.Free(d.manifestHead); err != nil {
			d.store.Rollback()
			return stats, err
		}
	}
	// The commit point: one checksummed superblock write + sync. Before
	// it, a crash recovers the previous cut (and previous generation);
	// after it, this one. Per-shard replay cursors live in the manifest,
	// so the superblock's own cursor is unused here.
	if err := pager.WriteSuper(d.store.Device(), pager.Super{
		Epoch:    d.epoch + 1,
		Manifest: mHead,
	}); err != nil {
		d.store.Rollback()
		// The write may have landed before the failure surfaced (a torn
		// sync), so epoch+1's parity slot may now hold a valid superblock
		// naming this rolled-back cut. Advance by two, not one: the
		// in-memory epoch then never lags anything on disk (the next
		// commit always outranks a landed epoch+1), and — same parity —
		// the next attempt rewrites the slot this failed write targeted,
		// never the slot holding the last COMMITTED epoch, which must
		// stay intact until a newer commit is durable (a torn retry over
		// it would leave no superblock covering the already-truncated WAL
		// prefixes). A landed epoch+1 stays a valid fallback meanwhile:
		// Rollback keeps this attempt's pages off the freelist, so
		// nothing rewrites them until a later recovery's RebuildFree.
		// Epochs may skip; every reader only ranks them.
		d.epoch += 2
		return stats, err
	}
	d.store.Commit()
	d.epoch++
	d.heads = newHeads
	d.manifestHead = mHead
	d.haveCkpt = true
	stats.Epoch = d.epoch

	// Drop every shard's covered WAL prefix. Failure is benign: the
	// records stay until the next cut, and replay skips them via the
	// manifest's cursors.
	for i, sh := range set.shards {
		if cuts[i] == 0 {
			continue
		}
		sh.mu.Lock()
		err := sh.log.Truncate(cuts[i] - 1)
		sh.mu.Unlock()
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// Rebalance recomputes fences from the merged data and atomically
// migrates to a new shard generation: intent record first, then fresh
// logs and shards on the side, then one manifest flip that commits the
// move. Writers are excluded for the duration; readers keep the old set.
// An error leaves the old generation live in memory but poisons the
// facade (the migration's durable state is ambiguous until the next
// open, which discards it wholesale).
func (d *DurableSharded[K, V]) Rebalance() error {
	d.reshape.Lock()
	defer d.reshape.Unlock()
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	if err := d.failedErr(); err != nil {
		return err
	}
	err := d.rebalanceLocked()
	if err != nil {
		d.poison(err)
	}
	return err
}

// rebalanceLocked runs one migration. Callers hold reshape (exclusive)
// and ckptMu.
func (d *DurableSharded[K, V]) rebalanceLocked() error {
	ss := d.set.Load()
	// Quiesce the outgoing shards' flush pipelines, then collect their
	// merged content (same motion as Sharded.rebalance; shards drain in
	// parallel and retired sets stay clean for readers holding them).
	forEachShardParallel(ss.opts, func(sh *Optimistic[K, V]) { sh.Close() })
	states := make([]*ostate[K, V], len(ss.shards))
	for i, sh := range ss.shards {
		states[i] = sh.opt.state.Load()
	}
	keys, vals := collectStates(states)
	starts, weights, err := core.SegmentBoundsOf(keys, d.opts)
	if err != nil {
		// Unreachable: d.opts was normalized at construction.
		panic(fmt.Sprintf("fitingtree: rebalance segmentation: %v", err))
	}
	bounds := balancedFences(keys, starts, weights, d.want)
	newGen := d.generation + 1

	// 1. Intent first: once it is durable, a crash anywhere in the
	// migration resolves deterministically at the next open — discarded
	// while the committed manifest still carries the old generation,
	// replayed (and swept) once the flip below has landed.
	intent := core.EncodeRebalanceIntent(core.RebalanceIntent{
		SourceEpoch: d.epoch,
		Generation:  newGen,
		OldFences:   encodeFences(&d.codec, ss.bounds),
		NewFences:   encodeFences(&d.codec, bounds),
	})
	if err := writeFileAtomic(d.fsys, IntentName, intent); err != nil {
		return err
	}

	// 2. Build the new generation on the side: fresh empty logs (their
	// names carry newGen, so nothing can replay them through old fences)
	// and freshly bulk-loaded shards. The old generation's durable state
	// is untouched throughout.
	logs, err := createShardLogs(d.fsys, newGen, len(bounds)+1)
	if err != nil {
		return err
	}
	set, err := d.newShardSet(keys, vals, bounds, logs)
	if err != nil {
		closeLogs(logs)
		return err
	}

	// 3. The commit point: a full cut of the new shards (their trees are
	// freshly built, so every chunk is written; the collected content
	// already includes everything the old logs held) under the new
	// generation, flipped in with epoch+1. Crash before the flip:
	// recovery discards the migration; after: recovery loads it — either
	// way one coherent whole.
	if _, err := d.checkpointLocked(set, newGen); err != nil {
		closeShardLogs(set.shards)
		return err
	}
	d.set.Store(set)
	oldGen := d.generation
	d.generation = newGen
	d.rebalancedAt.Store(int64(len(keys)))

	// 4. Sweep: the old generation's logs and the intent are garbage.
	// Best effort — a failure here leaves files the next open removes
	// via the intent resolution (or ignores via generation-named opens).
	for i, sh := range ss.shards {
		sh.log.Close()
		d.fsys.Remove(ShardWALName(oldGen, i))
	}
	d.fsys.Remove(IntentName)
	return nil
}

// maybeRebalance runs the skew check on one write in shardSkewCheckEvery
// and triggers a migration when it reports drift. Unlike Sharded's, a
// durable rebalance writes a full checkpoint, so the check re-verifies
// under the exclusive lock before committing to the work.
func (d *DurableSharded[K, V]) maybeRebalance() {
	if d.writes.Add(1)%shardSkewCheckEvery != 0 {
		return
	}
	ss := d.set.Load()
	if !shardsNeedRebalance(ss.opts, nil, d.want, math.Float64frombits(d.factor.Load()),
		int(d.rebalancedAt.Load())) {
		return
	}
	d.reshape.Lock()
	defer d.reshape.Unlock()
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	if d.failedErr() != nil {
		return
	}
	ss = d.set.Load()
	if !shardsNeedRebalance(ss.opts, nil, d.want, math.Float64frombits(d.factor.Load()),
		int(d.rebalancedAt.Load())) {
		return // another writer migrated between the check and the lock
	}
	if err := d.rebalanceLocked(); err != nil {
		d.poison(err) // surfaced via Err and every later write
	}
}

// SetRebalanceFactor sets the skew threshold (see
// Sharded.SetRebalanceFactor); +Inf disables automatic migrations.
func (d *DurableSharded[K, V]) SetRebalanceFactor(factor float64) {
	if factor != factor || factor < minRebalanceFactor {
		factor = minRebalanceFactor
	}
	d.factor.Store(math.Float64bits(factor))
}

// SetAutoCheckpoint starts or stops the background checkpointer, which
// commits a cross-shard cut after any shard's flush publication.
// Disabling waits for an in-flight checkpoint, so afterwards cuts happen
// only via explicit Checkpoint calls — deterministic, which is what the
// crash-matrix tests need.
func (d *DurableSharded[K, V]) SetAutoCheckpoint(on bool) {
	d.loopMu.Lock()
	defer d.loopMu.Unlock()
	if on == (d.loopStop != nil) {
		return
	}
	if on {
		stop := make(chan struct{})
		d.loopStop = stop
		d.wg.Add(1)
		go d.checkpointLoop(stop)
		return
	}
	close(d.loopStop)
	d.loopStop = nil
	d.wg.Wait()
}

// checkpointLoop runs cuts on flush triggers until stopped. Errors are
// retained for Err; a storage fault must not take down the in-memory
// index.
func (d *DurableSharded[K, V]) checkpointLoop(stop chan struct{}) {
	defer d.wg.Done()
	for {
		select {
		case <-stop:
			return
		case <-d.trigger:
			d.Checkpoint()
		}
	}
}

// Err returns the facade's sticky health: the write-path poison when any
// shard's WAL append or sync (or a rebalance) has failed — every write
// since has failed fast — else the most recent checkpoint error (nil
// after a successful cut).
func (d *DurableSharded[K, V]) Err() error {
	if err := d.failedErr(); err != nil {
		return err
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	return d.ckptErr
}

// Close drains every shard's flush pipeline, commits a final cut, and
// releases the log handles. A poisoned facade skips the cut — its last
// committed epoch plus the synced log prefixes already hold everything
// acknowledged — and returns the poison error; Close itself never makes
// things worse. The facade must not be used afterwards.
func (d *DurableSharded[K, V]) Close() error {
	d.SetAutoCheckpoint(false)
	d.reshape.Lock()
	defer d.reshape.Unlock()
	ss := d.set.Load()
	for _, sh := range ss.shards {
		sh.opt.SetFlushHook(nil)
	}
	forEachShardParallel(ss.opts, func(sh *Optimistic[K, V]) { sh.Close() })
	cerr := d.failedErr()
	if cerr == nil {
		d.ckptMu.Lock()
		_, cerr = d.checkpointLocked(ss, d.generation)
		d.ckptErr = cerr
		d.ckptMu.Unlock()
	}
	for _, sh := range ss.shards {
		sh.mu.Lock()
		err := sh.log.Close()
		sh.mu.Unlock()
		if cerr == nil {
			cerr = err
		}
	}
	return cerr
}

// WALRecords returns the total number of records across every shard's
// log — the replay tail the next recovery would process (plus any
// not-yet-truncated checkpointed prefix).
func (d *DurableSharded[K, V]) WALRecords() int {
	d.reshape.RLock()
	defer d.reshape.RUnlock()
	n := 0
	for _, sh := range d.set.Load().shards {
		sh.mu.Lock()
		n += sh.log.Len()
		sh.mu.Unlock()
	}
	return n
}

// WALOpenStats returns what recovery found when it opened each shard's
// log (in shard order of the opened generation): replayed record counts
// and, for cut files, whether the discarded tail looked like a torn
// append or like corruption. Empty for a facade built by
// CreateDurableSharded.
func (d *DurableSharded[K, V]) WALOpenStats() []wal.OpenStats {
	return append([]wal.OpenStats(nil), d.walStats...)
}

// Generation returns the current fence generation (increments with every
// committed rebalance).
func (d *DurableSharded[K, V]) Generation() uint64 {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	return d.generation
}

// Epoch returns the checkpoint epoch sequence's current position (0
// before the first cut). It normally reads as the last committed cut's
// epoch, but failed commit attempts advance it too (see
// checkpointLocked), so the sequence may skip values.
func (d *DurableSharded[K, V]) Epoch() uint64 {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	return d.epoch
}

// Shards returns the current number of shards.
func (d *DurableSharded[K, V]) Shards() int { return len(d.set.Load().shards) }

// Bounds returns a copy of the current fence keys (len Shards()-1,
// strictly increasing): shard i owns keys in [bounds[i-1], bounds[i]).
func (d *DurableSharded[K, V]) Bounds() []K {
	return append([]K(nil), d.set.Load().bounds...)
}

// ShardSizes returns the current per-shard element counts in fence
// order.
func (d *DurableSharded[K, V]) ShardSizes() []int {
	ss := d.set.Load()
	sizes := make([]int, len(ss.opts))
	for i, sh := range ss.opts {
		sizes[i] = sh.Len()
	}
	return sizes
}

// Lookup returns a value stored under k; latch-free (see
// Sharded.Lookup).
func (d *DurableSharded[K, V]) Lookup(k K) (V, bool) {
	ss := d.set.Load()
	return ss.shardFor(k).opt.Lookup(k)
}

// Contains reports whether k is present; latch-free.
func (d *DurableSharded[K, V]) Contains(k K) bool {
	_, ok := d.Lookup(k)
	return ok
}

// Each calls fn for every element with key exactly k against the owning
// shard's consistent snapshot; latch-free.
func (d *DurableSharded[K, V]) Each(k K, fn func(v V) bool) {
	ss := d.set.Load()
	ss.shardFor(k).opt.Each(k, fn)
}

// AscendRange scans lo <= key <= hi in ascending key order across
// shards; latch-free (see Sharded.AscendRange).
func (d *DurableSharded[K, V]) AscendRange(lo, hi K, fn func(k K, v V) bool) {
	ss := d.set.Load()
	ascendSharded(ss.bounds, ss.opts, lo, hi, fn)
}

// LookupBatch resolves keys by scatter-gather across shard snapshots;
// latch-free (see Sharded.LookupBatch).
func (d *DurableSharded[K, V]) LookupBatch(keys []K) ([]V, []bool) {
	ss := d.set.Load()
	return lookupBatchSharded(ss.bounds, ss.opts, keys)
}

// Len returns the total number of stored elements across all shards,
// including pending inserts.
func (d *DurableSharded[K, V]) Len() int {
	n := 0
	for _, sh := range d.set.Load().opts {
		n += sh.Len()
	}
	return n
}

// Stats aggregates the shards' statistics (see Sharded.Stats).
func (d *DurableSharded[K, V]) Stats() Stats {
	return aggregateShardStats(d.set.Load().opts)
}

// SetFlushEvery sets the per-shard delta flush threshold; shards created
// by later rebalances inherit the value. Panics if n < 1.
func (d *DurableSharded[K, V]) SetFlushEvery(n int) {
	if n < 1 {
		panic("fitingtree: SetFlushEvery threshold must be >= 1")
	}
	d.reshape.RLock()
	defer d.reshape.RUnlock()
	d.flushAt.Store(int64(n))
	for _, sh := range d.set.Load().opts {
		sh.SetFlushEvery(n)
	}
}

// SetMaxFrozenLayers sets the per-shard frozen merge ladder depth;
// shards created by later rebalances inherit the value. Panics if n < 1.
func (d *DurableSharded[K, V]) SetMaxFrozenLayers(n int) {
	if n < 1 {
		panic("fitingtree: SetMaxFrozenLayers depth must be >= 1")
	}
	d.reshape.RLock()
	defer d.reshape.RUnlock()
	d.maxFrozen.Store(int64(n))
	for _, sh := range d.set.Load().opts {
		sh.SetMaxFrozenLayers(n)
	}
}

// SetAsyncFlush enables or disables the asynchronous flush pipeline on
// every shard; shards created by later rebalances inherit the value.
func (d *DurableSharded[K, V]) SetAsyncFlush(enabled bool) {
	d.reshape.RLock()
	defer d.reshape.RUnlock()
	d.asyncOff.Store(!enabled)
	for _, sh := range d.set.Load().opts {
		sh.SetAsyncFlush(enabled)
	}
}

// SetAutoTune enables or disables cost-model-driven self-tuning on every
// shard (see Optimistic.SetAutoTune; disabled by default). Retuned
// layouts persist: checkpoints record each page's error bound, so
// recovery reassembles the tuned layout exactly. Shards created by later
// rebalances inherit the value.
func (d *DurableSharded[K, V]) SetAutoTune(enabled bool) {
	d.reshape.RLock()
	defer d.reshape.RUnlock()
	d.autoTuneOn.Store(enabled)
	for _, sh := range d.set.Load().opts {
		sh.SetAutoTune(enabled)
	}
}

// SyncFlush synchronously folds every shard's pending writes into its
// base tree; shards flush in parallel. Durability is unaffected (the
// logs already hold the deltas); it makes the next Checkpoint's
// dirty-chunk set exactly the folds' published one.
func (d *DurableSharded[K, V]) SyncFlush() {
	d.reshape.RLock()
	defer d.reshape.RUnlock()
	forEachShardParallel(d.set.Load().opts, func(sh *Optimistic[K, V]) { sh.SyncFlush() })
}
