package fitingtree

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshotVersion guards the on-stream format.
const snapshotVersion = 1

// snapshotHeader is the gob-encoded preamble of an encoded tree.
type snapshotHeader struct {
	Version  int
	Elements int
	Options  Options
}

// encodeSnapshot writes the common stream format: a header followed by the
// elements in key order.
func encodeSnapshot[K Key, V any](w io.Writer, opts Options, keys []K, vals []V) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(snapshotHeader{
		Version:  snapshotVersion,
		Elements: len(keys),
		Options:  opts,
	}); err != nil {
		return fmt.Errorf("fitingtree: encode header: %w", err)
	}
	if err := enc.Encode(keys); err != nil {
		return fmt.Errorf("fitingtree: encode keys: %w", err)
	}
	if err := enc.Encode(vals); err != nil {
		return fmt.Errorf("fitingtree: encode values: %w", err)
	}
	return nil
}

// Encode writes a snapshot of the tree to w: its options followed by every
// element in key order. Buffered inserts are folded into the stream, so
// decoding re-bulk-loads a clean, fully segmented tree with the same
// contents and options.
func Encode[K Key, V any](t *Tree[K, V], w io.Writer) error {
	keys := make([]K, 0, t.Len())
	vals := make([]V, 0, t.Len())
	t.Ascend(func(k K, v V) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return true
	})
	return encodeSnapshot(w, t.Options(), keys, vals)
}

// EncodeOptimistic writes a snapshot of the facade's currently published
// state to w. A state is an immutable value, so one atomic load yields a
// consistent cut of the whole index without blocking writers or readers:
// writes published after the call starts are simply not part of the
// snapshot. Pending delta writes (inserts and tombstones, in the frozen
// delta of an in-flight background flush as well as the active delta) are
// folded into the stream, and the format matches Encode's, so the result
// decodes with either Decode (as a bare Tree) or DecodeOptimistic. The
// fold at encode time applies the same layering the background flusher
// applies physically, so encoding mid-flush yields bytes identical to
// encoding after a SyncFlush.
func EncodeOptimistic[K Key, V any](o *Optimistic[K, V], w io.Writer) error {
	st := o.state.Load()
	keys, vals := collectStates([]*ostate[K, V]{st})
	return encodeSnapshot(w, st.tree.Options(), keys, vals)
}

// bounds returns the smallest and largest key across the base tree and
// every pending delta layer, reporting false when the state is empty.
func (st *ostate[K, V]) bounds() (lo, hi K, ok bool) {
	if st.tree.Len() > 0 {
		lo, _, _ = st.tree.Min()
		hi, _, _ = st.tree.Max()
		ok = true
	}
	for _, d := range append(append([]*odelta[K, V]{}, st.frozen...), st.delta) {
		if d == nil || len(d.keys) == 0 {
			continue
		}
		if !ok || d.keys[0] < lo {
			lo = d.keys[0]
		}
		if !ok || d.keys[len(d.keys)-1] > hi {
			hi = d.keys[len(d.keys)-1]
		}
		ok = true
	}
	return lo, hi, ok
}

// Decode reads a snapshot produced by Encode or EncodeOptimistic and
// bulk-loads a tree from it. The stream is treated as untrusted: the
// header's element count and version are validated before any slice is
// decoded, each slice's length is checked against the header as soon as it
// arrives, and the final bulk load re-verifies key ordering and rejects
// NaN keys — a truncated or bit-flipped snapshot yields an error, never a
// silently corrupt tree.
func Decode[K Key, V any](r io.Reader) (*Tree[K, V], error) {
	dec := gob.NewDecoder(r)
	var h snapshotHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("fitingtree: decode header: %w", err)
	}
	if h.Version != snapshotVersion {
		return nil, fmt.Errorf("fitingtree: unsupported snapshot version %d", h.Version)
	}
	if h.Elements < 0 {
		return nil, fmt.Errorf("fitingtree: snapshot header claims %d elements", h.Elements)
	}
	// Element counts drive downstream allocation (pages, router), so
	// cross-check each slice against the header the moment it decodes; gob
	// itself bounds a slice's claimed length by the message size, so a
	// corrupt count cannot drive an outsized allocation either.
	var keys []K
	if err := dec.Decode(&keys); err != nil {
		return nil, fmt.Errorf("fitingtree: decode keys: %w", err)
	}
	if len(keys) != h.Elements {
		return nil, fmt.Errorf("fitingtree: snapshot holds %d keys, header says %d",
			len(keys), h.Elements)
	}
	var vals []V
	if err := dec.Decode(&vals); err != nil {
		return nil, fmt.Errorf("fitingtree: decode values: %w", err)
	}
	if len(vals) != h.Elements {
		return nil, fmt.Errorf("fitingtree: snapshot holds %d values, header says %d",
			len(vals), h.Elements)
	}
	// BulkLoad re-validates the options and rejects NaN or out-of-order
	// keys, so a stream with a corrupted body cannot reach routing.
	t, err := BulkLoad(keys, vals, h.Options)
	if err != nil {
		return nil, fmt.Errorf("fitingtree: rebuild: %w", err)
	}
	return t, nil
}

// DecodeOptimistic reads a snapshot produced by Encode or EncodeOptimistic
// and returns a fresh Optimistic facade over the rebuilt tree, with an
// empty delta.
func DecodeOptimistic[K Key, V any](r io.Reader) (*Optimistic[K, V], error) {
	t, err := Decode[K, V](r)
	if err != nil {
		return nil, err
	}
	return NewOptimistic(t), nil
}

// EncodeSharded writes a snapshot of the whole sharded facade to w. The
// cut is coherent across shards: writers are excluded only while one state
// pointer per shard is loaded (O(shards) atomic loads), then the immutable
// states are encoded without blocking anyone. Shards partition the key
// space, so concatenating them in fence order yields the same
// key-ordered stream Encode produces — pending per-shard deltas folded in
// — and the result decodes with Decode, DecodeOptimistic, or
// DecodeSharded.
func EncodeSharded[K Key, V any](s *Sharded[K, V], w io.Writer) error {
	ss, states := s.snapshotAll()
	keys, vals := collectStates(states)
	return encodeSnapshot(w, ss.opts, keys, vals)
}

// DecodeSharded reads a snapshot produced by any of the encoders and
// returns a fresh sharded facade over the rebuilt data, re-partitioned
// into at most the requested number of shards with empty deltas.
func DecodeSharded[K Key, V any](r io.Reader, shards int) (*Sharded[K, V], error) {
	t, err := Decode[K, V](r)
	if err != nil {
		return nil, err
	}
	return NewSharded(t, shards)
}
