package fitingtree

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshotVersion guards the on-stream format.
const snapshotVersion = 1

// snapshotHeader is the gob-encoded preamble of an encoded tree.
type snapshotHeader struct {
	Version  int
	Elements int
	Options  Options
}

// Encode writes a snapshot of the tree to w: its options followed by every
// element in key order. Buffered inserts are folded into the stream, so
// decoding re-bulk-loads a clean, fully segmented tree with the same
// contents and options.
func Encode[K Key, V any](t *Tree[K, V], w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(snapshotHeader{
		Version:  snapshotVersion,
		Elements: t.Len(),
		Options:  t.Options(),
	}); err != nil {
		return fmt.Errorf("fitingtree: encode header: %w", err)
	}
	keys := make([]K, 0, t.Len())
	vals := make([]V, 0, t.Len())
	t.Ascend(func(k K, v V) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return true
	})
	if err := enc.Encode(keys); err != nil {
		return fmt.Errorf("fitingtree: encode keys: %w", err)
	}
	if err := enc.Encode(vals); err != nil {
		return fmt.Errorf("fitingtree: encode values: %w", err)
	}
	return nil
}

// Decode reads a snapshot produced by Encode and bulk-loads a tree from
// it.
func Decode[K Key, V any](r io.Reader) (*Tree[K, V], error) {
	dec := gob.NewDecoder(r)
	var h snapshotHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("fitingtree: decode header: %w", err)
	}
	if h.Version != snapshotVersion {
		return nil, fmt.Errorf("fitingtree: unsupported snapshot version %d", h.Version)
	}
	var keys []K
	var vals []V
	if err := dec.Decode(&keys); err != nil {
		return nil, fmt.Errorf("fitingtree: decode keys: %w", err)
	}
	if err := dec.Decode(&vals); err != nil {
		return nil, fmt.Errorf("fitingtree: decode values: %w", err)
	}
	if len(keys) != h.Elements || len(vals) != h.Elements {
		return nil, fmt.Errorf("fitingtree: snapshot holds %d/%d elements, header says %d",
			len(keys), len(vals), h.Elements)
	}
	t, err := BulkLoad(keys, vals, h.Options)
	if err != nil {
		return nil, fmt.Errorf("fitingtree: rebuild: %w", err)
	}
	return t, nil
}
