package fitingtree

// Crash-consistency tests for the durability layer with the frozen merge
// ladder engaged: the PR 6 matrices ran the facade in inline-flush mode,
// so no in-memory reorganization was ever in flight at a fault site. Here
// the worker slot is held and the compaction scheduler is driven by hand
// between scripted ops, so every WAL and device fault lands while the
// ladder holds stacked layers that compactions keep rewriting — none of
// which must ever matter to recovery, because compactions are
// content-preserving and only acknowledged WAL records are durable state.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"fitingtree/internal/pager"
	"fitingtree/internal/wal"
)

// ladderDurable opens a Durable configured so ladder states pile up
// deterministically: async flush with the worker slot held, a small trip
// threshold, depth 3.
func ladderDurable(t testing.TB, fsys wal.FS, dev pager.Device) *Durable[int, int] {
	t.Helper()
	d, err := OpenDurable[int, int](fsys, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.SetAutoCheckpoint(false)
	d.SetAsyncFlush(true)
	d.SetFlushEvery(4)
	d.SetMaxFrozenLayers(3)
	d.opt.flusher.Store(true) // the script is the scheduler
	return d
}

// pumpLadder runs compaction-scheduler rounds by hand: one round whenever
// at least two layers are stacked (keeping a compaction in flight across
// the script), then however many more it takes to bring the ladder back
// below capacity so the next trip pushes instead of absorbing. Returns
// the number of rounds run.
func pumpLadder(o *Optimistic[int, int]) int {
	rounds := 0
	step := func() bool {
		st := o.state.Load()
		if len(st.frozen) < 2 {
			return false
		}
		if i := compactPick(st.frozen, o.flushAt.Load()); i >= 0 {
			o.compactPair(st, i)
		} else {
			o.foldBottom(st)
		}
		rounds++
		return true
	}
	step()
	for len(o.state.Load().frozen) >= int(o.maxFrozen.Load()) {
		if !step() {
			break
		}
	}
	return rounds
}

// runLadderScript is runScript with a scheduler pump before every op, so
// fault sites interleave with layer pushes, compactions and folds.
func runLadderScript(d *Durable[int, int], ops []dOp, ckptAt map[int]bool) (acked int, states []*dmodel) {
	m := &dmodel{}
	states = append(states, m.clone())
	for i, op := range ops {
		pumpLadder(d.opt)
		if ckptAt[i] {
			d.Checkpoint() // folds the whole ladder off-lock for the snapshot
		}
		var err error
		if op.del {
			_, err = d.Delete(op.k)
		} else {
			err = d.Insert(op.k, op.v)
		}
		if op.del {
			m.delete(op.k)
		} else {
			m.insert(op.k, op.v)
		}
		states = append(states, m.clone())
		if err != nil {
			return acked, states[:i+2]
		}
		acked = i + 1
	}
	return acked, states
}

// TestCrashMatrixWALLadder kills the WAL file system at every mutating
// operation while ladder compactions are in flight, then crashes away
// unsynced bytes and asserts prefix-consistent recovery with no
// acknowledged write lost.
func TestCrashMatrixWALLadder(t *testing.T) {
	ops, ckptAt := crashScript()

	probeMem := wal.NewMemFS()
	probeFS := wal.NewFaultFS(probeMem)
	d := ladderDurable(t, probeFS, pager.NewDisk())
	// Probe run mirroring runLadderScript, counting scheduler rounds to
	// prove the matrix really runs over in-flight compactions.
	rounds := 0
	for i, op := range ops {
		rounds += pumpLadder(d.opt)
		if ckptAt[i] {
			if _, err := d.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		var err error
		if op.del {
			_, err = d.Delete(op.k)
		} else {
			err = d.Insert(op.k, op.v)
		}
		if err != nil {
			t.Fatalf("probe op %d: %v", i, err)
		}
	}
	if rounds == 0 {
		t.Fatal("probe run never ran a compaction round: the matrix would be vacuous")
	}
	sites := probeFS.Ops()
	if sites < 2*len(ops) {
		t.Fatalf("probe counted only %d WAL fault sites", sites)
	}

	for trip := 0; trip < sites; trip++ {
		trip := trip
		t.Run(fmt.Sprintf("trip=%d", trip), func(t *testing.T) {
			mem := wal.NewMemFS()
			faulty := wal.NewFaultFS(mem)
			d := ladderDurable(t, faulty, pager.NewDisk())
			faulty.SetTrip(trip)
			acked, states := runLadderScript(d, ops, ckptAt)
			mem.Crash()
			verifyRecovery(t, "wal ladder crash", mem, devOf(d), acked, states)
		})
	}
}

// TestCrashMatrixCheckpointLadder kills the checkpoint device at every
// page write and sync while the ladder holds stacked layers — the
// checkpoint folds them off-lock for its snapshot, so a torn checkpoint
// must leave the previous superblock plus the intact WAL sufficient.
func TestCrashMatrixCheckpointLadder(t *testing.T) {
	ops, ckptAt := crashScript()

	probeDev := pager.NewFaultDevice(pager.NewDisk())
	d := ladderDurable(t, wal.NewMemFS(), probeDev)
	if acked, _ := runLadderScript(d, ops, ckptAt); acked != len(ops) {
		t.Fatalf("probe run acknowledged %d/%d ops", acked, len(ops))
	}
	sites := probeDev.Ops()
	if sites == 0 {
		t.Fatal("probe counted no device fault sites")
	}

	for trip := 0; trip < sites; trip++ {
		trip := trip
		t.Run(fmt.Sprintf("trip=%d", trip), func(t *testing.T) {
			mem := wal.NewMemFS()
			inner := pager.NewDisk()
			faulty := pager.NewFaultDevice(inner)
			d := ladderDurable(t, mem, faulty)
			faulty.SetTrip(trip)
			acked, states := runLadderScript(d, ops, ckptAt)
			mem.Crash()
			verifyRecovery(t, "ckpt ladder crash", mem, inner, acked, states)
		})
	}
}

// TestRecoveryBatchedReplay pins the replay restructure: a long
// checkpoint-free WAL tail must be folded into the base tree as one
// sorted batch, not replayed one record at a time. The recovered tree's
// own maintenance counters are the witness — a record-at-a-time replay
// scores one merge per record, the batched fold at most one
// re-segmentation pass per chunk.
func TestRecoveryBatchedReplay(t *testing.T) {
	mem := wal.NewMemFS()
	dev := pager.NewDisk()
	d, err := OpenDurable[int, int](mem, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.SetAutoCheckpoint(false)
	d.SetAsyncFlush(false)

	const records = 640
	m := &dmodel{}
	for i := 0; i < records; i++ {
		k := (i * 7) % 97 // heavy duplication across a small keyspace
		if i%5 == 4 {
			if _, err := d.Delete(k); err != nil {
				t.Fatal(err)
			}
			m.delete(k)
		} else {
			if err := d.Insert(k, k*31); err != nil { // same value per key: set equality
				t.Fatal(err)
			}
			m.insert(k, k*31)
		}
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	mem.Crash() // no checkpoint ever ran: recovery is pure tail replay

	rec, err := OpenDurable[int, int](mem, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec.SetAutoCheckpoint(false)
	if !pairsEqual(dump(rec), m.pairs) {
		t.Fatal("batched replay recovered the wrong content")
	}
	tree := rec.opt.state.Load().tree
	c := tree.Counters()
	chunks := len(tree.ChunkIDs())
	if c.Merges > chunks {
		t.Fatalf("replay of %d records cost %d merges over %d chunks: tail not batched", records, c.Merges, chunks)
	}
	if c.Inserts != 0 && c.Inserts < 97-20 {
		t.Fatalf("replayed tree counters implausible: %+v", c)
	}
}

// TestDurableLadderCheckpointStress races a single durable writer against
// the live background compactor, the auto-checkpointer, and concurrent
// readers (run with -race), then closes and reopens: the recovered
// content must equal the model exactly — every acknowledged write
// survives whatever interleaving of pushes, compactions, folds and
// checkpoints occurred.
func TestDurableLadderCheckpointStress(t *testing.T) {
	mem := wal.NewMemFS()
	dev := pager.NewDisk()
	d, err := OpenDurable[int, int](mem, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.SetAsyncFlush(true)
	d.SetMaxFrozenLayers(4)
	d.SetFlushEvery(16)
	d.SetSyncEvery(8)
	d.SetAutoCheckpoint(true)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		rng := rand.New(rand.NewSource(3))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := rng.Intn(400)
			d.Lookup(k)
			d.Each(k, func(int) bool { return true })
			if rng.Intn(16) == 0 {
				d.AscendRange(0, 1<<30, func(int, int) bool { return true })
				d.Stats()
			}
		}
	}()

	m := &dmodel{}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 4000; i++ {
		k := rng.Intn(400)
		if rng.Intn(4) == 0 {
			if _, err := d.Delete(k); err != nil {
				t.Fatal(err)
			}
			m.delete(k)
		} else {
			if err := d.Insert(k, k*31); err != nil { // same value per key
				t.Fatal(err)
			}
			m.insert(k, k*31)
		}
	}
	close(stop)
	readers.Wait()
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(dump(d), m.pairs) {
		t.Fatal("live content diverged from the model")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := OpenDurable[int, int](mem, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec.SetAutoCheckpoint(false)
	if !pairsEqual(dump(rec), m.pairs) {
		t.Fatal("recovered content diverged from the model")
	}
}
