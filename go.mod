module fitingtree

go 1.24
