// Package fitingtree is a Go implementation of FITing-Tree, the data-aware
// approximate index structure of Galakatos, Markovitch, Binnig, Fonseca and
// Kraska (SIGMOD 2019; preprint title "A-Tree").
//
// # What it is
//
// A FITing-Tree indexes a sorted attribute by approximating its key ->
// position mapping with piece-wise linear segments whose maximal
// interpolation error is bounded by a tunable threshold E. Only the
// segments' boundaries (start key, slope, page pointer) are organized in a
// B+ tree, so the index size is governed by how linear the data is rather
// than by how many keys it has — often orders of magnitude smaller than a
// dense B+ tree at comparable lookup latency. Lookups search at most a
// 2E+1-element window after interpolating; inserts land in per-segment
// sorted buffers that are merged and re-segmented when full, preserving the
// error guarantee under updates.
//
// # Quick start
//
//	keys := []uint64{ ... sorted ... }
//	vals := []string{ ... parallel ... }
//	t, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 100})
//	v, ok := t.Lookup(keys[42])
//	t.Insert(12345, "fresh")
//	t.AscendRange(1000, 2000, func(k uint64, v string) bool { ...; return true })
//
// Choose the error threshold with the Section 6 cost model via Tune: given
// either a lookup latency target (in ns) or an index storage budget (in
// bytes), it picks the threshold for you from samples of your data.
//
// For an attribute of an unsorted heap table, build a non-clustered index
// with BuildSecondary; it stores sorted (key, row id) postings subject to
// the same error-bounded segmentation.
//
// # Concurrency and snapshots
//
// Three facades wrap a Tree for shared use. NewConcurrent is a plain
// RWMutex reader/writer facade. NewOptimistic provides latch-free reads
// under a single writer: every write publishes an immutable state (base
// tree + pending-write delta) through an atomic pointer, and a full delta
// is flushed with a page-granular copy-on-write merge that rebuilds only
// the pages the delta touches. NewSharded range-partitions the key space
// over several Optimistic shards behind a distribution-aware partitioner,
// so writers on different shards proceed concurrently while reads stay
// latch-free; skewed shards are rebalanced automatically. Use
// Encode/Decode to snapshot a tree to and from a stream,
// EncodeOptimistic/DecodeOptimistic to snapshot a live Optimistic facade
// without blocking its writers, and EncodeSharded/DecodeSharded for a
// coherent cut across all shards in the same stream format.
//
// docs/ARCHITECTURE.md in the repository describes the layer map, the
// snapshot+delta read protocol, the copy-on-write flush, and the
// invariants in detail.
package fitingtree

import (
	"fitingtree/internal/core"
	"fitingtree/internal/num"
)

// Key is the constraint on indexable key types: every ordered numeric Go
// type (integers of any width and floats).
type Key = num.Key

// Options configures a FITing-Tree; see core.Options for field docs. The
// zero value selects Error 100, BufferSize Error/2 is chosen with
// BufferSize: -1; BufferSize 0 disables buffering.
type Options = core.Options

// DefaultError is the error threshold used when Options.Error is zero.
const DefaultError = core.DefaultError

// SearchStrategy selects the in-segment search algorithm (Section 4.1.2).
type SearchStrategy = core.SearchStrategy

// In-segment search strategies.
const (
	SearchBinary      = core.SearchBinary      // binary search of the 2E+1 window (default)
	SearchLinear      = core.SearchLinear      // outward scan from the prediction; wins at tiny E
	SearchExponential = core.SearchExponential // galloping bracket + binary search
)

// RouterKind selects the structure organizing segment routing keys
// (Section 2.2 sketches swapping the inner B+ tree for a read-optimized
// structure).
type RouterKind = core.RouterKind

// Segment routers.
const (
	RouterBTree    = core.RouterBTree    // B+ tree (default; the paper's design)
	RouterImplicit = core.RouterImplicit // Eytzinger implicit layout; read-optimized
)

// Tree is a clustered FITing-Tree index from K to V. Build one with
// BulkLoad; an empty tree from BulkLoad(nil, nil, opts) accepts inserts.
// Not safe for concurrent use — see Concurrent.
type Tree[K Key, V any] = core.Tree[K, V]

// Stats describes a tree's size and shape; IndexSize follows the paper's
// byte accounting (inner tree + 24 bytes per segment).
type Stats = core.Stats

// Counters reports maintenance activity (inserts, merges, pages created).
type Counters = core.Counters

// RegionStat describes one self-tuner region: its per-region error
// threshold and chunk-size target plus the sampled load that produced
// them. Reported by Stats.Regions and by Optimistic.Retune.
type RegionStat = core.RegionStat

// BulkLoad builds a FITing-Tree over sorted keys (duplicates allowed) and
// parallel values using the paper's one-pass segmentation. The input is
// copied.
func BulkLoad[K Key, V any](keys []K, vals []V, opts Options) (*Tree[K, V], error) {
	return core.BulkLoad(keys, vals, opts)
}
