package fitingtree

import (
	"fmt"
	"sort"

	"fitingtree/internal/core"
)

// Index is the backend contract a Secondary maintains its postings
// through: any key-ordered multimap with value-addressed deletes. All
// four tree flavors of this module satisfy it — the plain *Tree
// (single-goroutine, cheapest), *Concurrent (RWMutex), *Optimistic
// (lock-free reads, background flush), and *Sharded (parallel writers) —
// so an index can be maintained under whatever concurrency regime its
// heap table lives under. DeleteValue is what makes posting maintenance
// exact: among duplicate keys it removes the posting naming a specific
// row, never an arbitrary one.
type Index[K Key, V any] interface {
	Insert(k K, v V)
	DeleteValue(k K, v V) bool
	Each(k K, fn func(v V) bool)
	AscendRange(lo, hi K, fn func(k K, v V) bool)
	Len() int
}

// Secondary is a non-clustered FITing-Tree index over an attribute of an
// unsorted heap table (Section 2.2.1, Figure 3 of the paper).
//
// Unlike the clustered case, the indexed column is not sorted and may
// contain duplicates, so the index adds one level: sorted key pages that
// store (key, row) postings. That level is segmented with the same
// error-bounded algorithm as a clustered index — it is simply a
// FITing-Tree whose values are row identifiers. Row is the posting
// payload (a row id, an offset, a primary key…) and must be comparable:
// Delete removes the posting for one specific row among duplicates via
// the backend's DeleteValue.
//
// Concurrency follows the backend: over *Concurrent, *Optimistic, or
// *Sharded an index accepts Insert/Delete from concurrent writers while
// readers run Rows/RangeRows, with each posting mutation atomic exactly
// as the backend's writes are. The index itself adds no locking, so a
// heap mutation and its posting update are made transactional by
// whatever discipline guards the heap (see the secondary example).
type Secondary[K Key, Row comparable] struct {
	idx Index[K, Row]
}

// NewSecondary wraps a backend as a secondary index. The backend should
// be empty or already hold valid (key, row) postings; the caller keeps
// ownership of backend configuration (flush tuning, Close, …).
func NewSecondary[K Key, Row comparable](backend Index[K, Row]) *Secondary[K, Row] {
	return &Secondary[K, Row]{idx: backend}
}

// BuildSecondary creates an index over column eagerly: postings are
// sorted and bulk-loaded through the paper's one-pass segmentation into a
// plain *Tree backend, the cheapest build path. The posting stored for
// column[i] is row id i; the column is not modified. Wrap the result's
// Backend in a concurrent facade — or build into one directly with
// NewSecondary — when the index must take writes under concurrency.
func BuildSecondary[K Key](column []K, opts Options) (*Secondary[K, int], error) {
	type pair struct {
		k   K
		row int
	}
	pairs := make([]pair, len(column))
	for i, k := range column {
		pairs[i] = pair{k, i}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].k != pairs[j].k {
			return pairs[i].k < pairs[j].k
		}
		return pairs[i].row < pairs[j].row
	})
	keys := make([]K, len(pairs))
	rows := make([]int, len(pairs))
	for i, p := range pairs {
		keys[i] = p.k
		rows[i] = p.row
	}
	t, err := core.BulkLoad(keys, rows, opts)
	if err != nil {
		return nil, fmt.Errorf("secondary: %w", err)
	}
	return &Secondary[K, int]{idx: t}, nil
}

// Backend returns the index's underlying tree, for backend-specific
// operations (Stats, SyncFlush, Close, …) the Index contract omits.
func (s *Secondary[K, Row]) Backend() Index[K, Row] { return s.idx }

// Insert registers that row holds key k (e.g. after appending a row to
// the heap table).
func (s *Secondary[K, Row]) Insert(k K, row Row) { s.idx.Insert(k, row) }

// Delete removes the (k, row) posting, reporting whether it was found.
// Because several rows can hold the same key, the row must match too —
// the backend's DeleteValue guarantees no other row's posting is
// victimized regardless of flush timing.
func (s *Secondary[K, Row]) Delete(k K, row Row) bool {
	return s.idx.DeleteValue(k, row)
}

// Rows returns every row whose indexed attribute equals k, in index
// order.
func (s *Secondary[K, Row]) Rows(k K) []Row {
	var rows []Row
	s.idx.Each(k, func(r Row) bool {
		rows = append(rows, r)
		return true
	})
	return rows
}

// RangeRows calls fn with the key and row of every posting with
// lo <= key <= hi in key order, stopping early if fn returns false. Row
// fetches from the heap table are random accesses, as with any
// non-clustered index (Section 4.2).
func (s *Secondary[K, Row]) RangeRows(lo, hi K, fn func(k K, row Row) bool) {
	s.idx.AscendRange(lo, hi, fn)
}

// Len returns the number of postings.
func (s *Secondary[K, Row]) Len() int { return s.idx.Len() }

// Stats returns the statistics of the key-page level when the backend
// exposes them (all four tree flavors do), and the zero Stats otherwise.
func (s *Secondary[K, Row]) Stats() Stats {
	if st, ok := s.idx.(interface{ Stats() Stats }); ok {
		return st.Stats()
	}
	return Stats{}
}

// CheckInvariants validates the backend when it supports validation (the
// plain *Tree does); it returns nil otherwise.
func (s *Secondary[K, Row]) CheckInvariants() error {
	if ci, ok := s.idx.(interface{ CheckInvariants() error }); ok {
		return ci.CheckInvariants()
	}
	return nil
}
