package fitingtree

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"fitingtree/internal/core"
)

// DefaultRebalanceFactor is the skew factor at which a Sharded facade
// recomputes its shard boundaries: a rebalance is considered once the
// largest shard holds more than this factor times the mean shard size.
const DefaultRebalanceFactor = 3.0

const (
	// minRebalanceFactor floors SetRebalanceFactor: below it the facade
	// would re-partition on ordinary jitter between shard sizes.
	minRebalanceFactor = 1.5
	// shardSkewCheckEvery gates the O(shards) skew check to one write in
	// this many, keeping it off the per-write hot path.
	shardSkewCheckEvery = 64
	// minShardElements is the smallest mean shard size worth balancing;
	// below want*minShardElements total elements the facade never
	// re-partitions.
	minShardElements = 64
	// minSkewWrites is the write-tally floor for the write-skew rebalance
	// trigger: fences only move for write imbalance once this many writes
	// have accumulated on the current shard set, so a freshly published
	// set cannot be re-partitioned on a handful of samples.
	minSkewWrites = 4096
	// shardWriteBoostMax caps the extra fence weight a write-hot region
	// can earn: a segment's weight is multiplied by at most
	// 1+shardWriteBoostMax, narrowing hot shards without letting one
	// scorching chunk dominate the whole partitioning.
	shardWriteBoostMax = 7
)

// Sharded is a range-partitioned multi-writer facade: it owns a set of
// Optimistic shards behind a distribution-aware partitioner whose fence
// keys are picked from the base tree's page boundaries, so shards carry
// balanced element counts rather than balanced key spans (skewed data gets
// narrow hot shards and wide cold ones). Every key routes to exactly one
// shard, so per-key semantics — duplicate ordering, tombstone accounting,
// flush behavior — are exactly Optimistic's.
//
// Reads (Lookup, Contains, Each, AscendRange, LookupBatch) stay latch-free
// end to end: they load the shard set through an atomic pointer and then
// run Optimistic's snapshot protocol inside the owning shard(s), taking no
// lock and never blocking. AscendRange stitches per-shard snapshots in
// fence order; LookupBatch scatter-gathers with per-shard sorted
// sub-batches.
//
// Writers (Insert, Delete) route to one shard and serialize only on that
// shard's writer mutex, so writers whose keys land on different shards
// proceed fully concurrently — each shard keeps its own delta, its own
// page-granular copy-on-write flush, and its own background flusher
// (asynchronous by default on multi-processor runtimes; see Optimistic,
// SetAsyncFlush, SyncFlush and Close). A shared RWMutex is held in read
// mode
// for the duration of a write; its exclusive side is taken only by
// rebalances and coherent multi-shard snapshots (EncodeSharded), which are
// rare and short.
//
// When one shard's size drifts past a configurable factor of the mean
// (SetRebalanceFactor), the facade re-partitions: all shard contents are
// collected under the exclusive lock, fresh fences are computed from the
// merged data's segment boundaries, and a new shard set is published
// atomically. Readers holding the old set keep complete, consistent
// snapshots.
type Sharded[K Key, V any] struct {
	// reshape is held shared by writers (writes on different shards still
	// run concurrently) and exclusively by rebalance and coherent
	// multi-shard snapshots. Readers never touch it.
	reshape sync.RWMutex
	set     atomic.Pointer[shardSet[K, V]]

	want         int           // target shard count
	flushAt      atomic.Int64  // forwarded to every shard, current and future
	maxFrozen    atomic.Int64  // forwarded to every shard, current and future
	asyncOff     atomic.Bool   // forwarded to every shard, current and future
	autoTuneOn   atomic.Bool   // forwarded to every shard, current and future
	factor       atomic.Uint64 // rebalance skew factor (math.Float64bits)
	writes       atomic.Uint64 // write counter gating the skew check
	rebalancedAt atomic.Int64  // total elements when fences were last computed
}

// shardSet is one immutable published partitioning: the fence keys and the
// shards they induce. The slice headers and fences are never mutated after
// publication; the shards themselves are live Optimistic facades.
type shardSet[K Key, V any] struct {
	// bounds holds len(shards)-1 strictly increasing fence keys: shard i
	// owns keys in [bounds[i-1], bounds[i]), with the first and last
	// ranges open-ended.
	bounds      []K
	shards      []*Optimistic[K, V]
	opts        Options
	versionBase uint64 // accumulated Version() sum of retired shard sets
	// shardWrites tallies writes routed to each shard since this set was
	// published, feeding the write-skew rebalance trigger: a shard
	// absorbing an outsized share of the traffic serializes its writers
	// even when element counts are balanced. Reset naturally when a
	// rebalance publishes a fresh set.
	shardWrites []atomic.Uint64
}

// balancedFences picks the fence keys for a shard split of the sorted
// element run. Segment/page start keys (weighted by element count, and
// optionally boosted by sampled write rate — see writeBoostedWeights) are
// the preferred cut points — they are the distribution summary the tree
// already maintains, so skewed data naturally gets narrow hot shards and
// wide cold ones. But the segmentation can be too coarse to balance on:
// near-linear data collapses into a handful of huge segments (one, in the
// limit), leaving no candidate anywhere near the even share. The balance
// check runs in weight space — each range's summed weight against 1.5×
// the even weight share — so boosted weights stay honored: a write-hot
// range is allowed to hold fewer elements by design. When the
// segment-start fences cannot balance the weights, the partitioner falls
// back to element-count quantiles of the run itself, advancing each cut
// past its duplicate run so every key still routes to exactly one shard.
func balancedFences[K Key](keys []K, starts []K, weights []int, want int) []K {
	bounds := core.PartitionByWeight(starts, weights, want)
	if len(bounds) == want-1 {
		total := 0
		for _, w := range weights {
			total += w
		}
		share := total / want
		si := 0
		balanced := true
		for i := 0; i <= len(bounds); i++ {
			mass := 0
			for si < len(starts) && (i == len(bounds) || starts[si] < bounds[i]) {
				mass += weights[si]
				si++
			}
			if mass > share+share/2 {
				balanced = false
				break
			}
		}
		if balanced {
			return bounds
		}
	}
	return quantileFences(keys, want)
}

// writeBoostedWeights scales each fence candidate's weight by the sampled
// write rate of the chunk covering it: weight × (1 + min(shardWriteBoostMax,
// ⌊4·writes/element⌋)). Heavier candidates make the partitioner cut hot
// ranges narrower, spreading a write hotspot across several shard mutexes
// while cold ranges widen to keep element totals sane. loads must be
// ascending by Start (ChunkLoads output, concatenated in fence order);
// with no load samples the weights pass through unchanged.
func writeBoostedWeights[K Key](starts []K, weights []int, loads []core.ChunkLoad[K]) []int {
	if len(loads) == 0 {
		return weights
	}
	out := make([]int, len(weights))
	li := 0
	for i, st := range starts {
		for li+1 < len(loads) && loads[li+1].Start <= st {
			li++
		}
		boost := 1
		if l := loads[li]; l.Elements > 0 {
			b := int(4 * float64(l.Writes) / float64(l.Elements))
			if b > shardWriteBoostMax {
				b = shardWriteBoostMax
			}
			boost += b
		}
		out[i] = weights[i] * boost
	}
	return out
}

// quantileFences cuts the sorted run at element-count quantiles. A cut
// landing inside a duplicate run advances past it (fences must be strictly
// increasing and every key must compare into one range), so heavy
// duplicates can yield fewer than want-1 fences.
func quantileFences[K Key](keys []K, want int) []K {
	var fences []K
	for i := 1; i < want; i++ {
		pos := i * len(keys) / want
		if pos <= 0 || pos >= len(keys) {
			continue
		}
		f := keys[pos]
		if keys[pos-1] == f {
			pos = upperBoundKeys(keys, f)
			if pos >= len(keys) {
				continue
			}
			f = keys[pos]
		}
		if len(fences) > 0 && f <= fences[len(fences)-1] {
			continue
		}
		fences = append(fences, f)
	}
	return fences
}

// upperBoundKeys returns the index of the first key > k in a sorted slice.
func upperBoundKeys[K Key](keys []K, k K) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// shardFor returns the index of the shard owning k: the number of fences
// <= k.
func (ss *shardSet[K, V]) shardFor(k K) int {
	return upperBoundKeys(ss.bounds, k)
}

// NewSharded splits an existing tree into at most shards range partitions,
// each wrapped in its own Optimistic facade. Fences are chosen from the
// tree's page boundaries weighted by element count (with an element-
// quantile fallback when the segmentation is too coarse — see
// balancedFences), so the initial shards are balanced for the data's
// actual distribution. Fewer shards are created when the data cannot
// support the requested count (e.g. one giant duplicate run); the facade
// grows toward the target as data arrives. The tree must not be used
// directly afterwards: the facade owns its content.
func NewSharded[K Key, V any](t *Tree[K, V], shards int) (*Sharded[K, V], error) {
	if shards < 1 {
		return nil, fmt.Errorf("fitingtree: shard count %d, must be >= 1", shards)
	}
	keys := make([]K, 0, t.Len())
	vals := make([]V, 0, t.Len())
	t.Ascend(func(k K, v V) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return true
	})
	starts, weights := t.PageBounds()
	s := &Sharded[K, V]{want: shards}
	s.flushAt.Store(DefaultFlushEvery)
	s.maxFrozen.Store(DefaultMaxFrozenLayers)
	// Same adaptive default as NewOptimistic: async flushing needs a spare
	// core to run the background merges on.
	s.asyncOff.Store(runtime.GOMAXPROCS(0) <= 1)
	s.factor.Store(math.Float64bits(DefaultRebalanceFactor))
	ss, err := newShardSet(keys, vals, starts, weights, t.Options(), shards, 0,
		DefaultFlushEvery, DefaultMaxFrozenLayers, !s.asyncOff.Load(), false)
	if err != nil {
		return nil, err
	}
	s.set.Store(ss)
	s.rebalancedAt.Store(int64(len(keys)))
	return s, nil
}

// newShardSet partitions the sorted (keys, vals) run along fences chosen
// by balancedFences and bulk-loads one shard per range.
func newShardSet[K Key, V any](keys []K, vals []V, starts []K, weights []int,
	opts Options, want int, versionBase uint64, flushAt, maxFrozen int, async, autoTune bool) (*shardSet[K, V], error) {
	bounds := balancedFences(keys, starts, weights, want)
	shards := make([]*Optimistic[K, V], len(bounds)+1)
	lo := 0
	for i := range shards {
		hi := len(keys)
		if i < len(bounds) {
			hi = lowerBound(keys, bounds[i]) // keys >= fence belong right of the cut
		}
		tr, err := BulkLoad(keys[lo:hi], vals[lo:hi], opts)
		if err != nil {
			return nil, fmt.Errorf("fitingtree: shard %d: %w", i, err)
		}
		o := NewOptimistic(tr)
		o.SetFlushEvery(flushAt)
		o.SetMaxFrozenLayers(maxFrozen)
		o.SetAsyncFlush(async)
		o.SetAutoTune(autoTune)
		shards[i] = o
		lo = hi
	}
	return &shardSet[K, V]{bounds: bounds, shards: shards, opts: opts, versionBase: versionBase,
		shardWrites: make([]atomic.Uint64, len(shards))}, nil
}

// SetFlushEvery sets the per-shard delta flush threshold (see
// Optimistic.SetFlushEvery). Safe to call at any time; shards created by
// later rebalances inherit the value. Panics if n < 1.
func (s *Sharded[K, V]) SetFlushEvery(n int) {
	if n < 1 {
		panic("fitingtree: SetFlushEvery threshold must be >= 1")
	}
	// The shared lock orders this against rebalance: either the rebalance
	// sees the new flushAt when building its shards, or this loop sees the
	// shard set the rebalance published.
	s.reshape.RLock()
	defer s.reshape.RUnlock()
	s.flushAt.Store(int64(n))
	for _, sh := range s.set.Load().shards {
		sh.SetFlushEvery(n)
	}
}

// SetMaxFrozenLayers sets the per-shard frozen merge ladder depth (see
// Optimistic.SetMaxFrozenLayers). Safe to call at any time; shards created
// by later rebalances inherit the value. Panics if n < 1.
func (s *Sharded[K, V]) SetMaxFrozenLayers(n int) {
	if n < 1 {
		panic("fitingtree: SetMaxFrozenLayers depth must be >= 1")
	}
	// Same ordering argument as SetFlushEvery: the shared lock makes the
	// new depth visible either to the rebalance building new shards or to
	// this loop over the set it published.
	s.reshape.RLock()
	defer s.reshape.RUnlock()
	s.maxFrozen.Store(int64(n))
	for _, sh := range s.set.Load().shards {
		sh.SetMaxFrozenLayers(n)
	}
}

// SetAsyncFlush enables or disables the asynchronous flush pipeline on
// every shard (see Optimistic.SetAsyncFlush; enabled by default on a
// multi-processor runtime). Safe to call at any time; shards created by
// later rebalances inherit the value.
func (s *Sharded[K, V]) SetAsyncFlush(enabled bool) {
	s.reshape.RLock()
	defer s.reshape.RUnlock()
	s.asyncOff.Store(!enabled)
	for _, sh := range s.set.Load().shards {
		sh.SetAsyncFlush(enabled)
	}
}

// SyncFlush synchronously folds every shard's pending writes — frozen
// deltas of in-flight background flushes and active deltas alike — into
// the shard base trees. Shards flush in parallel: each fold is an
// independent page-granular merge of that shard's pages.
func (s *Sharded[K, V]) SyncFlush() {
	s.reshape.RLock()
	defer s.reshape.RUnlock()
	forEachShardParallel(s.set.Load().shards, func(sh *Optimistic[K, V]) { sh.SyncFlush() })
}

// Close drains every shard's flush pipeline and disables asynchronous
// flushing, including for shards created by later rebalances. The facade
// remains usable afterwards — writes flush inline — and SetAsyncFlush
// re-enables the pipeline. Close is idempotent.
func (s *Sharded[K, V]) Close() {
	s.asyncOff.Store(true)
	s.reshape.RLock()
	defer s.reshape.RUnlock()
	forEachShardParallel(s.set.Load().shards, func(sh *Optimistic[K, V]) { sh.Close() })
}

// forEachShardParallel runs fn over shards concurrently and waits for all
// of them; a single shard runs inline.
func forEachShardParallel[K Key, V any](shards []*Optimistic[K, V], fn func(*Optimistic[K, V])) {
	if len(shards) == 1 {
		fn(shards[0])
		return
	}
	var wg sync.WaitGroup
	for _, sh := range shards {
		wg.Add(1)
		go func(sh *Optimistic[K, V]) {
			defer wg.Done()
			fn(sh)
		}(sh)
	}
	wg.Wait()
}

// SetAutoTune enables or disables cost-model-driven self-tuning on every
// shard (see Optimistic.SetAutoTune; disabled by default). Shard writes
// additionally feed the skew-aware fence picker: a rebalance boosts the
// fence weights of write-hot regions, so hot ranges get narrower shards.
// Safe to call at any time; shards created by later rebalances inherit
// the value.
func (s *Sharded[K, V]) SetAutoTune(enabled bool) {
	s.reshape.RLock()
	defer s.reshape.RUnlock()
	s.autoTuneOn.Store(enabled)
	for _, sh := range s.set.Load().shards {
		sh.SetAutoTune(enabled)
	}
}

// SetRebalanceFactor sets the skew threshold: a boundary rebuild is
// considered once the largest shard exceeds factor times the mean shard
// size. Values below 1.5 (including NaN) are clamped to 1.5; +Inf disables
// rebalancing. Safe to call at any time.
func (s *Sharded[K, V]) SetRebalanceFactor(factor float64) {
	if factor != factor || factor < minRebalanceFactor {
		factor = minRebalanceFactor
	}
	s.factor.Store(math.Float64bits(factor))
}

// Shards returns the current number of shards. It can be lower than the
// target passed to NewSharded while the data is too small to split, and
// reaches the target through rebalances as data arrives.
func (s *Sharded[K, V]) Shards() int { return len(s.set.Load().shards) }

// ShardSizes returns the current per-shard element counts in fence order —
// a balance diagnostic. Like Len, the counts are a momentary aggregate
// under concurrent writers.
func (s *Sharded[K, V]) ShardSizes() []int {
	ss := s.set.Load()
	sizes := make([]int, len(ss.shards))
	for i, sh := range ss.shards {
		sizes[i] = sh.Len()
	}
	return sizes
}

// Bounds returns a copy of the current fence keys (len Shards()-1,
// strictly increasing): shard i owns keys in [bounds[i-1], bounds[i]).
func (s *Sharded[K, V]) Bounds() []K {
	return append([]K(nil), s.set.Load().bounds...)
}

// Version returns an aggregate write stamp: the sum of every shard's
// version plus the accumulated versions of shard sets retired by
// rebalances. It is even when no publication is in flight and increases
// with every published write and every rebalance.
func (s *Sharded[K, V]) Version() uint64 {
	ss := s.set.Load()
	v := ss.versionBase
	for _, sh := range ss.shards {
		v += sh.Version()
	}
	return v
}

// Len returns the total number of stored elements across all shards,
// including pending delta inserts.
func (s *Sharded[K, V]) Len() int {
	ss := s.set.Load()
	n := 0
	for _, sh := range ss.shards {
		n += sh.Len()
	}
	return n
}

// Stats aggregates the shards' statistics: counts and sizes sum, heights
// and the frozen-ladder depth take the maximum (per-layer pending counts
// are per-shard and left unset — see Optimistic.Stats for them).
func (s *Sharded[K, V]) Stats() Stats {
	return aggregateShardStats(s.set.Load().shards)
}

// aggregateShardStats folds per-shard statistics into one facade-level
// view: counts and sizes sum, heights and ladder depth take the maximum.
// Shared by Sharded and DurableSharded.
func aggregateShardStats[K Key, V any](shards []*Optimistic[K, V]) Stats {
	var agg Stats
	for _, sh := range shards {
		st := sh.Stats()
		agg.Elements += st.Elements
		agg.Pages += st.Pages
		agg.Chunks += st.Chunks
		agg.Buffered += st.Buffered
		agg.Deletes += st.Deletes
		if st.FrozenLayers > agg.FrozenLayers {
			agg.FrozenLayers = st.FrozenLayers
		}
		agg.IndexSize += st.IndexSize
		agg.DataSize += st.DataSize
		agg.Inner.Len += st.Inner.Len
		agg.Inner.InnerNodes += st.Inner.InnerNodes
		agg.Inner.LeafNodes += st.Inner.LeafNodes
		agg.Inner.SizeBytes += st.Inner.SizeBytes
		if st.Inner.Height > agg.Inner.Height {
			agg.Inner.Height = st.Inner.Height
		}
		if st.Height > agg.Height {
			agg.Height = st.Height
		}
	}
	return agg
}

// Lookup returns a value stored under k; latch-free. When k has
// duplicates, an arbitrary match is returned; use Each for all of them.
func (s *Sharded[K, V]) Lookup(k K) (V, bool) {
	ss := s.set.Load()
	return ss.shards[ss.shardFor(k)].Lookup(k)
}

// Contains reports whether k is present; latch-free.
func (s *Sharded[K, V]) Contains(k K) bool {
	_, ok := s.Lookup(k)
	return ok
}

// Each calls fn for every element with key exactly k against the owning
// shard's consistent snapshot; latch-free. Match order is Optimistic's:
// surviving base matches in page order, then pending inserts in insertion
// order.
func (s *Sharded[K, V]) Each(k K, fn func(v V) bool) {
	ss := s.set.Load()
	ss.shards[ss.shardFor(k)].Each(k, fn)
}

// AscendRange calls fn for elements with lo <= key <= hi in ascending key
// order; latch-free. The scan is an ordered stitch across shard snapshots:
// every intersecting shard's state is captured before the first element is
// emitted, then each shard's range is scanned in fence order. Shards
// partition the key space, so the stitched output is globally ordered; each
// shard's portion is one consistent cut (writes published to a shard after
// its capture are not observed).
func (s *Sharded[K, V]) AscendRange(lo, hi K, fn func(k K, v V) bool) {
	ss := s.set.Load()
	ascendSharded(ss.bounds, ss.shards, lo, hi, fn)
}

// ascendSharded is the ordered cross-shard range scan shared by Sharded
// and DurableSharded: every intersecting shard's state is captured before
// the first element is emitted, then each shard's portion is scanned in
// fence order.
func ascendSharded[K Key, V any](bounds []K, shards []*Optimistic[K, V],
	lo, hi K, fn func(k K, v V) bool) {
	if hi < lo {
		return
	}
	from, to := upperBoundKeys(bounds, lo), upperBoundKeys(bounds, hi)
	states := make([]*ostate[K, V], to-from+1)
	for i := range states {
		states[i] = shards[from+i].state.Load()
	}
	for _, st := range states {
		stopped := false
		st.ascendRange(lo, hi, func(k K, v V) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// shardBatchParallelMin is the batch size below which LookupBatch probes
// its shards sequentially: goroutine spawn and scheduling overhead
// dominates small batches, where the sequential scatter already wins.
const shardBatchParallelMin = 2048

// LookupBatch looks up every element of keys, returning values and found
// flags parallel to keys; latch-free. One permutation sorts the whole
// batch by key (core.ProbeOrder, the batch hot path's specialized sort;
// free when the batch is presorted) — shards partition the key space, so
// the sorted batch is automatically contiguous per shard with every
// sub-batch presorted for the shard's LookupBatch fast path. Results
// gather back into probe order, and each shard's sub-batch runs against
// one consistent snapshot of that shard. Batches of at least
// shardBatchParallelMin probes spanning several shards fan the per-shard
// sub-batches out to one worker goroutine per shard; each worker fills
// disjoint result indices, so the fan-out needs no locking.
func (s *Sharded[K, V]) LookupBatch(keys []K) ([]V, []bool) {
	ss := s.set.Load()
	return lookupBatchSharded(ss.bounds, ss.shards, keys)
}

// lookupBatchSharded is the scatter-gather batch engine shared by Sharded
// and DurableSharded; see Sharded.LookupBatch for the protocol.
func lookupBatchSharded[K Key, V any](bounds []K, shards []*Optimistic[K, V], keys []K) ([]V, []bool) {
	if len(shards) == 1 {
		return shards[0].LookupBatch(keys)
	}
	vals := make([]V, len(keys))
	found := make([]bool, len(keys))
	if len(keys) == 0 {
		return vals, found
	}
	order := core.ProbeOrder(keys) // nil when keys are already ascending
	sub := keys
	if order != nil {
		sub = make([]K, len(keys))
		for i, p := range order {
			sub[i] = keys[p]
		}
	}
	// spans maps each shard with work to its contiguous sub-batch [b, e).
	type span struct{ shard, b, e int }
	spans := make([]span, 0, len(shards))
	for si, b := 0, 0; si < len(shards) && b < len(sub); si++ {
		e := len(sub)
		if si < len(bounds) {
			e = lowerBound(sub, bounds[si]) // keys >= fence belong to later shards
		}
		if e > b {
			spans = append(spans, span{shard: si, b: b, e: e})
		}
		b = e
	}
	probe := func(sp span) {
		sv, sf := shards[sp.shard].LookupBatch(sub[sp.b:sp.e])
		if order == nil {
			copy(vals[sp.b:sp.e], sv)
			copy(found[sp.b:sp.e], sf)
		} else {
			for j := sp.b; j < sp.e; j++ {
				vals[order[j]], found[order[j]] = sv[j-sp.b], sf[j-sp.b]
			}
		}
	}
	if len(sub) < shardBatchParallelMin || len(spans) < 2 {
		for _, sp := range spans {
			probe(sp)
		}
		return vals, found
	}
	var wg sync.WaitGroup
	for _, sp := range spans {
		wg.Add(1)
		go func(sp span) {
			defer wg.Done()
			probe(sp)
		}(sp)
	}
	wg.Wait()
	return vals, found
}

// Insert adds (k, v). Only the owning shard's writer mutex is taken, so
// inserts to different shards proceed concurrently. Panics on a NaN key.
func (s *Sharded[K, V]) Insert(k K, v V) {
	if k != k {
		panic("fitingtree: Insert with NaN key")
	}
	s.reshape.RLock()
	ss := s.set.Load()
	si := ss.shardFor(k)
	ss.shards[si].Insert(k, v)
	ss.shardWrites[si].Add(1)
	s.reshape.RUnlock()
	s.maybeRebalance()
}

// Delete removes one element with key k from the owning shard and reports
// whether one was found; duplicate semantics are Optimistic.Delete's.
// Panics on a NaN key.
func (s *Sharded[K, V]) Delete(k K) bool {
	if k != k {
		panic("fitingtree: Delete with NaN key")
	}
	s.reshape.RLock()
	ss := s.set.Load()
	si := ss.shardFor(k)
	ok := ss.shards[si].Delete(k)
	ss.shardWrites[si].Add(1)
	s.reshape.RUnlock()
	if ok {
		s.maybeRebalance()
	}
	return ok
}

// DeleteValue removes one element with key k whose value equals v under
// Go equality from the owning shard, reporting whether one was removed;
// victim semantics are Optimistic.DeleteValue's (the caller names the
// victim, so the outcome is independent of flush timing). Panics on a NaN
// key and for non-comparable value types.
func (s *Sharded[K, V]) DeleteValue(k K, v V) bool {
	if k != k {
		panic("fitingtree: DeleteValue with NaN key")
	}
	s.reshape.RLock()
	ss := s.set.Load()
	si := ss.shardFor(k)
	ok := ss.shards[si].DeleteValue(k, v)
	ss.shardWrites[si].Add(1)
	s.reshape.RUnlock()
	if ok {
		s.maybeRebalance()
	}
	return ok
}

// maybeRebalance runs the skew check on one write in shardSkewCheckEvery
// and triggers a boundary rebuild when it reports drift.
func (s *Sharded[K, V]) maybeRebalance() {
	if s.writes.Add(1)%shardSkewCheckEvery != 0 {
		return
	}
	if s.needsRebalance(s.set.Load()) {
		s.rebalance()
	}
}

// needsRebalance reports whether the shard set's sizes have drifted enough
// to warrant an O(n) re-partition: the facade is under its target shard
// count, or the largest shard exceeds the skew factor times the mean. An
// amortization guard requires the total size to have moved by at least a
// quarter since fences were last computed, so repeated checks against an
// unsplittable distribution (e.g. one giant duplicate run) stay cheap.
func (s *Sharded[K, V]) needsRebalance(ss *shardSet[K, V]) bool {
	return shardsNeedRebalance(ss.shards, ss.shardWrites, s.want,
		math.Float64frombits(s.factor.Load()), int(s.rebalancedAt.Load()))
}

// shardsNeedRebalance is the skew policy shared by Sharded and
// DurableSharded; see Sharded.needsRebalance for the rules. writes may be
// nil when the caller keeps no per-shard write tallies; the write-skew
// term is then skipped.
func shardsNeedRebalance[K Key, V any](shards []*Optimistic[K, V], writes []atomic.Uint64,
	want int, factor float64, rebalancedAt int) bool {
	if math.IsInf(factor, 1) {
		return false
	}
	total, maxSize := 0, 0
	for _, sh := range shards {
		n := sh.Len()
		total += n
		if n > maxSize {
			maxSize = n
		}
	}
	if total < want*minShardElements {
		return false
	}
	// Write skew: one shard absorbing an outsized share of the write
	// traffic serializes its writers even when element counts are
	// balanced. Checked before the size-amortization guard because a
	// pure-update workload never moves the total element count.
	if len(writes) > 1 {
		var totW, maxW uint64
		for i := range writes {
			w := writes[i].Load()
			totW += w
			if w > maxW {
				maxW = w
			}
		}
		if totW >= minSkewWrites && float64(maxW) > factor*float64(totW)/float64(len(writes)) {
			return true
		}
	}
	if at := rebalancedAt; at > 0 && total < at+at/4 && total > at/2 {
		return false
	}
	if len(shards) < want {
		return true
	}
	mean := float64(total) / float64(len(shards))
	return float64(maxSize) > factor*mean
}

// rebalance recomputes fences from the merged data's segment boundaries
// and publishes a fresh shard set. Writers are excluded for the duration
// (exclusive reshape lock); readers keep running against the old set,
// which stays a complete, consistent snapshot.
func (s *Sharded[K, V]) rebalance() {
	s.reshape.Lock()
	defer s.reshape.Unlock()
	ss := s.set.Load()
	if !s.needsRebalance(ss) {
		return // another writer rebalanced between the check and the lock
	}
	// Quiesce the outgoing shards' flush pipelines before reading their
	// version stamps: background flush workers publish under only the
	// shard mutex, not the reshape lock, so without this drain a worker
	// could publish between the Version() reads below and the shard-set
	// swap and push the observable aggregate past the fixed +2 headroom —
	// Version would go backwards across the swap. The drain also ensures
	// no worker goroutine outlives its retired shard. It folds only
	// pending deltas (page-granular, O(pending) per shard), runs shards in
	// parallel, and leaves the retired set permanently clean for readers
	// still holding it.
	forEachShardParallel(ss.shards, func(sh *Optimistic[K, V]) { sh.Close() })
	states := make([]*ostate[K, V], len(ss.shards))
	base := ss.versionBase + 2 // keep Version monotone (and even) across the swap
	for i, sh := range ss.shards {
		base += sh.Version()
		states[i] = sh.state.Load()
	}
	keys, vals := collectStates(states)
	starts, weights, err := core.SegmentBoundsOf(keys, ss.opts)
	if err != nil {
		// Unreachable: ss.opts was normalized at construction.
		panic(fmt.Sprintf("fitingtree: rebalance segmentation: %v", err))
	}
	// Feed the outgoing shards' sampled write rates into the fence picker:
	// the drained base trees carry per-page write counters (seeded across
	// rebuilds by carryLoad), so a write-hot key range boosts its fence
	// weights and comes out split across narrower shards. Loads concatenate
	// in fence order, matching the ascending starts.
	var loads []core.ChunkLoad[K]
	for _, st := range states {
		loads = append(loads, st.tree.ChunkLoads()...)
	}
	weights = writeBoostedWeights(starts, weights, loads)
	ns, err := newShardSet(keys, vals, starts, weights, ss.opts, s.want, base,
		int(s.flushAt.Load()), int(s.maxFrozen.Load()), !s.asyncOff.Load(), s.autoTuneOn.Load())
	if err != nil {
		// Unreachable: the collected run is sorted and NaN-free.
		panic(fmt.Sprintf("fitingtree: rebalance: %v", err))
	}
	s.set.Store(ns)
	s.rebalancedAt.Store(int64(len(keys)))
}

// parallelCollectMin is the total element count below which collectStates
// stays sequential: the per-state goroutine and the extra concatenation
// copy only pay off once the drains are substantial.
const parallelCollectMin = 1 << 15

// collectStates drains the given shard states into one sorted run, pending
// deltas folded in (the same fold a flush applies — frozen layer below
// the active one). With several states and enough elements the drains run
// in parallel, one goroutine per state: states are immutable, shards
// partition the key space, and each drain is exactly the flush fold for
// its shard, so a rebalance (or EncodeSharded) effectively flushes all
// shards concurrently instead of one after another.
func collectStates[K Key, V any](states []*ostate[K, V]) ([]K, []V) {
	total := 0
	for _, st := range states {
		total += st.size
	}
	if len(states) > 1 && total >= parallelCollectMin {
		return collectStatesParallel(states, total)
	}
	keys := make([]K, 0, total)
	vals := make([]V, 0, total)
	for _, st := range states {
		if lo, hi, ok := st.bounds(); ok {
			st.ascendRange(lo, hi, func(k K, v V) bool {
				keys = append(keys, k)
				vals = append(vals, v)
				return true
			})
		}
	}
	return keys, vals
}

// collectStatesParallel drains every state concurrently into per-state
// runs and concatenates them in fence order, preserving global key order.
func collectStatesParallel[K Key, V any](states []*ostate[K, V], total int) ([]K, []V) {
	type run struct {
		keys []K
		vals []V
	}
	runs := make([]run, len(states))
	var wg sync.WaitGroup
	for i, st := range states {
		wg.Add(1)
		go func(i int, st *ostate[K, V]) {
			defer wg.Done()
			ks := make([]K, 0, st.size)
			vs := make([]V, 0, st.size)
			if lo, hi, ok := st.bounds(); ok {
				st.ascendRange(lo, hi, func(k K, v V) bool {
					ks = append(ks, k)
					vs = append(vs, v)
					return true
				})
			}
			runs[i] = run{keys: ks, vals: vs}
		}(i, st)
	}
	wg.Wait()
	keys := make([]K, 0, total)
	vals := make([]V, 0, total)
	for _, r := range runs {
		keys = append(keys, r.keys...)
		vals = append(vals, r.vals...)
	}
	return keys, vals
}

// snapshotAll captures one coherent cut across every shard: writers are
// excluded only for the O(shards) state loads, then the immutable states
// are readable without any lock. EncodeSharded builds on this.
func (s *Sharded[K, V]) snapshotAll() (*shardSet[K, V], []*ostate[K, V]) {
	s.reshape.Lock()
	ss := s.set.Load()
	states := make([]*ostate[K, V], len(ss.shards))
	for i, sh := range ss.shards {
		states[i] = sh.state.Load()
	}
	s.reshape.Unlock()
	return ss, states
}
