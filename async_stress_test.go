package fitingtree_test

// Black-box concurrency tests for the asynchronous flush pipeline: run
// with -race. Writers race the background flusher, readers cross freeze
// and publish boundaries, and snapshots are taken mid-flush.

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"fitingtree"
)

// TestAsyncFlushStress races concurrent writers (disjoint key ranges, so
// Delete outcomes stay deterministic per goroutine), latch-free readers,
// mid-flight snapshots, and flush-threshold churn against the background
// flusher, then drains and verifies the full contents.
func TestAsyncFlushStress(t *testing.T) {
	const (
		writers   = 4
		perWriter = 3000
		span      = uint64(1 << 20)
	)
	base := make([]uint64, 20_000)
	for i := range base {
		base[i] = uint64(i) * (span * writers / 20_000)
	}
	o := buildOpt(t, base, 64)
	o.SetAsyncFlush(true) // exercise the pipeline regardless of GOMAXPROCS

	stop := make(chan struct{})
	var aux sync.WaitGroup
	// Readers: point, per-key, range, and batch paths, constantly crossing
	// freeze/publish boundaries.
	for r := 0; r < 2; r++ {
		aux.Add(1)
		go func(r int) {
			defer aux.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Int63n(int64(span * writers)))
				o.Lookup(k)
				o.Each(k, func(uint64) bool { return true })
				if i%16 == 0 {
					o.AscendRange(k, k+span/64, func(uint64, uint64) bool { return true })
				}
				if i%8 == 0 {
					batch := make([]uint64, 32)
					for j := range batch {
						batch[j] = uint64(rng.Int63n(int64(span * writers)))
					}
					o.LookupBatch(batch)
				}
			}
		}(r)
	}
	// Snapshotter + threshold churn: encodes must stay coherent mid-flush.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%4 == 0 {
				var buf bytes.Buffer
				if err := fitingtree.EncodeOptimistic(o, &buf); err != nil {
					t.Error(err)
					return
				}
			}
			o.SetFlushEvery(16 + i%96)
		}
	}()
	// Writers: each owns a disjoint odd-key range; every 5th write is a
	// delete/re-insert pair so tombstones flow through the pipeline too.
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + w)))
			lo := span * uint64(w)
			for i := 0; i < perWriter; i++ {
				k := (lo + uint64(rng.Int63n(int64(span)))) | 1 // odd: off the even base keys
				o.Insert(k, k)
				if i%5 == 0 {
					if !o.Delete(k) {
						t.Errorf("writer %d: Delete(%d) missed its own insert", w, k)
						return
					}
					o.Insert(k, k)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	aux.Wait()

	o.Close()
	if want := len(base) + writers*perWriter; o.Len() != want {
		t.Fatalf("Len = %d after drain, want %d", o.Len(), want)
	}
	// The drained scan is sorted and visits exactly Len elements.
	prev := uint64(0)
	n := 0
	o.AscendRange(0, 1<<63, func(k, v uint64) bool {
		if n > 0 && k < prev {
			t.Fatalf("scan out of order at %d: %d < %d", n, k, prev)
		}
		if v != k {
			t.Fatalf("scan value mismatch: (%d, %d)", k, v)
		}
		prev = k
		n++
		return true
	})
	if n != o.Len() {
		t.Fatalf("scan visited %d, Len %d", n, o.Len())
	}
}

// TestEncodeDuringFlushCoherence pins snapshot coherence against the
// pipeline: encoding while a background flush is (very likely) in flight
// must produce bytes identical to encoding the same facade after a full
// drain — the encode-time fold applies the same layering the flusher
// applies physically.
func TestEncodeDuringFlushCoherence(t *testing.T) {
	for round := 0; round < 5; round++ {
		base := make([]uint64, 30_000)
		for i := range base {
			base[i] = uint64(i * 4)
		}
		o := buildOpt(t, base, 256)
		o.SetAsyncFlush(true)
		rng := rand.New(rand.NewSource(int64(round)))
		// Enough churn that a freeze lands close to the encode below.
		for i := 0; i < 2500; i++ {
			k := uint64(rng.Intn(len(base)*4)) | 1
			o.Insert(k, k)
			if i%7 == 0 {
				o.Delete(uint64(rng.Intn(len(base))) * 4)
			}
		}
		var mid bytes.Buffer
		if err := fitingtree.EncodeOptimistic(o, &mid); err != nil {
			t.Fatal(err)
		}
		o.SyncFlush()
		var quiesced bytes.Buffer
		if err := fitingtree.EncodeOptimistic(o, &quiesced); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mid.Bytes(), quiesced.Bytes()) {
			t.Fatalf("round %d: mid-flush encode (%d bytes) differs from quiesced encode (%d bytes)",
				round, mid.Len(), quiesced.Len())
		}
		o.Close()
	}
}

// TestShardedAsyncMatchesOptimistic drives one identical write stream
// (values equal to keys, so duplicate-victim choices cannot diverge)
// through an unsharded Optimistic and a Sharded facade with the async
// flusher enabled on both, and — without quiescing either — requires
// element-identical scans and byte-identical encoded snapshots however
// far each facade's pipeline has progressed.
func TestShardedAsyncMatchesOptimistic(t *testing.T) {
	base := make([]uint64, 40_000)
	for i := range base {
		base[i] = uint64(i) * 3
	}
	o := buildOpt(t, base, 128)
	o.SetAsyncFlush(true)
	tr, err := fitingtree.BulkLoad(base, append([]uint64(nil), base...), fitingtree.Options{Error: 32, BufferSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := fitingtree.NewSharded(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFlushEvery(128)
	s.SetAsyncFlush(true)

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 6000; i++ {
		k := uint64(rng.Intn(len(base) * 3))
		if rng.Intn(4) == 0 {
			if o.Delete(k) != s.Delete(k) {
				t.Fatalf("Delete(%d) outcome diverged", k)
			}
		} else {
			o.Insert(k, k)
			s.Insert(k, k)
		}
		if i%1500 == 0 {
			// Mid-stream, pipelines in arbitrary positions: scans agree.
			var ok, sk []uint64
			o.AscendRange(0, 1<<62, func(k, v uint64) bool { ok = append(ok, k); return true })
			s.AscendRange(0, 1<<62, func(k, v uint64) bool { sk = append(sk, k); return true })
			if len(ok) != len(sk) {
				t.Fatalf("step %d: scan lengths %d != %d", i, len(ok), len(sk))
			}
			for j := range ok {
				if ok[j] != sk[j] {
					t.Fatalf("step %d: scans diverge at %d: %d != %d", i, j, ok[j], sk[j])
				}
			}
		}
	}
	// Snapshots, still without quiescing: byte-identical streams.
	var ob, sb bytes.Buffer
	if err := fitingtree.EncodeOptimistic(o, &ob); err != nil {
		t.Fatal(err)
	}
	if err := fitingtree.EncodeSharded(s, &sb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ob.Bytes(), sb.Bytes()) {
		t.Fatalf("sharded snapshot (%d bytes) differs from unsharded (%d bytes) under async flushing",
			sb.Len(), ob.Len())
	}
	// And a sharded encode mid-flush matches its own quiesced encode.
	s.SyncFlush()
	var sq bytes.Buffer
	if err := fitingtree.EncodeSharded(s, &sq); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), sq.Bytes()) {
		t.Fatal("sharded mid-flush encode differs from quiesced encode")
	}
	o.Close()
	s.Close()
	if o.Len() != s.Len() {
		t.Fatalf("Len diverged after drain: %d != %d", o.Len(), s.Len())
	}
}

// TestShardedLookupBatchParallel exercises the per-shard fan-out path
// (batches above the parallel cutoff spanning several shards): results
// must agree element-wise with point lookups, in random, presorted, and
// reversed probe orders, and stay consistent while writers churn the
// shards concurrently (run with -race).
func TestShardedLookupBatchParallel(t *testing.T) {
	base := make([]uint64, 100_000)
	for i := range base {
		base[i] = uint64(i) * 2
	}
	tr, err := fitingtree.BulkLoad(base, append([]uint64(nil), base...), fitingtree.Options{Error: 32, BufferSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := fitingtree.NewSharded(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() < 2 {
		t.Fatalf("need several shards to fan out, got %d", s.Shards())
	}
	s.SetAsyncFlush(true)
	rng := rand.New(rand.NewSource(17))
	// A quiet probe range writers never touch, so batch/point agreement
	// is exact even mid-churn; probes mix hits and misses.
	probes := make([]uint64, 8192)
	for i := range probes {
		probes[i] = uint64(rng.Intn(100_000))
	}
	sorted := append([]uint64(nil), probes...)
	sortU64(sorted)
	reversed := make([]uint64, len(sorted))
	for i := range sorted {
		reversed[len(sorted)-1-i] = sorted[i]
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Insert(uint64(120_000+r.Intn(80_000)), 1) // outside the probe range
			}
		}(w)
	}
	for round, batch := range [][]uint64{probes, sorted, reversed} {
		vals, found := s.LookupBatch(batch)
		for i, k := range batch {
			wv, wok := s.Lookup(k)
			if found[i] != wok || (wok && vals[i] != wv) {
				t.Fatalf("order %d: LookupBatch(%d) = (%d,%v), Lookup = (%d,%v)",
					round, k, vals[i], found[i], wv, wok)
			}
			if want := k%2 == 0 && k < 200_000; found[i] != want {
				t.Fatalf("order %d: found[%d]=%v for key %d, want %v", round, i, found[i], k, want)
			}
		}
	}
	close(stop)
	wg.Wait()
	s.Close()
}

// TestShardedVersionMonotoneAsync pins the aggregate Version contract
// against the flush pipeline: with background flushers publishing on
// shards right up to a rebalance, a monitor goroutine must never observe
// the stamp decreasing — the rebalance quiesces the outgoing shards
// before reading their version stamps, so retired-shard workers cannot
// publish past the swap's headroom.
func TestShardedVersionMonotoneAsync(t *testing.T) {
	s, err := fitingtree.NewSharded(mustTree(t, nil), 4)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFlushEvery(8) // frequent freezes keep workers in flight
	s.SetAsyncFlush(true)
	s.SetRebalanceFactor(1.5) // rebalance eagerly
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for m := 0; m < 2; m++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v := s.Version(); v < last {
					t.Errorf("Version went backwards: %d -> %d", last, v)
					return
				} else {
					last = v
				}
			}
		}()
	}
	// A skewed writer: triggers growth and skew rebalances while the
	// per-shard flushers churn.
	for i := 0; i < 12_000; i++ {
		k := uint64(i % 3000 * 7)
		if i > 6000 {
			k = uint64(i) // shift the distribution to force re-fencing
		}
		s.Insert(k, k)
	}
	close(stop)
	wg.Wait()
	s.Close()
	if v := s.Version(); v%2 != 0 {
		t.Fatalf("Version %d odd at rest", v)
	}
}

// TestSetFlushEveryPanics pins the documented guard on both facades: a
// threshold below 1 is a caller bug, not a clamp.
func TestSetFlushEveryPanics(t *testing.T) {
	o := buildOpt(t, seqKeys(100, 2), 0)
	expectPanic(t, "Optimistic.SetFlushEvery(0)", func() { o.SetFlushEvery(0) })
	expectPanic(t, "Optimistic.SetFlushEvery(-5)", func() { o.SetFlushEvery(-5) })
	tr, err := fitingtree.BulkLoad(seqKeys(100, 2), seqKeys(100, 2), fitingtree.Options{Error: 32})
	if err != nil {
		t.Fatal(err)
	}
	s, err := fitingtree.NewSharded(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	expectPanic(t, "Sharded.SetFlushEvery(0)", func() { s.SetFlushEvery(0) })
	expectPanic(t, "Sharded.SetFlushEvery(-1)", func() { s.SetFlushEvery(-1) })
	// The guarded facades still work.
	o.Insert(1, 1)
	s.Insert(1, 1)
	if !o.Contains(1) || !s.Contains(1) {
		t.Fatal("facade broken after SetFlushEvery panics")
	}
}
