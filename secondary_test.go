package fitingtree_test

import (
	"math/rand"
	"sort"
	"testing"

	"fitingtree"
	"fitingtree/internal/workload"
)

func TestSecondaryBuildAndRows(t *testing.T) {
	// An unsorted column with duplicates.
	column := []uint64{50, 10, 30, 10, 50, 50, 20, 10}
	s, err := fitingtree.BuildSecondary(column, fitingtree.Options{Error: 4, BufferSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(column) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(column))
	}
	cases := map[uint64][]int{
		10: {1, 3, 7},
		20: {6},
		30: {2},
		50: {0, 4, 5},
	}
	for k, want := range cases {
		got := s.Rows(k)
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("Rows(%d) = %v, want %v", k, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Rows(%d) = %v, want %v", k, got, want)
			}
		}
	}
	if rows := s.Rows(40); rows != nil {
		t.Fatalf("Rows(40) = %v for absent key", rows)
	}
}

func TestSecondaryRange(t *testing.T) {
	column := workload.MapsLongitude(20_000, 11)
	// Shuffle to make it a genuine heap-table column.
	rng := rand.New(rand.NewSource(12))
	rng.Shuffle(len(column), func(i, j int) { column[i], column[j] = column[j], column[i] })
	s, err := fitingtree.BuildSecondary(column, fitingtree.Options{Error: 100})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := -10.0, 10.0
	want := 0
	for _, k := range column {
		if k >= lo && k <= hi {
			want++
		}
	}
	got := 0
	s.RangeRows(lo, hi, func(k float64, row int) bool {
		if k < lo || k > hi {
			t.Fatalf("range returned key %f outside [%f, %f]", k, lo, hi)
		}
		if column[row] != k {
			t.Fatalf("row %d holds %f, index says %f", row, column[row], k)
		}
		got++
		return true
	})
	if got != want {
		t.Fatalf("range visited %d postings, want %d", got, want)
	}
}

func TestSecondaryInsertDelete(t *testing.T) {
	column := []uint64{5, 5, 5, 9}
	s, err := fitingtree.BuildSecondary(column, fitingtree.Options{Error: 4, BufferSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Insert(5, 4) // row 4 appended with key 5
	s.Insert(7, 5)
	rows := s.Rows(5)
	if len(rows) != 4 {
		t.Fatalf("Rows(5) = %v, want 4 postings", rows)
	}
	// Delete a specific posting.
	if !s.Delete(5, 1) {
		t.Fatal("Delete(5, row 1) missed")
	}
	if s.Delete(5, 1) {
		t.Fatal("double delete succeeded")
	}
	if s.Delete(5, 99) {
		t.Fatal("delete of absent row succeeded")
	}
	rows = s.Rows(5)
	sort.Ints(rows)
	want := []int{0, 2, 4}
	if len(rows) != len(want) {
		t.Fatalf("Rows(5) = %v, want %v", rows, want)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("Rows(5) = %v, want %v", rows, want)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSecondaryLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	column := make([]uint64, 30_000)
	for i := range column {
		column[i] = uint64(rng.Intn(2000)) // heavy duplication
	}
	s, err := fitingtree.BuildSecondary(column, fitingtree.Options{Error: 60})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Spot-check posting lists against a scan.
	for probe := uint64(0); probe < 2000; probe += 97 {
		want := 0
		for _, k := range column {
			if k == probe {
				want++
			}
		}
		if got := len(s.Rows(probe)); got != want {
			t.Fatalf("Rows(%d) = %d postings, want %d", probe, got, want)
		}
	}
}

func TestSecondaryStats(t *testing.T) {
	column := workload.MapsLongitude(50_000, 14)
	s, err := fitingtree.BuildSecondary(column, fitingtree.Options{Error: 100})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Elements != 50_000 {
		t.Fatalf("Elements = %d", st.Elements)
	}
	if st.Pages < 1 || st.IndexSize <= 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
}
