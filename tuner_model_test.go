package fitingtree

// Satellites of the self-tuning loop. The randomized model test pins the
// contract that makes tuning safe to enable blindly: retuning, per-region
// rebuilds, and under-full chunk absorption are layout-only — a tuned
// facade and an untuned reference fed the identical op stream stay
// value-id-for-value-id equivalent under every router and ladder depth.
// The race stress drives Retune/Calibrate against concurrent readers and
// writers (the CI -race step runs it). The durable test crashes a tuned
// store and asserts recovery reproduces the persisted per-page error
// bounds exactly.

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fitingtree/internal/pager"
	"fitingtree/internal/wal"
)

func TestTunerModelEquivalence(t *testing.T) {
	for _, router := range []RouterKind{RouterBTree, RouterImplicit} {
		rname := map[RouterKind]string{RouterBTree: "btree", RouterImplicit: "implicit"}[router]
		for _, depth := range []int{1, 4} {
			router, depth := router, depth
			t.Run(fmt.Sprintf("%s/depth=%d", rname, depth), func(t *testing.T) {
				testTunerEquivalence(t, router, depth)
			})
		}
	}
}

func testTunerEquivalence(t *testing.T, router RouterKind, depth int) {
	rng := rand.New(rand.NewSource(int64(depth)*7919 + int64(router)))
	nextVal := uint64(1 << 32)
	base := make([]uint64, 3000)
	baseVals := make([]uint64, 3000)
	for i := range base {
		base[i] = uint64(rng.Intn(600) * 5) // duplicates and gaps
	}
	slices.Sort(base)
	for i := range baseVals {
		baseVals[i] = nextVal
		nextVal++
	}
	build := func() *Optimistic[uint64, uint64] {
		tr, err := BulkLoad(base, baseVals, Options{Error: 48, BufferSize: 8, Router: router})
		if err != nil {
			t.Fatal(err)
		}
		o := NewOptimistic(tr)
		o.SetAsyncFlush(false)
		o.SetMaxFrozenLayers(depth)
		o.SetFlushEvery(16)
		return o
	}
	tuned, ref := build(), build()
	tuned.SetAutoTune(true)

	check := func(phase int) {
		t.Helper()
		if tuned.Len() != ref.Len() {
			t.Fatalf("phase %d: tuned Len %d, reference %d", phase, tuned.Len(), ref.Len())
		}
		type kv struct{ k, v uint64 }
		var want []kv
		ref.AscendRange(0, 1<<62, func(k, v uint64) bool {
			want = append(want, kv{k, v})
			return true
		})
		i := 0
		tuned.AscendRange(0, 1<<62, func(k, v uint64) bool {
			if i >= len(want) || want[i] != (kv{k, v}) {
				t.Fatalf("phase %d: tuned scan[%d] = (%d,%d), reference %v", phase, i, k, v, want[i])
			}
			i++
			return true
		})
		if i != len(want) {
			t.Fatalf("phase %d: tuned scan has %d entries, reference %d", phase, i, len(want))
		}
		for j := 0; j < 64; j++ {
			k := uint64(rng.Intn(3200))
			tn, rn := 0, 0
			tuned.Each(k, func(uint64) bool { tn++; return true })
			ref.Each(k, func(uint64) bool { rn++; return true })
			if tn != rn {
				t.Fatalf("phase %d: Each(%d) count %d, reference %d", phase, k, tn, rn)
			}
		}
		for _, o := range []*Optimistic[uint64, uint64]{tuned, ref} {
			if err := o.state.Load().tree.CheckInvariants(); err != nil {
				t.Fatalf("phase %d: invariants: %v", phase, err)
			}
		}
	}

	check(-1)
	for phase := 0; phase < 4; phase++ {
		for i := 0; i < 600; i++ {
			k := uint64(rng.Intn(3200))
			switch {
			case rng.Intn(3) == 0:
				got, want := tuned.Delete(k), ref.Delete(k)
				if got != want {
					t.Fatalf("phase %d: Delete(%d) tuned %v, reference %v", phase, k, got, want)
				}
			default:
				v := nextVal
				nextVal++
				tuned.Insert(k, v)
				ref.Insert(k, v)
			}
		}
		// Retarget aggressively between phases: new plans must only ever
		// change layout, never content.
		tuned.SyncFlush()
		ref.SyncFlush()
		tuned.Calibrate()
		tuned.Retune()
		check(phase)
	}
	if regions := tuned.Stats().Regions; len(regions) == 0 {
		t.Fatal("tuned facade never published a region plan")
	}
	if regions := ref.Stats().Regions; len(regions) != 0 {
		t.Fatalf("untuned reference grew a region plan: %v", regions)
	}
}

// TestTunerRaceStress races Retune and Calibrate against live readers and
// a writer; run under -race it pins that tuning state is safely shared
// across publications. Content is verified at the end against the
// writer's own accounting.
func TestTunerRaceStress(t *testing.T) {
	base := make([]uint64, 20_000)
	vals := make([]uint64, len(base))
	for i := range base {
		base[i] = uint64(i) * 8
		vals[i] = uint64(i)
	}
	tr, err := BulkLoad(base, vals, Options{Error: 64, BufferSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOptimistic(tr)
	o.SetAutoTune(true)
	o.SetFlushEvery(64)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := uint64(rng.Intn(len(base)*8 + 100))
				o.Lookup(k)
				if rng.Intn(64) == 0 {
					n := 0
					o.AscendRange(k, k+512, func(uint64, uint64) bool { n++; return n < 200 })
				}
			}
		}(int64(r) + 1)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			o.Retune()
			if i%8 == 0 {
				o.Calibrate()
			}
			time.Sleep(time.Millisecond)
		}
	}()

	rng := rand.New(rand.NewSource(99))
	inserted, deleted := 0, 0
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		for i := 0; i < 256; i++ {
			k := uint64(rng.Intn(len(base) * 8))
			if rng.Intn(4) == 0 {
				if o.Delete(k) {
					deleted++
				}
			} else {
				o.Insert(k, k)
				inserted++
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	o.Close()
	if got, want := o.Len(), len(base)+inserted-deleted; got != want {
		t.Fatalf("after stress Len = %d, want %d", got, want)
	}
	if err := o.state.Load().tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCrashPreservesTunedLayout checkpoints a self-tuned store,
// crashes away everything unsynced, and asserts recovery rebuilds the
// identical layout: the per-page error bounds the checkpoint persisted,
// byte-identical index accounting, and intact invariants (which verify
// every page against its own recorded bound, not the global one).
func TestDurableCrashPreservesTunedLayout(t *testing.T) {
	mem := wal.NewMemFS()
	dev := pager.NewDisk()
	opts := Options{Error: 128, BufferSize: 16}
	d, err := OpenDurable[int, int](mem, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	d.SetAutoCheckpoint(false)
	d.SetAsyncFlush(false)
	d.SetFlushEvery(128)
	d.SetAutoTune(true)
	rng := rand.New(rand.NewSource(7))
	k := 0
	for i := 0; i < 30_000; i++ {
		// Heavy-tailed steps keep the data rough: near-arithmetic keys
		// collapse into a handful of giant segments, leaving too few pages
		// for the tuner's regions (or this test's mixed-bound assertion)
		// to mean anything.
		k += 1 + 1<<uint(rng.Intn(11))
		if err := d.Insert(k, i); err != nil {
			t.Fatal(err)
		}
	}
	// Skew the sampled load onto the lower half, retarget, and rebuild
	// under the new plan so pages carry mixed bounds.
	for i := 0; i < 60_000; i++ {
		d.Lookup(rng.Intn(k / 2))
	}
	d.SyncFlush()
	d.opt.Retune()
	for i := 0; i < 4_000; i++ {
		if err := d.Insert(rng.Intn(k), -i); err != nil {
			t.Fatal(err)
		}
	}
	d.SyncFlush()
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	wantBounds := d.opt.state.Load().tree.PageErrorBounds()
	distinct := map[int]bool{}
	for _, b := range wantBounds {
		distinct[b] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("tuned store carries a single bound %v; the scenario proves nothing", distinct)
	}
	wantStats := d.Stats()
	wantPairs := dump(d)

	mem.Crash()
	rec, err := OpenDurable[int, int](mem, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	rec.SetAutoCheckpoint(false)
	gotBounds := rec.opt.state.Load().tree.PageErrorBounds()
	if len(gotBounds) != len(wantBounds) {
		t.Fatalf("recovered %d pages, want %d", len(gotBounds), len(wantBounds))
	}
	for i := range wantBounds {
		if gotBounds[i] != wantBounds[i] {
			t.Fatalf("page %d recovered with bound %d, checkpoint persisted %d",
				i, gotBounds[i], wantBounds[i])
		}
	}
	gotStats := rec.Stats()
	if gotStats.Pages != wantStats.Pages || gotStats.IndexSize != wantStats.IndexSize {
		t.Fatalf("recovered layout %d pages/%dB, want %d pages/%dB",
			gotStats.Pages, gotStats.IndexSize, wantStats.Pages, wantStats.IndexSize)
	}
	if err := rec.opt.state.Load().tree.CheckInvariants(); err != nil {
		t.Fatalf("recovered invariants: %v", err)
	}
	if !pairsEqual(dump(rec), wantPairs) {
		t.Fatal("recovered content differs from the checkpointed state")
	}
}
