package fitingtree_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"fitingtree"
)

// readerWriterIndex is the surface shared by the two concurrency facades,
// so the stress test exercises both through one driver.
type readerWriterIndex interface {
	Lookup(k uint64) (uint64, bool)
	Contains(k uint64) bool
	Each(k uint64, fn func(v uint64) bool)
	AscendRange(lo, hi uint64, fn func(k, v uint64) bool)
	LookupBatch(keys []uint64) ([]uint64, []bool)
	Insert(k uint64, v uint64)
	Delete(k uint64) bool
	Len() int
}

// stressIndex hammers idx with reader goroutines against one concurrent
// writer. Values always equal keys, so readers can validate every value
// they observe regardless of interleaving; run under -race this is the
// facade's data-race certification.
func stressIndex(t *testing.T, idx readerWriterIndex, readers int) {
	t.Helper()
	const (
		keySpace  = 1 << 14
		writerOps = 4000
	)
	var done atomic.Bool
	var wg sync.WaitGroup

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			batch := make([]uint64, 32)
			for !done.Load() {
				switch rng.Intn(4) {
				case 0:
					k := uint64(rng.Intn(keySpace))
					if v, ok := idx.Lookup(k); ok && v != k {
						t.Errorf("Lookup(%d) returned %d", k, v)
						return
					}
				case 1:
					k := uint64(rng.Intn(keySpace))
					idx.Each(k, func(v uint64) bool {
						if v != k {
							t.Errorf("Each(%d) yielded %d", k, v)
							return false
						}
						return true
					})
				case 2:
					lo := uint64(rng.Intn(keySpace))
					hi := lo + uint64(rng.Intn(256))
					prev := uint64(0)
					first := true
					idx.AscendRange(lo, hi, func(k, v uint64) bool {
						if k < lo || k > hi || v != k || (!first && k < prev) {
							t.Errorf("AscendRange(%d,%d) yielded (%d,%d) after %d", lo, hi, k, v, prev)
							return false
						}
						prev, first = k, false
						return true
					})
				case 3:
					for i := range batch {
						batch[i] = uint64(rng.Intn(keySpace))
					}
					vals, found := idx.LookupBatch(batch)
					for i := range batch {
						if found[i] && vals[i] != batch[i] {
							t.Errorf("LookupBatch[%d]=%d for key %d", i, vals[i], batch[i])
							return
						}
					}
				}
			}
		}(int64(r + 1))
	}

	// Single writer: random inserts and deletes across the key space.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < writerOps; i++ {
		k := uint64(rng.Intn(keySpace))
		if rng.Intn(3) == 0 {
			idx.Delete(k)
		} else {
			idx.Insert(k, k)
		}
	}
	done.Store(true)
	wg.Wait()

	if n := idx.Len(); n < 0 {
		t.Fatalf("Len = %d", n)
	}
}

func stressKeys() ([]uint64, []uint64) {
	keys := make([]uint64, 1<<13)
	for i := range keys {
		keys[i] = uint64(i * 2)
	}
	return keys, append([]uint64(nil), keys...)
}

func TestConcurrentStress(t *testing.T) {
	keys, vals := stressKeys()
	tr, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 64, BufferSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	stressIndex(t, fitingtree.NewConcurrent(tr), 4)
}

func TestOptimisticStress(t *testing.T) {
	keys, vals := stressKeys()
	tr, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 64, BufferSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	o := fitingtree.NewOptimistic(tr)
	o.SetFlushEvery(256) // several flushes over the writer's op stream
	stressIndex(t, o, 4)
}

// TestOptimisticVersionParity checks the seqlock-style stamp: even at
// rest, advancing by exactly two per published write, and unchanged by
// reads and no-op deletes.
func TestOptimisticVersionParity(t *testing.T) {
	keys, vals := stressKeys()
	tr, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 64})
	if err != nil {
		t.Fatal(err)
	}
	o := fitingtree.NewOptimistic(tr)
	v0 := o.Version()
	if v0%2 != 0 {
		t.Fatalf("initial version %d odd", v0)
	}
	o.Lookup(4)
	o.Delete(3) // absent: no publication
	if v := o.Version(); v != v0 {
		t.Fatalf("version moved to %d on reads/no-ops", v)
	}
	o.Insert(3, 3)
	if v := o.Version(); v != v0+2 {
		t.Fatalf("version %d after one write, want %d", v, v0+2)
	}
	o.Delete(3)
	if v := o.Version(); v != v0+4 {
		t.Fatalf("version %d after two writes, want %d", v, v0+4)
	}
}
