package fitingtree

import (
	"fmt"

	"fitingtree/internal/core"
	"fitingtree/internal/pager"
)

// ScrubSuper is one superblock slot's scrub result.
type ScrubSuper struct {
	// Valid reports whether the slot holds a checksummed superblock.
	Valid bool
	// Epoch is the slot's checkpoint epoch (meaningful only when Valid).
	Epoch uint64
}

// ScrubChunk is one live checkpoint chunk's scrub result.
type ScrubChunk struct {
	// Shard is the owning shard's index (always 0 for a single-tree
	// store).
	Shard int
	// Index is the chunk's position within its shard's manifest entry.
	Index int
	// Pages is the length of the chunk's blob page chain; Bytes its
	// decoded payload size.
	Pages int
	Bytes int
	// Elements is the number of (key, value) pairs the chunk carries.
	Elements int
}

// ScrubReport is Scrub's accounting of a checkpoint store's integrity.
type ScrubReport struct {
	// Supers describes both superblock slots; Epoch is the newest valid
	// one's — the checkpoint the rest of the report covers.
	Supers [2]ScrubSuper
	Epoch  uint64
	// Sharded reports the manifest's flavor: a cross-shard cut
	// (DurableSharded) or a single-tree checkpoint root (Durable).
	// Generation is the fence generation of a sharded cut, 0 otherwise.
	Sharded    bool
	Generation uint64
	// Shards is the number of trees in the cut; Chunks their live chunks
	// in (shard, index) order.
	Shards int
	Chunks []ScrubChunk
	// Elements is the total element count across every verified tree;
	// LivePages the number of device pages reachable from the committed
	// superblock (manifest chain included).
	Elements int
	// ManifestPages is the manifest blob's own chain length.
	ManifestPages int
	LivePages     int
}

// Scrub verifies a checkpoint store end to end without opening it for
// writing: both superblock slots are checksum-validated, the newest
// committed manifest is decoded (either flavor), every live chunk's blob
// page chain is walked with its per-page CRCs checked, every chunk is
// decoded, and each shard's tree is reassembled and run through the full
// structural invariant check. The WAL is not consulted: Scrub audits
// exactly the state a recovery would load before tail replay. The type
// parameters must match the store's key and value types.
func Scrub[K Key, V any](dev pager.Device) (*ScrubReport, error) {
	var rep ScrubReport
	var slots [2]pager.Super
	for slot := 0; slot < 2; slot++ {
		s, ok, err := pager.ReadSuperAt(dev, pager.PageID(slot))
		if err != nil {
			return nil, fmt.Errorf("fitingtree: scrub superblock %d: %w", slot, err)
		}
		rep.Supers[slot] = ScrubSuper{Valid: ok, Epoch: s.Epoch}
		slots[slot] = s
	}
	var super pager.Super
	have := false
	for slot := 0; slot < 2; slot++ {
		if rep.Supers[slot].Valid && (!have || slots[slot].Epoch > super.Epoch) {
			super = slots[slot]
			have = true
		}
	}
	if !have {
		return &rep, fmt.Errorf("fitingtree: scrub: no valid superblock")
	}
	rep.Epoch = super.Epoch

	store := pager.NewStore(dev)
	blob, mchain, err := store.GetChain(super.Manifest, nil, nil)
	if err != nil {
		return &rep, fmt.Errorf("fitingtree: scrub manifest: %w", err)
	}
	rep.ManifestPages = len(mchain)
	rep.LivePages = len(mchain)

	// The manifest decides the store's flavor: a self-describing
	// cross-shard cut, or the single-tree gob root.
	var shardChunks [][]pager.PageID
	var opts Options
	if m, err := core.DecodeShardManifest(blob); err == nil {
		rep.Sharded = true
		rep.Generation = m.Generation
		opts = m.Options
		shardChunks = make([][]pager.PageID, len(m.Shards))
		for i, cut := range m.Shards {
			shardChunks[i] = make([]pager.PageID, len(cut.Chunks))
			for j, c := range cut.Chunks {
				shardChunks[i][j] = pager.PageID(c)
			}
		}
	} else {
		m, err := loadManifest(store, super.Manifest)
		if err != nil {
			return &rep, fmt.Errorf("fitingtree: scrub: manifest is neither flavor: %w", err)
		}
		opts = m.Options
		shardChunks = [][]pager.PageID{m.Chunks}
	}
	rep.Shards = len(shardChunks)

	snapCodec := core.NewSnapCodec[K, V]()
	for shard, chunkHeads := range shardChunks {
		snaps := make([]core.ChunkSnap[K, V], len(chunkHeads))
		for i, head := range chunkHeads {
			blob, chain, err := store.GetChain(head, nil, nil)
			if err != nil {
				return &rep, fmt.Errorf("fitingtree: scrub shard %d chunk %d: %w", shard, i, err)
			}
			snap, err := snapCodec.Decode(blob)
			if err != nil {
				return &rep, fmt.Errorf("fitingtree: scrub shard %d chunk %d: %w", shard, i, err)
			}
			snaps[i] = snap
			n := 0
			for _, p := range snap.Pages {
				n += len(p.Keys)
			}
			rep.Chunks = append(rep.Chunks, ScrubChunk{
				Shard:    shard,
				Index:    i,
				Pages:    len(chain),
				Bytes:    len(blob),
				Elements: n,
			})
			rep.LivePages += len(chain)
		}
		tree, err := core.AssembleChunks(snaps, opts)
		if err != nil {
			return &rep, fmt.Errorf("fitingtree: scrub shard %d: %w", shard, err)
		}
		if err := tree.CheckInvariants(); err != nil {
			return &rep, fmt.Errorf("fitingtree: scrub shard %d: %w", shard, err)
		}
		rep.Elements += tree.Len()
	}
	return &rep, nil
}
