package fitingtree

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the snapshot decoder. The contract
// under fuzzing: Decode either returns an error or a structurally valid
// tree (sorted keys, Len consistent with a full scan) — never a panic,
// never a silently corrupt tree.
func FuzzDecode(f *testing.F) {
	// Seed corpus: valid snapshots of several shapes, plus truncations and
	// single-byte corruptions of one of them, so the fuzzer starts at the
	// format's interesting boundaries instead of random gob noise.
	seed := func(keys []int, vals []int, opts Options) []byte {
		t, err := BulkLoad(keys, vals, opts)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Encode(t, &buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add([]byte(nil))
	f.Add(seed(nil, nil, Options{}))
	f.Add(seed([]int{1}, []int{10}, Options{}))
	base := seed([]int{1, 2, 3, 100, 200, 300}, []int{1, 2, 3, 4, 5, 6}, Options{Error: 4})
	f.Add(base)
	for _, cut := range []int{1, len(base) / 2, len(base) - 1} {
		f.Add(base[:cut])
	}
	for _, at := range []int{0, len(base) / 3, len(base) - 2} {
		mut := append([]byte(nil), base...)
		mut[at] ^= 0x40
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tree, err := Decode[int, int](bytes.NewReader(data))
		if err != nil {
			return
		}
		n := 0
		prev := 0
		tree.Ascend(func(k, v int) bool {
			if n > 0 && k < prev {
				t.Fatalf("decoded tree out of order: %d after %d", k, prev)
			}
			prev = k
			n++
			return true
		})
		if n != tree.Len() {
			t.Fatalf("decoded tree scans %d elements but Len() = %d", n, tree.Len())
		}
	})
}
