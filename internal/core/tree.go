// Package core implements the FITing-Tree index (the paper's primary
// contribution).
//
// A FITing-Tree approximates the monotone key->position function of a
// sorted column with piece-wise linear segments whose maximal interpolation
// error is bounded by a tunable threshold E (Section 2). Each segment's
// data lives in a variable-sized table page; the segments' starting keys,
// slopes, and page locations are organized in a B+ tree (Figure 2). A point
// lookup walks the inner tree to the owning page, interpolates the key's
// position, and binary-searches only the 2E+1 window around the prediction
// (Section 4). Inserts go to a fixed-size sorted buffer attached to each
// page; a full buffer is merged with the page and re-segmented with the
// same one-pass algorithm, so the error guarantee survives updates
// (Section 5). To make the guarantee hold while elements sit in the
// buffer, the segmentation error is transparently reduced to
// E - buffer capacity.
//
// The leaf level is a chunked page chain: pages in global key order are
// grouped into immutable chunks of at most chunkMax pages, and the router
// maps a segment's start key to its page's stable address (chunk pointer,
// index within the chunk). Pages carry no links, chunks never mutate their
// page spine once another tree can reach them, and the router itself is a
// persistently cloneable structure — so MergeCOW publishes a new tree that
// shares, by reference, every untouched page, every untouched chunk, and
// (with the B+ tree router) every untouched router node with its parent.
// Because a page's address names its chunk rather than a global position,
// a splice that changes the page count renumbers nothing outside the
// chunks it rebuilds: there is no router suffix to shift. Navigation that
// previously walked a flat slice is cursor arithmetic over (chunk, page)
// pairs.
//
// Duplicate keys are fully supported (a requirement for non-clustered
// indexes): consecutive pages may share a starting key, in which case only
// the first of the run is registered in the inner tree and lookups walk the
// page chain for the remainder.
package core

import (
	"fmt"
	"sync/atomic"

	"fitingtree/internal/btree"
	"fitingtree/internal/num"
	"fitingtree/internal/segment"
)

// DefaultError is the error threshold used when Options.Error is zero.
const DefaultError = 100

// SearchStrategy selects how a lookup locates a key inside its segment's
// error window (Section 4.1.2: "it is possible to utilize any well-known
// search algorithm, including linear search, binary search, or exponential
// search").
type SearchStrategy int

const (
	// SearchBinary binary-searches the 2E+1 window (the paper's default).
	SearchBinary SearchStrategy = iota
	// SearchLinear scans outward from the predicted position; the paper
	// notes it can win for very small error thresholds.
	SearchLinear
	// SearchExponential gallops from the predicted position, doubling the
	// step until the key is bracketed, then binary-searches the bracket.
	SearchExponential
)

// Options configures a FITing-Tree.
type Options struct {
	// Error is the maximum distance E between an element's predicted and
	// true position, including elements resident in insert buffers. The
	// lookup window inside a page is 2E+1 elements. Defaults to
	// DefaultError; must be >= 1.
	Error int

	// BufferSize is the per-page insert buffer capacity. The segmentation
	// error is Error - BufferSize, so it must be strictly less than Error.
	// A negative value selects the paper's default of Error/2; zero means
	// no buffering (every insert merges immediately).
	BufferSize int

	// Fanout is the order (max keys per node) of the inner B+ tree.
	// Defaults to btree.DefaultOrder.
	Fanout int

	// FillFactor is the inner tree's bulk-load fill in (0, 1]. Defaults
	// to 1.
	FillFactor float64

	// Search selects the in-segment search algorithm; defaults to
	// SearchBinary.
	Search SearchStrategy

	// Router selects the structure organizing segment routing keys;
	// defaults to RouterBTree. RouterImplicit is the read-optimized
	// variant the paper sketches in Section 2.2.
	Router RouterKind
}

// withDefaults normalizes opts, returning an error for invalid settings.
func (o Options) withDefaults() (Options, error) {
	if o.Error == 0 {
		o.Error = DefaultError
	}
	if o.Error < 1 {
		return o, fmt.Errorf("fitingtree: Error = %d, must be >= 1", o.Error)
	}
	if o.BufferSize < 0 {
		o.BufferSize = o.Error / 2
	}
	if o.BufferSize >= o.Error {
		return o, fmt.Errorf("fitingtree: BufferSize %d must be < Error %d", o.BufferSize, o.Error)
	}
	if o.Fanout == 0 {
		o.Fanout = btree.DefaultOrder
	}
	if o.Fanout < 3 {
		return o, fmt.Errorf("fitingtree: Fanout = %d, must be >= 3", o.Fanout)
	}
	if o.FillFactor == 0 {
		o.FillFactor = 1
	}
	if o.FillFactor < 0 || o.FillFactor > 1 {
		return o, fmt.Errorf("fitingtree: FillFactor = %f, must be in (0, 1]", o.FillFactor)
	}
	if o.Search < SearchBinary || o.Search > SearchExponential {
		return o, fmt.Errorf("fitingtree: unknown search strategy %d", o.Search)
	}
	if o.Router < RouterBTree || o.Router > RouterImplicit {
		return o, fmt.Errorf("fitingtree: unknown router kind %d", o.Router)
	}
	return o, nil
}

// segError returns the error budget left for segmentation after reserving
// room for the insert buffer (Section 5).
func (o Options) segError() int { return o.Error - o.BufferSize }

// pageSeq issues process-unique page and chunk identities (see page.id and
// chunk.id).
var pageSeq atomic.Uint64

// page is one variable-sized table page: the data of one segment plus its
// insert buffer. Pages carry no chain links — their position is a property
// of the chunk holding them, not of the page — so a page is a value that
// can appear in several trees at once. A page reachable from more than one
// tree (published by MergeCOW) must never be mutated — with one carve-out:
// reads and writes are load counters touched only through sync/atomic, the
// self-tuning feedback signal (see tuner.go), and carry no structural
// meaning.
type page[K num.Key, V any] struct {
	// reads and writes lead the struct so the 64-bit atomic accesses stay
	// aligned on 32-bit platforms. reads approximates lookups served by
	// this page (sampled: 1 in readSamplePages pages counts, scaled back
	// up); writes approximates merge ops folded into the page's region,
	// carried forward with decay across rebuilds (see carryLoad).
	reads  uint64
	writes uint64

	id      uint64             // process-unique identity, for sharing diagnostics
	seg     segment.Segment[K] // prediction model over keys as of last (re)build
	werr    int                // segmentation error bound this page was built under (>= 1)
	keys    []K                // sorted segment data
	vals    []V                // parallel to keys
	pref    []uint64           // string keys only: parallel 8-byte ordering prefixes
	fixed8  bool               // string keys only: every key is exactly 8 bytes
	bufKeys []K                // sorted insert buffer
	bufVals []V
	deletes int // elements removed from keys since last rebuild
}

// newPage allocates a page with a fresh identity over the given segment
// data, built under segmentation error bound werr.
func newPage[K num.Key, V any](seg segment.Segment[K], keys []K, vals []V, werr int) *page[K, V] {
	return &page[K, V]{id: pageSeq.Add(1), seg: seg, werr: werr, keys: keys, vals: vals,
		pref: stringPrefixes(keys), fixed8: allLen8(keys)}
}

// stringPrefixes builds the prefix sidecar of a string-keyed page: the
// num.StringPrefix of every key, in key order. String data lives behind a
// header, so probing it costs two dependent loads to scattered memory;
// the sidecar gives the window search one contiguous integer array to
// probe — the same access pattern a numeric page enjoys — with the full
// byte-wise comparison paid only on a prefix tie. Non-string keys get nil.
func stringPrefixes[K num.Key](keys []K) []uint64 {
	ks, ok := any(keys).([]string)
	if !ok || len(ks) == 0 {
		return nil
	}
	pref := make([]uint64, len(ks))
	for i, s := range ks {
		pref[i] = num.StringPrefix(s)
	}
	return pref
}

// allLen8 reports whether keys are strings of exactly 8 bytes each — the
// shape every fixed-width keycodec encoding (Uint64, Int64, Float64,
// Time) produces. For such keys the 8-byte prefix IS the key: prefix
// order coincides with byte-wise order and prefix equality with string
// equality, so searches can run entirely on the integer sidecar without
// ever dereferencing string data. False for non-string or empty keys.
func allLen8[K num.Key](keys []K) bool {
	ks, ok := any(keys).([]string)
	if !ok || len(ks) == 0 {
		return false
	}
	for _, s := range ks {
		if len(s) != 8 {
			return false
		}
	}
	return true
}

// start returns the page's first key as of the last rebuild (its routing
// key in the inner tree).
func (p *page[K, V]) start() K { return p.seg.Start }

// chunkTarget is the page count freshly cut chunks aim for, and chunkMax
// the in-place growth bound: a splice that pushes a chunk past chunkMax
// re-cuts it into chunkTarget-sized chunks. The pair trades the top-level
// chunk-slice copy a publication pays (total pages / chunkTarget pointer
// moves) against the routing entries a chunk replacement refreshes (at
// most chunkMax inserts).
const (
	chunkTarget = 64
	chunkMax    = 2 * chunkTarget
)

// chunk is one span of consecutive pages of the chain. The router
// addresses a page as (chunk pointer, index within the chunk), so a
// chunk's page spine is stable storage: once a chunk is reachable from
// more than one tree (published by MergeCOW) it must never be mutated —
// flushes replace whole chunks instead. A tree that owns its chunks
// exclusively (the plain single-writer Tree) may splice pages within a
// chunk in place, refreshing only that chunk's routing entries.
type chunk[K num.Key, V any] struct {
	id    uint64 // process-unique identity, for sharing diagnostics
	pages []*page[K, V]
}

// newChunk allocates a chunk with a fresh identity over pages.
func newChunk[K num.Key, V any](pages []*page[K, V]) *chunk[K, V] {
	return &chunk[K, V]{id: pageSeq.Add(1), pages: pages}
}

// start returns the chunk's first routing key. Chunks are never empty.
func (c *chunk[K, V]) start() K { return c.pages[0].start() }

// cutChunks groups pages into fresh chunks of chunkTarget pages each.
func cutChunks[K num.Key, V any](pages []*page[K, V]) []*chunk[K, V] {
	return cutChunksPlan(pages, nil)
}

// cutChunksPlan is cutChunks with a per-region chunk size: each chunk's
// page-count target is the tuner's target for the region holding the
// chunk's first page (chunkTarget when plan is nil or the region has no
// override). Smaller targets in write-hot regions shrink the width of
// future re-cuts; larger ones in cold regions shrink the top-level spine
// copy a publication pays.
func cutChunksPlan[K num.Key, V any](pages []*page[K, V], plan *regionPlan[K]) []*chunk[K, V] {
	if len(pages) == 0 {
		return nil
	}
	chunks := make([]*chunk[K, V], 0, (len(pages)+chunkTarget-1)/chunkTarget)
	for at := 0; at < len(pages); {
		target := chunkTarget
		if plan != nil {
			target = plan.chunkTargetFor(pages[at].start())
		}
		end := num.MinInt(at+target, len(pages))
		chunks = append(chunks, newChunk(pages[at:end:end]))
		at = end
	}
	return chunks
}

// cursor identifies a page during navigation: its chunk (by pointer), the
// page's index within it, and the chunk's index in the tree's chunk
// slice. The router itself stores no cursors — it routes straight to
// *page, an address that stays valid across every splice that carries the
// page — so cursors are derived on demand (see pageCursor) and only by
// the operations that actually walk the chain.
type cursor[K num.Key, V any] struct {
	c  *chunk[K, V]
	pi int // page index within c
	ci int // index of c in Tree.chunks
}

// Counters records maintenance activity, exposed for evaluation
// (e.g. Figure 7's split-rate discussion).
type Counters struct {
	Inserts   int // InsertKey calls
	Deletes   int // successful Delete calls
	Merges    int // buffer merge + re-segmentation events
	PagesMade int // pages created by merges (not counting bulk load)
}

// Tree is a clustered FITing-Tree index from K to V.
//
// Build one with BulkLoad. The zero value is not usable. Tree is not safe
// for concurrent use; wrap it or serialize access externally.
type Tree[K num.Key, V any] struct {
	opts   Options
	idx    router[K, V]
	chunks []*chunk[K, V] // chunked page chain in ascending key order
	size   int            // total elements (pages + buffers)

	// Hot-path state precomputed at construction so lookups neither
	// recompute option-derived values nor dispatch through the router
	// interface: rbt/rim hold the concrete router (exactly one is non-nil)
	// for devirtualized floor searches.
	segErr int            // opts.segError(), the in-page window half-width
	strat  SearchStrategy // opts.Search
	rbt    *btree.Tree[K, *page[K, V]]
	rim    *implicitRouter[K, V]

	counters Counters

	// tune is the self-tuning state shared by every tree in a MergeCOW
	// lineage (the pointer is carried, not copied, across publications):
	// the per-region layout plan, the measured router-maintenance
	// crossover, and the calibration latch. See tuner.go. May be nil for
	// trees built by internal surgery; all tuner entry points tolerate
	// that.
	tune *tuneState[K]
}

// initRouter installs a fresh empty router of the kind selected by o,
// keeping both the interface (for cold structural operations) and the
// concrete pointer (for the devirtualized lookup path).
func (t *Tree[K, V]) initRouter(o Options) {
	if o.Router == RouterImplicit {
		r := &implicitRouter[K, V]{}
		t.idx, t.rim = r, r
		return
	}
	r := &btreeRouter[K, V]{tr: btree.New[K, *page[K, V]](o.Fanout)}
	t.idx, t.rbt = r, r.tr
}

// adoptRouter installs a persistent clone of src's router: the B+ tree
// router shares every node with src until a mutation copies its descent
// path (btree.CloneCOW); the implicit router copies its flat arrays, the
// documented O(segments) cost of the read-optimized variant. src is only
// read, so adopting is safe while other goroutines read src.
func (t *Tree[K, V]) adoptRouter(src *Tree[K, V]) {
	if src.rim != nil {
		r := src.rim.clone()
		t.idx, t.rim = r, r
		return
	}
	tr := src.rbt.CloneCOW()
	t.idx, t.rbt = &btreeRouter[K, V]{tr: tr}, tr
}

// routedEntries derives the router's content from a chunked chain: one
// entry per run of equal start keys, keyed by the run's start and valued
// with the run's first page.
func routedEntries[K num.Key, V any](chunks []*chunk[K, V]) ([]K, []*page[K, V]) {
	var keys []K
	var pages []*page[K, V]
	var prev *page[K, V]
	for _, c := range chunks {
		for _, p := range c.pages {
			if prev == nil || prev.start() != p.start() {
				keys = append(keys, p.start())
				pages = append(pages, p)
			}
			prev = p
		}
	}
	return keys, pages
}

// loadRouter bulk-loads the router from the tree's chunks.
func (t *Tree[K, V]) loadRouter(fill float64) error {
	rk, rl := routedEntries(t.chunks)
	return t.idx.bulkLoad(rk, rl, fill)
}

// BulkLoad builds a FITing-Tree over sorted keys (duplicates allowed) and
// their parallel values using the one-pass ShrinkingCone segmentation
// (Section 3). The input slices are copied into per-segment pages.
func BulkLoad[K num.Key, V any](keys []K, vals []V, opts Options) (*Tree[K, V], error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("fitingtree: %d keys but %d values", len(keys), len(vals))
	}
	for i := range keys {
		// NaN float keys compare false against everything, so they would
		// slip through the sortedness check and corrupt routing.
		if keys[i] != keys[i] {
			return nil, fmt.Errorf("fitingtree: NaN key at index %d", i)
		}
		if i > 0 && keys[i] < keys[i-1] {
			return nil, fmt.Errorf("fitingtree: keys not sorted at index %d", i)
		}
	}
	t := &Tree[K, V]{
		opts:   o,
		size:   len(keys),
		segErr: o.segError(),
		strat:  o.Search,
		tune:   &tuneState[K]{},
	}
	t.initRouter(o)
	if len(keys) == 0 {
		return t, nil
	}

	segs := segment.ShrinkingCone(keys, o.segError())
	pages := make([]*page[K, V], len(segs))
	for i, s := range segs {
		pages[i] = newPage(
			segment.Segment[K]{Start: s.Start, StartPos: 0, Count: s.Count, Slope: s.Slope},
			append([]K(nil), keys[s.StartPos:s.EndPos()]...),
			append([]V(nil), vals[s.StartPos:s.EndPos()]...),
			o.segError(),
		)
	}
	t.chunks = cutChunks(pages)
	// Only the first page of a run of equal start keys goes in the inner
	// tree; lookups reach the rest via the chain.
	if err := t.loadRouter(o.FillFactor); err != nil {
		return nil, fmt.Errorf("fitingtree: inner tree: %w", err)
	}
	return t, nil
}

// Options returns the tree's normalized options.
func (t *Tree[K, V]) Options() Options { return t.opts }

// Len returns the number of stored elements, including buffered inserts.
func (t *Tree[K, V]) Len() int { return t.size }

// Counters returns maintenance counters accumulated since the build.
func (t *Tree[K, V]) Counters() Counters { return t.counters }

// PageIDs returns the identity of every page in chain order. Two trees
// related by MergeCOW share a page iff the same id appears in both; tests
// and diagnostics use this to verify structural sharing without reaching
// into the chain.
func (t *Tree[K, V]) PageIDs() []uint64 {
	var ids []uint64
	for _, c := range t.chunks {
		for _, p := range c.pages {
			ids = append(ids, p.id)
		}
	}
	return ids
}

// ChunkIDs returns the identity of every chain chunk in order. Like
// PageIDs it is a sharing diagnostic: MergeCOW re-cuts only the chunks a
// batch dirties, so ids outside the dirty intervals must survive into the
// published tree.
func (t *Tree[K, V]) ChunkIDs() []uint64 {
	ids := make([]uint64, len(t.chunks))
	for i, c := range t.chunks {
		ids[i] = c.id
	}
	return ids
}

// pageOf returns the page the cursor addresses.
func (t *Tree[K, V]) pageOf(cu cursor[K, V]) *page[K, V] { return cu.c.pages[cu.pi] }

// pageCursor finds the cursor of a page the router handed out. Chunk and
// page start keys ascend, so two binary searches narrow to the page's
// equal-start run; the residual pointer scan only exceeds one step inside
// long duplicate runs. Point lookups that hit the routed page itself never
// call this — only chain walks (duplicate spill, run traversal, splices)
// pay for coordinates.
func (t *Tree[K, V]) pageCursor(p *page[K, V]) cursor[K, V] {
	s := p.start()
	// Last chunk whose start key is <= s.
	lo, hi := 0, len(t.chunks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.chunks[mid].start() <= s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for ci := lo - 1; ci >= 0; ci-- {
		c := t.chunks[ci]
		// Leftmost page with start >= s in this chunk, then scan the
		// equal-start run for identity.
		plo, phi := 0, len(c.pages)
		for plo < phi {
			mid := int(uint(plo+phi) >> 1)
			if c.pages[mid].start() < s {
				plo = mid + 1
			} else {
				phi = mid
			}
		}
		for pi := plo; pi < len(c.pages) && c.pages[pi].start() == s; pi++ {
			if c.pages[pi] == p {
				return cursor[K, V]{c: c, pi: pi, ci: ci}
			}
		}
		if c.start() != s {
			// The run begins inside this chunk, so it cannot extend into
			// an earlier one.
			break
		}
	}
	panic("fitingtree: page not in chain")
}

// next returns the cursor one page forward in chain order.
func (t *Tree[K, V]) next(cu cursor[K, V]) (cursor[K, V], bool) {
	if cu.pi+1 < len(cu.c.pages) {
		cu.pi++
		return cu, true
	}
	if cu.ci+1 >= len(t.chunks) {
		return cu, false
	}
	c := t.chunks[cu.ci+1]
	return cursor[K, V]{c: c, pi: 0, ci: cu.ci + 1}, true
}

// prev returns the cursor one page backward in chain order.
func (t *Tree[K, V]) prev(cu cursor[K, V]) (cursor[K, V], bool) {
	if cu.pi > 0 {
		cu.pi--
		return cu, true
	}
	if cu.ci == 0 {
		return cu, false
	}
	c := t.chunks[cu.ci-1]
	return cursor[K, V]{c: c, pi: len(c.pages) - 1, ci: cu.ci - 1}, true
}

// first returns the cursor of the chain's first page; ok is false for an
// empty tree.
func (t *Tree[K, V]) first() (cursor[K, V], bool) {
	if len(t.chunks) == 0 {
		return cursor[K, V]{}, false
	}
	return cursor[K, V]{c: t.chunks[0], pi: 0, ci: 0}, true
}

// last returns the cursor of the chain's last page; ok is false for an
// empty tree.
func (t *Tree[K, V]) last() (cursor[K, V], bool) {
	if len(t.chunks) == 0 {
		return cursor[K, V]{}, false
	}
	ci := len(t.chunks) - 1
	c := t.chunks[ci]
	return cursor[K, V]{c: c, pi: len(c.pages) - 1, ci: ci}, true
}

// isRouted reports whether the page at cu carries its own routing entry:
// only the first page of a run of equal start keys is registered in the
// router; the rest are reached by walking the chain.
func (t *Tree[K, V]) isRouted(cu cursor[K, V]) bool {
	p, ok := t.prev(cu)
	return !ok || t.pageOf(p).start() != t.pageOf(cu).start()
}

// locatePage returns the page whose range contains k: the router's floor
// entry, or the chain's first page when k precedes every routing key. ok
// is false only for an empty tree. The router call is devirtualized: the
// concrete floor search is reached directly rather than through the
// router interface, which would block inlining on the hottest call of a
// lookup. No chain coordinates are computed — the common point lookup
// searches the returned page and never needs any.
func (t *Tree[K, V]) locatePage(k K) (*page[K, V], bool) {
	if len(t.chunks) == 0 {
		return nil, false
	}
	var p *page[K, V]
	var ok bool
	if t.rim != nil {
		p, ok = t.rim.floor(k)
	} else {
		_, p, ok = t.rbt.Floor(k)
	}
	if !ok {
		return t.chunks[0].pages[0], true
	}
	return p, true
}

// locateCursor is locatePage with chain coordinates attached, for the
// operations that walk the chain from the routed page.
func (t *Tree[K, V]) locateCursor(k K) (cursor[K, V], bool) {
	p, ok := t.locatePage(k)
	if !ok {
		return cursor[K, V]{}, false
	}
	return t.pageCursor(p), true
}

// searchPage looks for k inside a single page (segment data window plus
// buffer). It returns the value of the first match found. The window
// half-width is the page's own build-time error bound, not the tree
// default: under a region plan, pages in different regions carry
// different ε.
func (t *Tree[K, V]) searchPage(p *page[K, V], k K) (V, bool) {
	if i, ok := p.dataSearch(k, p.werr, t.strat); ok {
		return p.vals[i], true
	}
	if i, ok := findKey(p.bufKeys, k); ok {
		return p.bufVals[i], true
	}
	var zero V
	return zero, false
}

// firstCandidate returns the cursor of the earliest page that could
// contain k. Usually that is the router's floor page, but duplicate runs
// can spill keys equal to k into the tails of preceding pages, and
// deletions can leave a key only in an earlier page of the run.
func (t *Tree[K, V]) firstCandidate(k K) (cursor[K, V], bool) {
	cu, ok := t.locateCursor(k)
	if !ok {
		return cu, false
	}
	return t.backUp(cu, k), true
}

// backUp rewinds cu over the preceding pages whose content reaches k
// (duplicate spill).
func (t *Tree[K, V]) backUp(cu cursor[K, V], k K) cursor[K, V] {
	for {
		p, ok := t.prev(cu)
		if !ok || t.pageOf(p).lastKey() < k {
			return cu
		}
		cu = p
	}
}

// Lookup returns a value stored under k. When k has duplicates, an
// arbitrary match is returned; use Each for all of them.
func (t *Tree[K, V]) Lookup(k K) (V, bool) {
	p, ok := t.locatePage(k)
	if !ok {
		var zero V
		return zero, false
	}
	// Read-load sampling for the tuner: 1 in readSamplePages pages (by
	// identity, so the gate costs one mask on data already loaded) counts
	// its lookups, scaled back up. Pages off the sample never touch
	// shared memory here.
	if p.id&(readSamplePages-1) == 0 {
		atomic.AddUint64(&p.reads, readSamplePages)
	}
	// Fast path: the routed page holds a match; no chain coordinates are
	// ever derived.
	if v, found := t.searchPage(p, k); found {
		return v, true
	}
	// Miss on the routed page: the key may sit in a preceding page
	// (duplicate spill, deletions) or a later page of an equal-start run.
	return t.searchFrom(t.pageCursor(p), k)
}

// Contains reports whether k is present.
func (t *Tree[K, V]) Contains(k K) bool {
	_, ok := t.Lookup(k)
	return ok
}

// Each calls fn for every element with key exactly k, in page order, until
// fn returns false. Values in page data are visited before buffered values
// of the same page.
func (t *Tree[K, V]) Each(k K, fn func(v V) bool) {
	cu, ok := t.firstCandidate(k)
	if !ok {
		return
	}
	for {
		if p := t.pageOf(cu); !p.eachMatch(k, p.werr, t.strat, fn) {
			return
		}
		nx, has := t.next(cu)
		if !has || t.pageOf(nx).start() > k {
			return
		}
		cu = nx
	}
}

// dataSearch looks for k in the page's sorted data, restricted to the
// prediction window of width 2*err around the interpolated position
// (widened transparently by pending deletions, which can shift true
// positions). It returns the index of the leftmost element equal to k.
func (p *page[K, V]) dataSearch(k K, err int, strat SearchStrategy) (int, bool) {
	n := len(p.keys)
	if n == 0 {
		return 0, false
	}
	w := err + p.deletes
	pred := p.seg.Predict(k)
	lo := num.ClampInt(int(pred)-w, 0, n-1)
	hi := num.ClampInt(int(pred)+w+1, 0, n) // exclusive
	var i int
	var ok bool
	if ks, isStr := any(p.keys).([]string); isStr && p.pref != nil {
		kk := any(k).(string)
		kp := num.StringPrefix(kk)
		if p.fixed8 && len(kk) == 8 {
			// Fixed-width codec keys: the sidecar is a lossless image of
			// the key column, so the search never touches string data.
			at := num.ClampInt(int(pred), lo, hi-1)
			switch strat {
			case SearchLinear:
				i, ok = linearSearch(p.pref, lo, hi, at, kp)
			case SearchExponential:
				i, ok = exponentialSearch(p.pref, lo, hi, at, kp)
			default:
				i, ok = binarySearch(p.pref, lo, hi, kp)
			}
			if !ok {
				return i, false
			}
			for i > 0 && p.pref[i-1] == kp {
				i--
			}
			return i, true
		}
		i, ok = prefixWindowSearch(p.pref, ks, lo, hi, num.ClampInt(int(pred), lo, hi-1), kk, kp, strat)
		if !ok {
			return i, false
		}
		for i > 0 && p.pref[i-1] == kp && ks[i-1] == kk {
			i--
		}
		return i, true
	}
	switch strat {
	case SearchLinear:
		i, ok = linearSearch(p.keys, lo, hi, num.ClampInt(int(pred), lo, hi-1), k)
	case SearchExponential:
		i, ok = exponentialSearch(p.keys, lo, hi, num.ClampInt(int(pred), lo, hi-1), k)
	default:
		i, ok = binarySearch(p.keys, lo, hi, k)
	}
	if !ok {
		return i, false
	}
	// Normalize to the leftmost duplicate; every copy of k lies inside the
	// window, so the rewind is bounded by 2*err.
	for i > 0 && p.keys[i-1] == k {
		i--
	}
	return i, true
}

// prefixWindowSearch is dataSearch's window search for string keys. The
// probes bisect the page's prefix sidecar — one contiguous integer array,
// the access pattern a numeric page enjoys — and the prefix is weakly
// monotone, so an unequal prefix pair decides the order with one integer
// compare. Only a prefix tie dereferences the actual strings. Ordered-
// bytes codec keys resolve almost every probe on the integer path, which
// is what keeps string-keyed lookups within small-constant reach of
// native numeric ones.
func prefixWindowSearch(pref []uint64, keys []string, lo, hi, at int, k string, kp uint64, strat SearchStrategy) (int, bool) {
	switch strat {
	case SearchLinear:
		return prefixLinearSearch(pref, keys, lo, hi, at, k, kp)
	case SearchExponential:
		return prefixExponentialSearch(pref, keys, lo, hi, at, k, kp)
	}
	return prefixBinarySearch(pref, keys, lo, hi, k, kp)
}

// prefixBinarySearch is binarySearch over the prefix sidecar.
func prefixBinarySearch(pref []uint64, keys []string, lo, hi int, k string, kp uint64) (int, bool) {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		mp := pref[mid]
		if mp < kp || (mp == kp && keys[mid] < k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(keys) && pref[lo] == kp && keys[lo] == k {
		return lo, true
	}
	return lo, false
}

// prefixLinearSearch is linearSearch over the prefix sidecar.
func prefixLinearSearch(pref []uint64, keys []string, lo, hi, at int, k string, kp uint64) (int, bool) {
	if pref[at] < kp || (pref[at] == kp && keys[at] < k) {
		for i := at; i < hi; i++ {
			p := pref[i]
			if p < kp {
				continue
			}
			if p > kp {
				return i, false
			}
			if keys[i] == k {
				return i, true
			}
			if keys[i] > k {
				return i, false
			}
		}
		return hi, false
	}
	for i := at; i >= lo; i-- {
		p := pref[i]
		if p > kp {
			continue
		}
		if p < kp {
			return i + 1, false
		}
		if keys[i] == k {
			return i, true
		}
		if keys[i] < k {
			return i + 1, false
		}
	}
	return lo, false
}

// prefixExponentialSearch is exponentialSearch over the prefix sidecar.
func prefixExponentialSearch(pref []uint64, keys []string, lo, hi, at int, k string, kp uint64) (int, bool) {
	if pref[at] < kp || (pref[at] == kp && keys[at] < k) {
		step := 1
		prev := at
		i := at + 1
		for i < hi {
			p := pref[i]
			if !(p < kp || (p == kp && keys[i] < k)) {
				break
			}
			prev = i
			i += step
			step *= 2
		}
		return prefixBinarySearch(pref, keys, prev+1, num.MinInt(i+1, hi), k, kp)
	}
	step := 1
	prev := at
	i := at - 1
	for i >= lo {
		p := pref[i]
		if !(p > kp || (p == kp && keys[i] > k)) {
			break
		}
		prev = i
		i -= step
		step *= 2
	}
	return prefixBinarySearch(pref, keys, num.MaxInt(i, lo), prev+1, k, kp)
}

// binarySearch returns the leftmost index of k in keys[lo:hi).
func binarySearch[K num.Key](keys []K, lo, hi int, k K) (int, bool) {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(keys) && keys[lo] == k {
		return lo, true
	}
	return lo, false
}

// linearSearch scans from the predicted position toward k within
// keys[lo:hi).
func linearSearch[K num.Key](keys []K, lo, hi, at int, k K) (int, bool) {
	if keys[at] < k {
		for i := at; i < hi; i++ {
			if keys[i] == k {
				return i, true
			}
			if keys[i] > k {
				return i, false
			}
		}
		return hi, false
	}
	for i := at; i >= lo; i-- {
		if keys[i] == k {
			return i, true
		}
		if keys[i] < k {
			return i + 1, false
		}
	}
	return lo, false
}

// exponentialSearch gallops from the predicted position with doubling
// steps until k is bracketed, then binary-searches the bracket. All work
// stays inside keys[lo:hi).
func exponentialSearch[K num.Key](keys []K, lo, hi, at int, k K) (int, bool) {
	if keys[at] < k {
		step := 1
		prev := at
		i := at + 1
		for i < hi && keys[i] < k {
			prev = i
			i += step
			step *= 2
		}
		return binarySearch(keys, prev+1, num.MinInt(i+1, hi), k)
	}
	step := 1
	prev := at
	i := at - 1
	for i >= lo && keys[i] > k {
		prev = i
		i -= step
		step *= 2
	}
	return binarySearch(keys, num.MaxInt(i, lo), prev+1, k)
}

// eachMatch visits every element equal to k in this page; it reports false
// if fn requested a stop.
func (p *page[K, V]) eachMatch(k K, err int, strat SearchStrategy, fn func(v V) bool) bool {
	if i, ok := p.dataSearch(k, err, strat); ok {
		for j := i; j < len(p.keys) && p.keys[j] == k; j++ {
			if !fn(p.vals[j]) {
				return false
			}
		}
	}
	if i, ok := findKey(p.bufKeys, k); ok {
		for j := i; j < len(p.bufKeys) && p.bufKeys[j] == k; j++ {
			if !fn(p.bufVals[j]) {
				return false
			}
		}
	}
	return true
}

// findKey binary-searches a small sorted slice for the first occurrence of
// k.
func findKey[K num.Key](keys []K, k K) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && keys[lo] == k
}
