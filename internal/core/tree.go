// Package core implements the FITing-Tree index (the paper's primary
// contribution).
//
// A FITing-Tree approximates the monotone key->position function of a
// sorted column with piece-wise linear segments whose maximal interpolation
// error is bounded by a tunable threshold E (Section 2). Each segment's
// data lives in a variable-sized table page; the segments' starting keys,
// slopes, and page positions are organized in a B+ tree (Figure 2). A point
// lookup walks the inner tree to the owning page, interpolates the key's
// position, and binary-searches only the 2E+1 window around the prediction
// (Section 4). Inserts go to a fixed-size sorted buffer attached to each
// page; a full buffer is merged with the page and re-segmented with the
// same one-pass algorithm, so the error guarantee survives updates
// (Section 5). To make the guarantee hold while elements sit in the
// buffer, the segmentation error is transparently reduced to
// E - buffer capacity.
//
// The leaf level is a position-indexed page chain: a flat slice of page
// references in global key order that the router maps into (start key ->
// chain position). Pages carry no links, so a page is a pure value that can
// be shared structurally between trees — MergeCOW exploits that to publish
// a new tree that clones only the pages a batch of writes touches and
// shares every other page with its parent, the page-granular copy-on-write
// flush behind the Optimistic facade. Navigation that previously followed
// next/prev pointers is position arithmetic on the chain.
//
// Duplicate keys are fully supported (a requirement for non-clustered
// indexes): consecutive pages may share a starting key, in which case only
// the first of the run is registered in the inner tree and lookups walk the
// page chain for the remainder.
package core

import (
	"fmt"
	"sync/atomic"

	"fitingtree/internal/btree"
	"fitingtree/internal/num"
	"fitingtree/internal/segment"
)

// DefaultError is the error threshold used when Options.Error is zero.
const DefaultError = 100

// SearchStrategy selects how a lookup locates a key inside its segment's
// error window (Section 4.1.2: "it is possible to utilize any well-known
// search algorithm, including linear search, binary search, or exponential
// search").
type SearchStrategy int

const (
	// SearchBinary binary-searches the 2E+1 window (the paper's default).
	SearchBinary SearchStrategy = iota
	// SearchLinear scans outward from the predicted position; the paper
	// notes it can win for very small error thresholds.
	SearchLinear
	// SearchExponential gallops from the predicted position, doubling the
	// step until the key is bracketed, then binary-searches the bracket.
	SearchExponential
)

// Options configures a FITing-Tree.
type Options struct {
	// Error is the maximum distance E between an element's predicted and
	// true position, including elements resident in insert buffers. The
	// lookup window inside a page is 2E+1 elements. Defaults to
	// DefaultError; must be >= 1.
	Error int

	// BufferSize is the per-page insert buffer capacity. The segmentation
	// error is Error - BufferSize, so it must be strictly less than Error.
	// A negative value selects the paper's default of Error/2; zero means
	// no buffering (every insert merges immediately).
	BufferSize int

	// Fanout is the order (max keys per node) of the inner B+ tree.
	// Defaults to btree.DefaultOrder.
	Fanout int

	// FillFactor is the inner tree's bulk-load fill in (0, 1]. Defaults
	// to 1.
	FillFactor float64

	// Search selects the in-segment search algorithm; defaults to
	// SearchBinary.
	Search SearchStrategy

	// Router selects the structure organizing segment routing keys;
	// defaults to RouterBTree. RouterImplicit is the read-optimized
	// variant the paper sketches in Section 2.2.
	Router RouterKind
}

// withDefaults normalizes opts, returning an error for invalid settings.
func (o Options) withDefaults() (Options, error) {
	if o.Error == 0 {
		o.Error = DefaultError
	}
	if o.Error < 1 {
		return o, fmt.Errorf("fitingtree: Error = %d, must be >= 1", o.Error)
	}
	if o.BufferSize < 0 {
		o.BufferSize = o.Error / 2
	}
	if o.BufferSize >= o.Error {
		return o, fmt.Errorf("fitingtree: BufferSize %d must be < Error %d", o.BufferSize, o.Error)
	}
	if o.Fanout == 0 {
		o.Fanout = btree.DefaultOrder
	}
	if o.Fanout < 3 {
		return o, fmt.Errorf("fitingtree: Fanout = %d, must be >= 3", o.Fanout)
	}
	if o.FillFactor == 0 {
		o.FillFactor = 1
	}
	if o.FillFactor < 0 || o.FillFactor > 1 {
		return o, fmt.Errorf("fitingtree: FillFactor = %f, must be in (0, 1]", o.FillFactor)
	}
	if o.Search < SearchBinary || o.Search > SearchExponential {
		return o, fmt.Errorf("fitingtree: unknown search strategy %d", o.Search)
	}
	if o.Router < RouterBTree || o.Router > RouterImplicit {
		return o, fmt.Errorf("fitingtree: unknown router kind %d", o.Router)
	}
	return o, nil
}

// segError returns the error budget left for segmentation after reserving
// room for the insert buffer (Section 5).
func (o Options) segError() int { return o.Error - o.BufferSize }

// pageSeq issues process-unique page identities (see page.id).
var pageSeq atomic.Uint64

// page is one variable-sized table page: the data of one segment plus its
// insert buffer. Pages carry no chain links — their position is a property
// of the tree's chain slice, not of the page — so a page is a value that
// can appear in several trees at once. A page reachable from more than one
// tree (published by MergeCOW) must never be mutated.
type page[K num.Key, V any] struct {
	id      uint64             // process-unique identity, for sharing diagnostics
	seg     segment.Segment[K] // prediction model over keys as of last (re)build
	keys    []K                // sorted segment data
	vals    []V                // parallel to keys
	bufKeys []K                // sorted insert buffer
	bufVals []V
	deletes int // elements removed from keys since last rebuild
}

// newPage allocates a page with a fresh identity over the given segment
// data.
func newPage[K num.Key, V any](seg segment.Segment[K], keys []K, vals []V) *page[K, V] {
	return &page[K, V]{id: pageSeq.Add(1), seg: seg, keys: keys, vals: vals}
}

// start returns the page's first key as of the last rebuild (its routing
// key in the inner tree).
func (p *page[K, V]) start() K { return p.seg.Start }

// Counters records maintenance activity, exposed for evaluation
// (e.g. Figure 7's split-rate discussion).
type Counters struct {
	Inserts   int // InsertKey calls
	Deletes   int // successful Delete calls
	Merges    int // buffer merge + re-segmentation events
	PagesMade int // pages created by merges (not counting bulk load)
}

// Tree is a clustered FITing-Tree index from K to V.
//
// Build one with BulkLoad. The zero value is not usable. Tree is not safe
// for concurrent use; wrap it or serialize access externally.
type Tree[K num.Key, V any] struct {
	opts  Options
	idx   router[K]
	chain []*page[K, V] // pages in ascending key order; the router maps into it
	size  int           // total elements (pages + buffers)

	// Hot-path state precomputed at construction so lookups neither
	// recompute option-derived values nor dispatch through the router
	// interface: rbt/rim hold the concrete router (exactly one is non-nil)
	// for devirtualized floor searches.
	segErr int            // opts.segError(), the in-page window half-width
	strat  SearchStrategy // opts.Search
	rbt    *btree.Tree[K, int]
	rim    *implicitRouter[K]

	counters Counters
}

// initRouter installs the router selected by o, keeping both the interface
// (for cold structural operations) and the concrete pointer (for the
// devirtualized lookup path).
func (t *Tree[K, V]) initRouter(o Options) {
	if o.Router == RouterImplicit {
		r := &implicitRouter[K]{}
		t.idx, t.rim = r, r
		return
	}
	r := &btreeRouter[K]{tr: btree.New[K, int](o.Fanout)}
	t.idx, t.rbt = r, r.tr
}

// routedEntries derives the router's content from a chain: one entry per
// run of equal start keys, keyed by the run's start and valued with the
// run's first position.
func routedEntries[K num.Key, V any](chain []*page[K, V]) ([]K, []int) {
	var keys []K
	var pos []int
	for i, p := range chain {
		if i == 0 || chain[i-1].start() != p.start() {
			keys = append(keys, p.start())
			pos = append(pos, i)
		}
	}
	return keys, pos
}

// BulkLoad builds a FITing-Tree over sorted keys (duplicates allowed) and
// their parallel values using the one-pass ShrinkingCone segmentation
// (Section 3). The input slices are copied into per-segment pages.
func BulkLoad[K num.Key, V any](keys []K, vals []V, opts Options) (*Tree[K, V], error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("fitingtree: %d keys but %d values", len(keys), len(vals))
	}
	for i := range keys {
		// NaN float keys compare false against everything, so they would
		// slip through the sortedness check and corrupt routing.
		if keys[i] != keys[i] {
			return nil, fmt.Errorf("fitingtree: NaN key at index %d", i)
		}
		if i > 0 && keys[i] < keys[i-1] {
			return nil, fmt.Errorf("fitingtree: keys not sorted at index %d", i)
		}
	}
	t := &Tree[K, V]{
		opts:   o,
		size:   len(keys),
		segErr: o.segError(),
		strat:  o.Search,
	}
	t.initRouter(o)
	if len(keys) == 0 {
		return t, nil
	}

	segs := segment.ShrinkingCone(keys, o.segError())
	t.chain = make([]*page[K, V], len(segs))
	for i, s := range segs {
		t.chain[i] = newPage(
			segment.Segment[K]{Start: s.Start, StartPos: 0, Count: s.Count, Slope: s.Slope},
			append([]K(nil), keys[s.StartPos:s.EndPos()]...),
			append([]V(nil), vals[s.StartPos:s.EndPos()]...),
		)
	}
	// Only the first page of a run of equal start keys goes in the inner
	// tree; lookups reach the rest via the chain.
	rk, rp := routedEntries(t.chain)
	if err := t.idx.bulkLoad(rk, rp, o.FillFactor); err != nil {
		return nil, fmt.Errorf("fitingtree: inner tree: %w", err)
	}
	return t, nil
}

// Options returns the tree's normalized options.
func (t *Tree[K, V]) Options() Options { return t.opts }

// Len returns the number of stored elements, including buffered inserts.
func (t *Tree[K, V]) Len() int { return t.size }

// Counters returns maintenance counters accumulated since the build.
func (t *Tree[K, V]) Counters() Counters { return t.counters }

// PageIDs returns the identity of every page in chain order. Two trees
// related by MergeCOW share a page iff the same id appears in both; tests
// and diagnostics use this to verify structural sharing without reaching
// into the chain.
func (t *Tree[K, V]) PageIDs() []uint64 {
	ids := make([]uint64, len(t.chain))
	for i, p := range t.chain {
		ids[i] = p.id
	}
	return ids
}

// routed reports whether the page at pos carries its own routing entry:
// only the first page of a run of equal start keys is registered in the
// router; the rest are reached by walking the chain.
func (t *Tree[K, V]) routed(pos int) bool {
	return pos == 0 || t.chain[pos-1].start() != t.chain[pos].start()
}

// locate returns the chain position of the page whose range contains k:
// the router's floor position, or 0 when k precedes every routing key.
// Returns -1 only for an empty tree. The router call is devirtualized: the
// concrete floor search is reached directly rather than through the router
// interface, which would block inlining on the hottest call of a lookup.
func (t *Tree[K, V]) locate(k K) int {
	if len(t.chain) == 0 {
		return -1
	}
	var pos int
	var ok bool
	if t.rim != nil {
		pos, ok = t.rim.floor(k)
	} else {
		_, pos, ok = t.rbt.Floor(k)
	}
	if !ok {
		return 0
	}
	return pos
}

// searchPage looks for k inside a single page (segment data window plus
// buffer). It returns the value of the first match found.
func (t *Tree[K, V]) searchPage(p *page[K, V], k K) (V, bool) {
	if i, ok := p.dataSearch(k, t.segErr, t.strat); ok {
		return p.vals[i], true
	}
	if i, ok := findKey(p.bufKeys, k); ok {
		return p.bufVals[i], true
	}
	var zero V
	return zero, false
}

// firstCandidate returns the position of the earliest page that could
// contain k. Usually that is the router's floor page, but duplicate runs
// can spill keys equal to k into the tails of preceding pages, and
// deletions can leave a key only in an earlier page of the run.
func (t *Tree[K, V]) firstCandidate(k K) int {
	i := t.locate(k)
	if i < 0 {
		return -1
	}
	for i > 0 && t.chain[i-1].lastKey() >= k {
		i--
	}
	return i
}

// Lookup returns a value stored under k. When k has duplicates, an
// arbitrary match is returned; use Each for all of them.
func (t *Tree[K, V]) Lookup(k K) (V, bool) {
	for i := t.firstCandidate(k); i >= 0 && i < len(t.chain); i++ {
		if v, ok := t.searchPage(t.chain[i], k); ok {
			return v, true
		}
		// A run of equal start keys can span pages; keep walking while the
		// next page could still contain k.
		if i+1 == len(t.chain) || t.chain[i+1].start() > k {
			break
		}
	}
	var zero V
	return zero, false
}

// Contains reports whether k is present.
func (t *Tree[K, V]) Contains(k K) bool {
	_, ok := t.Lookup(k)
	return ok
}

// Each calls fn for every element with key exactly k, in page order, until
// fn returns false. Values in page data are visited before buffered values
// of the same page.
func (t *Tree[K, V]) Each(k K, fn func(v V) bool) {
	for i := t.firstCandidate(k); i >= 0 && i < len(t.chain); i++ {
		if !t.chain[i].eachMatch(k, t.segErr, t.strat, fn) {
			return
		}
		if i+1 == len(t.chain) || t.chain[i+1].start() > k {
			return
		}
	}
}

// dataSearch looks for k in the page's sorted data, restricted to the
// prediction window of width 2*err around the interpolated position
// (widened transparently by pending deletions, which can shift true
// positions). It returns the index of the leftmost element equal to k.
func (p *page[K, V]) dataSearch(k K, err int, strat SearchStrategy) (int, bool) {
	n := len(p.keys)
	if n == 0 {
		return 0, false
	}
	w := err + p.deletes
	pred := p.seg.Predict(k)
	lo := num.ClampInt(int(pred)-w, 0, n-1)
	hi := num.ClampInt(int(pred)+w+1, 0, n) // exclusive
	var i int
	var ok bool
	switch strat {
	case SearchLinear:
		i, ok = linearSearch(p.keys, lo, hi, num.ClampInt(int(pred), lo, hi-1), k)
	case SearchExponential:
		i, ok = exponentialSearch(p.keys, lo, hi, num.ClampInt(int(pred), lo, hi-1), k)
	default:
		i, ok = binarySearch(p.keys, lo, hi, k)
	}
	if !ok {
		return i, false
	}
	// Normalize to the leftmost duplicate; every copy of k lies inside the
	// window, so the rewind is bounded by 2*err.
	for i > 0 && p.keys[i-1] == k {
		i--
	}
	return i, true
}

// binarySearch returns the leftmost index of k in keys[lo:hi).
func binarySearch[K num.Key](keys []K, lo, hi int, k K) (int, bool) {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(keys) && keys[lo] == k {
		return lo, true
	}
	return lo, false
}

// linearSearch scans from the predicted position toward k within
// keys[lo:hi).
func linearSearch[K num.Key](keys []K, lo, hi, at int, k K) (int, bool) {
	if keys[at] < k {
		for i := at; i < hi; i++ {
			if keys[i] == k {
				return i, true
			}
			if keys[i] > k {
				return i, false
			}
		}
		return hi, false
	}
	for i := at; i >= lo; i-- {
		if keys[i] == k {
			return i, true
		}
		if keys[i] < k {
			return i + 1, false
		}
	}
	return lo, false
}

// exponentialSearch gallops from the predicted position with doubling
// steps until k is bracketed, then binary-searches the bracket. All work
// stays inside keys[lo:hi).
func exponentialSearch[K num.Key](keys []K, lo, hi, at int, k K) (int, bool) {
	if keys[at] < k {
		step := 1
		prev := at
		i := at + 1
		for i < hi && keys[i] < k {
			prev = i
			i += step
			step *= 2
		}
		return binarySearch(keys, prev+1, num.MinInt(i+1, hi), k)
	}
	step := 1
	prev := at
	i := at - 1
	for i >= lo && keys[i] > k {
		prev = i
		i -= step
		step *= 2
	}
	return binarySearch(keys, num.MaxInt(i, lo), prev+1, k)
}

// eachMatch visits every element equal to k in this page; it reports false
// if fn requested a stop.
func (p *page[K, V]) eachMatch(k K, err int, strat SearchStrategy, fn func(v V) bool) bool {
	if i, ok := p.dataSearch(k, err, strat); ok {
		for j := i; j < len(p.keys) && p.keys[j] == k; j++ {
			if !fn(p.vals[j]) {
				return false
			}
		}
	}
	if i, ok := findKey(p.bufKeys, k); ok {
		for j := i; j < len(p.bufKeys) && p.bufKeys[j] == k; j++ {
			if !fn(p.bufVals[j]) {
				return false
			}
		}
	}
	return true
}

// findKey binary-searches a small sorted slice for the first occurrence of
// k.
func findKey[K num.Key](keys []K, k K) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && keys[lo] == k
}
