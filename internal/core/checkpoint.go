package core

import (
	"fmt"

	"fitingtree/internal/num"
	"fitingtree/internal/segment"
)

// This file is the checkpointing surface of the tree: immutable chunks in,
// immutable chunks out. A checkpoint does not serialize the router — the
// router is derivable in O(segments) from the chunks' segment models — so
// the durable format is simply the chunk chain, and the incremental
// checkpointer pairs ChunkIDs (which chunks changed?) with ChunkSnap
// (serialize exactly those) to write O(dirty) chunks per checkpoint, the
// on-disk mirror of MergeCOW's in-memory publication cost.

// PageSnap is the serializable image of one table page: the segment's
// prediction model plus its data and insert buffer. All fields are
// exported for gob.
type PageSnap[K num.Key, V any] struct {
	Seg     segment.Segment[K]
	Keys    []K
	Vals    []V
	BufKeys []K
	BufVals []V
	Deletes int
	// WErr is the segmentation error bound the page was built under
	// (page.werr); persisting it is what lets recovery reproduce a
	// region-retuned layout exactly. Zero in snapshots taken before the
	// field existed; assembly then falls back to the options' global
	// bound, which is what those pages were built with.
	WErr int
}

// ChunkSnap is the serializable image of one chain chunk.
type ChunkSnap[K num.Key, V any] struct {
	Pages []PageSnap[K, V]
	// KeysVerified records that the decoder already checked every page's
	// keys for ordering and NaNs while it filled them (the raw snapshot
	// codec does this in its decode loop, where the keys are cache-warm).
	// AssembleChunks then skips its own per-key re-scan; all cheaper
	// O(pages) structural checks still run. Decoders must never take this
	// from the wire — only set it after verifying.
	KeysVerified bool
}

// NumChunks returns the number of chunks in the chain.
func (t *Tree[K, V]) NumChunks() int { return len(t.chunks) }

// ChunkSnap returns the serializable image of chunk i. The snapshot
// aliases the chunk's slices rather than copying them, which is safe for
// published (immutable) trees; encode it before mutating a single-writer
// tree.
func (t *Tree[K, V]) ChunkSnap(i int) ChunkSnap[K, V] {
	c := t.chunks[i]
	snap := ChunkSnap[K, V]{Pages: make([]PageSnap[K, V], len(c.pages))}
	for j, p := range c.pages {
		snap.Pages[j] = PageSnap[K, V]{
			Seg:     p.seg,
			Keys:    p.keys,
			Vals:    p.vals,
			BufKeys: p.bufKeys,
			BufVals: p.bufVals,
			Deletes: p.deletes,
			WErr:    p.werr,
		}
	}
	return snap
}

// validateSnap checks one decoded chunk against the invariants assembly
// relies on, so a corrupted or adversarial checkpoint is rejected instead
// of becoming a tree that misroutes lookups.
func validateSnap[K num.Key, V any](ci int, snap ChunkSnap[K, V]) error {
	if len(snap.Pages) == 0 {
		return fmt.Errorf("fitingtree: checkpoint chunk %d is empty", ci)
	}
	for pi, p := range snap.Pages {
		if len(p.Keys) != len(p.Vals) || len(p.BufKeys) != len(p.BufVals) {
			return fmt.Errorf("fitingtree: checkpoint chunk %d page %d: key/value lengths differ", ci, pi)
		}
		if p.Deletes < 0 {
			return fmt.Errorf("fitingtree: checkpoint chunk %d page %d: negative delete count", ci, pi)
		}
		if p.WErr < 0 {
			return fmt.Errorf("fitingtree: checkpoint chunk %d page %d: negative error bound", ci, pi)
		}
		if p.Seg.Start != p.Seg.Start {
			return fmt.Errorf("fitingtree: checkpoint chunk %d page %d: NaN start key", ci, pi)
		}
		if snap.KeysVerified {
			continue
		}
		// One comparison per key: !(k >= prev) is false for a sorted run
		// and true for both an out-of-order key and a NaN, so the slow
		// NaN-vs-unsorted distinction only runs on the failure path. A NaN
		// in the first slot has no predecessor and is checked directly.
		if len(p.Keys) > 0 && p.Keys[0] != p.Keys[0] {
			return fmt.Errorf("fitingtree: checkpoint chunk %d page %d: NaN key", ci, pi)
		}
		for i := 1; i < len(p.Keys); i++ {
			if !(p.Keys[i] >= p.Keys[i-1]) {
				if p.Keys[i] != p.Keys[i] {
					return fmt.Errorf("fitingtree: checkpoint chunk %d page %d: NaN key", ci, pi)
				}
				return fmt.Errorf("fitingtree: checkpoint chunk %d page %d: keys not sorted", ci, pi)
			}
		}
		if len(p.BufKeys) > 0 && p.BufKeys[0] != p.BufKeys[0] {
			return fmt.Errorf("fitingtree: checkpoint chunk %d page %d: NaN buffered key", ci, pi)
		}
		for i := 1; i < len(p.BufKeys); i++ {
			if !(p.BufKeys[i] >= p.BufKeys[i-1]) {
				if p.BufKeys[i] != p.BufKeys[i] {
					return fmt.Errorf("fitingtree: checkpoint chunk %d page %d: NaN buffered key", ci, pi)
				}
				return fmt.Errorf("fitingtree: checkpoint chunk %d page %d: buffer not sorted", ci, pi)
			}
		}
	}
	return nil
}

// AssembleChunks rebuilds a tree from checkpointed chunks (in chain
// order) after validating them. The pages' segment models are restored
// verbatim, so no re-segmentation runs: the cost is decoding plus an
// O(segments) router bulk load — this is what makes recovery scale with
// the checkpoint's size rather than re-running ShrinkingCone over every
// key.
func AssembleChunks[K num.Key, V any](snaps []ChunkSnap[K, V], opts Options) (*Tree[K, V], error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	t := &Tree[K, V]{opts: o, segErr: o.segError(), strat: o.Search, tune: &tuneState[K]{}}
	t.initRouter(o)
	var prevStart K
	havePrev := false
	for ci, snap := range snaps {
		if err := validateSnap(ci, snap); err != nil {
			return nil, err
		}
		pages := make([]*page[K, V], len(snap.Pages))
		// One backing array per chunk instead of one allocation per page;
		// recovery assembles tens of thousands of pages.
		backing := make([]page[K, V], len(snap.Pages))
		for pi, ps := range snap.Pages {
			if havePrev && ps.Seg.Start < prevStart {
				return nil, fmt.Errorf("fitingtree: checkpoint chunk %d page %d: start keys not sorted", ci, pi)
			}
			prevStart, havePrev = ps.Seg.Start, true
			werr := ps.WErr
			if werr == 0 {
				werr = o.segError() // pre-WErr snapshot: global bound applied
			}
			backing[pi] = page[K, V]{
				id:      pageSeq.Add(1),
				seg:     ps.Seg,
				werr:    werr,
				keys:    ps.Keys,
				vals:    ps.Vals,
				pref:    stringPrefixes(ps.Keys),
				fixed8:  allLen8(ps.Keys),
				bufKeys: ps.BufKeys,
				bufVals: ps.BufVals,
				deletes: ps.Deletes,
			}
			pages[pi] = &backing[pi]
			t.size += len(ps.Keys) + len(ps.BufKeys)
		}
		t.chunks = append(t.chunks, newChunk(pages))
	}
	if err := t.loadRouter(o.FillFactor); err != nil {
		return nil, fmt.Errorf("fitingtree: checkpoint router: %w", err)
	}
	return t, nil
}
