package core

import (
	"fitingtree/internal/num"
	"fitingtree/internal/segment"
)

// PageBounds returns, per page in chain order, the page's routing start key
// and its element count (segment data plus buffered inserts). The pairs
// describe how the tree's content is distributed over the key space — a
// range partitioner uses them as candidate cut points (starts) weighted by
// how many elements each cut would move (weights). Weights sum to Len().
func (t *Tree[K, V]) PageBounds() (starts []K, weights []int) {
	if len(t.chunks) == 0 {
		return nil, nil
	}
	for _, c := range t.chunks {
		for _, p := range c.pages {
			starts = append(starts, p.start())
			weights = append(weights, len(p.keys)+len(p.bufKeys))
		}
	}
	return starts, weights
}

// SegmentBoundsOf runs the error-bounded segmentation over a sorted key
// slice and returns the same (start key, element count) pairs PageBounds
// would report for a tree freshly bulk-loaded from those keys — without
// building any pages. It lets a partitioner pick distribution-aware cut
// points for data it holds only as a sorted run (e.g. during a shard
// rebalance). The keys must be sorted and NaN-free; opts is normalized the
// way BulkLoad normalizes it.
func SegmentBoundsOf[K num.Key](keys []K, opts Options) (starts []K, weights []int, err error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if len(keys) == 0 {
		return nil, nil, nil
	}
	segs := segment.ShrinkingCone(keys, o.segError())
	starts = make([]K, len(segs))
	weights = make([]int, len(segs))
	for i, s := range segs {
		starts[i] = s.Start
		weights[i] = s.Count
	}
	return starts, weights, nil
}

// PartitionByWeight picks up to n-1 strictly increasing fence keys from the
// candidate cut points starts (sorted, parallel to weights) so that the n
// ranges they induce carry near-equal total weight. Cutting is restricted
// to candidate starts, so a fence never splits a candidate's weight — for
// candidates produced by PageBounds or SegmentBoundsOf that means a fence
// never lands inside a page, and every key compares into exactly one range.
// Duplicate candidate starts (equal-start page runs) are never chosen
// twice. Fewer than n-1 fences are returned when the candidates cannot
// support n non-empty ranges.
//
// The greedy walk accumulates weight and cuts at the first candidate whose
// prefix weight reaches the next multiple of total/n; with page-sized
// weights the resulting imbalance is bounded by one page per range.
func PartitionByWeight[K num.Key](starts []K, weights []int, n int) []K {
	if n <= 1 || len(starts) < 2 {
		return nil
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return nil
	}
	fences := make([]K, 0, n-1)
	acc := 0
	for i, w := range weights {
		// A fence at starts[i] moves everything before position i to the
		// left of the cut; take the cut when the accumulated weight has
		// reached the next even share of the total.
		// starts are sorted, so requiring a strict step over the previous
		// candidate keeps the chosen fences strictly increasing and never
		// cuts inside an equal-start page run.
		if i > 0 && len(fences) < n-1 &&
			acc >= total*(len(fences)+1)/n &&
			starts[i] > starts[i-1] {
			fences = append(fences, starts[i])
		}
		acc += w
	}
	return fences
}
