package core

import (
	"math/rand"
	"testing"
)

func TestPageBoundsSumToLen(t *testing.T) {
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = uint64(i) * 7
	}
	tr, err := BulkLoad(keys, keys, Options{Error: 32, BufferSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Buffered inserts must count into the weights too.
	for i := 0; i < 500; i++ {
		tr.Insert(uint64(i*140+1), 0)
	}
	starts, weights := tr.PageBounds()
	if len(starts) != len(weights) {
		t.Fatalf("starts %d != weights %d", len(starts), len(weights))
	}
	total := 0
	for i, w := range weights {
		if w <= 0 {
			t.Fatalf("page %d has weight %d", i, w)
		}
		if i > 0 && starts[i] < starts[i-1] {
			t.Fatalf("starts out of order at %d", i)
		}
		total += w
	}
	if total != tr.Len() {
		t.Fatalf("weights sum to %d, Len is %d", total, tr.Len())
	}
}

func TestSegmentBoundsOfMatchesFreshTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := make([]uint64, 0, 20000)
	k := uint64(0)
	for len(keys) < cap(keys) {
		k += uint64(rng.Intn(50) + 1)
		keys = append(keys, k)
	}
	opts := Options{Error: 64, BufferSize: 16}
	tr, err := BulkLoad(keys, keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts, tw := tr.PageBounds()
	ss, sw, err := SegmentBoundsOf(keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != len(ts) {
		t.Fatalf("SegmentBoundsOf yields %d segments, fresh tree has %d pages", len(ss), len(ts))
	}
	for i := range ss {
		if ss[i] != ts[i] || sw[i] != tw[i] {
			t.Fatalf("bound %d: (%d,%d) vs tree (%d,%d)", i, ss[i], sw[i], ts[i], tw[i])
		}
	}
	if _, _, err := SegmentBoundsOf[uint64](nil, opts); err != nil {
		t.Fatalf("empty keys: %v", err)
	}
	if _, _, err := SegmentBoundsOf(keys, Options{Error: -1}); err == nil {
		t.Fatal("invalid options accepted")
	}
}

func TestPartitionByWeightBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	starts := make([]uint64, 400)
	weights := make([]int, 400)
	k := uint64(0)
	total := 0
	for i := range starts {
		k += uint64(rng.Intn(1000) + 1)
		starts[i] = k
		weights[i] = rng.Intn(120) + 10
		total += weights[i]
	}
	for _, n := range []int{1, 2, 3, 4, 8, 16} {
		fences := PartitionByWeight(starts, weights, n)
		if n == 1 {
			if fences != nil {
				t.Fatalf("n=1 yields fences %v", fences)
			}
			continue
		}
		if len(fences) != n-1 {
			t.Fatalf("n=%d: got %d fences", n, len(fences))
		}
		for i := 1; i < len(fences); i++ {
			if fences[i] <= fences[i-1] {
				t.Fatalf("n=%d: fences not strictly increasing: %v", n, fences)
			}
		}
		// Every range's weight stays within one max-candidate of the even
		// share (the documented greedy bound).
		maxW := 0
		for _, w := range weights {
			if w > maxW {
				maxW = w
			}
		}
		share := total / n
		fi := 0
		acc := 0
		for i := range starts {
			if fi < len(fences) && starts[i] >= fences[fi] {
				if acc > share+maxW {
					t.Fatalf("n=%d: range %d holds %d, share %d, max candidate %d", n, fi, acc, share, maxW)
				}
				acc = 0
				fi++
			}
			acc += weights[i]
		}
	}
}

func TestPartitionByWeightDuplicateRuns(t *testing.T) {
	// A long run of equal starts must never be cut mid-run.
	starts := []uint64{5, 9, 9, 9, 9, 9, 9, 14}
	weights := []int{10, 10, 10, 10, 10, 10, 10, 10}
	fences := PartitionByWeight(starts, weights, 4)
	for i := 1; i < len(fences); i++ {
		if fences[i] <= fences[i-1] {
			t.Fatalf("fences not strictly increasing: %v", fences)
		}
	}
	// Only two distinct step-up points exist (9 and 14), so at most two
	// fences can be produced no matter how many ranges were asked for.
	if len(fences) > 2 {
		t.Fatalf("got %d fences from 2 cut points: %v", len(fences), fences)
	}
	for _, f := range fences {
		if f != 9 && f != 14 {
			t.Fatalf("fence %d is not a candidate start", f)
		}
	}

	if got := PartitionByWeight([]uint64{1}, []int{5}, 4); got != nil {
		t.Fatalf("single candidate yields fences %v", got)
	}
	if got := PartitionByWeight([]uint64{1, 2}, []int{0, 0}, 2); got != nil {
		t.Fatalf("zero total weight yields fences %v", got)
	}
}
