package core

import (
	"sync/atomic"
	"testing"
)

// plantTwoRegions installs a hand-made plan: tight bounds below mid,
// loose bounds at and above it.
func plantTwoRegions(tr *Tree[int, int], mid, tightE, looseE int) {
	tr.tune.plan.Store(&regionPlan[int]{targets: []RegionTarget[int]{
		{Start: tr.chunks[0].start(), RegionStat: RegionStat{Epsilon: tightE, ChunkTarget: chunkTarget}},
		{Start: mid, RegionStat: RegionStat{Epsilon: looseE, ChunkTarget: chunkTarget}},
	}})
}

func TestSegErrForFollowsPlan(t *testing.T) {
	tr, keys := buildJagged(t, 20_000)
	mid := keys[len(keys)/2]
	if got, want := tr.segErrFor(keys[0]), tr.opts.segError(); got != want {
		t.Fatalf("untuned segErrFor = %d, want global %d", got, want)
	}
	plantTwoRegions(tr, mid, 4, 64)
	if got := tr.segErrFor(keys[0]); got != 4-tr.opts.BufferSize {
		t.Fatalf("tight region segErrFor = %d, want %d", got, 4-tr.opts.BufferSize)
	}
	if got := tr.segErrFor(keys[len(keys)-1]); got != 64-tr.opts.BufferSize {
		t.Fatalf("loose region segErrFor = %d, want %d", got, 64-tr.opts.BufferSize)
	}
	// Keys below the first region start clamp to region 0; a bound that
	// would vanish under the buffer reservation floors at 1.
	if got := tr.segErrFor(keys[0] - 1000); got != 4-tr.opts.BufferSize {
		t.Fatalf("below-range segErrFor = %d", got)
	}
	plantTwoRegions(tr, mid, 1, 64)
	if got := tr.segErrFor(keys[0]); got != 1 {
		t.Fatalf("floored segErrFor = %d, want 1", got)
	}
}

// loadHalves paints the load counters: pages below mid read-dominated,
// pages at and above it write-dominated.
func loadHalves(tr *Tree[int, int], mid int) {
	for _, c := range tr.chunks {
		for _, p := range c.pages {
			if p.start() < mid {
				atomic.StoreUint64(&p.reads, 1_000_000)
				atomic.StoreUint64(&p.writes, 10)
			} else {
				atomic.StoreUint64(&p.reads, 10)
				atomic.StoreUint64(&p.writes, 1_000_000)
			}
		}
	}
}

func TestRetuneRegionTargets(t *testing.T) {
	tr, keys := buildJagged(t, 50_000)
	mid := keys[len(keys)/2]
	loadHalves(tr, mid)
	stats := tr.Retune()
	if len(stats) == 0 || len(stats) > tuneRegions+1 {
		t.Fatalf("Retune produced %d regions", len(stats))
	}
	plan := tr.tune.planOf()
	if plan == nil || len(plan.targets) != len(stats) {
		t.Fatal("Retune did not publish its plan")
	}
	cands := epsilonLadder(tr.opts)
	minE, maxE := cands[0], cands[len(cands)-1]
	var readEps, writeEps []int
	for i, st := range stats {
		if st.Epsilon < minE || st.Epsilon > maxE {
			t.Fatalf("region %d epsilon %d outside ladder [%d, %d]", i, st.Epsilon, minE, maxE)
		}
		// Regions straddling mid mix both halves; classify by the pure ones.
		start := plan.targets[i].Start
		end := keys[len(keys)-1] + 1
		if i+1 < len(plan.targets) {
			end = plan.targets[i+1].Start
		}
		switch {
		case end <= mid: // read-dominated half
			if st.WriteHot || st.ChunkTarget != chunkTargetCold {
				t.Fatalf("read region %d: WriteHot=%v ChunkTarget=%d", i, st.WriteHot, st.ChunkTarget)
			}
			readEps = append(readEps, st.Epsilon)
		case start >= mid: // write-dominated half
			if !st.WriteHot || st.ChunkTarget != chunkTargetHot {
				t.Fatalf("write region %d: WriteHot=%v ChunkTarget=%d", i, st.WriteHot, st.ChunkTarget)
			}
			writeEps = append(writeEps, st.Epsilon)
		}
	}
	if len(readEps) == 0 || len(writeEps) == 0 {
		t.Fatalf("no pure regions on either side: read %d, write %d", len(readEps), len(writeEps))
	}
	// The cost model trades the in-page window against merge amortization:
	// lookup-dominated regions must not pick a looser bound than
	// insert-dominated ones.
	for _, re := range readEps {
		for _, we := range writeEps {
			if re > we {
				t.Fatalf("read-heavy region epsilon %d looser than write-heavy %d", re, we)
			}
		}
	}
	// Stats mirrors the plan for observability.
	sr := tr.Stats().Regions
	if len(sr) != len(stats) {
		t.Fatalf("Stats().Regions has %d entries, Retune returned %d", len(sr), len(stats))
	}
}

func TestRetuneEmptyAndUntuned(t *testing.T) {
	var empty Tree[int, int]
	if got := empty.Retune(); got != nil {
		t.Fatalf("Retune on zero tree = %v", got)
	}
	tr, _ := buildJagged(t, 5_000)
	tr.tune = nil // a lineage predating the tuning state
	if got := tr.Retune(); got != nil {
		t.Fatalf("Retune without tune state = %v", got)
	}
	if got, want := tr.segErrFor(0), tr.opts.segError(); got != want {
		t.Fatalf("segErrFor without tune state = %d, want %d", got, want)
	}
}

// mixedWErrTree builds a tree whose pages carry two different error
// bounds: a tight plan region is installed and every page is rebuilt
// through the single-writer merge path.
func mixedWErrTree(t *testing.T) (*Tree[int, int], []int) {
	t.Helper()
	tr, keys := buildJagged(t, 30_000)
	mid := keys[len(keys)/2]
	plantTwoRegions(tr, mid, 4, 48)
	// Force merges across the whole key range: repeated inserts overflow
	// each page's buffer, and the rebuild consults segErrFor.
	for round := 0; round < tr.opts.BufferSize+2; round++ {
		for i := 0; i < len(keys); i += 40 {
			tr.Insert(keys[i]+1, -i)
		}
	}
	seen := map[int]int{}
	for _, c := range tr.chunks {
		for _, p := range c.pages {
			seen[p.werr]++
		}
	}
	if len(seen) < 2 {
		t.Fatalf("expected mixed per-page bounds, got %v", seen)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return tr, keys
}

func TestWErrPersistsThroughAssemble(t *testing.T) {
	tr, _ := mixedWErrTree(t)
	re, err := AssembleChunks(snapAll(tr), tr.Options())
	if err != nil {
		t.Fatal(err)
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatalf("recovered tree invariants: %v", err)
	}
	var want, got []int
	for _, c := range tr.chunks {
		for _, p := range c.pages {
			want = append(want, p.werr)
		}
	}
	for _, c := range re.chunks {
		for _, p := range c.pages {
			got = append(got, p.werr)
		}
	}
	if len(want) != len(got) {
		t.Fatalf("recovered %d pages, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("page %d recovered werr %d, want %d", i, got[i], want[i])
		}
	}
}

func TestWErrLegacySnapshotFallsBack(t *testing.T) {
	tr, _ := mixedWErrTree(t)
	snaps := snapAll(tr)
	for ci := range snaps {
		for pi := range snaps[ci].Pages {
			snaps[ci].Pages[pi].WErr = 0 // as written before the field existed
		}
	}
	re, err := AssembleChunks(snaps, tr.Options())
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Options().segError()
	for _, c := range re.chunks {
		for _, p := range c.pages {
			if p.werr != want {
				t.Fatalf("legacy page restored with werr %d, want global %d", p.werr, want)
			}
		}
	}
	// A negative bound is corruption, not legacy.
	snaps[0].Pages[0].WErr = -1
	if _, err := AssembleChunks(snaps, tr.Options()); err == nil {
		t.Fatal("negative WErr assembled without error")
	}
}

func TestSnapCodecRoundTripsWErr(t *testing.T) {
	tr, _ := mixedWErrTree(t)
	codec := NewSnapCodec[int, int]()
	for ci := 0; ci < tr.NumChunks(); ci++ {
		snap := tr.ChunkSnap(ci)
		blob, err := codec.Encode(snap)
		if err != nil {
			t.Fatal(err)
		}
		back, err := codec.Decode(blob)
		if err != nil {
			t.Fatal(err)
		}
		if len(back.Pages) != len(snap.Pages) {
			t.Fatalf("chunk %d: decoded %d pages, want %d", ci, len(back.Pages), len(snap.Pages))
		}
		for pi := range snap.Pages {
			if back.Pages[pi].WErr != snap.Pages[pi].WErr {
				t.Fatalf("chunk %d page %d: decoded WErr %d, want %d",
					ci, pi, back.Pages[pi].WErr, snap.Pages[pi].WErr)
			}
		}
	}
}

func TestCalibrateRouter(t *testing.T) {
	small, err := BulkLoad([]int{1, 2, 3}, []int{1, 2, 3}, Options{Error: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := small.CalibrateRouter(); got != routerRatioDefault {
		t.Fatalf("tiny tree calibrated to %d, want default %d", got, routerRatioDefault)
	}
	for _, router := range []RouterKind{RouterBTree, RouterImplicit} {
		keys := jaggedKeys(50_000)
		vals := make([]int, len(keys))
		tr, err := BulkLoad(keys, vals, Options{Error: 16, Router: router})
		if err != nil {
			t.Fatal(err)
		}
		ratio := tr.CalibrateRouter()
		if ratio < routerRatioMin || ratio > routerRatioMax {
			t.Fatalf("router %d: ratio %d outside [%d, %d]", router, ratio, routerRatioMin, routerRatioMax)
		}
		if got := tr.tune.ratioOr(routerRatioDefault); got != ratio {
			t.Fatalf("router %d: lineage holds ratio %d, calibration returned %d", router, got, ratio)
		}
		// EnsureCalibrated is a one-shot latch on an already-calibrated
		// lineage: it must not re-run (and must not reset the ratio).
		tr.EnsureCalibrated()
		if got := tr.tune.ratioOr(routerRatioDefault); got != ratio {
			t.Fatalf("EnsureCalibrated changed the ratio: %d -> %d", ratio, got)
		}
	}
}

func TestChunkLoadsReflectCounters(t *testing.T) {
	tr, keys := buildJagged(t, 20_000)
	mid := keys[len(keys)/2]
	loadHalves(tr, mid)
	loads := tr.ChunkLoads()
	if len(loads) != tr.NumChunks() {
		t.Fatalf("ChunkLoads returned %d entries for %d chunks", len(loads), tr.NumChunks())
	}
	elems := 0
	for i, l := range loads {
		if i > 0 && loads[i-1].Start >= l.Start {
			t.Fatalf("chunk starts not ascending at %d", i)
		}
		if l.Reads+l.Writes == 0 {
			t.Fatalf("chunk %d lost its load counters", i)
		}
		elems += l.Elements
	}
	if elems != tr.Len() {
		t.Fatalf("ChunkLoads elements %d, tree has %d", elems, tr.Len())
	}
}
