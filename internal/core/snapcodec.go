package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"reflect"

	"fitingtree/internal/num"
)

// This file implements the chunk-snapshot wire codec used by checkpoints.
// gob is correct but costs a type-negotiation handshake and a reflection
// walk per chunk blob, which made recovery decode time rival a full bulk
// rebuild. The raw format below writes fixed-width little-endian fields
// directly — keys through their integer or float64 bit patterns (exact in
// both directions for every num.Key instantiation), values through a
// per-type fast path resolved once at codec construction. Value types
// without a fast path (structs, slices, ...) fall back to gob for the
// whole chunk, keyed by the leading format byte, so every V remains
// supported.

// Snapshot wire format discriminators (first byte of an encoded chunk).
const (
	snapFormatRaw   byte = 1 // fixed-width little-endian fields
	snapFormatGob   byte = 2 // gob-encoded ChunkSnap
	snapFormatRawV3 byte = 3 // raw + a u32 per-page error bound (WErr)
)

// errSnapTruncated is returned when a raw snapshot ends mid-field.
var errSnapTruncated = fmt.Errorf("fitingtree: chunk snapshot truncated")

// errSnapUnsorted and errSnapNaN reject snapshots whose keys violate the
// tree's ordering invariants. The checks run inside the decode loop while
// each key is still in a register, which is why AssembleChunks can skip
// its own re-scan for raw-decoded chunks (ChunkSnap.KeysVerified).
var (
	errSnapUnsorted = fmt.Errorf("fitingtree: chunk snapshot keys not sorted")
	errSnapNaN      = fmt.Errorf("fitingtree: chunk snapshot contains NaN key")
)

// SnapCodec converts ChunkSnaps to and from checkpoint blobs for one
// concrete (K, V) instantiation. Construct once with NewSnapCodec and
// reuse; the codec itself is stateless and safe for concurrent use.
type SnapCodec[K num.Key, V any] struct {
	// kFixed records that keys encode to exactly 8 bytes (every numeric
	// kind). String keys are length-prefixed variable-width, which
	// disables the arena fast path but keeps the raw format.
	kFixed   bool
	encKeys  func(buf []byte, keys []K) []byte
	fillKeys func(out []K, data []byte) ([]byte, error)
	encVals  func(buf []byte, vals []V) []byte
	decVals  func(data []byte, n int) ([]V, []byte, error)
	// decValsInto fills a pre-allocated slice instead of allocating; set
	// only for fixed 8-byte value encodings, where Decode can carve every
	// page's slices out of two per-chunk arenas.
	decValsInto func(out []V, data []byte) ([]byte, error)
}

// fixedVals builds the value fast path for an element type E that
// round-trips through a uint64 bit pattern. V and E are the same type at
// every call site; the indirection through `any` lets generic code name
// the concrete slice type.
func fixedVals[E any, V any](toBits func(E) uint64, fromBits func(uint64) E) (
	func(buf []byte, vals []V) []byte,
	func(data []byte, n int) ([]V, []byte, error),
	func(out []V, data []byte) ([]byte, error),
) {
	enc := func(buf []byte, vals []V) []byte {
		for _, v := range any(vals).([]E) {
			buf = binary.LittleEndian.AppendUint64(buf, toBits(v))
		}
		return buf
	}
	fill := func(out []E, data []byte) ([]byte, error) {
		if len(data) < 8*len(out) {
			return nil, errSnapTruncated
		}
		for i := range out {
			out[i] = fromBits(binary.LittleEndian.Uint64(data[8*i:]))
		}
		return data[8*len(out):], nil
	}
	dec := func(data []byte, n int) ([]V, []byte, error) {
		out := make([]E, n)
		data, err := fill(out, data)
		if err != nil {
			return nil, nil, err
		}
		return any(out).([]V), data, nil
	}
	decInto := func(out []V, data []byte) ([]byte, error) {
		return fill(any(out).([]E), data)
	}
	return enc, dec, decInto
}

// intVals is the fixedVals specialization for 64-bit integer element
// types, whose wire form is the two's-complement bit pattern itself: the
// conversion compiles to a plain load/store loop with no per-element
// function call, which matters when recovery decodes millions of values.
func intVals[E ~int | ~int64 | ~uint | ~uint64, V any]() (
	func(buf []byte, vals []V) []byte,
	func(data []byte, n int) ([]V, []byte, error),
	func(out []V, data []byte) ([]byte, error),
) {
	enc := func(buf []byte, vals []V) []byte {
		for _, v := range any(vals).([]E) {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(v)))
		}
		return buf
	}
	fill := func(out []E, data []byte) ([]byte, error) {
		if len(data) < 8*len(out) {
			return nil, errSnapTruncated
		}
		for i := range out {
			out[i] = E(binary.LittleEndian.Uint64(data[8*i:]))
		}
		return data[8*len(out):], nil
	}
	dec := func(data []byte, n int) ([]V, []byte, error) {
		out := make([]E, n)
		data, err := fill(out, data)
		if err != nil {
			return nil, nil, err
		}
		return any(out).([]V), data, nil
	}
	decInto := func(out []V, data []byte) ([]byte, error) {
		return fill(any(out).([]E), data)
	}
	return enc, dec, decInto
}

// stringVals builds the value fast path for V = string: u32 length
// prefix + bytes per element.
func stringVals[V any]() (
	func(buf []byte, vals []V) []byte,
	func(data []byte, n int) ([]V, []byte, error),
) {
	enc := func(buf []byte, vals []V) []byte {
		for _, s := range any(vals).([]string) {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
			buf = append(buf, s...)
		}
		return buf
	}
	dec := func(data []byte, n int) ([]V, []byte, error) {
		out := make([]string, n)
		for i := range out {
			if len(data) < 4 {
				return nil, nil, errSnapTruncated
			}
			l := int(binary.LittleEndian.Uint32(data))
			data = data[4:]
			if l < 0 || len(data) < l {
				return nil, nil, errSnapTruncated
			}
			out[i] = string(data[:l])
			data = data[l:]
		}
		return any(out).([]V), data, nil
	}
	return enc, dec
}

// stringKeys builds the key codec for K = string: u32 length prefix +
// bytes per key, the same wire shape stringVals uses for values.
func stringKeys[K any]() (
	func(buf []byte, keys []K) []byte,
	func(out []K, data []byte) ([]byte, error),
) {
	enc := func(buf []byte, keys []K) []byte {
		for _, s := range any(keys).([]string) {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
			buf = append(buf, s...)
		}
		return buf
	}
	fill := func(out []K, data []byte) ([]byte, error) {
		o := any(out).([]string)
		for i := range o {
			if len(data) < 4 {
				return nil, errSnapTruncated
			}
			l := int(binary.LittleEndian.Uint32(data))
			data = data[4:]
			if l < 0 || len(data) < l {
				return nil, errSnapTruncated
			}
			o[i] = string(data[:l])
			data = data[l:]
		}
		return data, nil
	}
	return enc, fill
}

// verifyKeys rejects decoded key runs that violate the tree's ordering
// invariants: NaN keys (k != k is false for every non-float kind) and
// out-of-order neighbors under the key type's native comparison.
func verifyKeys[K num.Key](out []K) error {
	for i := range out {
		if out[i] != out[i] {
			return errSnapNaN
		}
		if i > 0 && out[i] < out[i-1] {
			return errSnapUnsorted
		}
	}
	return nil
}

// reflectKeys builds the key codec for named key types, whose concrete
// slice type defeats the builtin type switches. Per-element reflection is
// slow but exactly wire-compatible with the builtin codec of the same
// kind, and it only runs for user-defined key types.
func reflectKeys[K num.Key]() (
	func(buf []byte, keys []K) []byte,
	func(out []K, data []byte) ([]byte, error),
	bool,
) {
	kt := reflect.TypeOf((*K)(nil)).Elem()
	switch kt.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		shift := 64 - uint(kt.Bits())
		enc := func(buf []byte, keys []K) []byte {
			for i := range keys {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(reflect.ValueOf(keys[i]).Int()))
			}
			return buf
		}
		fill := func(out []K, data []byte) ([]byte, error) {
			if len(data) < 8*len(out) {
				return nil, errSnapTruncated
			}
			for i := range out {
				x := int64(binary.LittleEndian.Uint64(data[8*i:])) << shift >> shift
				reflect.ValueOf(&out[i]).Elem().SetInt(x)
			}
			return data[8*len(out):], nil
		}
		return enc, fill, true
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		mask := ^uint64(0) >> (64 - uint(kt.Bits()))
		enc := func(buf []byte, keys []K) []byte {
			for i := range keys {
				buf = binary.LittleEndian.AppendUint64(buf, reflect.ValueOf(keys[i]).Uint())
			}
			return buf
		}
		fill := func(out []K, data []byte) ([]byte, error) {
			if len(data) < 8*len(out) {
				return nil, errSnapTruncated
			}
			for i := range out {
				reflect.ValueOf(&out[i]).Elem().SetUint(binary.LittleEndian.Uint64(data[8*i:]) & mask)
			}
			return data[8*len(out):], nil
		}
		return enc, fill, true
	case reflect.Float32, reflect.Float64:
		enc := func(buf []byte, keys []K) []byte {
			for i := range keys {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(reflect.ValueOf(keys[i]).Float()))
			}
			return buf
		}
		fill := func(out []K, data []byte) ([]byte, error) {
			if len(data) < 8*len(out) {
				return nil, errSnapTruncated
			}
			for i := range out {
				reflect.ValueOf(&out[i]).Elem().SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:])))
			}
			return data[8*len(out):], nil
		}
		return enc, fill, true
	case reflect.String:
		enc := func(buf []byte, keys []K) []byte {
			for i := range keys {
				s := reflect.ValueOf(keys[i]).String()
				buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
				buf = append(buf, s...)
			}
			return buf
		}
		fill := func(out []K, data []byte) ([]byte, error) {
			for i := range out {
				if len(data) < 4 {
					return nil, errSnapTruncated
				}
				l := int(binary.LittleEndian.Uint32(data))
				data = data[4:]
				if l < 0 || len(data) < l {
					return nil, errSnapTruncated
				}
				reflect.ValueOf(&out[i]).Elem().SetString(string(data[:l]))
				data = data[l:]
			}
			return data, nil
		}
		return enc, fill, false
	}
	panic("fitingtree: key type outside the num.Key constraint")
}

// NewSnapCodec resolves the key and value fast paths once.
func NewSnapCodec[K num.Key, V any]() SnapCodec[K, V] {
	var c SnapCodec[K, V]
	c.kFixed = true
	switch any((*K)(nil)).(type) {
	case *uint64:
		c.encKeys, _, c.fillKeys = intVals[uint64, K]()
	case *int64:
		c.encKeys, _, c.fillKeys = intVals[int64, K]()
	case *int:
		c.encKeys, _, c.fillKeys = intVals[int, K]()
	case *uint:
		c.encKeys, _, c.fillKeys = intVals[uint, K]()
	case *int32:
		c.encKeys, _, c.fillKeys = fixedVals[int32, K](
			func(v int32) uint64 { return uint64(int64(v)) },
			func(b uint64) int32 { return int32(int64(b)) })
	case *uint32:
		c.encKeys, _, c.fillKeys = fixedVals[uint32, K](
			func(v uint32) uint64 { return uint64(v) },
			func(b uint64) uint32 { return uint32(b) })
	case *int16:
		c.encKeys, _, c.fillKeys = fixedVals[int16, K](
			func(v int16) uint64 { return uint64(int64(v)) },
			func(b uint64) int16 { return int16(int64(b)) })
	case *uint16:
		c.encKeys, _, c.fillKeys = fixedVals[uint16, K](
			func(v uint16) uint64 { return uint64(v) },
			func(b uint64) uint16 { return uint16(b) })
	case *int8:
		c.encKeys, _, c.fillKeys = fixedVals[int8, K](
			func(v int8) uint64 { return uint64(int64(v)) },
			func(b uint64) int8 { return int8(int64(b)) })
	case *uint8:
		c.encKeys, _, c.fillKeys = fixedVals[uint8, K](
			func(v uint8) uint64 { return uint64(v) },
			func(b uint64) uint8 { return uint8(b) })
	case *float64:
		c.encKeys, _, c.fillKeys = fixedVals[float64, K](math.Float64bits, math.Float64frombits)
	case *float32:
		c.encKeys, _, c.fillKeys = fixedVals[float32, K](
			func(v float32) uint64 { return math.Float64bits(float64(v)) },
			func(b uint64) float32 { return float32(math.Float64frombits(b)) })
	case *string:
		c.encKeys, c.fillKeys = stringKeys[K]()
		c.kFixed = false
	default:
		c.encKeys, c.fillKeys, c.kFixed = reflectKeys[K]()
	}
	switch any((*V)(nil)).(type) {
	case *uint64:
		c.encVals, c.decVals, c.decValsInto = intVals[uint64, V]()
	case *int64:
		c.encVals, c.decVals, c.decValsInto = intVals[int64, V]()
	case *int:
		c.encVals, c.decVals, c.decValsInto = intVals[int, V]()
	case *uint:
		c.encVals, c.decVals, c.decValsInto = intVals[uint, V]()
	case *int32:
		c.encVals, c.decVals, c.decValsInto = fixedVals[int32, V](
			func(v int32) uint64 { return uint64(int64(v)) },
			func(b uint64) int32 { return int32(int64(b)) })
	case *uint32:
		c.encVals, c.decVals, c.decValsInto = fixedVals[uint32, V](
			func(v uint32) uint64 { return uint64(v) },
			func(b uint64) uint32 { return uint32(b) })
	case *float64:
		c.encVals, c.decVals, c.decValsInto = fixedVals[float64, V](math.Float64bits, math.Float64frombits)
	case *float32:
		c.encVals, c.decVals, c.decValsInto = fixedVals[float32, V](
			func(v float32) uint64 { return math.Float64bits(float64(v)) },
			func(b uint64) float32 { return float32(math.Float64frombits(b)) })
	case *bool:
		c.encVals, c.decVals, c.decValsInto = fixedVals[bool, V](
			func(v bool) uint64 {
				if v {
					return 1
				}
				return 0
			},
			func(b uint64) bool { return b != 0 })
	case *string:
		c.encVals, c.decVals = stringVals[V]()
	}
	return c
}

// encKey appends one key's wire form (the per-page segment start key).
func (c *SnapCodec[K, V]) encKey(buf []byte, k K) []byte {
	var tmp [1]K
	tmp[0] = k
	return c.encKeys(buf, tmp[:])
}

// decKey decodes one key, returning the remaining bytes.
func (c *SnapCodec[K, V]) decKey(data []byte) (K, []byte, error) {
	var tmp [1]K
	data, err := c.fillKeys(tmp[:], data)
	if err != nil {
		var zero K
		return zero, nil, err
	}
	if tmp[0] != tmp[0] {
		var zero K
		return zero, nil, errSnapNaN
	}
	return tmp[0], data, nil
}

// decKeysInto decodes len(out) keys into out, returning the remaining
// bytes. It verifies ordering and NaN-freeness as it fills, so callers
// can mark the snapshot KeysVerified.
func (c *SnapCodec[K, V]) decKeysInto(out []K, data []byte) ([]byte, error) {
	data, err := c.fillKeys(out, data)
	if err != nil {
		return nil, err
	}
	if err := verifyKeys(out); err != nil {
		return nil, err
	}
	return data, nil
}

// decKeys decodes n keys, returning the remaining bytes.
func (c *SnapCodec[K, V]) decKeys(data []byte, n int) ([]K, []byte, error) {
	out := make([]K, n)
	data, err := c.decKeysInto(out, data)
	if err != nil {
		return nil, nil, err
	}
	return out, data, nil
}

// Encode serializes one chunk snapshot.
func (c *SnapCodec[K, V]) Encode(snap ChunkSnap[K, V]) ([]byte, error) {
	if c.encVals == nil {
		var sink bytes.Buffer
		sink.WriteByte(snapFormatGob)
		if err := gob.NewEncoder(&sink).Encode(snap); err != nil {
			return nil, fmt.Errorf("fitingtree: encode chunk snapshot: %w", err)
		}
		return sink.Bytes(), nil
	}
	// The size is an exact precompute for fixed 8-byte keys and values and
	// a capacity hint otherwise (variable-width fields grow the buffer).
	size := 1 + 4
	for _, p := range snap.Pages {
		size += 32 + 4 + 16*len(p.Keys) + 4 + 16*len(p.BufKeys) + 8
	}
	buf := make([]byte, 1, size)
	buf[0] = snapFormatRawV3
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(snap.Pages)))
	for _, p := range snap.Pages {
		buf = c.encKey(buf, p.Seg.Start)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(p.Seg.StartPos)))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(p.Seg.Count)))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Seg.Slope))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Keys)))
		buf = c.encKeys(buf, p.Keys)
		buf = c.encVals(buf, p.Vals)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.BufKeys)))
		buf = c.encKeys(buf, p.BufKeys)
		buf = c.encVals(buf, p.BufVals)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Deletes))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.WErr))
	}
	return buf, nil
}

// maxSnapPages bounds the page and element counts a raw snapshot header
// may claim, so a corrupted count cannot drive an outsized allocation
// before the per-field bounds checks reject the blob.
const maxSnapPages = 1 << 24

// Decode inverts Encode. Structural corruption (truncation, absurd
// counts) is caught here; semantic validation (ordering, parallel
// lengths) happens in AssembleChunks.
func (c *SnapCodec[K, V]) Decode(data []byte) (ChunkSnap[K, V], error) {
	var snap ChunkSnap[K, V]
	if len(data) == 0 {
		return snap, errSnapTruncated
	}
	switch data[0] {
	case snapFormatGob:
		if err := gob.NewDecoder(bytes.NewReader(data[1:])).Decode(&snap); err != nil {
			return snap, fmt.Errorf("fitingtree: decode chunk snapshot: %w", err)
		}
		// Never trust a verification claim from the wire: gob round-trips
		// exported fields, so a crafted stream could set it.
		snap.KeysVerified = false
		return snap, nil
	case snapFormatRaw, snapFormatRawV3:
	default:
		return snap, fmt.Errorf("fitingtree: unknown chunk snapshot format %d", data[0])
	}
	if c.decVals == nil {
		return snap, fmt.Errorf("fitingtree: raw chunk snapshot for a value type without a raw codec")
	}
	// Format 1 predates per-page error bounds; its pages decode with WErr 0
	// and AssembleChunks applies the options' global bound.
	tail := 4
	if data[0] == snapFormatRawV3 {
		tail = 8
	}
	data = data[1:]
	if len(data) < 4 {
		return snap, errSnapTruncated
	}
	nPages := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if nPages > maxSnapPages || nPages*8 > len(data) {
		return snap, fmt.Errorf("fitingtree: chunk snapshot claims %d pages in %d bytes", nPages, len(data))
	}
	snap.Pages = make([]PageSnap[K, V], nPages)
	// For fixed-width values a pre-scan sums the element counts so every
	// page's key and value slices can be carved from two arena
	// allocations — recovery decodes thousands of pages, and four small
	// allocations per page dominated its profile. The carved slices are
	// capacity-capped so a later append on one page reallocates instead
	// of stomping its arena neighbor.
	var keyArena []K
	var valArena []V
	if c.decValsInto != nil && c.kFixed {
		if total, ok := rawSnapTotal(data, nPages, tail); ok {
			keyArena = make([]K, total)
			valArena = make([]V, total)
		}
	}
	carve := func(n int) ([]K, []V) {
		ks, vs := keyArena[:n:n], valArena[:n:n]
		keyArena, valArena = keyArena[n:], valArena[n:]
		return ks, vs
	}
	for i := range snap.Pages {
		p := &snap.Pages[i]
		var err error
		if p.Seg.Start, data, err = c.decKey(data); err != nil {
			return snap, err
		}
		if len(data) < 24 {
			return snap, errSnapTruncated
		}
		p.Seg.StartPos = int(int64(binary.LittleEndian.Uint64(data)))
		p.Seg.Count = int(int64(binary.LittleEndian.Uint64(data[8:])))
		p.Seg.Slope = math.Float64frombits(binary.LittleEndian.Uint64(data[16:]))
		data = data[24:]

		var n int
		if n, data, err = c.decCount(data); err != nil {
			return snap, err
		}
		if keyArena != nil {
			p.Keys, p.Vals = carve(n)
			if data, err = c.decKeysInto(p.Keys, data); err != nil {
				return snap, err
			}
			if data, err = c.decValsInto(p.Vals, data); err != nil {
				return snap, err
			}
		} else {
			if p.Keys, data, err = c.decKeys(data, n); err != nil {
				return snap, err
			}
			if p.Vals, data, err = c.decVals(data, n); err != nil {
				return snap, err
			}
		}
		if n, data, err = c.decCount(data); err != nil {
			return snap, err
		}
		if keyArena != nil {
			p.BufKeys, p.BufVals = carve(n)
			if data, err = c.decKeysInto(p.BufKeys, data); err != nil {
				return snap, err
			}
			if data, err = c.decValsInto(p.BufVals, data); err != nil {
				return snap, err
			}
		} else {
			if p.BufKeys, data, err = c.decKeys(data, n); err != nil {
				return snap, err
			}
			if p.BufVals, data, err = c.decVals(data, n); err != nil {
				return snap, err
			}
		}
		if len(data) < tail {
			return snap, errSnapTruncated
		}
		p.Deletes = int(binary.LittleEndian.Uint32(data))
		if tail == 8 {
			p.WErr = int(binary.LittleEndian.Uint32(data[4:]))
		}
		data = data[tail:]
	}
	if len(data) != 0 {
		return snap, fmt.Errorf("fitingtree: chunk snapshot carries %d trailing bytes", len(data))
	}
	// decKeysInto checked ordering and NaNs for every page on this path.
	snap.KeysVerified = true
	return snap, nil
}

// rawSnapTotal walks a raw snapshot body (past the page count) assuming
// the fixed 8-byte value encoding and returns the total element count
// across all pages, sorted plus buffered. tail is the per-page trailer
// size (4 for format 1, 8 for format 3). ok is false when the walk runs
// off the data — the caller then falls back to the per-page path, whose
// bounds checks produce the precise error.
func rawSnapTotal(data []byte, nPages, tail int) (total int, ok bool) {
	for i := 0; i < nPages; i++ {
		if len(data) < 36 {
			return 0, false
		}
		n := int(binary.LittleEndian.Uint32(data[32:]))
		data = data[36:]
		if n > len(data)/16 {
			return 0, false
		}
		data = data[16*n:]
		total += n
		if len(data) < 4 {
			return 0, false
		}
		n = int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if n > len(data)/16 {
			return 0, false
		}
		data = data[16*n:]
		total += n
		if len(data) < tail {
			return 0, false
		}
		data = data[tail:]
	}
	return total, len(data) == 0
}

// decCount reads one u32 element count, bounding it by the remaining
// bytes (every element costs at least one byte on the wire).
func (c *SnapCodec[K, V]) decCount(data []byte) (int, []byte, error) {
	if len(data) < 4 {
		return 0, nil, errSnapTruncated
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if n > len(data) {
		return 0, nil, fmt.Errorf("fitingtree: chunk snapshot claims %d elements in %d bytes", n, len(data))
	}
	return n, data, nil
}
