package core

import (
	"fmt"
	"sort"

	"fitingtree/internal/num"
)

// Secondary is a non-clustered FITing-Tree index over an attribute of an
// unsorted heap table (Section 2.2.1, Figure 3).
//
// Unlike the clustered case, the indexed column is not sorted and may
// contain duplicates, so the index adds one level: sorted key pages that
// store (key, row pointer) pairs. That level is segmented with the same
// error-bounded algorithm as a clustered index — here it is simply a
// clustered FITing-Tree whose values are row identifiers.
type Secondary[K num.Key] struct {
	tree *Tree[K, int]
}

// BuildSecondary creates a secondary index over column; the value stored
// for column[i] is the row id i. The column is not modified.
func BuildSecondary[K num.Key](column []K, opts Options) (*Secondary[K], error) {
	type pair struct {
		k   K
		row int
	}
	pairs := make([]pair, len(column))
	for i, k := range column {
		pairs[i] = pair{k, i}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].k != pairs[j].k {
			return pairs[i].k < pairs[j].k
		}
		return pairs[i].row < pairs[j].row
	})
	keys := make([]K, len(pairs))
	rows := make([]int, len(pairs))
	for i, p := range pairs {
		keys[i] = p.k
		rows[i] = p.row
	}
	t, err := BulkLoad(keys, rows, opts)
	if err != nil {
		return nil, fmt.Errorf("secondary: %w", err)
	}
	return &Secondary[K]{tree: t}, nil
}

// Insert registers that row holds key k (e.g. after appending a row to the
// heap table).
func (s *Secondary[K]) Insert(k K, row int) { s.tree.Insert(k, row) }

// Delete removes one (k, row) posting; it reports whether one was found.
// Because several rows can hold the same key, the row must match too.
func (s *Secondary[K]) Delete(k K, row int) bool {
	return s.tree.DeleteWhere(k, func(r int) bool { return r == row })
}

// Rows returns the ids of every row whose indexed attribute equals k, in
// index order.
func (s *Secondary[K]) Rows(k K) []int {
	var rows []int
	s.tree.Each(k, func(r int) bool {
		rows = append(rows, r)
		return true
	})
	return rows
}

// RangeRows calls fn with the key and row id of every posting with
// lo <= key <= hi in key order, stopping early if fn returns false. Row
// fetches from the heap table are random accesses, as with any
// non-clustered index (Section 4.2).
func (s *Secondary[K]) RangeRows(lo, hi K, fn func(k K, row int) bool) {
	s.tree.AscendRange(lo, hi, fn)
}

// Len returns the number of postings.
func (s *Secondary[K]) Len() int { return s.tree.Len() }

// Stats returns the statistics of the underlying key-page level.
func (s *Secondary[K]) Stats() Stats { return s.tree.Stats() }

// CheckInvariants validates the underlying tree.
func (s *Secondary[K]) CheckInvariants() error { return s.tree.CheckInvariants() }
