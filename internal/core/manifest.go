package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// This file is the top-level manifest codec for the sharded durability
// protocol: one blob, committed atomically by the pager's dual-superblock
// epoch flip, that names every shard's checkpoint (blob chain heads), WAL
// replay cursor, and fence key. Because the whole cut lives in one blob
// behind one commit record, recovery always loads a coherent epoch — all
// shards from cut N, never a mix of cuts.
//
// The codec is deliberately independent of the key type: fence keys
// arrive already encoded as opaque byte strings (the facade's WAL key
// codec produces them), so the same manifest format serves every K. All
// integers are little-endian; every variable-length field carries a
// length prefix that the decoder bounds-checks before allocating, so a
// corrupted or adversarial manifest is rejected instead of driving a
// multi-gigabyte allocation. The rebalance intent record shares the
// fence-list wire format and adds a CRC-32C of its own because it lives
// in a bare file, not inside a checksummed blob page.

// shardManifestMagic marks a sharded manifest blob ("FSHM").
const shardManifestMagic = 0x4653484d

// intentMagic marks a rebalance intent record ("FINT").
const intentMagic = 0x46494e54

// manifestMaxShards bounds the decoded shard count; it exists only to cap
// allocations on corrupt input (real deployments run a few dozen shards).
const manifestMaxShards = 1 << 16

// manifestMaxChunks bounds the decoded per-shard chunk count, same role.
const manifestMaxChunks = 1 << 24

// manifestMaxFence bounds one encoded fence key's byte length.
const manifestMaxFence = 1 << 20

// manifestCRC is the Castagnoli table used by the intent record.
var manifestCRC = crc32.MakeTable(crc32.Castagnoli)

// ShardCut is one shard's slice of a cross-shard checkpoint cut.
type ShardCut struct {
	// ReplayFrom is the first WAL LSN of this shard's log not folded into
	// the checkpoint: recovery replays records with LSN >= ReplayFrom.
	ReplayFrom uint64
	// Chunks holds the blob head page id of every chain chunk, in chain
	// order (page ids are the pager's, widened to uint64 on the wire).
	Chunks []uint64
}

// ShardManifest is the decoded top-level checkpoint manifest: the whole
// sharded facade's durable state at one epoch.
type ShardManifest struct {
	// Generation numbers the fence layout: every rebalance increments it,
	// and per-shard WAL file names embed it, so a recovery never replays a
	// previous generation's records through the new fences.
	Generation uint64
	// Options is the tree configuration every shard was built with.
	Options Options
	// Fences holds the encoded fence keys (len(Shards)-1 of them, strictly
	// increasing in key order): shard i owns keys in [Fences[i-1],
	// Fences[i]).
	Fences [][]byte
	// Shards holds one cut per shard, in fence order.
	Shards []ShardCut
}

// appendBytes appends a u32 length prefix plus the bytes.
func appendBytes(buf, b []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// takeBytes reads a u32-length-prefixed field, bounds-checked against max.
func takeBytes(data []byte, max int) ([]byte, []byte, error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("core: manifest truncated in length prefix")
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if n > max {
		return nil, nil, fmt.Errorf("core: manifest field of %d bytes exceeds limit %d", n, max)
	}
	if len(data) < n {
		return nil, nil, fmt.Errorf("core: manifest field claims %d bytes, %d remain", n, len(data))
	}
	return data[:n], data[n:], nil
}

// takeU64 reads one little-endian u64.
func takeU64(data []byte) (uint64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("core: manifest truncated in u64 field")
	}
	return binary.LittleEndian.Uint64(data), data[8:], nil
}

// appendOptions appends the tree options as six fixed u64 fields. Float
// bits round-trip FillFactor exactly.
func appendOptions(buf []byte, o Options) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(o.Error)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(o.BufferSize)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(o.Fanout)))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.FillFactor))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(o.Search)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(o.Router)))
	return buf
}

// decodeOptions inverts appendOptions and validates the result through the
// same normalization construction uses, so a corrupted options block is
// rejected here instead of panicking later.
func decodeOptions(data []byte) (Options, []byte, error) {
	var raw [6]uint64
	var err error
	for i := range raw {
		if raw[i], data, err = takeU64(data); err != nil {
			return Options{}, nil, err
		}
	}
	o := Options{
		Error:      int(int64(raw[0])),
		BufferSize: int(int64(raw[1])),
		Fanout:     int(int64(raw[2])),
		FillFactor: math.Float64frombits(raw[3]),
		Search:     SearchStrategy(int64(raw[4])),
		Router:     RouterKind(int64(raw[5])),
	}
	if o.FillFactor != o.FillFactor {
		return Options{}, nil, fmt.Errorf("core: manifest options carry NaN fill factor")
	}
	if _, err := o.withDefaults(); err != nil {
		return Options{}, nil, fmt.Errorf("core: manifest options invalid: %w", err)
	}
	return o, data, nil
}

// EncodeShardManifest serializes m. The caller stores the blob in a
// checksummed page chain, so the manifest itself carries no CRC.
func EncodeShardManifest(m ShardManifest) []byte {
	buf := make([]byte, 0, 64+len(m.Shards)*32)
	buf = binary.LittleEndian.AppendUint32(buf, shardManifestMagic)
	buf = binary.LittleEndian.AppendUint64(buf, m.Generation)
	buf = appendOptions(buf, m.Options)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Shards)))
	for _, f := range m.Fences {
		buf = appendBytes(buf, f)
	}
	for _, sc := range m.Shards {
		buf = binary.LittleEndian.AppendUint64(buf, sc.ReplayFrom)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sc.Chunks)))
		for _, head := range sc.Chunks {
			buf = binary.LittleEndian.AppendUint64(buf, head)
		}
	}
	return buf
}

// DecodeShardManifest parses and validates a manifest blob. Every length
// is bounds-checked before allocation and the shard/fence counts must be
// coherent, so recovery fails cleanly on a corrupted manifest rather than
// assembling a facade with misrouted shards.
func DecodeShardManifest(data []byte) (ShardManifest, error) {
	var m ShardManifest
	if len(data) < 4 || binary.LittleEndian.Uint32(data) != shardManifestMagic {
		return m, fmt.Errorf("core: not a shard manifest (bad magic)")
	}
	data = data[4:]
	var err error
	if m.Generation, data, err = takeU64(data); err != nil {
		return m, err
	}
	if m.Options, data, err = decodeOptions(data); err != nil {
		return m, err
	}
	if len(data) < 4 {
		return m, fmt.Errorf("core: manifest truncated in shard count")
	}
	shards := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if shards < 1 || shards > manifestMaxShards {
		return m, fmt.Errorf("core: manifest claims %d shards", shards)
	}
	m.Fences = make([][]byte, shards-1)
	for i := range m.Fences {
		var f []byte
		if f, data, err = takeBytes(data, manifestMaxFence); err != nil {
			return m, err
		}
		m.Fences[i] = append([]byte(nil), f...)
	}
	m.Shards = make([]ShardCut, shards)
	for i := range m.Shards {
		if m.Shards[i].ReplayFrom, data, err = takeU64(data); err != nil {
			return m, err
		}
		if len(data) < 4 {
			return m, fmt.Errorf("core: manifest truncated in chunk count")
		}
		chunks := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if chunks > manifestMaxChunks {
			return m, fmt.Errorf("core: manifest shard %d claims %d chunks", i, chunks)
		}
		if len(data) < 8*chunks {
			return m, fmt.Errorf("core: manifest shard %d chunk list truncated", i)
		}
		m.Shards[i].Chunks = make([]uint64, chunks)
		for j := range m.Shards[i].Chunks {
			m.Shards[i].Chunks[j] = binary.LittleEndian.Uint64(data)
			data = data[8:]
		}
	}
	if len(data) != 0 {
		return m, fmt.Errorf("core: manifest carries %d trailing bytes", len(data))
	}
	return m, nil
}

// RebalanceIntent is the durable record a sharded facade writes before
// migrating keys between shards: the fence layouts on both sides of the
// migration and the generation it creates. The migration commits only
// with the next manifest flip, which carries Generation, so a recovery
// that finds an intent whose Generation is still above the committed
// manifest's knows the migration never landed and discards it
// wholesale; an intent at or below the committed generation is a
// committed migration's leftover. (Epochs are not compared: they
// advance with every checkpoint, skip past failed commit attempts, and
// restart relative to a superseded store, so they cannot classify a
// stale intent safely.)
type RebalanceIntent struct {
	// SourceEpoch is the in-memory checkpoint epoch the migration
	// started from — diagnostic only; recovery classifies the intent by
	// Generation.
	SourceEpoch uint64
	// Generation is the fence generation the migration creates (the
	// manifest flip that commits the migration carries it).
	Generation uint64
	// OldFences and NewFences are the encoded fence keys before and after
	// the migration.
	OldFences [][]byte
	NewFences [][]byte
}

// EncodeRebalanceIntent serializes the intent with a CRC-32C trailer: the
// record lives in a bare file with no page checksums around it, so a torn
// intent write must be detectable on its own.
func EncodeRebalanceIntent(it RebalanceIntent) []byte {
	buf := make([]byte, 0, 64)
	buf = binary.LittleEndian.AppendUint32(buf, intentMagic)
	buf = binary.LittleEndian.AppendUint64(buf, it.SourceEpoch)
	buf = binary.LittleEndian.AppendUint64(buf, it.Generation)
	for _, fences := range [2][][]byte{it.OldFences, it.NewFences} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fences)))
		for _, f := range fences {
			buf = appendBytes(buf, f)
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, manifestCRC))
}

// DecodeRebalanceIntent parses and checksum-verifies an intent record. A
// torn or corrupted record returns an error; recovery treats that the
// same as a missing intent (the migration cannot have committed, because
// the intent is synced before any migration work starts).
func DecodeRebalanceIntent(data []byte) (RebalanceIntent, error) {
	var it RebalanceIntent
	if len(data) < 8 {
		return it, fmt.Errorf("core: intent record of %d bytes is too short", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if binary.LittleEndian.Uint32(tail) != crc32.Checksum(body, manifestCRC) {
		return it, fmt.Errorf("core: intent record failed checksum")
	}
	if binary.LittleEndian.Uint32(body) != intentMagic {
		return it, fmt.Errorf("core: not an intent record (bad magic)")
	}
	body = body[4:]
	var err error
	if it.SourceEpoch, body, err = takeU64(body); err != nil {
		return it, err
	}
	if it.Generation, body, err = takeU64(body); err != nil {
		return it, err
	}
	for side := 0; side < 2; side++ {
		if len(body) < 4 {
			return it, fmt.Errorf("core: intent truncated in fence count")
		}
		n := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		if n > manifestMaxShards {
			return it, fmt.Errorf("core: intent claims %d fences", n)
		}
		fences := make([][]byte, n)
		for i := range fences {
			var f []byte
			if f, body, err = takeBytes(body, manifestMaxFence); err != nil {
				return it, err
			}
			fences[i] = append([]byte(nil), f...)
		}
		if side == 0 {
			it.OldFences = fences
		} else {
			it.NewFences = fences
		}
	}
	if len(body) != 0 {
		return it, fmt.Errorf("core: intent carries %d trailing bytes", len(body))
	}
	return it, nil
}
