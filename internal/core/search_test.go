package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fitingtree/internal/workload"
)

var strategies = map[string]SearchStrategy{
	"binary":      SearchBinary,
	"linear":      SearchLinear,
	"exponential": SearchExponential,
}

func TestSearchStrategiesAgree(t *testing.T) {
	keys := workload.IoT(30_000, 21)
	vals := make([]int, len(keys))
	for i := range vals {
		vals[i] = i
	}
	trees := map[string]*Tree[uint64, int]{}
	for name, s := range strategies {
		tr, err := BulkLoad(keys, vals, Options{Error: 50, Search: s})
		if err != nil {
			t.Fatal(err)
		}
		trees[name] = tr
	}
	probeMax := keys[len(keys)-1] + 100
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 50_000; i++ {
		var k uint64
		if i%2 == 0 {
			k = keys[rng.Intn(len(keys))]
		} else {
			k = uint64(rng.Int63n(int64(probeMax)))
		}
		_, okB := trees["binary"].Lookup(k)
		_, okL := trees["linear"].Lookup(k)
		_, okE := trees["exponential"].Lookup(k)
		if okB != okL || okB != okE {
			t.Fatalf("strategies disagree on %d: binary=%v linear=%v exp=%v", k, okB, okL, okE)
		}
	}
}

func TestSearchStrategiesWithMutations(t *testing.T) {
	for name, s := range strategies {
		t.Run(name, func(t *testing.T) {
			keys := make([]uint64, 5000)
			for i := range keys {
				keys[i] = uint64(i * 3)
			}
			vals := make([]int, len(keys))
			tr, err := BulkLoad(keys, vals, Options{Error: 16, BufferSize: 8, Search: s})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(23))
			present := map[uint64]int{}
			for _, k := range keys {
				present[k]++
			}
			for i := 0; i < 20_000; i++ {
				k := uint64(rng.Intn(20_000))
				switch i % 3 {
				case 0:
					tr.Insert(k, i)
					present[k]++
				case 1:
					if tr.Delete(k) != (present[k] > 0) {
						t.Fatalf("delete mismatch at %d", k)
					}
					if present[k] > 0 {
						present[k]--
					}
				case 2:
					if _, ok := tr.Lookup(k); ok != (present[k] > 0) {
						t.Fatalf("lookup mismatch at %d", k)
					}
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRejectInvalidStrategy(t *testing.T) {
	if _, err := BulkLoad([]uint64{1}, []int{0}, Options{Search: SearchStrategy(99)}); err == nil {
		t.Fatal("accepted invalid strategy")
	}
	if _, err := BulkLoad([]uint64{1}, []int{0}, Options{Search: SearchStrategy(-1)}); err == nil {
		t.Fatal("accepted negative strategy")
	}
}

// Property: the three in-page search primitives agree with sort.Search on
// random sorted slices and probe points.
func TestQuickSearchPrimitivesAgree(t *testing.T) {
	f := func(raw []uint16, probesRaw []uint16, atRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		keys := make([]uint64, len(raw))
		for i, r := range raw {
			keys[i] = uint64(r % 300) // duplicates likely
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		n := len(keys)
		for _, pr := range probesRaw {
			k := uint64(pr % 300)
			at := int(atRaw) % n
			wantIdx := sort.Search(n, func(i int) bool { return keys[i] >= k })
			want := wantIdx < n && keys[wantIdx] == k
			bi, bok := binarySearch(keys, 0, n, k)
			li, lok := linearSearch(keys, 0, n, at, k)
			ei, eok := exponentialSearch(keys, 0, n, at, k)
			if bok != want || lok != want || eok != want {
				return false
			}
			if want {
				// All must land on an element equal to k (not necessarily
				// the same duplicate).
				if keys[bi] != k || keys[li] != k || keys[ei] != k {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
