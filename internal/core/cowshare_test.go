package core

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"fitingtree/internal/workload"
)

// buildShareBase builds a deep tree (many segments, many chunks) for
// structural-sharing assertions.
func buildShareBase(t *testing.T, n int, kind RouterKind) *Tree[uint64, uint64] {
	t.Helper()
	keys := make([]uint64, n)
	rng := rand.New(rand.NewSource(17))
	k := uint64(0)
	for i := range keys {
		k += uint64(1 + rng.Intn(13))
		keys[i] = k
	}
	return buildCOWBase(t, keys, Options{Error: 8, BufferSize: 2, Router: kind})
}

// tightOps builds a small op cluster around the middle of the key space.
func tightOps(tr *Tree[uint64, uint64]) []MergeOp[uint64, uint64] {
	maxKey, _, _ := tr.Max()
	mid := maxKey / 2
	return []MergeOp[uint64, uint64]{
		{Key: mid, Adds: []uint64{1}},
		{Key: mid + 2, Adds: []uint64{2}},
		{Key: mid + 4, Dels: 1},
	}
}

// TestMergeCOWSharesChunks pins the chunk-granular contract: a tight op
// cluster re-cuts only the chunks its dirty interval overlaps; every other
// chunk of the published tree is pointer-identical (same chunk identity)
// with the parent's.
func TestMergeCOWSharesChunks(t *testing.T) {
	base := buildShareBase(t, 300_000, RouterBTree)
	baseChunks := base.ChunkIDs()
	if len(baseChunks) < 20 {
		t.Fatalf("want a deep chunked chain, got %d chunks", len(baseChunks))
	}

	merged := base.MergeCOW(tightOps(base))
	if err := merged.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	old := map[uint64]bool{}
	for _, id := range baseChunks {
		old[id] = true
	}
	shared, fresh := 0, 0
	for _, id := range merged.ChunkIDs() {
		if old[id] {
			shared++
		} else {
			fresh++
		}
	}
	if fresh == 0 {
		t.Fatal("no chunks were re-cut")
	}
	// One coalesced dirty interval spans at most a few pages, so at most
	// two boundary chunks are replaced — re-cut into at most 3 chunks.
	if fresh > 3 {
		t.Fatalf("a 3-key delta re-cut %d chunks (shared %d of %d)", fresh, shared, len(baseChunks))
	}
	if shared < len(baseChunks)-2 {
		t.Fatalf("only %d of %d chunks shared", shared, len(baseChunks))
	}
}

// TestMergeCOWSharesRouterNodes pins the persistent-router contract: the
// published tree's B+ tree router shares all nodes with the parent's
// except the descent paths of the routing entries the dirty interval
// rewrote — O(dirty · height), not a rebuilt O(segments) tree.
func TestMergeCOWSharesRouterNodes(t *testing.T) {
	base := buildShareBase(t, 100_000, RouterBTree)
	merged := base.MergeCOW(tightOps(base))
	if err := merged.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	total := merged.rbt.NodeCount()
	shared := merged.rbt.SharedNodeCount(base.rbt)
	copied := total - shared
	if shared == 0 {
		t.Fatal("published router shares no nodes with its parent")
	}
	// The dirty interval rewrites at most ~2 chunks' worth of entries
	// (≤ 2·chunkMax inserts/deletes), each copying one root-to-leaf path.
	budget := 2 * chunkMax * (base.rbt.Height() + 2)
	if copied > budget {
		t.Fatalf("publication copied %d router nodes of %d (budget %d)", copied, total, budget)
	}
	if copied == 0 {
		t.Fatal("publication copied no router nodes — entries cannot have been rewritten")
	}
	// And the parent's router is untouched: invariants hold and its floor
	// answers still match the parent's content.
	if err := base.CheckInvariants(); err != nil {
		t.Fatalf("parent after publication: %v", err)
	}
}

// TestMergeCOWPublicationConcurrentReaders is the -race stress for the
// persistent-router publication: a single flusher thread repeatedly
// MergeCOWs the current tree and publishes it through an atomic pointer
// while reader goroutines hammer point lookups, floor-heavy batch probes,
// and ordered scans on whatever version they last loaded. Run under -race
// this pins that publication never writes into structure a published tree
// shares (router nodes, chunks, pages).
func TestMergeCOWPublicationConcurrentReaders(t *testing.T) {
	for _, rk := range routerKinds {
		t.Run(rk.name, func(t *testing.T) {
			// Deep enough that a 32-op delta stays under the hybrid
			// threshold: the publications under test must take the
			// incremental persistent-clone path, not the bulk reload.
			base := buildShareBase(t, 120_000, rk.kind)
			var cur atomic.Pointer[Tree[uint64, uint64]]
			cur.Store(base)
			maxKey, _, _ := base.Max()

			var wg sync.WaitGroup
			stop := make(chan struct{})
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					probes := make([]uint64, 64)
					for {
						select {
						case <-stop:
							return
						default:
						}
						tr := cur.Load()
						k := uint64(rng.Int63n(int64(maxKey)))
						tr.Lookup(k)
						for i := range probes {
							probes[i] = uint64(rng.Int63n(int64(maxKey)))
						}
						tr.LookupBatch(probes)
						n := 0
						tr.AscendRange(k, k+200, func(uint64, uint64) bool {
							n++
							return n < 64
						})
					}
				}(int64(100 + r))
			}

			rng := rand.New(rand.NewSource(7))
			for flush := 0; flush < 60; flush++ {
				tr := cur.Load()
				seen := map[uint64]bool{}
				var ops []MergeOp[uint64, uint64]
				for len(ops) < 32 {
					k := uint64(rng.Int63n(int64(maxKey)))
					if seen[k] {
						continue
					}
					seen[k] = true
					op := MergeOp[uint64, uint64]{Key: k}
					if rng.Intn(4) == 0 && tr.Contains(k) {
						op.Dels = 1
					} else {
						op.Adds = []uint64{k}
					}
					ops = append(ops, op)
				}
				sort.Slice(ops, func(i, j int) bool { return ops[i].Key < ops[j].Key })
				cur.Store(tr.MergeCOW(ops))
			}
			close(stop)
			wg.Wait()
			if err := cur.Load().CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestLookupBatchUnsortedMatchesLookup is the randomized equivalence test
// for the grouped unsorted-probe fast path: on trees with duplicate runs
// and buffered inserts, a shuffled probe set must answer exactly like
// per-key Lookup calls, under both router kinds.
func TestLookupBatchUnsortedMatchesLookup(t *testing.T) {
	for _, rk := range routerKinds {
		t.Run(rk.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(53))
			for trial := 0; trial < 12; trial++ {
				n := 2_000 + rng.Intn(20_000)
				keys := workload.Weblogs(n, int64(trial+1))
				vals := make([]uint64, n)
				for i := range vals {
					vals[i] = uint64(i)
				}
				tr, err := BulkLoad(keys, vals, Options{Error: 16, BufferSize: 8, Router: rk.kind})
				if err != nil {
					t.Fatal(err)
				}
				// Buffered inserts and a few deletes so pages carry every
				// kind of content the search paths distinguish.
				maxKey := keys[len(keys)-1] + 100
				for i := 0; i < 500; i++ {
					tr.Insert(uint64(rng.Int63n(int64(maxKey))), uint64(1_000_000+i))
				}
				for i := 0; i < 100; i++ {
					tr.Delete(uint64(rng.Int63n(int64(maxKey))))
				}

				probes := make([]uint64, 700)
				for i := range probes {
					if rng.Intn(3) == 0 && len(keys) > 0 {
						probes[i] = keys[rng.Intn(len(keys))] // mostly hits
					} else {
						probes[i] = uint64(rng.Int63n(int64(maxKey)))
					}
				}
				// A genuinely unsorted order (the grouped path), including
				// clustered stretches that exercise group reuse.
				rng.Shuffle(len(probes), func(i, j int) { probes[i], probes[j] = probes[j], probes[i] })

				bv, bf := tr.LookupBatch(probes)
				for i, k := range probes {
					v, ok := tr.Lookup(k)
					if bf[i] != ok {
						t.Fatalf("trial %d: found[%d] for key %d = %v, Lookup says %v", trial, i, k, bf[i], ok)
					}
					if ok && bv[i] != v {
						// Both must return a live value for k; with duplicates
						// any match is legal, so validate via Each.
						legal := false
						tr.Each(k, func(x uint64) bool {
							if x == bv[i] {
								legal = true
								return false
							}
							return true
						})
						if !legal {
							t.Fatalf("trial %d: batch value %d for key %d is not a live match", trial, bv[i], k)
						}
					}
				}
			}
		})
	}
}
