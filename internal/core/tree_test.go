package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fitingtree/internal/workload"
)

// load builds a tree over keys with position values and fails the test on
// error.
func load(t *testing.T, keys []uint64, opts Options) *Tree[uint64, int] {
	t.Helper()
	vals := make([]int, len(keys))
	for i := range vals {
		vals[i] = i
	}
	tr, err := BulkLoad(keys, vals, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBulkLoadEmpty(t *testing.T) {
	tr := load(t, nil, Options{})
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, ok := tr.Lookup(5); ok {
		t.Fatal("lookup hit on empty tree")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min hit on empty tree")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max hit on empty tree")
	}
	if tr.Delete(5) {
		t.Fatal("delete hit on empty tree")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Insert into an empty tree must bootstrap a page.
	tr.Insert(42, 1)
	if v, ok := tr.Lookup(42); !ok || v != 1 {
		t.Fatalf("Lookup(42) = %d,%v", v, ok)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadRejectsBadInput(t *testing.T) {
	if _, err := BulkLoad([]uint64{3, 1}, []int{0, 0}, Options{}); err == nil {
		t.Fatal("accepted unsorted keys")
	}
	if _, err := BulkLoad([]uint64{1, 2}, []int{0}, Options{}); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
	if _, err := BulkLoad([]uint64{1}, []int{0}, Options{Error: -1}); err == nil {
		t.Fatal("accepted negative error")
	}
	if _, err := BulkLoad([]uint64{1}, []int{0}, Options{Error: 10, BufferSize: 10}); err == nil {
		t.Fatal("accepted BufferSize >= Error")
	}
	if _, err := BulkLoad([]uint64{1}, []int{0}, Options{FillFactor: 1.5}); err == nil {
		t.Fatal("accepted FillFactor > 1")
	}
	if _, err := BulkLoad([]uint64{1}, []int{0}, Options{Fanout: 2}); err == nil {
		t.Fatal("accepted Fanout < 3")
	}
}

func TestLookupAllKeysAfterBulkLoad(t *testing.T) {
	keys := workload.IoT(50_000, 1)
	for _, e := range []int{10, 100, 1000} {
		tr := load(t, keys, Options{Error: e})
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("err=%d: %v", e, err)
		}
		for i, k := range keys {
			v, ok := tr.Lookup(k)
			if !ok {
				t.Fatalf("err=%d: Lookup(%d) missed (index %d)", e, k, i)
			}
			// Values map back to a position holding the same key
			// (duplicates may return any of their positions).
			if keys[v] != k {
				t.Fatalf("err=%d: Lookup(%d) returned value %d which holds key %d", e, k, v, keys[v])
			}
		}
	}
}

func TestLookupAbsentKeys(t *testing.T) {
	keys := make([]uint64, 10_000)
	for i := range keys {
		keys[i] = uint64(i)*10 + 5 // keys 5, 15, 25, ...
	}
	tr := load(t, keys, Options{Error: 50})
	for i := 0; i < 10_000; i++ {
		probe := uint64(i) * 10 // between stored keys
		if _, ok := tr.Lookup(probe); ok {
			t.Fatalf("Lookup(%d) found a key that was never stored", probe)
		}
	}
	if _, ok := tr.Lookup(1 << 60); ok {
		t.Fatal("lookup above max hit")
	}
}

func TestDuplicateHeavyData(t *testing.T) {
	// Long duplicate runs crossing page boundaries (the non-clustered
	// index case).
	var keys []uint64
	for k := 0; k < 20; k++ {
		run := 500 + (k%3)*700
		for i := 0; i < run; i++ {
			keys = append(keys, uint64(k*1000))
		}
	}
	tr := load(t, keys, Options{Error: 40})
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 20; k++ {
		key := uint64(k * 1000)
		want := 500 + (k%3)*700
		got := 0
		tr.Each(key, func(v int) bool { got++; return true })
		if got != want {
			t.Fatalf("Each(%d) visited %d values, want %d", key, got, want)
		}
		if _, ok := tr.Lookup(key); !ok {
			t.Fatalf("Lookup(%d) missed", key)
		}
	}
	if _, ok := tr.Lookup(500); ok {
		t.Fatal("lookup of absent key hit")
	}
}

func TestEachEarlyStop(t *testing.T) {
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = 7
	}
	tr := load(t, keys, Options{Error: 10})
	n := 0
	tr.Each(7, func(v int) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("Each visited %d after early stop, want 5", n)
	}
}

func TestInsertIntoBulkLoaded(t *testing.T) {
	keys := make([]uint64, 20_000)
	for i := range keys {
		keys[i] = uint64(i * 4)
	}
	tr := load(t, keys, Options{Error: 64})
	rng := rand.New(rand.NewSource(2))
	inserted := map[uint64]int{}
	for i := 0; i < 20_000; i++ {
		k := uint64(rng.Intn(80_000))
		if k%4 == 0 {
			k++ // avoid colliding with bulk keys to keep the check simple
		}
		inserted[k] = -i
		tr.Insert(k, -i)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every original key still findable.
	for i, k := range keys {
		v, ok := tr.Lookup(k)
		if !ok || keys[v] != keys[i] {
			t.Fatalf("Lookup(%d) = %d,%v after inserts", k, v, ok)
		}
	}
	// Inserted keys findable with one of their values (duplicates possible
	// from repeated rng keys; Lookup may return any).
	for k := range inserted {
		if _, ok := tr.Lookup(k); !ok {
			t.Fatalf("Lookup(%d) missed inserted key", k)
		}
	}
	if tr.Counters().Merges == 0 {
		t.Fatal("no merges happened despite 20k inserts")
	}
}

func TestInsertBeforeMin(t *testing.T) {
	keys := []uint64{1000, 1010, 1020, 1030, 1040, 1050}
	tr := load(t, keys, Options{Error: 4, BufferSize: 2})
	for k := uint64(0); k < 20; k++ {
		tr.Insert(k, int(k))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 20; k++ {
		if v, ok := tr.Lookup(k); !ok || v != int(k) {
			t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
		}
	}
	mk, _, _ := tr.Min()
	if mk != 0 {
		t.Fatalf("Min = %d, want 0", mk)
	}
}

func TestInsertTriggersSplitIntoMultipleSegments(t *testing.T) {
	// Linear data loads as one segment; inserting a step pattern must
	// split it.
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = uint64(i) * 1000
	}
	tr := load(t, keys, Options{Error: 20, BufferSize: 10})
	before := tr.Stats().Pages
	// Hammer one small key range so its positions become locally dense.
	for i := 0; i < 2000; i++ {
		tr.Insert(uint64(2_000_000)+uint64(i%7), i)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	after := tr.Stats().Pages
	if after <= before {
		t.Fatalf("pages %d -> %d: dense insert burst did not split", before, after)
	}
}

func TestDelete(t *testing.T) {
	keys := make([]uint64, 10_000)
	for i := range keys {
		keys[i] = uint64(i * 2)
	}
	tr := load(t, keys, Options{Error: 32})
	// Delete every fourth key.
	for i := 0; i < 10_000; i += 4 {
		if !tr.Delete(uint64(i * 2)) {
			t.Fatalf("Delete(%d) missed", i*2)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 7500 {
		t.Fatalf("Len = %d, want 7500", tr.Len())
	}
	for i := 0; i < 10_000; i++ {
		_, ok := tr.Lookup(uint64(i * 2))
		want := i%4 != 0
		if ok != want {
			t.Fatalf("Lookup(%d) = %v, want %v", i*2, ok, want)
		}
	}
	// Delete everything.
	for i := 0; i < 10_000; i++ {
		tr.Delete(uint64(i * 2))
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteThenReuse(t *testing.T) {
	keys := []uint64{10, 20, 30}
	tr := load(t, keys, Options{Error: 4, BufferSize: 2})
	for _, k := range keys {
		tr.Delete(k)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	tr.Insert(99, 1)
	if v, ok := tr.Lookup(99); !ok || v != 1 {
		t.Fatalf("Lookup(99) = %d,%v after reuse", v, ok)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAscendRange(t *testing.T) {
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = uint64(i * 3)
	}
	tr := load(t, keys, Options{Error: 16, BufferSize: 8})
	// Add buffered keys in the middle of the range.
	tr.Insert(1501, -1)
	tr.Insert(1502, -2)

	var got []uint64
	tr.AscendRange(1500, 1600, func(k uint64, v int) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{1500, 1501, 1502, 1503, 1506, 1509, 1512, 1515, 1518, 1521, 1524,
		1527, 1530, 1533, 1536, 1539, 1542, 1545, 1548, 1551, 1554, 1557, 1560,
		1563, 1566, 1569, 1572, 1575, 1578, 1581, 1584, 1587, 1590, 1593, 1596, 1599}
	if len(got) != len(want) {
		t.Fatalf("range returned %d keys, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Inverted and empty ranges.
	n := 0
	tr.AscendRange(100, 50, func(k uint64, v int) bool { n++; return true })
	if n != 0 {
		t.Fatal("inverted range visited elements")
	}
	tr.AscendRange(1_000_000, 2_000_000, func(k uint64, v int) bool { n++; return true })
	if n != 0 {
		t.Fatal("beyond-max range visited elements")
	}
}

func TestAscendVisitsEverythingInOrder(t *testing.T) {
	keys := workload.Weblogs(30_000, 3)
	tr := load(t, keys, Options{Error: 100})
	// Mix in inserts.
	rng := rand.New(rand.NewSource(4))
	extra := make([]uint64, 3000)
	for i := range extra {
		extra[i] = uint64(rng.Int63n(int64(keys[len(keys)-1])))
		tr.Insert(extra[i], -i)
	}
	var prev uint64
	n := 0
	tr.Ascend(func(k uint64, v int) bool {
		if n > 0 && k < prev {
			t.Fatalf("Ascend out of order at %d: %d < %d", n, k, prev)
		}
		prev = k
		n++
		return true
	})
	if n != 33_000 {
		t.Fatalf("Ascend visited %d, want 33000", n)
	}
}

func TestMinMax(t *testing.T) {
	keys := workload.IoT(10_000, 5)
	tr := load(t, keys, Options{Error: 50})
	mk, _, ok := tr.Min()
	if !ok || mk != keys[0] {
		t.Fatalf("Min = %d,%v, want %d", mk, ok, keys[0])
	}
	xk, _, ok := tr.Max()
	if !ok || xk != keys[len(keys)-1] {
		t.Fatalf("Max = %d,%v, want %d", xk, ok, keys[len(keys)-1])
	}
	tr.Insert(keys[len(keys)-1]+100, -1)
	if xk, _, _ = tr.Max(); xk != keys[len(keys)-1]+100 {
		t.Fatalf("Max after insert = %d", xk)
	}
}

func TestStatsAccounting(t *testing.T) {
	keys := workload.Weblogs(100_000, 6)
	small := load(t, keys, Options{Error: 10})
	big := load(t, keys, Options{Error: 1000})
	ss, bs := small.Stats(), big.Stats()
	if ss.Pages <= bs.Pages {
		t.Fatalf("smaller error should need more pages: %d vs %d", ss.Pages, bs.Pages)
	}
	if ss.IndexSize <= bs.IndexSize {
		t.Fatalf("smaller error should need a bigger index: %d vs %d", ss.IndexSize, bs.IndexSize)
	}
	if ss.Elements != 100_000 || bs.Elements != 100_000 {
		t.Fatalf("element accounting off: %d / %d", ss.Elements, bs.Elements)
	}
	if ss.DataSize != bs.DataSize {
		t.Fatalf("data size should not depend on error: %d vs %d", ss.DataSize, bs.DataSize)
	}
}

func TestLookupBreakdown(t *testing.T) {
	keys := workload.IoT(20_000, 7)
	tr := load(t, keys, Options{Error: 100})
	v, ok, treeNs, pageNs := tr.LookupBreakdown(keys[1234])
	if !ok || keys[v] != keys[1234] {
		t.Fatalf("breakdown lookup wrong: %d %v", v, ok)
	}
	if treeNs < 0 || pageNs < 0 {
		t.Fatalf("negative phase times: %d %d", treeNs, pageNs)
	}
	_, ok, _, _ = tr.LookupBreakdown(keys[len(keys)-1] + 12345)
	if ok {
		t.Fatal("breakdown hit for absent key")
	}
}

func TestFloatKeysClustered(t *testing.T) {
	keys := workload.MapsLongitude(20_000, 8)
	vals := make([]int, len(keys))
	for i := range vals {
		vals[i] = i
	}
	tr, err := BulkLoad(keys, vals, Options{Error: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(keys); i += 37 {
		v, ok := tr.Lookup(keys[i])
		if !ok || keys[v] != keys[i] {
			t.Fatalf("Lookup(%f) = %d,%v", keys[i], v, ok)
		}
	}
}

func TestZeroBufferSize(t *testing.T) {
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i * 5)
	}
	tr := load(t, keys, Options{Error: 10, BufferSize: 0})
	for i := 0; i < 500; i++ {
		tr.Insert(uint64(i*5+2), -i)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Buffered != 0 {
		t.Fatalf("zero-buffer tree has %d buffered elements", st.Buffered)
	}
	if tr.Counters().Merges != 500 {
		t.Fatalf("merges = %d, want 500 (one per insert)", tr.Counters().Merges)
	}
}

// TestQuickMatchesReferenceModel drives random bulk load + insert + delete
// + lookup traffic and compares against a sorted multiset reference.
func TestQuickMatchesReferenceModel(t *testing.T) {
	type refEntry struct {
		key uint64
	}
	_ = refEntry{}
	f := func(seed int64, bulkRaw []uint16, ops []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		bulk := make([]uint64, len(bulkRaw))
		for i, r := range bulkRaw {
			bulk[i] = uint64(r % 2048)
		}
		sort.Slice(bulk, func(i, j int) bool { return bulk[i] < bulk[j] })
		vals := make([]int, len(bulk))
		opts := Options{Error: 2 + rng.Intn(60)}
		if rng.Intn(2) == 0 {
			opts.BufferSize = rng.Intn(opts.Error)
		} else {
			opts.BufferSize = -1 // default: Error/2
		}
		tr, err := BulkLoad(bulk, vals, opts)
		if err != nil {
			return false
		}
		counts := map[uint64]int{}
		for _, k := range bulk {
			counts[k]++
		}
		for _, op := range ops {
			k := uint64(op % 2048)
			switch op % 3 {
			case 0:
				tr.Insert(k, 0)
				counts[k]++
			case 1:
				if tr.Delete(k) != (counts[k] > 0) {
					return false
				}
				if counts[k] > 0 {
					counts[k]--
				}
			case 2:
				_, ok := tr.Lookup(k)
				if ok != (counts[k] > 0) {
					return false
				}
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		if tr.Len() != total {
			return false
		}
		// Full ordered iteration matches the reference multiset.
		seen := map[uint64]int{}
		var prev uint64
		first := true
		okIter := true
		tr.Ascend(func(k uint64, v int) bool {
			if !first && k < prev {
				okIter = false
				return false
			}
			first = false
			prev = k
			seen[k]++
			return true
		})
		if !okIter {
			return false
		}
		for k, c := range counts {
			if c != 0 && seen[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRangeMatchesReference compares AscendRange against a sorted
// slice for random ranges.
func TestQuickRangeMatchesReference(t *testing.T) {
	f := func(bulkRaw []uint16, ranges []uint16) bool {
		bulk := make([]uint64, len(bulkRaw))
		for i, r := range bulkRaw {
			bulk[i] = uint64(r % 1024)
		}
		sort.Slice(bulk, func(i, j int) bool { return bulk[i] < bulk[j] })
		vals := make([]int, len(bulk))
		tr, err := BulkLoad(bulk, vals, Options{Error: 8})
		if err != nil {
			return false
		}
		for i := 0; i+1 < len(ranges); i += 2 {
			lo := uint64(ranges[i] % 1024)
			hi := uint64(ranges[i+1] % 1024)
			if hi < lo {
				lo, hi = hi, lo
			}
			want := 0
			for _, k := range bulk {
				if k >= lo && k <= hi {
					want++
				}
			}
			got := 0
			bad := false
			tr.AscendRange(lo, hi, func(k uint64, v int) bool {
				if k < lo || k > hi {
					bad = true
					return false
				}
				got++
				return true
			})
			if bad || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestNaNKeysRejected(t *testing.T) {
	nan := math.NaN()
	if _, err := BulkLoad([]float64{1, nan, 3}, []int{0, 0, 0}, Options{Error: 4, BufferSize: 2}); err == nil {
		t.Fatal("BulkLoad accepted a NaN key")
	}
	tr, err := BulkLoad([]float64{1, 2, 3}, []int{0, 0, 0}, Options{Error: 4, BufferSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Insert of NaN did not panic")
		}
	}()
	tr.Insert(nan, 0)
}

func TestDescendRangeMatchesReversedAscend(t *testing.T) {
	keys := workload.IoT(20_000, 61)
	tr := load(t, keys, Options{Error: 32, BufferSize: 16})
	// Mix in buffered inserts and deletes so both paths are exercised.
	rng := rand.New(rand.NewSource(62))
	for i := 0; i < 3000; i++ {
		k := keys[rng.Intn(len(keys))]
		if i%3 == 0 {
			tr.Delete(k)
		} else {
			tr.Insert(k+1, -i)
		}
	}
	for trial := 0; trial < 30; trial++ {
		i := rng.Intn(len(keys) - 1000)
		lo, hi := keys[i], keys[i+999]
		var asc, desc []uint64
		tr.AscendRange(lo, hi, func(k uint64, v int) bool {
			asc = append(asc, k)
			return true
		})
		tr.DescendRange(hi, lo, func(k uint64, v int) bool {
			desc = append(desc, k)
			return true
		})
		if len(asc) != len(desc) {
			t.Fatalf("trial %d: asc %d keys, desc %d", trial, len(asc), len(desc))
		}
		for j := range asc {
			if asc[j] != desc[len(desc)-1-j] {
				t.Fatalf("trial %d: order mismatch at %d", trial, j)
			}
		}
	}
}

func TestDescendRangeEdges(t *testing.T) {
	keys := []uint64{10, 20, 20, 20, 30, 40}
	tr := load(t, keys, Options{Error: 4, BufferSize: 2})
	var got []uint64
	tr.DescendRange(25, 15, func(k uint64, v int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 3 || got[0] != 20 {
		t.Fatalf("DescendRange(25,15) = %v", got)
	}
	// Early stop.
	n := 0
	tr.DescendRange(40, 10, func(k uint64, v int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
	// Inverted and empty.
	n = 0
	tr.DescendRange(10, 40, func(k uint64, v int) bool { n++; return true })
	if n != 0 {
		t.Fatal("inverted range visited elements")
	}
	tr.DescendRange(5, 1, func(k uint64, v int) bool { n++; return true })
	if n != 0 {
		t.Fatal("below-min range visited elements")
	}
	empty := load(t, nil, Options{})
	empty.DescendRange(10, 1, func(k uint64, v int) bool { n++; return true })
	if n != 0 {
		t.Fatal("empty tree visited elements")
	}
}
