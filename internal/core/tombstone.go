package core

import "fitingtree/internal/num"

// This file defines value-aware tombstones. The original delta protocol
// knew a single tombstone shape — "delete the first N live matches of a
// key in scan order" (MergeOp.Dels) — which makes the victim among
// distinct-valued duplicates depend on where flush boundaries fell when
// the delete was recorded. Value tombstones name their victim: each one
// deletes the first live match carrying an equal value. An ordered list
// mixing both shapes composes exactly across layers (concatenation of
// lower list then upper list is the composed list, once upper entries
// that land on a lower add are cancelled against that add — see
// CompactOps), which is what lets the frozen-layer ladder compact
// value-aware deletes without materializing the tree beneath.

// Tomb is one ordered tombstone of a value-aware delete. An Any tombstone
// deletes the first live match of its key in scan order, like one unit of
// MergeOp.Dels; a value tombstone (Any false) deletes the first live
// match whose value equals Val under Go equality. Value tombstones
// require a comparable value type; applying one to a non-comparable V
// panics, so facades only record them when V is comparable.
type Tomb[V any] struct {
	Any bool
	Val V
}

// valueEq compares two values under Go's == on their dynamic type. It
// panics for non-comparable V; every code path that can reach it is
// gated on valuesComparable.
func valueEq[V any](a, b V) bool { return any(a) == any(b) }

// TombSet tracks the unconsumed tombstones of one delta entry during a
// streaming application over a key's live matches in scan order. Build
// one with NewTombSet and feed it each match via Consume; the facade's
// read overlays and the COW merge share this logic so every path applies
// identical semantics.
//
// The streaming rule — each match is consumed by the first unconsumed
// list entry that accepts it — produces exactly the sequential semantics
// (entry 1 deletes the first match it accepts among all matches, entry 2
// the first among the remainder, and so on): an exchange argument shows
// any match consumed under one rule is consumed under the other, because
// an Any entry accepts everything an earlier-positioned value entry
// rejects.
type TombSet[V any] struct {
	rem   int       // count form: ANY tombstones left
	tombs []Tomb[V] // list form (nil in count form)
	used  []bool    // consumed flags, parallel to tombs
}

// newTombSets builds per-op application state. Ops with a Tombs list use
// list matching; ops with only Dels use the counter fast path.
func newTombSets[K num.Key, V any](ops []MergeOp[K, V]) []TombSet[V] {
	ts := make([]TombSet[V], len(ops))
	for i, op := range ops {
		if len(op.Tombs) > 0 {
			ts[i] = TombSet[V]{tombs: op.Tombs, used: make([]bool, len(op.Tombs))}
		} else {
			ts[i] = TombSet[V]{rem: op.Dels}
		}
	}
	return ts
}

// NewTombSet builds application state for one entry's tombstones: a
// counted form (dels anonymous tombstones) when tombs is nil, the
// ordered list form otherwise.
func NewTombSet[V any](dels int, tombs []Tomb[V]) TombSet[V] {
	if len(tombs) > 0 {
		return TombSet[V]{tombs: tombs, used: make([]bool, len(tombs))}
	}
	return TombSet[V]{rem: dels}
}

// Consume reports whether the next live match (carrying value v) is
// deleted by this entry's tombstones, consuming the accepting tombstone.
func (s *TombSet[V]) Consume(v V) bool {
	if s.tombs == nil {
		if s.rem > 0 {
			s.rem--
			return true
		}
		return false
	}
	for i, t := range s.tombs {
		if !s.used[i] && (t.Any || valueEq(t.Val, v)) {
			s.used[i] = true
			return true
		}
	}
	return false
}

// tombCount returns the total number of tombstones an op carries in
// either representation.
func tombCount[K num.Key, V any](op MergeOp[K, V]) int {
	if len(op.Tombs) > 0 {
		return len(op.Tombs)
	}
	return op.Dels
}

// applyTombs filters a key's live matches (vals, scan order) through a
// tombstone list under the streaming rule, appending survivors to out and
// returning it with the number of matches consumed.
func applyTombs[V any](out []V, vals []V, s *TombSet[V]) ([]V, int) {
	deleted := 0
	for _, v := range vals {
		if s.Consume(v) {
			deleted++
			continue
		}
		out = append(out, v)
	}
	return out, deleted
}
