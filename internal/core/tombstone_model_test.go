package core

import (
	"math/rand"
	"sort"
	"testing"
)

// genTombOps builds a random valid delta layer carrying value tombstones
// against the given content stream. Validity is the write path's
// invariant: every tombstone, applied sequentially, has a live victim in
// the stream — an Any entry takes the first remaining match, a value
// entry the first remaining match holding its value. Roughly half the
// pure-anonymous entries are emitted in the counted (Dels) form so both
// representations mix across layers.
func genTombOps(rng *rand.Rand, stream []pair, maxKey uint64) []MergeOp[uint64, uint64] {
	opKeys := map[uint64]bool{}
	var ops []MergeOp[uint64, uint64]
	for len(ops) < 1+rng.Intn(30) {
		ok := uint64(rng.Intn(int(maxKey) + 10))
		if opKeys[ok] {
			continue
		}
		opKeys[ok] = true
		op := MergeOp[uint64, uint64]{Key: ok}
		for a := rng.Intn(3); a > 0; a-- {
			op.Adds = append(op.Adds, 3_000_000+rng.Uint64()%1_000_000)
		}
		var live []uint64
		for _, p := range stream {
			if p.k == ok {
				live = append(live, p.v)
			}
		}
		nDel := 0
		if len(live) > 0 && rng.Intn(2) == 0 {
			nDel = 1 + rng.Intn(len(live))
		}
		anyOnly := true
		for d := 0; d < nDel; d++ {
			if rng.Intn(2) == 0 { // anonymous: victim is the first remaining
				op.Tombs = append(op.Tombs, Tomb[uint64]{Any: true})
				live = live[1:]
				continue
			}
			// value-naming: victim is the first remaining equal-valued match
			anyOnly = false
			vi := rng.Intn(len(live))
			op.Tombs = append(op.Tombs, Tomb[uint64]{Val: live[vi]})
			for j, v := range live {
				if v == live[vi] {
					live = append(live[:j:j], live[j+1:]...)
					break
				}
			}
		}
		if anyOnly && rng.Intn(2) == 0 {
			op.Dels, op.Tombs = len(op.Tombs), nil
		}
		if len(op.Adds) == 0 && op.Dels == 0 && len(op.Tombs) == 0 {
			op.Adds = []uint64{999}
		}
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].Key < ops[j].Key })
	return ops
}

// applyTombOpsModel is the reference semantics of one layer: each op's
// tombstones consume the stream's live matches for its key under the
// streaming rule, then the op's adds follow the key's last survivor in
// key order.
func applyTombOpsModel(base []pair, ops []MergeOp[uint64, uint64]) []pair {
	sets := map[uint64]*TombSet[uint64]{}
	adds := map[uint64][]uint64{}
	var keys []uint64
	for _, op := range ops {
		s := NewTombSet(op.Dels, op.Tombs)
		sets[op.Key] = &s
		adds[op.Key] = op.Adds
		keys = append(keys, op.Key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	var out []pair
	for _, p := range base {
		if s, ok := sets[p.k]; ok && s.Consume(p.v) {
			continue
		}
		out = append(out, p)
	}

	var merged []pair
	ki, i := 0, 0
	for i < len(out) {
		p := out[i]
		for ki < len(keys) && keys[ki] < p.k {
			for _, v := range adds[keys[ki]] {
				merged = append(merged, pair{keys[ki], v})
			}
			ki++
		}
		if ki < len(keys) && keys[ki] == p.k {
			for i < len(out) && out[i].k == p.k {
				merged = append(merged, out[i])
				i++
			}
			for _, v := range adds[keys[ki]] {
				merged = append(merged, pair{keys[ki], v})
			}
			ki++
			continue
		}
		merged = append(merged, p)
		i++
	}
	for ; ki < len(keys); ki++ {
		for _, v := range adds[keys[ki]] {
			merged = append(merged, pair{keys[ki], v})
		}
	}
	return merged
}

// TestValueTombstonesRandomized cross-checks every fold path on layers
// mixing counted, anonymous-list, and value tombstones: the sequential
// MergeCOW2/MergeCOWN folds and the CompactOps-then-MergeCOW fold must
// all publish exactly the content the reference model derives, for layers
// generated under the write path's relativity rule (each layer's
// tombstones have live victims in the view beneath it).
func TestValueTombstonesRandomized(t *testing.T) {
	for _, rk := range routerKinds {
		t.Run(rk.name, func(t *testing.T) { testValueTombstonesRandomized(t, rk.kind) })
	}
}

func testValueTombstonesRandomized(t *testing.T, kind RouterKind) {
	rng := rand.New(rand.NewSource(1291))
	for trial := 0; trial < 30; trial++ {
		n := 200 + rng.Intn(1200)
		keys := make([]uint64, n)
		k := uint64(0)
		for i := range keys {
			if rng.Intn(3) > 0 {
				k += uint64(rng.Intn(4))
			}
			keys[i] = k
		}
		base := buildCOWBase(t, keys, Options{Error: 8 + rng.Intn(24), BufferSize: 4, Router: kind})
		before := contents(base)

		lower := genTombOps(rng, before, k)
		middle := applyTombOpsModel(before, lower)
		upper := genTombOps(rng, middle, k)
		want := applyTombOpsModel(middle, upper)

		assertContents := func(label string, got []pair) {
			t.Helper()
			if len(got) != len(want) {
				t.Fatalf("trial %d: %s fold %d elements, want %d", trial, label, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: %s element %d = %v, want %v", trial, label, i, got[i], want[i])
				}
			}
		}
		assertContents("MergeCOW2", contents(base.MergeCOW2(lower, upper)))
		assertContents("MergeCOWN", contents(base.MergeCOWN(lower, upper)))
		compacted := CompactOps(lower, upper, base.Each)
		assertContents("compacted", contents(base.MergeCOW(compacted)))

		// Depth 3: a third value-tombstone layer over the fold, applied
		// both sequentially and over the compacted bottom pair.
		top := genTombOps(rng, want, k)
		want3 := applyTombOpsModel(want, top)
		got3 := contents(base.MergeCOWN(lower, upper, top))
		gotC := contents(base.MergeCOWN(compacted, top))
		if len(got3) != len(want3) || len(gotC) != len(want3) {
			t.Fatalf("trial %d: depth-3 folds %d/%d elements, want %d", trial, len(got3), len(gotC), len(want3))
		}
		for i := range want3 {
			if got3[i] != want3[i] || gotC[i] != want3[i] {
				t.Fatalf("trial %d: depth-3 element %d = %v/%v, want %v", trial, i, got3[i], gotC[i], want3[i])
			}
		}
	}
}

// TestTreeDeleteValueModel drives the plain tree's DeleteValue and
// DeleteWhere against a per-key multiset model under random inserts,
// buffer merges, and page erosion. DeleteValue names its victim by value,
// so the multiset evolution is exactly deterministic; anonymous Delete is
// only issued when a key's live values are all equal, keeping the model
// exact there too.
func TestTreeDeleteValueModel(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	tr, err := BulkLoad[uint64, uint64](nil, nil, Options{Error: 16, BufferSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	model := map[uint64]map[uint64]int{} // key -> value -> count
	total := 0
	for op := 0; op < 20_000; op++ {
		k := uint64(rng.Intn(200))
		switch r := rng.Intn(10); {
		case r < 5: // insert, heavy value duplication
			v := uint64(rng.Intn(8))
			tr.Insert(k, v)
			if model[k] == nil {
				model[k] = map[uint64]int{}
			}
			model[k][v]++
			total++
		case r < 8: // value-addressed delete
			v := uint64(rng.Intn(8))
			want := model[k][v] > 0
			if got := tr.DeleteValue(k, v); got != want {
				t.Fatalf("op %d: DeleteValue(%d,%d) = %v, model %v", op, k, v, got, want)
			}
			if want {
				model[k][v]--
				total--
			}
		case r < 9: // predicate delete naming a unique value class
			v := uint64(rng.Intn(8))
			want := model[k][v] > 0
			if got := tr.DeleteWhere(k, func(w uint64) bool { return w == v }); got != want {
				t.Fatalf("op %d: DeleteWhere(%d,==%d) = %v, model %v", op, k, v, got, want)
			}
			if want {
				model[k][v]--
				total--
			}
		default: // anonymous delete, only when the victim value is forced
			distinct, live := 0, 0
			for _, c := range model[k] {
				if c > 0 {
					distinct++
					live += c
				}
			}
			if distinct > 1 {
				continue
			}
			if got := tr.Delete(k); got != (live > 0) {
				t.Fatalf("op %d: Delete(%d) = %v, model live %d", op, k, got, live)
			}
			if live > 0 {
				for v, c := range model[k] {
					if c > 0 {
						model[k][v]--
					}
				}
				total--
			}
		}
		if op%4_000 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if tr.Len() != total {
		t.Fatalf("Len = %d, model %d", tr.Len(), total)
	}
	for k, vals := range model {
		got := map[uint64]int{}
		tr.Each(k, func(v uint64) bool {
			got[v]++
			return true
		})
		for v, c := range vals {
			if got[v] != c {
				t.Fatalf("key %d value %d: count %d, model %d", k, v, got[v], c)
			}
		}
		for v, c := range got {
			if vals[v] != c {
				t.Fatalf("key %d value %d: count %d, model %d", k, v, c, vals[v])
			}
		}
	}
}
