package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"fitingtree/internal/workload"
)

// pair is one element of a reference content stream.
type pair struct {
	k uint64
	v uint64
}

// contents drains a tree's Ascend stream.
func contents(t *Tree[uint64, uint64]) []pair {
	var out []pair
	t.Ascend(func(k, v uint64) bool {
		out = append(out, pair{k, v})
		return true
	})
	return out
}

// applyOpsModel applies MergeOp semantics to a reference stream: per key,
// drop the first Dels matches in stream order, then place the adds after
// the surviving matches of that key.
func applyOpsModel(base []pair, ops []MergeOp[uint64, uint64]) []pair {
	rem := map[uint64]int{}
	adds := map[uint64][]uint64{}
	var keys []uint64
	for _, op := range ops {
		rem[op.Key] = op.Dels
		adds[op.Key] = op.Adds
		keys = append(keys, op.Key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// Tombstone pass: drop the first rem[k] matches in stream order.
	var out []pair
	for _, p := range base {
		if rem[p.k] > 0 {
			rem[p.k]--
			continue
		}
		out = append(out, p)
	}

	// Interleave adds: for each op key, after every base survivor of it.
	var merged []pair
	ki, i := 0, 0
	for i < len(out) {
		p := out[i]
		for ki < len(keys) && keys[ki] < p.k {
			for _, v := range adds[keys[ki]] {
				merged = append(merged, pair{keys[ki], v})
			}
			ki++
		}
		if ki < len(keys) && keys[ki] == p.k {
			for i < len(out) && out[i].k == p.k {
				merged = append(merged, out[i])
				i++
			}
			for _, v := range adds[keys[ki]] {
				merged = append(merged, pair{keys[ki], v})
			}
			ki++
			continue
		}
		merged = append(merged, p)
		i++
	}
	for ; ki < len(keys); ki++ {
		for _, v := range adds[keys[ki]] {
			merged = append(merged, pair{keys[ki], v})
		}
	}
	return merged
}

func buildCOWBase(t *testing.T, keys []uint64, opts Options) *Tree[uint64, uint64] {
	t.Helper()
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i) // distinct values identify duplicates
	}
	tr, err := BulkLoad(keys, vals, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// routerKinds names both router kinds for the test matrix: the COW/merge
// model must hold under the persistent B+ tree router and the
// rebuild-on-publication implicit router alike.
var routerKinds = []struct {
	name string
	kind RouterKind
}{
	{"btree", RouterBTree},
	{"implicit", RouterImplicit},
}

func TestMergeCOWMatchesModel(t *testing.T) {
	for _, rk := range routerKinds {
		t.Run(rk.name, func(t *testing.T) { testMergeCOWMatchesModel(t, rk.kind) })
	}
}

func testMergeCOWMatchesModel(t *testing.T, kind RouterKind) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		n := 200 + rng.Intn(3000)
		keys := make([]uint64, n)
		k := uint64(0)
		run := 0
		for i := range keys {
			if run > 0 {
				run-- // long duplicate runs that span page boundaries
			} else {
				if rng.Intn(3) > 0 {
					k += uint64(rng.Intn(5))
				}
				if rng.Intn(20) == 0 {
					run = 10 + rng.Intn(60)
				}
			}
			keys[i] = k
		}
		opts := Options{Error: 8 + rng.Intn(24), BufferSize: 4, Router: kind}
		base := buildCOWBase(t, keys, opts)
		before := contents(base)

		// Random ops over present and absent keys.
		opKeys := map[uint64]bool{}
		var ops []MergeOp[uint64, uint64]
		for len(ops) < 1+rng.Intn(60) {
			ok := uint64(rng.Intn(int(k) + 10))
			if opKeys[ok] {
				continue
			}
			opKeys[ok] = true
			op := MergeOp[uint64, uint64]{Key: ok}
			for a := rng.Intn(3); a > 0; a-- {
				op.Adds = append(op.Adds, 1_000_000+uint64(len(ops)*10+a))
			}
			// Tombstones bounded by the number of live matches.
			live := 0
			for _, p := range before {
				if p.k == ok {
					live++
				}
			}
			if live > 0 && rng.Intn(2) == 0 {
				op.Dels = 1 + rng.Intn(live)
			}
			if len(op.Adds) == 0 && op.Dels == 0 {
				op.Adds = []uint64{999}
			}
			ops = append(ops, op)
		}
		sort.Slice(ops, func(i, j int) bool { return ops[i].Key < ops[j].Key })

		merged := base.MergeCOW(ops)
		if err := merged.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: merged invariants: %v", trial, err)
		}
		if err := base.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: base invariants after COW: %v", trial, err)
		}
		// The receiver is untouched.
		after := contents(base)
		if len(after) != len(before) {
			t.Fatalf("trial %d: base content changed: %d -> %d", trial, len(before), len(after))
		}
		for i := range after {
			if after[i] != before[i] {
				t.Fatalf("trial %d: base element %d changed: %v -> %v", trial, i, before[i], after[i])
			}
		}

		want := applyOpsModel(before, ops)
		got := contents(merged)
		if merged.Len() != len(want) {
			t.Fatalf("trial %d: merged Len = %d, want %d", trial, merged.Len(), len(want))
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged stream %d elements, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: element %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestMergeCOWSharesPages pins the copy-on-write contract: pages outside
// the delta's dirty intervals are pointer-identical (same page identity)
// between the old and new tree.
func TestMergeCOWSharesPages(t *testing.T) {
	keys := make([]uint64, 100_000)
	rng := rand.New(rand.NewSource(5))
	k := uint64(0)
	for i := range keys {
		// Irregular gaps so segmentation produces a deep page chain.
		k += uint64(1 + rng.Intn(13))
		keys[i] = k
	}
	base := buildCOWBase(t, keys, Options{Error: 8, BufferSize: 2})
	pages := len(base.PageIDs())
	if pages < 100 {
		t.Fatalf("want a deep chain, got %d pages", pages)
	}

	// A tight cluster of writes touches a handful of pages.
	ops := []MergeOp[uint64, uint64]{
		{Key: keys[50_000], Adds: []uint64{1}},
		{Key: keys[50_002], Adds: []uint64{2}},
		{Key: keys[50_004], Dels: 1},
	}
	merged := base.MergeCOW(ops)
	if err := merged.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	oldIDs := map[uint64]bool{}
	for _, id := range base.PageIDs() {
		oldIDs[id] = true
	}
	shared, fresh := 0, 0
	for _, id := range merged.PageIDs() {
		if oldIDs[id] {
			shared++
		} else {
			fresh++
		}
	}
	if fresh == 0 {
		t.Fatal("no pages were rebuilt")
	}
	if fresh > 8 {
		t.Fatalf("a 3-key delta rebuilt %d pages (shared %d of %d)", fresh, shared, pages)
	}
	if shared < pages-8 {
		t.Fatalf("only %d of %d pages shared", shared, pages)
	}
}

// TestMergeCOWTombstoneScanOrder pins "first N matches in scan order"
// across a duplicate run spanning multiple pages.
func TestMergeCOWTombstoneScanOrder(t *testing.T) {
	// Error 2 forces tiny pages, so 40 copies of key 100 span many pages.
	var keys []uint64
	for i := 0; i < 30; i++ {
		keys = append(keys, uint64(i))
	}
	for i := 0; i < 40; i++ {
		keys = append(keys, 100)
	}
	for i := 0; i < 30; i++ {
		keys = append(keys, uint64(200+i))
	}
	base := buildCOWBase(t, keys, Options{Error: 2, BufferSize: 1})

	var orderBefore []uint64
	base.Each(100, func(v uint64) bool {
		orderBefore = append(orderBefore, v)
		return true
	})
	if len(orderBefore) != 40 {
		t.Fatalf("expected 40 duplicates, got %d", len(orderBefore))
	}

	merged := base.MergeCOW([]MergeOp[uint64, uint64]{{Key: 100, Dels: 15}})
	if err := merged.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var orderAfter []uint64
	merged.Each(100, func(v uint64) bool {
		orderAfter = append(orderAfter, v)
		return true
	})
	if len(orderAfter) != 25 {
		t.Fatalf("expected 25 survivors, got %d", len(orderAfter))
	}
	for i, v := range orderAfter {
		if v != orderBefore[15+i] {
			t.Fatalf("survivor %d = %d, want %d (first-15-in-scan-order must die)", i, v, orderBefore[15+i])
		}
	}
}

// TestMergeCOWAddAfterMultiPageRun pins the add-placement rule when the
// key's duplicates span several pages: an insert-only op's adds must sort
// after every base match of the key, so the dirty region extends through
// the whole equal-start run.
func TestMergeCOWAddAfterMultiPageRun(t *testing.T) {
	var keys []uint64
	for i := 0; i < 10; i++ {
		keys = append(keys, uint64(i))
	}
	for i := 0; i < 40; i++ {
		keys = append(keys, 100) // spans many pages at Error 2
	}
	for i := 0; i < 10; i++ {
		keys = append(keys, uint64(200+i))
	}
	base := buildCOWBase(t, keys, Options{Error: 2, BufferSize: 1})

	merged := base.MergeCOW([]MergeOp[uint64, uint64]{{Key: 100, Adds: []uint64{9999}}})
	if err := merged.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var order []uint64
	merged.Each(100, func(v uint64) bool {
		order = append(order, v)
		return true
	})
	if len(order) != 41 {
		t.Fatalf("%d matches, want 41", len(order))
	}
	if order[40] != 9999 {
		t.Fatalf("add not last: matches end %v", order[35:])
	}
}

func TestMergeCOWEdgeCases(t *testing.T) {
	// Empty receiver: pure bootstrap from adds.
	empty, err := BulkLoad[uint64, uint64](nil, nil, Options{Error: 16, BufferSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	boot := empty.MergeCOW([]MergeOp[uint64, uint64]{
		{Key: 5, Adds: []uint64{50}},
		{Key: 9, Adds: []uint64{90, 91}},
	})
	if boot.Len() != 3 {
		t.Fatalf("bootstrap Len = %d", boot.Len())
	}
	if err := boot.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if v, ok := boot.Lookup(9); !ok || v != 91 {
		// Lookup may return any duplicate; both adds are acceptable.
		if !ok || v != 90 {
			t.Fatalf("bootstrap Lookup(9) = %d,%v", v, ok)
		}
	}

	// No ops: a no-op merge must not clone anything — the receiver itself
	// comes back, pointer-identical (same for an empty non-nil op list).
	keys := make([]uint64, 10_000)
	for i := range keys {
		keys[i] = uint64(i * 3)
	}
	base := buildCOWBase(t, keys, Options{Error: 32, BufferSize: 8})
	if clone := base.MergeCOW(nil); clone != base {
		t.Fatal("MergeCOW(nil) did not return the receiver")
	}
	if clone := base.MergeCOW([]MergeOp[uint64, uint64]{}); clone != base {
		t.Fatal("MergeCOW(empty) did not return the receiver")
	}

	// Delete everything in one region.
	small := buildCOWBase(t, []uint64{1, 1, 1, 1}, Options{Error: 8, BufferSize: 2})
	gone := small.MergeCOW([]MergeOp[uint64, uint64]{{Key: 1, Dels: 4}})
	if gone.Len() != 0 {
		t.Fatalf("Len after deleting all = %d", gone.Len())
	}
	if err := gone.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, ok := gone.Lookup(1); ok {
		t.Fatal("lookup hit on emptied tree")
	}

	// Ops keys below the minimum and above the maximum.
	ends := base.MergeCOW([]MergeOp[uint64, uint64]{
		{Key: 0, Adds: []uint64{1000}, Dels: 1}, // key 0 exists (i*3)
		{Key: 999_999, Adds: []uint64{2000}},
	})
	if err := ends.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if v, ok := ends.Lookup(999_999); !ok || v != 2000 {
		t.Fatalf("Lookup(max) = %d,%v", v, ok)
	}
	// Two adds, one tombstone: net +1.
	if ends.Len() != base.Len()+1 {
		t.Fatalf("Len = %d, want %d", ends.Len(), base.Len()+1)
	}
}

func TestMergeCOWRejectsBadOps(t *testing.T) {
	base := buildCOWBase(t, []uint64{1, 2, 3}, Options{Error: 8})
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("unsorted", func() {
		base.MergeCOW([]MergeOp[uint64, uint64]{{Key: 2}, {Key: 1}})
	})
	mustPanic("duplicate", func() {
		base.MergeCOW([]MergeOp[uint64, uint64]{{Key: 2}, {Key: 2}})
	})
}

// buildBenchTree builds an n-element tree over the weblogs workload (the
// paper's primary dataset: piecewise-linear with many segment breaks)
// outside the timed section.
func buildBenchTree(b *testing.B, n int) *Tree[uint64, uint64] {
	b.Helper()
	keys := workload.Weblogs(n, 9)
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i)
	}
	tr, err := BulkLoad(keys, vals, Options{Error: 32, BufferSize: 16})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// benchOps builds a delta of `delta` distinct insert keys.
func benchOps(tr *Tree[uint64, uint64], delta int) []MergeOp[uint64, uint64] {
	maxKey, _, _ := tr.Max()
	rng := rand.New(rand.NewSource(10))
	seen := map[uint64]bool{}
	var ops []MergeOp[uint64, uint64]
	for len(ops) < delta {
		k := uint64(rng.Int63n(int64(maxKey)))
		if seen[k] {
			continue
		}
		seen[k] = true
		ops = append(ops, MergeOp[uint64, uint64]{Key: k, Adds: []uint64{k}})
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].Key < ops[j].Key })
	return ops
}

// TestMergeCOW2Layering pins the two-delta entry point against the
// layered reference model: applying the second op list to the model
// stream *after* the first (so its tombstone counts address surviving
// base matches, then the first layer's adds, in scan order) must match
// MergeCOW2's physical fold — the contract the Optimistic facade's
// frozen/active delta pair relies on.
func TestMergeCOW2Layering(t *testing.T) {
	for _, rk := range routerKinds {
		t.Run(rk.name, func(t *testing.T) { testMergeCOW2Layering(t, rk.kind) })
	}
}

func testMergeCOW2Layering(t *testing.T, kind RouterKind) {
	rng := rand.New(rand.NewSource(137))
	genOps := func(stream []pair, maxKey uint64) []MergeOp[uint64, uint64] {
		opKeys := map[uint64]bool{}
		var ops []MergeOp[uint64, uint64]
		for len(ops) < 1+rng.Intn(40) {
			ok := uint64(rng.Intn(int(maxKey) + 10))
			if opKeys[ok] {
				continue
			}
			opKeys[ok] = true
			op := MergeOp[uint64, uint64]{Key: ok}
			for a := rng.Intn(3); a > 0; a-- {
				op.Adds = append(op.Adds, 2_000_000+uint64(rng.Intn(1_000_000)))
			}
			// Tombstones bounded by the layer's own view of live matches.
			live := 0
			for _, p := range stream {
				if p.k == ok {
					live++
				}
			}
			if live > 0 && rng.Intn(2) == 0 {
				op.Dels = 1 + rng.Intn(live)
			}
			if len(op.Adds) == 0 && op.Dels == 0 {
				op.Adds = []uint64{999}
			}
			ops = append(ops, op)
		}
		sort.Slice(ops, func(i, j int) bool { return ops[i].Key < ops[j].Key })
		return ops
	}
	for trial := 0; trial < 30; trial++ {
		n := 200 + rng.Intn(2000)
		keys := make([]uint64, n)
		k := uint64(0)
		for i := range keys {
			if rng.Intn(3) > 0 {
				k += uint64(rng.Intn(4))
			}
			keys[i] = k
		}
		base := buildCOWBase(t, keys, Options{Error: 8 + rng.Intn(24), BufferSize: 4, Router: kind})
		before := contents(base)

		first := genOps(before, k)
		middle := applyOpsModel(before, first)
		// The second layer's tombstones are generated against the
		// intermediate stream, exactly like an active delta whose counts
		// are relative to tree ⊕ frozen.
		second := genOps(middle, k)
		want := applyOpsModel(middle, second)

		merged := base.MergeCOW2(first, second)
		if err := merged.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: merged invariants: %v", trial, err)
		}
		got := contents(merged)
		if merged.Len() != len(want) || len(got) != len(want) {
			t.Fatalf("trial %d: merged %d elements (Len %d), want %d", trial, len(got), merged.Len(), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: element %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
		// The receiver is untouched.
		after := contents(base)
		for i := range after {
			if after[i] != before[i] {
				t.Fatalf("trial %d: base element %d changed: %v -> %v", trial, i, before[i], after[i])
			}
		}
		// Degenerate layers: both empty returns the receiver itself; one
		// empty layer reduces to a plain MergeCOW of the other.
		if base.MergeCOW2(nil, nil) != base {
			t.Fatalf("trial %d: empty fold did not return the receiver", trial)
		}
		oneWant := applyOpsModel(before, first)
		oneGot := contents(base.MergeCOW2(first, nil))
		if len(oneGot) != len(oneWant) {
			t.Fatalf("trial %d: first-only fold %d elements, want %d", trial, len(oneGot), len(oneWant))
		}
		for i := range oneGot {
			if oneGot[i] != oneWant[i] {
				t.Fatalf("trial %d: first-only element %d = %v, want %v", trial, i, oneGot[i], oneWant[i])
			}
		}
	}
}

// benchTreeCached builds each base tree at most once per benchmark run,
// and only when a matching sub-benchmark actually executes, so a filtered
// smoke run (e.g. CI's n=100000-only pass) never pays for the other sizes.
var benchTreeCache = map[int]*Tree[uint64, uint64]{}

func benchTreeCached(b *testing.B, n int) *Tree[uint64, uint64] {
	b.Helper()
	if tr, ok := benchTreeCache[n]; ok {
		return tr
	}
	tr := buildBenchTree(b, n)
	benchTreeCache[n] = tr
	return tr
}

// BenchmarkFlushCOW measures the page-granular copy-on-write merge: cost
// should track the delta size (pages touched), not the tree size.
func BenchmarkFlushCOW(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		for _, delta := range []int{64, 1024, 8192} {
			b.Run(fmt.Sprintf("n=%d/delta=%d", n, delta), func(b *testing.B) {
				tr := benchTreeCached(b, n)
				ops := benchOps(tr, delta)
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if tr.MergeCOW(ops).Len() != n+delta {
						b.Fatal("bad merge")
					}
				}
			})
		}
	}
}

// BenchmarkFlushRebuild measures the pre-COW flush: drain the whole state
// and bulk-load a fresh tree, O(n) regardless of delta size.
func BenchmarkFlushRebuild(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		for _, delta := range []int{64, 1024, 8192} {
			b.Run(fmt.Sprintf("n=%d/delta=%d", n, delta), func(b *testing.B) {
				tr := benchTreeCached(b, n)
				ops := benchOps(tr, delta)
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					keys := make([]uint64, 0, n+delta)
					vals := make([]uint64, 0, n+delta)
					oi := 0
					tr.Ascend(func(k, v uint64) bool {
						for oi < len(ops) && ops[oi].Key < k {
							keys = append(keys, ops[oi].Key)
							vals = append(vals, ops[oi].Adds[0])
							oi++
						}
						keys = append(keys, k)
						vals = append(vals, v)
						return true
					})
					for ; oi < len(ops); oi++ {
						keys = append(keys, ops[oi].Key)
						vals = append(vals, ops[oi].Adds[0])
					}
					nt, err := BulkLoad(keys, vals, tr.Options())
					if err != nil || nt.Len() != n+delta {
						b.Fatal("bad rebuild")
					}
				}
			})
		}
	}
}
