package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fitingtree/internal/segment"
	"fitingtree/internal/workload"
)

func TestImplicitRouterFloorMatchesBTree(t *testing.T) {
	keys := workload.Weblogs(40_000, 31)
	vals := make([]int, len(keys))
	bt, err := BulkLoad(keys, vals, Options{Error: 64, Router: RouterBTree})
	if err != nil {
		t.Fatal(err)
	}
	im, err := BulkLoad(keys, vals, Options{Error: 64, Router: RouterImplicit})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	maxKey := keys[len(keys)-1] + 1000
	for i := 0; i < 100_000; i++ {
		k := uint64(rng.Int63n(int64(maxKey)))
		_, okB := bt.Lookup(k)
		_, okI := im.Lookup(k)
		if okB != okI {
			t.Fatalf("routers disagree on %d: btree=%v implicit=%v", k, okB, okI)
		}
	}
	if err := im.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestImplicitRouterMutations(t *testing.T) {
	keys := make([]uint64, 3000)
	for i := range keys {
		keys[i] = uint64(i * 7)
	}
	vals := make([]int, len(keys))
	tr, err := BulkLoad(keys, vals, Options{Error: 16, BufferSize: 8, Router: RouterImplicit})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	present := map[uint64]int{}
	for _, k := range keys {
		present[k]++
	}
	for i := 0; i < 15_000; i++ {
		k := uint64(rng.Intn(25_000))
		switch i % 3 {
		case 0:
			tr.Insert(k, i)
			present[k]++
		case 1:
			if tr.Delete(k) != (present[k] > 0) {
				t.Fatalf("delete mismatch at %d", k)
			}
			if present[k] > 0 {
				present[k]--
			}
		default:
			if _, ok := tr.Lookup(k); ok != (present[k] > 0) {
				t.Fatalf("lookup mismatch at %d", k)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestImplicitRouterEmptyAndBootstrap(t *testing.T) {
	tr, err := BulkLoad[uint64, int](nil, nil, Options{Error: 8, BufferSize: 4, Router: RouterImplicit})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Lookup(1); ok {
		t.Fatal("hit on empty implicit-router tree")
	}
	tr.Insert(5, 50)
	tr.Insert(3, 30)
	tr.Insert(9, 90)
	for _, k := range []uint64{3, 5, 9} {
		if v, ok := tr.Lookup(k); !ok || v != int(k)*10 {
			t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestImplicitRouterStats(t *testing.T) {
	keys := workload.IoT(20_000, 34)
	vals := make([]int, len(keys))
	tr, err := BulkLoad(keys, vals, Options{Error: 50, Router: RouterImplicit})
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Pages < 1 {
		t.Fatalf("pages = %d", st.Pages)
	}
	// The implicit router stores exactly 16 bytes per routed page.
	if st.Inner.SizeBytes != int64(st.Inner.Len)*16 {
		t.Fatalf("implicit router size %d for %d entries", st.Inner.SizeBytes, st.Inner.Len)
	}
	bt, _ := BulkLoad(keys, vals, Options{Error: 50, Router: RouterBTree})
	if st.IndexSize > bt.Stats().IndexSize {
		t.Fatalf("implicit index (%d) larger than btree index (%d)", st.IndexSize, bt.Stats().IndexSize)
	}
}

func TestRejectInvalidRouter(t *testing.T) {
	if _, err := BulkLoad([]uint64{1}, []int{0}, Options{Router: RouterKind(5)}); err == nil {
		t.Fatal("accepted invalid router kind")
	}
}

// Property: implicit floor search agrees with sort-based floor on random
// strictly ascending key sets.
func TestQuickImplicitFloor(t *testing.T) {
	f := func(raw []uint16, probes []uint16) bool {
		seen := map[uint64]bool{}
		var keys []uint64
		for _, r := range raw {
			k := uint64(r)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		r := &implicitRouter[uint64, int]{}
		// The floor search only consults keys; the routed pages just have
		// to be real, so park every entry on one dummy page.
		dummy := newPage(
			segment.Segment[uint64]{Start: 0, Count: 1, Slope: 0}, []uint64{0}, []int{0}, 1,
		)
		pages := make([]*page[uint64, int], len(keys))
		for i := range pages {
			pages[i] = dummy
		}
		if err := r.bulkLoad(keys, pages, 1); err != nil {
			return false
		}
		for _, pr := range probes {
			q := uint64(pr)
			want := sort.Search(len(keys), func(i int) bool { return keys[i] > q }) - 1
			got := r.searchFloor(q)
			if got != want {
				return false
			}
		}
		return r.check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
