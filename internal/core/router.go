package core

import (
	"fmt"

	"fitingtree/internal/btree"
	"fitingtree/internal/num"
)

// RouterKind selects the structure organizing the segments' routing keys.
// The paper (Section 2.2) notes that "instead of internally using a
// standard B+ tree ... A-Tree could instead use any other tree-based index
// structure. For example, if the workload is read-only, other index
// structures such as the FAST tree could be used." RouterImplicit is that
// read-optimized variant: a cache-friendly implicit binary layout that is
// rebuilt (O(segments)) whenever a merge changes the segment set.
type RouterKind int

const (
	// RouterBTree organizes segments in the B+ tree substrate (default;
	// the paper's design).
	RouterBTree RouterKind = iota
	// RouterImplicit organizes segments in an Eytzinger-layout implicit
	// binary search tree: faster, smaller, and cache-friendlier to search,
	// but every structural update rebuilds it, so it suits read-mostly
	// workloads.
	RouterImplicit
)

// router is the internal index from segment start keys to page positions in
// the tree's chain. Both implementations store at most one entry per key
// (equal-start page runs register only their first page; see the page-chain
// invariant), and because the chain is sorted the stored positions are
// strictly increasing in key order — shift relies on that monotonicity.
type router[K num.Key] interface {
	floor(k K) (int, bool)
	get(k K) (int, bool)
	// insert registers position pos under k, reporting whether an existing
	// entry was replaced.
	insert(k K, pos int) bool
	delete(k K) bool
	// shift adds delta to every routed position >= minPos. Positions are
	// strictly increasing in key order, so this is a suffix update; it is
	// how a chain splice renumbers the pages past the spliced region.
	shift(minPos, delta int)
	len() int
	bulkLoad(keys []K, pos []int, fill float64) error
	stats() btree.Stats
	check() error
}

// btreeRouter adapts the B+ tree substrate to the router interface. Trees
// install routers via initRouter, which also retains the concrete value so
// the lookup hot path skips this interface.
type btreeRouter[K num.Key] struct {
	tr *btree.Tree[K, int]
}

func (r *btreeRouter[K]) floor(k K) (int, bool) {
	_, p, ok := r.tr.Floor(k)
	return p, ok
}

func (r *btreeRouter[K]) get(k K) (int, bool) { return r.tr.Get(k) }

func (r *btreeRouter[K]) insert(k K, pos int) bool { return r.tr.Insert(k, pos) }
func (r *btreeRouter[K]) delete(k K) bool          { return r.tr.Delete(k) }

func (r *btreeRouter[K]) shift(minPos, delta int) {
	// Positions are strictly increasing in key order, so the affected
	// entries form a suffix: walk leaves from the largest key down and stop
	// at the first entry below minPos.
	r.tr.MutateDescend(func(_ K, pos int) (int, bool) {
		if pos < minPos {
			return pos, false
		}
		return pos + delta, true
	})
}

func (r *btreeRouter[K]) len() int { return r.tr.Len() }

func (r *btreeRouter[K]) bulkLoad(keys []K, pos []int, fill float64) error {
	return r.tr.BulkLoad(keys, pos, fill)
}

func (r *btreeRouter[K]) stats() btree.Stats { return r.tr.Stats() }
func (r *btreeRouter[K]) check() error       { return r.tr.CheckInvariants() }

// implicitRouter keeps routing keys in a sorted array searched through an
// Eytzinger (BFS) layout. Searches touch one cache line per level with a
// predictable access pattern; structural mutations rebuild both arrays in
// O(n), which is cheap because n is the number of segments, not keys.
type implicitRouter[K num.Key] struct {
	keys []K   // sorted
	pos  []int // chain positions, parallel to keys (strictly increasing)
	eytz []K   // 1-based BFS layout of keys
	perm []int32
}

// rebuild derives the Eytzinger layout from the sorted arrays.
func (r *implicitRouter[K]) rebuild() {
	n := len(r.keys)
	r.eytz = make([]K, n+1)
	r.perm = make([]int32, n+1)
	i := 0
	var fill func(slot int)
	fill = func(slot int) {
		if slot > n {
			return
		}
		fill(2 * slot)
		r.eytz[slot] = r.keys[i]
		r.perm[slot] = int32(i)
		i++
		fill(2*slot + 1)
	}
	fill(1)
}

// searchFloor returns the sorted index of the greatest key <= k, or -1.
func (r *implicitRouter[K]) searchFloor(k K) int {
	n := len(r.keys)
	if n == 0 {
		return -1
	}
	best := -1
	slot := 1
	for slot <= n {
		if r.eytz[slot] <= k {
			// Keys on successive right turns increase, so the last one
			// recorded is the floor.
			best = int(r.perm[slot])
			slot = 2*slot + 1
		} else {
			slot = 2 * slot
		}
	}
	return best
}

func (r *implicitRouter[K]) floor(k K) (int, bool) {
	i := r.searchFloor(k)
	if i < 0 {
		return 0, false
	}
	return r.pos[i], true
}

func (r *implicitRouter[K]) get(k K) (int, bool) {
	i := r.searchFloor(k)
	if i < 0 || r.keys[i] != k {
		return 0, false
	}
	return r.pos[i], true
}

func (r *implicitRouter[K]) insert(k K, pos int) bool {
	i, found := findKey(r.keys, k)
	if found {
		r.pos[i] = pos
		// Keys unchanged: the layout stays valid.
		return true
	}
	r.keys = insertAt(r.keys, i, k)
	r.pos = insertAt(r.pos, i, pos)
	r.rebuild()
	return false
}

func (r *implicitRouter[K]) delete(k K) bool {
	i, found := findKey(r.keys, k)
	if !found {
		return false
	}
	r.keys = removeAt(r.keys, i)
	r.pos = removeAt(r.pos, i)
	r.rebuild()
	return true
}

func (r *implicitRouter[K]) shift(minPos, delta int) {
	// Positions are strictly increasing, so binary-search the suffix start.
	lo, hi := 0, len(r.pos)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.pos[mid] < minPos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for ; lo < len(r.pos); lo++ {
		r.pos[lo] += delta
	}
	// Keys unchanged: the layout stays valid.
}

func (r *implicitRouter[K]) len() int { return len(r.keys) }

func (r *implicitRouter[K]) bulkLoad(keys []K, pos []int, fill float64) error {
	if len(keys) != len(pos) {
		return fmt.Errorf("router: %d keys but %d positions", len(keys), len(pos))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return fmt.Errorf("router: keys not strictly ascending at %d", i)
		}
	}
	r.keys = append([]K(nil), keys...)
	r.pos = append([]int(nil), pos...)
	r.rebuild()
	return nil
}

func (r *implicitRouter[K]) stats() btree.Stats {
	h := 0
	for n := len(r.keys); n > 0; n >>= 1 {
		h++
	}
	return btree.Stats{
		Len:       len(r.keys),
		Height:    num.MaxInt(1, h),
		LeafNodes: 1,
		SizeBytes: int64(len(r.keys)) * 16, // key + position per entry
	}
}

func (r *implicitRouter[K]) check() error {
	if len(r.keys) != len(r.pos) {
		return fmt.Errorf("router: keys/pos length mismatch")
	}
	for i := 1; i < len(r.keys); i++ {
		if r.keys[i] <= r.keys[i-1] {
			return fmt.Errorf("router: keys out of order at %d", i)
		}
		if r.pos[i] <= r.pos[i-1] {
			return fmt.Errorf("router: positions out of order at %d", i)
		}
	}
	if len(r.eytz) != len(r.keys)+1 {
		return fmt.Errorf("router: stale eytzinger layout")
	}
	for slot := 1; slot < len(r.eytz); slot++ {
		if r.keys[r.perm[slot]] != r.eytz[slot] {
			return fmt.Errorf("router: layout disagrees with keys at slot %d", slot)
		}
	}
	return nil
}
