package core

import (
	"fmt"

	"fitingtree/internal/btree"
	"fitingtree/internal/num"
)

// RouterKind selects the structure organizing the segments' routing keys.
// The paper (Section 2.2) notes that "instead of internally using a
// standard B+ tree ... A-Tree could instead use any other tree-based index
// structure. For example, if the workload is read-only, other index
// structures such as the FAST tree could be used." RouterImplicit is that
// read-optimized variant: a cache-friendly implicit binary layout that is
// rebuilt (O(segments)) whenever a merge changes the segment set.
type RouterKind int

const (
	// RouterBTree organizes segments in the B+ tree substrate (default;
	// the paper's design). It is persistently cloneable: MergeCOW
	// publications share all router nodes off the mutated descent paths.
	RouterBTree RouterKind = iota
	// RouterImplicit organizes segments in an Eytzinger-layout implicit
	// binary search tree: faster, smaller, and cache-friendlier to search,
	// but every structural update rebuilds it — and a COW publication
	// copies it wholesale — so it suits read-mostly workloads.
	RouterImplicit
)

// router is the internal index from segment start keys straight to the
// segments' pages. Both implementations store at most one entry per key
// (equal-start page runs register only their first page; see the
// page-chain invariant). A page pointer is an address that no splice
// invalidates as long as the page itself is carried — re-cutting the
// chunk around a page changes its coordinates but not its entry — so the
// interface has neither a suffix-renumbering nor a repointing operation,
// and publication touches exactly the entries of pages it rebuilds.
type router[K num.Key, V any] interface {
	floor(k K) (*page[K, V], bool)
	get(k K) (*page[K, V], bool)
	// insert registers page p under k, reporting whether an existing
	// entry was replaced.
	insert(k K, p *page[K, V]) bool
	delete(k K) bool
	len() int
	bulkLoad(keys []K, pages []*page[K, V], fill float64) error
	stats() btree.Stats
	check() error
}

// btreeRouter adapts the B+ tree substrate to the router interface. Trees
// install routers via initRouter (fresh) or adoptRouter (persistent
// clone), which also retain the concrete value so the lookup hot path
// skips this interface.
type btreeRouter[K num.Key, V any] struct {
	tr *btree.Tree[K, *page[K, V]]
}

func (r *btreeRouter[K, V]) floor(k K) (*page[K, V], bool) {
	_, l, ok := r.tr.Floor(k)
	return l, ok
}

func (r *btreeRouter[K, V]) get(k K) (*page[K, V], bool) { return r.tr.Get(k) }

func (r *btreeRouter[K, V]) insert(k K, l *page[K, V]) bool { return r.tr.Insert(k, l) }
func (r *btreeRouter[K, V]) delete(k K) bool                { return r.tr.Delete(k) }

func (r *btreeRouter[K, V]) len() int { return r.tr.Len() }

func (r *btreeRouter[K, V]) bulkLoad(keys []K, pages []*page[K, V], fill float64) error {
	return r.tr.BulkLoad(keys, pages, fill)
}

func (r *btreeRouter[K, V]) stats() btree.Stats { return r.tr.Stats() }
func (r *btreeRouter[K, V]) check() error       { return r.tr.CheckInvariants() }

// implicitRouter keeps routing keys in a sorted array searched through an
// Eytzinger (BFS) layout. Searches touch one cache line per level with a
// predictable access pattern; structural mutations rebuild both arrays in
// O(n), which is cheap because n is the number of segments, not keys.
type implicitRouter[K num.Key, V any] struct {
	keys   []K           // sorted
	pages  []*page[K, V] // routed pages, parallel to keys
	eytz   []K           // 1-based BFS layout of keys
	pref   []uint64      // string keys only: parallel 8-byte prefixes of eytz
	fixed8 bool          // string keys only: every routing key is exactly 8 bytes
	perm   []int32
}

// clone returns an independently mutable copy. The key and page arrays
// are copied (insert overwrites entries in place); the derived Eytzinger
// layout is shared until a structural mutation rebuilds it, since rebuild
// replaces the layout slices wholesale.
func (r *implicitRouter[K, V]) clone() *implicitRouter[K, V] {
	return &implicitRouter[K, V]{
		keys:   append([]K(nil), r.keys...),
		pages:  append([]*page[K, V](nil), r.pages...),
		eytz:   r.eytz,
		pref:   r.pref,
		fixed8: r.fixed8,
		perm:   r.perm,
	}
}

// rebuild derives the Eytzinger layout from the sorted arrays.
func (r *implicitRouter[K, V]) rebuild() {
	n := len(r.keys)
	r.eytz = make([]K, n+1)
	r.perm = make([]int32, n+1)
	i := 0
	var fill func(slot int)
	fill = func(slot int) {
		if slot > n {
			return
		}
		fill(2 * slot)
		r.eytz[slot] = r.keys[i]
		r.perm[slot] = int32(i)
		i++
		fill(2*slot + 1)
	}
	fill(1)
	r.pref = stringPrefixes(r.eytz)
	// The sorted array, not the layout: eytz's unused slot 0 holds the
	// zero string, which must not veto the fixed-width fast path.
	r.fixed8 = allLen8(r.keys)
}

// searchFloor returns the sorted index of the greatest key <= k, or -1.
func (r *implicitRouter[K, V]) searchFloor(k K) int {
	n := len(r.keys)
	if n == 0 {
		return -1
	}
	if r.pref != nil {
		return r.searchFloorString(any(k).(string))
	}
	best := -1
	slot := 1
	for slot <= n {
		if r.eytz[slot] <= k {
			// Keys on successive right turns increase, so the last one
			// recorded is the floor.
			best = int(r.perm[slot])
			slot = 2*slot + 1
		} else {
			slot = 2 * slot
		}
	}
	return best
}

// searchFloorString is searchFloor for string keys: the descent probes
// the prefix sidecar (one contiguous integer array, like a numeric
// router) and dereferences the actual routing string only on a prefix
// tie.
func (r *implicitRouter[K, V]) searchFloorString(k string) int {
	ks := any(r.eytz).([]string)
	kp := num.StringPrefix(k)
	n := len(r.keys)
	best := -1
	slot := 1
	if r.fixed8 && len(k) == 8 {
		// Fixed-width codec keys: the sidecar is a lossless image of the
		// routing keys, so the descent never touches string data.
		for slot <= n {
			if r.pref[slot] <= kp {
				best = int(r.perm[slot])
				slot = 2*slot + 1
			} else {
				slot = 2 * slot
			}
		}
		return best
	}
	for slot <= n {
		p := r.pref[slot]
		if p < kp || (p == kp && ks[slot] <= k) {
			best = int(r.perm[slot])
			slot = 2*slot + 1
		} else {
			slot = 2 * slot
		}
	}
	return best
}

func (r *implicitRouter[K, V]) floor(k K) (*page[K, V], bool) {
	i := r.searchFloor(k)
	if i < 0 {
		return nil, false
	}
	return r.pages[i], true
}

// floorWithNext is floor extended with the next routing key (the floor
// entry's successor), the validity range the batch path caches a descent
// under. The sorted key array makes the successor a neighbor access.
func (r *implicitRouter[K, V]) floorWithNext(k K) (p *page[K, V], nk K, hasNext, ok bool) {
	i := r.searchFloor(k)
	if i < 0 {
		if len(r.keys) > 0 {
			nk, hasNext = r.keys[0], true
		}
		return nil, nk, hasNext, false
	}
	if i+1 < len(r.keys) {
		nk, hasNext = r.keys[i+1], true
	}
	return r.pages[i], nk, hasNext, true
}

func (r *implicitRouter[K, V]) get(k K) (*page[K, V], bool) {
	i := r.searchFloor(k)
	if i < 0 || r.keys[i] != k {
		return nil, false
	}
	return r.pages[i], true
}

func (r *implicitRouter[K, V]) insert(k K, l *page[K, V]) bool {
	i, found := findKey(r.keys, k)
	if found {
		r.pages[i] = l
		// Keys unchanged: the layout stays valid.
		return true
	}
	r.keys = insertAt(r.keys, i, k)
	r.pages = insertAt(r.pages, i, l)
	r.rebuild()
	return false
}

func (r *implicitRouter[K, V]) delete(k K) bool {
	i, found := findKey(r.keys, k)
	if !found {
		return false
	}
	r.keys = removeAt(r.keys, i)
	r.pages = removeAt(r.pages, i)
	r.rebuild()
	return true
}

func (r *implicitRouter[K, V]) len() int { return len(r.keys) }

func (r *implicitRouter[K, V]) bulkLoad(keys []K, pages []*page[K, V], fill float64) error {
	if len(keys) != len(pages) {
		return fmt.Errorf("router: %d keys but %d pages", len(keys), len(pages))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return fmt.Errorf("router: keys not strictly ascending at %d", i)
		}
	}
	r.keys = append([]K(nil), keys...)
	r.pages = append([]*page[K, V](nil), pages...)
	r.rebuild()
	return nil
}

func (r *implicitRouter[K, V]) stats() btree.Stats {
	h := 0
	for n := len(r.keys); n > 0; n >>= 1 {
		h++
	}
	return btree.Stats{
		Len:       len(r.keys),
		Height:    num.MaxInt(1, h),
		LeafNodes: 1,
		SizeBytes: int64(len(r.keys)) * 16, // key + page pointer per entry
	}
}

func (r *implicitRouter[K, V]) check() error {
	if len(r.keys) != len(r.pages) {
		return fmt.Errorf("router: keys/pages length mismatch")
	}
	for i := 1; i < len(r.keys); i++ {
		if r.keys[i] <= r.keys[i-1] {
			return fmt.Errorf("router: keys out of order at %d", i)
		}
	}
	for i, p := range r.pages {
		if p == nil || p.id == 0 {
			return fmt.Errorf("router: nil or identity-less page at %d", i)
		}
	}
	if len(r.eytz) != len(r.keys)+1 {
		return fmt.Errorf("router: stale eytzinger layout")
	}
	for slot := 1; slot < len(r.eytz); slot++ {
		if r.keys[r.perm[slot]] != r.eytz[slot] {
			return fmt.Errorf("router: layout disagrees with keys at slot %d", slot)
		}
	}
	if ks, isStr := any(r.eytz).([]string); isStr {
		if len(r.pref) != len(ks) {
			return fmt.Errorf("router: prefix sidecar length %d, layout %d", len(r.pref), len(ks))
		}
		for slot := 1; slot < len(ks); slot++ {
			if r.pref[slot] != num.StringPrefix(ks[slot]) {
				return fmt.Errorf("router: stale prefix sidecar at slot %d", slot)
			}
		}
		if r.fixed8 != allLen8(r.keys) {
			return fmt.Errorf("router: stale fixed-width flag")
		}
	}
	return nil
}
