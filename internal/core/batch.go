package core

import "fitingtree/internal/num"

// maxChainWalk bounds how many pages a sorted batch advances along the
// chain before falling back to a fresh router descent: consecutive sorted
// probes usually land on the same or an adjacent page, but a large key gap
// is cheaper to cross through the router than one page at a time.
const maxChainWalk = 16

// LookupBatch performs Lookup for every element of keys and returns values
// and found flags parallel to keys. Already-sorted probe sets (common when
// the batch comes from a sorted join side) amortize router descents by
// walking the page chain forward between probes. Unsorted probe sets are
// processed in input order with per-routed-page grouping: one router
// descent resolves a page group's key range, and every subsequent probe
// falling into that range reuses the descent — no global permutation sort,
// which used to dominate the random-probe case. Duplicate semantics match
// Lookup: an arbitrary match is returned.
func (t *Tree[K, V]) LookupBatch(keys []K) ([]V, []bool) {
	vals := make([]V, len(keys))
	found := make([]bool, len(keys))
	if len(keys) == 0 || len(t.chunks) == 0 {
		return vals, found
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			t.lookupBatchGrouped(keys, vals, found)
			return vals, found
		}
	}
	t.lookupBatchSorted(keys, vals, found)
	return vals, found
}

// lookupBatchSorted serves an ascending probe set: each probe starts from
// the page the previous one ended on and advances along the chain, so keys
// routed to the same page run cost one descent total.
func (t *Tree[K, V]) lookupBatchSorted(keys []K, vals []V, found []bool) {
	var cu cursor[K, V]
	have := false
	for n, k := range keys {
		if !have {
			cu, have = t.firstCandidate(k)
		} else {
			// Probes ascend, so the owning page can only move forward.
			for i := 0; ; i++ {
				nx, has := t.next(cu)
				if !has || t.pageOf(nx).start() > k {
					break
				}
				if i == maxChainWalk {
					cu, _ = t.locateCursor(k)
					break
				}
				cu = nx
			}
			// Duplicate runs can spill keys equal to k into the tails of
			// preceding pages (see firstCandidate).
			cu = t.backUp(cu, k)
		}
		vals[n], found[n] = t.searchRun(cu, k)
	}
}

// lookupBatchGrouped serves an arbitrary-order probe set. For each probe
// it checks whether the key falls into the routed key range resolved by
// the previous descent — [group's routing key, next routing key) — and if
// so reuses that descent's page without touching the router; otherwise it
// pays one fresh devirtualized descent, which yields the range as a side
// effect (FloorWithNext). Random probes thus cost one descent each (like
// single lookups) but skip the permutation sort the old path paid, and
// locally clustered probe sets collapse to one descent per routed page
// even when globally unsorted.
func (t *Tree[K, V]) lookupBatchGrouped(keys []K, vals []V, found []bool) {
	var gp *page[K, V] // the group's routed page
	var groupLo K      // the group's routing key
	var groupHi K      // smallest routed key > groupLo (valid if bounded)
	bounded := false
	for n, k := range keys {
		if gp == nil || k < groupLo || (bounded && k >= groupHi) {
			var ok bool
			if t.rim != nil {
				gp, groupHi, bounded, ok = t.rim.floorWithNext(k)
			} else {
				_, gp, groupHi, bounded, ok = t.rbt.FloorWithNext(k)
			}
			if !ok {
				// k precedes every routing key: the chain's first page is
				// the only one that can hold k (as a buffered insert).
				// Serve the probe without caching a group.
				vals[n], found[n] = t.searchPage(t.chunks[0].pages[0], k)
				gp = nil
				continue
			}
			groupLo = gp.start()
		}
		// Same fast path as Lookup: the routed page resolves almost every
		// probe; only a miss derives chain coordinates.
		if v, ok := t.searchPage(gp, k); ok {
			vals[n], found[n] = v, true
		} else {
			vals[n], found[n] = t.searchFrom(t.pageCursor(gp), k)
		}
	}
}

// searchFrom runs the tail of a point lookup for k from the routed floor
// cursor cu: back up over duplicate spill, then search forward across the
// equal-start run.
func (t *Tree[K, V]) searchFrom(cu cursor[K, V], k K) (V, bool) {
	return t.searchRun(t.backUp(cu, k), k)
}

// searchRun searches forward from cu across the pages that may contain k,
// exactly as Lookup does.
func (t *Tree[K, V]) searchRun(cu cursor[K, V], k K) (V, bool) {
	for {
		if v, ok := t.searchPage(t.pageOf(cu), k); ok {
			return v, true
		}
		nx, has := t.next(cu)
		if !has || t.pageOf(nx).start() > k {
			var zero V
			return zero, false
		}
		cu = nx
	}
}

// ProbeOrder returns a permutation visiting keys in ascending order, or
// nil when keys are already sorted (the free fast path). The sort is the
// specialized closure-free quicksort of the batch hot path; batch-style
// callers outside the package (e.g. the sharded facade's scatter-gather)
// use it to presort sub-batches rather than paying sort.Sort's interface
// dispatch.
func ProbeOrder[K num.Key](keys []K) []int32 {
	ascending := true
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			ascending = false
			break
		}
	}
	if ascending {
		return nil
	}
	order := make([]int32, len(keys))
	for i := range order {
		order[i] = int32(i)
	}
	sortPerm(keys, order)
	return order
}

// sortPerm sorts the permutation p by keys[p[i]]: a median-of-three
// quicksort with an insertion-sorted tail, specialized so every comparison
// is a direct key compare instead of sort.Slice's closure call.
func sortPerm[K num.Key](keys []K, p []int32) {
	for len(p) > 12 {
		m := len(p) / 2
		last := len(p) - 1
		if keys[p[m]] < keys[p[0]] {
			p[m], p[0] = p[0], p[m]
		}
		if keys[p[last]] < keys[p[m]] {
			p[last], p[m] = p[m], p[last]
			if keys[p[m]] < keys[p[0]] {
				p[m], p[0] = p[0], p[m]
			}
		}
		pivot := keys[p[m]]
		i, j := 0, last
		for i <= j {
			for keys[p[i]] < pivot {
				i++
			}
			for keys[p[j]] > pivot {
				j--
			}
			if i <= j {
				p[i], p[j] = p[j], p[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, iterate on the larger one to
		// bound stack depth.
		if j < len(p)-i {
			sortPerm(keys, p[:j+1])
			p = p[i:]
		} else {
			sortPerm(keys, p[i:])
			p = p[:j+1]
		}
	}
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && keys[p[j]] < keys[p[j-1]]; j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
}
