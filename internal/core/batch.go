package core

import "fitingtree/internal/num"

// maxChainWalk bounds how many pages LookupBatch advances along the chain
// before falling back to a fresh router descent: consecutive sorted probes
// usually land on the same or an adjacent page, but a large key gap is
// cheaper to cross through the router than one position at a time.
const maxChainWalk = 16

// LookupBatch performs Lookup for every element of keys and returns values
// and found flags parallel to keys. Probes are processed in ascending key
// order so that keys routed to the same page run reuse the previous
// descent and advance along the page chain — one router descent per page
// run instead of one per key. Already-sorted probe sets (common when the
// batch comes from a sorted join side) skip the sorting pass entirely.
// Duplicate semantics match Lookup: an arbitrary match is returned.
func (t *Tree[K, V]) LookupBatch(keys []K) ([]V, []bool) {
	vals := make([]V, len(keys))
	found := make([]bool, len(keys))
	if len(keys) == 0 || len(t.chain) == 0 {
		return vals, found
	}
	order := ProbeOrder(keys) // nil when keys are already ascending

	pos := -1 // candidate position left by the previous (smaller) probe
	for n := range keys {
		oi := n
		if order != nil {
			oi = int(order[n])
		}
		k := keys[oi]
		if pos < 0 {
			pos = t.firstCandidate(k)
		} else {
			// Probes ascend, so the owning page can only move forward.
			for i := 0; ; i++ {
				if pos+1 == len(t.chain) || t.chain[pos+1].start() > k {
					break
				}
				if i == maxChainWalk {
					pos = t.locate(k)
					break
				}
				pos++
			}
			// Duplicate runs can spill keys equal to k into the tails of
			// preceding pages (see firstCandidate).
			for pos > 0 && t.chain[pos-1].lastKey() >= k {
				pos--
			}
		}
		// Search forward across the equal-start run, like Lookup.
		for q := pos; q < len(t.chain); q++ {
			if v, ok := t.searchPage(t.chain[q], k); ok {
				vals[oi], found[oi] = v, true
				break
			}
			if q+1 == len(t.chain) || t.chain[q+1].start() > k {
				break
			}
		}
	}
	return vals, found
}

// ProbeOrder returns a permutation visiting keys in ascending order, or
// nil when keys are already sorted (the free fast path). The sort is the
// specialized closure-free quicksort of the batch hot path; batch-style
// callers outside the package (e.g. the sharded facade's scatter-gather)
// reuse it rather than paying sort.Sort's interface dispatch.
func ProbeOrder[K num.Key](keys []K) []int32 {
	ascending := true
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			ascending = false
			break
		}
	}
	if ascending {
		return nil
	}
	order := make([]int32, len(keys))
	for i := range order {
		order[i] = int32(i)
	}
	sortPerm(keys, order)
	return order
}

// sortPerm sorts the permutation p by keys[p[i]]: a median-of-three
// quicksort with an insertion-sorted tail, specialized so every comparison
// is a direct key compare instead of sort.Slice's closure call — the sort
// is on LookupBatch's critical path and dominates it for random probes.
func sortPerm[K num.Key](keys []K, p []int32) {
	for len(p) > 12 {
		m := len(p) / 2
		last := len(p) - 1
		if keys[p[m]] < keys[p[0]] {
			p[m], p[0] = p[0], p[m]
		}
		if keys[p[last]] < keys[p[m]] {
			p[last], p[m] = p[m], p[last]
			if keys[p[m]] < keys[p[0]] {
				p[m], p[0] = p[0], p[m]
			}
		}
		pivot := keys[p[m]]
		i, j := 0, last
		for i <= j {
			for keys[p[i]] < pivot {
				i++
			}
			for keys[p[j]] > pivot {
				j--
			}
			if i <= j {
				p[i], p[j] = p[j], p[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, iterate on the larger one to
		// bound stack depth.
		if j < len(p)-i {
			sortPerm(keys, p[:j+1])
			p = p[i:]
		} else {
			sortPerm(keys, p[i:])
			p = p[:j+1]
		}
	}
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && keys[p[j]] < keys[p[j-1]]; j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
}
