package core

import (
	"fitingtree/internal/num"
	"fitingtree/internal/segment"
)

// Insert adds (k, v) to the tree (Algorithm 4). The key is routed to its
// page's sorted insert buffer; a full buffer triggers a merge with the page
// data followed by re-segmentation, which preserves the error guarantee.
// Duplicate keys are allowed and stored alongside existing ones.
func (t *Tree[K, V]) Insert(k K, v V) {
	if k != k {
		panic("fitingtree: Insert with NaN key")
	}
	t.counters.Inserts++
	t.size++
	p := t.locate(k)
	if p == nil {
		// Empty tree: create the initial page.
		p = &page[K, V]{
			seg:    segment.Segment[K]{Start: k, Count: 1, Slope: 0},
			keys:   []K{k},
			vals:   []V{v},
			inTree: true,
		}
		t.first = p
		t.idx.insert(k, p)
		return
	}
	// The inner tree routes to the first page of an equal-start run; the
	// key may belong to a later page of the run (or to the page covering
	// the gap after it), so advance to the last page whose routing key
	// precedes k.
	for p.next != nil && p.next.start() < k {
		p = p.next
	}
	i, _ := findKey(p.bufKeys, k)
	p.bufKeys = insertAt(p.bufKeys, i, k)
	p.bufVals = insertAt(p.bufVals, i, v)
	if len(p.bufKeys) >= num.MaxInt(1, t.opts.BufferSize) {
		t.merge(p)
	}
}

// Delete removes one element with key k and reports whether one was found.
// Buffered elements are removed directly; elements in page data are removed
// in place, which widens that page's effective search window by one until
// the next re-segmentation (deletes are an extension over the paper, which
// covers only lookups and inserts).
func (t *Tree[K, V]) Delete(k K) bool {
	return t.DeleteWhere(k, func(V) bool { return true })
}

// DeleteWhere removes the first element with key k whose value satisfies
// pred, reporting whether one was removed. It lets callers disambiguate
// duplicates (e.g. a secondary index deleting one specific row posting).
func (t *Tree[K, V]) DeleteWhere(k K, pred func(V) bool) bool {
	for p := t.firstCandidate(k); p != nil; p = p.next {
		if i, ok := findKey(p.bufKeys, k); ok {
			for j := i; j < len(p.bufKeys) && p.bufKeys[j] == k; j++ {
				if pred(p.bufVals[j]) {
					p.bufKeys = removeAt(p.bufKeys, j)
					p.bufVals = removeAt(p.bufVals, j)
					t.afterDelete(p)
					return true
				}
			}
		}
		if i, ok := p.dataSearch(k, t.segErr, t.strat); ok {
			// dataSearch returns the leftmost match in the page; every
			// duplicate of k in this page is contiguous from there.
			for j := i; j < len(p.keys) && p.keys[j] == k; j++ {
				if pred(p.vals[j]) {
					p.keys = removeAt(p.keys, j)
					p.vals = removeAt(p.vals, j)
					p.deletes++
					t.afterDelete(p)
					return true
				}
			}
		}
		if p.next == nil || p.next.start() > k {
			return false
		}
	}
	return false
}

// afterDelete updates accounting and re-segments or drops the page when
// deletions have eroded it.
func (t *Tree[K, V]) afterDelete(p *page[K, V]) {
	t.counters.Deletes++
	t.size--
	if len(p.keys) == 0 && len(p.bufKeys) == 0 {
		t.removePage(p)
		return
	}
	// Bound the window widening: once deletions match the buffer budget,
	// rebuild the page's model.
	if p.deletes > 0 && p.deletes+len(p.bufKeys) > num.MaxInt(1, t.opts.BufferSize) {
		t.merge(p)
	}
}

// merge combines a page's data and buffer into one sorted run, re-segments
// it with the bulk-loading algorithm, and splices the resulting page(s)
// into the tree in place of p (Algorithm 4 lines 5-9).
func (t *Tree[K, V]) merge(p *page[K, V]) {
	t.counters.Merges++
	mergedKeys, mergedVals := mergeSorted(p.keys, p.vals, p.bufKeys, p.bufVals)
	if len(mergedKeys) == 0 {
		t.removePage(p)
		return
	}
	segs := segment.ShrinkingCone(mergedKeys, t.opts.segError())
	t.counters.PagesMade += len(segs)

	pages := make([]*page[K, V], len(segs))
	for i, s := range segs {
		pages[i] = &page[K, V]{
			seg: segment.Segment[K]{Start: s.Start, StartPos: 0, Count: s.Count, Slope: s.Slope},
			// Sub-slicing the merged run is safe: pages never grow their
			// data in place, and in-place deletions stay within a page's
			// own window of the backing array.
			keys: mergedKeys[s.StartPos:s.EndPos():s.EndPos()],
			vals: mergedVals[s.StartPos:s.EndPos():s.EndPos()],
		}
		if i > 0 {
			pages[i-1].next = pages[i]
			pages[i].prev = pages[i-1]
		}
	}

	// Splice the new pages into the chain in place of p.
	prevP, nextP := p.prev, p.next
	headNew, tailNew := pages[0], pages[len(pages)-1]
	if prevP == nil {
		t.first = headNew
	} else {
		prevP.next = headNew
		headNew.prev = prevP
	}
	tailNew.next = nextP
	if nextP != nil {
		nextP.prev = tailNew
	}

	// Update the inner tree. A page is routed iff its start key differs
	// from its chain predecessor's; p itself may be an unrouted member of
	// an equal-start run (deletes and dup-chain inserts can merge those).
	if p.inTree {
		t.idx.delete(p.start())
	}
	for i, np := range pages {
		pred := prevP
		if i > 0 {
			pred = pages[i-1]
		}
		if pred != nil && pred.start() == np.start() {
			continue // equal-start run: only its first page is routed
		}
		np.inTree = true
		if t.idx.insert(np.start(), np) && nextP != nil && nextP.start() == np.start() {
			// The new page displaced the routing entry of the next
			// existing page (equal start keys); it is now chain-reachable
			// only.
			nextP.inTree = false
		}
	}
}

// removePage splices an empty page out of the chain and the inner tree,
// promoting the next page of an equal-start run into the tree if needed.
func (t *Tree[K, V]) removePage(p *page[K, V]) {
	prevP, nextP := p.prev, p.next
	if prevP == nil {
		t.first = nextP
	} else {
		prevP.next = nextP
	}
	if nextP != nil {
		nextP.prev = prevP
	}
	if p.inTree {
		t.idx.delete(p.start())
		if nextP != nil && !nextP.inTree && (prevP == nil || prevP.start() != nextP.start()) {
			nextP.inTree = true
			t.idx.insert(nextP.start(), nextP)
		}
	}
}

// mergeSorted merges two sorted key runs (with parallel values) into fresh
// slices; equal keys keep data-before-buffer order.
func mergeSorted[K num.Key, V any](aK []K, aV []V, bK []K, bV []V) ([]K, []V) {
	outK := make([]K, 0, len(aK)+len(bK))
	outV := make([]V, 0, len(aK)+len(bK))
	i, j := 0, 0
	for i < len(aK) && j < len(bK) {
		if aK[i] <= bK[j] {
			outK = append(outK, aK[i])
			outV = append(outV, aV[i])
			i++
		} else {
			outK = append(outK, bK[j])
			outV = append(outV, bV[j])
			j++
		}
	}
	outK = append(outK, aK[i:]...)
	outV = append(outV, aV[i:]...)
	outK = append(outK, bK[j:]...)
	outV = append(outV, bV[j:]...)
	return outK, outV
}

// insertAt inserts v at index i, shifting the tail right.
func insertAt[T any](s []T, i int, v T) []T {
	var zero T
	s = append(s, zero)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// removeAt removes the element at index i, shifting the tail left.
func removeAt[T any](s []T, i int) []T {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}
