package core

import (
	"fitingtree/internal/num"
	"fitingtree/internal/segment"
)

// Insert adds (k, v) to the tree (Algorithm 4). The key is routed to its
// page's sorted insert buffer; a full buffer triggers a merge with the page
// data followed by re-segmentation, which preserves the error guarantee.
// Duplicate keys are allowed and stored alongside existing ones.
func (t *Tree[K, V]) Insert(k K, v V) {
	if k != k {
		panic("fitingtree: Insert with NaN key")
	}
	t.counters.Inserts++
	t.size++
	pos := t.insertPos(k)
	if pos < 0 {
		// Empty tree: create the initial page.
		t.chain = []*page[K, V]{newPage(
			segment.Segment[K]{Start: k, Count: 1, Slope: 0}, []K{k}, []V{v},
		)}
		t.idx.insert(k, 0)
		return
	}
	p := t.chain[pos]
	i, _ := findKey(p.bufKeys, k)
	p.bufKeys = insertAt(p.bufKeys, i, k)
	p.bufVals = insertAt(p.bufVals, i, v)
	if len(p.bufKeys) >= num.MaxInt(1, t.opts.BufferSize) {
		t.merge(pos)
	}
}

// insertPos returns the chain position Insert buffers k into, or -1 for an
// empty tree. The router maps to the first page of an equal-start run; the
// key may belong to a later page of the run (or to the page covering the
// gap after it), so advance to the last page whose routing key precedes k.
// MergeCOW opens its dirty regions with the same rule, so buffered and
// flushed placement of a key cannot drift apart.
func (t *Tree[K, V]) insertPos(k K) int {
	pos := t.locate(k)
	if pos < 0 {
		return -1
	}
	for pos+1 < len(t.chain) && t.chain[pos+1].start() < k {
		pos++
	}
	return pos
}

// Delete removes one element with key k and reports whether one was found.
// Buffered elements are removed directly; elements in page data are removed
// in place, which widens that page's effective search window by one until
// the next re-segmentation (deletes are an extension over the paper, which
// covers only lookups and inserts).
func (t *Tree[K, V]) Delete(k K) bool {
	return t.DeleteWhere(k, func(V) bool { return true })
}

// DeleteWhere removes the first element with key k whose value satisfies
// pred, reporting whether one was removed. It lets callers disambiguate
// duplicates (e.g. a secondary index deleting one specific row posting).
func (t *Tree[K, V]) DeleteWhere(k K, pred func(V) bool) bool {
	for pos := t.firstCandidate(k); pos >= 0 && pos < len(t.chain); pos++ {
		p := t.chain[pos]
		if i, ok := findKey(p.bufKeys, k); ok {
			for j := i; j < len(p.bufKeys) && p.bufKeys[j] == k; j++ {
				if pred(p.bufVals[j]) {
					p.bufKeys = removeAt(p.bufKeys, j)
					p.bufVals = removeAt(p.bufVals, j)
					t.afterDelete(pos)
					return true
				}
			}
		}
		if i, ok := p.dataSearch(k, t.segErr, t.strat); ok {
			// dataSearch returns the leftmost match in the page; every
			// duplicate of k in this page is contiguous from there.
			for j := i; j < len(p.keys) && p.keys[j] == k; j++ {
				if pred(p.vals[j]) {
					p.keys = removeAt(p.keys, j)
					p.vals = removeAt(p.vals, j)
					p.deletes++
					t.afterDelete(pos)
					return true
				}
			}
		}
		if pos+1 == len(t.chain) || t.chain[pos+1].start() > k {
			return false
		}
	}
	return false
}

// afterDelete updates accounting and re-segments or drops the page at pos
// when deletions have eroded it.
func (t *Tree[K, V]) afterDelete(pos int) {
	t.counters.Deletes++
	t.size--
	p := t.chain[pos]
	if len(p.keys) == 0 && len(p.bufKeys) == 0 {
		t.removePage(pos)
		return
	}
	// Bound the window widening: once deletions match the buffer budget,
	// rebuild the page's model.
	if p.deletes > 0 && p.deletes+len(p.bufKeys) > num.MaxInt(1, t.opts.BufferSize) {
		t.merge(pos)
	}
}

// splice replaces removed pages of the chain at pos with the given pages
// and renumbers the routing entries of every page past the spliced region.
// Routing entries inside the region must be deleted (and the replacements
// inserted) by the caller.
//
// The linked-list leaf level this slice replaced spliced in O(1); here a
// page-count-changing splice moves the chain tail (memmove of pointers,
// in place — no reallocation once capacity has grown) and renumbers the
// router suffix. That is O(pages after pos), paid only on the minority of
// merges whose re-segmentation changes the page count — the price of a
// leaf level whose pages are shareable values (see MergeCOW).
func (t *Tree[K, V]) splice(pos, removed int, pages []*page[K, V]) {
	delta := len(pages) - removed
	switch {
	case delta == 0:
		copy(t.chain[pos:], pages)
		return
	case delta < 0:
		copy(t.chain[pos:], pages)
		copy(t.chain[pos+len(pages):], t.chain[pos+removed:])
		clear(t.chain[len(t.chain)+delta:]) // release dropped page refs
		t.chain = t.chain[:len(t.chain)+delta]
	default:
		t.chain = append(t.chain, make([]*page[K, V], delta)...)
		copy(t.chain[pos+len(pages):], t.chain[pos+removed:len(t.chain)-delta])
		copy(t.chain[pos:], pages)
	}
	t.idx.shift(pos+removed, delta)
}

// merge combines the page at pos with its buffer into one sorted run,
// re-segments it with the bulk-loading algorithm, and splices the resulting
// page(s) into the chain in place of it (Algorithm 4 lines 5-9).
func (t *Tree[K, V]) merge(pos int) {
	t.counters.Merges++
	p := t.chain[pos]
	mergedKeys, mergedVals := mergeSorted(p.keys, p.vals, p.bufKeys, p.bufVals)
	if len(mergedKeys) == 0 {
		t.removePage(pos)
		return
	}
	segs := segment.ShrinkingCone(mergedKeys, t.opts.segError())
	t.counters.PagesMade += len(segs)

	pages := make([]*page[K, V], len(segs))
	for i, s := range segs {
		pages[i] = newPage(
			segment.Segment[K]{Start: s.Start, StartPos: 0, Count: s.Count, Slope: s.Slope},
			// Sub-slicing the merged run is safe: pages never grow their
			// data in place, and in-place deletions stay within a page's
			// own window of the backing array.
			mergedKeys[s.StartPos:s.EndPos():s.EndPos()],
			mergedVals[s.StartPos:s.EndPos():s.EndPos()],
		)
	}

	// A page is routed iff its start key differs from its chain
	// predecessor's; p itself may be an unrouted member of an equal-start
	// run (deletes and dup-chain inserts can merge those).
	if t.routed(pos) {
		t.idx.delete(p.start())
	}
	t.splice(pos, 1, pages)
	for i, np := range pages {
		at := pos + i
		if at > 0 && t.chain[at-1].start() == np.start() {
			continue // equal-start run: only its first page is routed
		}
		// The insert may displace the routing entry of the next existing
		// page (equal start keys); that page then becomes chain-reachable
		// only, which the derived routedness reflects automatically.
		t.idx.insert(np.start(), at)
	}
}

// removePage splices an empty page out of the chain and the router,
// promoting the next page of an equal-start run into the router if needed.
func (t *Tree[K, V]) removePage(pos int) {
	p := t.chain[pos]
	wasRouted := t.routed(pos)
	if wasRouted {
		t.idx.delete(p.start())
	}
	t.splice(pos, 1, nil)
	if wasRouted && pos < len(t.chain) && t.chain[pos].start() == p.start() {
		// The removed page headed an equal-start run; promote its
		// successor, which now heads the run at the removed page's old
		// position.
		t.idx.insert(p.start(), pos)
	}
}

// mergeSorted merges two sorted key runs (with parallel values) into fresh
// slices; equal keys keep data-before-buffer order.
func mergeSorted[K num.Key, V any](aK []K, aV []V, bK []K, bV []V) ([]K, []V) {
	outK := make([]K, 0, len(aK)+len(bK))
	outV := make([]V, 0, len(aK)+len(bK))
	i, j := 0, 0
	for i < len(aK) && j < len(bK) {
		if aK[i] <= bK[j] {
			outK = append(outK, aK[i])
			outV = append(outV, aV[i])
			i++
		} else {
			outK = append(outK, bK[j])
			outV = append(outV, bV[j])
			j++
		}
	}
	outK = append(outK, aK[i:]...)
	outV = append(outV, aV[i:]...)
	outK = append(outK, bK[j:]...)
	outV = append(outV, bV[j:]...)
	return outK, outV
}

// insertAt inserts v at index i, shifting the tail right.
func insertAt[T any](s []T, i int, v T) []T {
	var zero T
	s = append(s, zero)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// removeAt removes the element at index i, shifting the tail left.
func removeAt[T any](s []T, i int) []T {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}
