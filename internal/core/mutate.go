package core

import (
	"sync/atomic"

	"fitingtree/internal/num"
	"fitingtree/internal/segment"
)

// Insert adds (k, v) to the tree (Algorithm 4). The key is routed to its
// page's sorted insert buffer; a full buffer triggers a merge with the page
// data followed by re-segmentation, which preserves the error guarantee.
// Duplicate keys are allowed and stored alongside existing ones.
func (t *Tree[K, V]) Insert(k K, v V) {
	if k != k {
		panic("fitingtree: Insert with NaN key")
	}
	t.counters.Inserts++
	t.size++
	cu, ok := t.insertCursor(k)
	if !ok {
		// Empty tree: create the initial page and chunk.
		p := newPage(segment.Segment[K]{Start: k, Count: 1, Slope: 0}, []K{k}, []V{v}, t.segErrFor(k))
		t.chunks = []*chunk[K, V]{newChunk([]*page[K, V]{p})}
		t.idx.insert(k, p)
		return
	}
	p := t.pageOf(cu)
	i, _ := findKey(p.bufKeys, k)
	p.bufKeys = insertAt(p.bufKeys, i, k)
	p.bufVals = insertAt(p.bufVals, i, v)
	if len(p.bufKeys) >= num.MaxInt(1, t.opts.BufferSize) {
		t.merge(cu)
	}
}

// insertCursor returns the page Insert buffers k into; ok is false for an
// empty tree. The router maps to the first page of an equal-start run; the
// key may belong to a later page of the run (or to the page covering the
// gap after it), so advance to the last page whose routing key precedes k.
// MergeCOW opens its dirty regions with the same rule, so buffered and
// flushed placement of a key cannot drift apart.
func (t *Tree[K, V]) insertCursor(k K) (cursor[K, V], bool) {
	cu, ok := t.locateCursor(k)
	if !ok {
		return cu, false
	}
	for {
		nx, has := t.next(cu)
		if !has || t.pageOf(nx).start() >= k {
			return cu, true
		}
		cu = nx
	}
}

// Delete removes one element with key k and reports whether one was found.
// Buffered elements are removed directly; elements in page data are removed
// in place, which widens that page's effective search window by one until
// the next re-segmentation (deletes are an extension over the paper, which
// covers only lookups and inserts).
func (t *Tree[K, V]) Delete(k K) bool {
	return t.DeleteWhere(k, func(V) bool { return true })
}

// DeleteValue removes the first element with key k whose value equals v
// under Go equality, reporting whether one was removed. Unlike Delete,
// the victim among distinct-valued duplicates is named by the caller, so
// the outcome cannot depend on scan order. It panics for non-comparable
// value types.
func (t *Tree[K, V]) DeleteValue(k K, v V) bool {
	return t.DeleteWhere(k, func(w V) bool { return valueEq(w, v) })
}

// DeleteWhere removes the first element with key k whose value satisfies
// pred, reporting whether one was removed. It lets callers disambiguate
// duplicates (e.g. a secondary index deleting one specific row posting).
func (t *Tree[K, V]) DeleteWhere(k K, pred func(V) bool) bool {
	cu, ok := t.firstCandidate(k)
	if !ok {
		return false
	}
	for {
		p := t.pageOf(cu)
		if i, ok := findKey(p.bufKeys, k); ok {
			for j := i; j < len(p.bufKeys) && p.bufKeys[j] == k; j++ {
				if pred(p.bufVals[j]) {
					p.bufKeys = removeAt(p.bufKeys, j)
					p.bufVals = removeAt(p.bufVals, j)
					t.afterDelete(cu)
					return true
				}
			}
		}
		if i, ok := p.dataSearch(k, p.werr, t.strat); ok {
			// dataSearch returns the leftmost match in the page; every
			// duplicate of k in this page is contiguous from there.
			for j := i; j < len(p.keys) && p.keys[j] == k; j++ {
				if pred(p.vals[j]) {
					p.keys = removeAt(p.keys, j)
					p.vals = removeAt(p.vals, j)
					if p.pref != nil {
						p.pref = removeAt(p.pref, j)
					}
					p.deletes++
					t.afterDelete(cu)
					return true
				}
			}
		}
		nx, has := t.next(cu)
		if !has || t.pageOf(nx).start() > k {
			return false
		}
		cu = nx
	}
}

// afterDelete updates accounting and re-segments or drops the page at cu
// when deletions have eroded it.
func (t *Tree[K, V]) afterDelete(cu cursor[K, V]) {
	t.counters.Deletes++
	t.size--
	p := t.pageOf(cu)
	if len(p.keys) == 0 && len(p.bufKeys) == 0 {
		t.removePage(cu)
		return
	}
	// Bound the window widening: once deletions match the buffer budget,
	// rebuild the page's model.
	if p.deletes > 0 && p.deletes+len(p.bufKeys) > num.MaxInt(1, t.opts.BufferSize) {
		t.merge(cu)
	}
}

// spliceChunks replaces chunks [ci, ci+removed) of s with repl.
func spliceChunks[K num.Key, V any](s []*chunk[K, V], ci, removed int, repl []*chunk[K, V]) []*chunk[K, V] {
	out := make([]*chunk[K, V], 0, len(s)-removed+len(repl))
	out = append(out, s[:ci]...)
	out = append(out, repl...)
	out = append(out, s[ci+removed:]...)
	return out
}

// splicePages replaces `removed` pages of cu's chunk starting at cu.pi
// with pages. The edit is purely structural — the router addresses pages
// directly, so only the caller's entry edits for the removed and added
// pages matter, and no other entry is touched. If the result fits
// chunkMax the chunk's spine is rewritten in place (legal only because
// the plain Tree owns its chunks exclusively — published chunks are never
// spliced, see chunk); an oversized result is re-cut into fresh chunks
// and an emptied chunk is dropped from the chain.
func (t *Tree[K, V]) splicePages(cu cursor[K, V], removed int, pages []*page[K, V]) {
	c := cu.c
	np := make([]*page[K, V], 0, len(c.pages)-removed+len(pages))
	np = append(np, c.pages[:cu.pi]...)
	np = append(np, pages...)
	np = append(np, c.pages[cu.pi+removed:]...)
	switch {
	case len(np) == 0:
		t.chunks = spliceChunks(t.chunks, cu.ci, 1, nil)
	case len(np) > chunkMax:
		t.chunks = spliceChunks(t.chunks, cu.ci, 1, cutChunksPlan(np, t.tune.planOf()))
	default:
		c.pages = np
	}
}

// reindexSplice maintains the router across a splice that replaces the
// page at cu with pages (possibly none): the replaced page's entry is
// deleted if it was routed, entries are inserted for every new page that
// heads an equal-start run, and the first surviving page after the splice
// is re-registered if its run-head role changed. Inserting a run head's
// entry also displaces, by key, the stale entry of a page that just lost
// that role. Everything else in the router — in this chunk and every
// other — addresses pages the splice carries and stays untouched.
//
// Callers invoke it BEFORE the structural splice, passing the replacement
// pages, because it derives run boundaries from the pre-splice neighbors.
func (t *Tree[K, V]) reindexSplice(cu cursor[K, V], pages []*page[K, V]) {
	old := t.pageOf(cu)
	if t.isRouted(cu) {
		t.idx.delete(old.start())
	}
	var pred *page[K, V]
	if pv, ok := t.prev(cu); ok {
		pred = t.pageOf(pv)
	}
	for _, np := range pages {
		if pred == nil || pred.start() != np.start() {
			t.idx.insert(np.start(), np)
		}
		pred = np
	}
	// The page following the splice: routed now iff its start differs
	// from the last new page's (or the splice predecessor's, when the
	// page was removed without replacement).
	if nx, ok := t.next(cu); ok {
		after := t.pageOf(nx)
		if pred == nil || pred.start() != after.start() {
			t.idx.insert(after.start(), after)
		}
	}
}

// merge combines the page at cu with its buffer into one sorted run,
// re-segments it with the bulk-loading algorithm, and splices the
// resulting page(s) into the chain in place of it (Algorithm 4 lines 5-9).
func (t *Tree[K, V]) merge(cu cursor[K, V]) {
	t.counters.Merges++
	p := t.pageOf(cu)
	mergedKeys, mergedVals := mergeSorted(p.keys, p.vals, p.bufKeys, p.bufVals)
	if len(mergedKeys) == 0 {
		t.removePage(cu)
		return
	}
	// The run spans a single page's key range, so one region target
	// applies; a retuned region takes effect here on the next merge.
	segErr := t.segErrFor(mergedKeys[0])
	segs := segment.ShrinkingCone(mergedKeys, segErr)
	t.counters.PagesMade += len(segs)

	pages := make([]*page[K, V], len(segs))
	for i, s := range segs {
		pages[i] = newPage(
			segment.Segment[K]{Start: s.Start, StartPos: 0, Count: s.Count, Slope: s.Slope},
			// Sub-slicing the merged run is safe: pages never grow their
			// data in place, and in-place deletions stay within a page's
			// own window of the backing array.
			mergedKeys[s.StartPos:s.EndPos():s.EndPos()],
			mergedVals[s.StartPos:s.EndPos():s.EndPos()],
			segErr,
		)
	}
	carryLoad(atomic.LoadUint64(&p.reads), atomic.LoadUint64(&p.writes),
		len(p.bufKeys)+p.deletes, pages)

	t.reindexSplice(cu, pages)
	t.splicePages(cu, 1, pages)
}

// removePage splices an empty page out of the chain and the router; the
// reindex pass promotes the next page of an equal-start run into the
// router if the removed page headed one.
func (t *Tree[K, V]) removePage(cu cursor[K, V]) {
	t.reindexSplice(cu, nil)
	t.splicePages(cu, 1, nil)
}

// mergeSorted merges two sorted key runs (with parallel values) into fresh
// slices; equal keys keep data-before-buffer order.
func mergeSorted[K num.Key, V any](aK []K, aV []V, bK []K, bV []V) ([]K, []V) {
	outK := make([]K, 0, len(aK)+len(bK))
	outV := make([]V, 0, len(aK)+len(bK))
	i, j := 0, 0
	for i < len(aK) && j < len(bK) {
		if aK[i] <= bK[j] {
			outK = append(outK, aK[i])
			outV = append(outV, aV[i])
			i++
		} else {
			outK = append(outK, bK[j])
			outV = append(outV, bV[j])
			j++
		}
	}
	outK = append(outK, aK[i:]...)
	outV = append(outV, aV[i:]...)
	outK = append(outK, bK[j:]...)
	outV = append(outV, bV[j:]...)
	return outK, outV
}

// insertAt inserts v at index i, shifting the tail right.
func insertAt[T any](s []T, i int, v T) []T {
	var zero T
	s = append(s, zero)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// removeAt removes the element at index i, shifting the tail left.
func removeAt[T any](s []T, i int) []T {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}
