package core

import (
	"math/rand"
	"sort"
	"testing"
)

// TestCompactOpsSpill pins CompactOps' tombstone-spill arithmetic with
// hand-checked cases: upper-layer tombstones consume base survivors first
// and only the excess drops the lower layer's oldest adds, the beneath
// count is consulted only for ambiguous keys, and fully cancelled entries
// vanish from the output.
func TestCompactOpsSpill(t *testing.T) {
	count := func(n int) func(uint64, func(uint64) bool) {
		return func(k uint64, fn func(uint64) bool) {
			for i := 0; i < n; i++ {
				if !fn(0) {
					return
				}
			}
		}
	}
	type opcase struct {
		name         string
		lower, upper []MergeOp[uint64, uint64]
		base         int // base matches beneath the lower layer (all keys)
		want         []MergeOp[uint64, uint64]
	}
	cases := []opcase{
		{
			name:  "spill-into-lower-adds",
			lower: []MergeOp[uint64, uint64]{{Key: 7, Adds: []uint64{100, 101}, Dels: 1}},
			upper: []MergeOp[uint64, uint64]{{Key: 7, Dels: 3}},
			base:  2, // one base survivor beneath upper: consumed=1, excess=2
			want:  []MergeOp[uint64, uint64]{{Key: 7, Adds: []uint64{}, Dels: 2}},
		},
		{
			name:  "all-on-base",
			lower: []MergeOp[uint64, uint64]{{Key: 7, Adds: []uint64{100}, Dels: 1}},
			upper: []MergeOp[uint64, uint64]{{Key: 7, Dels: 2}},
			base:  5, // four base survivors: both upper tombstones consume base
			want:  []MergeOp[uint64, uint64]{{Key: 7, Adds: []uint64{100}, Dels: 3}},
		},
		{
			name:  "full-cancellation-drops-entry",
			lower: []MergeOp[uint64, uint64]{{Key: 7, Adds: []uint64{100}}},
			upper: []MergeOp[uint64, uint64]{{Key: 7, Dels: 1}},
			base:  0, // no base: the tombstone eats the pending add entirely
			want:  nil,
		},
		{
			name:  "disjoint-passthrough-and-append",
			lower: []MergeOp[uint64, uint64]{{Key: 3, Adds: []uint64{30}}, {Key: 7, Adds: []uint64{70}}},
			upper: []MergeOp[uint64, uint64]{{Key: 5, Dels: 1}, {Key: 7, Adds: []uint64{71}}},
			base:  1,
			want: []MergeOp[uint64, uint64]{
				{Key: 3, Adds: []uint64{30}},
				{Key: 5, Dels: 1},
				{Key: 7, Adds: []uint64{70, 71}},
			},
		},
	}
	for _, tc := range cases {
		got := CompactOps(tc.lower, tc.upper, count(tc.base))
		if len(got) != len(tc.want) {
			t.Fatalf("%s: %d ops, want %d (%v)", tc.name, len(got), len(tc.want), got)
		}
		for i, op := range got {
			w := tc.want[i]
			if op.Key != w.Key || op.Dels != w.Dels || len(op.Adds) != len(w.Adds) {
				t.Fatalf("%s: op %d = %+v, want %+v", tc.name, i, op, w)
			}
			for j := range w.Adds {
				if op.Adds[j] != w.Adds[j] {
					t.Fatalf("%s: op %d adds = %v, want %v", tc.name, i, op.Adds, w.Adds)
				}
			}
		}
	}

	// The beneath count is consulted only when upper tombstones could
	// spill into lower adds — never for add-only uppers or add-free
	// lowers, where the composition is pure arithmetic.
	calls := 0
	counting := func(k uint64, fn func(uint64) bool) { calls++ }
	CompactOps(
		[]MergeOp[uint64, uint64]{{Key: 1, Dels: 2}, {Key: 2, Adds: []uint64{20}}},
		[]MergeOp[uint64, uint64]{{Key: 1, Dels: 1}, {Key: 2, Adds: []uint64{21}}},
		counting,
	)
	if calls != 0 {
		t.Fatalf("countBeneath consulted %d times for unambiguous keys", calls)
	}
}

// compactGenOps builds a random valid delta layer against the given
// content stream: per-key tombstone counts never exceed the stream's live
// matches, the invariant the write path maintains for every layer.
func compactGenOps(rng *rand.Rand, stream []pair, maxKey uint64) []MergeOp[uint64, uint64] {
	opKeys := map[uint64]bool{}
	var ops []MergeOp[uint64, uint64]
	for len(ops) < 1+rng.Intn(40) {
		ok := uint64(rng.Intn(int(maxKey) + 10))
		if opKeys[ok] {
			continue
		}
		opKeys[ok] = true
		op := MergeOp[uint64, uint64]{Key: ok}
		for a := rng.Intn(3); a > 0; a-- {
			op.Adds = append(op.Adds, 3_000_000+rng.Uint64()%1_000_000)
		}
		live := 0
		for _, p := range stream {
			if p.k == ok {
				live++
			}
		}
		if live > 0 && rng.Intn(2) == 0 {
			op.Dels = 1 + rng.Intn(live)
		}
		if len(op.Adds) == 0 && op.Dels == 0 {
			op.Adds = []uint64{999}
		}
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].Key < ops[j].Key })
	return ops
}

// TestCompactOpsRandomized cross-checks the two ways of folding a layer
// stack: MergeCOW(CompactOps(lower, upper)) must publish exactly the same
// content as the sequential MergeCOW2(lower, upper), for layers generated
// with the write path's relativity rule (upper counts relative to the
// view after lower). It also pins MergeCOWN against the sequential fold
// at depth three and its receiver-identity degenerate cases.
func TestCompactOpsRandomized(t *testing.T) {
	for _, rk := range routerKinds {
		t.Run(rk.name, func(t *testing.T) { testCompactOpsRandomized(t, rk.kind) })
	}
}

func testCompactOpsRandomized(t *testing.T, kind RouterKind) {
	rng := rand.New(rand.NewSource(977))
	for trial := 0; trial < 30; trial++ {
		n := 200 + rng.Intn(1500)
		keys := make([]uint64, n)
		k := uint64(0)
		for i := range keys {
			if rng.Intn(3) > 0 {
				k += uint64(rng.Intn(4))
			}
			keys[i] = k
		}
		base := buildCOWBase(t, keys, Options{Error: 8 + rng.Intn(24), BufferSize: 4, Router: kind})
		before := contents(base)

		lower := compactGenOps(rng, before, k)
		middle := applyOpsModel(before, lower)
		upper := compactGenOps(rng, middle, k)
		want := contents(base.MergeCOW2(lower, upper))

		compacted := CompactOps(lower, upper, base.Each)
		got := contents(base.MergeCOW(compacted))
		if len(got) != len(want) {
			t.Fatalf("trial %d: compacted fold %d elements, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: element %d = %v, want %v", trial, i, got[i], want[i])
			}
		}

		// Depth-3 stack: MergeCOWN must equal the sequential fold, and
		// compacting the bottom pair first must not change the outcome.
		top := compactGenOps(rng, applyOpsModel(middle, upper), k)
		wantN := contents(base.MergeCOW(lower).MergeCOW(upper).MergeCOW(top))
		gotN := contents(base.MergeCOWN(lower, upper, top))
		gotC := contents(base.MergeCOWN(compacted, top))
		if len(gotN) != len(wantN) || len(gotC) != len(wantN) {
			t.Fatalf("trial %d: depth-3 folds %d/%d elements, want %d", trial, len(gotN), len(gotC), len(wantN))
		}
		for i := range wantN {
			if gotN[i] != wantN[i] {
				t.Fatalf("trial %d: MergeCOWN element %d = %v, want %v", trial, i, gotN[i], wantN[i])
			}
			if gotC[i] != wantN[i] {
				t.Fatalf("trial %d: compact-then-fold element %d = %v, want %v", trial, i, gotC[i], wantN[i])
			}
		}
		if base.MergeCOWN() != base || base.MergeCOWN(nil, nil, nil) != base {
			t.Fatalf("trial %d: empty MergeCOWN did not return the receiver", trial)
		}
	}
}
