// Self-tuning: the live feedback loop that turns the paper's Section 6
// cost model into a runtime knob. Pages carry sampled read/write load
// counters (see page.reads/page.writes); Retune folds those counters into
// a per-region layout plan — tight ε where the sampled traffic
// concentrates, loose ε where regions idle and index memory is better
// reclaimed, with a matching per-region chunk-size target — and stores it
// in the tuneState every tree of a MergeCOW lineage shares.
// The plan is applied lazily: nothing is rebuilt when a plan changes;
// MergeCOW and merge simply segment the regions they were going to
// rebuild anyway under the region's targets, recording the bound used on
// each page (page.werr). CalibrateRouter replaces the hand-calibrated
// router-maintenance crossover with a measured one.
package core

import (
	"math"
	"sync/atomic"
	"time"

	"fitingtree/internal/btree"
	"fitingtree/internal/costmodel"
	"fitingtree/internal/num"
)

const (
	// readSamplePages gates the lookup-side load counters: only pages
	// whose identity is 0 mod readSamplePages count their lookups (scaled
	// back up), so 63 of 64 pages never touch shared memory on the read
	// hot path. Must be a power of two.
	readSamplePages = 64

	// underfullDiv sets the under-full threshold: a chunk with fewer than
	// chunkTarget/underfullDiv pages is absorbed into the next fold that
	// rebuilds an adjacent region, bounding the degenerate chunks a
	// delete-heavy run can accumulate.
	underfullDiv = 4

	// tuneRegions is how many equal-element-mass regions Retune carves
	// the key space into.
	tuneRegions = 8

	// chunkTargetHot and chunkTargetCold are the per-region chunk-size
	// targets for write-dominated and read-dominated regions; mixed
	// regions keep chunkTarget. Both stay within chunkMax so the splice
	// invariants are untouched.
	chunkTargetHot  = 24
	chunkTargetCold = 96

	// routerRatioDefault is the uncalibrated router-maintenance crossover
	// (the historical hand-calibrated constant): incremental maintenance
	// wins while dirty*ratio < pages. CalibrateRouter replaces it with a
	// measured edit-cost / bulk-load-cost ratio, clamped to
	// [routerRatioMin, routerRatioMax].
	routerRatioDefault = 32
	routerRatioMin     = 4
	routerRatioMax     = 512

	// tunerCacheMissNs is the cache-miss constant fed to the per-region
	// cost models; the paper's 50ns stands in so Retune never pays a
	// measurement (the scoring below compares candidates, not SLAs).
	tunerCacheMissNs = 50

	// tunerSizeNsPerByte prices a byte of predicted index size in the
	// region score's nanosecond units. It is the tension that keeps the
	// model from degenerating: both predicted lookup and insert latency
	// improve as ε shrinks (smaller search windows, smaller merge
	// rewrites), so without a size term every loaded region would pick the
	// ladder floor and the index would grow without bound. The price is a
	// handful of cache misses per byte rather than one: an index byte is
	// not a one-shot cost — it stays resident, evicting data bytes for
	// the plan's whole lifetime — and the model's window-search term
	// (binary search over the full ε window) overstates what loose bounds
	// really cost a lookup here, since pages interpolate internally and
	// land within a few cache lines of the key on data far smoother than
	// the worst case ε admits. Under this price a region must sample
	// traffic comparable to several visits per predicted index byte each
	// tuning interval before doubling its segment count — regions where
	// the measured traffic concentrates hold tight bounds, idle and
	// write-dominated regions drift loose and return their index memory.
	tunerSizeNsPerByte = 8 * tunerCacheMissNs

	// modelFill is the inner-tree fill the per-region models assume (the
	// paper's evaluation setup).
	modelFill = 0.5

	calibrateMinEntries = 512
	calibrateMinTime    = time.Millisecond
	calibrateMaxEdits   = 4096
)

// tuneState is the self-tuning state of one tree lineage. MergeCOW carries
// the pointer into every tree it publishes, so counters, plan, and
// calibration survive publications without copying.
type tuneState[K num.Key] struct {
	routerRatio atomic.Int64                  // measured edit/bulk per-entry cost ratio; 0 = uncalibrated
	calibrated  atomic.Bool                   // one-shot latch for EnsureCalibrated
	plan        atomic.Pointer[regionPlan[K]] // current per-region targets; nil = untuned
}

// planOf returns the current region plan; nil when untuned or when the
// tree predates the tuning state.
func (ts *tuneState[K]) planOf() *regionPlan[K] {
	if ts == nil {
		return nil
	}
	return ts.plan.Load()
}

// ratioOr returns the measured router crossover ratio, or def while
// uncalibrated.
func (ts *tuneState[K]) ratioOr(def int) int {
	if ts == nil {
		return def
	}
	if r := ts.routerRatio.Load(); r > 0 {
		return int(r)
	}
	return def
}

// RegionStat describes one tuner region: its layout targets and the load
// sample that produced them. Exposed through Stats so tools and tests can
// observe tuner decisions.
type RegionStat struct {
	Epsilon     int  // target error threshold E for the region
	ChunkTarget int  // target pages per chunk for the region
	WriteHot    bool // writes dominate the region's sampled load
	Pages       int  // pages in the region when the plan was made
	Elements    int  // elements in the region when the plan was made
	Reads       uint64
	Writes      uint64
}

// RegionTarget is a region's start key plus its targets; regions partition
// the key space, the first one extending down to -inf.
type RegionTarget[K num.Key] struct {
	Start K
	RegionStat
}

// regionPlan is an immutable per-region layout plan, replaced wholesale by
// Retune and read lock-free by rebuild paths.
type regionPlan[K num.Key] struct {
	targets []RegionTarget[K] // ascending, strictly increasing Start
}

// regionOf returns the index of the region holding k (floor; keys below
// the first start map to region 0).
func (p *regionPlan[K]) regionOf(k K) int {
	lo, hi := 0, len(p.targets)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.targets[mid].Start <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// chunkTargetFor returns the chunk-size target of the region holding k.
func (p *regionPlan[K]) chunkTargetFor(k K) int {
	if len(p.targets) == 0 {
		return chunkTarget
	}
	return p.targets[p.regionOf(k)].ChunkTarget
}

// segErrAt returns region i's segmentation error bound after reserving
// buffer room (the per-region analogue of Options.segError).
func (p *regionPlan[K]) segErrAt(i, bufferSize int) int {
	return num.MaxInt(1, p.targets[i].Epsilon-bufferSize)
}

// segErrFor returns the segmentation error bound to build a page starting
// at k: the region target when a plan exists, the global default
// otherwise.
func (t *Tree[K, V]) segErrFor(k K) int {
	plan := t.tune.planOf()
	if plan == nil || len(plan.targets) == 0 {
		return t.opts.segError()
	}
	return plan.segErrAt(plan.regionOf(k), t.opts.BufferSize)
}

// underfull reports whether a chunk has decayed below the re-merge
// threshold.
func underfull[K num.Key, V any](c *chunk[K, V]) bool {
	return len(c.pages) < chunkTarget/underfullDiv
}

// carryLoad seeds the load counters of freshly rebuilt pages from the
// region they replace: half the accumulated totals (exponential decay, so
// stale traffic fades across rebuilds) plus the op count of the batch
// that triggered the rebuild, spread evenly. Rebuilt pages register at
// least one write event, so write-hot regions are visible to Retune even
// before counters accumulate.
func carryLoad[K num.Key, V any](srcReads, srcWrites uint64, ops int, rebuilt []*page[K, V]) {
	if len(rebuilt) == 0 {
		return
	}
	n := uint64(len(rebuilt))
	r := srcReads / 2 / n
	w := (srcWrites/2 + uint64(ops)) / n
	if w == 0 {
		w = 1
	}
	for _, p := range rebuilt {
		atomic.StoreUint64(&p.reads, r)
		atomic.StoreUint64(&p.writes, w)
	}
}

// PageErrorBounds returns every page's recorded error bound (page.werr)
// in chain order — the persisted quantity recovery must reproduce for a
// tuned layout to survive a restart. Observability for tools and tests.
func (t *Tree[K, V]) PageErrorBounds() []int {
	out := make([]int, 0, t.pageCount())
	for _, c := range t.chunks {
		for _, p := range c.pages {
			out = append(out, p.werr)
		}
	}
	return out
}

// ChunkLoad is one chunk's position and sampled load, the feed for
// skew-aware shard fence placement.
type ChunkLoad[K num.Key] struct {
	Start    K
	Pages    int
	Elements int
	Reads    uint64
	Writes   uint64
}

// ChunkLoads returns every chunk's load counters in chain order.
func (t *Tree[K, V]) ChunkLoads() []ChunkLoad[K] {
	loads := make([]ChunkLoad[K], 0, len(t.chunks))
	for _, c := range t.chunks {
		l := ChunkLoad[K]{Start: c.start(), Pages: len(c.pages)}
		for _, p := range c.pages {
			l.Elements += len(p.keys) - p.deletes + len(p.bufKeys)
			l.Reads += atomic.LoadUint64(&p.reads)
			l.Writes += atomic.LoadUint64(&p.writes)
		}
		loads = append(loads, l)
	}
	return loads
}

// Retune derives a fresh per-region layout plan from the accumulated load
// counters and publishes it to the lineage's tuning state. Nothing is
// rebuilt here: the plan takes effect lazily, as MergeCOW/merge rebuild
// dirty regions. Safe to call on a published (immutable) tree while
// readers and a concurrent MergeCOW run; returns the new plan's regions,
// or nil when the tree is empty or carries no tuning state.
func (t *Tree[K, V]) Retune() []RegionStat {
	if t.tune == nil || len(t.chunks) == 0 {
		return nil
	}
	type load struct {
		start         K
		pages, elems  int
		werrSum       int
		reads, writes uint64
	}
	loads := make([]load, 0, len(t.chunks))
	total := 0
	for _, c := range t.chunks {
		l := load{start: c.start()}
		for _, p := range c.pages {
			l.pages++
			l.elems += len(p.keys) - p.deletes + len(p.bufKeys)
			l.werrSum += p.werr
			l.reads += atomic.LoadUint64(&p.reads)
			l.writes += atomic.LoadUint64(&p.writes)
		}
		loads = append(loads, l)
		total += l.elems
	}
	// Group adjacent chunks into ~tuneRegions regions of equal element
	// mass, boundaries on chunk starts; region starts must strictly
	// ascend for the floor lookup, so a chunk repeating the previous
	// region's start key always merges into it.
	share := total/tuneRegions + 1
	regions := make([]load, 1, tuneRegions+1)
	regions[0] = loads[0]
	for _, l := range loads[1:] {
		r := &regions[len(regions)-1]
		if r.elems >= share && l.start > r.start {
			regions = append(regions, l)
			continue
		}
		r.pages += l.pages
		r.elems += l.elems
		r.werrSum += l.werrSum
		r.reads += l.reads
		r.writes += l.writes
	}
	cands := epsilonLadder(t.opts)
	targets := make([]RegionTarget[K], 0, len(regions))
	stats := make([]RegionStat, 0, len(regions))
	for _, r := range regions {
		st := RegionStat{
			Epsilon:     t.opts.Error,
			ChunkTarget: chunkTarget,
			Pages:       r.pages,
			Elements:    r.elems,
			Reads:       r.reads,
			Writes:      r.writes,
		}
		if r.reads+r.writes > 0 {
			st.Epsilon = pickEpsilon(t.opts, cands, r.pages, r.werrSum, r.elems, r.reads, r.writes)
			wf := float64(r.writes) / float64(r.reads+r.writes)
			st.WriteHot = wf >= 0.5
			switch {
			case wf >= 0.75:
				st.ChunkTarget = chunkTargetHot
			case wf <= 0.25:
				st.ChunkTarget = chunkTargetCold
			}
		}
		targets = append(targets, RegionTarget[K]{Start: r.start, RegionStat: st})
		stats = append(stats, st)
	}
	t.tune.plan.Store(&regionPlan[K]{targets: targets})
	return stats
}

// epsilonLadder returns the candidate error thresholds Retune scores: a
// geometric ladder around the configured Error, floored so every
// candidate leaves the insert buffer at least one unit of segmentation
// error.
func epsilonLadder(o Options) []int {
	minE := num.MaxInt(1, o.BufferSize+1)
	raw := [...]int{o.Error / 8, o.Error / 4, o.Error / 2, o.Error, o.Error * 2, o.Error * 4, o.Error * 8}
	out := make([]int, 0, len(raw))
	for _, e := range raw {
		if e < minE {
			e = minE
		}
		if n := len(out); n == 0 || out[n-1] < e {
			out = append(out, e)
		}
	}
	return out
}

// pickEpsilon scores the candidate thresholds for one region with the
// Section 6 cost model and returns the argmin of the load-weighted sum of
// predicted lookup and insert latency plus the priced index size
// (tunerSizeNsPerByte). The model's segment-count samples are synthesized
// from the region's current layout (segments scale inversely with the
// segmentation error), so no re-segmentation runs.
func pickEpsilon(o Options, cands []int, pages, werrSum, elems int, reads, writes uint64) int {
	if pages == 0 {
		return o.Error
	}
	segErrNow := num.MaxInt(1, werrSum/pages)
	segs := make([]int, len(cands))
	for i, e := range cands {
		se := num.MaxInt(1, e-o.BufferSize)
		segs[i] = num.MaxInt(1, pages*segErrNow/se)
	}
	frac := float64(o.BufferSize) / float64(o.Error)
	m, err := costmodel.NewFromSamples(cands, segs, tunerCacheMissNs, o.Fanout, modelFill, frac)
	if err != nil {
		return o.Error
	}
	m.Elements = elems
	rw, ww := float64(reads)+1, float64(writes)+1
	best, bestScore := o.Error, math.Inf(1)
	for _, e := range cands {
		s := rw*m.Latency(e) + ww*m.InsertLatency(e) + tunerSizeNsPerByte*float64(m.Size(e))
		if s < bestScore {
			best, bestScore = e, s
		}
	}
	return best
}

// EnsureCalibrated runs CalibrateRouter at most once per tuning lineage.
func (t *Tree[K, V]) EnsureCalibrated() {
	if t.tune == nil || !t.tune.calibrated.CompareAndSwap(false, true) {
		return
	}
	t.CalibrateRouter()
}

// CalibrateRouter measures, on this tree's actual router kind and content,
// the per-entry cost of incremental maintenance (persistent clone plus
// delete/insert round-trips) against the per-entry cost of a bulk reload,
// and stores the ratio as the lineage's router-maintenance crossover:
// MergeCOW keeps the router incrementally while dirty*ratio < pages.
// The implicit router's O(n) edits naturally measure a large ratio,
// pushing it toward bulk reloads; the B+ tree router's O(log n) edits
// measure a small one. Safe on a published tree (the clone is never
// visible). Returns the ratio in effect afterwards; trees too small to
// time meaningfully keep the current setting.
func (t *Tree[K, V]) CalibrateRouter() int {
	if t.tune == nil {
		return routerRatioDefault
	}
	keys, pages := routedEntries(t.chunks)
	n := len(keys)
	if n < calibrateMinEntries {
		return t.tune.ratioOr(routerRatioDefault)
	}
	// Bulk side: rebuild a scratch router of the same kind from scratch,
	// repeated until the timing is meaningful.
	reps := 0
	start := time.Now()
	for reps == 0 || (time.Since(start) < calibrateMinTime && reps < 8) {
		var scratch router[K, V]
		if t.rim != nil {
			scratch = &implicitRouter[K, V]{}
		} else {
			scratch = &btreeRouter[K, V]{tr: btree.New[K, *page[K, V]](t.opts.Fanout)}
		}
		if err := scratch.bulkLoad(keys, pages, t.opts.FillFactor); err != nil {
			return t.tune.ratioOr(routerRatioDefault)
		}
		reps++
	}
	bulkNs := float64(time.Since(start).Nanoseconds()) / float64(reps*n)
	// Edit side: a persistent clone of the live router, edited in place
	// the way retireDirtyEntries/insertRebuiltEntries would.
	var cl router[K, V]
	if t.rim != nil {
		cl = t.rim.clone()
	} else {
		cl = &btreeRouter[K, V]{tr: t.rbt.CloneCOW()}
	}
	edits := 0
	start = time.Now()
	for i := 0; edits < calibrateMaxEdits; i++ {
		j := (i*7919 + 13) % n
		cl.delete(keys[j])
		cl.insert(keys[j], pages[j])
		edits++
		if edits&63 == 0 && time.Since(start) >= calibrateMinTime {
			break
		}
	}
	editNs := float64(time.Since(start).Nanoseconds()) / float64(edits)
	ratio := routerRatioDefault
	if bulkNs > 0 {
		ratio = int(editNs / bulkNs)
	}
	ratio = num.ClampInt(ratio, routerRatioMin, routerRatioMax)
	t.tune.routerRatio.Store(int64(ratio))
	t.tune.calibrated.Store(true) // an explicit run satisfies EnsureCalibrated
	return ratio
}
