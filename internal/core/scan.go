package core

import (
	"fmt"
	"time"

	"fitingtree/internal/btree"
	"fitingtree/internal/num"
)

// lastKey returns the largest key present in the page (data or buffer).
// Pages are never empty.
func (p *page[K, V]) lastKey() K {
	if len(p.bufKeys) == 0 {
		return p.keys[len(p.keys)-1]
	}
	if len(p.keys) == 0 {
		return p.bufKeys[len(p.bufKeys)-1]
	}
	if b := p.bufKeys[len(p.bufKeys)-1]; b > p.keys[len(p.keys)-1] {
		return b
	}
	return p.keys[len(p.keys)-1]
}

// firstKey returns the smallest key present in the page (data or buffer).
func (p *page[K, V]) firstKey() K {
	if len(p.bufKeys) == 0 {
		return p.keys[0]
	}
	if len(p.keys) == 0 {
		return p.bufKeys[0]
	}
	if b := p.bufKeys[0]; b < p.keys[0] {
		return b
	}
	return p.keys[0]
}

// ascendPage merges the page's data and buffer in key order, calling fn for
// each pair with lo <= key <= hi, starting from the first key >= lo. It
// reports false if fn requested a stop.
func (p *page[K, V]) ascendPage(lo, hi K, fn func(k K, v V) bool) bool {
	i, _ := findKey(p.keys, lo)
	j, _ := findKey(p.bufKeys, lo)
	for i < len(p.keys) || j < len(p.bufKeys) {
		useData := j >= len(p.bufKeys) ||
			(i < len(p.keys) && p.keys[i] <= p.bufKeys[j])
		var k K
		var v V
		if useData {
			k, v = p.keys[i], p.vals[i]
		} else {
			k, v = p.bufKeys[j], p.bufVals[j]
		}
		if k > hi {
			return false
		}
		if !fn(k, v) {
			return false
		}
		if useData {
			i++
		} else {
			j++
		}
	}
	return true
}

// AscendRange calls fn for every element with lo <= key <= hi in ascending
// key order, stopping early if fn returns false. For a clustered index this
// is the paper's range query: one point lookup for the range start followed
// by a sequential scan (Section 4.2).
func (t *Tree[K, V]) AscendRange(lo, hi K, fn func(k K, v V) bool) {
	if hi < lo {
		return
	}
	// Keys equal to lo can spill into preceding pages' tails when
	// duplicate runs cross page boundaries, so start at the first
	// candidate page.
	cu, ok := t.firstCandidate(lo)
	if !ok {
		return
	}
	for {
		p := t.pageOf(cu)
		if p.firstKey() > hi {
			return
		}
		if !p.ascendPage(lo, hi, fn) {
			return
		}
		nx, has := t.next(cu)
		if !has {
			return
		}
		cu = nx
	}
}

// Ascend calls fn for every element in ascending key order, stopping early
// if fn returns false.
func (t *Tree[K, V]) Ascend(fn func(k K, v V) bool) {
	for _, c := range t.chunks {
		for _, p := range c.pages {
			if !p.ascendPage(p.firstKey(), p.lastKey(), fn) {
				return
			}
		}
	}
}

// descendPage merges the page's data and buffer in reverse key order,
// calling fn for each pair with lo <= key <= hi, starting from the last
// key <= hi. It reports false if fn requested a stop.
func (p *page[K, V]) descendPage(lo, hi K, fn func(k K, v V) bool) bool {
	i := upperBound(p.keys, hi) - 1
	j := upperBound(p.bufKeys, hi) - 1
	for i >= 0 || j >= 0 {
		useData := j < 0 || (i >= 0 && p.keys[i] >= p.bufKeys[j])
		var k K
		var v V
		if useData {
			k, v = p.keys[i], p.vals[i]
		} else {
			k, v = p.bufKeys[j], p.bufVals[j]
		}
		if k < lo {
			return false
		}
		if !fn(k, v) {
			return false
		}
		if useData {
			i--
		} else {
			j--
		}
	}
	return true
}

// upperBound returns the index of the first key > k in a sorted slice.
func upperBound[K num.Key](keys []K, k K) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// DescendRange calls fn for every element with lo <= key <= hi in
// descending key order, stopping early if fn returns false (the reverse
// scan an ORDER BY ... DESC query plan wants).
func (t *Tree[K, V]) DescendRange(hi, lo K, fn func(k K, v V) bool) {
	if hi < lo {
		return
	}
	cu, ok := t.locateCursor(hi)
	if !ok {
		return
	}
	// The page routed for hi is the last page whose routing key <= hi,
	// but duplicate-run chains can continue past it with the same start.
	for {
		nx, has := t.next(cu)
		if !has || t.pageOf(nx).start() > hi {
			break
		}
		cu = nx
	}
	for {
		p := t.pageOf(cu)
		if p.lastKey() < lo {
			return
		}
		if !p.descendPage(lo, hi, fn) {
			return
		}
		pv, has := t.prev(cu)
		if !has {
			return
		}
		cu = pv
	}
}

// Min returns the smallest key and one of its values.
func (t *Tree[K, V]) Min() (K, V, bool) {
	cu, ok := t.first()
	if !ok {
		var zk K
		var zv V
		return zk, zv, false
	}
	p := t.pageOf(cu)
	k := p.firstKey()
	v, _ := t.searchPage(p, k)
	return k, v, true
}

// Max returns the largest key and one of its values. The chain gives the
// last page in O(1); no router descent is needed.
func (t *Tree[K, V]) Max() (K, V, bool) {
	cu, ok := t.last()
	if !ok {
		var zk K
		var zv V
		return zk, zv, false
	}
	p := t.pageOf(cu)
	k := p.lastKey()
	v, _ := t.searchPage(p, k)
	return k, v, true
}

// LookupBreakdown is Lookup instrumented with wall-clock timing of its two
// phases: the inner-tree search for the owning segment and the bounded
// search within the page. It drives the Figure 13 experiment.
func (t *Tree[K, V]) LookupBreakdown(k K) (v V, ok bool, treeNs, pageNs int64) {
	start := time.Now()
	p, found := t.locatePage(k)
	treeNs = time.Since(start).Nanoseconds()
	if !found {
		return v, false, treeNs, 0
	}
	start = time.Now()
	if v, ok = t.searchPage(p, k); !ok {
		v, ok = t.searchFrom(t.pageCursor(p), k)
	}
	pageNs = time.Since(start).Nanoseconds()
	return v, ok, treeNs, pageNs
}

// Stats describes the size and shape of a FITing-Tree.
type Stats struct {
	Elements int // total stored elements, including buffered ones
	Pages    int // number of variable-sized table pages (= segments)
	Chunks   int // number of chain chunks the pages are grouped into
	Buffered int // elements currently in insert buffers
	Deletes  int // in-place deletions pending re-segmentation
	// FrozenLayers is the current depth of a concurrency facade's frozen
	// merge ladder (0 for a bare tree or a facade with no flush in
	// flight); LayerPending holds each frozen layer's pending op count
	// (inserts + tombstones), bottom — next to fold into the tree — to
	// top. Both are facade-level: Tree.Stats leaves them zero.
	FrozenLayers int
	LayerPending []int
	Inner        btree.Stats
	Height       int   // inner tree height
	IndexSize    int64 // bytes: inner tree + 24 B/segment metadata (paper's accounting)
	DataSize     int64 // bytes of table data incl. buffers (not part of the index)

	// Self-tuning observability (see tuner.go). Regions is the current
	// per-region plan — targets plus the load sample that produced them —
	// empty until the first Retune. UnderfullChunks counts chunks below
	// the re-merge threshold (fewer than chunkTarget/underfullDiv pages);
	// fold-time absorption keeps it bounded under delete-heavy load.
	Regions         []RegionStat
	UnderfullChunks int
}

// Stats traverses the tree and returns its statistics. The IndexSize
// accounting matches the paper's SIZE(e) cost model: the inner tree's keys
// and pointers plus 24 bytes of metadata (start key, slope, page address)
// per segment.
func (t *Tree[K, V]) Stats() Stats {
	s := Stats{Elements: t.size, Chunks: len(t.chunks)}
	for _, c := range t.chunks {
		if underfull(c) {
			s.UnderfullChunks++
		}
		for _, p := range c.pages {
			s.Pages++
			s.Buffered += len(p.bufKeys)
			s.Deletes += p.deletes
			s.DataSize += int64(len(p.keys)+len(p.bufKeys)) * 16
		}
	}
	s.Inner = t.idx.stats()
	s.Height = s.Inner.Height
	s.IndexSize = s.Inner.SizeBytes + int64(s.Pages)*24
	if plan := t.tune.planOf(); plan != nil {
		s.Regions = make([]RegionStat, len(plan.targets))
		for i, rt := range plan.targets {
			s.Regions[i] = rt.RegionStat
		}
	}
	return s
}

// CheckInvariants validates the tree's structural invariants; tests drive
// random workloads through the tree and call this afterwards.
func (t *Tree[K, V]) CheckInvariants() error {
	if err := t.idx.check(); err != nil {
		return fmt.Errorf("fitingtree: inner tree: %w", err)
	}
	count := 0
	routed := 0
	var prev *page[K, V]
	for ci, c := range t.chunks {
		if c.id == 0 {
			return fmt.Errorf("fitingtree: chunk %d has no identity", ci)
		}
		if len(c.pages) == 0 {
			return fmt.Errorf("fitingtree: empty chunk at %d", ci)
		}
		if len(c.pages) > chunkMax {
			return fmt.Errorf("fitingtree: chunk %d holds %d pages, max %d", ci, len(c.pages), chunkMax)
		}
		for pi, p := range c.pages {
			if p.id == 0 {
				return fmt.Errorf("fitingtree: page %v has no identity", p.start())
			}
			if len(p.keys) == 0 && len(p.bufKeys) == 0 {
				return fmt.Errorf("fitingtree: empty page at %v", p.start())
			}
			for i := 1; i < len(p.keys); i++ {
				if p.keys[i] < p.keys[i-1] {
					return fmt.Errorf("fitingtree: page data out of order at %v", p.start())
				}
			}
			for i := 1; i < len(p.bufKeys); i++ {
				if p.bufKeys[i] < p.bufKeys[i-1] {
					return fmt.Errorf("fitingtree: page buffer out of order at %v", p.start())
				}
			}
			if len(p.keys) != len(p.vals) || len(p.bufKeys) != len(p.bufVals) {
				return fmt.Errorf("fitingtree: key/value length mismatch at %v", p.start())
			}
			// String pages must carry an aligned prefix sidecar: the
			// window search probes it in place of the key array.
			if ks, isStr := any(p.keys).([]string); isStr && len(ks) > 0 {
				if len(p.pref) != len(ks) {
					return fmt.Errorf("fitingtree: prefix sidecar length %d, %d keys at %v", len(p.pref), len(ks), p.start())
				}
				for i, s := range ks {
					if p.pref[i] != num.StringPrefix(s) {
						return fmt.Errorf("fitingtree: stale prefix sidecar at %v offset %d", p.start(), i)
					}
					// fixed8 may be conservatively false (it is set at build
					// time), but never true over a key of another width: the
					// fast path would misread the sidecar as the key column.
					if p.fixed8 && len(s) != 8 {
						return fmt.Errorf("fitingtree: fixed-width flag over %d-byte key at %v", len(s), p.start())
					}
				}
			}
			if len(p.bufKeys) > num.MaxInt(1, t.opts.BufferSize) {
				return fmt.Errorf("fitingtree: buffer overflow (%d) at %v", len(p.bufKeys), p.start())
			}
			// Error bound: every data element within the page's build-time
			// bound + pending deletes of its predicted position. The bound
			// is per page — regions retuned to different ε coexist — and
			// must be recorded, or the lookup window would be undefined.
			if p.werr < 1 {
				return fmt.Errorf("fitingtree: page %v carries no error bound", p.start())
			}
			for i := range p.keys {
				pred := p.seg.Predict(p.keys[i])
				dev := pred - float64(i)
				if dev < 0 {
					dev = -dev
				}
				if dev > float64(p.werr+p.deletes)+1e-6 {
					return fmt.Errorf("fitingtree: error bound violated at page %v offset %d: |%.2f| > %d",
						p.start(), i, dev, p.werr+p.deletes)
				}
			}
			// Chain order and routing.
			if prev != nil {
				if p.start() < prev.start() {
					return fmt.Errorf("fitingtree: page starts out of order: %v after %v", p.start(), prev.start())
				}
				if prev.lastKey() > p.firstKey() {
					return fmt.Errorf("fitingtree: overlapping pages around %v", p.start())
				}
				// Stronger separation: a page's content never passes the
				// next page's routing key (equality is the duplicate-run
				// spill). MergeCOW relies on this to bound a dirty region's
				// content by the start key of the first untouched page
				// after it.
				if prev.lastKey() > p.start() {
					return fmt.Errorf("fitingtree: page before %v holds keys past that start", p.start())
				}
			}
			if prev == nil || prev.start() != p.start() {
				routed++
				got, ok := t.idx.get(p.start())
				if !ok || got != p {
					return fmt.Errorf("fitingtree: router misroutes page %v (chunk %d, index %d)",
						p.start(), ci, pi)
				}
			}
			count += len(p.keys) + len(p.bufKeys)
			prev = p
		}
	}
	if count != t.size {
		return fmt.Errorf("fitingtree: size %d but %d elements found", t.size, count)
	}
	if routed != t.idx.len() {
		return fmt.Errorf("fitingtree: %d routed pages but router has %d entries", routed, t.idx.len())
	}
	return nil
}
