package core

import (
	"fmt"

	"fitingtree/internal/num"
	"fitingtree/internal/segment"
)

// MergeOp describes the pending writes for one key in a copy-on-write
// merge. Adds holds values to insert under Key, in insertion order. Dels
// tombstones the first Dels live matches for Key in scan order — page
// order along the chain, data before buffer within a page — the same
// "first N matches" semantics the Optimistic facade's delta applies to
// reads (see Optimistic.Delete).
type MergeOp[K num.Key, V any] struct {
	Key  K
	Adds []V
	Dels int
}

// MergeCOW folds ops — which must be sorted by strictly ascending Key —
// into the tree copy-on-write: it returns a new tree in which only the
// pages some op's key falls into are rebuilt (merged with the pending
// writes and re-segmented under the same error bound) while every
// untouched page is shared, by reference, with the receiver. The receiver
// is not modified and both trees remain fully readable afterwards; shared
// pages must not be mutated through either tree, so the result is meant
// for publication-style use (see the Optimistic facade, whose flush this
// implements).
//
// Because segments partition the key space, a batch of d pending writes
// touches at most O(d) pages regardless of tree size: the merge costs
// O(pages touched · page size + adds + segments) instead of the O(n) a
// whole-tree rebuild pays, which is what makes flushing a small delta into
// a large tree cheap.
func (t *Tree[K, V]) MergeCOW(ops []MergeOp[K, V]) *Tree[K, V] {
	for i := range ops {
		if ops[i].Key != ops[i].Key {
			panic("fitingtree: MergeCOW with NaN key")
		}
		if i > 0 && ops[i].Key <= ops[i-1].Key {
			panic("fitingtree: MergeCOW ops not sorted by strictly ascending key")
		}
	}
	nt := &Tree[K, V]{
		opts:     t.opts,
		segErr:   t.segErr,
		strat:    t.strat,
		counters: t.counters,
	}
	nt.initRouter(t.opts)

	addN := 0
	for _, op := range ops {
		addN += len(op.Adds)
	}
	deleted := 0

	if len(t.chain) == 0 {
		// Bootstrap: no pages to merge with, the content is the adds alone
		// (tombstones cannot outnumber zero base matches).
		keys := make([]K, 0, addN)
		vals := make([]V, 0, addN)
		for _, op := range ops {
			for _, v := range op.Adds {
				keys = append(keys, op.Key)
				vals = append(vals, v)
			}
		}
		nt.chain = t.buildPages(keys, vals, &nt.counters)
	} else {
		ivs := t.dirtyIntervals(ops)
		newChain := make([]*page[K, V], 0, len(t.chain)+len(ivs))
		next := 0 // next untouched page to share with the parent tree
		for _, iv := range ivs {
			newChain = append(newChain, t.chain[next:iv.lo]...)
			keys, vals, d := t.mergeRegion(iv.lo, iv.hi, ops[iv.opLo:iv.opHi])
			deleted += d
			newChain = append(newChain, t.buildPages(keys, vals, &nt.counters)...)
			next = iv.hi + 1
		}
		newChain = append(newChain, t.chain[next:]...)
		nt.chain = newChain
	}

	nt.counters.Inserts += addN
	nt.counters.Deletes += deleted
	nt.size = t.size + addN - deleted
	rk, rp := routedEntries(nt.chain)
	if err := nt.idx.bulkLoad(rk, rp, t.opts.FillFactor); err != nil {
		// Unreachable: the chain is key-ordered, so routed start keys are
		// strictly ascending.
		panic(fmt.Sprintf("fitingtree: MergeCOW router rebuild: %v", err))
	}
	return nt
}

// MergeCOW2 folds two delta layers into the tree copy-on-write: first is
// merged exactly as MergeCOW would, then second is merged into that
// result. The layering mirrors the Optimistic facade's two-delta read
// protocol (frozen delta below, active delta on top): second's tombstone
// counts are interpreted against the scan order of the tree *after* first
// is applied — surviving base matches, then first's adds in insertion
// order — which is exactly the order mergeRegion materializes, so reads
// before and after the fold observe identical content. Implemented as two
// page-granular passes rather than one composed op list: composing
// tombstone counts across layers would need per-key base-match counts (an
// extra O(ops) tree walk), while the second pass only re-touches pages
// second actually dirties. Empty layers are skipped; with both empty the
// receiver itself is returned.
func (t *Tree[K, V]) MergeCOW2(first, second []MergeOp[K, V]) *Tree[K, V] {
	nt := t
	if len(first) > 0 {
		nt = nt.MergeCOW(first)
	}
	if len(second) > 0 {
		nt = nt.MergeCOW(second)
	}
	return nt
}

// buildPages re-segments a sorted merged run into fresh pages, counting the
// work in ctr. The run's backing arrays are shared by sub-slicing, as in
// merge.
func (t *Tree[K, V]) buildPages(keys []K, vals []V, ctr *Counters) []*page[K, V] {
	if len(keys) == 0 {
		return nil
	}
	segs := segment.ShrinkingCone(keys, t.opts.segError())
	ctr.Merges++
	ctr.PagesMade += len(segs)
	pages := make([]*page[K, V], len(segs))
	for i, s := range segs {
		pages[i] = newPage(
			segment.Segment[K]{Start: s.Start, StartPos: 0, Count: s.Count, Slope: s.Slope},
			keys[s.StartPos:s.EndPos():s.EndPos()],
			vals[s.StartPos:s.EndPos():s.EndPos()],
		)
	}
	return pages
}

// cowInterval is a maximal dirty run of chain positions [lo, hi] together
// with the ops [opLo, opHi) whose keys fall into it.
type cowInterval struct {
	lo, hi     int
	opLo, opHi int
}

// dirtyIntervals maps each op to the chain positions it touches and
// coalesces overlapping ranges. An op that only inserts touches the page
// the key routes to (the page Insert would buffer it in) through the end
// of the key's equal-start run, so its adds land after every base match of
// the key; an op with tombstones additionally reaches back to the first
// candidate page, because "first Dels matches in scan order" is a property
// of the whole run, duplicate spill included.
func (t *Tree[K, V]) dirtyIntervals(ops []MergeOp[K, V]) []cowInterval {
	var ivs []cowInterval
	for oi, op := range ops {
		k := op.Key
		var lo int
		if op.Dels > 0 {
			lo = t.firstCandidate(k)
		} else {
			lo = t.insertPos(k)
		}
		// Adds sort after every base match of k, and matches can continue
		// through the key's equal-start run, so the region always extends
		// to the run's last page.
		hi := lo
		for hi+1 < len(t.chain) && t.chain[hi+1].start() <= k {
			hi++
		}
		iv := cowInterval{lo: lo, hi: hi, opLo: oi, opHi: oi + 1}
		// Coalesce with earlier intervals. Ops ascend by key so interval
		// ends ascend too, but a tombstone's first-candidate walk can reach
		// left of an earlier interval, so merging may cascade.
		for n := len(ivs); n > 0 && iv.lo <= ivs[n-1].hi; n = len(ivs) {
			prev := ivs[n-1]
			ivs = ivs[:n-1]
			if prev.lo < iv.lo {
				iv.lo = prev.lo
			}
			if prev.hi > iv.hi {
				iv.hi = prev.hi
			}
			iv.opLo = prev.opLo
		}
		ivs = append(ivs, iv)
	}
	return ivs
}

// mergeRegion merges the content of chain[lo..hi] with ops into one sorted
// run, applying tombstones as it goes, and reports how many elements the
// tombstones removed. Ties keep the read order the Optimistic facade
// promises: surviving base matches (scan order) first, then pending adds in
// insertion order.
func (t *Tree[K, V]) mergeRegion(lo, hi int, ops []MergeOp[K, V]) ([]K, []V, int) {
	total := 0
	for i := lo; i <= hi; i++ {
		total += len(t.chain[i].keys) + len(t.chain[i].bufKeys)
	}
	addN := 0
	for _, op := range ops {
		addN += len(op.Adds)
	}
	keys := make([]K, 0, total+addN)
	vals := make([]V, 0, total+addN)
	rem := make([]int, len(ops)) // tombstones left to apply, per op
	for i, op := range ops {
		rem[i] = op.Dels
	}
	deleted := 0
	oi := 0
	for pi := lo; pi <= hi; pi++ {
		p := t.chain[pi]
		i, j := 0, 0
		for i < len(p.keys) || j < len(p.bufKeys) {
			useData := j >= len(p.bufKeys) ||
				(i < len(p.keys) && p.keys[i] <= p.bufKeys[j])
			var bk K
			var bv V
			if useData {
				bk, bv = p.keys[i], p.vals[i]
				i++
			} else {
				bk, bv = p.bufKeys[j], p.bufVals[j]
				j++
			}
			// Adds sort after every base match of the same key, so flush
			// only the ops whose key the base run has moved past.
			for oi < len(ops) && ops[oi].Key < bk {
				for _, v := range ops[oi].Adds {
					keys = append(keys, ops[oi].Key)
					vals = append(vals, v)
				}
				oi++
			}
			if oi < len(ops) && ops[oi].Key == bk && rem[oi] > 0 {
				rem[oi]--
				deleted++
				continue
			}
			keys = append(keys, bk)
			vals = append(vals, bv)
		}
	}
	for ; oi < len(ops); oi++ {
		for _, v := range ops[oi].Adds {
			keys = append(keys, ops[oi].Key)
			vals = append(vals, v)
		}
	}
	return keys, vals, deleted
}
