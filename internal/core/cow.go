package core

import (
	"fmt"
	"sync/atomic"

	"fitingtree/internal/num"
	"fitingtree/internal/segment"
)

// MergeOp describes the pending writes for one key in a copy-on-write
// merge. Adds holds values to insert under Key, in insertion order.
//
// Tombstones come in two representations, of which an op uses at most
// one. Dels tombstones the first Dels live matches for Key in scan
// order — page order along the chain, data before buffer within a page —
// the same "first N matches" semantics the Optimistic facade's delta
// applies to reads (see Optimistic.Delete). Tombs is the value-aware
// generalization: an ordered list applied entry by entry, each deleting
// the first not-yet-consumed live match it accepts in scan order (any
// match for an Any entry, the first equal-valued match for a value
// entry). A non-empty Tombs requires Dels == 0 — anonymous deletes
// travel inside the list as Any entries so their order relative to value
// deletes is preserved — and a comparable value type.
type MergeOp[K num.Key, V any] struct {
	Key   K
	Adds  []V
	Dels  int
	Tombs []Tomb[V]
}

// MergeCOW folds ops — which must be sorted by strictly ascending Key —
// into the tree copy-on-write: it returns a new tree in which only the
// pages some op's key falls into are rebuilt (merged with the pending
// writes and re-segmented under the same error bound) and only the chunks
// overlapping a dirty interval are re-cut, while every untouched page,
// every untouched chunk, and — with the default B+ tree router — every
// router node off the rewritten entries' descent paths is shared, by
// reference, with the receiver. The receiver is not modified (only read)
// and both trees remain fully readable afterwards; shared structure must
// not be mutated through either tree, so the result is meant for
// publication-style use (see the Optimistic facade, whose flush this
// implements). When ops is empty the receiver itself is returned.
//
// Because segments partition the key space, a batch of d pending writes
// touches at most O(d) pages regardless of tree size, and publication
// work scales with those dirty pages alone: O(pages touched · page size +
// adds) to rebuild data, O(dirty segments · log segments) of router
// edits — the router addresses pages directly, so entries of carried
// pages survive even when their chunk is re-cut — and one pointer-array
// copy of the chunk spine (pages / chunkTarget entries). The pre-chunked
// design instead re-derived the whole router (O(segments) bulk load) and
// copied the full page array on every flush, which dominated publication
// at large segment counts.
func (t *Tree[K, V]) MergeCOW(ops []MergeOp[K, V]) *Tree[K, V] {
	for i := range ops {
		if ops[i].Key != ops[i].Key {
			panic("fitingtree: MergeCOW with NaN key")
		}
		if i > 0 && ops[i].Key <= ops[i-1].Key {
			panic("fitingtree: MergeCOW ops not sorted by strictly ascending key")
		}
		if ops[i].Dels > 0 && len(ops[i].Tombs) > 0 {
			panic("fitingtree: MergeCOW op carries both a Dels count and a Tombs list")
		}
	}
	if len(ops) == 0 {
		// A no-op merge shares everything; the receiver already is that
		// tree, so cloning the spine and router would be pure waste.
		return t
	}
	nt := &Tree[K, V]{
		opts:     t.opts,
		segErr:   t.segErr,
		strat:    t.strat,
		counters: t.counters,
		tune:     t.tune, // shared, not copied: one tuning state per lineage
	}

	addN := 0
	for _, op := range ops {
		addN += len(op.Adds)
	}
	deleted := 0

	if len(t.chunks) == 0 {
		// Bootstrap: no pages to merge with, the content is the adds alone
		// (tombstones cannot outnumber zero base matches).
		nt.initRouter(t.opts)
		keys := make([]K, 0, addN)
		vals := make([]V, 0, addN)
		for _, op := range ops {
			for _, v := range op.Adds {
				keys = append(keys, op.Key)
				vals = append(vals, v)
			}
		}
		nt.chunks = cutChunks(t.buildPages(keys, vals, &nt.counters))
		if err := nt.loadRouter(t.opts.FillFactor); err != nil {
			// Unreachable: op keys are strictly ascending.
			panic(fmt.Sprintf("fitingtree: MergeCOW router bootstrap: %v", err))
		}
	} else {
		ivs := t.dirtyIntervals(ops)

		// Rebuild the dirty regions' content (reads only the receiver).
		rebuilt := make([][]*page[K, V], len(ivs))
		dirty := 0
		for i, iv := range ivs {
			keys, vals, d := t.mergeRegion(iv, ops[iv.opLo:iv.opHi])
			deleted += d
			rebuilt[i] = t.buildPages(keys, vals, &nt.counters)
			dirty += t.regionLen(iv)
			// Feed the tuner: the rebuilt pages inherit the region's
			// decayed load counters plus this batch's op count.
			var sr, sw uint64
			t.eachRegionPage(iv, func(p *page[K, V]) {
				sr += atomic.LoadUint64(&p.reads)
				sw += atomic.LoadUint64(&p.writes)
			})
			opN := 0
			for _, op := range ops[iv.opLo:iv.opHi] {
				opN += len(op.Adds) + op.Dels + len(op.Tombs)
			}
			carryLoad(sr, sw, opN, rebuilt[i])
		}

		// Router maintenance is hybrid. The persistent clone pays a few
		// node copies (O(log segments)) per dirty routed page; a bulk
		// reload pays O(segments) once but with bulk-load constants —
		// roughly one slice append per entry. The crossover — router
		// edits cost about `ratio` bulk-loaded entries each — defaults to
		// the historical hand-calibrated 32 and is replaced by
		// CalibrateRouter's measurement on this router kind and host, so
		// clone incrementally only when the delta dirties less than that
		// fraction of the pages; a scattered delta falls back to the bulk
		// load, which still shares every carried page and untouched chunk.
		incremental := dirty*t.tune.ratioOr(routerRatioDefault) < t.pageCount()
		if incremental {
			nt.adoptRouter(t)
			t.retireDirtyEntries(nt, ivs)
			t.insertRebuiltEntries(nt, ivs, rebuilt)
		}
		t.spliceClusters(nt, ivs, rebuilt)
		if !incremental {
			nt.initRouter(t.opts)
			if err := nt.loadRouter(t.opts.FillFactor); err != nil {
				// Unreachable: the assembled chain is key-ordered.
				panic(fmt.Sprintf("fitingtree: MergeCOW router reload: %v", err))
			}
		}
	}

	nt.counters.Inserts += addN
	nt.counters.Deletes += deleted
	nt.size = t.size + addN - deleted
	return nt
}

// MergeCOW2 folds two delta layers into the tree copy-on-write: first is
// merged exactly as MergeCOW would, then second is merged into that
// result. The layering mirrors the Optimistic facade's two-delta read
// protocol (frozen delta below, active delta on top): second's tombstone
// counts are interpreted against the scan order of the tree *after* first
// is applied — surviving base matches, then first's adds in insertion
// order — which is exactly the order mergeRegion materializes, so reads
// before and after the fold observe identical content. Implemented as two
// page-granular passes rather than one composed op list: composing
// tombstone counts across layers would need per-key base-match counts (an
// extra O(ops) tree walk), while the second pass only re-touches pages
// second actually dirties. Empty layers are skipped; with both empty the
// receiver itself is returned.
func (t *Tree[K, V]) MergeCOW2(first, second []MergeOp[K, V]) *Tree[K, V] {
	return t.MergeCOW(first).MergeCOW(second)
}

// MergeCOWN folds an ordered stack of delta layers into the tree
// copy-on-write, bottom layer first. It generalizes MergeCOW2 to any
// depth: each layer's tombstone counts are interpreted against the scan
// order of the tree after every layer beneath it has been applied —
// surviving base matches first, then the lower layers' adds in insertion
// order — which is exactly the order each MergeCOW pass materializes, so
// a layered read before the fold and a plain read after it observe
// identical content. This relativity rule is what makes the fold a
// sequential pass per layer instead of a composition problem; composing
// two adjacent layers into one op list without touching the tree is
// CompactOps' job. Empty layers are skipped; with all layers empty the
// receiver itself is returned.
func (t *Tree[K, V]) MergeCOWN(layers ...[]MergeOp[K, V]) *Tree[K, V] {
	nt := t
	for _, layer := range layers {
		nt = nt.MergeCOW(layer)
	}
	return nt
}

// retireDirtyEntries deletes from nt's router the entry of every dirty
// page that heads an equal-start run in the receiver's chain. Dirty pages
// continuing a run that starts on a carried page own no entry, and the
// run head's entry — addressing a page the merge carries — stays valid
// untouched. All deletes run before any insert so a key whose run head
// moves between intervals cannot transiently alias.
func (t *Tree[K, V]) retireDirtyEntries(nt *Tree[K, V], ivs []cowInterval) {
	for _, iv := range ivs {
		pred := t.pageBefore(iv)
		t.eachRegionPage(iv, func(p *page[K, V]) {
			if pred == nil || pred.start() != p.start() {
				nt.idx.delete(p.start())
			}
			pred = p
		})
	}
}

// insertRebuiltEntries registers the routing entries of the rebuilt pages
// that head equal-start runs in the published chain, plus the first
// carried page after each interval when the rebuild changed its run-head
// role. pred tracks the published chain's predecessor page across
// adjacent intervals, so run boundaries are judged against what readers
// of the new tree will actually see.
func (t *Tree[K, V]) insertRebuiltEntries(nt *Tree[K, V], ivs []cowInterval, rebuilt [][]*page[K, V]) {
	var pred *page[K, V]
	for j, iv := range ivs {
		if j == 0 || !t.adjacent(ivs[j-1], iv) {
			pred = t.pageBefore(iv)
		}
		for _, rp := range rebuilt[j] {
			if pred == nil || pred.start() != rp.start() {
				nt.idx.insert(rp.start(), rp)
			}
			pred = rp
		}
		after, ok := t.pageAfter(iv)
		if !ok {
			continue
		}
		if j+1 < len(ivs) && t.startsInterval(after, ivs[j+1]) {
			continue // dirty itself; the next interval re-registers that region
		}
		if pred == nil || pred.start() != after.start() {
			nt.idx.insert(after.start(), after)
		}
	}
}

// spliceClusters replaces the chunks overlapping dirty intervals in nt's
// chunk spine. Intervals sharing a chunk form one cluster (a chunk is
// re-cut at most once); within a cluster's chunk span, carried pages move
// into the fresh chunks by reference and dirty ranges are substituted
// with their rebuilt pages. Adjacent under-full chunks are absorbed into
// the re-cut — pages still carried by reference, only the spine rebuilt —
// so delete-eroded chunks re-merge with the next fold that touches their
// neighborhood instead of accumulating forever. Clusters splice right to
// left so the chunk indices of pending clusters stay valid.
func (t *Tree[K, V]) spliceClusters(nt *Tree[K, V], ivs []cowInterval, rebuilt [][]*page[K, V]) {
	nt.chunks = append([]*chunk[K, V](nil), t.chunks...)
	plan := t.tune.planOf()
	limit := len(t.chunks) // chunks at/after this index belong to an already-spliced cluster
	hi := len(ivs)
	for hi > 0 {
		// The cluster is ivs[lo:hi]; members share chunks pairwise.
		lo := hi - 1
		for lo > 0 && ivs[lo].loCI <= ivs[lo-1].hiCI {
			lo--
		}
		cLo, cHi := ivs[lo].loCI, ivs[hi-1].hiCI
		floor := -1
		if lo > 0 {
			floor = ivs[lo-1].hiCI // the next cluster to the left ends here
		}
		for cLo-1 > floor && underfull(t.chunks[cLo-1]) {
			cLo--
		}
		for cHi+1 < limit && underfull(t.chunks[cHi+1]) {
			cHi++
		}
		var np []*page[K, V]
		pos := cursor[K, V]{c: t.chunks[cLo], pi: 0, ci: cLo}
		valid := true
		for j := lo; j < hi; j++ {
			iv := ivs[j]
			for valid && !(pos.ci == iv.loCI && pos.pi == iv.loPI) {
				np = append(np, t.pageOf(pos))
				pos, valid = t.next(pos)
			}
			np = append(np, rebuilt[j]...)
			pos, valid = t.next(cursor[K, V]{c: t.chunks[iv.hiCI], pi: iv.hiPI, ci: iv.hiCI})
		}
		for valid && pos.ci <= cHi {
			np = append(np, t.pageOf(pos))
			pos, valid = t.next(pos)
		}
		nt.chunks = spliceChunks(nt.chunks, cLo, cHi-cLo+1, cutChunksPlan(np, plan))
		limit = cLo
		hi = lo
	}
}

// pageBefore returns the receiver-chain page preceding the interval's
// first page, or nil at the chain head.
func (t *Tree[K, V]) pageBefore(iv cowInterval) *page[K, V] {
	cu := cursor[K, V]{c: t.chunks[iv.loCI], pi: iv.loPI, ci: iv.loCI}
	if pv, ok := t.prev(cu); ok {
		return t.pageOf(pv)
	}
	return nil
}

// pageAfter returns the receiver-chain page following the interval's last
// page.
func (t *Tree[K, V]) pageAfter(iv cowInterval) (*page[K, V], bool) {
	cu := cursor[K, V]{c: t.chunks[iv.hiCI], pi: iv.hiPI, ci: iv.hiCI}
	if nx, ok := t.next(cu); ok {
		return t.pageOf(nx), true
	}
	return nil, false
}

// adjacent reports whether b's first page immediately follows a's last.
func (t *Tree[K, V]) adjacent(a, b cowInterval) bool {
	nx, ok := t.next(cursor[K, V]{c: t.chunks[a.hiCI], pi: a.hiPI, ci: a.hiCI})
	return ok && nx.ci == b.loCI && nx.pi == b.loPI
}

// startsInterval reports whether p is the interval's first page.
func (t *Tree[K, V]) startsInterval(p *page[K, V], iv cowInterval) bool {
	return t.chunks[iv.loCI].pages[iv.loPI] == p
}

// buildPages re-segments a sorted merged run into fresh pages, counting the
// work in ctr. The run's backing arrays are shared by sub-slicing, as in
// merge. Under a region plan the run is split at region boundaries and
// each piece segmented with its region's error bound — the lazy-retarget
// protocol: a plan change costs nothing until a rebuild was going to
// happen anyway.
func (t *Tree[K, V]) buildPages(keys []K, vals []V, ctr *Counters) []*page[K, V] {
	if len(keys) == 0 {
		return nil
	}
	ctr.Merges++
	plan := t.tune.planOf()
	if plan == nil || len(plan.targets) == 0 {
		return t.buildPagesErr(keys, vals, t.opts.segError(), ctr)
	}
	var pages []*page[K, V]
	for lo := 0; lo < len(keys); {
		ri := plan.regionOf(keys[lo])
		hi := len(keys)
		if ri+1 < len(plan.targets) {
			// First key of the next region; keys[lo] precedes that region's
			// start, so the sub-run is never empty.
			if at, _ := findKey(keys, plan.targets[ri+1].Start); at > lo {
				hi = at
			}
		}
		pages = append(pages, t.buildPagesErr(keys[lo:hi], vals[lo:hi], plan.segErrAt(ri, t.opts.BufferSize), ctr)...)
		lo = hi
	}
	return pages
}

// buildPagesErr segments one sorted run under a single error bound,
// stamping the bound on every page it cuts.
func (t *Tree[K, V]) buildPagesErr(keys []K, vals []V, segErr int, ctr *Counters) []*page[K, V] {
	segs := segment.ShrinkingCone(keys, segErr)
	ctr.PagesMade += len(segs)
	pages := make([]*page[K, V], len(segs))
	for i, s := range segs {
		pages[i] = newPage(
			segment.Segment[K]{Start: s.Start, StartPos: 0, Count: s.Count, Slope: s.Slope},
			keys[s.StartPos:s.EndPos():s.EndPos()],
			vals[s.StartPos:s.EndPos():s.EndPos()],
			segErr,
		)
	}
	return pages
}

// cowInterval is a maximal dirty run of pages — (loCI, loPI) through
// (hiCI, hiPI), inclusive, in (chunk index, page index) coordinates of
// the receiver's chain — together with the ops [opLo, opHi) whose keys
// fall into it.
type cowInterval struct {
	loCI, loPI int
	hiCI, hiPI int
	opLo, opHi int
}

// dirtyIntervals maps each op to the pages it touches and coalesces
// overlapping ranges. An op that only inserts touches the page Insert
// would buffer it in through the end of the key's equal-start run, so its
// adds land after every base match of the key; an op with tombstones
// additionally reaches back to the first candidate page, because "first
// Dels matches in scan order" is a property of the whole run, duplicate
// spill included.
func (t *Tree[K, V]) dirtyIntervals(ops []MergeOp[K, V]) []cowInterval {
	var ivs []cowInterval
	for oi, op := range ops {
		k := op.Key
		var lo cursor[K, V]
		if op.Dels > 0 || len(op.Tombs) > 0 {
			lo, _ = t.firstCandidate(k)
		} else {
			lo, _ = t.insertCursor(k)
		}
		// Adds sort after every base match of k, and matches can continue
		// through the key's equal-start run, so the region always extends
		// to the run's last page.
		hi := lo
		for {
			nx, has := t.next(hi)
			if !has || t.pageOf(nx).start() > k {
				break
			}
			hi = nx
		}
		iv := cowInterval{lo.ci, lo.pi, hi.ci, hi.pi, oi, oi + 1}
		// Coalesce with earlier intervals this one's pages overlap. Ops
		// ascend by key so interval ends ascend too, but a tombstone's
		// first-candidate walk can reach left of an earlier interval, so
		// merging may cascade.
		for n := len(ivs); n > 0; n = len(ivs) {
			prev := ivs[n-1]
			if iv.loCI > prev.hiCI || (iv.loCI == prev.hiCI && iv.loPI > prev.hiPI) {
				break
			}
			ivs = ivs[:n-1]
			if prev.loCI < iv.loCI || (prev.loCI == iv.loCI && prev.loPI < iv.loPI) {
				iv.loCI, iv.loPI = prev.loCI, prev.loPI
			}
			if prev.hiCI > iv.hiCI || (prev.hiCI == iv.hiCI && prev.hiPI > iv.hiPI) {
				iv.hiCI, iv.hiPI = prev.hiCI, prev.hiPI
			}
			iv.opLo = prev.opLo
		}
		ivs = append(ivs, iv)
	}
	return ivs
}

// mergeRegion merges the content of the dirty pages of iv with ops into
// one sorted run, applying tombstones as it goes, and reports how many
// elements the tombstones removed. Ties keep the read order the Optimistic
// facade promises: surviving base matches (scan order) first, then pending
// adds in insertion order.
func (t *Tree[K, V]) mergeRegion(iv cowInterval, ops []MergeOp[K, V]) ([]K, []V, int) {
	total := 0
	t.eachRegionPage(iv, func(p *page[K, V]) {
		total += len(p.keys) + len(p.bufKeys)
	})
	addN := 0
	for _, op := range ops {
		addN += len(op.Adds)
	}
	keys := make([]K, 0, total+addN)
	vals := make([]V, 0, total+addN)
	ts := newTombSets(ops) // tombstones left to apply, per op
	deleted := 0
	oi := 0
	t.eachRegionPage(iv, func(p *page[K, V]) {
		i, j := 0, 0
		for i < len(p.keys) || j < len(p.bufKeys) {
			useData := j >= len(p.bufKeys) ||
				(i < len(p.keys) && p.keys[i] <= p.bufKeys[j])
			var bk K
			var bv V
			if useData {
				bk, bv = p.keys[i], p.vals[i]
				i++
			} else {
				bk, bv = p.bufKeys[j], p.bufVals[j]
				j++
			}
			// Adds sort after every base match of the same key, so flush
			// only the ops whose key the base run has moved past.
			for oi < len(ops) && ops[oi].Key < bk {
				for _, v := range ops[oi].Adds {
					keys = append(keys, ops[oi].Key)
					vals = append(vals, v)
				}
				oi++
			}
			if oi < len(ops) && ops[oi].Key == bk && ts[oi].Consume(bv) {
				deleted++
				continue
			}
			keys = append(keys, bk)
			vals = append(vals, bv)
		}
	})
	for ; oi < len(ops); oi++ {
		for _, v := range ops[oi].Adds {
			keys = append(keys, ops[oi].Key)
			vals = append(vals, v)
		}
	}
	return keys, vals, deleted
}

// pageCount returns the number of pages in the chain, by summing chunk
// lengths (O(chunks)).
func (t *Tree[K, V]) pageCount() int {
	n := 0
	for _, c := range t.chunks {
		n += len(c.pages)
	}
	return n
}

// regionLen returns the number of pages iv spans.
func (t *Tree[K, V]) regionLen(iv cowInterval) int {
	n := 0
	for ci := iv.loCI; ci <= iv.hiCI; ci++ {
		n += len(t.chunks[ci].pages)
	}
	n -= iv.loPI
	n -= len(t.chunks[iv.hiCI].pages) - iv.hiPI - 1
	return n
}

// eachRegionPage visits the dirty pages of iv in chain order.
func (t *Tree[K, V]) eachRegionPage(iv cowInterval, fn func(p *page[K, V])) {
	for ci := iv.loCI; ci <= iv.hiCI; ci++ {
		pages := t.chunks[ci].pages
		lo, hi := 0, len(pages)
		if ci == iv.loCI {
			lo = iv.loPI
		}
		if ci == iv.hiCI {
			hi = iv.hiPI + 1
		}
		for _, p := range pages[lo:hi] {
			fn(p)
		}
	}
}
