package core

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// snapAll snapshots every chunk of t.
func snapAll(t *Tree[int, int]) []ChunkSnap[int, int] {
	snaps := make([]ChunkSnap[int, int], t.NumChunks())
	for i := range snaps {
		snaps[i] = t.ChunkSnap(i)
	}
	return snaps
}

// jaggedKeys generates sorted keys with irregular gaps so ShrinkingCone
// cuts many segments (a straight line would collapse into one).
func jaggedKeys(n int) []int {
	keys := make([]int, n)
	seed := uint64(42)
	k := 0
	for i := range keys {
		seed = seed*6364136223846793005 + 1442695040888963407
		if i%37 == 0 {
			// A large jump after a flat run breaks any single cone.
			k += 1 + int((seed>>33)%100000)
		} else {
			k += int(seed % 3)
		}
		keys[i] = k
	}
	return keys
}

func buildJagged(t *testing.T, n int) (*Tree[int, int], []int) {
	t.Helper()
	keys := jaggedKeys(n)
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
	}
	tr, err := BulkLoad(keys, vals, Options{Error: 16})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumChunks() < 2 {
		t.Fatalf("want a multi-chunk tree, got %d chunks", tr.NumChunks())
	}
	return tr, keys
}

func TestSnapshotAssembleRoundTrip(t *testing.T) {
	tr, keys := buildJagged(t, 50_000)
	// Exercise buffered state too: insert and delete through the
	// single-writer API before snapshotting.
	for i := 0; i < 500; i++ {
		tr.Insert(keys[i*7]+1, -i)
	}
	for i := 0; i < 100; i++ {
		tr.Delete(keys[i*11])
	}
	re, err := AssembleChunks(snapAll(tr), tr.Options())
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != tr.Len() {
		t.Fatalf("len = %d, want %d", re.Len(), tr.Len())
	}
	for _, k := range keys {
		want, wantOK := tr.Lookup(k)
		got, gotOK := re.Lookup(k)
		if wantOK != gotOK || want != got {
			t.Fatalf("key %d: got %v,%v want %v,%v", k, got, gotOK, want, wantOK)
		}
	}
	for i := 0; i < 500; i++ {
		want, wantOK := tr.Lookup(keys[i*7] + 1)
		got, gotOK := re.Lookup(keys[i*7] + 1)
		if wantOK != gotOK || want != got {
			t.Fatalf("inserted key %d: got %v,%v want %v,%v", keys[i*7]+1, got, gotOK, want, wantOK)
		}
	}
}

func TestSnapshotGobRoundTrip(t *testing.T) {
	tr, keys := buildJagged(t, 10_000)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snapAll(tr)); err != nil {
		t.Fatal(err)
	}
	var snaps []ChunkSnap[int, int]
	if err := gob.NewDecoder(&buf).Decode(&snaps); err != nil {
		t.Fatal(err)
	}
	re, err := AssembleChunks(snaps, tr.Options())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := re.Lookup(keys[999]); !ok || v != 999 {
		t.Fatalf("lookup after gob round trip: %v %v", v, ok)
	}
}

func TestAssembleRejectsCorruptSnapshots(t *testing.T) {
	tr, _ := buildJagged(t, 20_000)
	opts := tr.Options()
	cases := map[string]func([]ChunkSnap[int, int]) []ChunkSnap[int, int]{
		"empty chunk": func(s []ChunkSnap[int, int]) []ChunkSnap[int, int] {
			s[0].Pages = nil
			return s
		},
		"length mismatch": func(s []ChunkSnap[int, int]) []ChunkSnap[int, int] {
			s[0].Pages[0].Vals = s[0].Pages[0].Vals[:1]
			return s
		},
		"unsorted keys": func(s []ChunkSnap[int, int]) []ChunkSnap[int, int] {
			p := &s[0].Pages[0]
			p.Keys = append([]int(nil), p.Keys...)
			p.Keys[0], p.Keys[1] = p.Keys[1], p.Keys[0]
			return s
		},
		"unsorted starts": func(s []ChunkSnap[int, int]) []ChunkSnap[int, int] {
			s[0].Pages[0], s[0].Pages[1] = s[0].Pages[1], s[0].Pages[0]
			return s
		},
		"negative deletes": func(s []ChunkSnap[int, int]) []ChunkSnap[int, int] {
			s[0].Pages[0].Deletes = -1
			return s
		},
	}
	for name, corrupt := range cases {
		snaps := corrupt(snapAll(tr))
		if _, err := AssembleChunks(snaps, opts); err == nil {
			t.Errorf("%s: corrupted checkpoint assembled without error", name)
		}
	}
}

func TestAssembleEmpty(t *testing.T) {
	re, err := AssembleChunks[int, int](nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 0 {
		t.Fatalf("empty assembly has %d elements", re.Len())
	}
	if _, ok := re.Lookup(1); ok {
		t.Fatal("empty assembly claims a key")
	}
}
