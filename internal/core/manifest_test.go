package core

import (
	"bytes"
	"reflect"
	"testing"
)

func sampleManifest() ShardManifest {
	return ShardManifest{
		Generation: 7,
		Options: Options{
			Error:      64,
			BufferSize: 8,
			Fanout:     16,
			FillFactor: 0.75,
			Search:     SearchExponential,
			Router:     RouterImplicit,
		},
		Fences: [][]byte{{0, 0, 1}, {0, 0, 9, 255}},
		Shards: []ShardCut{
			{ReplayFrom: 12, Chunks: []uint64{3, 9, 14}},
			{ReplayFrom: 0, Chunks: nil},
			{ReplayFrom: 1 << 40, Chunks: []uint64{42}},
		},
	}
}

func TestShardManifestRoundTrip(t *testing.T) {
	want := sampleManifest()
	got, err := DecodeShardManifest(EncodeShardManifest(want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Generation != want.Generation || !reflect.DeepEqual(got.Fences, want.Fences) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
	}
	if got.Options != want.Options {
		t.Fatalf("options mismatch: got %+v want %+v", got.Options, want.Options)
	}
	if len(got.Shards) != len(want.Shards) {
		t.Fatalf("shard count mismatch: got %d want %d", len(got.Shards), len(want.Shards))
	}
	for i := range want.Shards {
		if got.Shards[i].ReplayFrom != want.Shards[i].ReplayFrom {
			t.Fatalf("shard %d replayFrom mismatch", i)
		}
		if len(got.Shards[i].Chunks) != len(want.Shards[i].Chunks) {
			t.Fatalf("shard %d chunk count mismatch", i)
		}
		for j := range want.Shards[i].Chunks {
			if got.Shards[i].Chunks[j] != want.Shards[i].Chunks[j] {
				t.Fatalf("shard %d chunk %d mismatch", i, j)
			}
		}
	}
}

func TestShardManifestSingleShard(t *testing.T) {
	m := ShardManifest{
		Generation: 1,
		Options:    Options{Error: 32},
		Shards:     []ShardCut{{ReplayFrom: 5, Chunks: []uint64{1, 2}}},
	}
	got, err := DecodeShardManifest(EncodeShardManifest(m))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.Fences) != 0 || len(got.Shards) != 1 {
		t.Fatalf("single-shard manifest decoded as %+v", got)
	}
}

func TestShardManifestRejectsCorruption(t *testing.T) {
	good := EncodeShardManifest(sampleManifest())
	cases := map[string][]byte{
		"empty":      nil,
		"bad magic":  append([]byte{1, 2, 3, 4}, good[4:]...),
		"truncated":  good[:len(good)-5],
		"trailing":   append(append([]byte(nil), good...), 0),
		"one byte":   {0x4d},
		"just magic": good[:4],
	}
	for name, data := range cases {
		if _, err := DecodeShardManifest(data); err == nil {
			t.Errorf("%s: decode accepted corrupt manifest", name)
		}
	}
	// Flipping any single byte after the magic must never panic, and for
	// bytes inside the options block must either fail or decode to valid
	// options (the decoder re-validates through withDefaults).
	for i := 4; i < len(good); i++ {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0xff
		m, err := DecodeShardManifest(mut)
		if err != nil {
			continue
		}
		if _, err := m.Options.withDefaults(); err != nil {
			t.Fatalf("flip byte %d: decoder returned invalid options %+v", i, m.Options)
		}
	}
}

func TestRebalanceIntentRoundTrip(t *testing.T) {
	want := RebalanceIntent{
		SourceEpoch: 9,
		Generation:  3,
		OldFences:   [][]byte{{1}, {2, 2}},
		NewFences:   [][]byte{{1, 5}},
	}
	got, err := DecodeRebalanceIntent(EncodeRebalanceIntent(want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
	}
}

func TestRebalanceIntentEmptyFences(t *testing.T) {
	// A 1-shard <-> N-shard migration has an empty fence list on one side.
	want := RebalanceIntent{SourceEpoch: 1, Generation: 2, NewFences: [][]byte{{7}}}
	got, err := DecodeRebalanceIntent(EncodeRebalanceIntent(want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.OldFences) != 0 || len(got.NewFences) != 1 {
		t.Fatalf("round trip mismatch: got %+v", got)
	}
}

func TestRebalanceIntentRejectsCorruption(t *testing.T) {
	good := EncodeRebalanceIntent(RebalanceIntent{
		SourceEpoch: 2,
		Generation:  5,
		OldFences:   [][]byte{{9}},
		NewFences:   [][]byte{{4}, {8}},
	})
	if _, err := DecodeRebalanceIntent(nil); err == nil {
		t.Errorf("decode accepted empty intent")
	}
	if _, err := DecodeRebalanceIntent(good[:len(good)-1]); err == nil {
		t.Errorf("decode accepted truncated intent")
	}
	// Every single-byte flip must be caught by the CRC (the record lives in
	// a bare file with no page checksums around it).
	for i := range good {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0x40
		if _, err := DecodeRebalanceIntent(mut); err == nil {
			t.Errorf("flip byte %d: decode accepted corrupt intent", i)
		}
	}
}

// FuzzManifest drives both top-level decoders with arbitrary bytes: neither
// may panic or over-allocate, and anything DecodeShardManifest accepts must
// re-encode to the identical byte string (the codec is canonical).
func FuzzManifest(f *testing.F) {
	f.Add(EncodeShardManifest(sampleManifest()))
	f.Add(EncodeRebalanceIntent(RebalanceIntent{
		SourceEpoch: 3,
		Generation:  1,
		OldFences:   [][]byte{{1}},
		NewFences:   [][]byte{{2}, {3}},
	}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeShardManifest(data); err == nil {
			if !bytes.Equal(EncodeShardManifest(m), data) {
				t.Fatalf("manifest decode/encode not canonical")
			}
		}
		if it, err := DecodeRebalanceIntent(data); err == nil {
			if !bytes.Equal(EncodeRebalanceIntent(it), data) {
				t.Fatalf("intent decode/encode not canonical")
			}
		}
	})
}
