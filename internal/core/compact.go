package core

import "fitingtree/internal/num"

// CompactOps composes two adjacent delta layers into a single op list
// with the same meaning as applying lower and then upper: the result's
// tombstone counts are relative to the view beneath lower, exactly as
// lower's were, so MergeCOW(CompactOps(lower, upper, count)) publishes
// the same content as MergeCOW2(lower, upper). Both inputs must be
// sorted by strictly ascending Key (MergeOp form); the output is too.
//
// The composition is per-key arithmetic except for one case that needs
// the tree: upper's tombstones consume, in scan order, the base matches
// that survive lower's tombstones *before* they consume lower's adds.
// When upper deletes under a key where lower also has pending adds, the
// split between "more base tombstones" and "drop lower's oldest adds"
// depends on how many live base matches exist beneath lower. countBeneath
// reports that number for a key, counting at most limit matches (the
// composition never needs more than lower.Dels+upper.Dels, so the
// callback can stop early); it is consulted only for such ambiguous keys.
// When lower has no adds, every upper tombstone must land on a base match
// — the write path only records a tombstone when a live victim exists
// beneath it, and compactions preserve content — so no count is needed.
//
// Keys whose composed entry carries no adds and no tombstones (an insert
// fully cancelled by a later delete) are dropped from the result.
func CompactOps[K num.Key, V any](lower, upper []MergeOp[K, V], countBeneath func(k K, limit int) int) []MergeOp[K, V] {
	out := make([]MergeOp[K, V], 0, len(lower)+len(upper))
	i, j := 0, 0
	for i < len(lower) || j < len(upper) {
		switch {
		case j >= len(upper) || (i < len(lower) && lower[i].Key < upper[j].Key):
			out = append(out, lower[i])
			i++
		case i >= len(lower) || upper[j].Key < lower[i].Key:
			out = append(out, upper[j])
			j++
		default:
			lo, up := lower[i], upper[j]
			i++
			j++
			// consumed is how many of upper's tombstones land on base
			// matches (they add to the composed tombstone count); the
			// excess lands on lower's oldest pending adds instead.
			consumed := up.Dels
			excess := 0
			if up.Dels > 0 && len(lo.Adds) > 0 {
				base := countBeneath(lo.Key, lo.Dels+up.Dels)
				survivors := base - lo.Dels
				if survivors < 0 {
					survivors = 0
				}
				if consumed > survivors {
					consumed = survivors
				}
				excess = up.Dels - consumed
				if excess > len(lo.Adds) {
					// More tombstones than victims would violate the
					// write path's victim-exists invariant; clamp so a
					// malformed input cannot panic the slice below.
					excess = len(lo.Adds)
				}
			}
			adds := lo.Adds[excess:]
			if len(up.Adds) > 0 {
				merged := make([]V, 0, len(adds)+len(up.Adds))
				merged = append(merged, adds...)
				merged = append(merged, up.Adds...)
				adds = merged
			}
			op := MergeOp[K, V]{Key: lo.Key, Adds: adds, Dels: lo.Dels + consumed}
			if op.Dels > 0 || len(op.Adds) > 0 {
				out = append(out, op)
			}
		}
	}
	return out
}
