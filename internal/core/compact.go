package core

import "fitingtree/internal/num"

// CompactOps composes two adjacent delta layers into a single op list
// with the same meaning as applying lower and then upper: the result's
// tombstones are relative to the view beneath lower, exactly as lower's
// were, so MergeCOW(CompactOps(lower, upper, each)) publishes the same
// content as MergeCOW2(lower, upper). Both inputs must be sorted by
// strictly ascending Key (MergeOp form); the output is too.
//
// The composition is per-key arithmetic except for one case that needs
// the tree: upper's tombstones consume, in scan order, the base matches
// that survive lower's tombstones *before* they consume lower's adds.
// When upper deletes under a key where lower also has pending adds, the
// split between "more base tombstones" and "drop lower's pending adds"
// depends on the live base matches beneath lower. eachBeneath streams
// those matches for a key, in scan order, until fn returns false; it is
// consulted only for such ambiguous keys. In the counted form the
// composition only needs the number of matches (capped, so the callback
// stops early); when either layer carries value tombstones (MergeOp.Tombs)
// it applies lower's list to the materialized matches and streams upper's
// list over survivors-then-adds, cancelling each upper entry that lands
// on a lower add against that add and appending the entries that land on
// base to the composed list — preserving the recorded order of lower's
// tombstones before upper's. When lower has no adds, every upper
// tombstone must land on a base match — the write path only records a
// tombstone when a live victim exists beneath it, and compactions
// preserve content — so no enumeration is needed.
//
// Keys whose composed entry carries no adds and no tombstones (an insert
// fully cancelled by a later delete) are dropped from the result.
func CompactOps[K num.Key, V any](lower, upper []MergeOp[K, V], eachBeneath func(k K, fn func(V) bool)) []MergeOp[K, V] {
	out := make([]MergeOp[K, V], 0, len(lower)+len(upper))
	i, j := 0, 0
	for i < len(lower) || j < len(upper) {
		switch {
		case j >= len(upper) || (i < len(lower) && lower[i].Key < upper[j].Key):
			out = append(out, lower[i])
			i++
		case i >= len(lower) || upper[j].Key < lower[i].Key:
			out = append(out, upper[j])
			j++
		default:
			lo, up := lower[i], upper[j]
			i++
			j++
			var op MergeOp[K, V]
			if len(lo.Tombs) > 0 || len(up.Tombs) > 0 {
				op = composeTombs(lo, up, eachBeneath)
			} else {
				op = composeCounts(lo, up, eachBeneath)
			}
			if op.Dels > 0 || len(op.Tombs) > 0 || len(op.Adds) > 0 {
				out = append(out, op)
			}
		}
	}
	return out
}

// composeCounts composes one key's entries when both layers use the
// counted tombstone form; the result stays in counted form.
func composeCounts[K num.Key, V any](lo, up MergeOp[K, V], eachBeneath func(k K, fn func(V) bool)) MergeOp[K, V] {
	// consumed is how many of upper's tombstones land on base matches
	// (they add to the composed tombstone count); the excess lands on
	// lower's oldest pending adds instead.
	consumed := up.Dels
	excess := 0
	if up.Dels > 0 && len(lo.Adds) > 0 {
		limit := lo.Dels + up.Dels
		base := 0
		eachBeneath(lo.Key, func(V) bool {
			base++
			return base < limit
		})
		survivors := base - lo.Dels
		if survivors < 0 {
			survivors = 0
		}
		if consumed > survivors {
			consumed = survivors
		}
		excess = up.Dels - consumed
		if excess > len(lo.Adds) {
			// More tombstones than victims would violate the write path's
			// victim-exists invariant; clamp so a malformed input cannot
			// panic the slice below.
			excess = len(lo.Adds)
		}
	}
	adds := lo.Adds[excess:]
	if len(up.Adds) > 0 {
		merged := make([]V, 0, len(adds)+len(up.Adds))
		merged = append(merged, adds...)
		merged = append(merged, up.Adds...)
		adds = merged
	}
	return MergeOp[K, V]{Key: lo.Key, Adds: adds, Dels: lo.Dels + consumed}
}

// composeTombs composes one key's entries when either layer carries value
// tombstones; the result uses the list form (counted entries are folded
// in as Any entries, preserving recording order: lower's tombstones
// before upper's).
func composeTombs[K num.Key, V any](lo, up MergeOp[K, V], eachBeneath func(k K, fn func(V) bool)) MergeOp[K, V] {
	upList := asTombList(up)
	composed := asTombList(lo)
	adds := lo.Adds
	if len(upList) > 0 && len(lo.Adds) > 0 {
		// Ambiguous: upper's entries may land on base survivors (keeping
		// the entry, now relative to beneath-lower) or on lower's adds
		// (cancelling entry and add together). Materialize the base
		// matches — value entries can reach arbitrarily deep into the
		// run — apply lower, and stream upper over survivors-then-adds.
		var base []V
		eachBeneath(lo.Key, func(v V) bool {
			base = append(base, v)
			return true
		})
		loSet := NewTombSet(0, composed)
		survivors, _ := applyTombs(nil, base, &loSet)
		upSet := NewTombSet(0, upList)
		composed = composed[:len(composed):len(composed)]
		for _, v := range survivors {
			for ti, tb := range upSet.tombs {
				if !upSet.used[ti] && (tb.Any || valueEq(tb.Val, v)) {
					upSet.used[ti] = true
					composed = append(composed, tb)
					break
				}
			}
		}
		kept := make([]V, 0, len(lo.Adds))
		for _, v := range lo.Adds {
			if upSet.Consume(v) {
				continue
			}
			kept = append(kept, v)
		}
		adds = kept
		// Upper entries that consumed nothing have no victim beneath this
		// op's level; like the counted form's clamp, they are dropped
		// rather than left to delete a future, unrelated write.
	} else {
		composed = append(composed[:len(composed):len(composed)], upList...)
	}
	if len(up.Adds) > 0 {
		merged := make([]V, 0, len(adds)+len(up.Adds))
		merged = append(merged, adds...)
		merged = append(merged, up.Adds...)
		adds = merged
	}
	op := MergeOp[K, V]{Key: lo.Key, Adds: adds, Tombs: composed}
	if allAny(op.Tombs) {
		op.Dels, op.Tombs = len(op.Tombs), nil
	}
	return op
}

// asTombList returns an op's tombstones in list form, expanding a counted
// op into Any entries.
func asTombList[K num.Key, V any](op MergeOp[K, V]) []Tomb[V] {
	if len(op.Tombs) > 0 {
		return op.Tombs
	}
	if op.Dels == 0 {
		return nil
	}
	list := make([]Tomb[V], op.Dels)
	for i := range list {
		list[i].Any = true
	}
	return list
}

// allAny reports whether every entry of a tombstone list is anonymous, in
// which case the counted form represents it exactly.
func allAny[V any](tombs []Tomb[V]) bool {
	for _, t := range tombs {
		if !t.Any {
			return false
		}
	}
	return true
}
