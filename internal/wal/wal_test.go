package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// openEmpty opens a fresh log over a fresh MemFS, failing the test on
// error.
func openEmpty(t *testing.T) (*MemFS, *Log) {
	t.Helper()
	fs := NewMemFS()
	l, recs, stats, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || stats.Records != 0 || stats.TornBytes != 0 {
		t.Fatalf("fresh log not empty: %v %+v", recs, stats)
	}
	return fs, l
}

func TestAppendReplayRoundTrip(t *testing.T) {
	fs, l := openEmpty(t)
	for i := 0; i < 100; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("op-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, stats, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 100 || stats.TornBytes != 0 {
		t.Fatalf("replayed %d records, torn %d", len(recs), stats.TornBytes)
	}
	for i, r := range recs {
		if r.LSN != uint64(i) || string(r.Payload) != fmt.Sprintf("op-%d", i) {
			t.Fatalf("record %d = %d %q", i, r.LSN, r.Payload)
		}
	}
}

func TestCrashDropsUnsynced(t *testing.T) {
	fs, l := openEmpty(t)
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// No sync: a crash loses the second batch.
	fs.Crash()
	_, recs, _, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("replayed %d records after crash, want 10", len(recs))
	}
}

func TestTornTailIsCutAndRepaired(t *testing.T) {
	fs, l := openEmpty(t)
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte{byte(i), byte(i), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Sync()
	// Tear the file mid-final-record.
	data := fs.Bytes("wal.log")
	fs.SetBytes("wal.log", data[:len(data)-2])
	_, recs, stats, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	if stats.TornBytes == 0 {
		t.Fatal("torn tail not reported")
	}
	// The repair must be persistent: a second open sees a clean log.
	_, recs2, stats2, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != 4 || stats2.TornBytes != 0 {
		t.Fatalf("repair not persisted: %d records, torn %d", len(recs2), stats2.TornBytes)
	}
}

func TestCorruptChecksumDetected(t *testing.T) {
	fs, l := openEmpty(t)
	for i := 0; i < 3; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 8)); err != nil {
			t.Fatal(err)
		}
	}
	l.Sync()
	// Flip one payload byte of the second record: replay must stop after
	// the first record rather than deliver a corrupted payload.
	data := fs.Bytes("wal.log")
	frame := recordHeader + 8
	data[frame+recordHeader+3] ^= 0xFF
	fs.SetBytes("wal.log", data)
	_, recs, stats, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d records past a bad checksum, want 1", len(recs))
	}
	if stats.TornBytes != 2*frame {
		t.Fatalf("torn bytes = %d, want %d", stats.TornBytes, 2*frame)
	}
}

func TestOversizedLengthFieldRejected(t *testing.T) {
	fs := NewMemFS()
	// A frame claiming a huge payload must not drive a huge allocation.
	frame := make([]byte, recordHeader)
	frame[0] = 0xFF
	frame[1] = 0xFF
	frame[2] = 0xFF
	frame[3] = 0x7F
	fs.SetBytes("wal.log", frame)
	_, recs, stats, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || stats.TornBytes != recordHeader {
		t.Fatalf("oversized frame parsed: %d records, torn %d", len(recs), stats.TornBytes)
	}
}

func TestTruncateKeepsTail(t *testing.T) {
	fs, l := openEmpty(t)
	for i := 0; i < 20; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Sync()
	if err := l.Truncate(14); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 5 {
		t.Fatalf("len after truncate = %d, want 5", l.Len())
	}
	// Appends continue with contiguous LSNs and both survive replay.
	lsn, err := l.Append([]byte{99})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 20 {
		t.Fatalf("post-truncate lsn = %d, want 20", lsn)
	}
	l.Sync()
	_, recs, _, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 || recs[0].LSN != 15 || recs[5].LSN != 20 {
		t.Fatalf("replay after truncate: %d records, first %d", len(recs), recs[0].LSN)
	}
}

func TestFaultFSTearsTrippingWrite(t *testing.T) {
	mem := NewMemFS()
	faulty := NewFaultFS(mem)
	l, _, _, err := Open(faulty, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	faulty.SetTrip(0) // next op (the append's write) tears
	if _, err := l.Append([]byte("bbbb")); !errors.Is(err, ErrInjected) {
		t.Fatalf("append error = %v, want injected", err)
	}
	if _, err := l.Append([]byte("cccc")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-trip append error = %v, want injected", err)
	}
	mem.Crash()
	_, recs, _, err := Open(mem, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "aaaa" {
		t.Fatalf("recovered %d records, want the synced one", len(recs))
	}
}

func TestFaultFSOpCountProbe(t *testing.T) {
	mem := NewMemFS()
	faulty := NewFaultFS(mem)
	l, _, _, err := Open(faulty, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	before := faulty.Ops()
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	l.Sync()
	if got := faulty.Ops() - before; got != 2 { // one write + one sync
		t.Fatalf("ops for append+sync = %d, want 2", got)
	}
	if faulty.Tripped() {
		t.Fatal("probe run tripped")
	}
}

func TestDirFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys, err := NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, _, _, err := Open(fsys, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := func() error { // reopen and truncate
		l2, recs, _, err := Open(fsys, "wal.log")
		if err != nil {
			return err
		}
		if len(recs) != 10 {
			return fmt.Errorf("replayed %d records, want 10", len(recs))
		}
		if err := l2.Truncate(7); err != nil {
			return err
		}
		return l2.Close()
	}(); err != nil {
		t.Fatal(err)
	}
	_, recs, _, err := Open(fsys, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].LSN != 8 {
		t.Fatalf("after dir truncate: %d records, first LSN %v", len(recs), recs)
	}
}
