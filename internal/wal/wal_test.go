package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// openEmpty opens a fresh log over a fresh MemFS, failing the test on
// error.
func openEmpty(t *testing.T) (*MemFS, *Log) {
	t.Helper()
	fs := NewMemFS()
	l, recs, stats, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || stats.Records != 0 || stats.TornBytes != 0 {
		t.Fatalf("fresh log not empty: %v %+v", recs, stats)
	}
	return fs, l
}

func TestAppendReplayRoundTrip(t *testing.T) {
	fs, l := openEmpty(t)
	for i := 0; i < 100; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("op-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, stats, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 100 || stats.TornBytes != 0 {
		t.Fatalf("replayed %d records, torn %d", len(recs), stats.TornBytes)
	}
	for i, r := range recs {
		if r.LSN != uint64(i) || string(r.Payload) != fmt.Sprintf("op-%d", i) {
			t.Fatalf("record %d = %d %q", i, r.LSN, r.Payload)
		}
	}
}

func TestCrashDropsUnsynced(t *testing.T) {
	fs, l := openEmpty(t)
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// No sync: a crash loses the second batch.
	fs.Crash()
	_, recs, _, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("replayed %d records after crash, want 10", len(recs))
	}
}

func TestTornTailIsCutAndRepaired(t *testing.T) {
	fs, l := openEmpty(t)
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte{byte(i), byte(i), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Sync()
	// Tear the file mid-final-record.
	data := fs.Bytes("wal.log")
	fs.SetBytes("wal.log", data[:len(data)-2])
	_, recs, stats, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	if stats.TornBytes == 0 {
		t.Fatal("torn tail not reported")
	}
	// The repair must be persistent: a second open sees a clean log.
	_, recs2, stats2, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != 4 || stats2.TornBytes != 0 {
		t.Fatalf("repair not persisted: %d records, torn %d", len(recs2), stats2.TornBytes)
	}
}

func TestCorruptChecksumDetected(t *testing.T) {
	fs, l := openEmpty(t)
	for i := 0; i < 3; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 8)); err != nil {
			t.Fatal(err)
		}
	}
	l.Sync()
	// Flip one payload byte of the second record: replay must stop after
	// the first record rather than deliver a corrupted payload.
	data := fs.Bytes("wal.log")
	frame := recordHeader + 8
	data[frame+recordHeader+3] ^= 0xFF
	fs.SetBytes("wal.log", data)
	_, recs, stats, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d records past a bad checksum, want 1", len(recs))
	}
	if stats.TornBytes != 2*frame {
		t.Fatalf("torn bytes = %d, want %d", stats.TornBytes, 2*frame)
	}
}

func TestOpenStatsClassifiesTornVersusCorrupt(t *testing.T) {
	fs, l := openEmpty(t)
	for i := 0; i < 4; i++ {
		if _, err := l.Append([]byte{byte(i), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Sync()
	clean := append([]byte(nil), fs.Bytes("wal.log")...)
	frame := recordHeader + 2

	// Clean shutdown: the whole file is the intact prefix.
	_, _, stats, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if stats.TruncatedAt != len(clean) || stats.CorruptFrames != 0 {
		t.Fatalf("clean log: stats %+v, want TruncatedAt=%d CorruptFrames=0", stats, len(clean))
	}

	// Torn final append: bytes discarded, but no complete frame among them.
	fs.SetBytes("wal.log", clean[:len(clean)-1])
	_, _, stats, err = Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if stats.TruncatedAt != 3*frame || stats.CorruptFrames != 0 {
		t.Fatalf("torn tail: stats %+v, want TruncatedAt=%d CorruptFrames=0", stats, 3*frame)
	}

	// Bit rot mid-log: the complete frames past the cut count as corrupt.
	rotted := append([]byte(nil), clean...)
	rotted[frame+recordHeader] ^= 0xFF // second record's payload
	fs.SetBytes("wal.log", rotted)
	_, recs, stats, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || stats.TruncatedAt != frame || stats.CorruptFrames != 3 {
		t.Fatalf("rotted log: %d records, stats %+v, want TruncatedAt=%d CorruptFrames=3",
			len(recs), stats, frame)
	}
}

func TestOversizedLengthFieldRejected(t *testing.T) {
	fs := NewMemFS()
	// A frame claiming a huge payload must not drive a huge allocation.
	frame := make([]byte, recordHeader)
	frame[0] = 0xFF
	frame[1] = 0xFF
	frame[2] = 0xFF
	frame[3] = 0x7F
	fs.SetBytes("wal.log", frame)
	_, recs, stats, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || stats.TornBytes != recordHeader {
		t.Fatalf("oversized frame parsed: %d records, torn %d", len(recs), stats.TornBytes)
	}
}

func TestTruncateKeepsTail(t *testing.T) {
	fs, l := openEmpty(t)
	for i := 0; i < 20; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Sync()
	if err := l.Truncate(14); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 5 {
		t.Fatalf("len after truncate = %d, want 5", l.Len())
	}
	// Appends continue with contiguous LSNs and both survive replay.
	lsn, err := l.Append([]byte{99})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 20 {
		t.Fatalf("post-truncate lsn = %d, want 20", lsn)
	}
	l.Sync()
	_, recs, _, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 || recs[0].LSN != 15 || recs[5].LSN != 20 {
		t.Fatalf("replay after truncate: %d records, first %d", len(recs), recs[0].LSN)
	}
}

func TestFaultFSTearsTrippingWrite(t *testing.T) {
	mem := NewMemFS()
	faulty := NewFaultFS(mem)
	l, _, _, err := Open(faulty, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	faulty.SetTrip(0) // next op (the append's write) tears
	if _, err := l.Append([]byte("bbbb")); !errors.Is(err, ErrInjected) {
		t.Fatalf("append error = %v, want injected", err)
	}
	if _, err := l.Append([]byte("cccc")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-trip append error = %v, want injected", err)
	}
	mem.Crash()
	_, recs, _, err := Open(mem, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "aaaa" {
		t.Fatalf("recovered %d records, want the synced one", len(recs))
	}
}

func TestFaultFSOpCountProbe(t *testing.T) {
	mem := NewMemFS()
	faulty := NewFaultFS(mem)
	l, _, _, err := Open(faulty, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	before := faulty.Ops()
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	l.Sync()
	if got := faulty.Ops() - before; got != 2 { // one write + one sync
		t.Fatalf("ops for append+sync = %d, want 2", got)
	}
	if faulty.Tripped() {
		t.Fatal("probe run tripped")
	}
}

// TestFaultFSNameFilter scopes the injector to one file and checks that
// operations on other names pass through uncounted and unfailed — the
// single-bad-shard model — while the filtered name both counts toward the
// trip and fails after it.
func TestFaultFSNameFilter(t *testing.T) {
	mem := NewMemFS()
	faulty := NewFaultFS(mem)
	faulty.SetNameFilter(func(name string) bool { return name == "bad.log" })

	good, _, _, err := Open(faulty, "good.log")
	if err != nil {
		t.Fatal(err)
	}
	bad, _, _, err := Open(faulty, "bad.log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Append([]byte("b0")); err != nil {
		t.Fatal(err)
	}
	if err := bad.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := faulty.Ops(); got != 3 { // only bad.log's open+write+sync counted
		t.Fatalf("filtered op count = %d, want 3", got)
	}

	faulty.SetTrip(0) // the very next bad.log op fails
	for i := 0; i < 3; i++ {
		if _, err := good.Append([]byte("gg")); err != nil {
			t.Fatalf("out-of-scope append %d failed: %v", i, err)
		}
		if err := good.Sync(); err != nil {
			t.Fatalf("out-of-scope sync %d failed: %v", i, err)
		}
	}
	if faulty.Tripped() {
		t.Fatal("out-of-scope traffic tripped the injector")
	}
	if _, err := bad.Append([]byte("b1")); !errors.Is(err, ErrInjected) {
		t.Fatalf("in-scope append error = %v, want injected", err)
	}
	if _, err := good.Append([]byte("gg")); err != nil {
		t.Fatalf("append on healthy file after trip failed: %v", err)
	}
	if err := good.Sync(); err != nil {
		t.Fatal(err)
	}
	// A rename is in scope when either of its names is.
	if err := faulty.Rename("other.tmp", "bad.log"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename into scope error = %v, want injected", err)
	}

	mem.Crash()
	_, recs, _, err := Open(mem, "good.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("healthy log recovered %d records, want 4", len(recs))
	}
}

func TestDirFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys, err := NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, _, _, err := Open(fsys, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := func() error { // reopen and truncate
		l2, recs, _, err := Open(fsys, "wal.log")
		if err != nil {
			return err
		}
		if len(recs) != 10 {
			return fmt.Errorf("replayed %d records, want 10", len(recs))
		}
		if err := l2.Truncate(7); err != nil {
			return err
		}
		return l2.Close()
	}(); err != nil {
		t.Fatal(err)
	}
	_, recs, _, err := Open(fsys, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].LSN != 8 {
		t.Fatalf("after dir truncate: %d records, first LSN %v", len(recs), recs)
	}
}
