package wal

import (
	"errors"
	"io"
	"sync"
)

// ErrInjected is the error every FaultFS operation returns once the
// configured trip point has been reached.
var ErrInjected = errors.New("wal: injected fault")

// FaultFS wraps an FS with a deterministic fault injector: mutating
// operations (Create, Append, Rename, Remove, and every Write and Sync on
// handles it hands out) are counted, and once the count passes the
// configured trip point every further operation fails with ErrInjected —
// the wrapped process can no longer make anything durable, exactly as if
// it had been killed. The tripping operation itself fails too; when it is
// a Write, half of the buffer is written before the error, modeling a torn
// write.
//
// A probe run with no trip set (the default) counts the operations of a
// healthy execution; the crash matrix then replays the same scenario once
// per possible trip point. Reads are never failed: recovery is exercised
// against the underlying FS directly.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	ops     int
	tripAt  int // fail the op that would make ops exceed this; <0 = never
	tripped bool
	filter  func(name string) bool // nil = every name is in scope
}

// NewFaultFS wraps inner with no trip configured.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, tripAt: -1}
}

// SetTrip arms the injector: the (n+1)-th mutating operation from now on
// fails, as does everything after it. SetTrip(-1) disarms. The operation
// counter is reset.
func (f *FaultFS) SetTrip(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops = 0
	f.tripAt = n
	f.tripped = false
}

// SetNameFilter scopes the injector to operations touching names filter
// accepts; everything else passes through uncounted and unfailed. It
// models a fault confined to one file — a single shard's log going bad
// while its siblings keep committing — where SetTrip alone models the
// whole process losing its storage. A rename is in scope when either of
// its names is. nil (the default) puts every name in scope. The operation
// counter is not reset; call SetTrip afterwards to rearm deterministically.
func (f *FaultFS) SetNameFilter(filter func(name string) bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.filter = filter
}

// inScope reports whether name is subject to injection.
func (f *FaultFS) inScope(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.filter == nil || f.filter(name)
}

// Ops returns the number of mutating operations observed since the last
// SetTrip (or construction).
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Tripped reports whether the injector has fired.
func (f *FaultFS) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

// stepResult classifies one mutating operation: it proceeds, it is the
// operation that trips the injector, or the injector tripped earlier.
type stepResult int

const (
	stepOK   stepResult = iota // proceed normally
	stepTrip                   // this operation fires the fault
	stepDead                   // a previous operation already fired it
)

// step counts one mutating operation and classifies it.
func (f *FaultFS) step() stepResult {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tripped {
		return stepDead
	}
	if f.tripAt >= 0 && f.ops >= f.tripAt {
		f.tripped = true
		return stepTrip
	}
	f.ops++
	return stepOK
}

// Create opens name for writing through the injector.
func (f *FaultFS) Create(name string) (File, error) {
	if f.inScope(name) && f.step() != stepOK {
		return nil, ErrInjected
	}
	h, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: h}, nil
}

// Append opens name for appending through the injector.
func (f *FaultFS) Append(name string) (File, error) {
	if f.inScope(name) && f.step() != stepOK {
		return nil, ErrInjected
	}
	h, err := f.inner.Append(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: h}, nil
}

// Open opens name for reading; reads are never failed.
func (f *FaultFS) Open(name string) (io.ReadCloser, error) {
	return f.inner.Open(name)
}

// Remove deletes name through the injector.
func (f *FaultFS) Remove(name string) error {
	if f.inScope(name) && f.step() != stepOK {
		return ErrInjected
	}
	return f.inner.Remove(name)
}

// Rename renames through the injector; a tripped rename has no effect
// (renames are atomic, so they either happen or do not).
func (f *FaultFS) Rename(oldname, newname string) error {
	if (f.inScope(oldname) || f.inScope(newname)) && f.step() != stepOK {
		return ErrInjected
	}
	return f.inner.Rename(oldname, newname)
}

// faultFile is a File handle routed through the injector.
type faultFile struct {
	fs    *FaultFS
	name  string
	inner File
}

// Write writes through the injector; the tripping write lands only a torn
// prefix (half the buffer) before failing, and writes after the trip land
// nothing at all.
func (w *faultFile) Write(p []byte) (int, error) {
	if !w.fs.inScope(w.name) {
		return w.inner.Write(p)
	}
	switch w.fs.step() {
	case stepTrip:
		n := 0
		if len(p) > 1 {
			n, _ = w.inner.Write(p[:len(p)/2])
		}
		return n, ErrInjected
	case stepDead:
		return 0, ErrInjected
	}
	return w.inner.Write(p)
}

// Sync syncs through the injector; a tripped sync leaves the written bytes
// without a durability promise.
func (w *faultFile) Sync() error {
	if w.fs.inScope(w.name) && w.fs.step() != stepOK {
		return ErrInjected
	}
	return w.inner.Sync()
}

// Close closes the underlying handle; closing is free (it promises
// nothing).
func (w *faultFile) Close() error { return w.inner.Close() }
