// Package wal implements a checksummed, length-prefixed write-ahead log
// over a pluggable flat-namespace file system.
//
// The log is the durability half of the repository's checkpoint+WAL
// protocol (see docs/ARCHITECTURE.md): every acknowledged write is first
// appended as one framed record, group-committed by an explicit Sync
// barrier, and replayed after a crash on top of the latest checkpoint.
// Records carry explicit log sequence numbers (LSNs) so a replay can skip
// the prefix a checkpoint already folded in, and a CRC over every frame so
// a torn tail is cut at the last intact record instead of being decoded
// into garbage.
//
// The file abstraction is deliberately tiny — create, open, append,
// rename, remove — so the same log runs over a real directory (DirFS), an
// in-memory store with crash semantics (MemFS, which distinguishes synced
// from merely written bytes), and a deterministic fault injector (FaultFS)
// that trips an error or a torn write at the Nth operation. The crash
// matrix in the recovery tests is driven entirely through these
// implementations.
package wal

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is a writable log file handle. Write buffers data with no
// durability promise; Sync is the barrier that makes everything written so
// far survive a crash.
type File interface {
	io.Writer
	// Sync makes all preceding writes durable.
	Sync() error
	// Close releases the handle without any durability promise.
	Close() error
}

// FS is the flat-namespace durable store a log lives in. Implementations
// must make Rename atomic with respect to crashes: after a crash the name
// refers to either the old or the new content, never a mixture.
type FS interface {
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// Append opens name for appending, creating it if missing.
	Append(name string) (File, error)
	// Open opens name for reading. A missing name reports an error
	// satisfying errors.Is(err, fs.ErrNotExist).
	Open(name string) (io.ReadCloser, error)
	// Remove deletes name; removing a missing name is not an error.
	Remove(name string) error
	// Rename atomically replaces newname with oldname's content.
	Rename(oldname, newname string) error
}

// DirFS is an FS over a real directory. Renames are fsynced through the
// directory handle so they survive a crash once Rename returns.
type DirFS struct {
	dir string
}

// NewDirFS returns an FS rooted at dir, creating the directory if needed.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirFS{dir: dir}, nil
}

// path resolves a flat name inside the root directory.
func (d *DirFS) path(name string) string { return filepath.Join(d.dir, name) }

// Create opens name for writing, truncating any existing content.
func (d *DirFS) Create(name string) (File, error) {
	return os.OpenFile(d.path(name), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

// Append opens name for appending, creating it if missing.
func (d *DirFS) Append(name string) (File, error) {
	return os.OpenFile(d.path(name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Open opens name for reading.
func (d *DirFS) Open(name string) (io.ReadCloser, error) {
	return os.Open(d.path(name))
}

// Remove deletes name; a missing name is not an error.
func (d *DirFS) Remove(name string) error {
	err := os.Remove(d.path(name))
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// Rename atomically replaces newname with oldname's content and fsyncs the
// directory so the swap survives a crash.
func (d *DirFS) Rename(oldname, newname string) error {
	if err := os.Rename(d.path(oldname), d.path(newname)); err != nil {
		return err
	}
	return d.syncDir()
}

// syncDir fsyncs the root directory, making completed renames durable.
func (d *DirFS) syncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	// Directory fsync is advisory on some platforms; a sync error still
	// means the rename may not be durable, so it is reported.
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// MemFS is an in-memory FS with explicit crash semantics: each file tracks
// how many of its bytes have been covered by a Sync, and Crash truncates
// every file back to its synced prefix — exactly the data loss an OS page
// cache permits. It is safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

// memFile is one in-memory file: data holds everything written, synced the
// prefix guaranteed to survive Crash.
type memFile struct {
	data   []byte
	synced int
}

// NewMemFS returns an empty in-memory FS.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

// Create opens name for writing, truncating any existing content.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = &memFile{}
	return &memHandle{fs: m, name: name}, nil
}

// Append opens name for appending, creating it if missing.
func (m *MemFS) Append(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		m.files[name] = &memFile{}
	}
	return &memHandle{fs: m, name: name}, nil
}

// Open opens name for reading a snapshot of its current content.
func (m *MemFS) Open(name string) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return &memReader{data: append([]byte(nil), f.data...)}, nil
}

// Remove deletes name; a missing name is not an error.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
	return nil
}

// Rename atomically replaces newname with oldname's content. The rename is
// modeled as immediately durable (a journaled file system's fsynced
// rename); torn renames are not part of the crash model.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	// A rename implies the content is what the caller wants visible after
	// a crash; callers sync before renaming, so mark everything synced.
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

// Crash simulates a process/OS crash: every file loses the bytes written
// after its last Sync. Open handles remain usable but continue to write to
// the truncated file (tests do not reuse them).
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		f.data = f.data[:f.synced]
	}
}

// Bytes returns a copy of name's current content (synced or not), or nil
// when the file does not exist. It is a test hook for corruption
// scenarios.
func (m *MemFS) Bytes(name string) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil
	}
	return append([]byte(nil), f.data...)
}

// SetBytes replaces name's content (marked fully synced). It is a test
// hook for planting corrupted files.
func (m *MemFS) SetBytes(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = &memFile{data: append([]byte(nil), data...), synced: len(data)}
}

// memHandle is a write handle into a MemFS file.
type memHandle struct {
	fs   *MemFS
	name string
}

// Write appends p to the file without any durability promise.
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, ok := h.fs.files[h.name]
	if !ok {
		return 0, &fs.PathError{Op: "write", Path: h.name, Err: fs.ErrNotExist}
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

// Sync marks everything written so far as surviving a Crash.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if f, ok := h.fs.files[h.name]; ok {
		f.synced = len(f.data)
	}
	return nil
}

// Close releases the handle; buffered state is already in the MemFS.
func (h *memHandle) Close() error { return nil }

// memReader reads a point-in-time copy of a MemFS file.
type memReader struct {
	data []byte
	at   int
}

// Read implements io.Reader over the snapshot.
func (r *memReader) Read(p []byte) (int, error) {
	if r.at >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.at:])
	r.at += n
	return n, nil
}

// Close implements io.Closer.
func (r *memReader) Close() error { return nil }

// Names returns the sorted names of all files (test diagnostic).
func (m *MemFS) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
