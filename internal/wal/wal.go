package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"

	"errors"
)

// Record frame layout, little-endian:
//
//	u32 payload length | u32 CRC-32C | u64 LSN | payload bytes
//
// The CRC covers the LSN and the payload, so a frame whose length field
// survived but whose body was torn is rejected, and a stale frame left
// behind by a shorter rewrite cannot masquerade as current (its LSN is
// checked for monotonicity as well).
const recordHeader = 4 + 4 + 8

// maxRecordSize bounds a single record's payload. It exists to keep a
// corrupted length field from driving a multi-gigabyte allocation during
// replay; real records (one logged write each) are a few dozen bytes.
const maxRecordSize = 1 << 20

// crcTable is the Castagnoli table used for all record checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one replayed log entry.
type Record struct {
	LSN     uint64
	Payload []byte
}

// OpenStats describes what Open found in an existing log, letting callers
// distinguish a clean shutdown (nothing discarded) from a crash's torn
// tail (an incomplete final frame) from actual corruption (complete
// frames that fail their checksum or break LSN monotonicity).
type OpenStats struct {
	// Records is the number of intact records replayed.
	Records int
	// TornBytes is the number of trailing bytes discarded because they did
	// not form an intact record (torn tail after a crash). Zero for a
	// clean log.
	TornBytes int
	// TruncatedAt is the byte offset the log was cut at: the length of the
	// intact record prefix. Equal to the file size for a clean log.
	TruncatedAt int
	// CorruptFrames counts structurally complete frames inside the
	// discarded tail that fail their checksum or LSN monotonicity — a torn
	// final append leaves zero of these (its frame is incomplete), so a
	// non-zero count is evidence of corruption rather than a crash.
	CorruptFrames int
}

// Log is an append-only record log. It is not safe for concurrent use;
// the owning facade serializes writers.
type Log struct {
	fs      FS
	name    string
	f       File
	nextLSN uint64
	synced  uint64 // highest LSN covered by a completed Sync
	records int    // records currently in the file
}

// Open opens (or creates) the log called name inside fsys, replaying every
// intact record. A torn tail — trailing bytes that do not parse into a
// record with a valid checksum and a monotonically increasing LSN — is cut
// off and the file is repaired to the intact prefix before the log accepts
// appends, so a crash mid-append never leaves permanent garbage. The
// replayed records (oldest first) and repair statistics are returned along
// with the ready-to-append log.
func Open(fsys FS, name string) (*Log, []Record, OpenStats, error) {
	var stats OpenStats
	data, err := readAll(fsys, name)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, stats, fmt.Errorf("wal: read %s: %w", name, err)
	}
	records, consumed := parseRecords(data)
	stats.Records = len(records)
	stats.TornBytes = len(data) - consumed
	stats.TruncatedAt = consumed
	stats.CorruptFrames = countCorruptFrames(data[consumed:])
	if stats.TornBytes > 0 {
		// Repair: rewrite the intact prefix and atomically swap it in, so
		// the torn bytes cannot resurface.
		if err := rewrite(fsys, name, data[:consumed]); err != nil {
			return nil, nil, stats, fmt.Errorf("wal: repair %s: %w", name, err)
		}
	}
	f, err := fsys.Append(name)
	if err != nil {
		return nil, nil, stats, fmt.Errorf("wal: open %s: %w", name, err)
	}
	l := &Log{fs: fsys, name: name, f: f, records: len(records)}
	if n := len(records); n > 0 {
		l.nextLSN = records[n-1].LSN + 1
		l.synced = records[n-1].LSN
	}
	return l, records, stats, nil
}

// readAll returns the full content of name.
func readAll(fsys FS, name string) ([]byte, error) {
	r, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

// parseRecords decodes the longest intact record prefix of data, returning
// the records and the number of bytes they occupy. Parsing stops at the
// first frame that is truncated, oversized, fails its checksum, or breaks
// LSN monotonicity.
func parseRecords(data []byte) ([]Record, int) {
	var records []Record
	at := 0
	var prevLSN uint64
	for len(data)-at >= recordHeader {
		n := int(binary.LittleEndian.Uint32(data[at:]))
		if n > maxRecordSize || at+recordHeader+n > len(data) {
			break
		}
		crc := binary.LittleEndian.Uint32(data[at+4:])
		body := data[at+8 : at+recordHeader+n] // LSN + payload
		if crc32.Checksum(body, crcTable) != crc {
			break
		}
		lsn := binary.LittleEndian.Uint64(body)
		if len(records) > 0 && lsn != prevLSN+1 {
			break
		}
		records = append(records, Record{
			LSN:     lsn,
			Payload: append([]byte(nil), body[8:]...),
		})
		prevLSN = lsn
		at += recordHeader + n
	}
	return records, at
}

// countCorruptFrames walks the discarded tail counting structurally
// complete frames — a sane length field with the whole body present —
// that parseRecords nevertheless rejected (bad checksum or broken LSN
// monotonicity). The walk stops at the first incomplete or unparseable
// frame: whatever follows is indistinguishable from a torn append.
func countCorruptFrames(tail []byte) int {
	corrupt := 0
	at := 0
	for len(tail)-at >= recordHeader {
		n := int(binary.LittleEndian.Uint32(tail[at:]))
		if n > maxRecordSize || at+recordHeader+n > len(tail) {
			break
		}
		corrupt++
		at += recordHeader + n
	}
	return corrupt
}

// appendFrame appends one framed record to buf.
func appendFrame(buf []byte, lsn uint64, payload []byte) []byte {
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:], lsn)
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	body := buf[len(buf)-len(payload)-8:]
	binary.LittleEndian.PutUint32(buf[len(buf)-len(payload)-12:], crc32.Checksum(body, crcTable))
	return buf
}

// rewrite atomically replaces name's content with data (write a sibling,
// sync, rename).
func rewrite(fsys FS, name string, data []byte) error {
	tmp := name + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, name)
}

// Append writes one record with the next LSN and returns that LSN. The
// record is not durable until the next successful Sync. A failed append
// may leave a torn frame at the file's tail; the next Open cuts it off, so
// the in-memory LSN is not advanced.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > maxRecordSize {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds limit %d", len(payload), maxRecordSize)
	}
	lsn := l.nextLSN
	frame := appendFrame(make([]byte, 0, recordHeader+len(payload)), lsn, payload)
	if _, err := l.f.Write(frame); err != nil {
		return 0, err
	}
	l.nextLSN = lsn + 1
	l.records++
	return lsn, nil
}

// Sync is the group-commit barrier: after it returns nil, every record
// appended so far survives a crash.
func (l *Log) Sync() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	if l.nextLSN > 0 {
		l.synced = l.nextLSN - 1
	}
	return nil
}

// SyncedLSN returns the highest LSN covered by a completed Sync (0 when
// nothing has been synced; LSNs start at 0, so pair it with Len to
// disambiguate the empty log).
func (l *Log) SyncedLSN() uint64 { return l.synced }

// NextLSN returns the LSN the next append will use.
func (l *Log) NextLSN() uint64 { return l.nextLSN }

// SetNextLSN raises the next append LSN to at least n. A truncated-empty
// log reopens with nextLSN 0, but its dropped records' LSNs are still
// spoken for by the checkpoint that truncated them; the owner calls this
// with the checkpoint's replay cursor so fresh appends never reuse an LSN
// the replay filter would skip.
func (l *Log) SetNextLSN(n uint64) {
	if n > l.nextLSN {
		l.nextLSN = n
		l.synced = n - 1
	}
}

// Len returns the number of records currently in the log file.
func (l *Log) Len() int { return l.records }

// Truncate drops every record with LSN <= upTo: the surviving tail is
// rewritten to a sibling file, synced, and atomically renamed over the
// log. The caller must guarantee the dropped prefix is durable elsewhere
// (a committed checkpoint) before calling. The old file is read once, but
// only the surviving tail is rewritten and synced. On success the log
// continues appending after the tail; on failure the old file remains
// intact and the log stays usable.
func (l *Log) Truncate(upTo uint64) error {
	data, err := readAll(l.fs, l.name)
	if err != nil {
		return fmt.Errorf("wal: truncate read: %w", err)
	}
	records, _ := parseRecords(data)
	buf := make([]byte, 0, 1024)
	kept := 0
	for _, r := range records {
		if r.LSN > upTo {
			buf = appendFrame(buf, r.LSN, r.Payload)
			kept++
		}
	}
	if kept == len(records) {
		return nil // nothing to drop
	}
	if err := rewrite(l.fs, l.name, buf); err != nil {
		return fmt.Errorf("wal: truncate rewrite: %w", err)
	}
	// Swap the append handle to the new file. The old handle points at the
	// renamed-over inode; close it and reopen.
	l.f.Close()
	f, err := l.fs.Append(l.name)
	if err != nil {
		return fmt.Errorf("wal: truncate reopen: %w", err)
	}
	l.f = f
	l.records = kept
	return nil
}

// Close syncs and releases the log's file handle. The log must not be
// used afterwards.
func (l *Log) Close() error {
	err := l.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
