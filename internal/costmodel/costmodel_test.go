package costmodel

import (
	"testing"

	"fitingtree/internal/btree"
	"fitingtree/internal/workload"
)

func learned(t *testing.T) *Model {
	t.Helper()
	keys := workload.Weblogs(200_000, 1)
	m, err := Learn(keys, []int{10, 32, 100, 316, 1000, 3162, 10000}, 50, btree.DefaultOrder, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLearnValidation(t *testing.T) {
	keys := []uint64{1, 2, 3}
	if _, err := Learn(keys, nil, 50, 16, 0.5, 0.5); err == nil {
		t.Fatal("accepted empty thresholds")
	}
	if _, err := Learn(keys, []int{100, 10}, 50, 16, 0.5, 0.5); err == nil {
		t.Fatal("accepted descending thresholds")
	}
	if _, err := Learn(keys, []int{0}, 50, 16, 0.5, 0.5); err == nil {
		t.Fatal("accepted threshold 0")
	}
	if _, err := Learn(keys, []int{10}, -1, 16, 0.5, 0.5); err == nil {
		t.Fatal("accepted negative c")
	}
	if _, err := Learn(keys, []int{10}, 50, 2, 0.5, 0.5); err == nil {
		t.Fatal("accepted fanout 2")
	}
	if _, err := Learn(keys, []int{10}, 50, 16, 0.5, 1.0); err == nil {
		t.Fatal("accepted bufferFrac 1.0")
	}
}

func TestSegmentsMonotoneNonIncreasing(t *testing.T) {
	m := learned(t)
	prev := m.Segments(1)
	for _, e := range []int{10, 50, 100, 500, 1000, 5000, 10000, 50000} {
		cur := m.Segments(e)
		if cur > prev+1e-9 {
			t.Fatalf("Segments(%d) = %f increased from %f", e, cur, prev)
		}
		prev = cur
	}
}

func TestSegmentsInterpolatesExactSamples(t *testing.T) {
	m, err := NewFromSamples([]int{10, 100}, []int{5000, 300}, 50, 16, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Segments(10); got != 5000 {
		t.Fatalf("Segments(10) = %f", got)
	}
	if got := m.Segments(100); got != 300 {
		t.Fatalf("Segments(100) = %f", got)
	}
	mid := m.Segments(32)
	if mid <= 300 || mid >= 5000 {
		t.Fatalf("Segments(32) = %f not between samples", mid)
	}
	// Clamped extrapolation.
	if got := m.Segments(1); got != 5000 {
		t.Fatalf("Segments(1) = %f, want clamp", got)
	}
	if got := m.Segments(10_000); got != 300 {
		t.Fatalf("Segments(10000) = %f, want clamp", got)
	}
}

func TestSizeShrinksWithError(t *testing.T) {
	m := learned(t)
	if m.Size(10) <= m.Size(1000) {
		t.Fatalf("Size(10)=%d should exceed Size(1000)=%d", m.Size(10), m.Size(1000))
	}
	if m.Size(10000) < 24 {
		t.Fatalf("Size(10000)=%d below one segment's metadata", m.Size(10000))
	}
}

func TestPickForLatency(t *testing.T) {
	m := learned(t)
	candidates := []int{10, 100, 1000, 10000}
	// A generous SLA admits everything: the pick must be the smallest
	// index among candidates (largest feasible error's size).
	e, ok := m.PickForLatency(1e9, candidates)
	if !ok {
		t.Fatal("no pick under generous SLA")
	}
	for _, c := range candidates {
		if m.Size(c) < m.Size(e) {
			t.Fatalf("pick %d has size %d but %d is smaller", e, m.Size(e), m.Size(c))
		}
	}
	// An impossible SLA yields no pick.
	if _, ok := m.PickForLatency(0.001, candidates); ok {
		t.Fatal("impossible SLA satisfied")
	}
	// A middling SLA must respect the constraint.
	sla := m.Latency(100)
	e, ok = m.PickForLatency(sla, candidates)
	if !ok || m.Latency(e) > sla {
		t.Fatalf("pick %d violates SLA: %f > %f", e, m.Latency(e), sla)
	}
}

func TestPickForSpace(t *testing.T) {
	m := learned(t)
	candidates := []int{10, 100, 1000, 10000}
	// A huge budget admits everything: the pick is the fastest.
	e, ok := m.PickForSpace(1<<40, candidates)
	if !ok {
		t.Fatal("no pick under huge budget")
	}
	for _, c := range candidates {
		if m.Latency(c) < m.Latency(e) {
			t.Fatalf("pick %d is slower than candidate %d", e, c)
		}
	}
	// A tiny budget yields no pick.
	if _, ok := m.PickForSpace(1, candidates); ok {
		t.Fatal("1-byte budget satisfied")
	}
	// A middling budget respects the constraint.
	budget := m.Size(1000)
	e, ok = m.PickForSpace(budget, candidates)
	if !ok || m.Size(e) > budget {
		t.Fatalf("pick %d violates budget: %d > %d", e, m.Size(e), budget)
	}
}

func TestLatencyIncludesAllPhases(t *testing.T) {
	m, err := NewFromSamples([]int{10, 1000}, []int{100_000, 1000}, 100, 16, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// With c=100, e=1000: tree = log_16(1000) ~ 2.49, segment = log2(1000)
	// ~ 9.97, buffer = log2(500) ~ 8.97 -> ~2140ns.
	got := m.Latency(1000)
	if got < 1500 || got > 3000 {
		t.Fatalf("Latency(1000) = %f, expected ~2100", got)
	}
}

func TestMeasureCacheMissNs(t *testing.T) {
	c := MeasureCacheMissNs(1<<22, 200_000) // 4MB buffer keeps the test fast
	if c <= 0 || c > 10_000 {
		t.Fatalf("implausible cache miss estimate: %f ns", c)
	}
}

func TestInsertLatencyShape(t *testing.T) {
	m := learned(t)
	// Throughput improves (latency falls) with larger buffers at a fixed
	// huge segment size: mirror Figure 12 by comparing two models that
	// differ only in buffer fraction at a large error.
	lo, err := NewFromSamples([]int{20000}, []int{10}, 50, 16, 0.5, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	lo.Elements = 1_000_000
	hi, err := NewFromSamples([]int{20000}, []int{10}, 50, 16, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	hi.Elements = 1_000_000
	if hi.InsertLatency(20000) >= lo.InsertLatency(20000) {
		t.Fatalf("bigger buffer should amortize splits: %f vs %f",
			hi.InsertLatency(20000), lo.InsertLatency(20000))
	}
	// Sanity: positive and finite across the sweep.
	for _, e := range []int{10, 100, 1000, 10000} {
		v := m.InsertLatency(e)
		if v <= 0 || v > 1e9 {
			t.Fatalf("InsertLatency(%d) = %f", e, v)
		}
	}
}
