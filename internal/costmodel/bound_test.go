// An external test package: core now imports costmodel (the tuner builds
// per-region models), so a test that builds real trees must live outside
// package costmodel to keep the test binary acyclic.
package costmodel_test

import (
	"testing"

	"fitingtree/internal/btree"
	"fitingtree/internal/core"
	"fitingtree/internal/costmodel"
	"fitingtree/internal/workload"
)

// TestSizeIsUpperBoundOfActual is the Figure 10b claim: the predicted size
// is pessimistic, i.e. at least the measured index size.
func TestSizeIsUpperBoundOfActual(t *testing.T) {
	keys := workload.Weblogs(200_000, 1)
	m, err := costmodel.Learn(keys, []int{10, 32, 100, 316, 1000, 3162, 10000}, 50, btree.DefaultOrder, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int, len(keys))
	for _, e := range []int{32, 100, 1000} {
		tr, err := core.BulkLoad(keys, vals, core.Options{Error: e, FillFactor: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		actual := tr.Stats().IndexSize
		predicted := m.Size(e)
		if predicted < actual {
			t.Fatalf("e=%d: predicted %d < actual %d, model not pessimistic", e, predicted, actual)
		}
		// But not absurdly loose either (within ~20x).
		if predicted > actual*20 {
			t.Fatalf("e=%d: predicted %d over 20x actual %d", e, predicted, actual)
		}
	}
}

// TestCacheMissNsMemoized pins the process-wide memoization: an override
// is returned verbatim (no measurement runs) and the restore function
// re-exposes the prior state.
func TestCacheMissNsMemoized(t *testing.T) {
	restore := costmodel.SetCacheMissNsForTest(42)
	defer restore()
	if got := costmodel.CacheMissNs(); got != 42 {
		t.Fatalf("CacheMissNs() = %f with override 42", got)
	}
	inner := costmodel.SetCacheMissNsForTest(7)
	if got := costmodel.CacheMissNs(); got != 7 {
		t.Fatalf("CacheMissNs() = %f with override 7", got)
	}
	inner()
	if got := costmodel.CacheMissNs(); got != 42 {
		t.Fatalf("CacheMissNs() = %f after restore, want 42", got)
	}
}
