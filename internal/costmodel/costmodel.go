// Package costmodel implements the paper's Section 6 cost model: given an
// error threshold e it predicts a FITing-Tree's lookup latency and index
// size, so a DBA can derive the error threshold from either a latency SLA
// or a storage budget.
//
// The latency model (Section 6.1, Equation 1) charges one cache miss c per
// random access on the three lookup phases:
//
//	latency(e) = c * ( log_b(S_e)  +  log2(e)  +  log2(bu) )
//	                  tree search     segment       buffer
//
// The size model (Section 6.2, Equation 1) is deliberately pessimistic:
//
//	size(e) = f * S_e * log_b(S_e) * 16B  +  S_e * 24B
//	          inner tree bound               segment metadata
//
// S_e, the number of segments a dataset needs at error e, is data
// dependent; Learn samples it by segmenting the data at a few thresholds
// and the model log-log-interpolates between the samples (the paper's
// "learned for a specific dataset" option).
package costmodel

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"fitingtree/internal/num"
	"fitingtree/internal/segment"
)

// Model predicts lookup latency, insert latency, and index size per error
// threshold.
type Model struct {
	// Elements is the dataset size the model was learned from; it feeds
	// the amortized split term of the insert model.
	Elements int

	// C is the cost of a random memory access in nanoseconds (the paper
	// uses 50ns measured with a memory benchmark; see MeasureCacheMissNs).
	C float64
	// Fanout b of the inner B+ tree.
	Fanout int
	// Fill factor f of the inner tree (the paper's example uses 0.5).
	Fill float64
	// BufferFrac is the insert-buffer fraction of the error threshold
	// (0.5 matches the evaluation setup: buffer = e/2).
	BufferFrac float64

	// samples of (error, segments), ascending by error.
	errs []int
	segs []int
}

// Learn builds a model for a dataset by segmenting it at each error in
// errs (which must be ascending, >= 1).
func Learn[K num.Key](keys []K, errs []int, c float64, fanout int, fill, bufferFrac float64) (*Model, error) {
	if len(errs) == 0 {
		return nil, fmt.Errorf("costmodel: no error thresholds to sample")
	}
	if !sort.IntsAreSorted(errs) {
		return nil, fmt.Errorf("costmodel: error thresholds must be ascending")
	}
	if fanout < 3 || fill <= 0 || fill > 1 || c <= 0 {
		return nil, fmt.Errorf("costmodel: invalid parameters c=%f fanout=%d fill=%f", c, fanout, fill)
	}
	if bufferFrac < 0 || bufferFrac >= 1 {
		return nil, fmt.Errorf("costmodel: bufferFrac %f must be in [0, 1)", bufferFrac)
	}
	m := &Model{Elements: len(keys), C: c, Fanout: fanout, Fill: fill, BufferFrac: bufferFrac}
	for _, e := range errs {
		if e < 1 {
			return nil, fmt.Errorf("costmodel: error threshold %d < 1", e)
		}
		segErr := e - int(float64(e)*bufferFrac)
		if segErr < 1 {
			segErr = 1
		}
		m.errs = append(m.errs, e)
		m.segs = append(m.segs, len(segment.ShrinkingCone(keys, segErr)))
	}
	return m, nil
}

// NewFromSamples builds a model from precomputed (error, segments) samples,
// ascending by error.
func NewFromSamples(errs, segs []int, c float64, fanout int, fill, bufferFrac float64) (*Model, error) {
	if len(errs) != len(segs) || len(errs) == 0 {
		return nil, fmt.Errorf("costmodel: bad samples: %d errors, %d counts", len(errs), len(segs))
	}
	m := &Model{C: c, Fanout: fanout, Fill: fill, BufferFrac: bufferFrac,
		errs: append([]int(nil), errs...), segs: append([]int(nil), segs...)}
	return m, nil
}

// Segments predicts S_e for an arbitrary error threshold by log-log
// interpolation between the learned samples (clamped at the ends).
func (m *Model) Segments(e int) float64 {
	if e < 1 {
		e = 1
	}
	i := sort.SearchInts(m.errs, e)
	if i < len(m.errs) && m.errs[i] == e {
		return float64(m.segs[i])
	}
	if i == 0 {
		return float64(m.segs[0])
	}
	if i == len(m.errs) {
		return float64(m.segs[len(m.segs)-1])
	}
	x0, x1 := math.Log(float64(m.errs[i-1])), math.Log(float64(m.errs[i]))
	y0, y1 := math.Log(float64(m.segs[i-1])+1), math.Log(float64(m.segs[i])+1)
	t := (math.Log(float64(e)) - x0) / (x1 - x0)
	return math.Exp(y0+t*(y1-y0)) - 1
}

// bufferSize returns the modeled insert-buffer capacity for error e.
func (m *Model) bufferSize(e int) float64 {
	return float64(e) * m.BufferFrac
}

// Latency predicts the lookup latency in nanoseconds for error threshold e
// (Section 6.1 Equation 1).
func (m *Model) Latency(e int) float64 {
	se := math.Max(1, m.Segments(e))
	tree := math.Log(se) / math.Log(float64(m.Fanout)) // log_b(S_e)
	seg := math.Log2(math.Max(2, float64(e)))
	buf := 0.0
	if bu := m.bufferSize(e); bu >= 2 {
		buf = math.Log2(bu)
	}
	return m.C * (tree + seg + buf)
}

// Size predicts the index size in bytes for error threshold e (Section 6.2
// Equation 1): a pessimistic bound on the inner tree plus 24 bytes of
// metadata per segment.
func (m *Model) Size(e int) int64 {
	se := math.Max(1, m.Segments(e))
	logb := math.Log(se) / math.Log(float64(m.Fanout))
	if logb < 1 {
		// Even a single-level tree stores each entry once.
		logb = 1
	}
	tree := m.Fill * se * logb * 16
	return int64(tree + se*24)
}

// entriesPerLine is how many 16-byte index entries share a 64-byte cache
// line; sequential moves during merges are charged one miss per line.
const entriesPerLine = 4

// InsertLatency predicts the insert latency in nanoseconds for error
// threshold e. The paper sketches this model in Section 6.1: an insert (1)
// walks the tree to the owning segment, (2) adds the key to the sorted
// buffer (binary search for the slot; the shift stays inside the cached
// buffer and is not charged a miss), and (3) pays the amortized cost of
// splitting a full segment — one sequential rewrite of the whole segment
// (data plus buffer, one miss per cache line) every bu inserts. The
// amortized term shrinking with the buffer is Figure 12's measured effect.
func (m *Model) InsertLatency(e int) float64 {
	se := math.Max(1, m.Segments(e))
	tree := math.Log(se) / math.Log(float64(m.Fanout))
	bu := math.Max(1, m.bufferSize(e))
	buffer := math.Log2(math.Max(2, bu))
	segLen := float64(m.Elements)/se + bu
	amortSplit := segLen / entriesPerLine / bu
	return m.C * (tree + buffer + amortSplit)
}

// PickForLatency returns the error threshold among candidates with the
// smallest predicted index size whose predicted latency satisfies
// maxLatencyNs (Section 6.1 Equation 2). ok is false if no candidate
// qualifies.
func (m *Model) PickForLatency(maxLatencyNs float64, candidates []int) (e int, ok bool) {
	bestSize := int64(math.MaxInt64)
	for _, c := range candidates {
		if m.Latency(c) > maxLatencyNs {
			continue
		}
		if s := m.Size(c); s < bestSize {
			bestSize, e, ok = s, c, true
		}
	}
	return e, ok
}

// PickForSpace returns the error threshold among candidates with the
// smallest predicted latency whose predicted size fits budgetBytes
// (Section 6.2 Equation 2). ok is false if no candidate qualifies.
func (m *Model) PickForSpace(budgetBytes int64, candidates []int) (e int, ok bool) {
	bestLat := math.Inf(1)
	for _, c := range candidates {
		if m.Size(c) > budgetBytes {
			continue
		}
		if l := m.Latency(c); l < bestLat {
			bestLat, e, ok = l, c, true
		}
	}
	return e, ok
}

// MeasureCacheMissNs estimates the cost c of a random memory access by
// timing a dependent pointer chase through a buffer much larger than the
// CPU caches. This is the same methodology the paper uses to pick c = 50ns
// for its hardware.
// cacheMiss memoizes the pointer-chase measurement process-wide: the cost
// of a random access is a property of the host, not of any one tree, and
// the chase itself walks a 64MB buffer for about a hundred milliseconds —
// far too expensive to repeat per Tune call or per background retune.
// ns <= 0 means "not yet measured".
var cacheMiss struct {
	mu sync.Mutex
	ns float64
}

// CacheMissNs returns the host's measured random-access cost in
// nanoseconds, running MeasureCacheMissNs on first use and caching the
// result for the life of the process. Tests override it with
// SetCacheMissNsForTest to stay fast and deterministic.
func CacheMissNs() float64 {
	cacheMiss.mu.Lock()
	defer cacheMiss.mu.Unlock()
	if cacheMiss.ns <= 0 {
		cacheMiss.ns = MeasureCacheMissNs(64<<20, 1_000_000)
	}
	return cacheMiss.ns
}

// SetCacheMissNsForTest pins the memoized cache-miss cost, skipping the
// measurement. It returns a restore function; tests call it as
// `defer SetCacheMissNsForTest(50)()`.
func SetCacheMissNsForTest(ns float64) func() {
	cacheMiss.mu.Lock()
	prev := cacheMiss.ns
	cacheMiss.ns = ns
	cacheMiss.mu.Unlock()
	return func() {
		cacheMiss.mu.Lock()
		cacheMiss.ns = prev
		cacheMiss.mu.Unlock()
	}
}

func MeasureCacheMissNs(bufBytes int, steps int) float64 {
	n := bufBytes / 8
	if n < 1024 {
		n = 1024
	}
	next := make([]int64, n)
	perm := rand.New(rand.NewSource(1)).Perm(n)
	// Build one random cycle so every load depends on the previous one.
	for i := 0; i < n-1; i++ {
		next[perm[i]] = int64(perm[i+1])
	}
	next[perm[n-1]] = int64(perm[0])
	idx := int64(perm[0])
	// Warm-up.
	for i := 0; i < n/16; i++ {
		idx = next[idx]
	}
	start := time.Now()
	for i := 0; i < steps; i++ {
		idx = next[idx]
	}
	elapsed := time.Since(start)
	if idx == -1 { // defeat dead-code elimination; never true
		panic("unreachable")
	}
	return float64(elapsed.Nanoseconds()) / float64(steps)
}
