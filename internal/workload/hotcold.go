package workload

import (
	"math/rand"

	"fitingtree/internal/num"
)

// HotCold draws n operation keys from the sorted base keys with a
// hot/cold skew: a hotFrac share of the draws falls inside a contiguous
// hot range covering a hotSpan fraction of the elements and starting at
// the hotAt element quantile; the remaining draws are uniform over all
// of base. hotFrac 1 yields hot-range-only draws, hotFrac 0 pure
// uniform. It models the concentrated access patterns the self-tuner
// exploits (most lookups against a small working set over a large cold
// key space). Deterministic per seed.
func HotCold[K num.Key](base []K, n int, hotAt, hotSpan, hotFrac float64, seed int64) []K {
	rng := rand.New(rand.NewSource(seed))
	lo, hi := HotRange(len(base), hotAt, hotSpan)
	out := make([]K, n)
	for i := range out {
		if rng.Float64() < hotFrac {
			out[i] = base[lo+rng.Intn(hi-lo)]
		} else {
			out[i] = base[rng.Intn(len(base))]
		}
	}
	return out
}

// HotRange returns the half-open element index range [lo, hi) of the hot
// range HotCold draws from: hotSpan of n elements starting at the hotAt
// quantile, clamped to stay inside [0, n) and never empty.
func HotRange(n int, hotAt, hotSpan float64) (lo, hi int) {
	lo = int(hotAt * float64(n))
	span := int(hotSpan * float64(n))
	if span < 1 {
		span = 1
	}
	if lo > n-span {
		lo = n - span
	}
	if lo < 0 {
		lo = 0
	}
	hi = lo + span
	if hi > n {
		hi = n
	}
	return lo, hi
}
