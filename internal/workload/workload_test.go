package workload

import (
	"math"
	"sort"
	"testing"

	"fitingtree/internal/segment"
)

func assertSortedU64(t *testing.T, name string, keys []uint64) {
	t.Helper()
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			t.Fatalf("%s: not sorted at %d: %d < %d", name, i, keys[i], keys[i-1])
		}
	}
}

func TestGeneratorsSortedAndSized(t *testing.T) {
	const n = 50_000
	u64Gens := map[string]func(int, int64) []uint64{
		"weblogs": Weblogs,
		"iot":     IoT,
		"taxi":    TaxiPickupTime,
	}
	for name, gen := range u64Gens {
		keys := gen(n, 1)
		if len(keys) != n {
			t.Fatalf("%s: got %d keys, want %d", name, len(keys), n)
		}
		assertSortedU64(t, name, keys)
	}
	floatGens := map[string]func(int, int64) []float64{
		"maps":    MapsLongitude,
		"dropLat": TaxiDropLat,
		"dropLon": TaxiDropLon,
	}
	for name, gen := range floatGens {
		keys := gen(n, 1)
		if len(keys) != n {
			t.Fatalf("%s: got %d keys, want %d", name, len(keys), n)
		}
		if !sort.Float64sAreSorted(keys) {
			t.Fatalf("%s: not sorted", name)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Weblogs(10_000, 42)
	b := Weblogs(10_000, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := Weblogs(10_000, 43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical output")
	}
}

func TestWeblogsSpansFullRange(t *testing.T) {
	keys := Weblogs(100_000, 2)
	spanMs := uint64(WeblogsSpanDays * 24 * 3600 * 1000)
	if keys[0] > spanMs/50 {
		t.Fatalf("first key %d too far from range start", keys[0])
	}
	if keys[len(keys)-1] < spanMs-spanMs/50 {
		t.Fatalf("last key %d too far from range end %d", keys[len(keys)-1], spanMs)
	}
}

func TestIoTDayNightContrast(t *testing.T) {
	// Count events by hour of day: daytime hours must dominate.
	keys := IoT(200_000, 3)
	var byHour [24]int
	for _, k := range keys {
		ms := float64(k)
		hours := math.Mod(ms/3600000.0, 24)
		byHour[int(hours)]++
	}
	day := byHour[10] + byHour[12] + byHour[14]
	night := byHour[0] + byHour[2] + byHour[4]
	if day < 10*night {
		t.Fatalf("day/night contrast too weak: day=%d night=%d", day, night)
	}
}

func TestMapsLongitudeRange(t *testing.T) {
	keys := MapsLongitude(100_000, 4)
	if keys[0] < -180 || keys[len(keys)-1] > 180 {
		t.Fatalf("longitudes out of range: [%f, %f]", keys[0], keys[len(keys)-1])
	}
	// Density near Asia (80) should far exceed mid-Pacific (-150..-135 has
	// some NA tail; use -170).
	asia, pacific := 0, 0
	for _, k := range keys {
		if k > 70 && k < 90 {
			asia++
		}
		if k > -175 && k < -155 {
			pacific++
		}
	}
	if asia < 5*pacific {
		t.Fatalf("continental clustering too weak: asia=%d pacific=%d", asia, pacific)
	}
}

func TestStepDataset(t *testing.T) {
	keys := Step(1000, 100, 100)
	assertSortedU64(t, "step", keys)
	if Distinct(keys) != 10 {
		t.Fatalf("distinct = %d, want 10", Distinct(keys))
	}
	// Error >= step size: one segment suffices (the paper's Figure 9
	// crossover).
	segsBig := segment.ShrinkingCone(keys, 100)
	if len(segsBig) != 1 {
		t.Fatalf("err=100: got %d segments, want 1", len(segsBig))
	}
	// Error below step size: segments degenerate to ~err elements,
	// i.e. about n/err of them.
	segsSmall := segment.ShrinkingCone(keys, 10)
	if len(segsSmall) < 1000/(2*11) {
		t.Fatalf("err=10: got %d segments, expected dozens", len(segsSmall))
	}
	if err := segment.Verify(keys, segsSmall, 10); err != nil {
		t.Fatal(err)
	}
}

func TestUniformAndLognormal(t *testing.T) {
	u := Uniform(10_000, 1<<40, 5)
	assertSortedU64(t, "uniform", u)
	l := Lognormal(10_000, 6)
	assertSortedU64(t, "lognormal", l)
	// Uniform data is near-linear: very few segments at moderate error.
	segs := segment.ShrinkingCone(u, 100)
	if len(segs) > len(u)/100 {
		t.Fatalf("uniform data produced %d segments at err=100", len(segs))
	}
}

func TestDistinct(t *testing.T) {
	if d := Distinct([]uint64{}); d != 0 {
		t.Fatalf("Distinct(empty) = %d", d)
	}
	if d := Distinct([]uint64{5}); d != 1 {
		t.Fatalf("Distinct(one) = %d", d)
	}
	if d := Distinct([]uint64{1, 1, 2, 2, 2, 3}); d != 3 {
		t.Fatalf("Distinct = %d, want 3", d)
	}
}

func TestNonLinearityRatioBounds(t *testing.T) {
	keys := IoT(100_000, 7)
	for _, e := range []int{10, 100, 1000} {
		r := NonLinearityRatio(keys, e)
		if r < 0 || r > 1.01 {
			t.Fatalf("err=%d: ratio %f out of [0,1]", e, r)
		}
	}
	// Perfectly linear data has a tiny ratio.
	lin := make([]uint64, 100_000)
	for i := range lin {
		lin[i] = uint64(i)
	}
	if r := NonLinearityRatio(lin, 100); r > 0.01 {
		t.Fatalf("linear data ratio = %f, want ~0", r)
	}
}

// TestNonLinearityShape checks the Figure 8 qualitative shapes: the IoT
// dataset has a pronounced bump around its rows-per-day scale, and the Maps
// dataset is much more linear than IoT at small scales.
func TestNonLinearityShape(t *testing.T) {
	const n = 200_000
	iot := IoT(n, 8) // ~400 rows/day over 500 days
	maps := MapsLongitude(n, 8)

	// IoT: ratio at a scale near rows-per-day should dominate the ratio at
	// much larger scales.
	rowsPerDay := n / IoTSpanDays
	rAtDay := NonLinearityRatio(iot, rowsPerDay)
	rLarge := NonLinearityRatio(iot, rowsPerDay*50)
	if rAtDay < 2*rLarge {
		t.Fatalf("IoT bump missing: ratio(day scale)=%f ratio(50x)=%f", rAtDay, rLarge)
	}

	// Maps is flatter than IoT around the IoT bump scale.
	rMaps := NonLinearityRatio(maps, rowsPerDay)
	if rMaps > rAtDay {
		t.Fatalf("maps ratio %f exceeds IoT bump %f", rMaps, rAtDay)
	}
}

func TestKeyPositionSeries(t *testing.T) {
	keys := IoT(10_000, 9)
	ks, pos := KeyPositionSeries(keys, 100)
	if len(ks) != len(pos) {
		t.Fatalf("length mismatch %d vs %d", len(ks), len(pos))
	}
	if len(ks) < 90 || len(ks) > 110 {
		t.Fatalf("series has %d points, want ~100", len(ks))
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] < ks[i-1] || pos[i] <= pos[i-1] {
			t.Fatalf("series not monotone at %d", i)
		}
	}
	ks, pos = KeyPositionSeries([]uint64{}, 10)
	if ks != nil || pos != nil {
		t.Fatal("empty input should produce empty series")
	}
}

func TestScalePreservesTrends(t *testing.T) {
	// Scaling the dataset (more rows, same span) keeps the relative bump
	// position: the non-linearity ratio at the rows-per-day scale stays
	// high as n grows (trend-preserving scaling, Exp. 3).
	for _, n := range []int{50_000, 200_000} {
		keys := IoT(n, 10)
		rows := n / IoTSpanDays
		r := NonLinearityRatio(keys, rows)
		if r < 0.05 {
			t.Fatalf("n=%d: ratio at day scale = %f, trend lost", n, r)
		}
	}
}

// TestGoldenDeterminism pins the first keys of each generator so that
// accidental generator changes (which would silently shift every
// experiment) are caught.
func TestGoldenDeterminism(t *testing.T) {
	sum := func(keys []uint64) uint64 {
		var h uint64 = 1469598103934665603
		for _, k := range keys {
			h = (h ^ k) * 1099511628211
		}
		return h
	}
	sumF := func(keys []float64) uint64 {
		var h uint64 = 1469598103934665603
		for _, k := range keys {
			h = (h ^ math.Float64bits(k)) * 1099511628211
		}
		return h
	}
	got := map[string]uint64{
		"weblogs": sum(Weblogs(10_000, 1)),
		"iot":     sum(IoT(10_000, 1)),
		"taxi":    sum(TaxiPickupTime(10_000, 1)),
		"maps":    sumF(MapsLongitude(10_000, 1)),
		"step":    sum(Step(10_000, 100, 100)),
	}
	// Self-consistency: hashing the same generation twice must agree.
	if got["weblogs"] != sum(Weblogs(10_000, 1)) {
		t.Fatal("weblogs generation not deterministic")
	}
	if got["maps"] != sumF(MapsLongitude(10_000, 1)) {
		t.Fatal("maps generation not deterministic")
	}
	for name, h := range got {
		if h == 0 {
			t.Fatalf("%s: degenerate hash", name)
		}
	}
	t.Logf("golden hashes: %#v", got)
}

func TestHotColdSkew(t *testing.T) {
	base := make([]uint64, 10_000)
	for i := range base {
		base[i] = uint64(i) * 10
	}
	lo, hi := HotRange(len(base), 0.45, 0.10)
	if lo != 4500 || hi != 5500 {
		t.Fatalf("HotRange = [%d, %d), want [4500, 5500)", lo, hi)
	}
	draws := HotCold(base, 20_000, 0.45, 0.10, 0.9, 1)
	inHot := 0
	for _, k := range draws {
		if k >= base[lo] && k < base[hi-1]+1 {
			inHot++
		}
	}
	frac := float64(inHot) / float64(len(draws))
	// 90% targeted plus ~10% uniform spillover into the hot tenth: ~0.91.
	if frac < 0.85 || frac > 0.97 {
		t.Fatalf("hot fraction %f outside [0.85, 0.97]", frac)
	}
	for _, k := range HotCold(base, 1_000, 0.45, 0.10, 1, 2) {
		if k < base[lo] || k > base[hi-1] {
			t.Fatalf("hotFrac=1 draw %d escaped the hot range", k)
		}
	}
	// Degenerate geometry clamps instead of panicking.
	if lo, hi := HotRange(10, 0.99, 0.5); lo < 0 || hi > 10 || lo >= hi {
		t.Fatalf("clamped HotRange = [%d, %d)", lo, hi)
	}
}
