package diskindex

import (
	"math/rand"
	"testing"

	"fitingtree/internal/pager"
	"fitingtree/internal/workload"
)

func storedColumn(t *testing.T, keys []uint64, frames int) (*Column, *pager.Pool) {
	t.Helper()
	pool := pager.NewPool(pager.NewDisk(), frames)
	col, err := StoreColumn(pool, keys)
	if err != nil {
		t.Fatal(err)
	}
	return col, pool
}

func TestStoreColumnRejectsUnsorted(t *testing.T) {
	pool := pager.NewPool(pager.NewDisk(), 4)
	if _, err := StoreColumn(pool, []uint64{2, 1}); err == nil {
		t.Fatal("accepted unsorted keys")
	}
}

func TestAllThreeLookupCorrectly(t *testing.T) {
	keys := workload.Weblogs(50_000, 1)
	col, _ := storedColumn(t, keys, 64)
	ft, err := NewFITing(col, 100, keys)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSparse(col, keys)
	if err != nil {
		t.Fatal(err)
	}
	bs := NewBinSearch(col)

	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		var k uint64
		want := i%2 == 0
		if want {
			k = keys[rng.Intn(len(keys))]
		} else {
			// Probe between keys; skip if it collides with a real key.
			k = keys[rng.Intn(len(keys))] + 1
			if idx := sortedIndex(keys, k); idx < len(keys) && keys[idx] == k {
				continue
			}
		}
		for name, lookup := range map[string]func(uint64) (bool, error){
			"fiting": ft.Lookup, "sparse": sp.Lookup, "binsearch": bs.Lookup,
		} {
			got, err := lookup(k)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got != want {
				t.Fatalf("%s: Lookup(%d) = %v, want %v", name, k, got, want)
			}
		}
	}
}

func sortedIndex(keys []uint64, k uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func TestFITingReadsFewerPagesThanBinarySearch(t *testing.T) {
	keys := workload.Weblogs(200_000, 3)
	col, pool := storedColumn(t, keys, 16) // tiny pool: little caching
	ft, err := NewFITing(col, 100, keys)
	if err != nil {
		t.Fatal(err)
	}
	bs := NewBinSearch(col)
	rng := rand.New(rand.NewSource(4))
	probes := make([]uint64, 500)
	for i := range probes {
		probes[i] = keys[rng.Intn(len(keys))]
	}

	pool.ResetStats()
	for _, k := range probes {
		if ok, err := ft.Lookup(k); err != nil || !ok {
			t.Fatalf("fiting Lookup(%d) = %v, %v", k, ok, err)
		}
	}
	ftMisses := pool.Stats().Misses

	pool.ResetStats()
	for _, k := range probes {
		if ok, err := bs.Lookup(k); err != nil || !ok {
			t.Fatalf("binsearch Lookup(%d) = %v, %v", k, ok, err)
		}
	}
	bsMisses := pool.Stats().Misses

	if ftMisses*3 > bsMisses {
		t.Fatalf("FITing misses %d not well below binary search %d", ftMisses, bsMisses)
	}
	// The bounded window means a handful of page reads per lookup at most.
	if perLookup := float64(ftMisses) / float64(len(probes)); perLookup > 4 {
		t.Fatalf("FITing reads %.1f pages per lookup, expected <= ~2", perLookup)
	}
}

func TestMemoryFootprintOrdering(t *testing.T) {
	keys := workload.IoT(100_000, 5)
	col, _ := storedColumn(t, keys, 64)
	ft, _ := NewFITing(col, 1000, keys)
	sp, _ := NewSparse(col, keys)
	bs := NewBinSearch(col)
	if bs.MemoryBytes() != 0 {
		t.Fatal("binary search should use no memory")
	}
	if ft.MemoryBytes() >= sp.MemoryBytes() {
		t.Fatalf("FITing memory %d not below sparse %d at E=1000", ft.MemoryBytes(), sp.MemoryBytes())
	}
	if ft.Segments() < 1 {
		t.Fatal("no segments")
	}
}

func TestLookupOutsideRange(t *testing.T) {
	keys := []uint64{100, 200, 300}
	col, _ := storedColumn(t, keys, 4)
	ft, _ := NewFITing(col, 10, keys)
	if ok, _ := ft.Lookup(50); ok {
		t.Fatal("found key below range")
	}
	if ok, _ := ft.Lookup(400); ok {
		t.Fatal("found key above range")
	}
	if ok, _ := ft.Lookup(200); !ok {
		t.Fatal("missed stored key")
	}
}
