// Package diskindex implements storage-backed clustered indexes over a
// sorted column that lives in heap pages behind a buffer pool. It exists
// for the disk-cost experiment (cmd/fitbench -exp extio): with the data on
// "disk", the interesting quantity is buffer-pool misses per lookup, and
// FITing-Tree's bounded search window translates directly into a bounded
// number of page reads while keeping its in-memory footprint tiny.
//
// Three competitors mirror the paper's in-memory evaluation:
//
//   - FITing: segment metadata in memory (one entry per segment), at most
//     the pages covering a 2E+1-record window read per lookup.
//   - Sparse: a first-key-per-disk-page index in memory (the disk analogue
//     of the Fixed baseline), exactly one data page read per lookup.
//   - BinSearch: no in-memory index; binary search over the pages.
package diskindex

import (
	"encoding/binary"
	"fmt"

	"fitingtree/internal/btree"
	"fitingtree/internal/heap"
	"fitingtree/internal/num"
	"fitingtree/internal/pager"
	"fitingtree/internal/segment"
)

// recSize is the stored record: an 8-byte key (the experiment's columns
// are uint64 keys; payloads would live in sibling columns).
const recSize = 8

// Column is a sorted uint64 column stored in heap pages.
type Column struct {
	table *heap.Table
	pool  *pager.Pool
	n     int
	buf   [recSize]byte
}

// StoreColumn writes sorted keys into a fresh heap table behind pool.
func StoreColumn(pool *pager.Pool, keys []uint64) (*Column, error) {
	t, err := heap.New(pool, recSize)
	if err != nil {
		return nil, err
	}
	var rec [recSize]byte
	for i, k := range keys {
		if i > 0 && k < keys[i-1] {
			return nil, fmt.Errorf("diskindex: keys not sorted at %d", i)
		}
		binary.LittleEndian.PutUint64(rec[:], k)
		if _, err := t.Append(rec[:]); err != nil {
			return nil, err
		}
	}
	if err := pool.FlushAll(); err != nil {
		return nil, err
	}
	return &Column{table: t, pool: pool, n: len(keys)}, nil
}

// Len returns the number of stored keys.
func (c *Column) Len() int { return c.n }

// PerPage returns keys per disk page.
func (c *Column) PerPage() int { return c.table.PerPage() }

// at reads key i through the buffer pool.
func (c *Column) at(i int) (uint64, error) {
	if err := c.table.GetAt(i, c.buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(c.buf[:]), nil
}

// searchRange binary-searches positions [lo, hi) for k, returning whether
// it is present. Every probe is a buffered page read.
func (c *Column) searchRange(lo, hi int, k uint64) (bool, error) {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		v, err := c.at(mid)
		if err != nil {
			return false, err
		}
		if v < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < c.n {
		v, err := c.at(lo)
		if err != nil {
			return false, err
		}
		return v == k, nil
	}
	return false, nil
}

// FITing is a disk-backed clustered FITing-Tree: in memory it keeps only
// one (start key, slope, start position) entry per segment.
type FITing struct {
	col  *Column
	err  int
	idx  *btree.Tree[uint64, segment.Segment[uint64]]
	segs int
}

// NewFITing builds the index by one pass of ShrinkingCone over the stored
// column (read back through the pool, as a bulk load over cold data
// would).
func NewFITing(col *Column, errT int, keys []uint64) (*FITing, error) {
	segs := segment.ShrinkingCone(keys, errT)
	idx := btree.New[uint64, segment.Segment[uint64]](btree.DefaultOrder)
	for _, s := range segs {
		idx.Insert(s.Start, s)
	}
	return &FITing{col: col, err: errT, idx: idx, segs: len(segs)}, nil
}

// Lookup reports whether k is stored, reading only the pages covering the
// prediction window.
func (f *FITing) Lookup(k uint64) (bool, error) {
	_, s, ok := f.idx.Floor(k)
	if !ok {
		return false, nil
	}
	pred := s.StartPos + int(s.Predict(k))
	lo := num.ClampInt(pred-f.err, s.StartPos, s.StartPos+s.Count-1)
	hi := num.ClampInt(pred+f.err+1, s.StartPos, s.StartPos+s.Count)
	return f.col.searchRange(lo, hi, k)
}

// Segments returns the number of segments (in-memory entries).
func (f *FITing) Segments() int { return f.segs }

// MemoryBytes returns the in-memory index footprint under the paper's
// accounting (inner tree + 24 bytes of metadata per segment).
func (f *FITing) MemoryBytes() int64 { return f.idx.Stats().SizeBytes + int64(f.segs)*24 }

// Sparse is the disk analogue of the Fixed baseline: an in-memory index of
// each disk page's first key. One data page read per lookup.
type Sparse struct {
	col *Column
	idx *btree.Tree[uint64, int] // first key -> first position of its page
}

// NewSparse builds the page index from the sorted keys.
func NewSparse(col *Column, keys []uint64) (*Sparse, error) {
	idx := btree.New[uint64, int](btree.DefaultOrder)
	per := col.PerPage()
	for at := 0; at < len(keys); at += per {
		idx.Insert(keys[at], at)
	}
	return &Sparse{col: col, idx: idx}, nil
}

// Lookup reports whether k is stored, binary-searching within one page.
func (s *Sparse) Lookup(k uint64) (bool, error) {
	_, start, ok := s.idx.Floor(k)
	if !ok {
		return false, nil
	}
	end := num.MinInt(start+s.col.PerPage(), s.col.Len())
	return s.col.searchRange(start, end, k)
}

// MemoryBytes returns the in-memory index footprint.
func (s *Sparse) MemoryBytes() int64 { return s.idx.Stats().SizeBytes }

// BinSearch is the index-free competitor: binary search across the whole
// column, one page read per probe.
type BinSearch struct {
	col *Column
}

// NewBinSearch wraps a stored column.
func NewBinSearch(col *Column) *BinSearch { return &BinSearch{col: col} }

// Lookup reports whether k is stored.
func (b *BinSearch) Lookup(k uint64) (bool, error) {
	return b.col.searchRange(0, b.col.Len(), k)
}

// MemoryBytes is always zero.
func (b *BinSearch) MemoryBytes() int64 { return 0 }
