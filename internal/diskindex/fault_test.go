package diskindex

import (
	"errors"
	"testing"

	"fitingtree/internal/pager"
)

// faultColumn builds a column over a fault-injecting device with a pool
// small enough that lookups must hit the device.
func faultColumn(t *testing.T, n int) (*Column, *pager.FaultDevice, []uint64) {
	t.Helper()
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 7
	}
	dev := pager.NewFaultDevice(pager.NewDisk())
	pool := pager.NewPool(dev, 2)
	col, err := StoreColumn(pool, keys)
	if err != nil {
		t.Fatal(err)
	}
	return col, dev, keys
}

// TestLookupSurfacesReadErrors injects a read fault and checks every
// competitor propagates it as an error instead of fabricating a result.
func TestLookupSurfacesReadErrors(t *testing.T) {
	col, dev, keys := faultColumn(t, 20_000)
	fit, err := NewFITing(col, 32, keys)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewSparse(col, keys)
	if err != nil {
		t.Fatal(err)
	}
	bin := NewBinSearch(col)

	lookups := map[string]func(uint64) (bool, error){
		"fiting": fit.Lookup,
		"sparse": sparse.Lookup,
		"bin":    bin.Lookup,
	}
	for name, lookup := range lookups {
		// Healthy lookups at two distant positions first, so the pool's two
		// frames hold unrelated pages and the probed key forces a device
		// read.
		if ok, err := lookup(keys[len(keys)/2]); err != nil || !ok {
			t.Fatalf("%s healthy lookup: %v %v", name, ok, err)
		}
		if ok, err := lookup(keys[len(keys)-1]); err != nil || !ok {
			t.Fatalf("%s healthy lookup: %v %v", name, ok, err)
		}
		dev.SetReadTrip(0)
		if _, err := lookup(keys[3]); !errors.Is(err, pager.ErrInjected) {
			t.Fatalf("%s lookup under read fault returned %v, want ErrInjected", name, err)
		}
		// Disarm: -1 means no trip; lookups must work again (the pool did
		// not cache the failed read).
		dev.SetReadTrip(-1)
		if ok, err := lookup(keys[3]); err != nil || !ok {
			t.Fatalf("%s lookup after disarm: %v %v", name, ok, err)
		}
	}
}

// TestReadFaultDoesNotPoisonPool checks a failed miss leaves no corrupt
// frame behind: the same page reads correctly once the fault clears.
func TestReadFaultDoesNotPoisonPool(t *testing.T) {
	col, dev, keys := faultColumn(t, 20_000)
	bin := NewBinSearch(col)
	for probe := 0; probe < 8; probe++ {
		dev.SetReadTrip(probe)
		_, err := bin.Lookup(keys[len(keys)-1])
		dev.SetReadTrip(-1)
		if err == nil {
			// The trip landed past this lookup's read count; the result
			// must then be correct.
			continue
		}
		if !errors.Is(err, pager.ErrInjected) {
			t.Fatalf("probe %d: unexpected error %v", probe, err)
		}
		if ok, err := bin.Lookup(keys[len(keys)-1]); err != nil || !ok {
			t.Fatalf("probe %d: lookup after fault cleared: %v %v", probe, ok, err)
		}
	}
	// Absent keys still report absent, never a fabricated hit.
	if ok, err := bin.Lookup(3); err != nil || ok {
		t.Fatalf("absent key: %v %v", ok, err)
	}
}
