// Package num defines the key constraint shared by every index structure
// in this repository and small helpers for interpolation arithmetic.
//
// FITing-Tree models an index as a monotonically increasing function from
// key to position and approximates it with piece-wise linear functions.
// That splits the key contract in two:
//
//   - exact ordering (Go's native < and == on the key type), which every
//     correctness decision uses — search, routing, tombstone matching,
//     invariant checks;
//   - an approximate weakly monotone projection Approx(k) float64, used
//     only for segment slope and interpolation arithmetic.
//
// Approx need not be injective: the segmentation algorithms verify
// positions by comparison, never by trusting floats, so Approx collisions
// (distinct keys with equal projections) can only loosen a predicted
// position — they never violate the error bound or return a wrong result.
// This is what lets ordered byte strings (see the keycodec package) join
// the numeric column types as first-class keys.
package num

import (
	"encoding/binary"
	"unsafe"
)

// Key is the set of column types an index can be built over: the ordered
// numerics plus ~string, whose native comparison is lexicographic byte
// order. String keys are projected to float64 via their leading 8 bytes
// (see Approx), which is weakly monotone — good enough for interpolation,
// while every exactness-bearing comparison uses the native ordering.
type Key interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64 | ~string
}

// Numeric is the subset of Key with exact numeric conversion semantics.
// Helpers that need real arithmetic on key values (not just an
// interpolation projection) constrain on Numeric.
//
// Conversion to float64 is exact for all float64 values and for integers
// with magnitude below 2^53; beyond that interpolation slopes lose a few
// low-order bits of precision, which only loosens the predicted position by
// a sub-integer amount and never violates the error bound enforced by the
// segmentation algorithms (they verify positions, not floats).
type Numeric interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// ToFloat converts a numeric key to float64 for exact-value arithmetic.
func ToFloat[K Numeric](k K) float64 { return float64(k) }

// Approx projects a key to float64 for slope and interpolation
// arithmetic. The projection is weakly monotone: a <= b implies
// Approx(a) <= Approx(b). For numeric keys it is the exact float64
// conversion (so the numeric fast path behaves exactly as ToFloat did);
// for string keys it is StringApprox of the leading bytes. Collisions are
// harmless by the package contract above.
func Approx[K Key](k K) float64 {
	switch v := any(k).(type) {
	case int:
		return float64(v)
	case int8:
		return float64(v)
	case int16:
		return float64(v)
	case int32:
		return float64(v)
	case int64:
		return float64(v)
	case uint:
		return float64(v)
	case uint8:
		return float64(v)
	case uint16:
		return float64(v)
	case uint32:
		return float64(v)
	case uint64:
		return float64(v)
	case float32:
		return float64(v)
	case float64:
		return v
	case string:
		return StringApprox(v)
	}
	return approxSlow(k)
}

// StringApprox is the weakly monotone float64 projection of a string key:
// its first 8 bytes read as a big-endian uint64 (missing bytes are zero).
// Strings sharing an 8-byte prefix collide, which degrades interpolation
// but never correctness.
func StringApprox(s string) float64 {
	return float64(StringPrefix(s))
}

// StringPrefix reads the first 8 bytes of s as a big-endian uint64
// (missing bytes are zero). It is weakly monotone — StringPrefix(a) <
// StringPrefix(b) implies a < b — so an unequal prefix pair decides a
// string comparison with one integer compare; only equal prefixes need
// the full byte-wise comparison. The hot search loops use it to avoid a
// runtime string-compare call per probe on ordered-bytes keys.
func StringPrefix(s string) uint64 {
	if len(s) >= 8 {
		// One 8-byte load (the compiler combines BigEndian.Uint64's byte
		// loads); the unsafe view is read-only and never outlives s. The
		// equivalent shift-or chain on s directly is too large for the
		// inliner, and this runs once per probe of every search loop.
		return binary.BigEndian.Uint64(unsafe.Slice(unsafe.StringData(s), 8))
	}
	return stringPrefixShort(s)
}

// stringPrefixShort pads strings shorter than 8 bytes with trailing
// zeros; split out so StringPrefix's fixed-width fast path stays
// inlinable in the search loops.
func stringPrefixShort(s string) uint64 {
	var u uint64
	for i := 0; i < len(s); i++ {
		u |= uint64(s[i]) << (56 - 8*i)
	}
	return u
}

// MaxInt returns the larger of two ints.
func MaxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MinInt returns the smaller of two ints.
func MinInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ClampInt limits v to the inclusive range [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// AbsInt returns the absolute value of an int.
func AbsInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
