// Package num defines the numeric key constraint shared by every index
// structure in this repository and small helpers for interpolation
// arithmetic.
//
// FITing-Tree models an index as a monotonically increasing function from
// key to position and approximates it with piece-wise linear functions, so
// keys must support ordered comparison and conversion to float64 for slope
// arithmetic. All integer and floating-point column types used in the
// paper's evaluation (timestamps, longitudes, latitudes) satisfy Key.
package num

// Key is the set of column types an index can be built over.
//
// Conversion to float64 is exact for all float64 values and for integers
// with magnitude below 2^53; beyond that interpolation slopes lose a few
// low-order bits of precision, which only loosens the predicted position by
// a sub-integer amount and never violates the error bound enforced by the
// segmentation algorithms (they verify positions, not floats).
type Key interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// ToFloat converts a key to float64 for slope and interpolation arithmetic.
func ToFloat[K Key](k K) float64 { return float64(k) }

// MaxInt returns the larger of two ints.
func MaxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MinInt returns the smaller of two ints.
func MinInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ClampInt limits v to the inclusive range [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// AbsInt returns the absolute value of an int.
func AbsInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
