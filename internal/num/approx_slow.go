package num

import "reflect"

// approxSlow projects named key types (whose dynamic type does not match
// the builtin cases in Approx's type switch) via reflection. It is off
// the hot path: segment construction calls Approx once per key during
// training, and named key types are rare.
func approxSlow[K Key](k K) float64 {
	rv := reflect.ValueOf(k)
	switch rv.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return float64(rv.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return float64(rv.Uint())
	case reflect.Float32, reflect.Float64:
		return rv.Float()
	case reflect.String:
		return StringApprox(rv.String())
	}
	panic("num: key type outside the Key constraint")
}
