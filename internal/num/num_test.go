package num

import (
	"math"
	"testing"
)

func TestToFloat(t *testing.T) {
	if ToFloat(uint64(42)) != 42.0 {
		t.Fatal("uint64 conversion")
	}
	if ToFloat(int32(-7)) != -7.0 {
		t.Fatal("int32 conversion")
	}
	if ToFloat(1.5) != 1.5 {
		t.Fatal("float64 conversion")
	}
	// Documented precision limit: exact below 2^53.
	if ToFloat(uint64(1)<<53) != math.Pow(2, 53) {
		t.Fatal("2^53 conversion")
	}
}

func TestMinMaxClampAbs(t *testing.T) {
	if MaxInt(3, 5) != 5 || MaxInt(5, 3) != 5 {
		t.Fatal("MaxInt")
	}
	if MinInt(3, 5) != 3 || MinInt(5, 3) != 3 {
		t.Fatal("MinInt")
	}
	if ClampInt(7, 0, 5) != 5 || ClampInt(-2, 0, 5) != 0 || ClampInt(3, 0, 5) != 3 {
		t.Fatal("ClampInt")
	}
	if AbsInt(-9) != 9 || AbsInt(9) != 9 || AbsInt(0) != 0 {
		t.Fatal("AbsInt")
	}
}
