package segment

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStreamerMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		keys := sortedUint64(rng, 500+rng.Intn(4000))
		for _, e := range []int{1, 7, 64} {
			batch := ShrinkingCone(keys, e)
			var streamed []Segment[uint64]
			st, err := NewStreamer(e, func(s Segment[uint64]) { streamed = append(streamed, s) })
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range keys {
				if err := st.Push(k); err != nil {
					t.Fatal(err)
				}
			}
			if st.Count() != len(keys) {
				t.Fatalf("Count = %d, want %d", st.Count(), len(keys))
			}
			if got := st.Flush(); got != len(keys) {
				t.Fatalf("Flush = %d, want %d", got, len(keys))
			}
			if len(streamed) != len(batch) {
				t.Fatalf("trial %d e=%d: streamed %d segments, batch %d", trial, e, len(streamed), len(batch))
			}
			for i := range batch {
				if streamed[i] != batch[i] {
					t.Fatalf("trial %d e=%d segment %d: %+v vs %+v", trial, e, i, streamed[i], batch[i])
				}
			}
		}
	}
}

func TestStreamerValidation(t *testing.T) {
	if _, err := NewStreamer[uint64](0, func(Segment[uint64]) {}); err == nil {
		t.Fatal("accepted error 0")
	}
	if _, err := NewStreamer[uint64](5, nil); err == nil {
		t.Fatal("accepted nil emit")
	}
	st, _ := NewStreamer(5, func(Segment[uint64]) {})
	st.Push(10)
	if err := st.Push(9); err == nil {
		t.Fatal("accepted descending key")
	}
}

func TestStreamerEmptyFlush(t *testing.T) {
	emitted := 0
	st, _ := NewStreamer(5, func(Segment[uint64]) { emitted++ })
	if st.Flush() != 0 || emitted != 0 {
		t.Fatal("flush of empty streamer emitted segments")
	}
	// Reuse after flush.
	st.Push(1)
	st.Push(2)
	if st.Flush() != 2 || emitted != 1 {
		t.Fatalf("reuse after flush broken: emitted=%d", emitted)
	}
}

func TestStreamerHugeKeysExactStart(t *testing.T) {
	// Start keys above 2^53 must round-trip exactly (they are kept as K,
	// not reconstructed from the float cone origin).
	base := uint64(1)<<60 + 12345
	keys := []uint64{base, base + 1, base + 2, base + 3}
	var segs []Segment[uint64]
	st, _ := NewStreamer(2, func(s Segment[uint64]) { segs = append(segs, s) })
	for _, k := range keys {
		if err := st.Push(k); err != nil {
			t.Fatal(err)
		}
	}
	st.Flush()
	if segs[0].Start != base {
		t.Fatalf("start key %d, want %d", segs[0].Start, base)
	}
}

// Property: streaming and batch segmentation agree on arbitrary sorted
// float inputs.
func TestQuickStreamerEquivalence(t *testing.T) {
	f := func(raw []uint16) bool {
		keys := make([]float64, len(raw))
		for i, r := range raw {
			keys[i] = float64(r % 1000)
		}
		// Sort ascending.
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		if len(keys) == 0 {
			return true
		}
		batch := ShrinkingCone(keys, 3)
		var streamed []Segment[float64]
		st, err := NewStreamer(3, func(s Segment[float64]) { streamed = append(streamed, s) })
		if err != nil {
			return false
		}
		for _, k := range keys {
			if st.Push(k) != nil {
				return false
			}
		}
		st.Flush()
		if len(streamed) != len(batch) {
			return false
		}
		for i := range batch {
			if streamed[i] != batch[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
