package segment

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// sortedUint64 produces n sorted keys from a mixture of gap distributions
// so segments of many shapes arise.
func sortedUint64(rng *rand.Rand, n int) []uint64 {
	keys := make([]uint64, n)
	cur := uint64(rng.Intn(1000))
	for i := range keys {
		keys[i] = cur
		switch rng.Intn(4) {
		case 0:
			// duplicate run
		case 1:
			cur += 1
		case 2:
			cur += uint64(rng.Intn(10))
		default:
			cur += uint64(rng.Intn(10000))
		}
	}
	return keys
}

func TestShrinkingConeEmptyAndTiny(t *testing.T) {
	if segs := ShrinkingCone([]uint64{}, 10); segs != nil {
		t.Fatalf("empty input produced %d segments", len(segs))
	}
	segs := ShrinkingCone([]uint64{42}, 10)
	if len(segs) != 1 || segs[0].Count != 1 || segs[0].Start != 42 {
		t.Fatalf("single key: %+v", segs)
	}
	if err := Verify([]uint64{42}, segs, 10); err != nil {
		t.Fatal(err)
	}
	segs = ShrinkingCone([]uint64{1, 2}, 10)
	if len(segs) != 1 {
		t.Fatalf("two keys should form one segment, got %d", len(segs))
	}
}

func TestShrinkingConePanicsOnBadInput(t *testing.T) {
	assertPanics(t, func() { ShrinkingCone([]uint64{1, 2}, 0) }, "error threshold 0")
	assertPanics(t, func() { ShrinkingCone([]uint64{2, 1}, 10) }, "unsorted keys")
	assertPanics(t, func() { OptimalCount([]uint64{2, 1}, 10) }, "unsorted keys (optimal)")
}

func assertPanics(t *testing.T, fn func(), what string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestLinearDataOneSegment(t *testing.T) {
	// Perfectly linear data must always be a single segment regardless of
	// the error threshold.
	keys := make([]uint64, 100_000)
	for i := range keys {
		keys[i] = uint64(i) * 7
	}
	for _, e := range []int{1, 10, 100} {
		segs := ShrinkingCone(keys, e)
		if len(segs) != 1 {
			t.Fatalf("err=%d: linear data split into %d segments", e, len(segs))
		}
		if err := Verify(keys, segs, e); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDuplicateRuns(t *testing.T) {
	// 1000 copies of each of 10 keys. With err=99 each duplicate run needs
	// ceil(1000/100) = 10 segments; with err=1999 everything can collapse
	// far more aggressively.
	var keys []uint64
	for k := 0; k < 10; k++ {
		for i := 0; i < 1000; i++ {
			keys = append(keys, uint64(k*1_000_000))
		}
	}
	segs := ShrinkingCone(keys, 99)
	if err := Verify(keys, segs, 99); err != nil {
		t.Fatal(err)
	}
	// Theorem 3.1: every maximal segment covers at least err+1 = 100
	// locations, so at most ceil(10000/100) = 100 segments; and duplicate
	// runs of 1000 with err 99 cannot be covered by a handful of segments.
	if len(segs) > 101 {
		t.Fatalf("err=99: got %d segments, theorem bound is 100", len(segs))
	}
	if len(segs) < 50 {
		t.Fatalf("err=99: got %d segments, expected dozens for 10x1000 duplicate runs", len(segs))
	}
	segs2 := ShrinkingCone(keys, 1999)
	if err := Verify(keys, segs2, 1999); err != nil {
		t.Fatal(err)
	}
	if len(segs2) >= len(segs) {
		t.Fatalf("larger error should not need more segments: %d vs %d", len(segs2), len(segs))
	}
}

func TestVerifyDetectsViolations(t *testing.T) {
	keys := []uint64{0, 10, 20, 30, 40}
	segs := ShrinkingCone(keys, 2)
	// Corrupt the slope badly.
	bad := append([]Segment[uint64](nil), segs...)
	bad[0].Slope = 100
	if err := Verify(keys, bad, 2); err == nil {
		t.Fatal("Verify accepted corrupted slope")
	}
	// Wrong coverage.
	if err := Verify(keys, segs[:0], 2); err == nil {
		t.Fatal("Verify accepted missing segments")
	}
	// Wrong start position.
	bad2 := append([]Segment[uint64](nil), segs...)
	bad2[0].StartPos = 1
	if err := Verify(keys, bad2, 2); err == nil {
		t.Fatal("Verify accepted wrong start position")
	}
}

func TestShrinkingConeErrorBoundRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 100 + rng.Intn(5000)
		keys := sortedUint64(rng, n)
		for _, e := range []int{1, 2, 10, 100} {
			segs := ShrinkingCone(keys, e)
			if err := Verify(keys, segs, e); err != nil {
				t.Fatalf("trial %d err=%d: %v", trial, e, err)
			}
		}
	}
}

func TestSegmentCountBound(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		keys := sortedUint64(rng, 2000+rng.Intn(3000))
		distinct := 1
		for i := 1; i < len(keys); i++ {
			if keys[i] != keys[i-1] {
				distinct++
			}
		}
		for _, e := range []int{1, 5, 50} {
			got := len(ShrinkingCone(keys, e))
			bound := MaxSegmentsBound(distinct, len(keys), e)
			if got > bound+1 {
				t.Fatalf("trial %d err=%d: %d segments exceeds bound %d (distinct=%d n=%d)",
					trial, e, got, bound, distinct, len(keys))
			}
		}
	}
}

func TestTheorem31MaximalSegmentCoverage(t *testing.T) {
	// Every maximal segment (all but possibly the last) must cover at
	// least err+1 locations.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		keys := sortedUint64(rng, 3000)
		for _, e := range []int{1, 10, 50} {
			segs := ShrinkingCone(keys, e)
			for i := 0; i < len(segs)-1; i++ {
				if segs[i].Count < e+1 {
					t.Fatalf("trial %d err=%d: maximal segment %d covers %d < %d locations",
						trial, e, i, segs[i].Count, e+1)
				}
			}
		}
	}
}

func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 15; trial++ {
		keys := sortedUint64(rng, 500+rng.Intn(2000))
		for _, e := range []int{1, 5, 25} {
			greedy := len(ShrinkingCone(keys, e))
			opt := OptimalCount(keys, e)
			free := OptimalFreeSlope(keys, e)
			if opt > greedy {
				t.Fatalf("trial %d err=%d: optimal %d > greedy %d", trial, e, opt, greedy)
			}
			if free > opt {
				t.Fatalf("trial %d err=%d: free-slope optimal %d > endpoint optimal %d", trial, e, free, opt)
			}
			if opt < 1 {
				t.Fatalf("trial %d err=%d: optimal count %d", trial, e, opt)
			}
		}
	}
}

func TestOptimalSegmentsValidAndMatchCount(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 10; trial++ {
		keys := sortedUint64(rng, 300+rng.Intn(1500))
		for _, e := range []int{2, 20} {
			segs := Optimal(keys, e)
			if err := Verify(keys, segs, e); err != nil {
				t.Fatalf("trial %d err=%d: %v", trial, e, err)
			}
			if len(segs) != OptimalCount(keys, e) {
				t.Fatalf("trial %d err=%d: reconstruction %d segments, count says %d",
					trial, e, len(segs), OptimalCount(keys, e))
			}
		}
	}
}

func TestOptimalOnLinearData(t *testing.T) {
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = uint64(i * 3)
	}
	if got := OptimalCount(keys, 1); got != 1 {
		t.Fatalf("linear data optimal = %d, want 1", got)
	}
}

// TestShrinkingConeNotCompetitive reproduces Appendix A.3 / Figure 14: on
// the adversarial input, greedy produces ~rounds segments while the optimal
// anchored segmentation stays constant.
func TestShrinkingConeNotCompetitive(t *testing.T) {
	const e = 100
	for _, rounds := range []int{5, 20, 50} {
		keys := Adversarial(e, rounds)
		if !sort.Float64sAreSorted(keys) {
			t.Fatal("adversarial input not sorted")
		}
		greedy := ShrinkingCone(keys, e)
		if err := Verify(keys, greedy, e); err != nil {
			t.Fatal(err)
		}
		opt := OptimalCount(keys, e)
		if len(greedy) < rounds {
			t.Fatalf("rounds=%d: greedy produced only %d segments, construction is off", rounds, len(greedy))
		}
		if opt > 4 {
			t.Fatalf("rounds=%d: optimal needs %d segments, expected O(1)", rounds, opt)
		}
		t.Logf("rounds=%d: greedy=%d optimal=%d ratio=%.1f", rounds, len(greedy), opt, float64(len(greedy))/float64(opt))
	}
}

func TestWindowContainsTruePosition(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	keys := sortedUint64(rng, 4000)
	const e = 8
	segs := ShrinkingCone(keys, e)
	pos := 0
	for _, s := range segs {
		for i := 0; i < s.Count; i++ {
			lo, hi := s.Window(keys[pos+i], e)
			if i < lo || i > hi {
				t.Fatalf("true offset %d outside window [%d,%d] for key %v", i, lo, hi, keys[pos+i])
			}
		}
		pos += s.Count
	}
}

func TestWindowClamped(t *testing.T) {
	s := Segment[uint64]{Start: 100, StartPos: 0, Count: 10, Slope: 1}
	lo, hi := s.Window(1, 5) // key far below start: prediction is very negative
	if lo < 0 || hi > 9 || lo > hi {
		t.Fatalf("window [%d,%d] not clamped to [0,9]", lo, hi)
	}
	lo, hi = s.Window(10_000, 5) // far above
	if lo < 0 || hi > 9 || lo > hi {
		t.Fatalf("window [%d,%d] not clamped to [0,9]", lo, hi)
	}
}

func TestMaxSegmentsBound(t *testing.T) {
	if b := MaxSegmentsBound(10, 100, 9); b != 5 {
		t.Fatalf("bound = %d, want min(5, 10) = 5", b)
	}
	if b := MaxSegmentsBound(1000, 100, 99); b != 1 {
		t.Fatalf("bound = %d, want 1", b)
	}
	if b := MaxSegmentsBound(0, 0, 10); b != 1 {
		t.Fatalf("bound = %d, want at least 1", b)
	}
}

// Property: segmentation with a larger error threshold never produces more
// segments, and both segmentations satisfy their own bounds.
func TestQuickMonotoneInError(t *testing.T) {
	f := func(raw []uint16, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		keys := make([]uint64, len(raw))
		for i, r := range raw {
			keys[i] = uint64(r)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		s1 := ShrinkingCone(keys, 2)
		s2 := ShrinkingCone(keys, 20)
		if Verify(keys, s1, 2) != nil || Verify(keys, s2, 20) != nil {
			return false
		}
		return len(s2) <= len(s1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: float keys segment correctly too (longitude-style data).
func TestQuickFloatKeys(t *testing.T) {
	f := func(raw []float32) bool {
		keys := make([]float64, 0, len(raw))
		for _, r := range raw {
			f := float64(r)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				continue
			}
			keys = append(keys, f)
		}
		sort.Float64s(keys)
		if len(keys) == 0 {
			return true
		}
		segs := ShrinkingCone(keys, 4)
		return Verify(keys, segs, 4) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkShrinkingCone1M(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	keys := sortedUint64(rng, 1_000_000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ShrinkingCone(keys, 100)
	}
}
