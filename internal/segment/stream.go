package segment

import (
	"fmt"

	"fitingtree/internal/num"
)

// Streamer runs the ShrinkingCone algorithm incrementally: keys are pushed
// one at a time (in ascending order) and completed segments are emitted as
// soon as they close. It is the one-pass bulk-loading form of Section 3 —
// an index can be built from a scan, an iterator, or a network stream
// without materializing the whole key column first, using O(1) working
// memory beyond the emitted segments.
type Streamer[K num.Key] struct {
	err     float64
	c       cone
	start   int // position of the current segment's first key
	startK  K   // the current segment's first key, kept exactly
	n       int // keys consumed
	lastKey K
	emit    func(Segment[K])
}

// NewStreamer creates a streaming segmenter with error threshold err that
// calls emit for every completed segment in order.
func NewStreamer[K num.Key](err int, emit func(Segment[K])) (*Streamer[K], error) {
	if err < 1 {
		return nil, fmt.Errorf("segment: error threshold %d < 1", err)
	}
	if emit == nil {
		return nil, fmt.Errorf("segment: nil emit callback")
	}
	return &Streamer[K]{err: float64(err), emit: emit}, nil
}

// Push consumes the next key. Keys must be pushed in ascending order
// (duplicates allowed).
func (s *Streamer[K]) Push(k K) error {
	if s.n == 0 {
		s.c = newCone(num.Approx(k), 0)
		s.startK = k
		s.lastKey = k
		s.n = 1
		return nil
	}
	if k < s.lastKey {
		return fmt.Errorf("segment: key %v pushed after %v", k, s.lastKey)
	}
	if !s.c.absorb(num.Approx(k), s.n, s.err) {
		s.emit(Segment[K]{
			Start:    s.startK,
			StartPos: s.start,
			Count:    s.n - s.start,
			Slope:    s.c.slope(),
		})
		s.start = s.n
		s.startK = k
		s.c = newCone(num.Approx(k), s.n)
	}
	s.lastKey = k
	s.n++
	return nil
}

// Flush emits the final open segment (if any) and resets the streamer.
// The total number of keys consumed is returned.
func (s *Streamer[K]) Flush() int {
	if s.n > s.start {
		s.emit(Segment[K]{
			Start:    s.startK,
			StartPos: s.start,
			Count:    s.n - s.start,
			Slope:    s.c.slope(),
		})
	}
	n := s.n
	s.n = 0
	s.start = 0
	return n
}

// Count returns the number of keys consumed since creation or the last
// Flush.
func (s *Streamer[K]) Count() int { return s.n }
