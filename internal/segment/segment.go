// Package segment implements the piece-wise linear segmentation at the core
// of FITing-Tree (Section 3 of the paper).
//
// A segment is a contiguous region of a sorted array such that every
// element's position is within a fixed error threshold of the position
// predicted by linear interpolation from the segment's first key. The
// objective is the maximal error norm E-infinity, not least squares: the
// error bound is what bounds the local search window after interpolation.
//
// Segment semantics follow the paper's Section 3.1 exactly: a segment's
// line is anchored at the segment's first point and passes through its last
// point, and a key may end a segment only if that line keeps every interior
// point within the error threshold. The ShrinkingCone greedy (Algorithm 2)
// tests this in O(1) per key by maintaining the cone of slopes that satisfy
// all absorbed points.
//
// Three segmentation algorithms are provided:
//
//   - ShrinkingCone: the paper's greedy one-pass algorithm. O(n) time,
//     O(1) working memory. Not competitive in the worst case (Appendix
//     A.3, reproduced by Adversarial), but close to optimal on real
//     distributions (Table 1).
//   - Optimal: exact minimal segmentation under the same endpoint-anchored
//     semantics, via dynamic programming. The paper's implementation needs
//     O(n^2) memory; this one streams per-origin cones and needs O(n)
//     memory (time remains O(n^2) worst case), so it runs on much larger
//     samples than the paper's 768 GB server allowed.
//   - OptimalFreeSlope: exact minimal segmentation when the slope may be
//     chosen freely (the line is anchored at the first point only). This
//     is a strictly more powerful segment family, so its count lower-bounds
//     Optimal. Included as an ablation of the paper's design choice.
//
// All treat duplicate keys the way a secondary (non-clustered) index needs:
// a run of equal keys is feasible inside a segment as long as the run's
// positional spread stays within the error threshold.
//
// A Segment is a pure value: it references its data only through
// (StartPos, Count) offsets, never through pointers, so the table pages
// built around segments are themselves shareable values. internal/core
// relies on that for its copy-on-write flush — a re-segmented region
// yields fresh Segment values while every untouched page (and the Segment
// inside it) is shared between the old and new tree states.
package segment

import (
	"fmt"
	"math"

	"fitingtree/internal/num"
)

// Segment is one linear piece of the key->position approximation.
//
// Predicted positions are relative to StartPos:
//
//	pred(k) = StartPos + (k - Start) * Slope
//
// and every covered element's true position deviates from pred by at most
// the error threshold used during segmentation.
type Segment[K num.Key] struct {
	Start    K       // first key covered by this segment
	StartPos int     // position of the first covered element in the source array
	Count    int     // number of elements covered (>= 1)
	Slope    float64 // positions per key unit; 0 for single-key segments
}

// Predict returns the (unclamped, real-valued) predicted position of k
// relative to the start of the segment's data, i.e. nominally in [0, Count).
func (s Segment[K]) Predict(k K) float64 {
	return (num.Approx(k) - num.Approx(s.Start)) * s.Slope
}

// Window returns the inclusive local-search window [lo, hi] of offsets
// inside the segment's data that must contain k if k is covered by the
// segment, for the given error threshold. The window is the interpolated
// position widened by the error bound and clamped to the segment.
func (s Segment[K]) Window(k K, err int) (lo, hi int) {
	p := s.Predict(k)
	lo = num.ClampInt(int(math.Floor(p))-err, 0, s.Count-1)
	hi = num.ClampInt(int(math.Ceil(p))+err, 0, s.Count-1)
	return lo, hi
}

// EndPos returns the position just past the last covered element.
func (s Segment[K]) EndPos() int { return s.StartPos + s.Count }

// cone tracks, per Algorithm 2, the range of end-point slopes that keep
// every absorbed point of a segment within the error threshold. The
// segment's line is anchored at the origin (x0, y0); a candidate end point
// is feasible iff the slope of origin->candidate lies inside [low, high].
type cone struct {
	x0, y0    float64
	low, high float64
	lastSlope float64 // slope to the most recent absorbed point with dx > 0
	narrowed  bool    // whether any dx > 0 point has been absorbed
}

func newCone(x0 float64, y0 int) cone {
	return cone{x0: x0, y0: float64(y0), low: 0, high: math.Inf(1)}
}

// endpointFeasible reports whether the segment could end at (x, y): the
// line from the origin through (x, y) must keep every previously
// constrained point within err, i.e. its slope must lie in the cone.
func (c *cone) endpointFeasible(x float64, y int, err float64) bool {
	dy := float64(y) - c.y0
	dx := x - c.x0
	if dx <= 0 {
		// Duplicate of the origin key (monotone input, so dx == 0). The
		// line always passes through the origin, so the prediction at this
		// x is exactly y0: feasible iff the positional spread fits.
		return dy <= err && c.low <= c.high
	}
	slope := dy / dx
	return slope >= c.low && slope <= c.high
}

// constrain narrows the cone with (x, y)'s +-err corridor (the constraint
// the point imposes on every later end point) and reports whether the cone
// is still non-empty.
func (c *cone) constrain(x float64, y int, err float64) bool {
	dy := float64(y) - c.y0
	dx := x - c.x0
	if dx <= 0 {
		// A duplicate of the origin predicts exactly y0; if its true
		// position is out of range, no end point can ever fix that.
		if dy > err {
			c.low, c.high = 1, 0 // empty
			return false
		}
		return true
	}
	if h := (dy + err) / dx; h < c.high {
		c.high = h
	}
	if l := (dy - err) / dx; l > c.low {
		c.low = l
	}
	return c.low <= c.high
}

// absorb is the greedy step of Algorithm 2: test (x, y) as the new end
// point and, if feasible, constrain the cone with it. On failure the cone
// is unchanged and the caller must start a new segment at (x, y).
func (c *cone) absorb(x float64, y int, err float64) bool {
	if !c.endpointFeasible(x, y, err) {
		return false
	}
	dx := x - c.x0
	c.constrain(x, y, err)
	if dx > 0 {
		c.lastSlope = (float64(y) - c.y0) / dx
		c.narrowed = true
	}
	return true
}

// slope returns the segment's slope: the line from the origin through the
// last absorbed end point, or 0 for a segment holding a single distinct key
// (duplicates of the origin all predict offset 0).
func (c *cone) slope() float64 {
	if !c.narrowed {
		return 0
	}
	return c.lastSlope
}

// ShrinkingCone partitions sorted keys into segments using the paper's
// greedy one-pass algorithm (Algorithm 2) with error threshold err.
// keys must be sorted ascending (duplicates allowed); err must be >= 1.
// The returned segments are disjoint, contiguous, and cover all of keys.
func ShrinkingCone[K num.Key](keys []K, err int) []Segment[K] {
	if err < 1 {
		panic(fmt.Sprintf("segment: error threshold %d < 1", err))
	}
	if len(keys) == 0 {
		return nil
	}
	e := float64(err)
	segs := make([]Segment[K], 0, 16)
	c := newCone(num.Approx(keys[0]), 0)
	start := 0
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			panic(fmt.Sprintf("segment: keys not sorted at index %d", i))
		}
		if c.absorb(num.Approx(keys[i]), i, e) {
			continue
		}
		segs = append(segs, Segment[K]{
			Start:    keys[start],
			StartPos: start,
			Count:    i - start,
			Slope:    c.slope(),
		})
		start = i
		c = newCone(num.Approx(keys[i]), i)
	}
	segs = append(segs, Segment[K]{
		Start:    keys[start],
		StartPos: start,
		Count:    len(keys) - start,
		Slope:    c.slope(),
	})
	return segs
}

// checkSorted panics if keys are not ascending or err < 1.
func checkSorted[K num.Key](keys []K, err int) {
	if err < 1 {
		panic(fmt.Sprintf("segment: error threshold %d < 1", err))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			panic(fmt.Sprintf("segment: keys not sorted at index %d", i))
		}
	}
}

// OptimalCount returns the exact minimal number of segments (under the
// paper's endpoint-anchored semantics) that cover keys with error
// threshold err. Memory is O(n); time is O(n * L) where L is the longest
// stretch over which a per-origin cone stays non-empty, so it is meant for
// evaluation-sized samples (Table 1), not for index builds.
func OptimalCount[K num.Key](keys []K, err int) int {
	count, _ := optimalDP(keys, err, false)
	return count
}

// Optimal returns an exact minimal segmentation of keys under the same
// semantics as ShrinkingCone. Intended for evaluation and testing.
func Optimal[K num.Key](keys []K, err int) []Segment[K] {
	_, parents := optimalDP(keys, err, true)
	if parents == nil {
		return nil
	}
	var bounds []int
	for k := len(parents) - 1; k >= 0; k = parents[k] - 1 {
		bounds = append(bounds, parents[k])
	}
	segs := make([]Segment[K], 0, len(bounds))
	e := float64(err)
	for i := len(bounds) - 1; i >= 0; i-- {
		start := bounds[i]
		end := len(parents)
		if i > 0 {
			end = bounds[i-1]
		}
		segs = append(segs, buildSegment(keys, start, end, e))
	}
	return segs
}

// optimalDP runs the minimal-segmentation DP:
//
//	T[k] = 1 + min{ T[j-1] : segment [j..k] feasible }.
//
// Feasibility of [j..k] is "the line from point j through point k keeps
// every interior point within err", which the per-origin cone evaluates in
// O(1) per (j, k) pair. Because T is non-decreasing, the minimum is at the
// smallest feasible j; feasibility is not prefix-closed in k under
// endpoint anchoring, so every pair must be considered, but the scan for
// origin j stops as soon as its cone becomes empty (no later end point can
// ever be feasible then).
func optimalDP[K num.Key](keys []K, err int, withParents bool) (int, []int) {
	checkSorted(keys, err)
	n := len(keys)
	if n == 0 {
		return 0, nil
	}
	e := float64(err)
	const inf = math.MaxInt32
	// T[k] = minimal segments covering keys[0..k-1]; T[0] = 0.
	T := make([]int, n+1)
	for i := 1; i <= n; i++ {
		T[i] = inf
	}
	var parents []int
	if withParents {
		parents = make([]int, n)
	}
	for j := 0; j < n; j++ {
		if T[j] == inf {
			// Unreachable origins cannot occur ([k..k] is always feasible,
			// so T fills left to right), but guard anyway.
			continue
		}
		// Single-point segment [j..j].
		if T[j]+1 < T[j+1] {
			T[j+1] = T[j] + 1
			if withParents {
				parents[j] = j
			}
		}
		c := newCone(num.Approx(keys[j]), j)
		for k := j + 1; k < n; k++ {
			x := num.Approx(keys[k])
			// Endpoint feasibility is not prefix-closed in k (a later k
			// can re-enter the cone), so test every k; but every point,
			// feasible as an end or not, constrains later end points, and
			// once the cone is empty no end point can ever work again.
			if c.endpointFeasible(x, k, e) && T[j]+1 < T[k+1] {
				T[k+1] = T[j] + 1
				if withParents {
					parents[k] = j
				}
			}
			if !c.constrain(x, k, e) {
				break
			}
		}
	}
	return T[n], parents
}

// freeCone is the feasibility test when the segment's line is anchored at
// the origin but its slope may be chosen freely: a point fits iff some
// slope keeps every absorbed point within +-err. Feasibility under this
// semantics is prefix-closed in the end index, which OptimalFreeSlope
// exploits.
type freeCone struct {
	x0, y0    float64
	low, high float64
}

func newFreeCone(x0 float64, y0 int) freeCone {
	return freeCone{x0: x0, y0: float64(y0), low: 0, high: math.Inf(1)}
}

func (c *freeCone) absorb(x float64, y int, err float64) bool {
	dy := float64(y) - c.y0
	dx := x - c.x0
	if dx <= 0 {
		return dy <= err
	}
	if dy < c.low*dx-err || dy > c.high*dx+err {
		return false
	}
	if h := (dy + err) / dx; h < c.high {
		c.high = h
	}
	if l := (dy - err) / dx; l > c.low {
		c.low = l
	}
	return true
}

// midSlope returns a slope from the final free cone (the midpoint centers
// the worst-case deviation).
func (c *freeCone) midSlope() float64 {
	if math.IsInf(c.high, 1) {
		return c.low
	}
	return (c.low + c.high) / 2
}

// freeReach returns the largest index r such that keys[j..r] admits some
// single origin-anchored line within err (free-slope semantics).
func freeReach[K num.Key](keys []K, j int, err float64) int {
	c := newFreeCone(num.Approx(keys[j]), j)
	r := j
	for i := j + 1; i < len(keys); i++ {
		if !c.absorb(num.Approx(keys[i]), i, err) {
			break
		}
		r = i
	}
	return r
}

// OptimalFreeSlope returns the exact minimal number of segments when each
// segment's slope may be chosen freely (line anchored at the first point
// only). This family subsumes the endpoint-anchored one, so:
//
//	OptimalFreeSlope <= OptimalCount <= len(ShrinkingCone).
//
// Under free-slope semantics feasibility is prefix-closed, so a monotone
// two-pointer over origins gives the exact DP answer in O(n) memory.
func OptimalFreeSlope[K num.Key](keys []K, err int) int {
	checkSorted(keys, err)
	n := len(keys)
	if n == 0 {
		return 0
	}
	e := float64(err)
	T := make([]int, n+1)
	j := 0
	rj := freeReach(keys, 0, e)
	for k := 0; k < n; k++ {
		for rj < k {
			j++
			rj = freeReach(keys, j, e)
		}
		T[k+1] = T[j] + 1
	}
	return T[n]
}

// buildSegment constructs the segment covering keys[start:end) under
// endpoint-anchored semantics: interior points constrain the cone and the
// final point must be a feasible end point. The slope is the line from the
// first to the last point (0 if the segment holds a single distinct key).
func buildSegment[K num.Key](keys []K, start, end int, err float64) Segment[K] {
	c := newCone(num.Approx(keys[start]), start)
	for i := start + 1; i < end-1; i++ {
		if !c.constrain(num.Approx(keys[i]), i, err) {
			panic(fmt.Sprintf("segment: internal error: optimal segment [%d,%d) cone empty at %d", start, end, i))
		}
	}
	slope := 0.0
	if end-1 > start {
		last := num.Approx(keys[end-1])
		if !c.endpointFeasible(last, end-1, err) {
			panic(fmt.Sprintf("segment: internal error: optimal segment [%d,%d) infeasible end", start, end))
		}
		if dx := last - num.Approx(keys[start]); dx > 0 {
			slope = float64(end-1-start) / dx
		}
	}
	return Segment[K]{Start: keys[start], StartPos: start, Count: end - start, Slope: slope}
}

// epsilon absorbs float rounding in error-bound verification.
const epsilon = 1e-6

// Verify checks that segs is a disjoint, contiguous, complete segmentation
// of keys and that every element's interpolated position is within err of
// its true position. It returns nil on success.
func Verify[K num.Key](keys []K, segs []Segment[K], err int) error {
	if len(keys) == 0 {
		if len(segs) != 0 {
			return fmt.Errorf("segment: %d segments over empty input", len(segs))
		}
		return nil
	}
	pos := 0
	for si, s := range segs {
		if s.StartPos != pos {
			return fmt.Errorf("segment %d: starts at %d, want %d", si, s.StartPos, pos)
		}
		if s.Count < 1 {
			return fmt.Errorf("segment %d: empty", si)
		}
		if s.Start != keys[pos] {
			return fmt.Errorf("segment %d: start key %v, want %v", si, s.Start, keys[pos])
		}
		for i := 0; i < s.Count; i++ {
			pred := float64(s.StartPos) + s.Predict(keys[pos+i])
			if math.Abs(pred-float64(pos+i)) > float64(err)+epsilon {
				return fmt.Errorf("segment %d: key %v at pos %d predicted %.3f, off by more than %d",
					si, keys[pos+i], pos+i, pred, err)
			}
		}
		pos += s.Count
	}
	if pos != len(keys) {
		return fmt.Errorf("segment: segments cover %d of %d elements", pos, len(keys))
	}
	return nil
}

// MaxSegmentsBound returns the paper's guarantee on the number of segments
// ShrinkingCone can produce: min(|distinct keys|/2, |D|/(err+1)), rounded
// up, and at least 1.
func MaxSegmentsBound(distinctKeys, totalElems, err int) int {
	a := (distinctKeys + 1) / 2
	b := (totalElems + err) / (err + 1)
	bound := num.MinInt(a, b)
	return num.MaxInt(1, bound)
}

// Adversarial generates the Appendix A.3 input on which ShrinkingCone is
// arbitrarily worse than optimal: with error threshold err, greedy produces
// about rounds+2 segments while an optimal segmentation needs 2.
// It returns the key array (monotone non-decreasing, with duplicate runs).
func Adversarial(err, rounds int) []float64 {
	e := float64(err)
	var keys []float64
	// Step 1: three keys with unit position increases spaced err^2 apart.
	x := 0.0
	keys = append(keys, x)
	x += e * e
	keys = append(keys, x)
	x += e * e
	keys = append(keys, x)
	// Step 2: a key at +1/err repeated err+1 times, then a single key
	// +1/err after it; then per round, a repeated key err further out
	// followed by a single key 1/err after it.
	x += 1 / e
	for i := 0; i < err+1; i++ {
		keys = append(keys, x)
	}
	x += 1 / e
	keys = append(keys, x)
	for i := 0; i < rounds; i++ {
		x += e
		for j := 0; j < err+1; j++ {
			keys = append(keys, x)
		}
		x += 1 / e
		keys = append(keys, x)
	}
	// Step 3: closing key err^2 further out.
	x += e * e
	keys = append(keys, x)
	return keys
}
