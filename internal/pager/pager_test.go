package pager

import (
	"math/rand"
	"testing"
)

func TestDiskAllocateReadWrite(t *testing.T) {
	d := NewDisk()
	id := d.Allocate()
	if d.NumPages() != 1 {
		t.Fatalf("NumPages = %d", d.NumPages())
	}
	buf := make([]byte, PageSize)
	buf[0], buf[PageSize-1] = 0xAB, 0xCD
	if err := d.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, PageSize)
	if err := d.Read(id, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 0xAB || out[PageSize-1] != 0xCD {
		t.Fatal("read back wrong bytes")
	}
	if d.Reads() != 1 || d.Writes() != 1 {
		t.Fatalf("counters: reads=%d writes=%d", d.Reads(), d.Writes())
	}
	if err := d.Read(PageID(99), out); err == nil {
		t.Fatal("read of unallocated page succeeded")
	}
	if err := d.Write(PageID(99), buf); err == nil {
		t.Fatal("write of unallocated page succeeded")
	}
}

func TestPoolHitAndMiss(t *testing.T) {
	d := NewDisk()
	a, b := d.Allocate(), d.Allocate()
	p := NewPool(d, 2)
	f1, err := p.Get(a)
	if err != nil {
		t.Fatal(err)
	}
	f1.Unpin()
	f2, err := p.Get(a) // hit
	if err != nil {
		t.Fatal(err)
	}
	f2.Unpin()
	f3, err := p.Get(b) // miss
	if err != nil {
		t.Fatal(err)
	}
	f3.Unpin()
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolEvictionLRU(t *testing.T) {
	d := NewDisk()
	ids := []PageID{d.Allocate(), d.Allocate(), d.Allocate()}
	p := NewPool(d, 2)
	get := func(id PageID) {
		f, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		f.Unpin()
	}
	get(ids[0])
	get(ids[1])
	get(ids[0]) // 0 is now MRU; 1 is LRU
	get(ids[2]) // evicts 1
	p.ResetStats()
	get(ids[0]) // must still be resident
	if p.Stats().Misses != 0 {
		t.Fatal("page 0 was evicted, expected page 1")
	}
	get(ids[1]) // miss
	if p.Stats().Misses != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestPoolWritebackOnEviction(t *testing.T) {
	d := NewDisk()
	a, b := d.Allocate(), d.Allocate()
	p := NewPool(d, 1)
	f, err := p.Get(a)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[7] = 0x77
	f.MarkDirty()
	f.Unpin()
	if _, err := p.Get(b); err != nil { // evicts dirty a
		t.Fatal(err)
	}
	if p.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", p.Stats().Writebacks)
	}
	out := make([]byte, PageSize)
	if err := d.Read(a, out); err != nil {
		t.Fatal(err)
	}
	if out[7] != 0x77 {
		t.Fatal("dirty page not written back")
	}
}

func TestPoolAllPinned(t *testing.T) {
	d := NewDisk()
	a, b := d.Allocate(), d.Allocate()
	p := NewPool(d, 1)
	f, err := p.Get(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(b); err == nil {
		t.Fatal("Get succeeded with all frames pinned")
	}
	f.Unpin()
	if _, err := p.Get(b); err != nil {
		t.Fatalf("Get after unpin: %v", err)
	}
}

func TestPinCountsNested(t *testing.T) {
	d := NewDisk()
	a := d.Allocate()
	b := d.Allocate()
	p := NewPool(d, 1)
	f1, _ := p.Get(a)
	f2, _ := p.Get(a) // second pin of same page
	f1.Unpin()
	// Still pinned once: eviction must fail.
	if _, err := p.Get(b); err == nil {
		t.Fatal("evicted a pinned page")
	}
	f2.Unpin()
	if _, err := p.Get(b); err != nil {
		t.Fatal(err)
	}
}

func TestUnpinPanicsWhenUnpinned(t *testing.T) {
	d := NewDisk()
	a := d.Allocate()
	p := NewPool(d, 1)
	f, _ := p.Get(a)
	f.Unpin()
	defer func() {
		if recover() == nil {
			t.Fatal("double unpin did not panic")
		}
	}()
	f.Unpin()
}

func TestFlushAll(t *testing.T) {
	d := NewDisk()
	a := d.Allocate()
	p := NewPool(d, 4)
	f, _ := p.Get(a)
	f.Data()[0] = 0x42
	f.MarkDirty()
	f.Unpin()
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, PageSize)
	d.Read(a, out)
	if out[0] != 0x42 {
		t.Fatal("FlushAll did not persist dirty page")
	}
}

// TestPoolRandomConsistency hammers the pool with random page traffic and
// verifies contents always match a reference image of the disk.
func TestPoolRandomConsistency(t *testing.T) {
	d := NewDisk()
	const pages = 64
	ref := make([][]byte, pages)
	var ids []PageID
	for i := 0; i < pages; i++ {
		ids = append(ids, d.Allocate())
		ref[i] = make([]byte, PageSize)
	}
	p := NewPool(d, 8)
	rng := rand.New(rand.NewSource(9))
	for op := 0; op < 20_000; op++ {
		i := rng.Intn(pages)
		f, err := p.Get(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if rng.Intn(2) == 0 {
			off := rng.Intn(PageSize)
			v := byte(rng.Intn(256))
			f.Data()[off] = v
			ref[i][off] = v
			f.MarkDirty()
		} else {
			off := rng.Intn(PageSize)
			if f.Data()[off] != ref[i][off] {
				t.Fatalf("op %d: page %d byte %d = %x, want %x", op, i, off, f.Data()[off], ref[i][off])
			}
		}
		f.Unpin()
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, PageSize)
	for i := 0; i < pages; i++ {
		d.Read(ids[i], out)
		for off := 0; off < PageSize; off++ {
			if out[off] != ref[i][off] {
				t.Fatalf("disk page %d byte %d = %x, want %x", i, off, out[off], ref[i][off])
			}
		}
	}
}
