package pager

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

func TestBlobRoundTripAcrossSizes(t *testing.T) {
	s := NewStore(NewDisk())
	sizes := []int{0, 1, BlobPayload - 1, BlobPayload, BlobPayload + 1, 3*BlobPayload + 17}
	heads := make([]PageID, len(sizes))
	blobs := make([][]byte, len(sizes))
	for i, n := range sizes {
		blob := make([]byte, n)
		for j := range blob {
			blob[j] = byte(i + j)
		}
		head, err := s.Put(blob)
		if err != nil {
			t.Fatal(err)
		}
		heads[i], blobs[i] = head, blob
	}
	for i, head := range heads {
		got, err := s.Get(head)
		if err != nil {
			t.Fatalf("size %d: %v", sizes[i], err)
		}
		if !bytes.Equal(got, blobs[i]) {
			t.Fatalf("size %d: got %d bytes back", sizes[i], len(got))
		}
	}
}

func TestBlobChecksumDetectsCorruption(t *testing.T) {
	d := NewDisk()
	s := NewStore(d)
	head, err := s.Put(bytes.Repeat([]byte{7}, 2*BlobPayload))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one payload byte of the second page in the chain.
	chain, err := s.Chain(head)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	d.Read(chain[1], buf)
	buf[blobHeader+5] ^= 0xFF
	d.Write(chain[1], buf)
	if _, err := s.Get(head); err == nil {
		t.Fatal("corrupted blob page loaded without error")
	}
}

func TestFreeCommitReusesPages(t *testing.T) {
	d := NewDisk()
	s := NewStore(d)
	head, err := s.Put(make([]byte, 2*BlobPayload))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Free(head); err != nil {
		t.Fatal(err)
	}
	// Before Commit the pages still belong to the previous checkpoint:
	// a new Put must extend the device rather than reuse them.
	before := d.NumPages()
	if _, err := s.Put(make([]byte, BlobPayload)); err != nil {
		t.Fatal(err)
	}
	if d.NumPages() != before+1 {
		t.Fatalf("pre-commit Put reused freed pages: %d -> %d", before, d.NumPages())
	}
	s.Commit()
	before = d.NumPages()
	if _, err := s.Put(make([]byte, 2*BlobPayload)); err != nil {
		t.Fatal(err)
	}
	if d.NumPages() != before {
		t.Fatalf("post-commit Put did not reuse freed pages: %d -> %d", before, d.NumPages())
	}
}

func TestSuperblockAlternatesAndSurvivesTorn(t *testing.T) {
	d := NewDisk()
	NewStore(d) // reserve superblock pages
	if _, ok, err := ReadSuper(d); err != nil || ok {
		t.Fatalf("empty device has a superblock: ok=%v err=%v", ok, err)
	}
	if err := WriteSuper(d, Super{Epoch: 1, Manifest: 5, ReplayFrom: 10}); err != nil {
		t.Fatal(err)
	}
	if err := WriteSuper(d, Super{Epoch: 2, Manifest: 9, ReplayFrom: 20}); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadSuper(d)
	if err != nil || !ok || got.Epoch != 2 || got.Manifest != 9 || got.ReplayFrom != 20 {
		t.Fatalf("super = %+v ok=%v err=%v", got, ok, err)
	}
	// Tear the epoch-3 superblock write (slot 1, overwriting epoch 1):
	// recovery must fall back to epoch 2 in slot 0.
	buf := make([]byte, PageSize)
	copy(buf, []byte{0x44, 0x54, 0x49, 0x46}) // magic, garbage body
	d.Write(PageID(1), buf)
	got, ok, err = ReadSuper(d)
	if err != nil || !ok || got.Epoch != 2 {
		t.Fatalf("after torn super: %+v ok=%v err=%v", got, ok, err)
	}
}

func TestRebuildFree(t *testing.T) {
	d := NewDisk()
	s := NewStore(d)
	h1, _ := s.Put(make([]byte, BlobPayload)) // page 2
	h2, _ := s.Put(make([]byte, BlobPayload)) // page 3
	_ = h2
	s.RebuildFree([]PageID{h1})
	if s.FreePages() != 1 {
		t.Fatalf("free pages = %d, want 1", s.FreePages())
	}
	// The next Put must land on the unreachable page.
	h3, err := s.Put(make([]byte, 1))
	if err != nil {
		t.Fatal(err)
	}
	if h3 != h2 {
		t.Fatalf("Put landed on page %d, want reclaimed %d", h3, h2)
	}
}

func TestFaultDeviceWritePath(t *testing.T) {
	d := NewFaultDevice(NewDisk())
	s := NewStore(d)
	if _, err := s.Put(make([]byte, BlobPayload)); err != nil {
		t.Fatal(err)
	}
	if d.Ops() == 0 {
		t.Fatal("probe counted no operations")
	}
	d.SetTrip(0) // the very next write trips
	if _, err := s.Put(make([]byte, 3*BlobPayload)); !errors.Is(err, ErrInjected) {
		t.Fatalf("tripped Put error = %v", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-trip Sync error = %v", err)
	}
	if !d.Tripped() {
		t.Fatal("injector did not report tripping")
	}
}

func TestFaultDeviceReadPath(t *testing.T) {
	d := NewFaultDevice(NewDisk())
	s := NewStore(d)
	head, err := s.Put(bytes.Repeat([]byte{1}, 2*BlobPayload))
	if err != nil {
		t.Fatal(err)
	}
	d.SetReadTrip(1) // first read fine, second (chain page 2) fails
	if _, err := s.Get(head); !errors.Is(err, ErrInjected) {
		t.Fatalf("Get error = %v, want injected", err)
	}
	d.SetReadTrip(-1)
	if _, err := s.Get(head); err != nil {
		t.Fatalf("Get after disarm: %v", err)
	}
}

func TestFileDiskRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	d, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(d)
	blob := bytes.Repeat([]byte{0xAB}, BlobPayload+100)
	head, err := s.Put(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSuper(d, Super{Epoch: 1, Manifest: head}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: superblock and blob must come back intact.
	d2, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	sup, ok, err := ReadSuper(d2)
	if err != nil || !ok || sup.Manifest != head {
		t.Fatalf("reopened super = %+v ok=%v err=%v", sup, ok, err)
	}
	got, err := NewStore(d2).Get(sup.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("reopened blob: %d bytes", len(got))
	}
}

func TestPoolOverFaultDevice(t *testing.T) {
	d := NewFaultDevice(NewDisk())
	for i := 0; i < 4; i++ {
		d.Allocate()
	}
	p := NewPool(d, 2)
	f, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	f.Unpin()
	d.SetReadTrip(0)
	if _, err := p.Get(3); !errors.Is(err, ErrInjected) {
		t.Fatalf("pool miss over failing device: %v", err)
	}
	// The pool must stay usable for resident pages.
	d.SetReadTrip(-1)
	f2, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	f2.Unpin()
}
