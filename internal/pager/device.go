package pager

import (
	"errors"
	"io"
	"os"
	"sync"
)

// Device is the storage a pool or blob store sits on: a growable array of
// fixed-size pages with a durability barrier. Disk (in-memory, counted)
// and FileDisk (one file on a real file system) implement it, and
// FaultDevice wraps any implementation with deterministic fault injection.
type Device interface {
	// Allocate extends the device by one page and returns its id. The new
	// page reads as zeroes.
	Allocate() PageID
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Read copies page id into buf (len >= PageSize).
	Read(id PageID, buf []byte) error
	// Write copies buf into page id. The write is not durable until the
	// next successful Sync.
	Write(id PageID, buf []byte) error
	// Sync makes all preceding writes durable.
	Sync() error
}

// Sync is a no-op: the in-memory disk has no volatility to flush.
func (d *Disk) Sync() error { return nil }

// FileDisk is a Device stored as one flat file: page i lives at byte
// offset i*PageSize. Allocation only grows the logical page count; a page
// materializes in the file on its first write, and reads past the current
// end of file return zeroes, so Allocate itself cannot fail.
type FileDisk struct {
	f      *os.File
	pages  int
	reads  int64
	writes int64
}

// OpenFileDisk opens (or creates) the page file at path. An existing
// file's page count is its size rounded up to whole pages.
func OpenFileDisk(path string) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	pages := int((st.Size() + PageSize - 1) / PageSize)
	return &FileDisk{f: f, pages: pages}, nil
}

// Allocate extends the device by one zero page.
func (d *FileDisk) Allocate() PageID {
	d.pages++
	return PageID(d.pages - 1)
}

// NumPages returns the number of allocated pages.
func (d *FileDisk) NumPages() int { return d.pages }

// Read copies page id into buf, zero-filling any part past the file's
// current end.
func (d *FileDisk) Read(id PageID, buf []byte) error {
	if int(id) >= d.pages {
		return errors.New("pager: read of unallocated page")
	}
	d.reads++
	buf = buf[:PageSize]
	n, err := d.f.ReadAt(buf, int64(id)*PageSize)
	if err != nil && err != io.EOF {
		return err
	}
	for i := n; i < PageSize; i++ {
		buf[i] = 0
	}
	return nil
}

// Write copies buf into page id.
func (d *FileDisk) Write(id PageID, buf []byte) error {
	if int(id) >= d.pages {
		return errors.New("pager: write of unallocated page")
	}
	d.writes++
	if len(buf) > PageSize {
		buf = buf[:PageSize]
	}
	_, err := d.f.WriteAt(buf, int64(id)*PageSize)
	return err
}

// Sync fsyncs the page file.
func (d *FileDisk) Sync() error { return d.f.Sync() }

// Close releases the file handle after a final sync.
func (d *FileDisk) Close() error {
	err := d.f.Sync()
	if cerr := d.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Reads returns the number of page reads served.
func (d *FileDisk) Reads() int64 { return d.reads }

// Writes returns the number of page writes received.
func (d *FileDisk) Writes() int64 { return d.writes }

// ErrInjected is the error FaultDevice operations return once their trip
// point has been reached.
var ErrInjected = errors.New("pager: injected fault")

// FaultDevice wraps a Device with a deterministic fault injector, the
// page-store twin of the WAL's FaultFS. Write and Sync operations are
// counted; once the count passes the configured trip point the tripping
// operation and everything after it fail with ErrInjected — a tripping
// Write lands only the first half of the page (a torn page write). Reads
// have an independent trip counter so error paths on the read side (for
// example a buffer-pool miss hitting a bad sector) can be exercised
// without disturbing writes.
type FaultDevice struct {
	inner Device

	mu       sync.Mutex
	ops      int
	tripAt   int // fail the write-path op that would exceed this; <0 = never
	tripped  bool
	reads    int
	readTrip int // fail the read that would exceed this; <0 = never
	readDead bool
}

// NewFaultDevice wraps inner with no trips configured.
func NewFaultDevice(inner Device) *FaultDevice {
	return &FaultDevice{inner: inner, tripAt: -1, readTrip: -1}
}

// SetTrip arms the write-path injector: the (n+1)-th Write or Sync from
// now on fails, as does everything after it. SetTrip(-1) disarms. The
// operation counter is reset.
func (d *FaultDevice) SetTrip(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ops = 0
	d.tripAt = n
	d.tripped = false
}

// SetReadTrip arms the read-path injector: the (n+1)-th Read from now on
// fails, as does every later read. SetReadTrip(-1) disarms.
func (d *FaultDevice) SetReadTrip(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reads = 0
	d.readTrip = n
	d.readDead = false
}

// Ops returns the number of write-path operations observed since the last
// SetTrip (or construction).
func (d *FaultDevice) Ops() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ops
}

// Tripped reports whether the write-path injector has fired.
func (d *FaultDevice) Tripped() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tripped
}

// step counts one write-path operation and classifies it, mirroring
// FaultFS.
func (d *FaultDevice) step() stepKind {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.tripped {
		return stepDead
	}
	if d.tripAt >= 0 && d.ops >= d.tripAt {
		d.tripped = true
		return stepTrip
	}
	d.ops++
	return stepOK
}

// stepKind classifies one injected operation.
type stepKind int

const (
	stepOK   stepKind = iota // proceed normally
	stepTrip                 // this operation fires the fault
	stepDead                 // a previous operation already fired it
)

// Allocate passes through: growing the logical page array is a pure
// in-memory bookkeeping step, so it is not a crash point.
func (d *FaultDevice) Allocate() PageID { return d.inner.Allocate() }

// NumPages passes through.
func (d *FaultDevice) NumPages() int { return d.inner.NumPages() }

// Read fails with ErrInjected once the read trip fires; otherwise it
// passes through.
func (d *FaultDevice) Read(id PageID, buf []byte) error {
	d.mu.Lock()
	fail := d.readDead
	if !fail && d.readTrip >= 0 && d.reads >= d.readTrip {
		d.readDead = true
		fail = true
	}
	if !fail {
		d.reads++
	}
	d.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return d.inner.Read(id, buf)
}

// Write writes through the injector; the tripping write lands only the
// first half of the page before failing, and writes after the trip land
// nothing at all.
func (d *FaultDevice) Write(id PageID, buf []byte) error {
	switch d.step() {
	case stepTrip:
		// Disk.Write copies min(len(buf), PageSize) bytes, so a half
		// buffer leaves the page's second half at its previous content —
		// a torn page.
		d.inner.Write(id, buf[:PageSize/2])
		return ErrInjected
	case stepDead:
		return ErrInjected
	}
	return d.inner.Write(id, buf)
}

// Sync fails with ErrInjected at or after the trip point.
func (d *FaultDevice) Sync() error {
	if d.step() != stepOK {
		return ErrInjected
	}
	return d.inner.Sync()
}
