// Package pager provides a simulated page store and buffer pool.
//
// The paper evaluates FITing-Tree fully in memory, but its design language
// — variable-sized table pages referenced from index leaves — is that of a
// storage-backed index-organized table. This package supplies that
// substrate for the repository's disk-cost experiment (cmd/fitbench
// -exp extio): a "disk" of fixed-size pages whose reads and writes are
// counted, and an LRU buffer pool with pin/unpin semantics in front of it.
// The disk is main memory (the module is self-contained), so the counters,
// not wall-clock time, are the measured quantity: they translate to real
// I/O or cache-miss cost through the cost model's constant c exactly as in
// Section 6.
//
// PageID is the storage-level notion of page identity: stable for the
// lifetime of the page and independent of where the page sits in any
// index. The in-memory index mirrors this with its own per-page identity
// (core's page ids), which is what lets the copy-on-write flush share
// unmodified pages between published tree states — on this substrate the
// same flush would write only the dirty pages' blocks and leave every
// shared PageID untouched on disk.
package pager

import (
	"fmt"
)

// PageSize is the size of a disk page in bytes.
const PageSize = 4096

// PageID identifies a disk page.
type PageID uint32

// invalidPage marks an unused frame.
const invalidPage = ^PageID(0)

// Disk is a growable array of pages with access accounting.
type Disk struct {
	pages  [][]byte
	reads  int64
	writes int64
}

// NewDisk returns an empty disk.
func NewDisk() *Disk { return &Disk{} }

// Allocate appends a zeroed page and returns its id.
func (d *Disk) Allocate() PageID {
	d.pages = append(d.pages, make([]byte, PageSize))
	return PageID(len(d.pages) - 1)
}

// NumPages returns the number of allocated pages.
func (d *Disk) NumPages() int { return len(d.pages) }

// Read copies page id into buf (len >= PageSize) and counts one read.
func (d *Disk) Read(id PageID, buf []byte) error {
	if int(id) >= len(d.pages) {
		return fmt.Errorf("pager: read of unallocated page %d", id)
	}
	d.reads++
	copy(buf, d.pages[id])
	return nil
}

// Write copies buf into page id and counts one write.
func (d *Disk) Write(id PageID, buf []byte) error {
	if int(id) >= len(d.pages) {
		return fmt.Errorf("pager: write of unallocated page %d", id)
	}
	d.writes++
	copy(d.pages[id], buf)
	return nil
}

// PageView returns a read-only view of page id without copying, counting
// one read. Callers must not write through or retain the slice past the
// next Write to the page. Implements the optional PageViewer fast path.
func (d *Disk) PageView(id PageID) ([]byte, error) {
	if int(id) >= len(d.pages) {
		return nil, fmt.Errorf("pager: read of unallocated page %d", id)
	}
	d.reads++
	return d.pages[id], nil
}

// Reads returns the number of page reads served by the disk.
func (d *Disk) Reads() int64 { return d.reads }

// Writes returns the number of page writes received by the disk.
func (d *Disk) Writes() int64 { return d.writes }

// frame is one buffer-pool slot.
type frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	// LRU list links (indices into Pool.frames; -1 terminates).
	prev, next int
}

// PoolStats reports buffer pool activity.
type PoolStats struct {
	Hits       int64 // Get served from the pool
	Misses     int64 // Get requiring a disk read
	Evictions  int64 // frames recycled
	Writebacks int64 // dirty evictions written to disk
}

// Pool is an LRU buffer pool over a Device. It is not safe for
// concurrent use.
type Pool struct {
	dev    Device
	frames []frame
	free   []int          // frames holding no page
	lookup map[PageID]int // page id -> frame index
	// LRU list of unpinned frames: head = most recent.
	head, tail int
	stats      PoolStats
}

// NewPool creates a pool with the given number of frames (>= 1).
func NewPool(d Device, frames int) *Pool {
	if frames < 1 {
		frames = 1
	}
	p := &Pool{
		dev:    d,
		frames: make([]frame, frames),
		lookup: make(map[PageID]int, frames),
		head:   -1,
		tail:   -1,
	}
	for i := range p.frames {
		p.frames[i] = frame{id: invalidPage, data: make([]byte, PageSize), prev: -1, next: -1}
		p.free = append(p.free, i)
	}
	return p
}

// lruRemove unlinks frame i from the LRU list.
func (p *Pool) lruRemove(i int) {
	f := &p.frames[i]
	if f.prev != -1 {
		p.frames[f.prev].next = f.next
	} else if p.head == i {
		p.head = f.next
	}
	if f.next != -1 {
		p.frames[f.next].prev = f.prev
	} else if p.tail == i {
		p.tail = f.prev
	}
	f.prev, f.next = -1, -1
}

// lruPush makes frame i the most recently used unpinned frame.
func (p *Pool) lruPush(i int) {
	f := &p.frames[i]
	f.prev, f.next = -1, p.head
	if p.head != -1 {
		p.frames[p.head].prev = i
	}
	p.head = i
	if p.tail == -1 {
		p.tail = i
	}
}

// Get pins page id in the pool, reading it from disk on a miss, and
// returns its frame handle. Callers must Unpin it.
func (p *Pool) Get(id PageID) (*Frame, error) {
	if i, ok := p.lookup[id]; ok {
		f := &p.frames[i]
		if f.pins == 0 {
			p.lruRemove(i)
		}
		f.pins++
		p.stats.Hits++
		return &Frame{pool: p, idx: i}, nil
	}
	p.stats.Misses++
	i, err := p.victim()
	if err != nil {
		return nil, err
	}
	f := &p.frames[i]
	if err := p.dev.Read(id, f.data); err != nil {
		// Put the frame back in circulation before reporting.
		p.free = append(p.free, i)
		return nil, err
	}
	f.id = id
	f.dirty = false
	f.pins = 1
	p.lookup[id] = i
	return &Frame{pool: p, idx: i}, nil
}

// victim returns a free frame index, evicting the least recently used
// unpinned page if necessary.
func (p *Pool) victim() (int, error) {
	if n := len(p.free); n > 0 {
		i := p.free[n-1]
		p.free = p.free[:n-1]
		return i, nil
	}
	if p.tail == -1 {
		return 0, fmt.Errorf("pager: all %d frames pinned", len(p.frames))
	}
	i := p.tail
	p.lruRemove(i)
	f := &p.frames[i]
	if f.dirty {
		if err := p.dev.Write(f.id, f.data); err != nil {
			return 0, err
		}
		p.stats.Writebacks++
	}
	delete(p.lookup, f.id)
	p.stats.Evictions++
	f.id = invalidPage
	return i, nil
}

// FlushAll writes every dirty resident page back to disk (pinned pages
// included; they stay resident).
func (p *Pool) FlushAll() error {
	for i := range p.frames {
		f := &p.frames[i]
		if f.id != invalidPage && f.dirty {
			if err := p.dev.Write(f.id, f.data); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// Stats returns pool activity counters.
func (p *Pool) Stats() PoolStats { return p.stats }

// ResetStats zeroes the activity counters (used between experiment
// phases).
func (p *Pool) ResetStats() { p.stats = PoolStats{} }

// Frames returns the pool capacity.
func (p *Pool) Frames() int { return len(p.frames) }

// Device returns the underlying device (for allocation and raw
// counters).
func (p *Pool) Device() Device { return p.dev }

// Frame is a pinned page handle.
type Frame struct {
	pool *Pool
	idx  int
}

// Data returns the page's bytes; valid until Unpin.
func (f *Frame) Data() []byte { return f.pool.frames[f.idx].data }

// ID returns the pinned page's id.
func (f *Frame) ID() PageID { return f.pool.frames[f.idx].id }

// MarkDirty records that the page was modified, so eviction writes it
// back.
func (f *Frame) MarkDirty() { f.pool.frames[f.idx].dirty = true }

// Unpin releases the pin; when the count reaches zero the page becomes
// evictable.
func (f *Frame) Unpin() {
	fr := &f.pool.frames[f.idx]
	if fr.pins <= 0 {
		panic("pager: unpin of unpinned frame")
	}
	fr.pins--
	if fr.pins == 0 {
		f.pool.lruPush(f.idx)
	}
}
