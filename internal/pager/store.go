package pager

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

// This file implements the checkpoint side of the durability protocol: a
// blob store that spreads variable-length byte blobs over chains of
// checksummed pages, plus a dual-superblock commit record. The layout is
// crash-safe by construction:
//
//   - Blobs are written shadow-paged: a new checkpoint writes its blobs
//     into fresh (or long-free) pages, never overwriting pages the
//     previous checkpoint still references, so a crash mid-checkpoint
//     leaves the previous checkpoint fully intact.
//   - The superblock alternates between pages 0 and 1 by epoch parity.
//     Committing a checkpoint is a single page write (magic + CRC +
//     epoch) followed by a sync; a torn superblock write fails its CRC
//     and recovery falls back to the other, older superblock.
//   - Pages released by checkpoint N (the blobs N replaced) become
//     reusable only after N has committed, so the previous checkpoint's
//     pages are never scribbled while it is still the recovery target.
//
// Every blob page carries a CRC-32C over its header and payload, so a
// corrupted or stale page is detected at read time instead of being
// decoded into garbage.

// NilPage terminates a blob chain.
const NilPage = ^PageID(0)

// blobHeader is the per-page overhead: u32 CRC | u32 next | u32 length.
const blobHeader = 12

// BlobPayload is the usable bytes per blob page.
const BlobPayload = PageSize - blobHeader

// superMagic marks a valid superblock ("FITD").
const superMagic = 0x46495444

// storeCRC is the Castagnoli table shared by blob pages and superblocks.
var storeCRC = crc32.MakeTable(crc32.Castagnoli)

// Super is the checkpoint commit record.
type Super struct {
	// Epoch increments with every committed checkpoint; the superblock
	// with the higher epoch (of the two slots) is current.
	Epoch uint64
	// Manifest is the head page of the checkpoint manifest blob.
	Manifest PageID
	// ReplayFrom is the first WAL LSN not folded into this checkpoint:
	// recovery replays records with LSN >= ReplayFrom.
	ReplayFrom uint64
}

// WriteSuper commits s into the superblock slot for its epoch parity and
// syncs the device. The previous superblock (other slot) is untouched, so
// a torn write here is recoverable.
func WriteSuper(dev Device, s Super) error {
	for dev.NumPages() < 2 {
		dev.Allocate()
	}
	buf := make([]byte, PageSize)
	binary.LittleEndian.PutUint32(buf[0:], superMagic)
	binary.LittleEndian.PutUint64(buf[8:], s.Epoch)
	binary.LittleEndian.PutUint32(buf[16:], uint32(s.Manifest))
	binary.LittleEndian.PutUint64(buf[24:], s.ReplayFrom)
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(buf[8:32], storeCRC))
	if err := dev.Write(PageID(s.Epoch%2), buf); err != nil {
		return err
	}
	return dev.Sync()
}

// ReadSuperAt reads and validates one superblock slot (0 or 1). ok is
// false when the slot holds no valid superblock — never written, torn, or
// corrupted; the error reports only device read failures. Integrity tools
// use it to check both slots individually where ReadSuper would silently
// fall back to the surviving one.
func ReadSuperAt(dev Device, slot PageID) (Super, bool, error) {
	if int(slot) >= dev.NumPages() {
		return Super{}, false, nil
	}
	buf := make([]byte, PageSize)
	if err := dev.Read(slot, buf); err != nil {
		return Super{}, false, err
	}
	if binary.LittleEndian.Uint32(buf[0:]) != superMagic {
		return Super{}, false, nil
	}
	if binary.LittleEndian.Uint32(buf[4:]) != crc32.Checksum(buf[8:32], storeCRC) {
		return Super{}, false, nil
	}
	return Super{
		Epoch:      binary.LittleEndian.Uint64(buf[8:]),
		Manifest:   PageID(binary.LittleEndian.Uint32(buf[16:])),
		ReplayFrom: binary.LittleEndian.Uint64(buf[24:]),
	}, true, nil
}

// ReadSuper returns the newest valid superblock. ok is false when neither
// slot holds one (an empty or never-committed device, or both slots
// corrupt — in every case there is no checkpoint to load).
func ReadSuper(dev Device) (s Super, ok bool, err error) {
	if dev.NumPages() < 2 {
		return Super{}, false, nil
	}
	for slot := PageID(0); slot < 2; slot++ {
		cand, valid, rerr := ReadSuperAt(dev, slot)
		if rerr != nil {
			return Super{}, false, rerr
		}
		if valid && (!ok || cand.Epoch > s.Epoch) {
			s, ok = cand, true
		}
	}
	return s, ok, nil
}

// Store writes and reads blobs over a Device, shadow-paged as described
// above. It is not safe for concurrent use; the checkpointer serializes
// access.
type Store struct {
	dev     Device
	free    []PageID // reusable now
	pending []PageID // freed by the in-flight checkpoint; reusable after Commit
	scratch []byte   // page buffer reused by chain walks (Store is single-threaded)
}

// NewStore returns a blob store over dev, reserving the superblock pages.
// Its freelist starts empty; after recovery, call SetFree with the pages
// not reachable from the live checkpoint.
func NewStore(dev Device) *Store {
	for dev.NumPages() < 2 {
		dev.Allocate()
	}
	return &Store{dev: dev}
}

// Device returns the underlying device (for superblock I/O and counters).
func (s *Store) Device() Device { return s.dev }

// SetFree replaces the freelist, typically with the allocated-minus-
// reachable set computed during recovery.
func (s *Store) SetFree(ids []PageID) {
	s.free = append(s.free[:0], ids...)
	s.pending = s.pending[:0]
}

// FreePages returns the number of immediately reusable pages.
func (s *Store) FreePages() int { return len(s.free) }

// PageViewer is the optional zero-copy read path: an in-memory device can
// hand out a view of a page instead of copying it into the caller's
// buffer. The view is only valid until the page is next written.
type PageViewer interface {
	PageView(id PageID) ([]byte, error)
}

// page returns the reusable scratch page buffer, allocating it on first
// use. Recovery walks thousands of short chains; sharing one buffer keeps
// those walks allocation-free.
func (s *Store) page() []byte {
	if s.scratch == nil {
		s.scratch = make([]byte, PageSize)
	}
	return s.scratch
}

// readPage reads page id through the device's zero-copy view when it has
// one, falling back to a copy into the scratch buffer. The returned slice
// follows PageViewer's validity rules either way.
func (s *Store) readPage(id PageID) ([]byte, error) {
	if v, ok := s.dev.(PageViewer); ok {
		return v.PageView(id)
	}
	buf := s.page()
	if err := s.dev.Read(id, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// alloc returns a reusable page, extending the device when none is free.
func (s *Store) alloc() PageID {
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		return id
	}
	return s.dev.Allocate()
}

// Put writes data as a chain of checksummed pages and returns the head
// page id. The pages are written but not synced; the caller syncs (via
// WriteSuper) once the whole checkpoint is staged.
func (s *Store) Put(data []byte) (PageID, error) {
	n := (len(data) + BlobPayload - 1) / BlobPayload
	if n == 0 {
		n = 1
	}
	ids := make([]PageID, n)
	for i := range ids {
		ids[i] = s.alloc()
	}
	buf := make([]byte, PageSize)
	for i, id := range ids {
		part := data[i*BlobPayload:]
		if len(part) > BlobPayload {
			part = part[:BlobPayload]
		}
		next := NilPage
		if i+1 < n {
			next = ids[i+1]
		}
		binary.LittleEndian.PutUint32(buf[4:], uint32(next))
		binary.LittleEndian.PutUint32(buf[8:], uint32(len(part)))
		copy(buf[blobHeader:], part)
		for j := blobHeader + len(part); j < PageSize; j++ {
			buf[j] = 0
		}
		binary.LittleEndian.PutUint32(buf[0:], crc32.Checksum(buf[4:], storeCRC))
		if err := s.dev.Write(id, buf); err != nil {
			return NilPage, err
		}
	}
	return ids[0], nil
}

// Get reads the blob chained from head, verifying every page's checksum.
func (s *Store) Get(head PageID) ([]byte, error) {
	var data []byte
	buf := s.page()
	seen := 0
	for id := head; id != NilPage; {
		if seen++; seen > s.dev.NumPages() {
			return nil, fmt.Errorf("pager: blob chain from page %d cycles", head)
		}
		if err := s.dev.Read(id, buf); err != nil {
			return nil, err
		}
		if binary.LittleEndian.Uint32(buf[0:]) != crc32.Checksum(buf[4:], storeCRC) {
			return nil, fmt.Errorf("pager: blob page %d failed checksum", id)
		}
		n := binary.LittleEndian.Uint32(buf[8:])
		if n > BlobPayload {
			return nil, fmt.Errorf("pager: blob page %d claims %d payload bytes", id, n)
		}
		data = append(data, buf[blobHeader:blobHeader+n]...)
		id = PageID(binary.LittleEndian.Uint32(buf[4:]))
	}
	return data, nil
}

// GetChain reads the blob chained from head and returns its page ids in
// one pass — what recovery wants, since it needs both the content and the
// reachability set and should not pay the page reads twice. The blob is
// appended to data and the ids to ids, so a caller looping over many
// blobs can recycle both backing arrays (pass them back re-sliced to
// zero length) and walk the whole checkpoint without reallocating.
func (s *Store) GetChain(head PageID, data []byte, ids []PageID) ([]byte, []PageID, error) {
	start := len(ids)
	for id := head; id != NilPage; {
		if len(ids)-start >= s.dev.NumPages() {
			return nil, nil, fmt.Errorf("pager: blob chain from page %d cycles", head)
		}
		buf, err := s.readPage(id)
		if err != nil {
			return nil, nil, err
		}
		if binary.LittleEndian.Uint32(buf[0:]) != crc32.Checksum(buf[4:], storeCRC) {
			return nil, nil, fmt.Errorf("pager: blob page %d failed checksum", id)
		}
		n := binary.LittleEndian.Uint32(buf[8:])
		if n > BlobPayload {
			return nil, nil, fmt.Errorf("pager: blob page %d claims %d payload bytes", id, n)
		}
		data = append(data, buf[blobHeader:blobHeader+n]...)
		ids = append(ids, id)
		id = PageID(binary.LittleEndian.Uint32(buf[4:]))
	}
	return data, ids, nil
}

// Chain returns the page ids making up the blob at head (for reachability
// sweeps), verifying checksums along the way.
func (s *Store) Chain(head PageID) ([]PageID, error) {
	var ids []PageID
	buf := s.page()
	for id := head; id != NilPage; {
		if len(ids) >= s.dev.NumPages() {
			return nil, fmt.Errorf("pager: blob chain from page %d cycles", head)
		}
		if err := s.dev.Read(id, buf); err != nil {
			return nil, err
		}
		if binary.LittleEndian.Uint32(buf[0:]) != crc32.Checksum(buf[4:], storeCRC) {
			return nil, fmt.Errorf("pager: blob page %d failed checksum", id)
		}
		ids = append(ids, id)
		id = PageID(binary.LittleEndian.Uint32(buf[4:]))
	}
	return ids, nil
}

// Free schedules the blob at head for reuse after the next Commit. The
// chain is walked to find its pages, so it must still be intact.
func (s *Store) Free(head PageID) error {
	ids, err := s.Chain(head)
	if err != nil {
		return err
	}
	s.pending = append(s.pending, ids...)
	return nil
}

// Commit makes every page freed since the previous Commit reusable. Call
// it only after the superblock referencing the new checkpoint is durable:
// until then the freed pages still belong to the previous checkpoint,
// which a crash would fall back to.
func (s *Store) Commit() {
	s.free = append(s.free, s.pending...)
	s.pending = s.pending[:0]
}

// Rollback discards the frees staged since the previous Commit, for a
// checkpoint that failed before its superblock landed: the pages stay
// referenced by the still-current checkpoint, so they must not re-enter
// circulation. Pages written by the failed attempt are leaked until the
// next recovery's RebuildFree reclaims them — a bounded loss that keeps
// the failure path trivially correct.
func (s *Store) Rollback() { s.pending = s.pending[:0] }

// RebuildFree derives the freelist as every allocated page (past the
// superblocks) not in reachable, for use after recovery.
func (s *Store) RebuildFree(reachable []PageID) {
	used := make(map[PageID]bool, len(reachable))
	for _, id := range reachable {
		used[id] = true
	}
	s.free = s.free[:0]
	s.pending = s.pending[:0]
	for i := 2; i < s.dev.NumPages(); i++ {
		if !used[PageID(i)] {
			s.free = append(s.free, PageID(i))
		}
	}
	// Reuse low pages first so a long-lived store stays compact.
	sort.Slice(s.free, func(a, b int) bool { return s.free[a] > s.free[b] })
}
