// Package heap implements a fixed-length-record heap file over the pager's
// buffer pool: the table-page substrate for the disk-cost experiment. It
// supports appends, access by record id, and positional access (record i),
// which is how a clustered index addresses a sorted column.
package heap

import (
	"encoding/binary"
	"fmt"

	"fitingtree/internal/pager"
)

// headerSize is the per-page header: a little-endian uint16 record count.
const headerSize = 2

// RID identifies a record by page and slot.
type RID struct {
	Page pager.PageID
	Slot uint16
}

// Table is a heap file of fixed-length records.
type Table struct {
	pool    *pager.Pool
	recSize int
	perPage int
	pages   []pager.PageID
	count   int
}

// New creates an empty table with the given record size in bytes.
func New(pool *pager.Pool, recSize int) (*Table, error) {
	if recSize < 1 || recSize > pager.PageSize-headerSize {
		return nil, fmt.Errorf("heap: record size %d out of range", recSize)
	}
	return &Table{
		pool:    pool,
		recSize: recSize,
		perPage: (pager.PageSize - headerSize) / recSize,
	}, nil
}

// Len returns the number of records.
func (t *Table) Len() int { return t.count }

// PerPage returns the number of records per page.
func (t *Table) PerPage() int { return t.perPage }

// Pages returns the number of allocated pages.
func (t *Table) Pages() int { return len(t.pages) }

// Append stores rec (len == record size) and returns its id. Records fill
// pages densely in append order, so record i lives at page i/perPage,
// slot i%perPage.
func (t *Table) Append(rec []byte) (RID, error) {
	if len(rec) != t.recSize {
		return RID{}, fmt.Errorf("heap: record is %d bytes, want %d", len(rec), t.recSize)
	}
	slot := t.count % t.perPage
	if slot == 0 {
		t.pages = append(t.pages, t.pool.Device().Allocate())
	}
	pid := t.pages[len(t.pages)-1]
	f, err := t.pool.Get(pid)
	if err != nil {
		return RID{}, err
	}
	defer f.Unpin()
	data := f.Data()
	copy(data[headerSize+slot*t.recSize:], rec)
	binary.LittleEndian.PutUint16(data, uint16(slot+1))
	f.MarkDirty()
	t.count++
	return RID{Page: pid, Slot: uint16(slot)}, nil
}

// Get copies record rid into buf (len >= record size).
func (t *Table) Get(rid RID, buf []byte) error {
	f, err := t.pool.Get(rid.Page)
	if err != nil {
		return err
	}
	defer f.Unpin()
	data := f.Data()
	n := int(binary.LittleEndian.Uint16(data))
	if int(rid.Slot) >= n {
		return fmt.Errorf("heap: slot %d beyond %d records in page %d", rid.Slot, n, rid.Page)
	}
	copy(buf, data[headerSize+int(rid.Slot)*t.recSize:headerSize+(int(rid.Slot)+1)*t.recSize])
	return nil
}

// RIDAt returns the id of the i-th record in append order.
func (t *Table) RIDAt(i int) (RID, error) {
	if i < 0 || i >= t.count {
		return RID{}, fmt.Errorf("heap: record %d out of range [0, %d)", i, t.count)
	}
	return RID{Page: t.pages[i/t.perPage], Slot: uint16(i % t.perPage)}, nil
}

// GetAt copies the i-th record (append order) into buf.
func (t *Table) GetAt(i int, buf []byte) error {
	rid, err := t.RIDAt(i)
	if err != nil {
		return err
	}
	return t.Get(rid, buf)
}
