package heap

import (
	"encoding/binary"
	"testing"

	"fitingtree/internal/pager"
)

func newTable(t *testing.T, frames, recSize int) *Table {
	t.Helper()
	pool := pager.NewPool(pager.NewDisk(), frames)
	tb, err := New(pool, recSize)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestNewValidation(t *testing.T) {
	pool := pager.NewPool(pager.NewDisk(), 2)
	if _, err := New(pool, 0); err == nil {
		t.Fatal("accepted record size 0")
	}
	if _, err := New(pool, pager.PageSize); err == nil {
		t.Fatal("accepted record size exceeding page capacity")
	}
}

func TestAppendGetRoundTrip(t *testing.T) {
	tb := newTable(t, 4, 8)
	const n = 5000
	var rids []RID
	for i := 0; i < n; i++ {
		var rec [8]byte
		binary.LittleEndian.PutUint64(rec[:], uint64(i*3))
		rid, err := tb.Append(rec[:])
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d", tb.Len())
	}
	wantPages := (n + tb.PerPage() - 1) / tb.PerPage()
	if tb.Pages() != wantPages {
		t.Fatalf("Pages = %d, want %d", tb.Pages(), wantPages)
	}
	buf := make([]byte, 8)
	for i, rid := range rids {
		if err := tb.Get(rid, buf); err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint64(buf); got != uint64(i*3) {
			t.Fatalf("Get(%v) = %d, want %d", rid, got, i*3)
		}
	}
}

func TestPositionalAccess(t *testing.T) {
	tb := newTable(t, 4, 16)
	for i := 0; i < 1000; i++ {
		rec := make([]byte, 16)
		binary.LittleEndian.PutUint64(rec, uint64(i))
		binary.LittleEndian.PutUint64(rec[8:], uint64(i*7))
		if _, err := tb.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 16)
	for i := 0; i < 1000; i += 13 {
		if err := tb.GetAt(i, buf); err != nil {
			t.Fatal(err)
		}
		if binary.LittleEndian.Uint64(buf) != uint64(i) || binary.LittleEndian.Uint64(buf[8:]) != uint64(i*7) {
			t.Fatalf("GetAt(%d) wrong record", i)
		}
	}
	if _, err := tb.RIDAt(-1); err == nil {
		t.Fatal("RIDAt(-1) succeeded")
	}
	if _, err := tb.RIDAt(1000); err == nil {
		t.Fatal("RIDAt(len) succeeded")
	}
}

func TestGetValidation(t *testing.T) {
	tb := newTable(t, 4, 8)
	if err := tb.Get(RID{Page: 0, Slot: 0}, make([]byte, 8)); err == nil {
		t.Fatal("Get on empty table succeeded")
	}
	tb.Append(make([]byte, 8))
	rid, _ := tb.RIDAt(0)
	if err := tb.Get(RID{Page: rid.Page, Slot: 99}, make([]byte, 8)); err == nil {
		t.Fatal("Get of absent slot succeeded")
	}
	if _, err := tb.Append(make([]byte, 4)); err == nil {
		t.Fatal("Append of short record succeeded")
	}
}

func TestSurvivesEviction(t *testing.T) {
	// A single-frame pool forces every other access to evict; contents
	// must survive the write-back round trips.
	tb := newTable(t, 1, 8)
	const n = 3000
	for i := 0; i < n; i++ {
		var rec [8]byte
		binary.LittleEndian.PutUint64(rec[:], uint64(i))
		if _, err := tb.Append(rec[:]); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 8)
	for i := n - 1; i >= 0; i -= 7 {
		if err := tb.GetAt(i, buf); err != nil {
			t.Fatal(err)
		}
		if binary.LittleEndian.Uint64(buf) != uint64(i) {
			t.Fatalf("GetAt(%d) = %d after evictions", i, binary.LittleEndian.Uint64(buf))
		}
	}
}
