// Package baseline implements the three competitors FITing-Tree is
// evaluated against in the paper (Section 7.1):
//
//   - Full: a dense B+ tree with one entry per distinct key (the paper's
//     "full index", the lookup-latency best case and the largest index).
//   - Fixed: a sparse clustered index over fixed-size pages that stores
//     only the first key of each page (the paper's "fixed-sized paging"),
//     with the same buffered-insert and page-split strategy FITing-Tree
//     uses so the comparison is apples to apples.
//   - BinarySearch: plain binary search over the sorted data, the zero-
//     space extreme of the size/latency trade-off.
//
// All three are built on the same internal/btree substrate as FITing-Tree
// itself, mirroring the paper's use of the STX-tree for every competitor.
package baseline

import (
	"fmt"
	"sort"
	"time"

	"fitingtree/internal/btree"
	"fitingtree/internal/num"
)

// nowNanos returns a monotonic-ish wall clock reading for phase timing.
func nowNanos() int64 { return time.Now().UnixNano() }

// Full is a dense B+ tree index: one entry per distinct key, mapping to the
// key's first position in the data. It is the paper's best-case baseline
// for lookup latency and its worst case for space.
type Full[K num.Key, V any] struct {
	tr *btree.Tree[K, V]
}

// NewFull bulk-loads a dense index over sorted keys. Duplicate keys keep
// their first value (a dense index stores one entry per distinct key).
func NewFull[K num.Key, V any](keys []K, vals []V, fanout int) (*Full[K, V], error) {
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("baseline: %d keys but %d values", len(keys), len(vals))
	}
	dk := make([]K, 0, len(keys))
	dv := make([]V, 0, len(vals))
	for i := range keys {
		if i > 0 && keys[i] == keys[i-1] {
			continue
		}
		dk = append(dk, keys[i])
		dv = append(dv, vals[i])
	}
	tr := btree.New[K, V](fanout)
	if err := tr.BulkLoad(dk, dv, 1); err != nil {
		return nil, err
	}
	return &Full[K, V]{tr: tr}, nil
}

// Lookup returns the value stored under k.
func (f *Full[K, V]) Lookup(k K) (V, bool) { return f.tr.Get(k) }

// Insert stores v under k (replacing the value of an existing key, as a
// dense unique index does).
func (f *Full[K, V]) Insert(k K, v V) { f.tr.Insert(k, v) }

// Len returns the number of distinct indexed keys.
func (f *Full[K, V]) Len() int { return f.tr.Len() }

// AscendRange calls fn for indexed entries with lo <= key <= hi in order.
func (f *Full[K, V]) AscendRange(lo, hi K, fn func(k K, v V) bool) {
	f.tr.AscendRange(lo, hi, fn)
}

// SizeBytes returns the index footprint under the paper's 8-bytes-per-
// key/pointer accounting.
func (f *Full[K, V]) SizeBytes() int64 { return f.tr.Stats().SizeBytes }

// Stats exposes the underlying tree statistics.
func (f *Full[K, V]) Stats() btree.Stats { return f.tr.Stats() }

// fpage is one fixed-size data page plus its insert buffer.
type fpage[K num.Key, V any] struct {
	start   K // routing key (first key at page build time)
	keys    []K
	vals    []V
	bufKeys []K
	bufVals []V
	inTree  bool
	next    *fpage[K, V]
	prev    *fpage[K, V]
}

func (p *fpage[K, V]) lastKey() K {
	k := p.keys[len(p.keys)-1]
	if len(p.bufKeys) > 0 && p.bufKeys[len(p.bufKeys)-1] > k {
		k = p.bufKeys[len(p.bufKeys)-1]
	}
	return k
}

// Fixed is a sparse clustered index over fixed-size pages: the inner tree
// holds one entry per page (its first key). Lookups binary-search the whole
// page, so the page size plays the role FITing-Tree's error threshold
// plays: a page of size E costs the same bounded search as a segment with
// error E (the paper pairs them in Figures 6, 7, 9, 13).
type Fixed[K num.Key, V any] struct {
	pageSize int // max data elements per page
	bufSize  int // insert buffer capacity per page
	idx      *btree.Tree[K, *fpage[K, V]]
	first    *fpage[K, V]
	size     int
	splits   int
}

// NewFixed bulk-loads a fixed-page index with the given page size. The
// insert buffer per page is pageSize/2, matching the paper's setup for the
// insert experiments.
func NewFixed[K num.Key, V any](keys []K, vals []V, pageSize, fanout int) (*Fixed[K, V], error) {
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("baseline: %d keys but %d values", len(keys), len(vals))
	}
	if pageSize < 1 {
		return nil, fmt.Errorf("baseline: page size %d < 1", pageSize)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return nil, fmt.Errorf("baseline: keys not sorted at index %d", i)
		}
	}
	f := &Fixed[K, V]{
		pageSize: pageSize,
		bufSize:  num.MaxInt(1, pageSize/2),
		idx:      btree.New[K, *fpage[K, V]](fanout),
		size:     len(keys),
	}
	var treeKeys []K
	var treeVals []*fpage[K, V]
	var prev *fpage[K, V]
	for at := 0; at < len(keys); at += pageSize {
		end := num.MinInt(at+pageSize, len(keys))
		p := &fpage[K, V]{
			start: keys[at],
			keys:  append([]K(nil), keys[at:end]...),
			vals:  append([]V(nil), vals[at:end]...),
			prev:  prev,
		}
		if prev == nil {
			f.first = p
		} else {
			prev.next = p
		}
		if prev == nil || prev.start != p.start {
			p.inTree = true
			treeKeys = append(treeKeys, p.start)
			treeVals = append(treeVals, p)
		}
		prev = p
	}
	if err := f.idx.BulkLoad(treeKeys, treeVals, 1); err != nil {
		return nil, err
	}
	return f, nil
}

// locate returns the page whose range contains k.
func (f *Fixed[K, V]) locate(k K) *fpage[K, V] {
	if f.first == nil {
		return nil
	}
	_, p, ok := f.idx.Floor(k)
	if !ok {
		return f.first
	}
	for p.prev != nil && p.prev.lastKey() >= k {
		p = p.prev
	}
	return p
}

// Lookup returns a value stored under k.
func (f *Fixed[K, V]) Lookup(k K) (V, bool) {
	for p := f.locate(k); p != nil; p = p.next {
		if i, ok := search(p.keys, k); ok {
			return p.vals[i], true
		}
		if i, ok := search(p.bufKeys, k); ok {
			return p.bufVals[i], true
		}
		if p.next == nil || p.next.start > k {
			break
		}
	}
	var zero V
	return zero, false
}

// LookupBreakdown is Lookup with wall-clock timing of the tree-search and
// page-search phases (Figure 13's competitor side).
func (f *Fixed[K, V]) LookupBreakdown(k K) (v V, ok bool, treeNs, pageNs int64) {
	t0 := nowNanos()
	p := f.locate(k)
	treeNs = nowNanos() - t0
	t0 = nowNanos()
	for ; p != nil; p = p.next {
		if i, found := search(p.keys, k); found {
			v, ok = p.vals[i], true
			break
		}
		if i, found := search(p.bufKeys, k); found {
			v, ok = p.bufVals[i], true
			break
		}
		if p.next == nil || p.next.start > k {
			break
		}
	}
	pageNs = nowNanos() - t0
	return v, ok, treeNs, pageNs
}

// Insert adds (k, v) to the owning page's buffer; a full buffer merges into
// the page, which then splits into fixed-size pages.
func (f *Fixed[K, V]) Insert(k K, v V) {
	f.size++
	p := f.locate(k)
	if p == nil {
		p = &fpage[K, V]{start: k, keys: []K{k}, vals: []V{v}, inTree: true}
		f.first = p
		f.idx.Insert(k, p)
		return
	}
	i, _ := search(p.bufKeys, k)
	p.bufKeys = insertAt(p.bufKeys, i, k)
	p.bufVals = insertAt(p.bufVals, i, v)
	if len(p.bufKeys) >= f.bufSize {
		f.split(p)
	}
}

// split merges a page with its buffer and re-chops it into fixed-size
// pages.
func (f *Fixed[K, V]) split(p *fpage[K, V]) {
	f.splits++
	mergedK := make([]K, 0, len(p.keys)+len(p.bufKeys))
	mergedV := make([]V, 0, len(p.keys)+len(p.bufKeys))
	i, j := 0, 0
	for i < len(p.keys) && j < len(p.bufKeys) {
		if p.keys[i] <= p.bufKeys[j] {
			mergedK = append(mergedK, p.keys[i])
			mergedV = append(mergedV, p.vals[i])
			i++
		} else {
			mergedK = append(mergedK, p.bufKeys[j])
			mergedV = append(mergedV, p.bufVals[j])
			j++
		}
	}
	mergedK = append(mergedK, p.keys[i:]...)
	mergedV = append(mergedV, p.vals[i:]...)
	mergedK = append(mergedK, p.bufKeys[j:]...)
	mergedV = append(mergedV, p.bufVals[j:]...)

	var pages []*fpage[K, V]
	for at := 0; at < len(mergedK); at += f.pageSize {
		end := num.MinInt(at+f.pageSize, len(mergedK))
		np := &fpage[K, V]{
			start: mergedK[at],
			keys:  mergedK[at:end:end],
			vals:  mergedV[at:end:end],
		}
		if len(pages) > 0 {
			pages[len(pages)-1].next = np
			np.prev = pages[len(pages)-1]
		}
		pages = append(pages, np)
	}

	prevP, nextP := p.prev, p.next
	head, tail := pages[0], pages[len(pages)-1]
	if prevP == nil {
		f.first = head
	} else {
		prevP.next = head
		head.prev = prevP
	}
	tail.next = nextP
	if nextP != nil {
		nextP.prev = tail
	}
	if p.inTree {
		f.idx.Delete(p.start)
	}
	for i, np := range pages {
		if i > 0 && pages[i-1].start == np.start {
			continue
		}
		np.inTree = true
		if f.idx.Insert(np.start, np) && nextP != nil && nextP.start == np.start {
			nextP.inTree = false
		}
	}
}

// Len returns the number of stored elements, including buffered inserts.
func (f *Fixed[K, V]) Len() int { return f.size }

// Splits returns the number of page split events since the build.
func (f *Fixed[K, V]) Splits() int { return f.splits }

// Pages returns the number of data pages.
func (f *Fixed[K, V]) Pages() int {
	n := 0
	for p := f.first; p != nil; p = p.next {
		n++
	}
	return n
}

// SizeBytes returns the sparse index footprint: the inner tree (whose leaf
// entries are the one key + pointer stored per page).
func (f *Fixed[K, V]) SizeBytes() int64 { return f.idx.Stats().SizeBytes }

// Ascend visits all elements in key order (used by tests).
func (f *Fixed[K, V]) Ascend(fn func(k K, v V) bool) {
	for p := f.first; p != nil; p = p.next {
		i, j := 0, 0
		for i < len(p.keys) || j < len(p.bufKeys) {
			useData := j >= len(p.bufKeys) || (i < len(p.keys) && p.keys[i] <= p.bufKeys[j])
			if useData {
				if !fn(p.keys[i], p.vals[i]) {
					return
				}
				i++
			} else {
				if !fn(p.bufKeys[j], p.bufVals[j]) {
					return
				}
				j++
			}
		}
	}
}

// CheckInvariants validates the fixed index's structure.
func (f *Fixed[K, V]) CheckInvariants() error {
	if err := f.idx.CheckInvariants(); err != nil {
		return fmt.Errorf("baseline: inner tree: %w", err)
	}
	count := 0
	var prev *fpage[K, V]
	for p := f.first; p != nil; p = p.next {
		if p.prev != prev {
			return fmt.Errorf("baseline: broken back link at %v", p.start)
		}
		if len(p.keys) == 0 {
			return fmt.Errorf("baseline: empty page at %v", p.start)
		}
		if len(p.keys) > f.pageSize {
			return fmt.Errorf("baseline: oversized page (%d > %d) at %v", len(p.keys), f.pageSize, p.start)
		}
		for i := 1; i < len(p.keys); i++ {
			if p.keys[i] < p.keys[i-1] {
				return fmt.Errorf("baseline: page out of order at %v", p.start)
			}
		}
		wantInTree := prev == nil || prev.start != p.start
		if p.inTree != wantInTree {
			return fmt.Errorf("baseline: page %v inTree=%v want %v", p.start, p.inTree, wantInTree)
		}
		count += len(p.keys) + len(p.bufKeys)
		prev = p
	}
	if count != f.size {
		return fmt.Errorf("baseline: size %d but %d elements found", f.size, count)
	}
	return nil
}

// BinarySearch is the index-free baseline: the sorted data itself, searched
// with binary search. Its index size is zero.
type BinarySearch[K num.Key, V any] struct {
	keys []K
	vals []V
}

// NewBinarySearch wraps sorted data. The slices are retained, not copied.
func NewBinarySearch[K num.Key, V any](keys []K, vals []V) (*BinarySearch[K, V], error) {
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("baseline: %d keys but %d values", len(keys), len(vals))
	}
	return &BinarySearch[K, V]{keys: keys, vals: vals}, nil
}

// Lookup binary-searches the full array.
func (b *BinarySearch[K, V]) Lookup(k K) (V, bool) {
	if i, ok := search(b.keys, k); ok {
		return b.vals[i], true
	}
	var zero V
	return zero, false
}

// Len returns the number of elements.
func (b *BinarySearch[K, V]) Len() int { return len(b.keys) }

// SizeBytes is always zero: binary search needs no index structure.
func (b *BinarySearch[K, V]) SizeBytes() int64 { return 0 }

// search finds the first index of k in a sorted slice.
func search[K num.Key](keys []K, k K) (int, bool) {
	i := sort.Search(len(keys), func(j int) bool { return keys[j] >= k })
	return i, i < len(keys) && keys[i] == k
}

// insertAt inserts v at index i, shifting the tail right.
func insertAt[T any](s []T, i int, v T) []T {
	var zero T
	s = append(s, zero)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
