package baseline

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fitingtree/internal/btree"
	"fitingtree/internal/workload"
)

func TestFullLookup(t *testing.T) {
	keys := workload.Weblogs(20_000, 1)
	vals := make([]int, len(keys))
	for i := range vals {
		vals[i] = i
	}
	f, err := NewFull(keys, vals, btree.DefaultOrder)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		v, ok := f.Lookup(k)
		if !ok || keys[v] != keys[i] {
			t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
		}
	}
	if _, ok := f.Lookup(keys[len(keys)-1] + 999); ok {
		t.Fatal("lookup hit for absent key")
	}
	if f.SizeBytes() < int64(f.Len())*16 {
		t.Fatalf("SizeBytes %d below leaf payload", f.SizeBytes())
	}
}

func TestFullDeduplicates(t *testing.T) {
	keys := []uint64{1, 1, 1, 2, 3, 3}
	vals := []int{0, 1, 2, 3, 4, 5}
	f, err := NewFull(keys, vals, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3 distinct", f.Len())
	}
	if v, _ := f.Lookup(1); v != 0 {
		t.Fatalf("Lookup(1) = %d, want first value 0", v)
	}
}

func TestFixedLookupAndPages(t *testing.T) {
	keys := workload.IoT(30_000, 2)
	vals := make([]int, len(keys))
	for i := range vals {
		vals[i] = i
	}
	for _, ps := range []int{10, 100, 1000} {
		f, err := NewFixed(keys, vals, ps, btree.DefaultOrder)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("page=%d: %v", ps, err)
		}
		wantPages := (len(keys) + ps - 1) / ps
		if got := f.Pages(); got != wantPages {
			t.Fatalf("page=%d: %d pages, want %d", ps, got, wantPages)
		}
		for i := 0; i < len(keys); i += 101 {
			v, ok := f.Lookup(keys[i])
			if !ok || keys[v] != keys[i] {
				t.Fatalf("page=%d: Lookup(%d) = %d,%v", ps, keys[i], v, ok)
			}
		}
	}
}

func TestFixedInsertSplit(t *testing.T) {
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = uint64(i * 10)
	}
	vals := make([]int, len(keys))
	f, err := NewFixed(keys, vals, 100, btree.DefaultOrder)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10_000; i++ {
		f.Insert(uint64(rng.Intn(50_000)), -i)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if f.Splits() == 0 {
		t.Fatal("no splits after 10k inserts")
	}
	if f.Len() != 15_000 {
		t.Fatalf("Len = %d, want 15000", f.Len())
	}
	// All original keys findable.
	for _, k := range keys {
		if _, ok := f.Lookup(k); !ok {
			t.Fatalf("Lookup(%d) missed after splits", k)
		}
	}
	// Iteration is sorted and complete.
	n := 0
	var prev uint64
	f.Ascend(func(k uint64, v int) bool {
		if n > 0 && k < prev {
			t.Fatalf("Ascend out of order: %d < %d", k, prev)
		}
		prev = k
		n++
		return true
	})
	if n != 15_000 {
		t.Fatalf("Ascend visited %d", n)
	}
}

func TestFixedDuplicates(t *testing.T) {
	var keys []uint64
	for k := 0; k < 5; k++ {
		for i := 0; i < 450; i++ {
			keys = append(keys, uint64(k*100))
		}
	}
	vals := make([]int, len(keys))
	f, err := NewFixed(keys, vals, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		if _, ok := f.Lookup(uint64(k * 100)); !ok {
			t.Fatalf("Lookup(%d) missed in duplicate data", k*100)
		}
	}
	if _, ok := f.Lookup(50); ok {
		t.Fatal("absent key found")
	}
}

func TestFixedInsertEmptyAndBeforeMin(t *testing.T) {
	f, err := NewFixed([]uint64{}, []int{}, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	f.Insert(100, 1)
	f.Insert(5, 2) // before min
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if v, ok := f.Lookup(5); !ok || v != 2 {
		t.Fatalf("Lookup(5) = %d,%v", v, ok)
	}
}

func TestFixedRejectsBadInput(t *testing.T) {
	if _, err := NewFixed([]uint64{2, 1}, []int{0, 0}, 10, 8); err == nil {
		t.Fatal("accepted unsorted keys")
	}
	if _, err := NewFixed([]uint64{1}, []int{0, 1}, 10, 8); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
	if _, err := NewFixed([]uint64{1}, []int{0}, 0, 8); err == nil {
		t.Fatal("accepted page size 0")
	}
}

func TestBinarySearch(t *testing.T) {
	keys := []uint64{2, 4, 4, 6, 8}
	vals := []int{0, 1, 2, 3, 4}
	b, err := NewBinarySearch(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := b.Lookup(4); !ok || v != 1 {
		t.Fatalf("Lookup(4) = %d,%v, want first dup", v, ok)
	}
	if _, ok := b.Lookup(5); ok {
		t.Fatal("absent key found")
	}
	if b.SizeBytes() != 0 {
		t.Fatal("binary search should report zero index size")
	}
	if b.Len() != 5 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestLookupBreakdownFixed(t *testing.T) {
	keys := workload.IoT(10_000, 4)
	vals := make([]int, len(keys))
	f, err := NewFixed(keys, vals, 100, btree.DefaultOrder)
	if err != nil {
		t.Fatal(err)
	}
	_, ok, treeNs, pageNs := f.LookupBreakdown(keys[500])
	if !ok {
		t.Fatal("breakdown lookup missed")
	}
	if treeNs < 0 || pageNs < 0 {
		t.Fatalf("negative times %d %d", treeNs, pageNs)
	}
}

// Property: Fixed agrees with a reference sorted multiset under random
// insert traffic.
func TestQuickFixedMatchesReference(t *testing.T) {
	f := func(bulkRaw []uint16, ops []uint16) bool {
		bulk := make([]uint64, len(bulkRaw))
		for i, r := range bulkRaw {
			bulk[i] = uint64(r % 1024)
		}
		sort.Slice(bulk, func(i, j int) bool { return bulk[i] < bulk[j] })
		vals := make([]int, len(bulk))
		fx, err := NewFixed(bulk, vals, 16, 8)
		if err != nil {
			return false
		}
		counts := map[uint64]int{}
		for _, k := range bulk {
			counts[k]++
		}
		for _, op := range ops {
			k := uint64(op % 1024)
			if op%2 == 0 {
				fx.Insert(k, 0)
				counts[k]++
			} else if _, ok := fx.Lookup(k); ok != (counts[k] > 0) {
				return false
			}
		}
		return fx.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
