package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"fitingtree"
	"fitingtree/internal/workload"
)

// BurstPoint is one measurement of the burst experiment: a single writer
// issuing back-to-back insert bursts against one ladder depth, with an
// idle drain between bursts. Each burst is sized to overrun a depth-1
// pipeline — one frozen slot plus the absorb window — so at depth 1 the
// tripping writer is forced into inline backpressure folds, while a
// deeper ladder absorbs the same burst entirely as O(1) layer pushes.
type BurstPoint struct {
	Depth      int     `json:"depth"` // SetMaxFrozenLayers
	FlushEvery int     `json:"flush_every"`
	Bursts     int     `json:"bursts"`
	BurstSize  int     `json:"burst_size"`
	Inserts    int     `json:"inserts"`
	OpsPerSec  float64 `json:"ops_per_sec"` // sustained inserts/s within bursts
	P99Ns      float64 `json:"p99_ns"`
	MaxNs      float64 `json:"max_ns"`             // worst-case writer stall
	BPFolds    uint64  `json:"backpressure_folds"` // inline folds forced on writers
}

// BurstReport is the machine-readable envelope for BurstPoint
// measurements (written as BENCH_pr7.json by cmd/fitbench -json).
type BurstReport struct {
	Experiment string       `json:"experiment"`
	N          int          `json:"n"`
	FlushEvery int          `json:"flush_every"`
	Seed       int64        `json:"seed"`
	NumCPU     int          `json:"num_cpu"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Points     []BurstPoint `json:"points"`
}

// ExtBurst is the merge-ladder extension experiment: the same bursty
// writer runs against ladder depths 1, 2, and 4. Burst size is
// 5.5 × flushEvery: a depth-1 pipeline holds at most one frozen layer
// plus FlushBackpressureFactor × flushEvery absorbed writes (5 ×
// flushEvery total), so every burst overruns it and the tripping writer
// pays an inline fold — visible as backpressure_folds > 0 and a
// merge-sized max stall. Depth 2 already holds the burst (2 layers +
// 3.5 × flushEvery absorbed), so writers never fold inline and the tail
// stays append-sized; the background compactor folds during the
// inter-burst drain.
func ExtBurst(w io.Writer, cfg Config) []BurstPoint {
	cfg = cfg.withDefaults()
	base := workload.Weblogs(cfg.N, cfg.Seed)
	vals := positions(len(base))
	// A small trip threshold keeps the absorb window (FlushBackpressureFactor
	// × flushEvery appends, a few ms) well under the background fold cost at
	// this n, so a depth-1 pipeline cannot hide behind the worker: the burst
	// fills the window before the fold lands.
	flushEvery := 256
	burstSize := flushEvery*5 + flushEvery/2
	bursts := 32
	if cfg.Quick {
		bursts = 8
	}
	keys := flushStallKeys(base, bursts*burstSize, cfg.Seed+291)

	t := NewTable(fmt.Sprintf("Extension: bursty writer vs ladder depth (Weblogs, error=32, delta=%d, burst=%d, GOMAXPROCS=%d)",
		flushEvery, burstSize, runtime.GOMAXPROCS(0)),
		"depth", "bursts", "Kinserts/s", "p99 ns", "max ns", "bp folds")
	var points []BurstPoint

	for _, depth := range []int{1, 2, 4} {
		tr, err := fitingtree.BulkLoad(base, vals, fitingtree.Options{Error: 32, BufferSize: 8})
		if err != nil {
			panic(err)
		}
		o := fitingtree.NewOptimistic(tr)
		o.SetAsyncFlush(true)
		o.SetFlushEvery(flushEvery)
		o.SetMaxFrozenLayers(depth)

		lat := make([]int64, 0, bursts*burstSize)
		var busy time.Duration
		for b := 0; b < bursts; b++ {
			stream := keys[b*burstSize : (b+1)*burstSize]
			start := time.Now()
			for _, k := range stream {
				t0 := time.Now()
				o.Insert(k, k)
				lat = append(lat, time.Since(t0).Nanoseconds())
			}
			busy += time.Since(start)
			// The idle gap between bursts: drain the ladder so every burst
			// starts from the same clean state at every depth.
			o.SyncFlush()
		}
		folds := o.BackpressureFolds()
		o.Close()

		ops := 0.0
		if s := busy.Seconds(); s > 0 {
			ops = float64(len(lat)) / s
		}
		_, p99, _, max := stallPercentiles(lat)
		points = append(points, BurstPoint{
			Depth: depth, FlushEvery: flushEvery, Bursts: bursts, BurstSize: burstSize,
			Inserts: len(lat), OpsPerSec: ops, P99Ns: p99, MaxNs: max, BPFolds: folds,
		})
		t.Add(depth, bursts, ops/1e3, p99, max, folds)
	}
	t.Print(w)
	return points
}
