package bench

import (
	"fmt"
	"io"
	"time"

	"fitingtree/internal/core"
	"fitingtree/internal/workload"
	"fitingtree/keycodec"
)

// StringsPoint is one measurement of the ordered-bytes key experiment:
// the same Weblogs dataset indexed under native uint64 keys and under
// their keycodec.Uint64 string encodings, at one error threshold.
type StringsPoint struct {
	KeyKind   string  `json:"key_kind"` // uint64 | string
	Error     int     `json:"error"`
	Segments  int     `json:"segments"`
	IndexSize int64   `json:"index_size_bytes"`
	LookupNs  float64 `json:"lookup_ns"`
	ScanNs    float64 `json:"scan_ns_per_row"`
	InsertNs  float64 `json:"insert_ns_per_op"`
	// LookupOverhead is this row's lookup cost relative to the uint64 row
	// at the same error threshold (1.0 for the uint64 rows themselves).
	LookupOverhead float64 `json:"lookup_overhead_vs_uint64"`
}

// StringsReport is the machine-readable envelope for StringsPoint
// measurements (written as BENCH_pr8.json by cmd/fitbench -json): the
// cost of splitting ordering from interpolation, i.e. of running the
// segmentation over Approx's truncated-prefix positions while every
// comparison uses the full ordered-bytes key.
type StringsReport struct {
	Experiment string         `json:"experiment"`
	N          int            `json:"n"`
	Seed       int64          `json:"seed"`
	NumCPU     int            `json:"num_cpu"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Points     []StringsPoint `json:"points"`
}

// ExtStrings is the ordered-bytes key extension experiment: it indexes
// the same sorted column twice — once under native uint64 keys, once
// under their order-preserving keycodec.Uint64 encodings — and compares
// segment counts, lookup latency, range-scan rate, and insert cost. The
// codec preserves order exactly, so both trees hold identical content in
// identical order; the string rows pay only for byte-wise comparisons
// and the truncated-prefix Approx interpolation. Both rows use the
// read-optimized implicit router so the measured difference is the key
// representation, not router layout: its prefix sidecar (and the page-
// level one) let string probes run on contiguous integers, touching
// string bytes only on prefix ties.
func ExtStrings(w io.Writer, cfg Config) []StringsPoint {
	cfg = cfg.withDefaults()
	keys := workload.Weblogs(cfg.N, cfg.Seed)
	vals := positions(len(keys))
	skeys := make([]string, len(keys))
	for i, k := range keys {
		skeys[i] = keycodec.Uint64(k)
	}

	probes := Probes(keys, cfg.Probes, cfg.Seed+47)
	sprobes := make([]string, len(probes))
	for i, k := range probes {
		sprobes[i] = keycodec.Uint64(k)
	}
	const span = 100 // rows per range scan
	scans := num2(cfg.Probes/50, 1_000)
	starts := make([]uint64, scans)
	{
		srng := Probes(positions(len(keys)-span-1), scans, cfg.Seed+53)
		copy(starts, srng)
	}
	inserts := num2(cfg.N/10, 10_000)
	if cfg.Quick {
		inserts = num2(cfg.N/20, 5_000)
	}

	t := NewTable(fmt.Sprintf("Extension: ordered-bytes string keys vs native uint64 (Weblogs, n=%d)", cfg.N),
		"keys", "error", "segments", "IndexSize", "ns/lookup", "ns/scan-row", "ns/insert", "overhead")
	var points []StringsPoint

	errs := []int{10, 100, 1000}
	if cfg.Quick {
		errs = []int{100}
	}
	for _, e := range errs {
		opts := core.Options{Error: e, BufferSize: 8, Router: core.RouterImplicit}
		ut, err := core.BulkLoad(keys, vals, opts)
		if err != nil {
			panic(err)
		}
		st, err := core.BulkLoad(skeys, vals, opts)
		if err != nil {
			panic(err)
		}

		// The two key kinds are measured in tight alternation and each
		// keeps its fastest repetition: machine noise only ever slows a
		// run down and hits whatever happens to be running, so
		// interleaved minima are the fair basis for the overhead ratio.
		const reps = 5
		var uLook, sLook, uScan, sScan float64
		for r := 0; r < reps; r++ {
			if ns := LookupNs(ut.Lookup, probes, cfg.MinMeasure); r == 0 || ns < uLook {
				uLook = ns
			}
			if ns := LookupNs(st.Lookup, sprobes, cfg.MinMeasure); r == 0 || ns < sLook {
				sLook = ns
			}
			uNs := LookupNs(func(s uint64) (int, bool) {
				n := 0
				ut.AscendRange(keys[s], keys[int(s)+span], func(uint64, uint64) bool { n++; return true })
				return n, true
			}, starts, cfg.MinMeasure) / span
			if r == 0 || uNs < uScan {
				uScan = uNs
			}
			sNs := LookupNs(func(s uint64) (int, bool) {
				n := 0
				st.AscendRange(skeys[s], skeys[int(s)+span], func(string, uint64) bool { n++; return true })
				return n, true
			}, starts, cfg.MinMeasure) / span
			if r == 0 || sNs < sScan {
				sScan = sNs
			}
		}

		ins := Probes(keys, inserts, cfg.Seed+59)
		begin := time.Now()
		for _, k := range ins {
			ut.Insert(k|1, 0)
		}
		uIns := float64(time.Since(begin).Nanoseconds()) / float64(len(ins))
		begin = time.Now()
		for _, k := range ins {
			st.Insert(keycodec.Uint64(k|1), 0)
		}
		sIns := float64(time.Since(begin).Nanoseconds()) / float64(len(ins))

		for _, row := range []struct {
			kind           string
			stats          core.Stats
			look, scan, in float64
		}{
			{"uint64", ut.Stats(), uLook, uScan, uIns},
			{"string", st.Stats(), sLook, sScan, sIns},
		} {
			over := 1.0
			if row.kind == "string" && uLook > 0 {
				over = sLook / uLook
			}
			points = append(points, StringsPoint{
				KeyKind: row.kind, Error: e,
				Segments: row.stats.Pages, IndexSize: row.stats.IndexSize,
				LookupNs: row.look, ScanNs: row.scan, InsertNs: row.in,
				LookupOverhead: over,
			})
			t.Add(row.kind, e, row.stats.Pages, HumanBytes(row.stats.IndexSize),
				row.look, row.scan, row.in, over)
		}
	}
	t.Print(w)
	return points
}
