package bench

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"time"

	"fitingtree"
	"fitingtree/internal/pager"
	"fitingtree/internal/wal"
	"fitingtree/internal/workload"
)

// RecoveryPoint is one measurement of the durability extension experiment.
// Kind "recover" rows time a full OpenDurable — checkpoint load plus WAL
// tail replay — against the WAL tail length, next to two rebuild
// baselines: RebuildNs is a bulk load handed the sorted key/value arrays
// in memory (a lower bound no crash recovery can actually use, since a
// crash loses that memory), and ReloadNs is the repository's pre-durability
// recovery path — decode the saved index image from storage, which bulk
// rebuilds internally. Kind "checkpoint" rows time one incremental
// checkpoint against the number of chunks the preceding write batch
// dirtied: ChunksWritten must track the batch's spread, not ChunksTotal.
type RecoveryPoint struct {
	Kind          string  `json:"kind"` // recover | checkpoint
	N             int     `json:"n"`
	WALTail       int     `json:"wal_tail"`       // records replayed (recover rows)
	ChunksTotal   int     `json:"chunks_total"`   // chunks in the checkpoint
	ChunksWritten int     `json:"chunks_written"` // dirty chunks serialized (checkpoint rows)
	RecoverNs     float64 `json:"recover_ns"`     // mean OpenDurable wall time
	RebuildNs     float64 `json:"rebuild_ns"`     // mean in-memory BulkLoad wall time (lower bound)
	ReloadNs      float64 `json:"reload_ns"`      // mean decode-saved-image wall time (pre-durability path)
	CheckpointNs  float64 `json:"checkpoint_ns"`  // mean Checkpoint wall time
}

// RecoveryReport is the machine-readable envelope for RecoveryPoint
// measurements (written as BENCH_pr6.json by cmd/fitbench -json).
type RecoveryReport struct {
	Experiment string          `json:"experiment"`
	N          int             `json:"n"`
	Seed       int64           `json:"seed"`
	NumCPU     int             `json:"num_cpu"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Points     []RecoveryPoint `json:"points"`
}

// recoveryOpts is the tree configuration the durability experiment runs
// at. error=8 sits at the fine-grained end of the paper's evaluated range
// (Table 1 sweeps error from tens to thousands): it yields hundreds of
// chunks at n=1M, so the chunk-granular incremental machinery — dirty
// tracking, O(dirty) checkpoints, per-chunk blob reuse — is actually
// exercised. At large error bounds smooth datasets collapse into a
// handful of chunks and every checkpoint degenerates to a full write.
var recoveryOpts = fitingtree.Options{Error: 8}

// recoveryStore builds a durable store holding n Weblogs keys: one full
// checkpoint plus a WAL tail of exactly tail un-checkpointed inserts. The
// facade is abandoned (not closed) so the store stays in the mid-run shape
// recovery would find after a crash.
func recoveryStore(n, tail int, seed int64) (*wal.MemFS, *pager.Disk, error) {
	keys := workload.Weblogs(n, seed)
	vals := positions(len(keys))
	tr, err := fitingtree.BulkLoad(keys, vals, recoveryOpts)
	if err != nil {
		return nil, nil, err
	}
	fs := wal.NewMemFS()
	dev := pager.NewDisk()
	d, err := fitingtree.CreateDurable(fs, dev, tr)
	if err != nil {
		return nil, nil, err
	}
	d.SetAutoCheckpoint(false)
	d.SetAsyncFlush(false)
	maxKey := keys[len(keys)-1]
	rng := rand.New(rand.NewSource(seed + int64(tail)))
	for i := 0; i < tail; i++ {
		if err := d.Insert(uint64(rng.Int63n(int64(maxKey))), uint64(i)); err != nil {
			return nil, nil, err
		}
	}
	if err := d.Sync(); err != nil {
		return nil, nil, err
	}
	return fs, dev, nil
}

// ExtRecovery is the durability extension experiment. The first sweep
// holds the checkpoint fixed and grows the WAL tail: recovery cost should
// read as a near-constant checkpoint-load term plus a per-record replay
// term, sitting well below the reload baseline (decode the saved image —
// the pre-durability recovery path) for short tails and at or below even
// the in-memory rebuild lower bound — the incremental-recovery claim. The
// second sweep holds the data fixed and
// varies how many chunks a write batch touches before checkpointing:
// chunks written (and with them checkpoint time) should track the batch's
// spread while total chunks stay constant — the O(dirty) checkpoint claim.
func ExtRecovery(w io.Writer, cfg Config) []RecoveryPoint {
	cfg = cfg.withDefaults()
	n := cfg.N
	tails := []int{0, 1_000, 10_000, 100_000}
	spreads := []int{1, 8, 64, 512}
	if cfg.Quick {
		tails = []int{0, 1_000, 10_000}
		spreads = []int{1, 8, 64}
	}

	var points []RecoveryPoint

	t := NewTable("Extension: recovery time vs WAL tail (Weblogs, error=8, checkpointed base)",
		"n", "wal tail", "chunks", "recover ms", "rebuild ms", "reload ms", "reload/recover")
	keys := workload.Weblogs(n, cfg.Seed)
	vals := positions(len(keys))
	rebuildNs := measureWindow(cfg.MinMeasure, func() {
		if _, err := fitingtree.BulkLoad(keys, vals, recoveryOpts); err != nil {
			panic(err)
		}
	})
	// The reload baseline is what recovering without the WAL+checkpoint
	// subsystem actually costs: read the saved index image back and bulk
	// rebuild from it (Decode bulk-loads internally). The in-memory
	// rebuild column beside it assumes the sorted arrays survived the
	// crash, which no real recovery can.
	var image bytes.Buffer
	baseTree, err := fitingtree.BulkLoad(keys, vals, recoveryOpts)
	if err != nil {
		panic(err)
	}
	if err := fitingtree.Encode(baseTree, &image); err != nil {
		panic(err)
	}
	reloadNs := measureWindow(cfg.MinMeasure, func() {
		if _, err := fitingtree.Decode[uint64, uint64](bytes.NewReader(image.Bytes())); err != nil {
			panic(err)
		}
	})
	for _, tail := range tails {
		if tail >= n {
			continue
		}
		fs, dev, err := recoveryStore(n, tail, cfg.Seed)
		if err != nil {
			panic(err)
		}
		chunks := 0
		recoverNs := measureWindow(cfg.MinMeasure, func() {
			d, err := fitingtree.OpenDurable[uint64, uint64](fs, dev, fitingtree.Options{})
			if err != nil {
				panic(err)
			}
			d.SetAutoCheckpoint(false)
			if d.Len() != n+tail {
				panic(fmt.Sprintf("recovered %d elements, want %d", d.Len(), n+tail))
			}
			chunks = d.Stats().Chunks
		})
		points = append(points, RecoveryPoint{
			Kind: "recover", N: n, WALTail: tail, ChunksTotal: chunks,
			RecoverNs: recoverNs, RebuildNs: rebuildNs, ReloadNs: reloadNs,
		})
		t.Add(n, tail, chunks,
			fmt.Sprintf("%.1f", recoverNs/1e6),
			fmt.Sprintf("%.1f", rebuildNs/1e6),
			fmt.Sprintf("%.1f", reloadNs/1e6),
			fmt.Sprintf("%.1fx", reloadNs/recoverNs))
	}
	t.Print(w)

	t2 := NewTable("Extension: incremental checkpoint cost vs dirty spread (same base)",
		"n", "batch spread", "chunks total", "chunks written", "checkpoint ms")
	fs, dev, err := recoveryStore(n, 0, cfg.Seed)
	if err != nil {
		panic(err)
	}
	d, err := fitingtree.OpenDurable[uint64, uint64](fs, dev, fitingtree.Options{})
	if err != nil {
		panic(err)
	}
	d.SetAutoCheckpoint(false)
	maxKey := keys[len(keys)-1]
	for _, spread := range spreads {
		iters := 0
		written := 0
		total := 0
		var ckptNs int64
		start := time.Now()
		for time.Since(start) < cfg.MinMeasure || iters == 0 {
			// One batch of `spread` keys spaced across the key range dirties
			// about `spread` distinct chunks (fewer once spread approaches
			// the chunk count).
			for i := 0; i < spread; i++ {
				k := uint64(i+1) * (maxKey / uint64(spread+1))
				if err := d.Insert(k, uint64(i)); err != nil {
					panic(err)
				}
			}
			d.SyncFlush()
			t0 := time.Now()
			stats, err := d.Checkpoint()
			if err != nil {
				panic(err)
			}
			ckptNs += time.Since(t0).Nanoseconds()
			written += stats.ChunksWritten
			total = stats.ChunksWritten + stats.ChunksReused
			iters++
		}
		perOp := float64(ckptNs) / float64(iters)
		points = append(points, RecoveryPoint{
			Kind: "checkpoint", N: n, ChunksTotal: total,
			ChunksWritten: written / iters, CheckpointNs: perOp,
		})
		t2.Add(n, spread, total, written/iters, fmt.Sprintf("%.1f", perOp/1e6))
	}
	t2.Print(w)
	return points
}

// measureWindow runs fn repeatedly for at least window (and at least once),
// returning the mean wall time per run in nanoseconds.
func measureWindow(window time.Duration, fn func()) float64 {
	iters := 0
	start := time.Now()
	for time.Since(start) < window || iters == 0 {
		fn()
		iters++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}
