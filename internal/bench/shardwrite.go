package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"fitingtree"
	"fitingtree/internal/workload"
)

// ShardWritePoint is one measurement of the multi-writer experiment:
// aggregate insert throughput of one facade at one writer-goroutine count.
type ShardWritePoint struct {
	Facade    string  `json:"facade"` // optimistic | sharded
	Writers   int     `json:"writers"`
	Shards    int     `json:"shards"`       // shard count behind the facade (1 for optimistic)
	OpsPerSec float64 `json:"ops_per_sec"`  // aggregate inserts per second
	Speedup   float64 `json:"speedup_vs_1"` // vs the same facade at 1 writer
	FinalSkew float64 `json:"final_skew"`   // largest shard / mean shard size after the run
	LenM      float64 `json:"len_millions"` // final element count, sanity anchor
}

// ShardWriteReport is the machine-readable envelope for ShardWritePoint
// measurements (written as BENCH_pr3.json by cmd/fitbench -json), the
// write-path companion to ParallelReport's read-scaling capture.
type ShardWriteReport struct {
	Experiment string            `json:"experiment"`
	N          int               `json:"n"`
	Seed       int64             `json:"seed"`
	NumCPU     int               `json:"num_cpu"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Points     []ShardWritePoint `json:"points"`
}

// shardWriteInserts pre-generates each writer's insert stream: writer w
// draws keys from the w-th quantile range of the base keys (disjoint
// ranges, so on the sharded facade writers land on disjoint shards), made
// odd so they never collide with the even-spaced base keys.
func shardWriteInserts(base []uint64, writers, perWriter int, seed int64) [][]uint64 {
	ins := make([][]uint64, writers)
	for w := 0; w < writers; w++ {
		rng := rand.New(rand.NewSource(seed + int64(w)))
		lo := base[len(base)*w/writers]
		hi := base[len(base)-1]
		if w+1 < writers {
			hi = base[len(base)*(w+1)/writers]
		}
		if hi <= lo {
			hi = lo + 1
		}
		ins[w] = make([]uint64, perWriter)
		for i := range ins[w] {
			ins[w][i] = (lo + uint64(rng.Int63n(int64(hi-lo)))) | 1
		}
	}
	return ins
}

// shardWriteRun spawns one goroutine per pre-generated stream and measures
// aggregate inserts per second until every stream is drained.
func shardWriteRun(insert func(k, v uint64), ins [][]uint64) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	total := 0
	for _, stream := range ins {
		total += len(stream)
		wg.Add(1)
		go func(keys []uint64) {
			defer wg.Done()
			for _, k := range keys {
				insert(k, k)
			}
		}(stream)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if elapsed == 0 {
		return 0
	}
	return float64(total) / elapsed
}

// ExtShardWrite is the multi-writer extension experiment: aggregate insert
// throughput of a single Optimistic facade (all writers funnel through one
// writer mutex) against a Sharded facade with one shard per max writer
// count (writers on disjoint key ranges take disjoint shard locks) as
// writer goroutines grow. The sharded curve should track available cores;
// the single-writer curve flatlines on its mutex. Scaling beyond 1x
// requires GOMAXPROCS > 1 and free cores.
func ExtShardWrite(w io.Writer, cfg Config) []ShardWritePoint {
	cfg = cfg.withDefaults()
	base := workload.Weblogs(cfg.N, cfg.Seed)
	vals := positions(len(base))

	writerCounts := []int{1, 2, 4, 8}
	perWriter := num2(cfg.N/8, 50_000)
	if cfg.Quick {
		writerCounts = []int{1, 2, 4}
		perWriter = num2(cfg.N/16, 10_000)
	}
	maxShards := writerCounts[len(writerCounts)-1]

	t := NewTable(fmt.Sprintf("Extension: multi-writer insert scaling (Weblogs, error=32, GOMAXPROCS=%d)",
		runtime.GOMAXPROCS(0)),
		"facade", "writers", "shards", "Minserts/s", "speedup", "skew")
	var points []ShardWritePoint

	measure := func(facade string, writers int, base1 float64) float64 {
		ins := shardWriteInserts(base, writers, perWriter, cfg.Seed+91)
		var insert func(k, v uint64)
		shards := 1
		var sizes func() []int
		switch facade {
		case "optimistic":
			tr, err := fitingtree.BulkLoad(base, vals, fitingtree.Options{Error: 32, BufferSize: 8})
			if err != nil {
				panic(err)
			}
			o := fitingtree.NewOptimistic(tr)
			insert = o.Insert
			sizes = func() []int { return []int{o.Len()} }
		case "sharded":
			tr, err := fitingtree.BulkLoad(base, vals, fitingtree.Options{Error: 32, BufferSize: 8})
			if err != nil {
				panic(err)
			}
			s, err := fitingtree.NewSharded(tr, maxShards)
			if err != nil {
				panic(err)
			}
			shards = s.Shards()
			insert = s.Insert
			sizes = s.ShardSizes
		}
		ops := shardWriteRun(insert, ins)
		sp := 1.0 // the 1-writer row is its own baseline
		if base1 > 0 {
			sp = ops / base1
		}
		sz := sizes()
		total, maxSize := 0, 0
		for _, n := range sz {
			total += n
			if n > maxSize {
				maxSize = n
			}
		}
		skew := 1.0
		if total > 0 && len(sz) > 0 {
			skew = float64(maxSize) * float64(len(sz)) / float64(total)
		}
		points = append(points, ShardWritePoint{
			Facade: facade, Writers: writers, Shards: shards,
			OpsPerSec: ops, Speedup: sp, FinalSkew: skew,
			LenM: float64(total) / 1e6,
		})
		t.Add(facade, writers, shards, ops/1e6, sp, skew)
		return ops
	}

	for _, facade := range []string{"optimistic", "sharded"} {
		base1 := 0.0
		for _, writers := range writerCounts {
			ops := measure(facade, writers, base1)
			if writers == 1 {
				base1 = ops
			}
		}
	}
	t.Print(w)
	return points
}
