package bench

import (
	"fmt"
	"io"
	"math/rand"

	"fitingtree/internal/baseline"
	"fitingtree/internal/btree"
	"fitingtree/internal/core"
	"fitingtree/internal/diskindex"
	"fitingtree/internal/pager"
	"fitingtree/internal/workload"
)

// ExtIO is an extension experiment beyond the paper: the sorted column is
// stored in 4 KiB heap pages behind a small LRU buffer pool, and the
// measured quantity is buffer-pool misses (page reads) per lookup. It
// shows the paper's trade-off transposed to storage: FITing-Tree's bounded
// window costs about one page read per lookup at a fraction of the sparse
// index's memory, while index-free binary search pays a page read per
// probe.
func ExtIO(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	keys := workload.Weblogs(cfg.N, cfg.Seed)
	probeCount := num2(cfg.Probes, 20_000)
	probes := Probes(keys, probeCount, cfg.Seed+31)
	frames := 256 // 1 MiB pool vs an 8*N-byte column

	t := NewTable(fmt.Sprintf("Extension: page reads per lookup (disk-backed column, %d-frame pool)", frames),
		"Approach", "error", "memory", "reads/lookup")

	errs := []int{10, 100, 1000, 10000}
	if cfg.Quick {
		errs = []int{100}
	}
	runProbes := func(pool *pager.Pool, lookup func(uint64) (bool, error)) float64 {
		pool.ResetStats()
		for _, k := range probes {
			if _, err := lookup(k); err != nil {
				panic(err)
			}
		}
		return float64(pool.Stats().Misses) / float64(len(probes))
	}
	for _, e := range errs {
		pool := pager.NewPool(pager.NewDisk(), frames)
		col, err := diskindex.StoreColumn(pool, keys)
		if err != nil {
			panic(err)
		}
		ft, err := diskindex.NewFITing(col, e, keys)
		if err != nil {
			panic(err)
		}
		t.Add("FITing", e, HumanBytes(ft.MemoryBytes()), runProbes(pool, ft.Lookup))
	}
	{
		pool := pager.NewPool(pager.NewDisk(), frames)
		col, err := diskindex.StoreColumn(pool, keys)
		if err != nil {
			panic(err)
		}
		sp, err := diskindex.NewSparse(col, keys)
		if err != nil {
			panic(err)
		}
		t.Add("Sparse", "-", HumanBytes(sp.MemoryBytes()), runProbes(pool, sp.Lookup))
	}
	{
		pool := pager.NewPool(pager.NewDisk(), frames)
		col, err := diskindex.StoreColumn(pool, keys)
		if err != nil {
			panic(err)
		}
		bs := diskindex.NewBinSearch(col)
		t.Add("BinSearch", "-", HumanBytes(0), runProbes(pool, bs.Lookup))
	}
	t.Print(w)
}

// ExtRange is an extension experiment for Section 4.2's range queries:
// throughput of range scans of growing selectivity for FITing-Tree, the
// fixed-page baseline, and the dense index (all clustered, so scans are
// sequential after one point lookup).
func ExtRange(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	keys := workload.Weblogs(cfg.N, cfg.Seed)
	vals := positions(len(keys))
	ft, err := core.BulkLoad(keys, vals, core.Options{Error: 100, BufferSize: 0})
	if err != nil {
		panic(err)
	}
	fu, err := baseline.NewFull(keys, vals, btree.DefaultOrder)
	if err != nil {
		panic(err)
	}

	t := NewTable("Extension: range scan throughput (Weblogs, error=100)",
		"rows/scan", "FITing Mrows/s", "Full Mrows/s")
	rng := rand.New(rand.NewSource(cfg.Seed + 37))
	sizes := []int{10, 100, 1_000, 10_000}
	if cfg.Quick {
		sizes = []int{10, 1_000}
	}
	for _, span := range sizes {
		scans := num2(200_000/span, 20)
		starts := make([]int, scans)
		for i := range starts {
			starts[i] = rng.Intn(len(keys) - span - 1)
		}
		ftNs := LookupNs(func(s uint64) (int, bool) {
			n := 0
			ft.AscendRange(keys[s], keys[int(s)+span], func(uint64, uint64) bool { n++; return true })
			return n, true
		}, toU64(starts), cfg.MinMeasure)
		fuNs := LookupNs(func(s uint64) (int, bool) {
			n := 0
			fu.AscendRange(keys[s], keys[int(s)+span], func(uint64, uint64) bool { n++; return true })
			return n, true
		}, toU64(starts), cfg.MinMeasure)
		t.Add(span, float64(span)/ftNs*1e3, float64(span)/fuNs*1e3)
	}
	t.Print(w)
}

// ExtAblation compares the in-segment search strategies (Section 4.1.2's
// design choice) and the segment routers (Section 2.2's "any other tree
// structure" remark) at small and large error thresholds.
func ExtAblation(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	keys := workload.Weblogs(cfg.N, cfg.Seed)
	vals := positions(len(keys))
	probes := Probes(keys, cfg.Probes, cfg.Seed+41)

	t := NewTable("Extension: ablations — search strategy and router",
		"variant", "error", "IndexSize", "ns/lookup")
	errs := []int{10, 1000}
	if cfg.Quick {
		errs = []int{100}
	}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"binary+btree", core.Options{Search: core.SearchBinary}},
		{"linear+btree", core.Options{Search: core.SearchLinear}},
		{"exponential+btree", core.Options{Search: core.SearchExponential}},
		{"binary+implicit", core.Options{Router: core.RouterImplicit}},
	}
	for _, e := range errs {
		for _, v := range variants {
			o := v.opts
			o.Error = e
			o.BufferSize = 0
			tr, err := core.BulkLoad(keys, vals, o)
			if err != nil {
				panic(err)
			}
			t.Add(v.name, e, HumanBytes(tr.Stats().IndexSize), LookupNs(tr.Lookup, probes, cfg.MinMeasure))
		}
	}
	t.Print(w)
}

// num2 returns a if positive, else b.
func num2(a, b int) int {
	if a > 0 {
		return a
	}
	return b
}

// toU64 converts int indexes to uint64 for the generic measuring helper.
func toU64(xs []int) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = uint64(x)
	}
	return out
}

// sortedLower returns the first index with keys[i] >= k.
func sortedLower(keys []uint64, k uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
