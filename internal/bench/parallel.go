package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fitingtree"
	"fitingtree/internal/workload"
)

// ParallelPoint is one measurement of the parallel read-scaling
// experiment: aggregate point-lookup throughput of one facade at one
// reader-goroutine count.
type ParallelPoint struct {
	Facade     string  `json:"facade"` // tree | rwmutex | optimistic
	Goroutines int     `json:"goroutines"`
	OpsPerSec  float64 `json:"ops_per_sec"`  // aggregate lookups per second
	Speedup    float64 `json:"speedup_vs_1"` // vs the same facade at 1 goroutine
}

// ParallelReport is the machine-readable envelope for ParallelPoint
// measurements (written as BENCH_pr1.json by cmd/fitbench -json), so later
// PRs can compare against a recorded perf trajectory.
type ParallelReport struct {
	Experiment string          `json:"experiment"`
	N          int             `json:"n"`
	Seed       int64           `json:"seed"`
	NumCPU     int             `json:"num_cpu"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Points     []ParallelPoint `json:"points"`
}

// aggregateOpsPerSec runs g goroutines hammering lookup over probes for at
// least minDur and returns the combined lookups per second.
func aggregateOpsPerSec(lookup func(uint64) (uint64, bool), probes []uint64, g int, minDur time.Duration) float64 {
	var ops atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			idx := off * 7919 // decorrelate goroutines' probe streams
			n := 0
			for {
				for j := 0; j < 2048; j++ {
					lookup(probes[idx%len(probes)])
					idx++
				}
				n += 2048
				if time.Since(start) >= minDur {
					break
				}
			}
			ops.Add(int64(n))
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if elapsed == 0 {
		return 0
	}
	return float64(ops.Load()) / elapsed
}

// ExtParallel is the concurrency extension experiment: aggregate Lookup
// throughput of the RWMutex facade (Concurrent) against the optimistic
// read path (Optimistic) as reader goroutines grow, with the bare
// single-threaded Tree at 1 goroutine as the no-synchronization upper
// bound. The optimistic path takes no lock, so its curve should track the
// available cores; the RWMutex curve flatlines on the shared lock word.
// Note that scaling beyond 1x requires GOMAXPROCS > 1 and free cores.
func ExtParallel(w io.Writer, cfg Config) []ParallelPoint {
	cfg = cfg.withDefaults()
	keys := workload.Weblogs(cfg.N, cfg.Seed)
	vals := positions(len(keys))
	probes := Probes(keys, num2(cfg.Probes, 20_000), cfg.Seed+43)

	build := func() *fitingtree.Tree[uint64, uint64] {
		tr, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 100})
		if err != nil {
			panic(err)
		}
		return tr
	}
	plain := build()
	rw := fitingtree.NewConcurrent(build())
	opt := fitingtree.NewOptimistic(build())

	goroutines := []int{1, 2, 4, 8}
	if cfg.Quick {
		goroutines = []int{1, 2}
	}
	t := NewTable(fmt.Sprintf("Extension: parallel lookup scaling (Weblogs, error=100, GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)),
		"facade", "goroutines", "Mops/s", "speedup")
	var points []ParallelPoint
	measure := func(facade string, lookup func(uint64) (uint64, bool), gs []int) {
		base := 0.0
		for _, g := range gs {
			ops := aggregateOpsPerSec(lookup, probes, g, cfg.MinMeasure)
			if g == 1 {
				base = ops
			}
			sp := 0.0
			if base > 0 {
				sp = ops / base
			}
			points = append(points, ParallelPoint{Facade: facade, Goroutines: g, OpsPerSec: ops, Speedup: sp})
			t.Add(facade, g, ops/1e6, sp)
		}
	}
	measure("tree", plain.Lookup, []int{1})
	measure("rwmutex", rw.Lookup, goroutines)
	measure("optimistic", opt.Lookup, goroutines)
	t.Print(w)
	return points
}
