package bench

import (
	"fmt"
	"io"
	"time"

	"fitingtree/internal/baseline"
	"fitingtree/internal/btree"
	"fitingtree/internal/core"
	"fitingtree/internal/costmodel"
	"fitingtree/internal/num"
	"fitingtree/internal/segment"
	"fitingtree/internal/workload"
)

// Config scales the experiment runners.
type Config struct {
	N          int           // base dataset size
	Seed       int64         // RNG seed for workloads and probes
	Probes     int           // number of lookup probes per measurement
	MinMeasure time.Duration // minimum measuring window per data point
	Quick      bool          // shrink sweeps (used by tests)
}

// DefaultConfig is the full-size configuration used by cmd/fitbench.
func DefaultConfig() Config {
	return Config{N: 1_000_000, Seed: 1, Probes: 100_000, MinMeasure: 100 * time.Millisecond}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.N <= 0 {
		c.N = d.N
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Probes <= 0 {
		c.Probes = d.Probes
	}
	if c.MinMeasure <= 0 {
		c.MinMeasure = d.MinMeasure
	}
	return c
}

// positions returns the identity payload used as values in benchmarks.
func positions(n int) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = uint64(i)
	}
	return v
}

// Table1 reproduces Table 1: ShrinkingCone vs the optimal segmentation on
// samples of each dataset at several error thresholds. Sample sizes shrink
// as the error grows because the exact DP's running time grows with the
// segment reach (the paper hit the same wall via its O(n^2) memory).
func Table1(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	sampleFor := map[int]int{10: 100_000, 100: 50_000, 1000: 20_000}
	errs := []int{10, 100, 1000}
	if cfg.Quick {
		sampleFor = map[int]int{10: 20_000, 100: 10_000, 1000: 5_000}
	}
	t := NewTable("Table 1: ShrinkingCone vs optimal segmentation",
		"Dataset", "error", "sample", "ShrinkingCone", "Optimal", "Ratio")

	u64 := func(name string, gen func(int, int64) []uint64, errsUsed []int) {
		for _, e := range errsUsed {
			n := sampleFor[e]
			keys := gen(n, cfg.Seed)
			addTable1Row(t, name, e, keys)
		}
	}
	f64 := func(name string, gen func(int, int64) []float64, errsUsed []int) {
		for _, e := range errsUsed {
			n := sampleFor[e]
			keys := gen(n, cfg.Seed)
			addTable1Row(t, name, e, keys)
		}
	}
	// The paper reports taxi lat/lon at 10/100/1000 and the rest at 10/100.
	f64("Taxi drop lat", workload.TaxiDropLat, errs)
	f64("Taxi drop lon", workload.TaxiDropLon, errs)
	u64("Taxi pick time", workload.TaxiPickupTime, errs[:2])
	f64("OSM lon", workload.MapsLongitude, errs[:2])
	u64("Weblogs", workload.Weblogs, errs[:2])
	u64("IoT", workload.IoT, errs[:2])
	t.Print(w)
}

func addTable1Row[K num.Key](t *Table, name string, e int, keys []K) {
	greedy := len(segment.ShrinkingCone(keys, e))
	opt := segment.OptimalCount(keys, e)
	t.Add(name, e, len(keys), greedy, opt, float64(greedy)/float64(num.MaxInt(1, opt)))
}

// Fig1 emits the key->position mapping of the IoT dataset (Figure 1).
func Fig1(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	keys := workload.IoT(num.MinInt(cfg.N, 200_000), cfg.Seed)
	ks, pos := workload.KeyPositionSeries(keys, 60)
	t := NewTable("Figure 1: IoT timestamp -> position mapping", "Timestamp(ms)", "Position")
	for i := range ks {
		t.Add(uint64(ks[i]), pos[i])
	}
	t.Print(w)
}

// fig6Errors is the error/page-size sweep of Figure 6.
func fig6Errors(quick bool) []int {
	if quick {
		return []int{100, 10_000}
	}
	return []int{10, 100, 1_000, 10_000, 100_000}
}

// Fig6 reproduces Figure 6: lookup latency versus index size for
// FITing-Tree, fixed-size paging, a full (dense) index, and binary search,
// on the Weblogs, IoT, and Maps datasets.
func Fig6(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	runFig6(w, "Weblogs (clustered)", workload.Weblogs(cfg.N, cfg.Seed), cfg)
	runFig6(w, "IoT (clustered)", workload.IoT(cfg.N, cfg.Seed), cfg)
	runFig6(w, "Maps (non-clustered key pages)", workload.MapsLongitude(cfg.N, cfg.Seed), cfg)
}

func runFig6[K num.Key](w io.Writer, name string, keys []K, cfg Config) {
	vals := positions(len(keys))
	probes := Probes(keys, cfg.Probes, cfg.Seed+7)
	t := NewTable("Figure 6: lookup latency vs index size — "+name,
		"Approach", "error/page", "IndexSize", "ns/lookup")

	for _, e := range fig6Errors(cfg.Quick) {
		ft, err := core.BulkLoad(keys, vals, core.Options{Error: e, BufferSize: 0})
		if err != nil {
			panic(err)
		}
		ns := LookupNs(ft.Lookup, probes, cfg.MinMeasure)
		t.Add("FITing-Tree", e, HumanBytes(ft.Stats().IndexSize), ns)
	}
	for _, ps := range fig6Errors(cfg.Quick) {
		fx, err := baseline.NewFixed(keys, vals, ps, btree.DefaultOrder)
		if err != nil {
			panic(err)
		}
		ns := LookupNs(fx.Lookup, probes, cfg.MinMeasure)
		t.Add("Fixed", ps, HumanBytes(fx.SizeBytes()), ns)
	}
	fu, err := baseline.NewFull(keys, vals, btree.DefaultOrder)
	if err != nil {
		panic(err)
	}
	t.Add("Full", "-", HumanBytes(fu.SizeBytes()), LookupNs(fu.Lookup, probes, cfg.MinMeasure))
	bs, err := baseline.NewBinarySearch(keys, vals)
	if err != nil {
		panic(err)
	}
	t.Add("Binary", "-", HumanBytes(0), LookupNs(bs.Lookup, probes, cfg.MinMeasure))
	t.Print(w)
}

// fig7Errors is the error sweep of Figure 7.
func fig7Errors(quick bool) []int {
	if quick {
		return []int{100}
	}
	return []int{10, 100, 1000}
}

// Fig7 reproduces Figure 7: insert throughput versus error threshold for
// FITing-Tree (buffer E/2), fixed paging (page E, buffer E/2), and the
// full index.
func Fig7(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	runFig7(w, "Weblogs", workload.Weblogs(cfg.N, cfg.Seed), cfg)
	runFig7(w, "IoT", workload.IoT(cfg.N, cfg.Seed), cfg)
	runFig7(w, "Maps", workload.MapsLongitude(cfg.N, cfg.Seed), cfg)
}

func runFig7[K num.Key](w io.Writer, name string, keys []K, cfg Config) {
	bulk, inserts := SplitForInserts(keys, 0.2, cfg.Seed+13)
	bulkVals := positions(len(bulk))
	t := NewTable("Figure 7: insert throughput vs error — "+name,
		"Approach", "error/page", "Minserts/s")

	for _, e := range fig7Errors(cfg.Quick) {
		ft, err := core.BulkLoad(bulk, bulkVals, core.Options{Error: e, BufferSize: e / 2})
		if err != nil {
			panic(err)
		}
		th := InsertThroughput(func(k K) { ft.Insert(k, 0) }, inserts)
		t.Add("FITing-Tree", e, th/1e6)
	}
	for _, e := range fig7Errors(cfg.Quick) {
		fx, err := baseline.NewFixed(bulk, bulkVals, e, btree.DefaultOrder)
		if err != nil {
			panic(err)
		}
		th := InsertThroughput(func(k K) { fx.Insert(k, 0) }, inserts)
		t.Add("Fixed", e, th/1e6)
	}
	fu, err := baseline.NewFull(bulk, bulkVals, btree.DefaultOrder)
	if err != nil {
		panic(err)
	}
	th := InsertThroughput(func(k K) { fu.Insert(k, 0) }, inserts)
	t.Add("Full", "-", th/1e6)
	t.Print(w)
}

// Fig8 reproduces Figure 8: the non-linearity ratio of each dataset across
// error scales; the bumps mark the datasets' periodicities.
func Fig8(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	weblogs := workload.Weblogs(cfg.N, cfg.Seed)
	iot := workload.IoT(cfg.N, cfg.Seed)
	maps := workload.MapsLongitude(cfg.N, cfg.Seed)
	t := NewTable("Figure 8: non-linearity ratio vs error scale",
		"error", "Weblogs", "IoT", "Maps")
	for e := 10; e < cfg.N; e *= 10 {
		t.Add(e,
			workload.NonLinearityRatio(weblogs, e),
			workload.NonLinearityRatio(iot, e),
			workload.NonLinearityRatio(maps, e))
	}
	t.Print(w)
}

// Fig9 reproduces Figure 9: index sizes on the worst-case step dataset.
// Below the step size FITing-Tree degenerates to fixed-size paging; at and
// above it a single segment suffices.
func Fig9(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	const step = 100
	keys := workload.Step(cfg.N, step, 100)
	vals := positions(len(keys))
	t := NewTable(fmt.Sprintf("Figure 9: worst-case step data (step=%d), index size vs error", step),
		"error/page", "FITing-Tree", "Fixed", "Full")
	fu, err := baseline.NewFull(keys, vals, btree.DefaultOrder)
	if err != nil {
		panic(err)
	}
	errs := []int{10, 50, 100, 1_000, 10_000}
	if cfg.Quick {
		errs = []int{10, 100, 1_000}
	}
	for _, e := range errs {
		ft, err := core.BulkLoad(keys, vals, core.Options{Error: e, BufferSize: 0})
		if err != nil {
			panic(err)
		}
		fx, err := baseline.NewFixed(keys, vals, e, btree.DefaultOrder)
		if err != nil {
			panic(err)
		}
		t.Add(e, HumanBytes(ft.Stats().IndexSize), HumanBytes(fx.SizeBytes()), HumanBytes(fu.SizeBytes()))
	}
	t.Print(w)
}

// Fig10 reproduces Figure 10: cost model accuracy. Predicted lookup
// latency should upper-bound the measured latency, and predicted index
// size should upper-bound (but track) the actual size.
func Fig10(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	keys := workload.Weblogs(cfg.N, cfg.Seed)
	vals := positions(len(keys))
	probes := Probes(keys, cfg.Probes, cfg.Seed+17)

	c := 50.0
	if !cfg.Quick {
		c = costmodel.MeasureCacheMissNs(64<<20, 2_000_000)
	}
	sampleErrs := []int{10, 32, 100, 316, 1000, 3162, 10000, 31623, 100000}
	m, err := costmodel.Learn(keys, sampleErrs, c, btree.DefaultOrder, 0.5, 0.5)
	if err != nil {
		panic(err)
	}
	t := NewTable(fmt.Sprintf("Figure 10: cost model accuracy (c=%.1fns)", c),
		"error", "pred ns", "actual ns", "pred size", "actual size")
	errs := []int{10, 100, 1000, 10000, 100000}
	if cfg.Quick {
		errs = []int{100, 10000}
	}
	for _, e := range errs {
		ft, err := core.BulkLoad(keys, vals, core.Options{Error: e, BufferSize: e / 2, FillFactor: 0.5})
		if err != nil {
			panic(err)
		}
		actualNs := LookupNs(ft.Lookup, probes, cfg.MinMeasure)
		t.Add(e, m.Latency(e), actualNs, HumanBytes(m.Size(e)), HumanBytes(ft.Stats().IndexSize))
	}
	t.Print(w)
}

// Fig11 reproduces Figure 11: lookup latency as the dataset scales with
// its trends preserved; error threshold and page size fixed at 100.
func Fig11(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	base := cfg.N / 4
	t := NewTable("Figure 11: data size scalability (Weblogs, error=page=100)",
		"scale", "rows", "FITing ns", "Fixed ns", "Full ns", "Binary ns")
	scales := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		scales = []int{1, 4}
	}
	for _, sf := range scales {
		n := base * sf
		keys := workload.Weblogs(n, cfg.Seed)
		vals := positions(n)
		probes := Probes(keys, cfg.Probes, cfg.Seed+19)
		ft, err := core.BulkLoad(keys, vals, core.Options{Error: 100, BufferSize: 0})
		if err != nil {
			panic(err)
		}
		fx, err := baseline.NewFixed(keys, vals, 100, btree.DefaultOrder)
		if err != nil {
			panic(err)
		}
		fu, err := baseline.NewFull(keys, vals, btree.DefaultOrder)
		if err != nil {
			panic(err)
		}
		bs, err := baseline.NewBinarySearch(keys, vals)
		if err != nil {
			panic(err)
		}
		t.Add(fmt.Sprintf("x%d", sf), n,
			LookupNs(ft.Lookup, probes, cfg.MinMeasure),
			LookupNs(fx.Lookup, probes, cfg.MinMeasure),
			LookupNs(fu.Lookup, probes, cfg.MinMeasure),
			LookupNs(bs.Lookup, probes, cfg.MinMeasure))
	}
	t.Print(w)
}

// Fig12 reproduces Figure 12: insert throughput versus buffer size at a
// large error threshold (20,000 in the paper).
func Fig12(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	keys := workload.Weblogs(cfg.N, cfg.Seed)
	bulk, inserts := SplitForInserts(keys, 0.2, cfg.Seed+23)
	bulkVals := positions(len(bulk))
	const e = 20_000
	t := NewTable(fmt.Sprintf("Figure 12: insert throughput vs buffer size (Weblogs, error=%d)", e),
		"buffer", "Minserts/s")
	bufs := []int{10, 100, 1_000, 10_000}
	if cfg.Quick {
		bufs = []int{10, 1_000}
	}
	for _, bu := range bufs {
		ft, err := core.BulkLoad(bulk, bulkVals, core.Options{Error: e, BufferSize: bu})
		if err != nil {
			panic(err)
		}
		th := InsertThroughput(func(k uint64) { ft.Insert(k, 0) }, inserts)
		t.Add(bu, th/1e6)
	}
	t.Print(w)
}

// Fig13 reproduces Figure 13: the fraction of lookup time spent in the
// inner tree versus inside the page, for FITing-Tree and fixed paging,
// across error/page sizes.
func Fig13(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	keys := workload.Weblogs(cfg.N, cfg.Seed)
	vals := positions(len(keys))
	probes := Probes(keys, num.MinInt(cfg.Probes, 50_000), cfg.Seed+29)
	t := NewTable("Figure 13: lookup time breakdown (tree% / page%)",
		"error/page", "FITing tree%", "FITing page%", "Fixed tree%", "Fixed page%")
	errs := []int{10, 100, 1_000, 10_000, 100_000}
	if cfg.Quick {
		errs = []int{100, 10_000}
	}
	for _, e := range errs {
		ft, err := core.BulkLoad(keys, vals, core.Options{Error: e, BufferSize: 0})
		if err != nil {
			panic(err)
		}
		fx, err := baseline.NewFixed(keys, vals, e, btree.DefaultOrder)
		if err != nil {
			panic(err)
		}
		var ftTree, ftPage, fxTree, fxPage int64
		for _, k := range probes {
			_, _, tn, pn := ft.LookupBreakdown(k)
			ftTree += tn
			ftPage += pn
			_, _, tn, pn = fx.LookupBreakdown(k)
			fxTree += tn
			fxPage += pn
		}
		pct := func(a, b int64) float64 {
			if a+b == 0 {
				return 0
			}
			return 100 * float64(a) / float64(a+b)
		}
		t.Add(e, pct(ftTree, ftPage), pct(ftPage, ftTree), pct(fxTree, fxPage), pct(fxPage, fxTree))
	}
	t.Print(w)
}

// All runs every paper experiment in paper order, then the extension
// experiments (disk I/O, range scans, ablations).
func All(w io.Writer, cfg Config) {
	AllButParallel(w, cfg)
	ExtParallel(w, cfg)
}

// AllButParallel runs every experiment except ExtParallel, for callers
// that run the parallel experiment separately to capture its points
// (cmd/fitbench's -json).
func AllButParallel(w io.Writer, cfg Config) {
	Table1(w, cfg)
	Fig1(w, cfg)
	Fig6(w, cfg)
	Fig7(w, cfg)
	Fig8(w, cfg)
	Fig9(w, cfg)
	Fig10(w, cfg)
	Fig11(w, cfg)
	Fig12(w, cfg)
	Fig13(w, cfg)
	ExtIO(w, cfg)
	ExtRange(w, cfg)
	ExtAblation(w, cfg)
}
