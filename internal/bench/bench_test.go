package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// quickCfg keeps experiment smoke tests fast.
func quickCfg() Config {
	return Config{N: 30_000, Seed: 1, Probes: 2_000, MinMeasure: time.Millisecond, Quick: true}
}

func TestTablePrinting(t *testing.T) {
	tab := NewTable("demo", "a", "bb")
	tab.Add(1, "x")
	tab.Add(123456, 1.5)
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title: %s", out)
	}
	if !strings.Contains(out, "123456") {
		t.Fatalf("missing row: %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("unexpected line count %d: %s", len(lines), out)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		0:       "0B",
		512:     "512B",
		1 << 10: "1.00KB",
		1 << 20: "1.00MB",
		1 << 30: "1.00GB",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%d) = %s, want %s", in, got, want)
		}
	}
}

func TestProbesAndSplit(t *testing.T) {
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i)
	}
	p := Probes(keys, 500, 1)
	if len(p) != 500 {
		t.Fatalf("Probes returned %d", len(p))
	}
	for _, k := range p {
		if k >= 1000 {
			t.Fatalf("probe %d out of range", k)
		}
	}
	bulk, ins := SplitForInserts(keys, 0.2, 1)
	if len(bulk)+len(ins) != 1000 {
		t.Fatalf("split lost elements: %d + %d", len(bulk), len(ins))
	}
	if len(ins) < 100 || len(ins) > 300 {
		t.Fatalf("insert fraction off: %d", len(ins))
	}
	for i := 1; i < len(bulk); i++ {
		if bulk[i] < bulk[i-1] {
			t.Fatal("bulk portion not sorted")
		}
	}
}

func TestLookupNsPositive(t *testing.T) {
	keys := []uint64{1, 2, 3}
	ns := LookupNs(func(k uint64) (int, bool) { return 0, true }, keys, time.Millisecond)
	if ns <= 0 {
		t.Fatalf("ns = %f", ns)
	}
	if ns := LookupNs(func(k uint64) (int, bool) { return 0, true }, nil, time.Millisecond); ns != 0 {
		t.Fatalf("empty probes should measure 0, got %f", ns)
	}
}

// Smoke tests: every experiment runner completes and emits its table.
func TestExperimentSmoke(t *testing.T) {
	cases := []struct {
		name string
		fn   func(w *bytes.Buffer)
	}{
		{"table1", func(w *bytes.Buffer) { Table1(w, quickCfg()) }},
		{"fig1", func(w *bytes.Buffer) { Fig1(w, quickCfg()) }},
		{"fig6", func(w *bytes.Buffer) { Fig6(w, quickCfg()) }},
		{"fig7", func(w *bytes.Buffer) { Fig7(w, quickCfg()) }},
		{"fig8", func(w *bytes.Buffer) { Fig8(w, quickCfg()) }},
		{"fig9", func(w *bytes.Buffer) { Fig9(w, quickCfg()) }},
		{"fig10", func(w *bytes.Buffer) { Fig10(w, quickCfg()) }},
		{"fig11", func(w *bytes.Buffer) { Fig11(w, quickCfg()) }},
		{"fig12", func(w *bytes.Buffer) { Fig12(w, quickCfg()) }},
		{"fig13", func(w *bytes.Buffer) { Fig13(w, quickCfg()) }},
		{"extio", func(w *bytes.Buffer) { ExtIO(w, quickCfg()) }},
		{"extrange", func(w *bytes.Buffer) { ExtRange(w, quickCfg()) }},
		{"extablation", func(w *bytes.Buffer) { ExtAblation(w, quickCfg()) }},
		{"parallel", func(w *bytes.Buffer) { ExtParallel(w, quickCfg()) }},
		{"shardwrite", func(w *bytes.Buffer) { ExtShardWrite(w, quickCfg()) }},
		{"flushstall", func(w *bytes.Buffer) { ExtFlushStall(w, quickCfg()) }},
		{"adaptive", func(w *bytes.Buffer) { ExtAdaptive(w, quickCfg()) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			c.fn(&buf)
			if !strings.Contains(buf.String(), "==") {
				t.Fatalf("%s produced no table: %q", c.name, buf.String())
			}
			if len(strings.Split(buf.String(), "\n")) < 4 {
				t.Fatalf("%s table too short:\n%s", c.name, buf.String())
			}
		})
	}
}
