package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"fitingtree/internal/btree"
	"fitingtree/internal/core"
	"fitingtree/internal/workload"
)

// FlushPubPoint is one measurement of the flush-publication experiment:
// the cost of publishing one MergeCOW'd tree — persistent router clone,
// dirty-chunk re-cut, chunk-spine copy — at a given base size and delta
// size. The headline claim is in the column pairs at fixed delta: with the
// persistent router and chunked chain, PublishNs must stay near-flat as
// Segments grows, where the pre-chunked design grew linearly (router
// rebuild + page-array copy per flush).
type FlushPubPoint struct {
	N            int     `json:"n"`
	Segments     int     `json:"segments"`      // pages in the base tree
	Chunks       int     `json:"chunks"`        // chain chunks in the base tree
	Delta        int     `json:"delta"`         // distinct keys folded per publication
	PublishNs    float64 `json:"publish_ns"`    // mean wall time of one MergeCOW
	NsPerDirty   float64 `json:"ns_per_dirty"`  // PublishNs / Delta
	SharedChunks float64 `json:"shared_chunks"` // fraction of chunks shared with the parent
	SharedPages  float64 `json:"shared_pages"`  // fraction of pages shared with the parent
	// RouterRebuildNs is the retired per-flush overhead for reference: the
	// time to bulk-load a fresh B+ tree over the base tree's routing
	// entries, which the pre-chunked design paid on every publication (on
	// top of the dirty-page work) regardless of delta size.
	RouterRebuildNs float64 `json:"router_rebuild_ns"`
}

// FlushPubReport is the machine-readable envelope for FlushPubPoint
// measurements (written as BENCH_pr5.json by cmd/fitbench -json).
type FlushPubReport struct {
	Experiment string          `json:"experiment"`
	Seed       int64           `json:"seed"`
	NumCPU     int             `json:"num_cpu"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Points     []FlushPubPoint `json:"points"`
}

// flushPubOps builds a MergeCOW op list of `delta` distinct uniform random
// insert keys over the tree's key range.
func flushPubOps(tr *core.Tree[uint64, uint64], delta int, seed int64) []core.MergeOp[uint64, uint64] {
	maxKey, _, _ := tr.Max()
	rng := rand.New(rand.NewSource(seed))
	seen := map[uint64]bool{}
	ops := make([]core.MergeOp[uint64, uint64], 0, delta)
	for len(ops) < delta {
		k := uint64(rng.Int63n(int64(maxKey)))
		if seen[k] {
			continue
		}
		seen[k] = true
		ops = append(ops, core.MergeOp[uint64, uint64]{Key: k, Adds: []uint64{k}})
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].Key < ops[j].Key })
	return ops
}

// measureRouterRebuild times one from-scratch bulk load of a B+ tree over
// the tree's per-page routing keys — the O(segments) work the pre-chunked
// MergeCOW performed on every flush and the persistent router retires.
// Equal-start page runs register one entry, exactly as routedEntries did.
func measureRouterRebuild(tr *core.Tree[uint64, uint64], window time.Duration) float64 {
	starts, _ := tr.PageBounds()
	keys := make([]uint64, 0, len(starts))
	vals := make([]int, 0, len(starts))
	for i, s := range starts {
		if i == 0 || starts[i-1] != s {
			keys = append(keys, s)
			vals = append(vals, i)
		}
	}
	iters := 0
	begin := time.Now()
	for time.Since(begin) < window {
		rt := btree.New[uint64, int](btree.DefaultOrder)
		if err := rt.BulkLoad(keys, vals, 1); err != nil {
			panic(err)
		}
		iters++
	}
	return float64(time.Since(begin).Nanoseconds()) / float64(iters)
}

// sharedFraction reports which fraction of ids also appears in base.
func sharedFraction(ids, base []uint64) float64 {
	if len(ids) == 0 {
		return 0
	}
	in := make(map[uint64]bool, len(base))
	for _, id := range base {
		in[id] = true
	}
	shared := 0
	for _, id := range ids {
		if in[id] {
			shared++
		}
	}
	return float64(shared) / float64(len(ids))
}

// ExtFlushPub is the flush-publication extension experiment: it sweeps the
// base size (so the segment count grows ~16x across the sweep) at several
// fixed delta sizes and times core.MergeCOW — the whole publication path
// the Optimistic facade's flusher runs: dirty-interval discovery, region
// re-segmentation, chunk re-cut, persistent router update, chunk-spine
// copy. Before this PR the publication rebuilt the router and copied the
// page array (both O(segments)); now only the chunk spine (segments /
// chunkTarget pointers) scales with the tree, so the per-delta rows should
// read near-flat while Segments grows.
func ExtFlushPub(w io.Writer, cfg Config) []FlushPubPoint {
	cfg = cfg.withDefaults()
	sizes := []int{cfg.N / 16, cfg.N / 4, cfg.N}
	deltas := []int{64, 1024, 4096}
	if cfg.Quick {
		deltas = []int{64, 1024}
	}

	t := NewTable("Extension: flush publication cost vs tree size (Weblogs, error=8, random insert deltas)",
		"n", "segments", "chunks", "delta", "publish us", "ns/dirty key", "chunks shared", "pages shared", "retired rebuild us")
	var points []FlushPubPoint

	for _, n := range sizes {
		if n < 1024 {
			continue
		}
		keys := workload.Weblogs(n, cfg.Seed)
		vals := positions(len(keys))
		tr, err := core.BulkLoad(keys, vals, core.Options{Error: 8, BufferSize: 4})
		if err != nil {
			panic(err)
		}
		segments := tr.Stats().Pages
		chunks := tr.Stats().Chunks
		basePages := tr.PageIDs()
		baseChunks := tr.ChunkIDs()
		rebuildNs := measureRouterRebuild(tr, cfg.MinMeasure)
		for _, delta := range deltas {
			ops := flushPubOps(tr, delta, cfg.Seed+int64(delta))
			merged := tr.MergeCOW(ops) // one untimed run for the sharing stats
			sharedC := sharedFraction(merged.ChunkIDs(), baseChunks)
			sharedP := sharedFraction(merged.PageIDs(), basePages)

			iters := 0
			start := time.Now()
			for time.Since(start) < cfg.MinMeasure {
				if tr.MergeCOW(ops).Len() != n+delta {
					panic("bad publication")
				}
				iters++
			}
			perOp := float64(time.Since(start).Nanoseconds()) / float64(iters)

			points = append(points, FlushPubPoint{
				N: n, Segments: segments, Chunks: chunks, Delta: delta,
				PublishNs: perOp, NsPerDirty: perOp / float64(delta),
				SharedChunks: sharedC, SharedPages: sharedP,
				RouterRebuildNs: rebuildNs,
			})
			t.Add(n, segments, chunks, delta,
				fmt.Sprintf("%.1f", perOp/1e3),
				fmt.Sprintf("%.0f", perOp/float64(delta)),
				fmt.Sprintf("%.1f%%", sharedC*100),
				fmt.Sprintf("%.1f%%", sharedP*100),
				fmt.Sprintf("%.1f", rebuildNs/1e3))
		}
	}
	t.Print(w)
	return points
}
