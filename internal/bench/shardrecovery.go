package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"fitingtree"
	"fitingtree/internal/pager"
	"fitingtree/internal/wal"
	"fitingtree/internal/workload"
)

// ShardRecoveryPoint is one measurement of the sharded-durability
// extension experiment: a full OpenDurableSharded — cross-shard manifest
// load, per-shard checkpoint chunks, per-shard WAL tail replay — against
// the shard count, next to the in-memory bulk-load lower bound (which
// assumes the sorted arrays survived the crash; no real recovery has
// them).
type ShardRecoveryPoint struct {
	Shards    int     `json:"shards"`
	N         int     `json:"n"`
	WALTail   int     `json:"wal_tail"`   // records replayed, summed over shards
	RecoverNs float64 `json:"recover_ns"` // mean OpenDurableSharded wall time
	RebuildNs float64 `json:"rebuild_ns"` // mean in-memory BulkLoad wall time (lower bound)
}

// ShardRecoveryReport is the machine-readable envelope for
// ShardRecoveryPoint measurements (written as BENCH_pr9.json by
// cmd/fitbench -json).
type ShardRecoveryReport struct {
	Experiment string               `json:"experiment"`
	N          int                  `json:"n"`
	Seed       int64                `json:"seed"`
	NumCPU     int                  `json:"num_cpu"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	Points     []ShardRecoveryPoint `json:"points"`
}

// shardRecoveryStore builds a sharded durable store holding n Weblogs
// keys across shards partitions: one full cross-shard checkpoint plus a
// WAL tail of exactly tail un-checkpointed inserts scattered over the
// whole key range (so every shard's log carries a slice of it). The
// facade is abandoned (not closed) so the store stays in the mid-run
// shape recovery would find after a crash.
func shardRecoveryStore(n, tail, shards int, seed int64) (*wal.MemFS, *pager.Disk, error) {
	keys := workload.Weblogs(n, seed)
	vals := positions(len(keys))
	tr, err := fitingtree.BulkLoad(keys, vals, recoveryOpts)
	if err != nil {
		return nil, nil, err
	}
	fs := wal.NewMemFS()
	dev := pager.NewDisk()
	d, err := fitingtree.CreateDurableSharded(fs, dev, tr, shards)
	if err != nil {
		return nil, nil, err
	}
	d.SetAutoCheckpoint(false)
	d.SetAsyncFlush(false)
	d.SetRebalanceFactor(math.Inf(1)) // keep the checkpointed fences fixed
	d.SetSyncEvery(256)
	maxKey := keys[len(keys)-1]
	rng := rand.New(rand.NewSource(seed + int64(tail)))
	for i := 0; i < tail; i++ {
		if err := d.Insert(uint64(rng.Int63n(int64(maxKey))), uint64(i)); err != nil {
			return nil, nil, err
		}
	}
	if err := d.Sync(); err != nil {
		return nil, nil, err
	}
	return fs, dev, nil
}

// ExtShardRecovery is the sharded-durability extension experiment: crash
// recovery cost of the sharded facade as the shard count grows, with the
// data and the WAL tail held fixed. The per-shard checkpoint cuts and
// logs partition the same work, so recovery should stay flat (or dip as
// per-shard replay batches shrink) rather than grow with the shard
// count — the cross-shard cut adds one manifest, not S of anything
// expensive. The in-memory rebuild column is the same lower bound the
// single-tree experiment reports (it assumes the sorted arrays survived
// the crash); the claim here is the flat shard-count curve relative to
// it, not beating it.
func ExtShardRecovery(w io.Writer, cfg Config) []ShardRecoveryPoint {
	cfg = cfg.withDefaults()
	n := cfg.N
	tail := 50_000
	shardCounts := []int{1, 2, 4, 8}
	if cfg.Quick {
		tail = 10_000
		shardCounts = []int{1, 4}
	}
	if tail >= n {
		tail = n / 10
	}

	keys := workload.Weblogs(n, cfg.Seed)
	vals := positions(len(keys))
	rebuildNs := measureWindow(cfg.MinMeasure, func() {
		if _, err := fitingtree.BulkLoad(keys, vals, recoveryOpts); err != nil {
			panic(err)
		}
	})

	var points []ShardRecoveryPoint
	t := NewTable("Extension: sharded recovery vs shard count (Weblogs, error=8, fixed WAL tail)",
		"shards", "n", "wal tail", "recover ms", "rebuild ms", "rebuild/recover")
	for _, shards := range shardCounts {
		fs, dev, err := shardRecoveryStore(n, tail, shards, cfg.Seed)
		if err != nil {
			panic(err)
		}
		walTail := 0
		recoverNs := measureWindow(cfg.MinMeasure, func() {
			d, err := fitingtree.OpenDurableSharded[uint64, uint64](fs, dev, fitingtree.Options{}, shards)
			if err != nil {
				panic(err)
			}
			d.SetAutoCheckpoint(false)
			if d.Len() != n+tail {
				panic(fmt.Sprintf("recovered %d elements, want %d", d.Len(), n+tail))
			}
			walTail = d.WALRecords()
		})
		points = append(points, ShardRecoveryPoint{
			Shards: shards, N: n, WALTail: walTail,
			RecoverNs: recoverNs, RebuildNs: rebuildNs,
		})
		t.Add(shards, n, walTail,
			fmt.Sprintf("%.1f", recoverNs/1e6),
			fmt.Sprintf("%.1f", rebuildNs/1e6),
			fmt.Sprintf("%.1fx", rebuildNs/recoverNs))
	}
	t.Print(w)
	return points
}
