// Package bench is the measurement and reporting harness for reproducing
// the paper's evaluation (Section 7). Each experiment in the paper — Table
// 1 and Figures 1, 6, 7, 8, 9, 10, 11, 12, 13 — has a runner here that
// generates the workload, builds the competing indexes, measures, and
// prints the same rows/series the paper reports. cmd/fitbench is the CLI
// over these runners; the repository-root benchmarks reuse the same
// helpers under testing.B.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"fitingtree/internal/num"
)

// Table accumulates rows and renders them aligned.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a titled table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Print renders the table to w.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// HumanBytes renders a byte count in the paper's MB-centric style.
func HumanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// LookupNs measures the average wall-clock nanoseconds per call of lookup
// over the probe keys, repeated until at least minDur has elapsed.
func LookupNs[K num.Key, V any](lookup func(K) (V, bool), probes []K, minDur time.Duration) float64 {
	if len(probes) == 0 {
		return 0
	}
	total := 0
	start := time.Now()
	for {
		for _, k := range probes {
			lookup(k)
		}
		total += len(probes)
		if time.Since(start) >= minDur {
			break
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(total)
}

// InsertThroughput measures inserts per second for inserting keys via fn.
func InsertThroughput[K num.Key](fn func(K), keys []K) float64 {
	start := time.Now()
	for _, k := range keys {
		fn(k)
	}
	elapsed := time.Since(start).Seconds()
	if elapsed == 0 {
		return 0
	}
	return float64(len(keys)) / elapsed
}

// Probes draws count keys uniformly from keys (with replacement), so
// lookup measurements mix hot and cold regions the way the paper's random
// point queries do.
func Probes[K num.Key](keys []K, count int, seed int64) []K {
	rng := rand.New(rand.NewSource(seed))
	out := make([]K, count)
	for i := range out {
		out[i] = keys[rng.Intn(len(keys))]
	}
	return out
}

// SplitForInserts deterministically splits generated keys into a bulk-load
// portion (sorted) and an insert portion (shuffled), preserving the overall
// distribution of both, for the insert-throughput experiments.
func SplitForInserts[K num.Key](keys []K, insertFrac float64, seed int64) (bulk []K, inserts []K) {
	rng := rand.New(rand.NewSource(seed))
	for _, k := range keys {
		if rng.Float64() < insertFrac {
			inserts = append(inserts, k)
		} else {
			bulk = append(bulk, k)
		}
	}
	rng.Shuffle(len(inserts), func(i, j int) { inserts[i], inserts[j] = inserts[j], inserts[i] })
	return bulk, inserts
}
