package bench

import (
	"fmt"
	"io"

	"fitingtree"
	"fitingtree/internal/num"
	"fitingtree/internal/workload"
)

// AdaptivePoint is one measurement of the self-tuning experiment: one
// configuration (a fixed global error threshold, or the adaptive tuner
// seeded with the sweep's best fixed one) run through the same skewed
// warm/measure/delete schedule.
type AdaptivePoint struct {
	Config          string  `json:"config"`            // fixed | adaptive
	Epsilon         int     `json:"epsilon"`           // global (or seed) error threshold
	HotLookupNs     float64 `json:"hot_lookup_ns"`     // lookups inside the hot range
	UniformLookupNs float64 `json:"uniform_lookup_ns"` // lookups over the whole key space
	InsertsPerSec   float64 `json:"inserts_per_sec"`
	PagesPerKiloOp  float64 `json:"pages_per_kop"` // pages rebuilt per 1000 writes (write amplification)
	IndexSize       int64   `json:"index_size_bytes"`
	Regions         int     `json:"regions"`                 // tuner regions in the final plan (0 = untuned)
	PlanEpsilons    []int   `json:"plan_epsilons,omitempty"` // per-region ε targets of the final plan
	RouterRatio     int     `json:"router_ratio"`            // measured router crossover (0 = uncalibrated)
	Underfull       int     `json:"underfull_after_deletes"`
}

// AdaptiveReport is the machine-readable envelope for AdaptivePoint
// measurements (written as BENCH_pr10.json by cmd/fitbench -json).
type AdaptiveReport struct {
	Experiment string          `json:"experiment"`
	N          int             `json:"n"`
	Seed       int64           `json:"seed"`
	NumCPU     int             `json:"num_cpu"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Points     []AdaptivePoint `json:"points"`
}

// Hot-range geometry of the adaptive experiment: 10% of the elements,
// centered, receiving 90% of the lookups.
const (
	adaptiveHotAt   = 0.45
	adaptiveHotSpan = 0.10
	adaptiveHotFrac = 0.90

	// Insert skew: writes concentrate on the most recent 30% of the key
	// space (Weblogs keys are timestamps, so this is the natural
	// time-series shape — new events append near the tail while analysts
	// hammer a historical window).
	adaptiveInsAt   = 0.85
	adaptiveInsSpan = 0.30
	adaptiveInsFrac = 0.90
)

// ExtAdaptive is the self-tuning extension experiment: the Section 6 cost
// model driven as a live feedback loop. A doubly skewed time-series
// workload (90% of lookups against a 10% historical window, 90% of
// inserts against the most recent 30%) runs against fixed global error
// thresholds and against the adaptive tuner seeded with the sweep's best
// fixed one — the tuner has to *improve on* the operator's best hand
// pick, not on a strawman. It should hold the read-hot window's bound
// tight relative to the rest while the write-dominated and idle regions
// drift loose, shedding index size and merge write amplification no
// single global ε reaches without giving up the hot window's latency. A
// final delete-heavy phase guts a cold quarter of the key space and
// reports the surviving under-full chunks; fold-time absorption keeps
// the count bounded.
func ExtAdaptive(w io.Writer, cfg Config) []AdaptivePoint {
	cfg = cfg.withDefaults()
	base := workload.Weblogs(cfg.N, cfg.Seed)
	vals := positions(len(base))

	warmLookups := num.MinInt(cfg.Probes, 100_000)
	warmInserts := num.MinInt(cfg.N/8, 64_000)
	measureInserts := num.MinInt(cfg.N/8, 50_000)
	if cfg.Quick {
		warmLookups = num.MinInt(cfg.Probes, 10_000)
	}

	hotProbes := workload.HotCold(base, cfg.Probes, adaptiveHotAt, adaptiveHotSpan, 1, cfg.Seed+53)
	uniProbes := Probes(base, cfg.Probes, cfg.Seed+59)

	t := NewTable(fmt.Sprintf("Extension: cost-model self-tuning (Weblogs, hot 10%% gets %d%% of lookups, recent 30%% gets %d%% of inserts)",
		int(adaptiveHotFrac*100), int(adaptiveInsFrac*100)),
		"config", "e", "plan e", "hot ns", "uniform ns", "Minserts/s", "pages/kop", "IndexSize", "regions", "underfull")
	var points []AdaptivePoint

	configs := []struct {
		name     string
		eps      int
		adaptive bool
	}{
		{"fixed", 64, false},
		{"fixed", 256, false},
		{"fixed", 1024, false},
		{"adaptive", 1024, true},
	}
	for i, c := range configs {
		seed := cfg.Seed + int64(i)*101
		tr, err := fitingtree.BulkLoad(base, vals, fitingtree.Options{Error: c.eps, BufferSize: 32})
		if err != nil {
			panic(err)
		}
		o := fitingtree.NewOptimistic(tr)
		o.SetAsyncFlush(false) // deterministic inline folds
		pt := AdaptivePoint{Config: c.name, Epsilon: c.eps}

		// Warm in two halves: the skewed traffic accumulates load counters,
		// the explicit mid-point retune publishes a plan, and the second
		// half's folds apply it to the regions they rebuild anyway. The
		// automatic loop (SetAutoTune) keeps retuning every few folds.
		if c.adaptive {
			o.SetAutoTune(true)
		}
		warm := func(half int) {
			look := workload.HotCold(base, warmLookups/2,
				adaptiveHotAt, adaptiveHotSpan, adaptiveHotFrac, seed+int64(half))
			ins := workload.HotCold(base, warmInserts/2,
				adaptiveInsAt, adaptiveInsSpan, adaptiveInsFrac, seed+10+int64(half))
			for j := 0; j < len(look) || j < len(ins); j++ {
				if j < len(look) {
					o.Lookup(look[j])
				}
				if j < len(ins) {
					o.Insert(ins[j], 0)
				}
			}
			o.SyncFlush()
		}
		warm(0)
		if c.adaptive {
			pt.RouterRatio = o.Calibrate()
			o.Retune()
		}
		warm(1)

		pt.HotLookupNs = LookupNs(o.Lookup, hotProbes, cfg.MinMeasure)
		pt.UniformLookupNs = LookupNs(o.Lookup, uniProbes, cfg.MinMeasure)

		ins := workload.HotCold(base, measureInserts,
			adaptiveInsAt, adaptiveInsSpan, adaptiveInsFrac, seed+23)
		before := o.Counters()
		pt.InsertsPerSec = InsertThroughput(func(k uint64) { o.Insert(k, 0) }, ins)
		o.SyncFlush()
		after := o.Counters()
		pt.PagesPerKiloOp = float64(after.PagesMade-before.PagesMade) * 1000 / float64(len(ins))

		st := o.Stats()
		pt.IndexSize = st.IndexSize
		pt.Regions = len(st.Regions)
		planCol := "-"
		if len(st.Regions) > 0 {
			minE, maxE := st.Regions[0].Epsilon, st.Regions[0].Epsilon
			for _, r := range st.Regions {
				pt.PlanEpsilons = append(pt.PlanEpsilons, r.Epsilon)
				minE, maxE = num.MinInt(minE, r.Epsilon), num.MaxInt(maxE, r.Epsilon)
			}
			planCol = fmt.Sprintf("%d-%d", minE, maxE)
		}

		// Delete-heavy phase: gut the first quarter of the key space and
		// report the under-full chunks that survive fold-time absorption.
		for _, k := range base[:len(base)/4] {
			o.Delete(k)
		}
		o.SyncFlush()
		pt.Underfull = o.Stats().UnderfullChunks

		points = append(points, pt)
		t.Add(c.name, c.eps, planCol, pt.HotLookupNs, pt.UniformLookupNs, pt.InsertsPerSec/1e6,
			pt.PagesPerKiloOp, HumanBytes(pt.IndexSize), pt.Regions, pt.Underfull)
	}
	t.Print(w)
	return points
}
