package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"fitingtree"
	"fitingtree/internal/workload"
)

// FlushStallPoint is one measurement of the flush-stall experiment: the
// per-insert latency distribution of a single writer on one facade flush
// mode. Inline mode pays the whole MergeCOW merge on the insert that
// trips the threshold; async mode pays only the O(1) freeze, with the
// merge running on the background flusher.
type FlushStallPoint struct {
	Mode       string  `json:"mode"` // inline | async
	N          int     `json:"n"`
	FlushEvery int     `json:"flush_every"`
	Inserts    int     `json:"inserts"`
	OpsPerSec  float64 `json:"ops_per_sec"` // sustained inserts per second
	P50Ns      float64 `json:"p50_ns"`      // median insert latency
	P99Ns      float64 `json:"p99_ns"`
	P999Ns     float64 `json:"p999_ns"`
	MaxNs      float64 `json:"max_ns"` // worst-case writer stall
}

// FlushStallReport is the machine-readable envelope for FlushStallPoint
// measurements (written as BENCH_pr4.json by cmd/fitbench -json), the
// write-tail-latency companion to ShardWriteReport's throughput capture.
type FlushStallReport struct {
	Experiment string            `json:"experiment"`
	N          int               `json:"n"`
	FlushEvery int               `json:"flush_every"`
	Seed       int64             `json:"seed"`
	NumCPU     int               `json:"num_cpu"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Points     []FlushStallPoint `json:"points"`
}

// flushStallKeys pre-generates a writer's insert stream: uniform random
// keys over the base range, made odd so they never collide with the
// even-spaced base keys.
func flushStallKeys(base []uint64, inserts int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	lo, hi := base[0], base[len(base)-1]
	if hi <= lo {
		hi = lo + 1
	}
	keys := make([]uint64, inserts)
	for i := range keys {
		keys[i] = (lo + uint64(rng.Int63n(int64(hi-lo)))) | 1
	}
	return keys
}

// stallPercentiles summarizes a latency sample (sorted in place).
func stallPercentiles(lat []int64) (p50, p99, p999, max float64) {
	if len(lat) == 0 {
		return 0, 0, 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return float64(lat[i])
	}
	return at(0.50), at(0.99), at(0.999), float64(lat[len(lat)-1])
}

// measureFlushStall times every individual insert of a pre-generated
// stream against one facade and returns the latency sample.
func measureFlushStall(o *fitingtree.Optimistic[uint64, uint64], keys []uint64) ([]int64, float64) {
	lat := make([]int64, len(keys))
	start := time.Now()
	for i, k := range keys {
		t0 := time.Now()
		o.Insert(k, k)
		lat[i] = time.Since(t0).Nanoseconds()
	}
	elapsed := time.Since(start).Seconds()
	ops := 0.0
	if elapsed > 0 {
		ops = float64(len(keys)) / elapsed
	}
	return lat, ops
}

// ExtFlushStall is the flush-pipeline extension experiment: one writer
// inserts a random stream into an Optimistic facade while every Insert is
// timed individually, once with the inline flush (the tripping writer
// runs MergeCOW) and once with the asynchronous pipeline (the tripping
// writer freezes the delta; the background flusher merges). The
// interesting column is the tail: inline mode's worst-case stall is the
// full merge cost and grows with n, async mode's tracks the delta-append
// cost. Separating the curves needs a free core for the flusher
// (GOMAXPROCS > 1); on a single core the merge steals the writer's
// timeslice wherever the scheduler lands it, so the tail stays
// merge-sized in both modes.
func ExtFlushStall(w io.Writer, cfg Config) []FlushStallPoint {
	cfg = cfg.withDefaults()
	base := workload.Weblogs(cfg.N, cfg.Seed)
	vals := positions(len(base))
	inserts := num2(cfg.N/8, 100_000)
	flushEvery := 1024
	if cfg.Quick {
		inserts = num2(cfg.N/16, 20_000)
	}

	t := NewTable(fmt.Sprintf("Extension: writer flush stall, inline vs async (Weblogs, error=32, delta=%d, GOMAXPROCS=%d)",
		flushEvery, runtime.GOMAXPROCS(0)),
		"mode", "inserts", "Kinserts/s", "p50 ns", "p99 ns", "p99.9 ns", "max ns")
	var points []FlushStallPoint

	for _, mode := range []string{"inline", "async"} {
		tr, err := fitingtree.BulkLoad(base, vals, fitingtree.Options{Error: 32, BufferSize: 8})
		if err != nil {
			panic(err)
		}
		o := fitingtree.NewOptimistic(tr)
		o.SetFlushEvery(flushEvery)
		o.SetAsyncFlush(mode == "async")
		lat, ops := measureFlushStall(o, flushStallKeys(base, inserts, cfg.Seed+173))
		o.Close()
		p50, p99, p999, max := stallPercentiles(lat)
		points = append(points, FlushStallPoint{
			Mode: mode, N: cfg.N, FlushEvery: flushEvery, Inserts: inserts,
			OpsPerSec: ops, P50Ns: p50, P99Ns: p99, P999Ns: p999, MaxNs: max,
		})
		t.Add(mode, inserts, ops/1e3, p50, p99, p999, max)
	}
	t.Print(w)
	return points
}
