package bench

import (
	"fmt"
	"testing"
	"time"

	"fitingtree"
	"fitingtree/internal/workload"
)

// stallTreeCache builds each benchmark base dataset at most once, and only
// when a matching sub-benchmark actually executes.
var stallKeyCache = map[int][]uint64{}

func stallKeysCached(b *testing.B, n int) []uint64 {
	b.Helper()
	if ks, ok := stallKeyCache[n]; ok {
		return ks
	}
	ks := workload.Weblogs(n, 1)
	stallKeyCache[n] = ks
	return ks
}

// BenchmarkFlushStall measures the writer-observed flush stall: every
// Insert is timed individually and the worst case and p99 are reported as
// extra metrics (max-stall-ns, p99-stall-ns) next to the usual ns/op. In
// inline mode the insert that trips the flush threshold pays the whole
// MergeCOW merge — at n=1M the worst case is milliseconds — while in
// async mode it pays only the freeze, so with a free core for the
// background flusher the max stall drops by orders of magnitude. On a
// single-core machine the two modes converge: the merge has to steal the
// writer's only CPU wherever the scheduler schedules it (see
// ExtFlushStall).
func BenchmarkFlushStall(b *testing.B) {
	const flushEvery = 1024
	for _, n := range []int{100_000, 1_000_000} {
		for _, mode := range []string{"inline", "async"} {
			b.Run(fmt.Sprintf("%s/n=%d/delta=%d", mode, n, flushEvery), func(b *testing.B) {
				base := stallKeysCached(b, n)
				tr, err := fitingtree.BulkLoad(base, positions(len(base)), fitingtree.Options{Error: 32, BufferSize: 8})
				if err != nil {
					b.Fatal(err)
				}
				o := fitingtree.NewOptimistic(tr)
				o.SetFlushEvery(flushEvery)
				o.SetAsyncFlush(mode == "async")
				keys := flushStallKeys(base, b.N, 42)
				lat := make([]int64, b.N)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					t0 := time.Now()
					o.Insert(keys[i], keys[i])
					lat[i] = time.Since(t0).Nanoseconds()
				}
				b.StopTimer()
				o.Close()
				_, p99, _, max := stallPercentiles(lat)
				b.ReportMetric(p99, "p99-stall-ns")
				b.ReportMetric(max, "max-stall-ns")
			})
		}
	}
}
