package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New[uint64, int](DefaultOrder)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	if tr.Height() != 1 {
		t.Fatalf("Height = %d, want 1", tr.Height())
	}
	if _, ok := tr.Get(42); ok {
		t.Fatal("Get on empty tree reported a hit")
	}
	if _, _, ok := tr.Floor(42); ok {
		t.Fatal("Floor on empty tree reported a hit")
	}
	if _, _, ok := tr.Ceil(42); ok {
		t.Fatal("Ceil on empty tree reported a hit")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree reported a hit")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree reported a hit")
	}
	if tr.Delete(7) {
		t.Fatal("Delete on empty tree reported success")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertGetSequential(t *testing.T) {
	tr := New[uint64, uint64](4) // tiny order to force many splits
	const n = 10_000
	for i := uint64(0); i < n; i++ {
		if tr.Insert(i, i*2) {
			t.Fatalf("Insert(%d) reported replacement on fresh key", i)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		v, ok := tr.Get(i)
		if !ok || v != i*2 {
			t.Fatalf("Get(%d) = %d,%v, want %d,true", i, v, ok, i*2)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertReplace(t *testing.T) {
	tr := New[int, string](DefaultOrder)
	tr.Insert(1, "a")
	if !tr.Insert(1, "b") {
		t.Fatal("replacing insert did not report replacement")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	v, _ := tr.Get(1)
	if v != "b" {
		t.Fatalf("Get(1) = %q, want b", v)
	}
}

func TestInsertRandomOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := New[int64, int](5)
	ref := map[int64]int{}
	for i := 0; i < 20_000; i++ {
		k := int64(rng.Intn(5000)) // force many duplicates/replacements
		ref[k] = i
		tr.Insert(k, i)
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := tr.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = %d,%v, want %d,true", k, got, ok, v)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFloorCeil(t *testing.T) {
	tr := New[int, int](4)
	for _, k := range []int{10, 20, 30, 40, 50} {
		tr.Insert(k, k)
	}
	cases := []struct {
		q       int
		floor   int
		floorOK bool
		ceil    int
		ceilOK  bool
	}{
		{5, 0, false, 10, true},
		{10, 10, true, 10, true},
		{15, 10, true, 20, true},
		{30, 30, true, 30, true},
		{55, 50, true, 0, false},
		{50, 50, true, 50, true},
		{49, 40, true, 50, true},
	}
	for _, c := range cases {
		fk, _, ok := tr.Floor(c.q)
		if ok != c.floorOK || (ok && fk != c.floor) {
			t.Errorf("Floor(%d) = %d,%v, want %d,%v", c.q, fk, ok, c.floor, c.floorOK)
		}
		ck, _, ok := tr.Ceil(c.q)
		if ok != c.ceilOK || (ok && ck != c.ceil) {
			t.Errorf("Ceil(%d) = %d,%v, want %d,%v", c.q, ck, ok, c.ceil, c.ceilOK)
		}
	}
}

func TestFloorAcrossLeafBoundaries(t *testing.T) {
	// With order 3 the leaves are tiny, so floor queries constantly cross
	// leaf boundaries via the prev pointer.
	tr := New[int, int](3)
	for k := 0; k < 1000; k += 10 {
		tr.Insert(k, k)
	}
	for q := 0; q < 1010; q++ {
		fk, _, ok := tr.Floor(q)
		want := (q / 10) * 10
		if q >= 1000 {
			want = 990
		}
		if !ok || fk != want {
			t.Fatalf("Floor(%d) = %d,%v, want %d,true", q, fk, ok, want)
		}
	}
}

func TestDeleteAll(t *testing.T) {
	for _, order := range []int{3, 4, 5, 16} {
		tr := New[int, int](order)
		const n = 3000
		perm := rand.New(rand.NewSource(7)).Perm(n)
		for _, k := range perm {
			tr.Insert(k, k)
		}
		perm2 := rand.New(rand.NewSource(8)).Perm(n)
		for i, k := range perm2 {
			if !tr.Delete(k) {
				t.Fatalf("order %d: Delete(%d) missed", order, k)
			}
			if tr.Delete(k) {
				t.Fatalf("order %d: double Delete(%d) succeeded", order, k)
			}
			if i%500 == 0 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("order %d after %d deletes: %v", order, i+1, err)
				}
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("order %d: Len = %d after deleting everything", order, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeleteNonExistent(t *testing.T) {
	tr := New[int, int](4)
	for k := 0; k < 100; k += 2 {
		tr.Insert(k, k)
	}
	for k := 1; k < 100; k += 2 {
		if tr.Delete(k) {
			t.Fatalf("Delete(%d) succeeded for absent key", k)
		}
	}
	if tr.Len() != 50 {
		t.Fatalf("Len = %d, want 50", tr.Len())
	}
}

func TestAscend(t *testing.T) {
	tr := New[int, int](4)
	want := []int{}
	for k := 99; k >= 0; k-- {
		tr.Insert(k, -k)
	}
	for k := 0; k < 100; k++ {
		want = append(want, k)
	}
	var got []int
	tr.Ascend(func(k, v int) bool {
		if v != -k {
			t.Fatalf("Ascend saw value %d for key %d", v, k)
		}
		got = append(got, k)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Ascend visited %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ascend[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New[int, int](4)
	for k := 0; k < 100; k++ {
		tr.Insert(k, k)
	}
	n := 0
	tr.Ascend(func(k, v int) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("Ascend visited %d keys after early stop, want 10", n)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New[int, int](4)
	for k := 0; k < 200; k += 2 {
		tr.Insert(k, k)
	}
	var got []int
	tr.AscendRange(51, 99, func(k, v int) bool {
		got = append(got, k)
		return true
	})
	var want []int
	for k := 52; k <= 98; k += 2 {
		want = append(want, k)
	}
	if len(got) != len(want) {
		t.Fatalf("AscendRange returned %d keys, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AscendRange[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Empty and inverted ranges.
	count := 0
	tr.AscendRange(301, 400, func(k, v int) bool { count++; return true })
	if count != 0 {
		t.Fatalf("range beyond max visited %d keys", count)
	}
	tr.AscendRange(99, 51, func(k, v int) bool { count++; return true })
	if count != 0 {
		t.Fatalf("inverted range visited %d keys", count)
	}
}

func TestBulkLoad(t *testing.T) {
	for _, n := range []int{0, 1, 2, 15, 16, 17, 1000, 12345} {
		keys := make([]uint64, n)
		vals := make([]int, n)
		for i := range keys {
			keys[i] = uint64(i * 3)
			vals[i] = i
		}
		tr := New[uint64, int](16)
		if err := tr.BulkLoad(keys, vals, 0.75); err != nil {
			t.Fatalf("n=%d: BulkLoad: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range keys {
			v, ok := tr.Get(keys[i])
			if !ok || v != vals[i] {
				t.Fatalf("n=%d: Get(%d) = %d,%v", n, keys[i], v, ok)
			}
		}
		// Floor on mid-gap probes.
		for i := 0; i < n; i++ {
			fk, fv, ok := tr.Floor(uint64(i*3 + 1))
			if !ok || fk != uint64(i*3) || fv != i {
				t.Fatalf("n=%d: Floor(%d) = %d,%d,%v", n, i*3+1, fk, fv, ok)
			}
		}
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	tr := New[int, int](8)
	if err := tr.BulkLoad([]int{1, 3, 2}, []int{0, 0, 0}, 1); err == nil {
		t.Fatal("BulkLoad accepted unsorted keys")
	}
	if err := tr.BulkLoad([]int{1, 1}, []int{0, 0}, 1); err == nil {
		t.Fatal("BulkLoad accepted duplicate keys")
	}
	if err := tr.BulkLoad([]int{1, 2}, []int{0}, 1); err == nil {
		t.Fatal("BulkLoad accepted mismatched lengths")
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	keys := make([]int, 5000)
	vals := make([]int, 5000)
	for i := range keys {
		keys[i] = i * 2
		vals[i] = i
	}
	tr := New[int, int](8)
	if err := tr.BulkLoad(keys, vals, 0.5); err != nil {
		t.Fatal(err)
	}
	// Insert the odd keys, delete half the even ones.
	for i := 1; i < 10000; i += 2 {
		tr.Insert(i, -i)
	}
	for i := 0; i < 10000; i += 4 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		v, ok := tr.Get(i)
		switch {
		case i%2 == 1:
			if !ok || v != -i {
				t.Fatalf("Get(%d) = %d,%v, want %d", i, v, ok, -i)
			}
		case i%4 == 0:
			if ok {
				t.Fatalf("Get(%d) found deleted key", i)
			}
		default:
			if !ok || v != i/2 {
				t.Fatalf("Get(%d) = %d,%v, want %d", i, v, ok, i/2)
			}
		}
	}
}

func TestStats(t *testing.T) {
	tr := New[uint64, uint64](16)
	for i := uint64(0); i < 10_000; i++ {
		tr.Insert(i, i)
	}
	s := tr.Stats()
	if s.Len != 10_000 {
		t.Fatalf("Stats.Len = %d", s.Len)
	}
	if s.LeafNodes == 0 || s.InnerNodes == 0 {
		t.Fatalf("Stats nodes = %+v", s)
	}
	if s.Height != tr.Height() {
		t.Fatalf("Stats.Height = %d, tree Height = %d", s.Height, tr.Height())
	}
	// Leaves alone hold 16 bytes per entry.
	if s.SizeBytes < 10_000*16 {
		t.Fatalf("SizeBytes = %d, want >= %d", s.SizeBytes, 10_000*16)
	}
	// Sanity: the whole index should be within 3x the leaf payload.
	if s.SizeBytes > 3*10_000*16 {
		t.Fatalf("SizeBytes = %d, implausibly large", s.SizeBytes)
	}
}

func TestFloatKeys(t *testing.T) {
	tr := New[float64, int](6)
	keys := []float64{-180.0, -77.5, -0.25, 0, 13.37, 90.001, 179.9}
	for i, k := range keys {
		tr.Insert(k, i)
	}
	for i, k := range keys {
		v, ok := tr.Get(k)
		if !ok || v != i {
			t.Fatalf("Get(%v) = %d,%v", k, v, ok)
		}
	}
	fk, _, ok := tr.Floor(1.0)
	if !ok || fk != 0 {
		t.Fatalf("Floor(1.0) = %v,%v", fk, ok)
	}
}

func TestMinOrderClamp(t *testing.T) {
	tr := New[int, int](1)
	if tr.Order() < 3 {
		t.Fatalf("order %d below minimum", tr.Order())
	}
	for i := 0; i < 100; i++ {
		tr.Insert(i, i)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// quickCheck config shared by property tests.
var quickCfg = &quick.Config{MaxCount: 60}

// TestQuickInsertDeleteMatchesMap drives the tree with random operation
// sequences and compares against a reference map plus sorted-slice ordering.
func TestQuickInsertDeleteMatchesMap(t *testing.T) {
	f := func(seed int64, opsRaw []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 3 + rng.Intn(14)
		tr := New[uint16, int](order)
		ref := map[uint16]int{}
		for i, op := range opsRaw {
			k := op % 512
			switch op % 3 {
			case 0, 1:
				tr.Insert(k, i)
				ref[k] = i
			case 2:
				_, inRef := ref[k]
				if tr.Delete(k) != inRef {
					return false
				}
				delete(ref, k)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		// Ordered iteration must match the sorted reference keys.
		want := make([]int, 0, len(ref))
		for k := range ref {
			want = append(want, int(k))
		}
		sort.Ints(want)
		i := 0
		okIter := true
		tr.Ascend(func(k uint16, v int) bool {
			if i >= len(want) || int(k) != want[i] {
				okIter = false
				return false
			}
			i++
			return true
		})
		return okIter && i == len(want)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestFloorWithNextMatchesFloor pins FloorWithNext against Floor and Ceil:
// same floor result, and the reported successor is the smallest key
// strictly greater than the floor (or than k when there is no floor).
func TestFloorWithNextMatchesFloor(t *testing.T) {
	tr := New[int, int](4)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 3000; i++ {
		k := rng.Intn(10_000)
		tr.Insert(k, k)
	}
	for q := -5; q < 10_100; q += 7 {
		fk, fv, nk, hasNext, ok := tr.FloorWithNext(q)
		wfk, wfv, wok := tr.Floor(q)
		if ok != wok || (ok && (fk != wfk || fv != wfv)) {
			t.Fatalf("FloorWithNext(%d) floor = %d,%d,%v, Floor says %d,%d,%v", q, fk, fv, ok, wfk, wfv, wok)
		}
		after := q
		if ok {
			after = fk
		}
		wnk, _, wnok := tr.Ceil(after + 1)
		if hasNext != wnok || (hasNext && nk != wnk) {
			t.Fatalf("FloorWithNext(%d) next = %d,%v, Ceil(%d) says %d,%v", q, nk, hasNext, after+1, wnk, wnok)
		}
	}
	// Empty tree.
	empty := New[int, int](4)
	if _, _, _, hasNext, ok := empty.FloorWithNext(5); ok || hasNext {
		t.Fatal("FloorWithNext on empty tree reported a hit")
	}
}

// TestQuickFloorMatchesLinearScan compares Floor against a brute-force scan.
func TestQuickFloorMatchesLinearScan(t *testing.T) {
	f := func(keysRaw []uint16, probes []uint16) bool {
		tr := New[uint16, bool](4)
		present := map[uint16]bool{}
		for _, k := range keysRaw {
			tr.Insert(k, true)
			present[k] = true
		}
		sorted := make([]int, 0, len(present))
		for k := range present {
			sorted = append(sorted, int(k))
		}
		sort.Ints(sorted)
		for _, q := range probes {
			i := sort.SearchInts(sorted, int(q)+1) - 1
			fk, _, ok := tr.Floor(q)
			if i < 0 {
				if ok {
					return false
				}
			} else if !ok || int(fk) != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	tr := New[uint64, uint64](DefaultOrder)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(uint64(i), uint64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New[uint64, uint64](DefaultOrder)
	const n = 1 << 20
	for i := uint64(0); i < n; i++ {
		tr.Insert(i, i)
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(uint64(rng.Intn(n)))
	}
}
